// Sharded inference, functionally: run a real (small) multiquery Transformer
// across 8 simulated chips with 2D weight-stationary FFN sharding and
// batch-sharded attention, verify the distributed logits against the
// unsharded reference, and sample a continuation with top-k/top-p — the
// whole serving path, in miniature.
//
//	go run ./examples/shardedinfer
package main

import (
	"fmt"
	"math/rand"

	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/sampling"
	"esti/internal/tensor"
)

func main() {
	cfg := model.Config{
		Name: "mini-palm", Layers: 4, DModel: 128, DFF: 256,
		Heads: 16, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 256,
	}
	torus := hardware.Torus{X: 2, Y: 2, Z: 2}
	const batch, promptLen, gen = 8, 8, 12

	w := reference.NewWeights(cfg, 2024)
	eng, err := engine.New(w, torus, engine.Options{
		FFN:  partition.FFN2DWeightStationary,
		Attn: partition.AttnShardBatch,
	}, batch, promptLen+gen+1)
	if err != nil {
		panic(err)
	}
	ref := reference.New(w, batch, promptLen+gen+1)

	prompt := make([]int, batch*promptLen)
	for i := range prompt {
		prompt[i] = (i*31 + 3) % cfg.Vocab
	}

	fmt.Printf("%s on a %s mesh: %d layers, %d heads, multiquery, parallel block\n",
		cfg.Name, torus, cfg.Layers, cfg.Heads)

	engLogits := eng.Prefill(prompt, promptLen)
	refLogits := ref.Prefill(prompt, promptLen)
	fmt.Printf("prefill: sharded vs reference max |Δ| = %.2e over %d logits\n\n",
		tensor.MaxAbsDiff(engLogits, refLogits), len(engLogits.Data))

	// Decode with top-k/top-p sampling, feeding sampled tokens back. The
	// reference model consumes the same sampled tokens so the two KV
	// caches stay aligned and every step stays comparable.
	rng := rand.New(rand.NewSource(7))
	last := make([]int, batch)
	for s := 0; s < batch; s++ {
		last[s] = sampling.Sample(engLogits.Row(s*promptLen+promptLen-1), 0.8, 40, 0.95, rng)
	}
	generated := make([][]int, batch)
	for g := 0; g < gen; g++ {
		engL := eng.Decode(last)
		refL := ref.Decode(last)
		if d := tensor.MaxAbsDiff(engL, refL); d > 1e-3 {
			fmt.Printf("step %d: WARNING divergence %.2e\n", g, d)
		}
		for s := 0; s < batch; s++ {
			generated[s] = append(generated[s], last[s])
			last[s] = sampling.Sample(engL.Row(s), 0.8, 40, 0.95, rng)
		}
	}

	fmt.Println("sampled continuations (token ids):")
	for s := 0; s < 3; s++ {
		fmt.Printf("  seq %d: %v\n", s, generated[s])
	}

	m := eng.Mesh()
	fmt.Printf("\nmesh traffic for the whole session: %d messages, %.2f MB (%.2f MB/chip)\n",
		m.MessagesSent(), float64(m.BytesSent())/1e6, float64(m.BytesSent())/1e6/8)
	fmt.Printf("per-chip KV cache (batch-sharded): %.1f KB — head-sharded would replicate 8x\n",
		float64(eng.ChipCacheBytes(0))/1e3)
}
