// Continuous batching: the dynamic-traffic scenario the static pipeline
// cannot express. A mixed-length chatbot trace — short follow-ups next to
// full-context prompts, terse answers next to long completions — is served
// two ways at the same total chip budget:
//
//   - statically, as the paper's two-tier prefill→decode pipeline (package
//     serve), which must pad every request in a batch to a common shape
//     and drain a decode batch before refilling it;
//   - continuously (package batching), where each request owns a KV-cache
//     slot from admission to completion and a freed slot is refilled by
//     prefilling the next queued prompt while its neighbors keep decoding.
//
// The second half of the example drops to the functional engine on a tiny
// model and actually performs the slot dance — PrefillSlot into a freed
// slot between DecodeSlots steps — to show the same discipline running as
// real (simulated-mesh) arithmetic, not just as a cost model.
//
//	go run ./examples/continuousbatch
package main

import (
	"fmt"

	"esti/internal/batching"
	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/reference"
)

func main() {
	cfg := model.PaLM540BPadded()
	bc := batching.Config{
		Model:    cfg,
		Weights:  model.Int8,
		System:   hardware.TPUv4Slice(4, 4, 4),
		FFN:      partition.FFN2DWeightStationary,
		Attn:     partition.AttnShardBatch,
		Slots:    64,
		MaxLen:   2048 + 256,
		MaxAdmit: 4,
		Knobs:    perf.DefaultKnobs(),
	}
	trace := batching.ChatbotTrace(200, 0.05, 1)
	fmt.Printf("mixed chatbot trace: %d requests, contexts up to %d, generations up to %d\n",
		len(trace.Requests), trace.MaxContext(), trace.MaxGen())
	fmt.Printf("%s, int8 weights, %d chips total\n\n", cfg.Name, bc.System.Chips())

	cmp, err := batching.CompareStatic(bc, trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("static two-tier (%d+%d chips, tuned to prefill batch %d / decode batch %d):\n",
		bc.System.Chips()/2, bc.System.Chips()/2,
		cmp.StaticTuned.PrefillBatch, cmp.StaticTuned.DecodeBatch)
	fmt.Printf("  %.1f useful tok/s — every request padded to %d ctx / %d gen\n\n",
		cmp.StaticTokensPerSec, trace.MaxContext(), trace.MaxGen())
	fmt.Printf("continuous pool (%d chips, %d slots):\n", bc.System.Chips(), bc.Slots)
	fmt.Printf("  %.1f useful tok/s at %.0f%% mean occupancy — %.2fx the static pipeline\n",
		cmp.ContinuousTokensPerSec, cmp.Continuous.MeanOccupancy*100, cmp.Speedup)
	fmt.Printf("  latency p50/p95/p99: %.2fs / %.2fs / %.2fs over %d iterations\n\n",
		cmp.Continuous.P50, cmp.Continuous.P95, cmp.Continuous.P99, cmp.Continuous.Iterations)

	// Engine-level demonstration on a tiny model across 8 simulated chips:
	// three requests of different lengths share an 8-slot session; request B
	// finishes early, its slot is released, and request D is admitted into
	// the freed slot while A and C are still decoding.
	tiny := model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	w := reference.NewWeights(tiny, 42)
	eng, err := engine.New(w, hardware.Torus{X: 2, Y: 2, Z: 2}, engine.Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
	}, 8, 16)
	if err != nil {
		panic(err)
	}

	fmt.Println("engine-level slot dance (tiny model, 8 simulated chips, 8 slots):")
	prompts := map[string][]int{
		"A": {1, 2, 3, 4, 5},  // long prompt, long generation
		"B": {7, 8},           // short prompt, finishes first
		"C": {9, 10, 11},      //
		"D": {12, 13, 14, 15}, // admitted mid-stream into B's freed slot
	}
	slotOf := map[string]int{"A": 0, "B": 1, "C": 2}
	last := make([]int, 8)
	active := make([]bool, 8)
	admit := func(name string) {
		s := slotOf[name]
		logits := eng.PrefillSlot(s, prompts[name])
		last[s] = argmax(logits.Row(len(prompts[name]) - 1))
		active[s] = true
		fmt.Printf("  admit %s into slot %d (prompt %d tokens, KV len %d)\n",
			name, s, len(prompts[name]), eng.SlotLen(s))
	}
	admit("A")
	admit("B")
	admit("C")

	step := func() {
		logits := eng.DecodeSlots(last, active)
		for s := 0; s < 8; s++ {
			if active[s] {
				last[s] = argmax(logits.Row(s))
			}
		}
	}
	step()
	step()
	fmt.Printf("  2 decode steps: KV lens now A=%d B=%d C=%d (different depths, one batch)\n",
		eng.SlotLen(0), eng.SlotLen(1), eng.SlotLen(2))

	eng.ReleaseSlot(1)
	active[1] = false
	fmt.Printf("  B done: slot 1 released (KV len %d)\n", eng.SlotLen(1))
	slotOf["D"] = 1
	admit("D")
	step()
	fmt.Printf("  1 more step: KV lens A=%d D=%d C=%d — D decodes in B's old slot\n",
		eng.SlotLen(0), eng.SlotLen(1), eng.SlotLen(2))
	fmt.Println("\nevery logit above matches a batch-1 reference model exactly")
	fmt.Println("(see internal/engine TestContinuousBatchingMatchesReference).")
}

func argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
