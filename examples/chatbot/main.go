// Chatbot: the paper's Section 1 interactive scenario — a conversation turn
// that processes 64 new user tokens against a cached 1920-token history and
// generates a 64-token reply on PaLM 540B across 64 chips, in under two
// seconds with int8 weights.
//
// The example walks the latency budget turn by turn as the conversation
// history grows, showing why multiquery attention's batch-sharded KV cache
// is what keeps long conversations affordable.
//
//	go run ./examples/chatbot
package main

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

func main() {
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	knobs := perf.DefaultKnobs()

	const (
		batch     = 64 // concurrent conversations
		userTurn  = 64 // new tokens per user message
		replyLen  = 64 // generated tokens per reply
		turnGrows = userTurn + replyLen
	)

	fmt.Printf("interactive serving: %s, %d chips, int8 weights, batch %d\n\n",
		cfg.Name, sys.Chips(), batch)
	fmt.Printf("%-6s %-10s %-12s %-12s %-10s\n", "turn", "history", "prefill", "decode", "total")

	for turn, history := 1, 0; turn <= 8; turn++ {
		pre := perf.Prefill(perf.Request{
			Model: cfg, System: sys, Weights: model.Int8,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: batch, Context: userTurn, Past: history,
		}, knobs)
		dec := perf.Decode(perf.Request{
			Model: cfg, System: sys, Weights: model.Int8,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: batch, Context: userTurn, Past: history, Gen: replyLen,
		}, knobs)
		if !pre.Feasible || !dec.Feasible {
			fmt.Printf("%-6d conversation no longer fits: %s%s\n", turn, pre.Reason, dec.Reason)
			return
		}
		total := pre.Time + dec.Time
		fmt.Printf("%-6d %-10d %-12s %-12s %.2fs\n",
			turn, history, fmt.Sprintf("%.0fms", pre.Time*1000),
			fmt.Sprintf("%.2fs", dec.Time), total)
		history += turnGrows
	}

	// The paper's exact headline numbers: 1920-token cached history.
	pre := perf.Prefill(perf.Request{
		Model: cfg, System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: batch, Context: userTurn, Past: 1920,
	}, knobs)
	dec := perf.Decode(perf.Request{
		Model: cfg, System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: batch, Context: userTurn, Past: 1920, Gen: replyLen,
	}, knobs)
	fmt.Printf("\npaper's scenario (1920 cached + 64 in + 64 out): %.2fs total (paper: 1.9s)\n",
		pre.Time+dec.Time)

	// Why multiquery + batch sharding matters: the same turn with the
	// head-sharded layout replicates the KV cache on every chip.
	headDec := perf.Decode(perf.Request{
		Model: cfg, System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads,
		Batch: batch, Context: userTurn, Past: 1920, Gen: replyLen,
	}, knobs)
	if headDec.Feasible {
		fmt.Printf("same turn, head-sharded attention: %.2fs decode (%.1fx slower)\n",
			headDec.Time, headDec.Time/dec.Time)
	} else {
		fmt.Printf("same turn, head-sharded attention: %s\n", headDec.Reason)
	}
}
