// Compute–communication overlap: the looped CollectiveEinsum of §3.5, and
// what it can — and cannot — hide. Streaming a collective chunk-by-chunk
// lets each chip run the GEMM slice for a chunk while the next chunk relays
// on the ring, hiding the *bandwidth* component of communication under
// compute. What it cannot hide is the serial hop-latency floor: every ring
// step still waits on a neighbor hop, so a latency-bound small-batch decode
// stays latency-bound no matter how perfectly compute and transfer overlap.
//
// The first half prices this with the analytic model on PaLM 540B over 64
// chips: decode-step communication at overlap 0 versus overlap 1, showing
// the overlapped cost pinning to the hop floor rather than dropping to
// zero — and the int8-wire "win" collapsing to ~1x once both wire formats
// wait on the same hops.
//
// The second half does the real thing on the functional engine: the same
// weights run with barrier and chunk-streamed collectives over a simulated
// 8-chip mesh, showing the greedy tokens identical over a 64-step horizon
// and the mesh's measured overlap fraction (per-chunk consumer work as a
// share of consumer work plus blocked-receive wait).
//
//	go run ./examples/overlap
package main

import (
	"fmt"

	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/reference"
)

func main() {
	// --- Analytic: overlap on PaLM 540B over 64 chips, decode batch 8. ---
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	fmt.Printf("%s on %d chips, int8 weights, decode batch 8\n\n", cfg.Name, sys.Chips())

	decode := func(wire model.DType, overlap float64) perf.Result {
		k := perf.DefaultKnobs()
		k.OverlapFrac = overlap
		return perf.Decode(perf.Request{
			Model: cfg, System: sys, Weights: model.Int8, WireDType: wire,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: 8, Context: 2048, Gen: 64,
		}, k)
	}
	for _, ov := range []float64{0, 0.5, 1} {
		r := decode(model.Int8, ov)
		comm := r.Breakdown.Comm / 64
		floor := r.Breakdown.CommFloor / 64
		fmt.Printf("overlap %.1f: decode comm %6.3f ms/step (hop floor %.3f ms, bandwidth %.3f ms)\n",
			ov, comm*1000, floor*1000, (comm-floor)*1000)
	}

	// The honest int8-wire ratio: with the bandwidth component hidden,
	// both wire formats wait on the same ring hops. A subtractive overlap
	// model that discounts the floor would report a fictitious sub-1x
	// ratio here (0.92x at these settings); the floor-aware model pins it.
	q8 := decode(model.Int8, 1).Breakdown.Comm
	bf := decode(model.BF16, 1).Breakdown.Comm
	fmt.Printf("\nint8-vs-bf16 decode comm at overlap 1.0: %.2fx — the hop-latency floor,\n", q8/bf)
	fmt.Printf("not wire bytes, bounds small-batch decode\n")

	// --- Functional: chunk-streamed collectives on a simulated mesh. ---
	tiny := model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	const batch, promptLen, gen = 8, 4, 64
	w := reference.NewWeights(tiny, 11)
	torus := hardware.Torus{X: 2, Y: 2, Z: 2}
	prompt := make([]int, batch*promptLen)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % tiny.Vocab
	}

	run := func(streamed bool) (toks [][]int, overlap float64) {
		eng, err := engine.New(w, torus, engine.Options{
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Streamed: streamed,
		}, batch, promptLen+gen+1)
		if err != nil {
			panic(err)
		}
		toks = eng.Generate(prompt, promptLen, gen)
		return toks, eng.MeasuredOverlap()
	}
	barrierToks, _ := run(false)
	streamToks, frac := run(true)

	fmt.Printf("\nfunctional engine, %s on %d simulated chips, %d prompts x %d greedy steps:\n",
		tiny.Name, torus.Chips(), batch, gen)
	same := 0
	for s := 0; s < batch; s++ {
		match := true
		for g := 0; g < gen; g++ {
			if barrierToks[s][g] != streamToks[s][g] {
				match = false
				break
			}
		}
		if match {
			same++
		}
	}
	fmt.Printf("  greedy tokens identical, barrier vs streamed: %d/%d sequences over %d steps\n",
		same, batch, gen)
	fmt.Printf("  measured overlap fraction: %.2f of in-collective time spent on per-chunk\n", frac)
	fmt.Printf("  compute instead of blocked receives\n")
}
