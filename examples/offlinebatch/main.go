// Offline batch inference: the paper's throughput-oriented scenario —
// process 1984 input tokens and generate 64 output tokens per example for
// huge numbers of examples, minimizing cost per token rather than latency.
//
// The example sweeps batch size, shows the feedforward layout switching from
// weight-stationary to weight-gathered as tokens per batch grow (Section
// 4.1), and reports the resulting MFU — the paper reaches ~73-76% prefill
// MFU at the largest batches.
//
//	go run ./examples/offlinebatch
package main

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/perf"
	"esti/internal/planner"
)

func main() {
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	knobs := perf.DefaultKnobs()

	const inputLen, outputLen = 1984, 64

	fmt.Printf("offline scoring: %s on %d chips, %d in / %d out per example, bf16 weights\n\n",
		cfg.Name, sys.Chips(), inputLen, outputLen)
	fmt.Printf("%-7s %-13s %-9s %-9s %-11s %-12s %-18s\n",
		"batch", "tokens/batch", "prefill", "MFU", "decode", "MFU", "cost (chip-ms/tok)")

	bestBatch, bestCost := 0, -1.0
	for _, batch := range []int{8, 16, 32, 64, 128, 256, 512} {
		w := planner.Workload{Batch: batch, Context: inputLen, Gen: outputLen}
		pre, okP := planner.ChoosePrefill(cfg, sys, model.BF16, w, planner.MinCost, knobs)
		dec, okD := planner.ChooseDecode(cfg, sys, model.BF16, w, planner.MinCost, knobs)
		if !okP || !okD {
			fmt.Printf("%-7d does not fit\n", batch)
			continue
		}
		totalTokens := float64(batch) * (inputLen + outputLen)
		totalTime := pre.Result.Time + dec.Result.Time
		cost := float64(sys.Chips()) * totalTime / totalTokens
		fmt.Printf("%-7d %-13d %-9s %-9s %-11s %-12s %.3f   (FFN: %s → %s)\n",
			batch, batch*inputLen,
			fmt.Sprintf("%.1fs", pre.Result.Time), fmt.Sprintf("%.0f%%", pre.Result.MFU*100),
			fmt.Sprintf("%.1fs", dec.Result.Time), fmt.Sprintf("%.0f%%", dec.Result.MFU*100),
			cost*1000, pre.FFN, dec.FFN)
		if bestCost < 0 || cost < bestCost {
			bestBatch, bestCost = batch, cost
		}
	}

	fmt.Printf("\nbest cost: batch %d at %.3f chip-ms/token\n", bestBatch, bestCost*1000)
	fmt.Println("note the prefill layout switching to weight-gathered as the batch grows —")
	fmt.Println("that switch is Figure 7's crossover, and it is what lifts MFU above 70%.")
}
