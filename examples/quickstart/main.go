// Quickstart: cost a Transformer inference configuration with the
// analytical model, then let the planner pick the best partitioning.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/planner"
)

func main() {
	// A PaLM 540B-class model on a 64-chip TPU v4 slice.
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	knobs := perf.DefaultKnobs()

	fmt.Printf("model: %s (%.0fB params, %d layers, d_model %d)\n",
		cfg.Name, cfg.Params()/1e9, cfg.Layers, cfg.DModel)
	fmt.Printf("system: %d × TPU v4 (torus %s)\n\n", sys.Chips(), sys.Torus)

	// 1. Cost a specific configuration by hand: batch-64 decode with int8
	// weights, 2D weight-stationary FFN, batch-sharded multiquery
	// attention — the paper's low-latency operating point.
	res := perf.Decode(perf.Request{
		Model: cfg, System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 2048, Gen: 64,
	}, knobs)
	fmt.Printf("decode, batch 64, int8: %.1f ms/token at %.1f%% MFU\n",
		res.StepTime*1000, res.MFU*100)
	fmt.Printf("  breakdown per 64-token generation: compute %.0fms, weights %.0fms, KV %.0fms, comm %.0fms\n\n",
		res.Breakdown.Compute*1000, res.Breakdown.WeightMem*1000,
		res.Breakdown.KVMem*1000, res.Breakdown.Comm*1000)

	// 2. Or let the planner choose everything for a workload.
	plan := planner.Make(cfg, sys, model.BF16,
		planner.Workload{Batch: 512, Context: 2048, Gen: 64},
		planner.MinCost, knobs)
	if !plan.Feasible {
		fmt.Println("no feasible plan:", plan.Reason)
		return
	}
	fmt.Printf("planner (batch 512, min cost):\n")
	fmt.Printf("  prefill: %-7s + %-11s → %.1fs at %.1f%% MFU\n",
		plan.Prefill.FFN, plan.Prefill.Attn, plan.Prefill.Result.Time, plan.Prefill.Result.MFU*100)
	fmt.Printf("  decode:  %-7s + %-11s → %.1fs at %.1f%% MFU\n",
		plan.Decode.FFN, plan.Decode.Attn, plan.Decode.Result.Time, plan.Decode.Result.MFU*100)
	fmt.Printf("  cost: %.3f chip-ms per generated token\n", plan.Decode.Result.Cost*1000)
}
