// Int8 KV cache: doubled servable context at unchanged greedy output.
// At large batch and long context the KV cache — not the weights — is
// what fills a chip's HBM and what the decode step streams (§3.3, Table
// 1), so halving its bytes per token roughly doubles the context (or
// batch) a chip slice can serve and halves the attention walk's memory
// traffic.
//
// The first half prices it with the analytic model on PaLM 540B: max
// context per Table 1's budget, the OOM boundary a long-context
// deployment hits, and the decode-step KV memory component, each bf16 vs
// int8.
//
// The second half drops to the functional engine on a tiny model and does
// the real thing: the same weights run with a float32 and an int8 KV
// cache (quantize-at-append, dequantize inside the fused attention walk),
// showing the true backing bytes halved and the greedy tokens identical
// over a 64-step horizon.
//
//	go run ./examples/int8kv
package main

import (
	"fmt"

	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/planner"
	"esti/internal/reference"
)

func main() {
	// --- Analytic: what int8 KV buys on PaLM 540B over 64 chips. ---
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	fmt.Printf("%s on %d chips, int8 weights\n\n", cfg.Name, sys.Chips())
	fmt.Printf("KV bytes per token: %.0f bf16, %.0f int8\n",
		cfg.KVBytesPerToken(), cfg.KVBytesPerTokenAs(model.Int8))

	for _, batch := range []int{128, 512} {
		bf := planner.MaxContextKV(cfg, sys, partition.AttnShardBatch, batch, 0.30, model.BF16)
		q8 := planner.MaxContextKV(cfg, sys, partition.AttnShardBatch, batch, 0.30, model.Int8)
		fmt.Printf("max context at batch %3d (Table 1 budget): %6d bf16 → %6d int8 (%.1fx)\n",
			batch, bf, q8, float64(q8)/float64(bf))
	}

	req := perf.Request{
		Model: cfg, System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 256, Context: 8192, Gen: 64,
	}
	k := perf.DefaultKnobs()
	bf := perf.Decode(req, k)
	req.KVDType = model.Int8
	q8 := perf.Decode(req, k)
	fmt.Printf("\ndecode at batch %d, context %d: KV memory %.2fms/step bf16 → %.2fms/step int8\n",
		req.Batch, req.Context,
		bf.Breakdown.KVMem/float64(req.Gen)*1000, q8.Breakdown.KVMem/float64(req.Gen)*1000)

	long := req
	long.Context = 60000
	long.KVDType = model.BF16
	bfLong := perf.Decode(long, k)
	long.KVDType = model.Int8
	q8Long := perf.Decode(long, k)
	fmt.Printf("context %d at batch %d: bf16 %s; int8 feasible=%v\n",
		long.Context, long.Batch, reason(bfLong), q8Long.Feasible)

	// --- Functional: same weights, fp32 vs int8 cache, tokens equal. ---
	small := model.Config{
		Name: "demo", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	const batch, promptLen, gen, maxLen = 4, 8, 64, 128
	w := reference.NewWeights(small, 1)
	torus := hardware.Torus{X: 2, Y: 1, Z: 1}
	opts := engine.Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}
	fp, err := engine.New(w, torus, opts, batch, maxLen)
	if err != nil {
		panic(err)
	}
	opts.Int8KV = true
	qe, err := engine.New(w, torus, opts, batch, maxLen)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfunctional engine (%s, %d chips): per-chip cache %d B fp32 → %d B int8 (%.2fx)\n",
		small.Name, torus.Chips(), fp.ChipCacheBytes(0), qe.ChipCacheBytes(0),
		float64(qe.ChipCacheBytes(0))/float64(fp.ChipCacheBytes(0)))

	prompt := make([]int, batch*promptLen)
	for i := range prompt {
		prompt[i] = (i*13 + 5) % small.Vocab
	}
	want := fp.Generate(prompt, promptLen, gen)
	got := qe.Generate(prompt, promptLen, gen)
	agree := 0
	for s := 0; s < batch; s++ {
		for g := 0; g < gen; g++ {
			if got[s][g] == want[s][g] {
				agree++
			}
		}
	}
	fmt.Printf("greedy decode over %d steps × %d sequences: %d/%d tokens identical to fp32\n",
		gen, batch, agree, batch*gen)
	if agree != batch*gen {
		panic("int8 KV cache diverged from fp32 greedy decode")
	}
}

func reason(r perf.Result) string {
	if r.Feasible {
		return "feasible"
	}
	return "infeasible (" + r.Reason + ")"
}
