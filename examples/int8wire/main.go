// Int8 activations on the wire: halved interconnect volume at unchanged
// greedy output. The paper's §3.3 weight-gathered layout wins by moving
// int8 weights instead of float32 activations, and its Appendix A cost
// model charges collectives by *bytes*, not elements — so the same lever
// applies to everything else on the wire: quantize each collective chunk
// to int8 with one float32 scale, transmit, dequantize (reductions fold
// in float32 and requantize per hop to keep error bounded).
//
// The first half prices it with the analytic model on PaLM 540B: the
// exposed communication time of each phase with bf16 versus int8
// collective payloads, and the per-layer wire volumes per layout.
//
// The second half drops to the functional engine on a tiny model and
// does the real thing: the same weights run with float32 and int8
// collective payloads over a simulated 8-chip mesh, showing the measured
// wire bytes (from the mesh's byte-accurate counters) at ~0.26× and the
// greedy tokens identical over a 64-step horizon.
//
//	go run ./examples/int8wire
package main

import (
	"fmt"

	"esti/internal/commcost"
	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/reference"
)

func main() {
	// --- Analytic: what int8 wire buys on PaLM 540B over 64 chips. ---
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	k := perf.DefaultKnobs()
	fmt.Printf("%s on %d chips, int8 weights\n\n", cfg.Name, sys.Chips())

	phase := func(name string, gen int, wire model.DType) float64 {
		req := perf.Request{
			Model: cfg, System: sys, Weights: model.Int8, WireDType: wire,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: 64, Context: 2048, Gen: gen,
		}
		if gen > 0 {
			return perf.Decode(req, k).Breakdown.Comm
		}
		return perf.Prefill(req, k).Breakdown.Comm
	}
	for _, p := range []struct {
		name string
		gen  int
	}{{"prefill (batch 64 x 2048 tokens)", 0}, {"decode  (batch 64, 64 steps)", 64}} {
		bf := phase(p.name, p.gen, model.BF16)
		q8 := phase(p.name, p.gen, model.Int8)
		fmt.Printf("exposed comm, %s: %7.1f ms bf16 wire → %7.1f ms int8 wire (%.2fx)\n",
			p.name, bf*1000, q8*1000, q8/bf)
	}

	// Per-layer collective volume at the decode step, per wire format —
	// the Appendix A bytes the time above is charged from: one all-gather
	// (per-chip shard tokens·E/n) and one reduce-scatter (per-chip input
	// tokens·E) of the [tokens, E] activations in the 1D layout.
	e := float64(cfg.DModel)
	tokens := 64.0
	n := sys.Chips()
	fmt.Printf("\nper-layer decode activation volume, 1D weight-stationary over %d chips:\n", n)
	for _, w := range []struct {
		name string
		fmt  commcost.WireFormat
	}{{"fp32", commcost.WireFP32}, {"bf16", commcost.WireBF16}, {"int8", commcost.WireInt8}} {
		vol := commcost.AllGatherWireVolume(tokens*e/float64(n), n, w.fmt) +
			commcost.ReduceScatterWireVolume(tokens*e, n, w.fmt)
		fmt.Printf("  %s wire: %8.1f KiB/chip\n", w.name, vol/1024)
	}

	// --- Functional: the real thing on a simulated 8-chip mesh. ---
	tiny := model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	const batch, promptLen, gen = 8, 4, 64
	w := reference.NewWeights(tiny, 11)
	torus := hardware.Torus{X: 2, Y: 2, Z: 2}
	prompt := make([]int, batch*promptLen)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % tiny.Vocab
	}

	run := func(int8wire bool) (toks [][]int, bytes, int8Bytes int64) {
		eng, err := engine.New(w, torus, engine.Options{
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Int8Wire: int8wire,
		}, batch, promptLen+gen+1)
		if err != nil {
			panic(err)
		}
		toks = eng.Generate(prompt, promptLen, gen)
		return toks, eng.Mesh().BytesSent(), eng.Mesh().Int8BytesSent()
	}
	fpToks, fpBytes, _ := run(false)
	q8Toks, q8Bytes, q8Int8 := run(true)

	fmt.Printf("\nfunctional engine, %s on %d simulated chips, %d prompts x %d greedy steps:\n",
		tiny.Name, torus.Chips(), batch, gen)
	fmt.Printf("  wire bytes: %d fp32 → %d int8 wire (%.2fx; %d B of that int8 payloads,\n",
		fpBytes, q8Bytes, float64(q8Bytes)/float64(fpBytes), q8Int8)
	fmt.Printf("  remainder the float32 norm all-reduces)\n")
	same := 0
	for s := 0; s < batch; s++ {
		match := true
		for g := 0; g < gen; g++ {
			if fpToks[s][g] != q8Toks[s][g] {
				match = false
				break
			}
		}
		if match {
			same++
		}
	}
	fmt.Printf("  greedy tokens identical: %d/%d sequences over %d steps\n", same, batch, gen)
}
