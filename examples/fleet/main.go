// Fleet serving: many engine replicas behind one router. The example runs
// the same Zipf-popular template trace through a 4-replica PaLM 540B fleet
// three ways — prefix-affinity routing, random routing, and a
// disaggregated prefill/decode split with per-request KV handoff — and
// reports p50/p99 latency and goodput per chip for each. It closes with an
// executable handoff on a tiny model: prefill on one engine, cache blocks
// moved to a second engine, decode there, token-exact against a single
// engine doing both phases.
//
//	go run ./examples/fleet
package main

import (
	"fmt"

	"esti/internal/batching"
	"esti/internal/engine"
	"esti/internal/fleet"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/reference"
)

func main() {
	// One replica: the paper's decode configuration — PaLM 540B, int8
	// weights, 64 chips, 2D weight-stationary FFN with batch-sharded
	// multiquery attention — with the prefix cache on.
	replica := batching.Config{
		Model:       model.PaLM540BPadded(),
		Weights:     model.Int8,
		System:      hardware.TPUv4Slice(4, 4, 4),
		FFN:         partition.FFN2DWeightStationary,
		Attn:        partition.AttnShardBatch,
		Slots:       64,
		MaxLen:      2048 + 256,
		PrefixCache: true,
		Knobs:       perf.DefaultKnobs(),
	}

	// The workload: 400 requests whose templates follow a Zipf(1.3) law
	// over 48 distinct 1024-token shared prefixes — a handful of hot
	// system prompts and a long tail, the shape that makes routing matter.
	trace := batching.ZipfPrefixTrace(400, 0.02, 1024, 48, 1.3, 11)

	c := fleet.Config{Replica: replica, Replicas: 4}
	cmp, err := fleet.CompareRouting(c, trace)
	if err != nil {
		panic(err)
	}

	dc := fleet.Config{
		Replica:         replica,
		Disaggregated:   true,
		PrefillReplicas: 2,
		DecodeReplicas:  2,
		Policy:          fleet.Affinity,
	}
	disagg, err := fleet.Simulate(dc, trace)
	if err != nil {
		panic(err)
	}

	fmt.Printf("fleet: 4 x 64-chip PaLM 540B replicas, 400-request Zipf trace (48 templates, 1024-token prefixes)\n\n")
	fmt.Printf("  %-28s %9s %8s %8s %14s %12s\n",
		"configuration", "tok/s", "p50", "p99", "good tok/s/chip", "warm routes")
	row := func(name string, r fleet.Result) {
		fmt.Printf("  %-28s %9.1f %7.2fs %7.2fs %14.2f %9d/%d\n",
			name, r.GenTokensPerSec, r.P50, r.P99, r.GoodputPerChip,
			r.AffinityHits, r.AffinityHits+r.AffinityMisses)
	}
	row("unified, affinity routing", cmp.Affinity)
	row("unified, random routing", cmp.Random)
	row("2 prefill + 2 decode pools", disagg)
	fmt.Printf("\n  affinity vs random: %.2fx useful tok/s — hot templates pin to warm replicas,\n", cmp.Speedup)
	fmt.Printf("  so the fleet pays %d cold template prefills instead of %d\n",
		cmp.Affinity.AffinityMisses, cmp.Random.AffinityMisses)
	fmt.Printf("  disaggregated KV traffic: %d handoffs, %.1f GB over the interconnect (%.1f MB each)\n",
		disagg.Handoffs, disagg.HandoffBytes/1e9,
		disagg.HandoffBytes/float64(disagg.Handoffs)/1e6)

	// SLO admission: the same fleet under a deadline-stamped burst sheds
	// what it cannot serve in time and keeps goodput for the rest.
	slo := batching.WithSLO(batching.ZipfPrefixTrace(400, 0.005, 1024, 48, 1.3, 11), 30, 0.25, 5)
	guarded, err := fleet.Simulate(fleet.Config{Replica: replica, Replicas: 4, Policy: fleet.Affinity, MaxQueue: 48}, slo)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nSLO admission under a 4x burst (deadlines 15-30s, 25%% high tier):\n")
	fmt.Printf("  served %d, shed %d at the router, %d deadline misses; goodput %.2f tok/s/chip\n",
		guarded.Completed, guarded.Shed, guarded.DeadlineMisses, guarded.GoodputPerChip)

	// Executable handoff: a real prefill→decode transfer on a tiny model,
	// token-exact against one engine doing both phases.
	cfg := model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	w := reference.NewWeights(cfg, 42)
	opts := engine.Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		KVDType: model.Int8,
	}
	mk := func() *engine.Engine {
		e, err := engine.New(w, hardware.Torus{X: 2, Y: 2, Z: 2}, opts, 8, 48)
		if err != nil {
			panic(err)
		}
		return e
	}
	prompt := []int{5, 18, 31, 44, 57, 6}
	const gen = 12
	pair := &fleet.EnginePair{Prefill: mk(), Decode: mk()}
	got, err := pair.Generate(1, 3, prompt, gen)
	if err != nil {
		panic(err)
	}
	// Unified baseline: one engine prefills and decodes the same request on
	// one slot, greedy argmax at every step.
	base := mk()
	logits := base.PrefillSlot(1, prompt)
	tok := argmax(logits.Row(logits.Rows - 1))
	want := []int{tok}
	last := make([]int, base.Batch())
	active := make([]bool, base.Batch())
	active[1] = true
	for len(want) < gen {
		last[1] = tok
		logits = base.DecodeSlotsInto(logits, last, active)
		tok = argmax(logits.Row(1))
		want = append(want, tok)
	}
	match := len(got) == len(want)
	for i := range want {
		if got[i] != want[i] {
			match = false
		}
	}
	fmt.Printf("\nexecutable handoff (tiny model, int8 KV, 8-chip mesh x2): %d tokens, %d KV bytes moved, token-exact: %v\n",
		gen, pair.HandoffBytes, match)
	fmt.Printf("  tokens: %v\n", got)
}

func argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
