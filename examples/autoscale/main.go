// Self-healing fleet: perf-model-driven autoscaling under chaos. A
// 4-replica PaLM 540B fleet takes a diurnal trace — a 6-second arrival
// burst followed by a long light tail — while a fault plan crashes two
// replicas and straggles a third. The static fleet pays for four replicas
// the whole run and sheds through the burst; the autoscaled fleet buys
// capacity while the backlog drain estimate says the warm-up will be
// repaid, then gracefully drains back down through the tail. The example
// prints both runs, the scaling timeline, and the replica lifetime
// windows, and replays the autoscaled run to show the control loop is
// deterministic.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"

	"esti/internal/autoscale"
	"esti/internal/batching"
	"esti/internal/faults"
	"esti/internal/fleet"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

func main() {
	replica := batching.Config{
		Model:       model.PaLM540BPadded(),
		Weights:     model.Int8,
		System:      hardware.TPUv4Slice(4, 4, 4),
		FFN:         partition.FFN2DWeightStationary,
		Attn:        partition.AttnShardBatch,
		Slots:       64,
		MaxLen:      2048 + 256,
		PrefixCache: true,
		Knobs:       perf.DefaultKnobs(),
	}

	// Diurnal shape: 600 requests in a 6 s burst, then 600 more at a tenth
	// the rate — the trace autoscaling exists for. Deadlines give the burst
	// something to lose.
	trace := batching.ZipfPrefixTrace(1200, 0.01, 1024, 48, 1.3, 11)
	reqs := make([]batching.Request, len(trace.Requests))
	copy(reqs, trace.Requests)
	for i := range reqs {
		if i >= 600 {
			reqs[i].Arrival = 6.0 + float64(i-600)*0.1
		}
	}
	trace = batching.WithSLO(batching.Trace{Requests: reqs}, 8.0, 0.3, 5)

	// Chaos: one crash that heals, one that doesn't, one straggler.
	var plan faults.Plan
	plan.Crash(1, 1.0, 5.0)
	plan.Crash(2, 1.5, -1)
	plan.Straggle(0, 2.0, 4.5, 3.0)

	static := fleet.Config{
		Replica:  replica,
		Replicas: 4,
		Policy:   fleet.Affinity,
		Faults:   plan,
		Recovery: fleet.RecoveryPolicy{BrownoutBelow: 0.6},
	}
	sres, err := fleet.Simulate(static, trace)
	if err != nil {
		panic(err)
	}

	auto := static
	auto.Autoscale = &autoscale.Policy{
		MinReplicas:  2,
		MaxReplicas:  8,
		ScaleInBelow: 1.0,
		WarmupCost:   1.5,
	}
	ares, err := fleet.Simulate(auto, trace)
	if err != nil {
		panic(err)
	}

	fmt.Println("burst+tail trace through chaos (2 crashes, 1 straggler):")
	fmt.Printf("  static (4 replicas): %d good tok, %d shed, %d missed, %.1f replica-s, %.1f good tok/replica-s\n",
		sres.GoodTokens, sres.Shed+sres.ShedRetry, sres.DeadlineMisses,
		sres.ReplicaSeconds, sres.GoodputPerReplicaSec)
	fmt.Printf("  autoscaled (%d..%d): %d good tok, %d shed, %d missed, %.1f replica-s, %.1f good tok/replica-s\n",
		auto.Autoscale.MinReplicas, auto.Autoscale.MaxReplicas,
		ares.GoodTokens, ares.Shed+ares.ShedRetry, ares.DeadlineMisses,
		ares.ReplicaSeconds, ares.GoodputPerReplicaSec)
	fmt.Printf("  goodput %.2fx at %.2fx the replica-seconds\n",
		float64(ares.GoodTokens)/float64(sres.GoodTokens),
		ares.ReplicaSeconds/sres.ReplicaSeconds)

	fmt.Printf("\nscaling timeline (%d ticks):\n", ares.Ticks)
	for _, ev := range ares.ScaleEvents {
		fmt.Printf("  t=%6.2f %s replica %d: %s\n", ev.T, ev.Verdict, ev.Replica, ev.Reason)
	}

	fmt.Println("\nreplica lifetime windows:")
	for _, r := range ares.PerReplica {
		until := "end of run"
		if r.Retired {
			until = fmt.Sprintf("released t=%.2f", r.RetiredAt)
		}
		fmt.Printf("  replica %d (%s): t=%.2f → %s, %d routed, ends %s\n",
			r.ID, r.Role, r.AddedAt, until, r.Routed, r.FinalHealth)
	}

	// The control loop is ordinary events in the simulation heap: the same
	// config and trace replay to the identical result.
	replay, err := fleet.Simulate(auto, trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nreplay: %d good tok, %d scale-outs, %d scale-ins — deterministic: %v\n",
		replay.GoodTokens, replay.ScaleOuts, replay.ScaleIns,
		replay.GoodTokens == ares.GoodTokens && replay.ScaleOuts == ares.ScaleOuts &&
			replay.ScaleIns == ares.ScaleIns)
}
