// Fault-tolerant fleet serving: the same 4-replica PaLM 540B fleet under
// injected failures. The example replays one Zipf-template trace through a
// deterministic fault schedule four ways — no faults, a replica crash with
// recovery, a persistent straggler, and a brownout that takes three of four
// replicas — and reports goodput, retries, hedges, and wasted work for
// each, alongside the naive health-blind baseline that never retries. It
// closes with an executable recovery on a tiny model: the decode engine
// dies mid-request, the retained prefill checkpoint re-imports into a
// fresh slot, and token replay rebuilds the stream exactly.
//
//	go run ./examples/faults
package main

import (
	"errors"
	"fmt"

	"esti/internal/batching"
	"esti/internal/engine"
	"esti/internal/fleet"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/reference"
)

func main() {
	replica := batching.Config{
		Model:       model.PaLM540BPadded(),
		Weights:     model.Int8,
		System:      hardware.TPUv4Slice(4, 4, 4),
		FFN:         partition.FFN2DWeightStationary,
		Attn:        partition.AttnShardBatch,
		Slots:       64,
		MaxLen:      2048 + 256,
		PrefixCache: true,
		Knobs:       perf.DefaultKnobs(),
	}
	trace := batching.ZipfPrefixTrace(600, 0.01, 1024, 48, 1.3, 11)
	base := fleet.Config{Replica: replica, Replicas: 4, Policy: fleet.Affinity}

	run := func(c fleet.Config) fleet.Result {
		r, err := fleet.Simulate(c, trace)
		if err != nil {
			panic(err)
		}
		return r
	}
	noFault := run(base)

	// Scenario 1: replica 1 crashes at t=0.5s and rejoins at t=8s. Its
	// in-flight KV is lost; the router re-routes the losers with capped
	// exponential backoff, and warm-template retries re-prefill cheaply
	// through the target's prefix cache.
	crashCfg := base
	crashCfg.Faults.Crash(1, 0.5, 8.0)
	crash := run(crashCfg)
	naiveCfg := crashCfg
	naiveCfg.Recovery = fleet.RecoveryPolicy{MaxRetries: -1}
	naive := run(naiveCfg)

	// Scenario 2: replica 0 runs 8x slow from t=1 and never recovers. The
	// router hedges its stuck requests to the best other replica — first
	// completion wins, the loser's tokens are wasted work.
	slowCfg := base
	slowCfg.Faults.Straggle(0, 1.0, -1, 8.0)
	slow := run(slowCfg)
	slowPlainCfg := slowCfg
	slowPlainCfg.Recovery.NoHedge = true
	slowPlain := run(slowPlainCfg)

	// Scenario 3: brownout. Replicas 1-3 crash for good at t=0.2; with the
	// live fraction below the 0.5 watermark the router sheds low-tier
	// arrivals and contracts capacity around the high tier.
	brownCfg := base
	brownCfg.Faults.Crash(1, 0.2, -1).Crash(2, 0.2, -1).Crash(3, 0.2, -1)
	brownCfg.Recovery.BrownoutBelow = 0.5
	brownTrace := batching.ZipfPrefixTrace(600, 0.01, 1024, 48, 1.3, 11)
	for i := range brownTrace.Requests {
		if i%4 == 0 {
			brownTrace.Requests[i].Priority = 1
		}
	}
	brown, err := fleet.Simulate(brownCfg, brownTrace)
	if err != nil {
		panic(err)
	}

	fmt.Printf("fault-tolerant fleet: 4 x 64-chip PaLM 540B replicas, 600-request Zipf trace\n\n")
	fmt.Printf("  %-26s %15s %7s %8s %7s %7s %7s %9s\n",
		"scenario", "good tok/s/chip", "vs base", "served", "retries", "hedges", "failed", "wasted tok")
	row := func(name string, r fleet.Result) {
		fmt.Printf("  %-26s %15.2f %6.2fx %8d %7d %7d %7d %9d\n",
			name, r.GoodputPerChip, r.GoodputPerChip/noFault.GoodputPerChip,
			r.Completed, r.Retries, r.Hedges, r.Failed,
			r.WastedPrefillTokens+r.WastedDecodeTokens)
	}
	row("no faults", noFault)
	row("crash+recover (smart)", crash)
	row("crash+recover (naive)", naive)
	row("8x straggler, hedged", slow)
	row("8x straggler, no hedge", slowPlain)
	row("brownout (1 of 4 alive)", brown)

	fmt.Printf("\n  crash: recovery p99 %.2fs; replica 1 down %.2fs, %d tokens of its work redone elsewhere\n",
		crash.RecoveryP99, crash.PerReplica[1].Downtime, crash.PerReplica[1].WastedTokens)
	fmt.Printf("  naive baseline keeps routing to the dead replica: %d requests eaten, goodput %.2fx\n",
		naive.Failed, naive.GoodputPerChip/noFault.GoodputPerChip)
	fmt.Printf("  hedging the straggler: p99 %.2fs vs %.2fs unhedged (%d duplicates, %d races won)\n",
		slow.P99, slowPlain.P99, slow.Hedges, slow.HedgeWins)
	high, highServed, shed := 0, 0, 0
	for _, o := range brown.Outcomes {
		if o.Req.Priority > 0 {
			high++
			if o.Err == nil {
				highServed++
			}
		} else if o.Err != nil && errors.Is(o.Err, batching.ErrOverloaded) {
			shed++
		}
	}
	fmt.Printf("  brownout: %d low-tier requests shed, high tier %d/%d served on the surviving replica\n",
		shed, highServed, high)

	// Executable recovery: prefill on one engine, handoff, the decode
	// engine dies after 5 tokens, and the retained checkpoint restores
	// into a fresh slot where replay rebuilds the lost positions.
	cfg := model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	w := reference.NewWeights(cfg, 42)
	opts := engine.Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		KVDType: model.Int8,
	}
	mk := func() *engine.Engine {
		e, err := engine.New(w, hardware.Torus{X: 2, Y: 2, Z: 2}, opts, 8, 48)
		if err != nil {
			panic(err)
		}
		return e
	}
	prompt := []int{5, 18, 31, 44, 57, 6}
	const gen = 12
	pair := &fleet.EnginePair{Prefill: mk(), Decode: mk()}
	recovered, err := pair.GenerateWithFailure(1, 3, 6, prompt, gen, 5)
	if err != nil {
		panic(err)
	}
	clean := &fleet.EnginePair{Prefill: mk(), Decode: mk()}
	want, err := clean.Generate(1, 3, prompt, gen)
	if err != nil {
		panic(err)
	}
	match := len(recovered) == len(want)
	for i := range want {
		if recovered[i] != want[i] {
			match = false
		}
	}
	fmt.Printf("\nexecutable recovery (tiny model, int8 KV): decode replica died after 5 tokens\n")
	fmt.Printf("  failure-free: %v\n", want)
	fmt.Printf("  recovered:    %v (replayed %d tokens, checkpoint crossed the wire twice: %d bytes)\n",
		recovered, pair.RecoveredTokens, pair.HandoffBytes)
	fmt.Printf("  token-exact: %v\n", match)
}
