// Disaggregated serving: the deployment pattern the paper sketches under
// Table 2 — "pipelining a batch-1 prefill server into a batch-64 decoding
// server". This example sizes the two tiers with the analytical model, then
// replays a request stream through the discrete-event simulator to show
// latency percentiles and tier utilization at increasing load.
//
//	go run ./examples/disaggregated
package main

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/serve"
)

func main() {
	sys := hardware.TPUv4Slice(4, 4, 4)
	cfg := serve.Config{
		Model:   model.PaLM540BPadded(),
		Weights: model.Int8,
		Prefill: serve.Tier{System: sys, Batch: 1,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads},
		Decode: serve.Tier{System: sys, Batch: 64,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch},
		Context: 2048,
		Gen:     64,
		Knobs:   perf.DefaultKnobs(),
	}

	m, err := serve.Analyze(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("two-tier PaLM 540B deployment (64 + 64 chips, int8):\n")
	fmt.Printf("  prefill tier: batch %d, %.2fs/batch → %.2f req/s\n",
		cfg.Prefill.Batch, m.PrefillService, m.PrefillRate)
	fmt.Printf("  decode tier:  batch %d, %.2fs/batch → %.2f req/s\n",
		cfg.Decode.Batch, m.DecodeService, m.DecodeRate)
	fmt.Printf("  pipeline: %.2f req/s (%s-bound), min latency %.2fs, %.2f chip-s per generated token\n\n",
		m.Throughput, m.Bottleneck, m.MinLatency, m.CostPerToken)

	fmt.Printf("%-22s %-9s %-9s %-9s %-12s %-12s\n",
		"load (frac of max)", "p50", "p95", "p99", "prefill-busy", "decode-busy")
	for _, frac := range []float64{0.25, 0.5, 0.8, 1.2} {
		inter := 1 / (m.Throughput * frac)
		res, err := serve.Simulate(cfg, 150, inter)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22.2f %-9s %-9s %-9s %-12s %-12s\n", frac,
			fmt.Sprintf("%.2fs", res.P50), fmt.Sprintf("%.2fs", res.P95),
			fmt.Sprintf("%.2fs", res.P99),
			fmt.Sprintf("%.0f%%", res.PrefillBusyFrac*100),
			fmt.Sprintf("%.0f%%", res.DecodeBusyFrac*100))
	}
	fmt.Println("\nat 1.2x load the queue grows without bound — the p99 is the warning sign;")
	fmt.Println("prefill binds first because 2048 input tokens cost 32x the 64 output tokens.")
}
