// Prefix caching and chunked prefill: the template-heavy chatbot scenario.
// Millions of requests open with the same system prompt, so recomputing its
// prefill on every admission wastes exactly the compute the paper shows the
// prefill phase is bound by, and storing a private K/V copy per slot wastes
// the HBM the decode phase is bound by.
//
// The first half replays a shared-system-prompt trace through the
// continuous-batching cost model twice — prefix cache on and off — at the
// same chip budget (package batching, CompareNoCache), with chunked prefill
// bounding how long an arriving prompt may stall running decodes.
//
// The second half drops to the functional engine on a tiny model and does
// the real thing: the system prompt is prefilled once and captured into the
// reference-counted per-chip prefix store; two later requests attach it and
// prefill only their suffixes (PrefillSlotFrom), then decode normally. Every
// logit matches a batch-1 reference model that prefilled the whole prompt
// cold (internal/engine TestPrefixCachedMatchesColdAndReference).
//
//	go run ./examples/prefixcache
package main

import (
	"fmt"

	"esti/internal/batching"
	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/reference"
)

func main() {
	cfg := model.PaLM540BPadded()
	bc := batching.Config{
		Model:        cfg,
		Weights:      model.Int8,
		System:       hardware.TPUv4Slice(4, 4, 4),
		FFN:          partition.FFN2DWeightStationary,
		Attn:         partition.AttnShardBatch,
		Slots:        64,
		MaxLen:       2048 + 256,
		MaxAdmit:     4,
		PrefillChunk: 256,
		Knobs:        perf.DefaultKnobs(),
	}
	const prefixLen, templates = 1792, 3
	trace := batching.SharedPrefixTrace(200, 0.01, prefixLen, templates, 1)
	fmt.Printf("shared-prefix trace: %d requests, %d templates, %d-token system prompts\n",
		len(trace.Requests), templates, prefixLen)
	fmt.Printf("%s, int8 weights, %d chips, prefill budget %d tokens/iteration\n\n",
		cfg.Name, bc.System.Chips(), bc.PrefillChunk)

	cmp, err := batching.CompareNoCache(bc, trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("prefix cache off: %.1f useful tok/s — every admission re-prefills its template\n",
		cmp.Uncached.GenTokensPerSec)
	fmt.Printf("prefix cache on:  %.1f useful tok/s (%.2fx)\n",
		cmp.Cached.GenTokensPerSec, cmp.Speedup)
	fmt.Printf("  %d hits / %d misses — %d of the trace's prompt tokens served from cache\n",
		cmp.Cached.PrefixHits, cmp.Cached.PrefixMisses, cmp.Cached.CachedTokens)
	fmt.Printf("  chunked prefill caps the worst decode stall at %.3fs (vs %.3fs unchunked)\n\n",
		cmp.Cached.MaxIterTime, mustUnchunked(bc, trace).MaxIterTime)

	// Engine-level: the same discipline as real simulated-mesh arithmetic.
	tiny := model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	w := reference.NewWeights(tiny, 42)
	eng, err := engine.New(w, hardware.Torus{X: 2, Y: 2, Z: 2}, engine.Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
	}, 8, 16)
	if err != nil {
		panic(err)
	}
	eng.EnablePrefixCache(0)

	fmt.Println("engine-level prefix reuse (tiny model, 8 simulated chips):")
	system := []int{3, 1, 4, 1, 5} // the shared system prompt
	eng.PrefillSlot(0, system)
	if err := eng.CachePrefix(0, system); err != nil {
		panic(err)
	}
	eng.ReleaseSlot(0)
	fmt.Printf("  system prompt (%d tokens) prefilled once and captured into the store\n", len(system))

	for i, suffix := range [][]int{{7, 8}, {9, 10, 11}} {
		prompt := append(append([]int(nil), system...), suffix...)
		logits, cached := eng.PrefillSlotCached(i, prompt, len(system))
		rm := reference.New(w, 1, 16)
		refL := rm.Prefill(prompt, len(prompt))
		exact := argmax(logits.Row(logits.Rows-1)) == argmax(refL.Row(len(prompt)-1))
		fmt.Printf("  request %d: %d of %d prompt tokens from cache, %d prefilled; next token matches cold reference: %v\n",
			i, cached, len(prompt), len(prompt)-cached, exact)
	}
	st := eng.PrefixStats()
	fmt.Printf("  store: %d entries, %d bytes/chip shard, hit rate %.0f%% (%d tokens never recomputed)\n",
		st.Entries, st.Bytes, st.HitRate()*100, st.HitTokens)
	eng.ReleaseSlot(0)
	eng.ReleaseSlot(1)
	fmt.Println("\nboth admissions are token-exact against batch-1 cold references across")
	fmt.Println("all partitioning layouts (internal/engine TestPrefixCachedMatchesColdAndReference).")
}

func mustUnchunked(c batching.Config, trace batching.Trace) batching.Result {
	c.PrefillChunk = 0
	c.PrefixCache = true
	res, err := batching.Simulate(c, trace)
	if err != nil {
		panic(err)
	}
	return res
}

func argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
