// Package esti is a Go reproduction of "Efficiently Scaling Transformer
// Inference" (Pope et al., MLSYS 2023): the paper's analytical partitioning
// framework for serving very large decoder-only Transformers, a planner that
// selects partitioning layouts per phase, and a functional sharded-inference
// engine that validates the layouts on a simulated chip mesh.
//
// This root package is a facade over the implementation packages:
//
//   - internal/hardware: chip and 3D-torus system model (TPU v4 preset)
//   - internal/model:    Transformer architectures (PaLM family, MT-NLG)
//   - internal/partition: the sharding layouts of Section 3
//   - internal/commcost: closed-form collective costs (Appendix A)
//   - internal/perf:     the calibrated latency/MFU/cost model
//   - internal/planner:  layout selection (Section 4.1)
//   - internal/engine:   functional sharded execution on a simulated mesh
//   - internal/serve:    static two-tier (prefill → decode) pipeline
//   - internal/batching: iteration-level continuous batching
//   - internal/fleet:    multi-replica router + disaggregated pools
//   - internal/autoscale: the fleet's deterministic autoscaling control law
//   - internal/experiments: regeneration of every table and figure
//
// Quick start:
//
//	cfg := esti.PaLM540B()
//	sys := esti.TPUv4Slice(4, 4, 4)
//	res := esti.Decode(esti.Request{
//		Model: cfg, System: sys, Weights: esti.Int8,
//		FFN: esti.FFN2DWeightStationary, Attn: esti.AttnShardBatch,
//		Batch: 64, Context: 2048, Gen: 64,
//	}, esti.DefaultKnobs())
//	fmt.Printf("%.1f ms/token at %.0f%% MFU\n", res.StepTime*1000, res.MFU*100)
//
// Beyond static batches, the continuous-batching subsystem serves dynamic
// mixed-length traffic: requests are admitted into per-sequence KV-cache
// slots at iteration granularity, freed slots are refilled mid-stream, and
// the whole discipline is costed with the same perf model
// (SimulateContinuous) and executed functionally by the engine
// (engine.DecodeSlots / engine.PrefillSlot):
//
//	c := esti.ContinuousConfig{
//		Model: cfg, Weights: esti.Int8, System: sys,
//		FFN: esti.FFN2DWeightStationary, Attn: esti.AttnShardBatch,
//		Slots: 64, MaxLen: 2048 + 256, Knobs: esti.DefaultKnobs(),
//	}
//	res, _ := esti.SimulateContinuous(c, esti.ChatbotTrace(200, 0.05, 1))
//	fmt.Printf("%.0f useful tok/s\n", res.GenTokensPerSec)
//
// Template-heavy traffic additionally reuses shared prompt prefixes
// (ContinuousConfig.PrefixCache + SharedPrefixTrace + CompareNoCache) and
// admits long cold prompts in bounded chunks (PrefillChunk); the
// engine-level counterparts are engine.PrefillSlotFrom and
// engine.PrefillSlotChunked, both token-exact against the cold path.
//
// Above a single replica, the fleet layer routes a request stream across N
// replicas (prefix-affinity vs random vs least-loaded policies), optionally
// splits them into disaggregated prefill and decode pools with per-request
// KV handoff, and sheds work against per-request deadlines and priority
// tiers (SimulateFleet / CompareRouting / ZipfPrefixTrace / WithSLO). The
// executable counterpart is EnginePair: prefill on one engine, cache blocks
// handed to a second engine, decode there, token-exact versus one engine
// doing both phases.
//
// The fleet is fault-tolerant: a FaultPlan injects replica crashes,
// graceful drains, straggler slowdowns, and handoff-link outages into the
// simulation as scheduled events. Lost requests re-route with capped
// exponential backoff, requests stuck on stragglers are hedged to a second
// replica (first completion wins), low-tier traffic is shed first when the
// fleet browns out, and a disaggregated fleet falls back to unified serving
// when its decode pool dies — all tunable through FleetRecoveryPolicy and
// measurable against the naive health-blind baseline (MaxRetries: -1). The
// executable counterpart is EnginePair.GenerateWithFailure: a decode
// replica dies mid-request, the retained prefill checkpoint re-imports
// elsewhere, and token replay rebuilds the stream exactly.
//
// The fleet is also self-sizing: FleetConfig.Autoscale arms a deterministic
// control loop (AutoscalePolicy) that ticks inside the simulation heap,
// reads the perf model's backlog drain estimates plus the fleet's health
// and SLO signals, and scales each pool out when the excess backlog repays
// a new replica's provision-plus-warm-up cost — and gracefully drains
// replicas back in when the fleet runs slack. Hysteresis bands and
// consecutive-tick debounce prevent flapping; scale-ins never drop
// resident KV. The run's scaling timeline (FleetScaleEvent), per-tick
// snapshots (FleetTickStat), and per-replica lifetime windows
// (FleetResult.PerReplica, whose windows sum exactly to
// FleetResult.ReplicaSeconds) make the controller auditable, and the whole
// autoscaled run replays byte-identically under the same seed.
//
// See examples/ for runnable scenarios (examples/continuousbatch for the
// serving comparison, examples/fleet for multi-replica routing,
// examples/faults for failure injection and recovery, examples/autoscale
// for the self-sizing fleet) and cmd/estibench for the paper's tables and
// figures.
package esti

import (
	"esti/internal/autoscale"
	"esti/internal/batching"
	"esti/internal/engine"
	"esti/internal/faults"
	"esti/internal/fleet"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/planner"
)

// Core types, re-exported.
type (
	// Model describes a decoder-only Transformer architecture.
	Model = model.Config
	// System is a torus of identical chips.
	System = hardware.System
	// Torus is a 3D slice shape.
	Torus = hardware.Torus
	// Request is one inference configuration to cost.
	Request = perf.Request
	// Result is a costed phase outcome.
	Result = perf.Result
	// Knobs are the perf-model constants.
	Knobs = perf.Knobs
	// Workload is a planner input.
	Workload = planner.Workload
	// Plan is a planner output.
	Plan = planner.Plan
	// FFNLayout selects a feedforward partitioning.
	FFNLayout = partition.FFNLayout
	// AttnLayout selects an attention partitioning.
	AttnLayout = partition.AttnLayout
	// DType is a storage/wire element format (weights, KV cache, or
	// collective payloads).
	DType = model.DType
)

// Layout and dtype constants.
const (
	FFN1DWeightStationary = partition.FFN1DWeightStationary
	FFN2DWeightStationary = partition.FFN2DWeightStationary
	FFNWeightGatheredX    = partition.FFNWeightGatheredX
	FFNWeightGatheredXY   = partition.FFNWeightGatheredXY
	FFNWeightGatheredXYZ  = partition.FFNWeightGatheredXYZ
	AttnShardHeads        = partition.AttnShardHeads
	AttnShardBatch        = partition.AttnShardBatch
	BF16                  = model.BF16
	Int8                  = model.Int8
	FP32                  = model.FP32
)

// PaLM8B returns the PaLM 8B architecture preset.
func PaLM8B() Model { return model.PaLM8B() }

// PaLM62B returns the PaLM 62B architecture preset.
func PaLM62B() Model { return model.PaLM62B() }

// PaLM540B returns the padded 64-head variant the paper benchmarks.
func PaLM540B() Model { return model.PaLM540BPadded() }

// MTNLG530B returns the Megatron-Turing NLG 530B preset (Table D.1).
func MTNLG530B() Model { return model.MTNLG530B() }

// TPUv4Slice builds a TPU v4 system with the given torus shape.
func TPUv4Slice(x, y, z int) System { return hardware.TPUv4Slice(x, y, z) }

// DefaultKnobs returns the calibrated perf-model constants.
func DefaultKnobs() Knobs { return perf.DefaultKnobs() }

// Prefill costs the prefill phase of a request.
func Prefill(r Request, k Knobs) Result { return perf.Prefill(r, k) }

// Decode costs the decode phase of a request.
func Decode(r Request, k Knobs) Result { return perf.Decode(r, k) }

// MakePlan selects layouts for a workload, minimizing latency.
func MakePlan(cfg Model, sys System, dt DType, w Workload, k Knobs) Plan {
	return planner.Make(cfg, sys, dt, w, planner.MinLatency, k)
}

// MaxContextKV returns the longest servable context under a per-chip KV
// byte budget (a fraction of HBM) with the cache stored in the given
// dtype — Table 1's calculation, where Int8 doubles every entry. Set
// Request.KVDType (analytic) or engine Options.KVDType (functional) to run
// with the quantized cache.
func MaxContextKV(cfg Model, sys System, attn AttnLayout, batch int, kvBudget float64, kv DType) int {
	return planner.MaxContextKV(cfg, sys, attn, batch, kvBudget, kv)
}

// Continuous batching, re-exported.
type (
	// ContinuousConfig describes a continuous-batching pool: one chip
	// slice serving both phases with slot-level admission.
	ContinuousConfig = batching.Config
	// ContinuousResult summarizes a continuous-batching simulation.
	ContinuousResult = batching.Result
	// RequestTrace is an ordered stream of mixed-length requests.
	RequestTrace = batching.Trace
	// ServingComparison is the continuous-vs-static head-to-head.
	ServingComparison = batching.Comparison
	// CacheComparison is the prefix-cache-on-vs-off head-to-head.
	CacheComparison = batching.CacheComparison
)

// ChatbotTrace builds a deterministic mixed-length chatbot workload.
func ChatbotTrace(n int, interarrival float64, seed int64) RequestTrace {
	return batching.ChatbotTrace(n, interarrival, seed)
}

// SharedPrefixTrace builds a template-heavy workload: every request opens
// with one of `templates` shared prefixLen-token system prompts.
func SharedPrefixTrace(n int, interarrival float64, prefixLen, templates int, seed int64) RequestTrace {
	return batching.SharedPrefixTrace(n, interarrival, prefixLen, templates, seed)
}

// CompareNoCache replays the trace with the prefix cache on and off,
// isolating the useful-token win of shared-prefix reuse.
func CompareNoCache(c ContinuousConfig, t RequestTrace) (CacheComparison, error) {
	return batching.CompareNoCache(c, t)
}

// PrefillWithPrefix costs a prefill whose leading prefixLen tokens hit a
// shared-prefix cache with probability hitRate.
func PrefillWithPrefix(r Request, k Knobs, hitRate float64, prefixLen int) Result {
	return perf.PrefillExpected(r, k, hitRate, prefixLen)
}

// SimulateContinuous runs the iteration-level scheduler over a trace.
func SimulateContinuous(c ContinuousConfig, t RequestTrace) (ContinuousResult, error) {
	return batching.Simulate(c, t)
}

// CompareServing replays the same trace through continuous batching and the
// static two-tier pipeline at equal total chip count.
func CompareServing(c ContinuousConfig, t RequestTrace) (ServingComparison, error) {
	return batching.CompareStatic(c, t)
}

// Fleet serving, re-exported.
type (
	// FleetConfig describes a fleet: one replica blueprint stamped N
	// times, a routing policy, and optionally a disaggregated
	// prefill/decode split.
	FleetConfig = fleet.Config
	// FleetResult summarizes a fleet simulation (p50/p99 latency,
	// goodput per chip, affinity and handoff accounting).
	FleetResult = fleet.Result
	// FleetPolicy selects how the router picks a replica.
	FleetPolicy = fleet.Policy
	// FleetRoutingComparison is the affinity-vs-random head-to-head.
	FleetRoutingComparison = fleet.RoutingComparison
	// EnginePair is the executable prefill→decode handoff: two real
	// engines with KV cache blocks moved between them per request.
	EnginePair = fleet.EnginePair
	// EngineOptions are the functional engine's feature knobs; KVDType
	// and WireDType carry the same typed dtype vocabulary as the
	// analytic configs (the Int8KV/Int8Wire bools are deprecated
	// aliases).
	EngineOptions = engine.Options
	// FaultPlan is a deterministic schedule of replica and link failures
	// for FleetConfig.Faults: build with its Crash/Drain/Straggle/LinkFail
	// methods, parse one from the DSL with ParseFaultPlan, or generate one
	// with RandomFaultPlan.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault transition inside a FaultPlan.
	FaultEvent = faults.Event
	// FleetRecoveryPolicy tunes the fleet's fault handling: retry budget
	// and backoff, hedging, brownout watermark, and the decode-pool
	// fallback threshold. MaxRetries -1 selects the naive health-blind
	// baseline.
	FleetRecoveryPolicy = fleet.RecoveryPolicy
	// AutoscalePolicy tunes the fleet's control loop for
	// FleetConfig.Autoscale: replica bounds, the drain-time hysteresis
	// bands, consecutive-tick debounce, cooldown, and the provision and
	// warm-up costs the payback check prices a scale-out against. The zero
	// value selects sensible defaults.
	AutoscalePolicy = autoscale.Policy
	// FleetScaleEvent is one autoscale action in the run's audit trail.
	FleetScaleEvent = fleet.ScaleEvent
	// FleetTickStat is one control tick's fleet snapshot.
	FleetTickStat = fleet.TickStat
)

// Routing policies.
const (
	Affinity    = fleet.Affinity
	LeastLoaded = fleet.LeastLoaded
	RandomRoute = fleet.Random
)

// Admission and validation sentinels, checkable with errors.Is at every
// layer (serve, batching, fleet).
var (
	ErrInvalidConfig = batching.ErrInvalidConfig
	ErrInfeasible    = batching.ErrInfeasible
	ErrInvalidTrace  = batching.ErrInvalidTrace
	ErrPromptTooLong = batching.ErrPromptTooLong
	ErrNoSlots       = batching.ErrNoSlots
	ErrDeadline      = batching.ErrDeadline
	ErrOverloaded    = batching.ErrOverloaded
	ErrReplicaDown   = batching.ErrReplicaDown
	ErrHedged        = batching.ErrHedged
)

// ParseFaultPlan parses the compact fault DSL — comma-separated terms like
// "crash:1@2+4" (replica 1 crashes at t=2, recovers 4s later),
// "slow:0@1-3x2.5" (replica 0 runs 2.5x slow over [1,3)), "drain:2@5", and
// "link:2.5-3" (handoff link down over [2.5,3)) — into a FaultPlan. This is
// the same syntax estiserve's -fault-plan flag takes.
func ParseFaultPlan(s string) (FaultPlan, error) {
	return faults.Parse(s)
}

// RandomFaultPlan generates a seeded, always-valid fault plan over the
// first `horizon` seconds of a `replicas`-replica fleet — the chaos-testing
// input: same seed, same faults.
func RandomFaultPlan(seed int64, replicas int, horizon float64) FaultPlan {
	return faults.RandomPlan(seed, replicas, horizon)
}

// ZipfPrefixTrace builds a template-heavy workload whose template ranks
// follow a Zipf(s) law: a handful of hot system prompts and a long tail,
// the shape that makes fleet routing matter.
func ZipfPrefixTrace(n int, interarrival float64, prefixLen, templates int, s float64, seed int64) RequestTrace {
	return batching.ZipfPrefixTrace(n, interarrival, prefixLen, templates, s, seed)
}

// WithSLO stamps deadlines and priority tiers onto a copy of the trace:
// highFrac of requests become high tier with half the slack.
func WithSLO(t RequestTrace, slack, highFrac float64, seed int64) RequestTrace {
	return batching.WithSLO(t, slack, highFrac, seed)
}

// SimulateFleet replays a trace through N replicas behind the router.
func SimulateFleet(c FleetConfig, t RequestTrace) (FleetResult, error) {
	return fleet.Simulate(c, t)
}

// CompareRouting replays the same trace under prefix-affinity and random
// routing, isolating what the routing signal is worth.
func CompareRouting(c FleetConfig, t RequestTrace) (FleetRoutingComparison, error) {
	return fleet.CompareRouting(c, t)
}
