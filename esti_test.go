package esti

import (
	"errors"
	"math"
	"testing"
)

// The facade must reproduce the paper's headline through the public API
// alone: 540B int8 batch-64 decode at ~29 ms/token on 64 chips.
func TestFacadeHeadline(t *testing.T) {
	res := Decode(Request{
		Model: PaLM540B(), System: TPUv4Slice(4, 4, 4), Weights: Int8,
		FFN: FFN2DWeightStationary, Attn: AttnShardBatch,
		Batch: 64, Context: 2048, Gen: 64,
	}, DefaultKnobs())
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	ms := res.StepTime * 1000
	if ms < 22 || ms > 38 {
		t.Errorf("headline decode = %.1f ms/token, want ~29", ms)
	}
}

func TestFacadePresets(t *testing.T) {
	for _, tc := range []struct {
		cfg   Model
		wantB float64
	}{
		{PaLM8B(), 8.6}, {PaLM62B(), 62.5}, {PaLM540B(), 558}, {MTNLG530B(), 530},
	} {
		gotB := tc.cfg.Params() / 1e9
		if math.Abs(gotB-tc.wantB)/tc.wantB > 0.05 {
			t.Errorf("%s params = %.1fB, want ~%.0fB", tc.cfg.Name, gotB, tc.wantB)
		}
	}
}

func TestFacadeMakePlan(t *testing.T) {
	p := MakePlan(PaLM62B(), TPUv4Slice(2, 2, 2), BF16,
		Workload{Batch: 32, Context: 512, Gen: 32}, DefaultKnobs())
	if !p.Feasible {
		t.Fatalf("plan infeasible: %s", p.Reason)
	}
	if p.TotalLatency <= 0 {
		t.Error("non-positive latency")
	}
	if p.Decode.FFN != FFN2DWeightStationary && p.Decode.FFN != FFN1DWeightStationary {
		t.Errorf("decode picked %v, want a weight-stationary layout", p.Decode.FFN)
	}
}

// The fleet layer through the facade alone: a Zipf trace routed across two
// replicas with affinity, plus the sentinel vocabulary via errors.Is.
func TestFacadeFleet(t *testing.T) {
	c := FleetConfig{
		Replica: ContinuousConfig{
			Model: PaLM540B(), Weights: Int8, System: TPUv4Slice(4, 4, 4),
			FFN: FFN2DWeightStationary, Attn: AttnShardBatch,
			Slots: 64, MaxLen: 2048 + 256, PrefixCache: true, Knobs: DefaultKnobs(),
		},
		Replicas: 2, Policy: Affinity,
	}
	trace := WithSLO(ZipfPrefixTrace(60, 0.05, 512, 8, 1.3, 1), 60, 0.25, 2)
	res, err := SimulateFleet(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 || res.Shed != 0 {
		t.Fatalf("completed %d shed %d, want 60/0", res.Completed, res.Shed)
	}
	if res.AffinityHits == 0 || res.GoodputPerChip <= 0 {
		t.Errorf("degenerate fleet result: hits %d goodput %.3f", res.AffinityHits, res.GoodputPerChip)
	}
	if _, err := SimulateFleet(FleetConfig{Replica: c.Replica}, trace); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("zero replicas: got %v, want ErrInvalidConfig", err)
	}
}

func TestFacadePrefill(t *testing.T) {
	res := Prefill(Request{
		Model: PaLM62B(), System: TPUv4Slice(4, 2, 2), Weights: Int8,
		FFN: FFN2DWeightStationary, Attn: AttnShardHeads,
		Batch: 1, Context: 2048,
	}, DefaultKnobs())
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	// Table 3: 0.16s.
	if res.Time < 0.10 || res.Time > 0.25 {
		t.Errorf("62B batch-1 prefill = %.3fs, want ~0.16s", res.Time)
	}
}

// The fault-tolerance surface works through the facade alone: a parsed
// fault plan injects a crash, the fleet recovers with retries, and the
// sentinel family identifies what happened to each request.
func TestFacadeFaults(t *testing.T) {
	plan, err := ParseFaultPlan("crash:1@0.5+4, slow:0@1-3x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(plan.Events))
	}
	c := FleetConfig{
		Replica: ContinuousConfig{
			Model: PaLM540B(), Weights: Int8, System: TPUv4Slice(4, 4, 4),
			FFN: FFN2DWeightStationary, Attn: AttnShardBatch,
			Slots: 64, MaxLen: 2048 + 256, PrefixCache: true, Knobs: DefaultKnobs(),
		},
		Replicas: 2, Policy: Affinity, Faults: plan,
		Recovery: FleetRecoveryPolicy{BrownoutBelow: 0.4},
	}
	trace := ZipfPrefixTrace(80, 0.02, 512, 8, 1.3, 1)
	res, err := SimulateFleet(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Shed+res.ShedRetry+res.Failed != 80 {
		t.Fatalf("outcome partition broken: %+v", res)
	}
	if res.Retries == 0 {
		t.Error("a crash with in-flight work should force retries")
	}
	for _, o := range res.Outcomes {
		if o.Err != nil && !errors.Is(o.Err, ErrReplicaDown) && !errors.Is(o.Err, ErrDeadline) &&
			!errors.Is(o.Err, ErrOverloaded) {
			t.Errorf("outcome error outside the exported family: %v", o.Err)
		}
	}
	for _, w := range res.Wasted {
		if !errors.Is(w.Cause, ErrReplicaDown) && !errors.Is(w.Cause, ErrHedged) {
			t.Errorf("wasted-work cause outside the exported family: %v", w.Cause)
		}
	}
	if rp := RandomFaultPlan(7, 4, 10); rp.Validate(4) != nil || len(rp.Events) == 0 {
		t.Errorf("RandomFaultPlan invalid or empty: %+v", rp)
	}
	if _, err := ParseFaultPlan("crash:x@2"); err == nil {
		t.Error("malformed DSL accepted")
	}
}
