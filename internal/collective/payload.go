package collective

import (
	"math"

	"esti/internal/mesh"
	"esti/internal/quant"
)

// Payload is the wire format a collective's chunks travel in. The
// algorithms in this package are written once against this interface and
// stay format-agnostic: every chunk a collective moves is encoded by the
// op's payload on send, decoded (or folded) on receive, and relayed in
// transit form without re-encoding. Two formats ship today —
//
//	WireF32:  4 bytes per element, exact (the default).
//	WireInt8: 1 byte per element plus one float32 scale per transmitted
//	          chunk (symmetric per-chunk quantization via package quant),
//	          the paper's §3.3 insight — charge collectives by bytes, then
//	          shrink the bytes — applied to activations on the wire.
//
// A future fp16 or block-quantized format is one more implementation of
// this interface; nothing in the ring algorithms changes. Implementations
// must be stateless values (they are copied inside Op on every collective
// call of a steady-state decode step) and draw all scratch from the chip's
// message pools so the hot path stays allocation-free.
//
// Accuracy contract of WireInt8: a gathered chunk is quantized exactly
// once, at its source chip, and relayed raw — error per element is bounded
// by half a quantization step (0.5/127 of the chunk's max magnitude)
// regardless of ring length. Reducing collectives (ReduceScatter,
// AllReduce) fold in float32 and re-quantize the running partial sum once
// per hop, so a K-chip reduction accumulates at most K-1 half-steps of its
// running magnitude. NaN/Inf inputs are clamped at encode time
// (quant.QuantizeRowInto), so scales are always finite-positive and a
// poisoned activation cannot NaN the fabric.
type Payload interface {
	// send encodes data and delivers it to dst (copy semantics: the
	// caller keeps data).
	send(c *mesh.Chip, dst int, tag uint64, data []float32)
	// recvInto receives the (src, tag) message, decodes it into dst, and
	// returns the chunk in transit form for a later relay or drop.
	recvInto(c *mesh.Chip, src int, tag uint64, dst []float32) transit
	// relay forwards a received chunk unchanged (ownership transfers).
	relay(c *mesh.Chip, dst int, tag uint64, t transit)
	// drop recycles a received chunk that will not be relayed.
	drop(c *mesh.Chip, t transit)
	// recvAdd receives the (src, tag) message and accumulates its decoded
	// values into dst (the reduction fold), recycling the wire buffer.
	recvAdd(c *mesh.Chip, src int, tag uint64, dst []float32)
	// recvTake receives the (src, tag) message and returns its decoded
	// values in a pool-owned float32 buffer the caller may Recycle.
	recvTake(c *mesh.Chip, src int, tag uint64) []float32
}

// WireF32 is the exact float32 wire format, the zero-cost default: sends
// copy into pooled buffers, receives hand the delivered buffer straight to
// the consumer.
var WireF32 Payload = f32Payload{}

// WireInt8 is the per-chunk-scaled int8 wire format: one byte per element
// plus a 4-byte scale per chunk, quartering activation collective volume
// versus float32 (halving it versus the analytic model's bf16 baseline).
var WireInt8 Payload = int8Payload{}

// transit is a received chunk in wire form, held between the receive that
// folded it into the output and the send that relays it onward.
type transit struct {
	f     []float32
	q     []int8
	scale float32
}

type f32Payload struct{}

func (f32Payload) send(c *mesh.Chip, dst int, tag uint64, data []float32) {
	c.Send(dst, tag, data)
}

func (f32Payload) recvInto(c *mesh.Chip, src int, tag uint64, dst []float32) transit {
	buf := c.Recv(src, tag)
	if len(buf) != len(dst) {
		panic("collective: chunk size mismatch")
	}
	copy(dst, buf)
	return transit{f: buf}
}

func (f32Payload) relay(c *mesh.Chip, dst int, tag uint64, t transit) {
	c.SendOwned(dst, tag, t.f)
}

func (f32Payload) drop(c *mesh.Chip, t transit) {
	c.Recycle(t.f)
}

func (f32Payload) recvAdd(c *mesh.Chip, src int, tag uint64, dst []float32) {
	in := c.Recv(src, tag)
	if len(in) != len(dst) {
		panic("collective: chunk size mismatch")
	}
	in = in[:len(dst)]
	for i, v := range in {
		dst[i] += v
	}
	c.Recycle(in)
}

func (f32Payload) recvTake(c *mesh.Chip, src int, tag uint64) []float32 {
	return c.Recv(src, tag)
}

type int8Payload struct{}

func (int8Payload) send(c *mesh.Chip, dst int, tag uint64, data []float32) {
	q := c.Buffer8(len(data))
	scale := quant.QuantizeRowInto(q, data)
	c.SendOwned8(dst, tag, q, scale)
}

func (int8Payload) recvInto(c *mesh.Chip, src int, tag uint64, dst []float32) transit {
	q, scale := c.Recv8(src, tag)
	if len(q) != len(dst) {
		panic("collective: chunk size mismatch")
	}
	quant.DequantizeRowInto(dst, q, scale)
	return transit{q: q, scale: scale}
}

func (int8Payload) relay(c *mesh.Chip, dst int, tag uint64, t transit) {
	c.SendOwned8(dst, tag, t.q, t.scale)
}

func (int8Payload) drop(c *mesh.Chip, t transit) {
	c.Recycle8(t.q)
}

func (int8Payload) recvAdd(c *mesh.Chip, src int, tag uint64, dst []float32) {
	q, scale := c.Recv8(src, tag)
	if len(q) != len(dst) {
		panic("collective: chunk size mismatch")
	}
	quant.AxpyF32I8(dst, scale, q)
	c.Recycle8(q)
}

func (int8Payload) recvTake(c *mesh.Chip, src int, tag uint64) []float32 {
	q, scale := c.Recv8(src, tag)
	out := c.Buffer(len(q))
	quant.DequantizeRowInto(out, q, scale)
	c.Recycle8(q)
	return out
}

// Int8WireError bounds the absolute per-element error WireInt8 introduces
// into a non-reducing collective (all-gather, all-to-all) for a chunk whose
// maximum magnitude is maxAbs: half a quantization step. Reducing
// collectives over K chips accumulate at most K-1 of these on the running
// partial-sum magnitude. Exported for tests and callers sizing tolerances.
func Int8WireError(maxAbs float64) float64 {
	if math.IsNaN(maxAbs) {
		return 0
	}
	return maxAbs / 127 / 2
}
