package collective

import (
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"esti/internal/hardware"
	"esti/internal/mesh"
)

// streamWires are the payload formats the bit-identity properties are
// asserted for: exact float32 and the lossy-but-deterministic int8 wire.
var streamWires = []struct {
	name string
	wire Payload
}{
	{"fp32", nil},
	{"int8", WireInt8},
}

// adversarialDelay sleeps a small random time, forcing every interleaving
// of consumer work and ring progress: slow consumers make later chunks
// queue up, fast ones make the stream wait on the wire. Bit-identity must
// hold either way because the wire schedule (message sizes, tags,
// quantization points) is independent of consumer timing.
func adversarialDelay(rng *rand.Rand) {
	if d := rng.Intn(3); d > 0 {
		time.Sleep(time.Duration(d) * 100 * time.Microsecond)
	}
}

// TestAllGatherStreamBitIdenticalToBarrier: under random per-chunk consumer
// delays, the streamed gather's returned buffer — and every chunk as
// delivered to the consumer — is bitwise equal to the barrier AllGather,
// for fp32 and int8 payloads, across 1-, 2-, and 8-chip groups.
func TestAllGatherStreamBitIdenticalToBarrier(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 2, Z: 2}
	const chunkLen = 5
	shardFor := func(rank int) []float32 {
		s := make([]float32, chunkLen)
		for i := range s {
			s[i] = float32(math.Sin(float64(rank*31+i*7))) * 3.7
		}
		return s
	}
	for _, w := range streamWires {
		for _, g := range []hardware.AxisGroup{hardware.GroupX, hardware.GroupYZ, hardware.GroupXYZ} {
			barrier, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
				rank, _ := c.GroupRank(g)
				return AllGather(Op{Chip: c, ID: 1, Wire: w.wire}, g, shardFor(rank))
			})
			seen := make([]map[int][]float32, tr.Chips())
			var mu sync.Mutex
			streamed, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
				rank, _ := c.GroupRank(g)
				rng := rand.New(rand.NewSource(int64(c.Rank) + 99))
				got := map[int][]float32{}
				out := AllGatherStream(Op{Chip: c, ID: 1, Wire: w.wire}, g, shardFor(rank),
					func(idx int, chunk []float32) {
						adversarialDelay(rng)
						if _, dup := got[idx]; dup {
							t.Errorf("%s group %v chip %d: chunk %d consumed twice", w.name, g, c.Rank, idx)
						}
						got[idx] = append([]float32(nil), chunk...)
					})
				mu.Lock()
				seen[c.Rank] = got
				mu.Unlock()
				return out
			})
			for rank := range streamed {
				if !bitsEqual(streamed[rank], barrier[rank]) {
					t.Fatalf("%s group %v chip %d: streamed buffer differs from barrier", w.name, g, rank)
				}
				_, size := meshChip0GroupRank(tr, g)
				if len(seen[rank]) != size {
					t.Fatalf("%s group %v chip %d: consume called for %d chunks, want %d",
						w.name, g, rank, len(seen[rank]), size)
				}
				for idx, chunk := range seen[rank] {
					if !bitsEqual(chunk, barrier[rank][idx*chunkLen:(idx+1)*chunkLen]) {
						t.Fatalf("%s group %v chip %d: delivered chunk %d differs from barrier",
							w.name, g, rank, idx)
					}
				}
			}
		}
	}
}

// TestReduceScatterStreamBitIdenticalToBarrier: the lazy-producer form,
// with each chunk produced on demand under random delays, returns the same
// bits as the barrier ReduceScatter over the same logical input — fp32 and
// int8 (whose per-hop requantization makes any deviation in fold order or
// quantization points visible immediately).
func TestReduceScatterStreamBitIdenticalToBarrier(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 2, Z: 2}
	const chunkLen = 4
	fullFor := func(rank, size int) []float32 {
		f := make([]float32, size*chunkLen)
		for i := range f {
			f[i] = float32(math.Cos(float64(rank*17+i*5))) * float32(rank+1)
		}
		return f
	}
	for _, w := range streamWires {
		for _, g := range []hardware.AxisGroup{hardware.GroupX, hardware.GroupYZ, hardware.GroupXYZ} {
			barrier, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
				rank, size := c.GroupRank(g)
				return ReduceScatter(Op{Chip: c, ID: 1, Wire: w.wire}, g, fullFor(rank, size))
			})
			counts := make([][]int, tr.Chips())
			var mu sync.Mutex
			streamed, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
				rank, size := c.GroupRank(g)
				ref := fullFor(rank, size)
				work := make([]float32, len(ref)) // produced lazily, never pre-filled
				rng := rand.New(rand.NewSource(int64(c.Rank) + 7))
				cnt := make([]int, size)
				out := ReduceScatterStream(Op{Chip: c, ID: 1, Wire: w.wire}, g, work,
					func(idx int, chunk []float32) {
						adversarialDelay(rng)
						cnt[idx]++
						copy(chunk, ref[idx*chunkLen:(idx+1)*chunkLen])
					})
				mu.Lock()
				counts[c.Rank] = cnt
				mu.Unlock()
				return out
			})
			for rank := range streamed {
				if !bitsEqual(streamed[rank], barrier[rank]) {
					t.Fatalf("%s group %v chip %d: streamed shard differs from barrier", w.name, g, rank)
				}
				for idx, n := range counts[rank] {
					if n != 1 {
						t.Fatalf("%s group %v chip %d: chunk %d produced %d times, want 1",
							w.name, g, rank, idx, n)
					}
				}
			}
		}
	}
}

// TestStreamNilCallbackMatchesBarrier: a nil consumer/producer degrades to
// the barrier collective exactly (the documented contract the engine's
// single-chip path and simple callers rely on).
func TestStreamNilCallbackMatchesBarrier(t *testing.T) {
	tr := hardware.Torus{X: 4, Y: 1, Z: 1}
	shard := []float32{1.5, -2.25, 3}
	ag, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		return AllGather(Op{Chip: c, ID: 1}, hardware.GroupX, shard)
	})
	ags, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		return AllGatherStream(Op{Chip: c, ID: 1}, hardware.GroupX, shard, nil)
	})
	for rank := range ag {
		if !bitsEqual(ag[rank], ags[rank]) {
			t.Fatalf("chip %d: nil-consumer stream differs from barrier gather", rank)
		}
	}
	rs, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, size := c.GroupRank(hardware.GroupX)
		full := make([]float32, size*2)
		for i := range full {
			full[i] = float32(rank*10 + i)
		}
		return ReduceScatter(Op{Chip: c, ID: 1}, hardware.GroupX, full)
	})
	rss, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, size := c.GroupRank(hardware.GroupX)
		full := make([]float32, size*2)
		for i := range full {
			full[i] = float32(rank*10 + i)
		}
		return ReduceScatterStream(Op{Chip: c, ID: 1}, hardware.GroupX, full, nil)
	})
	for rank := range rs {
		if !bitsEqual(rs[rank], rss[rank]) {
			t.Fatalf("chip %d: nil-producer stream differs from barrier reduce-scatter", rank)
		}
	}
}

// TestStreamInterleavedWithBarrierOps: streamed and barrier collectives
// share the same tag discipline, so a program can interleave them freely as
// long as op ids advance — the id-consumption contract stream.go documents.
// Each result is checked against its standalone barrier twin.
func TestStreamInterleavedWithBarrierOps(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 2, Z: 2}
	g := hardware.GroupXYZ
	const chunkLen = 3
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, size := c.GroupRank(g)
		shard := make([]float32, chunkLen)
		for i := range shard {
			shard[i] = float32(rank*100 + i)
		}
		op := Op{Chip: c, ID: 1}
		a := AllGatherStream(op, g, shard, func(int, []float32) {})
		op = op.Advance(1)
		b := AllGather(op, g, shard)
		op = op.Advance(1)
		full := make([]float32, size*chunkLen)
		for i := range full {
			full[i] = float32(rank + i)
		}
		cRes := ReduceScatterStream(op, g, full, func(idx int, chunk []float32) {
			for i := range chunk {
				chunk[i] = float32(rank + idx*chunkLen + i)
			}
		})
		op = op.Advance(1)
		arIn := make([]float32, size)
		for i := range arIn {
			arIn[i] = float32(rank)
		}
		d := AllReduce(op, g, arIn) // consumes AllReduceIDs
		op = op.Advance(AllReduceIDs)
		e := AllGatherStream(op, g, shard, nil)
		out := append(append([]float32(nil), a...), b...)
		out = append(out, cRes...)
		out = append(out, d...)
		return append(out, e...)
	})
	// Cross-chip consistency: the gathers are identical on every chip, and
	// each chip's reduce-scatter shard matches the all-chip sum.
	_, size := meshChip0GroupRank(tr, g)
	agLen := size * chunkLen
	rsOff := 2 * agLen
	arOff := rsOff + chunkLen
	eOff := arOff + size
	for rank, got := range results {
		if len(got) != eOff+agLen {
			t.Fatalf("chip %d: result length %d, want %d", rank, len(got), eOff+agLen)
		}
		for i := 0; i < agLen; i++ {
			want := float32((i/chunkLen)*100 + i%chunkLen)
			if got[i] != want || got[agLen+i] != want || got[eOff+i] != want {
				t.Fatalf("chip %d: interleaved gather wrong at %d", rank, i)
			}
		}
		for i := 0; i < chunkLen; i++ {
			var want float32
			for r := 0; r < size; r++ {
				want += float32(r + rank*chunkLen + i)
			}
			if got[rsOff+i] != want {
				t.Fatalf("chip %d: interleaved reduce-scatter wrong at %d: %g != %g",
					rank, i, got[rsOff+i], want)
			}
		}
		wantAR := float32(size * (size - 1) / 2)
		for i := 0; i < size; i++ {
			if got[arOff+i] != wantAR {
				t.Fatalf("chip %d: interleaved all-reduce wrong at %d: %g != %g",
					rank, i, got[arOff+i], wantAR)
			}
		}
	}
}

// TestStreamTagCollisionPanics: a streamed collective reusing a live op id
// hits the mesh's tag-collision check, same as a barrier collective would —
// the op-id discipline audit for the streaming forms.
func TestStreamTagCollisionPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected tag-collision panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "tag collision") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	tr := hardware.Torus{X: 2, Y: 1, Z: 1}
	m := mesh.New(tr)
	m.Run(func(c *mesh.Chip) {
		shard := []float32{1, 2}
		if c.Rank == 0 {
			// Plant a message on the wire with the tag the stream's step-0
			// send will reuse: (src 0, tag 5<<20|0) is now in flight twice.
			c.Send(1, Op{ID: 5}.tag(0), shard)
		}
		AllGatherStream(Op{Chip: c, ID: 5}, hardware.GroupX, shard, nil)
	})
}

// TestStreamNoGoroutineLeak: the streaming forms add no background
// goroutines — after the mesh run returns, the goroutine count settles back
// to where it started.
func TestStreamNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	tr := hardware.Torus{X: 2, Y: 2, Z: 2}
	for iter := 0; iter < 3; iter++ {
		runSPMD(tr, func(c *mesh.Chip) []float32 {
			rank, size := c.GroupRank(hardware.GroupXYZ)
			shard := []float32{float32(rank), float32(rank + 1)}
			out := AllGatherStream(Op{Chip: c, ID: 1}, hardware.GroupXYZ, shard,
				func(int, []float32) { time.Sleep(50 * time.Microsecond) })
			full := make([]float32, size*2)
			ReduceScatterStream(Op{Chip: c, ID: 2}, hardware.GroupXYZ, full,
				func(idx int, chunk []float32) {
					for i := range chunk {
						chunk[i] = float32(idx + i)
					}
				})
			return out
		})
	}
	// Let mesh worker goroutines finish exiting before counting.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestStreamMeasuresOverlap: consumer work inside the stream window is
// attributed to the mesh's overlap counters, and the measured fraction
// stays in [0, 1]; ResetCounters clears it.
func TestStreamMeasuresOverlap(t *testing.T) {
	tr := hardware.Torus{X: 4, Y: 1, Z: 1}
	_, m := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, _ := c.GroupRank(hardware.GroupX)
		shard := []float32{float32(rank)}
		return AllGatherStream(Op{Chip: c, ID: 1}, hardware.GroupX, shard,
			func(int, []float32) { time.Sleep(200 * time.Microsecond) })
	})
	if m.OverlapWorkNS() <= 0 {
		t.Fatal("no overlap work recorded despite sleeping consumers")
	}
	f := m.MeasuredOverlapFrac()
	if f <= 0 || f > 1 {
		t.Fatalf("measured overlap fraction %g outside (0, 1]", f)
	}
	m.ResetCounters()
	if m.OverlapWorkNS() != 0 || m.OverlapWaitNS() != 0 || m.MeasuredOverlapFrac() != 0 {
		t.Fatal("ResetCounters did not clear overlap counters")
	}
}

// bitsEqual compares float32 slices bitwise (NaN-safe, -0 != +0 distinct).
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
