package collective

import (
	"math"
	"math/rand"
	"testing"

	"esti/internal/commcost"
	"esti/internal/hardware"
	"esti/internal/mesh"
)

// wireGroups are the group sizes the acceptance bar names: 1 (no wire), 2
// and 8 chips.
var wireGroups = []hardware.Torus{
	{X: 1, Y: 1, Z: 1},
	{X: 2, Y: 1, Z: 1},
	{X: 2, Y: 2, Z: 2},
}

// Measured per-chip traffic must equal the closed-form wire volumes for
// BOTH payload formats, chunk overheads included — the byte-accurate
// counters are what make the int8 claim checkable — and the int8 format
// must move at most 0.55× the fp32 bytes for every collective.
func TestWireVolumesMatchCostModelBothFormats(t *testing.T) {
	const shardLen = 24
	formats := []struct {
		name string
		p    Payload
		w    commcost.WireFormat
	}{
		{"fp32", WireF32, commcost.WireFP32},
		{"int8", WireInt8, commcost.WireInt8},
	}
	for _, tr := range wireGroups {
		k := tr.Chips()
		perCollective := map[string][4]float64{} // format → AG, RS, AR, A2A bytes/chip
		for _, f := range formats {
			t.Run(tr.String()+"/"+f.name, func(t *testing.T) {
				measure := func(fn func(c *mesh.Chip)) float64 {
					m := mesh.New(tr)
					m.Run(fn)
					if f.name == "fp32" && m.Int8BytesSent() != 0 {
						t.Fatalf("fp32 payload sent %d int8 bytes", m.Int8BytesSent())
					}
					if f.name == "int8" && m.Int8BytesSent() != m.BytesSent() {
						t.Fatalf("int8 payload sent %d of %d bytes as int8",
							m.Int8BytesSent(), m.BytesSent())
					}
					return float64(m.BytesSent()) / float64(m.Chips())
				}
				ag := measure(func(c *mesh.Chip) {
					AllGather(Op{Chip: c, ID: 1, Wire: f.p}, hardware.GroupXYZ, make([]float32, shardLen))
				})
				if want := commcost.AllGatherWireVolume(shardLen, k, f.w); ag != want {
					t.Errorf("all-gather bytes/chip = %g, want %g", ag, want)
				}
				agBi := measure(func(c *mesh.Chip) {
					AllGatherBidirectional(Op{Chip: c, ID: 1, Wire: f.p}, hardware.GroupXYZ, make([]float32, shardLen))
				})
				if agBi != ag {
					t.Errorf("bidirectional all-gather bytes/chip = %g, want %g (same as ring)", agBi, ag)
				}
				rs := measure(func(c *mesh.Chip) {
					ReduceScatter(Op{Chip: c, ID: 1, Wire: f.p}, hardware.GroupXYZ, make([]float32, k*shardLen))
				})
				if want := commcost.ReduceScatterWireVolume(float64(k*shardLen), k, f.w); rs != want {
					t.Errorf("reduce-scatter bytes/chip = %g, want %g", rs, want)
				}
				ar := measure(func(c *mesh.Chip) {
					AllReduce(Op{Chip: c, ID: 1, Wire: f.p}, hardware.GroupXYZ, make([]float32, k*shardLen))
				})
				if want := commcost.AllReduceWireVolume(float64(k*shardLen), k, f.w); ar != want {
					t.Errorf("all-reduce bytes/chip = %g, want %g", ar, want)
				}
				a2a := measure(func(c *mesh.Chip) {
					shards := make([][]float32, k)
					for i := range shards {
						shards[i] = make([]float32, shardLen)
					}
					AllToAll(Op{Chip: c, ID: 1, Wire: f.p}, hardware.GroupXYZ, shards)
				})
				if want := commcost.AllToAllWireVolume(float64(k*shardLen), k, f.w); a2a != want {
					t.Errorf("all-to-all bytes/chip = %g, want %g", a2a, want)
				}
				perCollective[f.name] = [4]float64{ag, rs, ar, a2a}
			})
		}
		if k == 1 {
			continue
		}
		names := [4]string{"all-gather", "reduce-scatter", "all-reduce", "all-to-all"}
		for i := range names {
			fp, q8 := perCollective["fp32"][i], perCollective["int8"][i]
			if q8 > 0.55*fp {
				t.Errorf("%v %s: int8 %g bytes/chip not <= 0.55x fp32 %g", tr, names[i], q8, fp)
			}
		}
	}
}

// Int8 all-gather semantics: every receiver reconstructs each remote chunk
// within half a quantization step of its source values (one quantization
// at the source, raw relays), and its own chunk exactly.
func TestInt8AllGatherWithinBound(t *testing.T) {
	for _, tr := range wireGroups {
		rng := rand.New(rand.NewSource(7))
		const chunkLen = 17
		data := make([][]float32, tr.Chips())
		for i := range data {
			data[i] = make([]float32, chunkLen)
			for j := range data[i] {
				data[i][j] = (rng.Float32() - 0.5) * float32(math.Pow(10, float64(i%4)-1))
			}
		}
		results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
			return AllGather(Op{Chip: c, ID: 1, Wire: WireInt8}, hardware.GroupXYZ, data[c.Rank])
		})
		for rank, got := range results {
			for src := 0; src < tr.Chips(); src++ {
				var maxAbs float64
				for _, v := range data[src] {
					if a := math.Abs(float64(v)); a > maxAbs {
						maxAbs = a
					}
				}
				bound := Int8WireError(maxAbs) + 1e-12
				for j := 0; j < chunkLen; j++ {
					gotV := float64(got[src*chunkLen+j])
					wantV := float64(data[src][j])
					if src == rank && gotV != wantV {
						t.Fatalf("chip %d: own chunk not exact at %d", rank, j)
					}
					if e := math.Abs(gotV - wantV); e > bound {
						t.Fatalf("chip %d chunk %d[%d]: error %g > bound %g", rank, src, j, e, bound)
					}
				}
			}
		}
	}
}

// Int8 reduce-scatter semantics: the result is within K-1 quantization
// half-steps (of the running partial-sum magnitude) of the exact sum —
// the bounded-error contract of fold-in-float32, requantize-per-hop.
func TestInt8ReduceScatterWithinBound(t *testing.T) {
	for _, tr := range wireGroups {
		k := tr.Chips()
		rng := rand.New(rand.NewSource(9))
		const chunkLen = 13
		data := make([][]float32, k)
		for i := range data {
			data[i] = make([]float32, k*chunkLen)
			for j := range data[i] {
				data[i][j] = rng.Float32()*4 - 2
			}
		}
		results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
			return ReduceScatter(Op{Chip: c, ID: 1, Wire: WireInt8}, hardware.GroupXYZ, data[c.Rank])
		})
		// Worst-case running magnitude: max over prefixes of partial sums;
		// bound loosely by the max |exact partial| over any subset ≤ sum of
		// max magnitudes.
		var magSum float64
		for _, d := range data {
			var m float64
			for _, v := range d {
				if a := math.Abs(float64(v)); a > m {
					m = a
				}
			}
			magSum += m
		}
		bound := float64(k-1)*Int8WireError(magSum) + 1e-6
		for rank, got := range results {
			for j := 0; j < chunkLen; j++ {
				var want float64
				for i := 0; i < k; i++ {
					want += float64(data[i][rank*chunkLen+j])
				}
				if e := math.Abs(float64(got[j]) - want); e > bound {
					t.Fatalf("%v chip %d[%d]: error %g > bound %g", tr, rank, j, e, bound)
				}
			}
		}
	}
}

// Int8 all-to-all: own shard exact, remote shards within one quantization
// half-step of their source values.
func TestInt8AllToAllWithinBound(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 2, Z: 2}
	k := tr.Chips()
	const shardLen = 5
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, size := c.GroupRank(hardware.GroupXYZ)
		shards := make([][]float32, size)
		for i := range shards {
			shards[i] = make([]float32, shardLen)
			for j := range shards[i] {
				shards[i][j] = float32(rank) + float32(i)/8 + float32(j)/64
			}
		}
		out := AllToAll(Op{Chip: c, ID: 5, Wire: WireInt8}, hardware.GroupXYZ, shards)
		flat := make([]float32, 0, size*shardLen)
		for _, s := range out {
			flat = append(flat, s...)
		}
		return flat
	})
	for rank, got := range results {
		for src := 0; src < k; src++ {
			var maxAbs float64
			for j := 0; j < shardLen; j++ {
				v := math.Abs(float64(src) + float64(rank)/8 + float64(j)/64)
				if v > maxAbs {
					maxAbs = v
				}
			}
			bound := Int8WireError(maxAbs) + 1e-12
			for j := 0; j < shardLen; j++ {
				want := float64(src) + float64(rank)/8 + float64(j)/64
				e := math.Abs(float64(got[src*shardLen+j]) - want)
				if src == rank && e != 0 {
					t.Fatalf("chip %d: own shard not exact", rank)
				}
				if e > bound {
					t.Fatalf("chip %d from %d[%d]: error %g > bound %g", rank, src, j, e, bound)
				}
			}
		}
	}
}

// Mixing payload formats across ops on the same mesh must work: the tag
// space keeps them apart and each op's format decodes its own messages.
func TestMixedWireOpsIsolated(t *testing.T) {
	tr := hardware.Torus{X: 4, Y: 1, Z: 1}
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, _ := c.GroupRank(hardware.GroupX)
		a := AllGather(Op{Chip: c, ID: 100}, hardware.GroupX, []float32{float32(rank)})
		b := AllGather(Op{Chip: c, ID: 101, Wire: WireInt8}, hardware.GroupX, []float32{float32(rank) + 0.5})
		return append(a, b...)
	})
	for rank, got := range results {
		for i := 0; i < 4; i++ {
			if got[i] != float32(i) {
				t.Fatalf("chip %d fp32 gather[%d] = %g", rank, i, got[i])
			}
			want := float64(i) + 0.5
			if e := math.Abs(float64(got[4+i]) - want); e > Int8WireError(want)+1e-12 {
				t.Fatalf("chip %d int8 gather[%d] = %g, want %g±%g", rank, i, got[4+i], want, Int8WireError(want))
			}
		}
	}
}

// Op.Advance is the id-reservation helper: AllReduce consumes AllReduceIDs
// consecutive ids, so ops advanced by that stride never collide — and the
// composition still equals the sum.
func TestOpAdvanceReservesIDs(t *testing.T) {
	o := Op{ID: 7}
	if got := o.Advance(AllReduceIDs).ID; got != 9 {
		t.Fatalf("Advance(%d) = id %d, want 9", AllReduceIDs, got)
	}
	if o.ID != 7 {
		t.Fatalf("Advance mutated the receiver: %d", o.ID)
	}
	tr := hardware.Torus{X: 2, Y: 2, Z: 1}
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		op := Op{Chip: c, ID: 40}
		a := AllReduce(op, hardware.GroupXY, []float32{1, float32(c.Rank), 0, 1})
		b := AllReduce(op.Advance(AllReduceIDs), hardware.GroupXY, []float32{2, -float32(c.Rank), 0, 2})
		return append(a, b...)
	})
	for rank, got := range results {
		want := []float32{4, 0 + 1 + 2 + 3, 0, 4, 8, -(0 + 1 + 2 + 3), 0, 8}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chip %d result[%d] = %g, want %g", rank, i, got[i], want[i])
			}
		}
	}
}

// The tag guard rejects steps outside the op's 2^20-message space instead
// of silently aliasing a neighboring op id.
func TestTagStepGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range step")
		}
	}()
	Op{ID: 1}.tag(opSteps)
}
