package collective

import (
	"math"
	"testing"

	"esti/internal/hardware"
	"esti/internal/mesh"
	"esti/internal/quant"
)

// FuzzInt8WireRoundTrip drives the per-chunk quantize → transmit →
// dequantize round trip with adversarial float32 payloads (arbitrary bit
// patterns, NaN and ±Inf included) through a real 2-chip mesh and pins the
// wire format's safety contract:
//
//   - every value decoded from the wire is finite (encode clamps NaN to 0
//     and ±Inf to the finite clamp bound, so the chunk scale is always
//     finite-positive and the fabric can never become a NaN factory —
//     only a chip's untransmitted own chunk can keep a raw non-finite);
//   - reconstruction error is within the documented bound — half a
//     quantization step of the clamped chunk's max magnitude for the
//     gather, plus one half-step per fold hop for the reduction;
//   - the reduce-scatter's float32 fold of the clamped payloads is finite
//     too.
//
// The pure-kernel analog (QuantizeRowInto) is fuzzed in
// internal/kvcache's FuzzInt8AppendView; this target covers the wire: the
// encode in Payload.send, the mesh transfer, and the decode/fold on the
// receiving chip.
// FuzzStreamRoundTrip pins the streaming collectives' defining contract
// under adversarial payloads: for arbitrary float32 bit patterns (NaN and
// ±Inf included), AllGatherStream and ReduceScatterStream return exactly
// the same bits as their barrier twins, for both the fp32 and int8 wire
// formats. The streamed forms share the barrier forms' message sizes, tags,
// and quantization points, so any divergence — a reordered fold, a
// re-quantized chunk, a consumer observing a half-decoded buffer — shows up
// as a bit mismatch here.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 255, 254, 253, 252})
	f.Add([]byte{0x7f, 0x80, 0x00, 0x00, 0xff, 0x80, 0x00, 0x00}) // +Inf, -Inf
	f.Add([]byte{0x7f, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01}) // NaN, denormal
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		elems := len(raw) / 4
		if elems == 0 || elems > 256 {
			return
		}
		chunks := [2][]float32{make([]float32, elems), make([]float32, elems)}
		for i := 0; i < elems; i++ {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			v := math.Float32frombits(bits)
			chunks[0][i] = v
			chunks[1][i] = -v / 3
		}
		tr := hardware.Torus{X: 2, Y: 1, Z: 1}
		for _, wire := range []Payload{nil, WireInt8} {
			run := func(streamed bool) (ag, rs [2][]float32) {
				m := mesh.New(tr)
				m.Run(func(c *mesh.Chip) {
					agOp := Op{Chip: c, ID: 1, Wire: wire}
					rsOp := Op{Chip: c, ID: 2, Wire: wire}
					full := make([]float32, 2*elems)
					copy(full, chunks[c.Rank])
					copy(full[elems:], chunks[1-c.Rank])
					var g, r []float32
					if streamed {
						g = AllGatherStream(agOp, hardware.GroupX, chunks[c.Rank], func(int, []float32) {})
						work := make([]float32, 2*elems)
						r = ReduceScatterStream(rsOp, hardware.GroupX, work, func(idx int, dst []float32) {
							copy(dst, full[idx*elems:(idx+1)*elems])
						})
					} else {
						g = AllGather(agOp, hardware.GroupX, chunks[c.Rank])
						r = ReduceScatter(rsOp, hardware.GroupX, full)
					}
					ag[c.Rank] = append([]float32(nil), g...)
					rs[c.Rank] = append([]float32(nil), r...)
				})
				return ag, rs
			}
			bAG, bRS := run(false)
			sAG, sRS := run(true)
			for rank := 0; rank < 2; rank++ {
				for i := range bAG[rank] {
					if math.Float32bits(bAG[rank][i]) != math.Float32bits(sAG[rank][i]) {
						t.Fatalf("wire %T chip %d: streamed gather differs at %d: %g != %g",
							wire, rank, i, sAG[rank][i], bAG[rank][i])
					}
				}
				for i := range bRS[rank] {
					if math.Float32bits(bRS[rank][i]) != math.Float32bits(sRS[rank][i]) {
						t.Fatalf("wire %T chip %d: streamed reduce-scatter differs at %d: %g != %g",
							wire, rank, i, sRS[rank][i], bRS[rank][i])
					}
				}
			}
		}
	})
}

func FuzzInt8WireRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 255, 254, 253, 252})
	f.Add([]byte{0x7f, 0x80, 0x00, 0x00, 0xff, 0x80, 0x00, 0x00}) // +Inf, -Inf
	f.Add([]byte{0x7f, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01}) // NaN, denormal
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		elems := len(raw) / 4
		if elems == 0 || elems > 256 {
			return
		}
		// Two chunks (one per chip) of arbitrary float32 bit patterns.
		chunks := [2][]float32{make([]float32, elems), make([]float32, elems)}
		for i := 0; i < elems; i++ {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			v := math.Float32frombits(bits)
			chunks[0][i] = v
			chunks[1][i] = -v / 3
		}
		// The reference the bound is stated against: the clamped chunk
		// (what the encoder actually quantizes).
		clamped := [2][]float32{make([]float32, elems), make([]float32, elems)}
		maxAbs := [2]float64{}
		for c := 0; c < 2; c++ {
			q := make([]int8, elems)
			scale := quant.QuantizeRowInto(q, chunks[c])
			if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) || scale <= 0 {
				t.Fatalf("chunk %d: scale %g not finite-positive", c, scale)
			}
			quant.DequantizeRowInto(clamped[c], q, scale)
			// Recover the clamp reference via a second quantize of the
			// reconstruction (idempotent), and its magnitude for bounds.
			for _, v := range chunks[c] {
				a := math.Abs(float64(v))
				if math.IsNaN(a) {
					continue
				}
				if a > math.MaxFloat32/2 {
					a = math.MaxFloat32 / 2
				}
				if a > maxAbs[c] {
					maxAbs[c] = a
				}
			}
		}

		tr := hardware.Torus{X: 2, Y: 1, Z: 1}
		m := mesh.New(tr)
		gathered := make([][]float32, 2)
		reduced := make([][]float32, 2)
		m.Run(func(c *mesh.Chip) {
			g := AllGather(Op{Chip: c, ID: 1, Wire: WireInt8}, hardware.GroupX, chunks[c.Rank])
			gathered[c.Rank] = append([]float32(nil), g...)
			if elems%2 == 0 {
				r := ReduceScatter(Op{Chip: c, ID: 2, Wire: WireInt8}, hardware.GroupX, chunks[c.Rank])
				reduced[c.Rank] = append([]float32(nil), r...)
			}
		})

		for rank := 0; rank < 2; rank++ {
			for src := 0; src < 2; src++ {
				bound := Int8WireError(maxAbs[src]) + 1e-12*maxAbs[src]
				for i := 0; i < elems; i++ {
					if src == rank {
						continue // own chunk is the raw (possibly non-finite) input
					}
					got := float64(gathered[rank][src*elems+i])
					if math.IsNaN(got) || math.IsInf(got, 0) {
						t.Fatalf("chip %d gathered non-finite %g at chunk %d[%d]", rank, got, src, i)
					}
					want := float64(clamped[src][i])
					if e := math.Abs(got - want); e > bound {
						t.Fatalf("chip %d chunk %d[%d]: |%g - %g| = %g > bound %g",
							rank, src, i, got, want, e, bound)
					}
				}
			}
			if elems%2 != 0 {
				continue
			}
			// Reduction on 2 chips: chip r's result is its own raw chunk r
			// plus the dequantized transmission of the peer's chunk r —
			// one hop, one quantization, scale computed over exactly the
			// transmitted half. Only the transmitted side is clamped; a
			// non-finite own contribution stays raw in the local
			// accumulator, so the bound is asserted only when the own half
			// is finite.
			half := elems / 2
			peerHalf := chunks[1-rank][rank*half : (rank+1)*half]
			qHalf := make([]int8, half)
			sHalf := quant.QuantizeRowInto(qHalf, peerHalf)
			if math.IsNaN(float64(sHalf)) || math.IsInf(float64(sHalf), 0) || sHalf <= 0 {
				t.Fatalf("chip %d: transmitted-half scale %g not finite-positive", rank, sHalf)
			}
			clampedHalf := make([]float32, half)
			quant.DequantizeRowInto(clampedHalf, qHalf, sHalf)
			for i := 0; i < half; i++ {
				got := float64(reduced[rank][i])
				own := float64(chunks[rank][rank*half+i])
				if math.IsNaN(own) || math.IsInf(own, 0) {
					continue
				}
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("chip %d reduced non-finite %g from finite own input", rank, got)
				}
				want := own + float64(clampedHalf[i])
				foldBound := 1e-5*(math.Abs(own)+math.Abs(want)+1) + 1e-6
				if e := math.Abs(got - want); e > foldBound {
					t.Fatalf("chip %d reduced[%d]: |%g - %g| = %g > bound %g",
						rank, i, got, want, e, foldBound)
				}
			}
		}
	})
}
