// Package collective implements the communication collectives of Section
// 3.1 as real message-passing algorithms on the simulated mesh: ring
// all-gather, ring reduce-scatter, all-reduce (their composition), and
// direct all-to-all, each over an arbitrary torus axis group.
//
// The ring algorithms transfer exactly the volumes the paper's Appendix A
// cost model assigns them — D·(K-1)/K per chip — which the tests assert by
// comparing measured mesh traffic against package commcost.
//
// Buffer ownership: collective results are allocated from the mesh's
// message pool; a caller that has fully consumed a result may hand it back
// with Chip.Recycle so a steady-state SPMD loop triggers no allocation,
// and a caller that retains it simply lets the GC take it. Transit buffers
// the collectives receive and fold in are recycled internally.
package collective

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/mesh"
)

// Op is a collective operation context: the chip it runs on and the unique
// op id that namespaces its message tags, so consecutive collectives on the
// same chips never confuse their messages even when a fast sender runs a
// step ahead. Every chip in the group must use the same op id for the same
// collective call (the SPMD program allocates ids in lockstep); AllReduce
// consumes two consecutive ids, so callers should advance ids by at least 2.
type Op struct {
	Chip *mesh.Chip
	ID   uint64
}

func (o Op) tag(step int) uint64 { return o.ID<<20 | uint64(step) }

// AllGather concatenates each group member's shard in group-rank order and
// returns the full buffer, using a bidirectional-free simple ring: K-1
// steps, each chip forwarding the newest chunk to its ring successor.
// Per-chip traffic: shardLen·(K-1) elements = D·(K-1)/K for output size D.
func AllGather(o Op, g hardware.AxisGroup, shard []float32) []float32 {
	c := o.Chip
	rank, size := c.GroupRank(g)
	if size == 1 {
		out := make([]float32, len(shard))
		copy(out, shard)
		return out
	}
	chunkLen := len(shard)
	out := c.Buffer(size * chunkLen)
	copy(out[rank*chunkLen:(rank+1)*chunkLen], shard)
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	cur := shard
	for s := 0; s < size-1; s++ {
		if s == 0 {
			c.Send(next, o.tag(s), cur) // the caller keeps its shard
		} else {
			// Relay the buffer received last step without a copy: its
			// contents are already folded into out.
			c.SendOwned(next, o.tag(s), cur)
		}
		cur = c.Recv(prev, o.tag(s))
		if len(cur) != chunkLen {
			panic(fmt.Sprintf("collective: all-gather chunk %d != %d", len(cur), chunkLen))
		}
		idx := (rank - s - 1 + 2*size) % size
		copy(out[idx*chunkLen:(idx+1)*chunkLen], cur)
	}
	c.Recycle(cur)
	return out
}

// AllGatherBidirectional is the latency-optimized all-gather variant: each
// chip forwards chunks around the ring in both directions simultaneously, so
// the collective completes in ceil((K-1)/2) steps instead of K-1 at the same
// total volume. This mirrors the paper's Section 3.5 note that they built "a
// suite of variants of the CollectiveEinsum concept, to optimize for
// different scenarios: latency versus throughput". Results are identical to
// AllGather; only the step count (and hence fixed latency) differs.
func AllGatherBidirectional(o Op, g hardware.AxisGroup, shard []float32) []float32 {
	c := o.Chip
	rank, size := c.GroupRank(g)
	if size == 1 {
		out := make([]float32, len(shard))
		copy(out, shard)
		return out
	}
	chunkLen := len(shard)
	out := c.Buffer(size * chunkLen)
	copy(out[rank*chunkLen:(rank+1)*chunkLen], shard)
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	fwd := shard // chunk moving in +1 direction (received from prev)
	bwd := shard // chunk moving in -1 direction (received from next)
	// The forward lane delivers chunks rank-1-s, the backward lane chunks
	// rank+1+s; together they cover all K-1 remote chunks in
	// ceil((K-1)/2) steps, the backward lane idling on the last step when
	// K-1 is odd. As in AllGather, relayed chunks are handed off without
	// a copy once their contents are folded into out.
	for s := 0; s < fwdSteps(size); s++ {
		backActive := s < bwdSteps(size)
		if s == 0 {
			c.Send(next, o.tag(2*s), fwd)
			if backActive {
				c.Send(prev, o.tag(2*s+1), bwd)
			}
		} else {
			c.SendOwned(next, o.tag(2*s), fwd)
			if backActive {
				c.SendOwned(prev, o.tag(2*s+1), bwd)
			}
		}
		fwd = c.Recv(prev, o.tag(2*s))
		if len(fwd) != chunkLen {
			panic("collective: bidirectional all-gather chunk size mismatch")
		}
		idx := (rank - s - 1 + 2*size) % size
		copy(out[idx*chunkLen:(idx+1)*chunkLen], fwd)
		if backActive {
			bwd = c.Recv(next, o.tag(2*s+1))
			idx = (rank + s + 1) % size
			copy(out[idx*chunkLen:(idx+1)*chunkLen], bwd)
		}
	}
	c.Recycle(fwd)
	if bwdSteps(size) > 0 {
		c.Recycle(bwd)
	}
	return out
}

// fwdSteps and bwdSteps split the K-1 chunk deliveries between the two ring
// directions: forward carries ceil((K-1)/2), backward floor((K-1)/2).
func fwdSteps(size int) int { return (size - 1 + 1) / 2 }
func bwdSteps(size int) int { return (size - 1) / 2 }

// ReduceScatter sums `full` elementwise across the group and returns this
// chip's shard (group-rank-indexed chunk of the sum). len(full) must divide
// evenly by the group size. Per-chip traffic: chunk·(K-1) = D·(K-1)/K for
// input size D.
func ReduceScatter(o Op, g hardware.AxisGroup, full []float32) []float32 {
	c := o.Chip
	rank, size := c.GroupRank(g)
	if size == 1 {
		out := make([]float32, len(full))
		copy(out, full)
		return out
	}
	if len(full)%size != 0 {
		panic(fmt.Sprintf("collective: reduce-scatter %d elements over %d chips", len(full), size))
	}
	chunkLen := len(full) / size
	chunk := func(buf []float32, i int) []float32 { return buf[i*chunkLen : (i+1)*chunkLen] }
	acc := c.Buffer(len(full))
	copy(acc, full)
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	for s := 0; s < size-1; s++ {
		sendIdx := (rank - 1 - s + 2*size) % size
		c.Send(next, o.tag(s), chunk(acc, sendIdx))
		recvIdx := (rank - 2 - s + 3*size) % size
		in := c.Recv(prev, o.tag(s))
		if len(in) != chunkLen {
			panic(fmt.Sprintf("collective: reduce-scatter chunk %d != %d", len(in), chunkLen))
		}
		dst := chunk(acc, recvIdx)
		in = in[:len(dst)]
		for i, v := range in {
			dst[i] += v
		}
		c.Recycle(in)
	}
	out := c.Buffer(chunkLen)
	copy(out, chunk(acc, rank))
	c.Recycle(acc)
	return out
}

// AllReduce composes ReduceScatter and AllGather (the paper's preferred
// decomposition, after Rajbhandari et al. 2020). Each phase gets its own tag
// space via the step offset.
func AllReduce(o Op, g hardware.AxisGroup, full []float32) []float32 {
	shard := ReduceScatter(o, g, full)
	o2 := Op{Chip: o.Chip, ID: o.ID + 1}
	out := AllGather(o2, g, shard)
	o.Chip.Recycle(shard) // AllGather copied it into out
	return out
}

// AllToAll sends shards[i] to group member i and returns the received
// shards in group-rank order (own shard passed through). Transfers are
// direct pairwise messages, matching the collective's use for resharding in
// Figure 5(b).
func AllToAll(o Op, g hardware.AxisGroup, shards [][]float32) [][]float32 {
	c := o.Chip
	rank, size := c.GroupRank(g)
	if len(shards) != size {
		panic(fmt.Sprintf("collective: all-to-all %d shards for group of %d", len(shards), size))
	}
	out := make([][]float32, size)
	own := c.Buffer(len(shards[rank]))
	copy(own, shards[rank])
	out[rank] = own
	for i := 0; i < size; i++ {
		if i == rank {
			continue
		}
		c.Send(c.GroupPeer(g, i), o.tag(i), shards[i])
	}
	for i := 0; i < size; i++ {
		if i == rank {
			continue
		}
		out[i] = c.Recv(c.GroupPeer(g, i), o.tag(rank))
	}
	return out
}
