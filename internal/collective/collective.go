// Package collective implements the communication collectives of Section
// 3.1 as real message-passing algorithms on the simulated mesh: ring
// all-gather, ring reduce-scatter, all-reduce (their composition), and
// direct all-to-all, each over an arbitrary torus axis group.
//
// The algorithms are payload-typed: every chunk they move travels in the
// wire format the Op selects (see Payload) — exact float32 by default, or
// per-chunk-scaled int8, which shrinks the wire volume the same way §3.3's
// int8 weights shrink the weight-gather volume. The callers keep float32
// inputs and outputs either way; only the bytes on the wire change. The
// ring algorithms transfer exactly the volumes the paper's Appendix A cost
// model assigns them — D·(K-1)/K per chip in the payload's bytes-per-
// element — which the tests assert by comparing measured mesh traffic
// against package commcost for both formats.
//
// The gather and reduce-scatter rings also come in streaming form
// (stream.go): AllGatherStream and ReduceScatterStream hand each chunk to
// a caller callback while the next chunk is still in flight — the paper's
// Looped CollectiveEinsum (§3.5), which fuses the per-chunk slice of a
// matmul into the ring schedule. Overlap of this kind hides only the
// bandwidth component of the collective: the K-1 serial link traversals
// (hops × per-hop latency) stay on the critical path no matter how the
// compute is chunked, which is exactly the bandwidth-vs-latency-floor
// split package perf's comm term charges.
//
// Buffer ownership: collective results are allocated from the mesh's
// message pool; a caller that has fully consumed a result may hand it back
// with Chip.Recycle so a steady-state SPMD loop triggers no allocation,
// and a caller that retains it simply lets the GC take it. Transit buffers
// the collectives receive and fold in are recycled internally (int8 wire
// buffers to the int8 pool).
package collective

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/mesh"
)

// Op is a collective operation context: the chip it runs on, the unique op
// id that namespaces its message tags, and the wire format its chunks
// travel in (nil Wire means WireF32). Consecutive collectives on the same
// chips never confuse their messages even when a fast sender runs a step
// ahead, provided their ids differ. Every chip in the group must use the
// same op id for the same collective call (the SPMD program allocates ids
// in lockstep).
//
// Id discipline: a plain collective consumes one id; AllReduce consumes
// AllReduceIDs consecutive ids (its reduce-scatter and all-gather phases).
// Callers minting ids advance by the ids actually consumed — Advance is
// the reservation helper — and the mesh's tag-collision check panics on
// any overlap a miscounted advance lets through, rather than letting two
// collectives silently swap chunks.
type Op struct {
	Chip *mesh.Chip
	ID   uint64
	Wire Payload
}

// AllReduceIDs is the number of consecutive op ids AllReduce consumes: one
// for its reduce-scatter phase and one for its all-gather phase. A caller
// that mints ids for a program containing all-reduces must advance its
// counter by at least this much per collective slot.
const AllReduceIDs = 2

// Advance returns a copy of the op with its id advanced by n — the
// explicit id-reservation helper for composite collectives: AllReduce uses
// o and o.Advance(1), so the next independent collective must start at
// o.Advance(AllReduceIDs) or later.
func (o Op) Advance(n uint64) Op {
	o.ID += n
	return o
}

// opSteps is the per-op tag space: tags are ID<<20 | step, so a single
// collective may label at most 1<<20 distinct messages per peer.
const opSteps = 1 << 20

func (o Op) tag(step int) uint64 {
	if step < 0 || step >= opSteps {
		panic(fmt.Sprintf("collective: step %d outside the op's %d-message tag space", step, opSteps))
	}
	return o.ID<<20 | uint64(step)
}

// wire returns the op's payload format, defaulting to exact float32.
func (o Op) wire() Payload {
	if o.Wire == nil {
		return WireF32
	}
	return o.Wire
}

// AllGather concatenates each group member's shard in group-rank order and
// returns the full buffer, using a bidirectional-free simple ring: K-1
// steps, each chip forwarding the newest chunk to its ring successor.
// Per-chip traffic: K-1 chunk transmissions = D·(K-1)/K for output size D,
// in the op's wire format. Received chunks are decoded into the output and
// relayed in wire form untouched, so an int8 chunk is quantized exactly
// once at its source chip however many hops it travels; the local shard is
// copied in exact.
func AllGather(o Op, g hardware.AxisGroup, shard []float32) []float32 {
	c := o.Chip
	w := o.wire()
	rank, size := c.GroupRank(g)
	if size == 1 {
		out := make([]float32, len(shard))
		copy(out, shard)
		return out
	}
	chunkLen := len(shard)
	out := c.Buffer(size * chunkLen)
	copy(out[rank*chunkLen:(rank+1)*chunkLen], shard)
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	var tr transit
	for s := 0; s < size-1; s++ {
		if s == 0 {
			w.send(c, next, o.tag(s), shard) // the caller keeps its shard
		} else {
			// Relay the chunk received last step without re-encoding: its
			// contents are already decoded into out.
			w.relay(c, next, o.tag(s), tr)
		}
		idx := (rank - s - 1 + 2*size) % size
		tr = w.recvInto(c, prev, o.tag(s), out[idx*chunkLen:(idx+1)*chunkLen])
	}
	w.drop(c, tr)
	return out
}

// AllGatherBidirectional is the latency-optimized all-gather variant: each
// chip forwards chunks around the ring in both directions simultaneously, so
// the collective completes in ceil((K-1)/2) steps instead of K-1 at the same
// total volume. This mirrors the paper's Section 3.5 note that they built "a
// suite of variants of the CollectiveEinsum concept, to optimize for
// different scenarios: latency versus throughput". Results are identical to
// AllGather; only the step count (and hence fixed latency) differs.
func AllGatherBidirectional(o Op, g hardware.AxisGroup, shard []float32) []float32 {
	c := o.Chip
	w := o.wire()
	rank, size := c.GroupRank(g)
	if size == 1 {
		out := make([]float32, len(shard))
		copy(out, shard)
		return out
	}
	chunkLen := len(shard)
	out := c.Buffer(size * chunkLen)
	copy(out[rank*chunkLen:(rank+1)*chunkLen], shard)
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	var fwd, bwd transit
	// The forward lane delivers chunks rank-1-s, the backward lane chunks
	// rank+1+s; together they cover all K-1 remote chunks in
	// ceil((K-1)/2) steps, the backward lane idling on the last step when
	// K-1 is odd. As in AllGather, relayed chunks are handed off in wire
	// form once their contents are decoded into out.
	for s := 0; s < fwdSteps(size); s++ {
		backActive := s < bwdSteps(size)
		if s == 0 {
			w.send(c, next, o.tag(2*s), shard)
			if backActive {
				w.send(c, prev, o.tag(2*s+1), shard)
			}
		} else {
			w.relay(c, next, o.tag(2*s), fwd)
			if backActive {
				w.relay(c, prev, o.tag(2*s+1), bwd)
			}
		}
		idx := (rank - s - 1 + 2*size) % size
		fwd = w.recvInto(c, prev, o.tag(2*s), out[idx*chunkLen:(idx+1)*chunkLen])
		if backActive {
			idx = (rank + s + 1) % size
			bwd = w.recvInto(c, next, o.tag(2*s+1), out[idx*chunkLen:(idx+1)*chunkLen])
		}
	}
	w.drop(c, fwd)
	if bwdSteps(size) > 0 {
		w.drop(c, bwd)
	}
	return out
}

// fwdSteps and bwdSteps split the K-1 chunk deliveries between the two ring
// directions: forward carries ceil((K-1)/2), backward floor((K-1)/2).
func fwdSteps(size int) int { return (size - 1 + 1) / 2 }
func bwdSteps(size int) int { return (size - 1) / 2 }

// ReduceScatter sums `full` elementwise across the group and returns this
// chip's shard (group-rank-indexed chunk of the sum). len(full) must divide
// evenly by the group size. Per-chip traffic: K-1 chunk transmissions =
// D·(K-1)/K for input size D, in the op's wire format. The running partial
// sum is held and folded in float32 on every chip; a lossy wire format
// re-encodes the partial fresh at each hop (one quantization of the
// running sum per hop, K-1 total), which is what keeps int8 reduction
// error bounded instead of compounding through stale scales.
func ReduceScatter(o Op, g hardware.AxisGroup, full []float32) []float32 {
	c := o.Chip
	w := o.wire()
	rank, size := c.GroupRank(g)
	if size == 1 {
		out := make([]float32, len(full))
		copy(out, full)
		return out
	}
	if len(full)%size != 0 {
		panic(fmt.Sprintf("collective: reduce-scatter %d elements over %d chips", len(full), size))
	}
	chunkLen := len(full) / size
	chunk := func(buf []float32, i int) []float32 { return buf[i*chunkLen : (i+1)*chunkLen] }
	acc := c.Buffer(len(full))
	copy(acc, full)
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	for s := 0; s < size-1; s++ {
		sendIdx := (rank - 1 - s + 2*size) % size
		w.send(c, next, o.tag(s), chunk(acc, sendIdx))
		recvIdx := (rank - 2 - s + 3*size) % size
		w.recvAdd(c, prev, o.tag(s), chunk(acc, recvIdx))
	}
	out := c.Buffer(chunkLen)
	copy(out, chunk(acc, rank))
	c.Recycle(acc)
	return out
}

// AllReduce composes ReduceScatter and AllGather (the paper's preferred
// decomposition, after Rajbhandari et al. 2020), consuming AllReduceIDs
// consecutive op ids — one per phase — via Advance.
func AllReduce(o Op, g hardware.AxisGroup, full []float32) []float32 {
	shard := ReduceScatter(o, g, full)
	out := AllGather(o.Advance(1), g, shard)
	o.Chip.Recycle(shard) // AllGather copied it into out
	return out
}

// AllToAll sends shards[i] to group member i and returns the received
// shards in group-rank order (own shard passed through exact). Transfers
// are direct pairwise messages in the op's wire format, matching the
// collective's use for resharding in Figure 5(b).
func AllToAll(o Op, g hardware.AxisGroup, shards [][]float32) [][]float32 {
	c := o.Chip
	w := o.wire()
	rank, size := c.GroupRank(g)
	if len(shards) != size {
		panic(fmt.Sprintf("collective: all-to-all %d shards for group of %d", len(shards), size))
	}
	out := make([][]float32, size)
	own := c.Buffer(len(shards[rank]))
	copy(own, shards[rank])
	out[rank] = own
	for i := 0; i < size; i++ {
		if i == rank {
			continue
		}
		w.send(c, c.GroupPeer(g, i), o.tag(i), shards[i])
	}
	for i := 0; i < size; i++ {
		if i == rank {
			continue
		}
		out[i] = w.recvTake(c, c.GroupPeer(g, i), o.tag(rank))
	}
	return out
}
