package collective

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"esti/internal/commcost"
	"esti/internal/hardware"
	"esti/internal/mesh"
)

// runSPMD runs fn on every chip and collects per-chip results.
func runSPMD(t hardware.Torus, fn func(c *mesh.Chip) []float32) ([][]float32, *mesh.Mesh) {
	m := mesh.New(t)
	out := make([][]float32, m.Chips())
	var mu sync.Mutex
	m.Run(func(c *mesh.Chip) {
		r := fn(c)
		mu.Lock()
		out[c.Rank] = r
		mu.Unlock()
	})
	return out, m
}

func TestAllGatherConcatenatesInGroupOrder(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 2, Z: 2}
	for _, g := range []hardware.AxisGroup{hardware.GroupX, hardware.GroupYZ, hardware.GroupXYZ} {
		results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
			rank, _ := c.GroupRank(g)
			shard := []float32{float32(rank) * 10, float32(rank)*10 + 1}
			return AllGather(Op{Chip: c, ID: 1}, g, shard)
		})
		_, size := meshChip0GroupRank(tr, g)
		for rank, got := range results {
			if len(got) != 2*size {
				t.Fatalf("group %v chip %d: got %d elements, want %d", g, rank, len(got), 2*size)
			}
			for i := 0; i < size; i++ {
				if got[2*i] != float32(i)*10 || got[2*i+1] != float32(i)*10+1 {
					t.Fatalf("group %v chip %d: order wrong at %d: %v", g, rank, i, got)
				}
			}
		}
	}
}

func meshChip0GroupRank(t hardware.Torus, g hardware.AxisGroup) (int, int) {
	m := mesh.New(t)
	var rank, size int
	m.Run(func(c *mesh.Chip) {
		if c.Rank == 0 {
			rank, size = c.GroupRank(g)
		}
	})
	return rank, size
}

func TestReduceScatterSumsAndShards(t *testing.T) {
	tr := hardware.Torus{X: 4, Y: 1, Z: 1}
	const chunk = 3
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, size := c.GroupRank(hardware.GroupX)
		full := make([]float32, size*chunk)
		for i := range full {
			full[i] = float32(rank+1) * float32(i)
		}
		return ReduceScatter(Op{Chip: c, ID: 1}, hardware.GroupX, full)
	})
	// Sum over ranks of (rank+1)·i = 10·i for 4 chips.
	for rank, got := range results {
		if len(got) != chunk {
			t.Fatalf("chip %d: shard len %d", rank, len(got))
		}
		for j, v := range got {
			i := rank*chunk + j
			if want := float32(10 * i); v != want {
				t.Fatalf("chip %d shard[%d] = %g, want %g", rank, j, v, want)
			}
		}
	}
}

// reduce-scatter then all-gather must equal an all-reduce, elementwise.
func TestAllReduceEqualsSum(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 2, Z: 1}
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		full := []float32{float32(c.Rank), 1, -float32(c.Rank), 0.5}
		return AllReduce(Op{Chip: c, ID: 10}, hardware.GroupXY, full)
	})
	want := []float32{0 + 1 + 2 + 3, 4, -(0 + 1 + 2 + 3), 2}
	for rank, got := range results {
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-6 {
				t.Fatalf("chip %d all-reduce[%d] = %g, want %g", rank, i, got[i], want[i])
			}
		}
	}
}

func TestAllToAllTransposesShards(t *testing.T) {
	tr := hardware.Torus{X: 4, Y: 1, Z: 1}
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, size := c.GroupRank(hardware.GroupX)
		shards := make([][]float32, size)
		for i := range shards {
			shards[i] = []float32{float32(rank*10 + i)}
		}
		out := AllToAll(Op{Chip: c, ID: 5}, hardware.GroupX, shards)
		flat := make([]float32, 0, size)
		for _, s := range out {
			flat = append(flat, s...)
		}
		return flat
	})
	for rank, got := range results {
		for src, v := range got {
			if want := float32(src*10 + rank); v != want {
				t.Fatalf("chip %d received[%d] = %g, want %g", rank, src, v, want)
			}
		}
	}
}

// Double all-to-all is the identity.
func TestAllToAllInvolution(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 2, Z: 1}
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, size := c.GroupRank(hardware.GroupXY)
		shards := make([][]float32, size)
		for i := range shards {
			shards[i] = []float32{float32(rank), float32(i)}
		}
		once := AllToAll(Op{Chip: c, ID: 2}, hardware.GroupXY, shards)
		twice := AllToAll(Op{Chip: c, ID: 4}, hardware.GroupXY, once)
		flat := make([]float32, 0)
		for i, s := range twice {
			if s[0] != float32(rank) || s[1] != float32(i) {
				t.Errorf("chip %d involution broken at %d: %v", rank, i, s)
			}
			flat = append(flat, s...)
		}
		return flat
	})
	_ = results
}

// Property: all-gather of shards reassembles exactly the concatenation, for
// random shard contents and any single-axis group.
func TestAllGatherProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := hardware.Torus{X: 4, Y: 2, Z: 1}
		data := make([][]float32, 8)
		for i := range data {
			data[i] = make([]float32, 5)
			for j := range data[i] {
				data[i][j] = rng.Float32()
			}
		}
		results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
			return AllGather(Op{Chip: c, ID: 3}, hardware.GroupX, data[c.Rank])
		})
		// Within each x-ring (fixed y,z), result = concat over x of members.
		for rank, got := range results {
			y := (rank / 4) % 2
			for x := 0; x < 4; x++ {
				member := x + 4*y + 0
				for j := 0; j < 5; j++ {
					if got[x*5+j] != data[member][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Measured traffic must equal the analytical volume formulas of Appendix A:
// ring all-gather and reduce-scatter move exactly D·(K-1)/K bytes per chip.
func TestMeasuredBytesMatchCostModel(t *testing.T) {
	tr := hardware.Torus{X: 4, Y: 2, Z: 1}
	const shardLen = 24
	_, m := runSPMD(tr, func(c *mesh.Chip) []float32 {
		return AllGather(Op{Chip: c, ID: 1}, hardware.GroupX, make([]float32, shardLen))
	})
	outBytes := float64(4 * shardLen * 4) // per-chip output: 4 shards × 24 floats
	wantPerChip := commcost.AllGatherVolume(outBytes, 4)
	gotPerChip := float64(m.BytesSent()) / float64(m.Chips())
	if math.Abs(gotPerChip-wantPerChip) > 1e-9 {
		t.Errorf("all-gather bytes/chip = %g, want %g", gotPerChip, wantPerChip)
	}

	_, m2 := runSPMD(tr, func(c *mesh.Chip) []float32 {
		return ReduceScatter(Op{Chip: c, ID: 1}, hardware.GroupYZ, make([]float32, 2*shardLen))
	})
	inBytes := float64(2 * shardLen * 4)
	wantRS := commcost.ReduceScatterVolume(inBytes, 2)
	gotRS := float64(m2.BytesSent()) / float64(m2.Chips())
	if math.Abs(gotRS-wantRS) > 1e-9 {
		t.Errorf("reduce-scatter bytes/chip = %g, want %g", gotRS, wantRS)
	}

	_, m3 := runSPMD(tr, func(c *mesh.Chip) []float32 {
		shards := make([][]float32, 8)
		for i := range shards {
			shards[i] = make([]float32, 6)
		}
		AllToAll(Op{Chip: c, ID: 1}, hardware.GroupXYZ, shards)
		return nil
	})
	perChip := float64(8 * 6 * 4)
	wantA2A := commcost.AllToAllVolume(perChip, 8)
	gotA2A := float64(m3.BytesSent()) / float64(m3.Chips())
	if math.Abs(gotA2A-wantA2A) > 1e-9 {
		t.Errorf("all-to-all bytes/chip = %g, want %g", gotA2A, wantA2A)
	}
}

func TestSingleChipGroupIsNoop(t *testing.T) {
	tr := hardware.Torus{X: 1, Y: 1, Z: 1}
	results, m := runSPMD(tr, func(c *mesh.Chip) []float32 {
		ag := AllGather(Op{Chip: c, ID: 1}, hardware.GroupX, []float32{1, 2})
		rs := ReduceScatter(Op{Chip: c, ID: 3}, hardware.GroupX, []float32{3, 4})
		return append(ag, rs...)
	})
	if got := results[0]; got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Errorf("single-chip collectives mangled data: %v", got)
	}
	if m.BytesSent() != 0 {
		t.Errorf("single-chip collectives sent %d bytes", m.BytesSent())
	}
}

func TestReduceScatterUnevenPanics(t *testing.T) {
	tr := hardware.Torus{X: 2, Y: 1, Z: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for indivisible buffer")
		}
	}()
	m := mesh.New(tr)
	m.Run(func(c *mesh.Chip) {
		ReduceScatter(Op{Chip: c, ID: 1}, hardware.GroupX, make([]float32, 3))
	})
}

// The bidirectional (latency-optimized) all-gather must produce identical
// output to the unidirectional ring at identical per-chip volume, for even
// and odd ring sizes.
func TestAllGatherBidirectionalEquivalent(t *testing.T) {
	for _, tr := range []hardware.Torus{
		{X: 4, Y: 1, Z: 1}, {X: 5, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}, {X: 1, Y: 1, Z: 1},
	} {
		var uniBytes, biBytes int64
		uni, m1 := runSPMD(tr, func(c *mesh.Chip) []float32 {
			rank, _ := c.GroupRank(hardware.GroupXYZ)
			return AllGather(Op{Chip: c, ID: 1}, hardware.GroupXYZ,
				[]float32{float32(rank), float32(rank) * 2})
		})
		uniBytes = m1.BytesSent()
		bi, m2 := runSPMD(tr, func(c *mesh.Chip) []float32 {
			rank, _ := c.GroupRank(hardware.GroupXYZ)
			return AllGatherBidirectional(Op{Chip: c, ID: 1}, hardware.GroupXYZ,
				[]float32{float32(rank), float32(rank) * 2})
		})
		biBytes = m2.BytesSent()
		for rank := range uni {
			if len(uni[rank]) != len(bi[rank]) {
				t.Fatalf("%v chip %d: lengths differ", tr, rank)
			}
			for i := range uni[rank] {
				if uni[rank][i] != bi[rank][i] {
					t.Fatalf("%v chip %d: element %d differs: %g vs %g",
						tr, rank, i, uni[rank][i], bi[rank][i])
				}
			}
		}
		if uniBytes != biBytes {
			t.Errorf("%v: bidirectional moved %d bytes vs ring %d", tr, biBytes, uniBytes)
		}
	}
}

// The point of the bidirectional variant is fewer serial steps: on an
// 8-chip ring it needs 4 rounds instead of 7. Message *count* is the same
// (volume conservation); the step saving shows up as wall-clock on real
// links, which the mesh does not clock — so assert the structural property:
// it completes with both lanes making ceil/floor splits of K-1.
func TestBidirectionalStepSplit(t *testing.T) {
	if fwdSteps(8) != 4 || bwdSteps(8) != 3 {
		t.Errorf("8-ring split = %d+%d, want 4+3", fwdSteps(8), bwdSteps(8))
	}
	if fwdSteps(5) != 2 || bwdSteps(5) != 2 {
		t.Errorf("5-ring split = %d+%d, want 2+2", fwdSteps(5), bwdSteps(5))
	}
	if fwdSteps(2) != 1 || bwdSteps(2) != 0 {
		t.Errorf("2-ring split = %d+%d, want 1+0", fwdSteps(2), bwdSteps(2))
	}
}

// Consecutive collectives with distinct op ids must not cross-contaminate
// even though messages may interleave in inboxes.
func TestSequentialCollectivesIsolated(t *testing.T) {
	tr := hardware.Torus{X: 4, Y: 1, Z: 1}
	results, _ := runSPMD(tr, func(c *mesh.Chip) []float32 {
		rank, _ := c.GroupRank(hardware.GroupX)
		a := AllGather(Op{Chip: c, ID: 100}, hardware.GroupX, []float32{float32(rank)})
		b := AllGather(Op{Chip: c, ID: 102}, hardware.GroupX, []float32{float32(rank) + 0.5})
		return append(a, b...)
	})
	for rank, got := range results {
		for i := 0; i < 4; i++ {
			if got[i] != float32(i) {
				t.Fatalf("chip %d first gather[%d] = %g", rank, i, got[i])
			}
			if got[4+i] != float32(i)+0.5 {
				t.Fatalf("chip %d second gather[%d] = %g", rank, i, got[4+i])
			}
		}
	}
}
