package collective

import (
	"fmt"
	"time"

	"esti/internal/hardware"
	"esti/internal/mesh"
)

// Streaming variants of the ring collectives — the Looped CollectiveEinsum
// of Section 3.5. The barrier collectives in collective.go hold the caller
// until the last chunk lands; the streaming forms instead hand each chunk
// to a caller callback at the moment it becomes available, while the next
// chunk is still relaying on the ring. Because each ring step's relay-send
// is issued before the callback runs (and mesh sends never block), the
// downstream chip is already receiving chunk k+1 while this chip computes
// on chunk k: compute genuinely overlaps the in-flight transfer, which is
// what hides the bandwidth component of the collective. The serial
// hop-latency floor — one link traversal per ring step on the critical
// path — remains, exactly as package perf's overlap-aware comm term
// charges it.
//
// Wire behavior is identical to the barrier twins: same message sizes,
// same tags, same op-id consumption (one id per call, so Op.Advance
// bookkeeping is unchanged and streamed and barrier ops interleave freely
// on one chip), and for WireInt8 the same quantization points — chunks
// quantize once at their source on a gather and once per hop on a
// reduction. The results are therefore bit-identical to AllGather/
// ReduceScatter for both payload formats, which the property and fuzz
// tests assert under adversarial consumer delays.

// AllGatherStream is AllGather with a consumer callback: consume(idx,
// chunk) is invoked exactly once per group member, with idx the source's
// group rank and chunk aliasing that member's slice of the returned
// buffer, as soon as the chunk's contents are available — own shard first,
// then ring order (rank-1, rank-2, ...). Each invocation runs after the
// step's relay-send, so the ring keeps moving while the consumer computes.
// The callback must not retain chunk beyond the call, and must not issue
// mesh operations. A nil consume degenerates to AllGather. The returned
// buffer is bit-identical to AllGather's.
func AllGatherStream(o Op, g hardware.AxisGroup, shard []float32, consume func(chunkIdx int, chunk []float32)) []float32 {
	c := o.Chip
	w := o.wire()
	rank, size := c.GroupRank(g)
	if size == 1 {
		out := make([]float32, len(shard))
		copy(out, shard)
		if consume != nil {
			consume(0, out)
		}
		return out
	}
	chunkLen := len(shard)
	out := c.Buffer(size * chunkLen)
	copy(out[rank*chunkLen:(rank+1)*chunkLen], shard)
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	c.BeginOverlapOp()
	defer c.EndOverlapOp()
	var tr transit
	ready := rank // chunk decoded and not yet consumed
	for s := 0; s < size-1; s++ {
		if s == 0 {
			w.send(c, next, o.tag(s), shard)
		} else {
			w.relay(c, next, o.tag(s), tr)
		}
		deliverChunk(c, consume, ready, out[ready*chunkLen:(ready+1)*chunkLen])
		idx := (rank - s - 1 + 2*size) % size
		tr = w.recvInto(c, prev, o.tag(s), out[idx*chunkLen:(idx+1)*chunkLen])
		ready = idx
	}
	w.drop(c, tr)
	deliverChunk(c, consume, ready, out[ready*chunkLen:(ready+1)*chunkLen])
	return out
}

// ReduceScatterStream is ReduceScatter with a lazy producer: instead of
// requiring the full input up front, produce(idx, dst) is called exactly
// once per chunk — just before the ring needs that chunk — to write the
// chip's contribution into dst. full is the caller's workspace for the
// whole input; produced chunks are folded in place (clobbered), so its
// prior contents do not survive. The production order is ring order:
// rank-1 first, then rank-2, ..., ending with the chip's own chunk rank —
// and every produce after the first runs between a ring send and the
// matching blocking receive, so producing chunk k overlaps the upstream
// chip's transmission of chunk k+1. The wire messages are identical to
// ReduceScatter's (same sizes, tags, and — for WireInt8 — quantization
// points), so the returned shard is bit-identical to the barrier form for
// both payloads. A nil produce treats full as already valid, matching
// ReduceScatter exactly. The callback must not issue mesh operations.
func ReduceScatterStream(o Op, g hardware.AxisGroup, full []float32, produce func(chunkIdx int, chunk []float32)) []float32 {
	c := o.Chip
	w := o.wire()
	rank, size := c.GroupRank(g)
	if size == 1 {
		if produce != nil {
			produce(0, full)
		}
		out := make([]float32, len(full))
		copy(out, full)
		return out
	}
	if len(full)%size != 0 {
		panic(fmt.Sprintf("collective: reduce-scatter %d elements over %d chips", len(full), size))
	}
	chunkLen := len(full) / size
	chunk := func(i int) []float32 { return full[i*chunkLen : (i+1)*chunkLen] }
	next := c.GroupPeer(g, (rank+1)%size)
	prev := c.GroupPeer(g, (rank-1+size)%size)
	c.BeginOverlapOp()
	defer c.EndOverlapOp()
	first := (rank - 1 + size) % size
	produceChunk(c, produce, first, chunk(first))
	for s := 0; s < size-1; s++ {
		sendIdx := (rank - 1 - s + 2*size) % size
		w.send(c, next, o.tag(s), chunk(sendIdx))
		recvIdx := (rank - 2 - s + 3*size) % size
		produceChunk(c, produce, recvIdx, chunk(recvIdx))
		w.recvAdd(c, prev, o.tag(s), chunk(recvIdx))
	}
	out := c.Buffer(chunkLen)
	copy(out, chunk(rank))
	return out
}

// deliverChunk invokes consume under the overlap-work timer.
func deliverChunk(c *mesh.Chip, consume func(int, []float32), idx int, chunk []float32) {
	if consume == nil {
		return
	}
	start := time.Now()
	consume(idx, chunk)
	c.NoteOverlapWork(time.Since(start))
}

// produceChunk invokes produce under the overlap-work timer.
func produceChunk(c *mesh.Chip, produce func(int, []float32), idx int, chunk []float32) {
	if produce == nil {
		return
	}
	start := time.Now()
	produce(idx, chunk)
	c.NoteOverlapWork(time.Since(start))
}
