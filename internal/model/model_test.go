package model

import (
	"math"
	"testing"
)

// approxB asserts a parameter count in billions within tol (also billions).
func approxB(t *testing.T, name string, got, wantB, tolB float64) {
	t.Helper()
	gotB := got / 1e9
	if math.Abs(gotB-wantB) > tolB {
		t.Errorf("%s params = %.2fB, want %.1fB ± %.1fB", name, gotB, wantB, tolB)
	}
}

// The presets must land on the published parameter counts: this is the
// paper's "N" in the 2N FLOPs/token rule, so everything downstream depends
// on these being right.
func TestPresetParameterCounts(t *testing.T) {
	approxB(t, "PaLM 8B", PaLM8B().Params(), 8.6, 0.4)
	approxB(t, "PaLM 62B", PaLM62B().Params(), 62.5, 1.5)
	approxB(t, "PaLM 540B", PaLM540B().Params(), 540.3, 5)
	approxB(t, "MT-NLG 530B", MTNLG530B().Params(), 530, 8)
}

// Section 4: padding 48→64 heads "adds 18B parameters to the model".
func TestHeadPaddingAdds18B(t *testing.T) {
	delta := PaLM540BPadded().Params() - PaLM540B().Params()
	approxB(t, "head padding delta", delta, 17.8, 0.5)
}

// Section 4.2: the MHA control halves head dim to keep attention parameter
// count equal to the (padded) multiquery model.
func TestMHAVariantMatchesAttentionParams(t *testing.T) {
	mqa := PaLM540BPadded().AttnParamsPerLayer()
	mha := PaLM540BMHA().AttnParamsPerLayer()
	if rel := math.Abs(mqa-mha) / mqa; rel > 0.05 {
		t.Errorf("attention params differ by %.1f%% (mqa %.3g, mha %.3g), want <5%%",
			rel*100, mqa, mha)
	}
}

func TestValidatePresets(t *testing.T) {
	for _, c := range append(All(), PaLM540B(), PaLM540BMHA()) {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := PaLM8B()
	c.KVHeads = 3
	if err := c.Validate(); err == nil {
		t.Error("multiquery with KVHeads=3 validated")
	}
	c = PaLM540BMHA()
	c.KVHeads = 1
	if err := c.Validate(); err == nil {
		t.Error("multihead with KVHeads=1 validated")
	}
	c = PaLM8B()
	c.Layers = 0
	if err := c.Validate(); err == nil {
		t.Error("zero layers validated")
	}
	c = PaLM8B()
	c.Vocab = 0
	if err := c.Validate(); err == nil {
		t.Error("zero vocab validated")
	}
	c = PaLM8B()
	c.Attn = Attention(9)
	if err := c.Validate(); err == nil {
		t.Error("unknown attention validated")
	}
}

// Section 2.1: "for batch size 512 and context length 2048, the KV cache
// totals 3TB, which is 3 times the size of the model's parameters" — this
// is stated for a 500B+ model with multihead attention.
func TestKVCache3TBClaim(t *testing.T) {
	// The paper's hypothetical is the unpadded 48-head / d_head-128
	// multihead 540B: "for batch size 512 and context length 2048, the KV
	// cache totals 3TB, which is 3 times the size of the model's
	// parameters".
	c := PaLM540BMHA()
	c.Heads, c.KVHeads = 48, 48
	kv := c.KVBytesPerToken() * 512 * 2048
	tb := kv / 1e12
	if tb < 2.7 || tb > 3.5 {
		t.Errorf("MHA KV cache at B=512 L=2048 = %.2f TB, want ~3TB", tb)
	}
	if ratio := kv / (2 * PaLM540B().Params()); ratio < 2.5 || ratio > 3.5 {
		t.Errorf("KV/params ratio = %.2f, want ~3", ratio)
	}
}

func TestKVBytesPerTokenPerLayer(t *testing.T) {
	// Multiquery: 2 tensors (K,V) × 1 head × 256 dims × 2 bytes = 1024 B.
	if got := PaLM540B().KVBytesPerTokenPerLayer(); got != 1024 {
		t.Errorf("MQA KV bytes/token/layer = %g, want 1024", got)
	}
	// Multihead at d_head 128, 64 heads: 2 × 64 × 128 × 2 = 32768 B —
	// exactly 32× the multiquery figure, which is where Table 1's "32x
	// larger context" headline comes from.
	if got := PaLM540BMHA().KVBytesPerTokenPerLayer(); got != 32768 {
		t.Errorf("MHA KV bytes/token/layer = %g, want 32768", got)
	}
	if ratio := PaLM540BMHA().KVBytesPerTokenPerLayer() / PaLM540B().KVBytesPerTokenPerLayer(); ratio != 32 {
		t.Errorf("MHA/MQA KV ratio = %g, want 32", ratio)
	}
}

func TestWeightBytesDtype(t *testing.T) {
	c := PaLM62B()
	if got, want := c.WeightBytes(BF16), 2*c.Params(); got != want {
		t.Errorf("bf16 bytes = %g, want %g", got, want)
	}
	if got, want := c.WeightBytes(Int8), c.Params(); got != want {
		t.Errorf("int8 bytes = %g, want %g", got, want)
	}
	if BF16.String() != "bf16" || Int8.String() != "int8" {
		t.Error("DType.String mismatch")
	}
}

func TestMatmulFLOPsPerTokenIs2N(t *testing.T) {
	c := PaLM8B()
	if got, want := c.MatmulFLOPsPerToken(), 2*c.Params(); got != want {
		t.Errorf("FLOPs/token = %g, want 2N = %g", got, want)
	}
}

func TestAttnFLOPsGrowLinearlyInContext(t *testing.T) {
	c := PaLM540B()
	if got, want := c.AttnFLOPsPerToken(2048), 2*c.AttnFLOPsPerToken(1024); got != want {
		t.Errorf("attention FLOPs not linear in context: %g vs 2×%g", got, want/2)
	}
}

func TestFFNMatrices(t *testing.T) {
	if PaLM8B().FFNMatrices() != 3 {
		t.Error("SwiGLU should have 3 matrices")
	}
	if MTNLG530B().FFNMatrices() != 2 {
		t.Error("GELU should have 2 matrices")
	}
}

func TestWithLayers(t *testing.T) {
	c := PaLM540BPadded().WithLayers(8)
	if c.Layers != 8 {
		t.Errorf("WithLayers(8).Layers = %d", c.Layers)
	}
	if c.DModel != PaLM540B().DModel {
		t.Error("WithLayers should not change other fields")
	}
}

func TestStringers(t *testing.T) {
	if Multihead.String() != "multihead" || Multiquery.String() != "multiquery" {
		t.Error("Attention.String mismatch")
	}
	if GELU.String() != "gelu" || SwiGLU.String() != "swiglu" {
		t.Error("FFN.String mismatch")
	}
	if Attention(7).String() == "" || FFN(7).String() == "" {
		t.Error("unknown enum String should be non-empty")
	}
}

// Table D.1 hyperparameters, verbatim.
func TestTableD1(t *testing.T) {
	p := PaLM540BPadded()
	m := MTNLG530B()
	if p.Layers != 118 || p.DModel != 18432 || p.DFF != 73728 || p.HeadDim != 256 {
		t.Errorf("PaLM 540B dims wrong: %+v", p)
	}
	if m.Layers != 105 || m.DModel != 20480 || m.DFF != 81920 || m.Heads != 128 || m.HeadDim != 160 {
		t.Errorf("MT-NLG dims wrong: %+v", m)
	}
	if p.Attn != Multiquery || m.Attn != Multihead {
		t.Error("attention kinds wrong")
	}
	if !p.ParallelBlock || m.ParallelBlock {
		t.Error("block formulations wrong")
	}
}

// An int8 KV cache stores one byte per element instead of bf16's two:
// exactly half the bytes per token, at every granularity.
func TestKVBytesPerTokenAs(t *testing.T) {
	c := PaLM540B()
	if got, want := c.KVBytesPerTokenPerLayerAs(Int8), c.KVBytesPerTokenPerLayer()/2; got != want {
		t.Errorf("int8 KV bytes/token/layer = %g, want %g", got, want)
	}
	if got, want := c.KVBytesPerTokenAs(Int8), c.KVBytesPerToken()/2; got != want {
		t.Errorf("int8 KV bytes/token = %g, want %g", got, want)
	}
	if c.KVBytesPerTokenAs(BF16) != c.KVBytesPerToken() {
		t.Error("BF16 KVBytesPerTokenAs does not match the default")
	}
}
