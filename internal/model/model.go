// Package model describes decoder-only Transformer architectures at the
// level of detail the paper's inference-cost analysis needs: layer counts,
// hidden dimensions, attention variant (multihead vs multiquery), block
// formulation (serial vs parallel), and the derived quantities — parameter
// count, weight bytes, KV-cache bytes, and matmul FLOPs per token.
//
// Presets cover the PaLM family (8B, 62B, 540B and the padded-heads 540B
// variant the paper actually benchmarks) and Megatron-Turing NLG 530B
// (Table D.1), plus the reduced variants used in Figure 8.
package model

import "fmt"

// Attention enumerates the attention variants the paper analyzes.
type Attention int

const (
	// Multihead attention: every head has its own K and V projections.
	Multihead Attention = iota
	// Multiquery attention: all query heads share a single K/V head
	// (Shazeer 2019), shrinking the KV cache by a factor of nheads.
	Multiquery
)

func (a Attention) String() string {
	switch a {
	case Multihead:
		return "multihead"
	case Multiquery:
		return "multiquery"
	}
	return fmt.Sprintf("Attention(%d)", int(a))
}

// FFN enumerates feedforward variants. PaLM uses a gated (SwiGLU) MLP with
// three weight matrices; Megatron uses the classic two-matrix GELU MLP.
type FFN int

const (
	// GELU is the two-matrix MLP: W_in [E,F], W_out [F,E].
	GELU FFN = iota
	// SwiGLU is the gated three-matrix MLP: W_gate and W_up [E,F],
	// W_down [F,E].
	SwiGLU
)

func (f FFN) String() string {
	switch f {
	case GELU:
		return "gelu"
	case SwiGLU:
		return "swiglu"
	}
	return fmt.Sprintf("FFN(%d)", int(f))
}

// DType enumerates storage/wire element formats. Matmul arithmetic stays
// bf16 in all cases (matching the paper: int8 affects weight memory,
// KV-cache bytes and communication volume only).
type DType int

const (
	// BF16: 2 bytes per element (weights, activations and the KV cache
	// default to it).
	BF16 DType = iota
	// Int8: 1 byte per element (AQT-style weight quantization, the
	// quantize-at-append KV cache, and int8 collective payloads).
	Int8
	// FP32: 4 bytes per element — the functional engine's exact wire and
	// storage format, used when the analytic model prices the simulated
	// mesh rather than real hardware.
	FP32
)

// Bytes returns the storage size of one element.
func (d DType) Bytes() float64 {
	switch d {
	case Int8:
		return 1
	case FP32:
		return 4
	}
	return 2
}

func (d DType) String() string {
	switch d {
	case Int8:
		return "int8"
	case FP32:
		return "fp32"
	}
	return "bf16"
}

// Config is a decoder-only Transformer architecture.
type Config struct {
	Name    string
	Layers  int
	DModel  int // embedding / residual width (E)
	DFF     int // feedforward intermediate width (F)
	Heads   int // query heads (H)
	HeadDim int // per-head dimension (Q)
	// KVHeads is the number of key/value heads: Heads for multihead,
	// 1 for multiquery.
	KVHeads int
	Attn    Attention
	FFNKind FFN
	// ParallelBlock indicates the PaLM-style formulation where attention
	// and FFN both read the layernormed input and are summed, rather than
	// being applied serially.
	ParallelBlock bool
	Vocab         int
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.Layers <= 0 || c.DModel <= 0 || c.DFF <= 0 || c.Heads <= 0 || c.HeadDim <= 0 {
		return fmt.Errorf("model %q: non-positive dimension", c.Name)
	}
	if c.Vocab <= 0 {
		return fmt.Errorf("model %q: non-positive vocab", c.Name)
	}
	switch c.Attn {
	case Multihead:
		if c.KVHeads != c.Heads {
			return fmt.Errorf("model %q: multihead needs KVHeads == Heads (%d != %d)", c.Name, c.KVHeads, c.Heads)
		}
	case Multiquery:
		if c.KVHeads != 1 {
			return fmt.Errorf("model %q: multiquery needs KVHeads == 1, got %d", c.Name, c.KVHeads)
		}
	default:
		return fmt.Errorf("model %q: unknown attention %d", c.Name, int(c.Attn))
	}
	return nil
}

// FFNMatrices is the number of weight matrices in the MLP.
func (c Config) FFNMatrices() int {
	if c.FFNKind == SwiGLU {
		return 3
	}
	return 2
}

// FFNParamsPerLayer counts MLP parameters in one layer.
func (c Config) FFNParamsPerLayer() float64 {
	return float64(c.FFNMatrices()) * float64(c.DModel) * float64(c.DFF)
}

// AttnParamsPerLayer counts attention projection parameters in one layer:
// W_Q [E, H·Q], W_K and W_V [E, KVHeads·Q], W_O [H·Q, E].
func (c Config) AttnParamsPerLayer() float64 {
	e := float64(c.DModel)
	hq := float64(c.Heads * c.HeadDim)
	kvq := float64(c.KVHeads * c.HeadDim)
	return e*hq + 2*e*kvq + hq*e
}

// ParamsPerLayer counts all matmul parameters in one Transformer layer.
func (c Config) ParamsPerLayer() float64 {
	return c.FFNParamsPerLayer() + c.AttnParamsPerLayer()
}

// EmbeddingParams counts the (shared input/output) token embedding table.
func (c Config) EmbeddingParams() float64 {
	return float64(c.Vocab) * float64(c.DModel)
}

// Params is the total parameter count, embedding included.
func (c Config) Params() float64 {
	return float64(c.Layers)*c.ParamsPerLayer() + c.EmbeddingParams()
}

// WeightBytes is the total weight footprint for the given storage dtype.
func (c Config) WeightBytes(d DType) float64 { return c.Params() * d.Bytes() }

// WeightBytesPerLayer is one layer's weight footprint.
func (c Config) WeightBytesPerLayer(d DType) float64 {
	return c.ParamsPerLayer() * d.Bytes()
}

// KVBytesPerTokenPerLayer is the KV-cache footprint of one token in one
// layer (K and V, stored in bf16: 2 bytes each element).
func (c Config) KVBytesPerTokenPerLayer() float64 {
	return c.KVBytesPerTokenPerLayerAs(BF16)
}

// KVBytesPerTokenPerLayerAs is KVBytesPerTokenPerLayer with the cache
// stored in the given dtype: an int8 KV cache (quantize at append,
// dequantize in the attention walk) halves the bytes per cached token,
// which halves the decode step's dominant HBM traffic and doubles the
// context that fits a chip's memory budget. The per-row quantization
// scales are a <2% overhead at real KV widths and are ignored here, like
// every other sub-percent constant in the analytic model.
func (c Config) KVBytesPerTokenPerLayerAs(d DType) float64 {
	return 2 * float64(c.KVHeads) * float64(c.HeadDim) * d.Bytes()
}

// KVBytesPerToken is the full-model KV-cache footprint of one token.
func (c Config) KVBytesPerToken() float64 {
	return c.KVBytesPerTokenAs(BF16)
}

// KVBytesPerTokenAs is KVBytesPerToken for a KV cache stored in the given
// dtype.
func (c Config) KVBytesPerTokenAs(d DType) float64 {
	return float64(c.Layers) * c.KVBytesPerTokenPerLayerAs(d)
}

// MatmulFLOPsPerToken is the forward-pass matmul work per token: 2 FLOPs per
// parameter (Kaplan et al. 2020), embedding/unembedding included (the output
// projection is a real matmul; the input lookup is free but its parameters
// are shared with the output projection, so 2·Params is the standard count
// the paper uses as "2N").
func (c Config) MatmulFLOPsPerToken() float64 { return 2 * c.Params() }

// AttnFLOPsPerToken is the attention-mechanism matmul work (QK^T and
// attention·V) for one token attending to a context of length ctx.
func (c Config) AttnFLOPsPerToken(ctx int) float64 {
	return 2 * 2 * float64(c.Heads) * float64(c.HeadDim) * float64(ctx)
}

// WithHeads returns a copy with the query-head count (and, for multihead
// models, the KV-head count) replaced. Used for the paper's 48→64 head
// padding ablation on PaLM 540B.
func (c Config) WithHeads(heads int) Config {
	out := c
	out.Heads = heads
	if c.Attn == Multihead {
		out.KVHeads = heads
	}
	out.Name = fmt.Sprintf("%s-h%d", c.Name, heads)
	return out
}

// WithLayers returns a copy with the layer count replaced (Figure 8 uses an
// 8-layer variant of PaLM 540B).
func (c Config) WithLayers(layers int) Config {
	out := c
	out.Layers = layers
	out.Name = fmt.Sprintf("%s-l%d", c.Name, layers)
	return out
}

const palmVocab = 256000

// PaLM8B is the PaLM 8B architecture (32 layers, d_model 4096, 16 heads of
// dim 256, multiquery, parallel block, SwiGLU).
func PaLM8B() Config {
	return Config{
		Name: "PaLM 8B", Layers: 32, DModel: 4096, DFF: 16384,
		Heads: 16, HeadDim: 256, KVHeads: 1, Attn: Multiquery,
		FFNKind: SwiGLU, ParallelBlock: true, Vocab: palmVocab,
	}
}

// PaLM62B is the PaLM 62B architecture (64 layers, d_model 8192, 32 heads).
func PaLM62B() Config {
	return Config{
		Name: "PaLM 62B", Layers: 64, DModel: 8192, DFF: 32768,
		Heads: 32, HeadDim: 256, KVHeads: 1, Attn: Multiquery,
		FFNKind: SwiGLU, ParallelBlock: true, Vocab: palmVocab,
	}
}

// PaLM540B is the published PaLM 540B architecture (118 layers, d_model
// 18432, 48 heads of dim 256, multiquery, parallel block).
func PaLM540B() Config {
	return Config{
		Name: "PaLM 540B", Layers: 118, DModel: 18432, DFF: 73728,
		Heads: 48, HeadDim: 256, KVHeads: 1, Attn: Multiquery,
		FFNKind: SwiGLU, ParallelBlock: true, Vocab: palmVocab,
	}
}

// PaLM540BPadded is PaLM 540B with attention heads padded from 48 to 64 so
// the head dimension partitions evenly on 64+ chips; the paper reports this
// adds 18B parameters at a 3% MFU cost and is what they benchmark.
func PaLM540BPadded() Config {
	c := PaLM540B().WithHeads(64)
	c.Name = "PaLM 540B (64 heads)"
	return c
}

// PaLM540BMHA is the paper's multihead-attention control variant of PaLM
// 540B: head dim shrunk 256→128 so attention parameter count matches the
// multiquery variant (Section 4.2, Figure 8, Table 1). Like the benchmarked
// multiquery model it uses the padded 64-head count — Table 1's published
// max-context values (1320 at batch 128, 330 at batch 512) only reconcile
// with 64 KV heads of dim 128.
func PaLM540BMHA() Config {
	return Config{
		Name: "PaLM 540B-MHA", Layers: 118, DModel: 18432, DFF: 73728,
		Heads: 64, HeadDim: 128, KVHeads: 64, Attn: Multihead,
		FFNKind: SwiGLU, ParallelBlock: true, Vocab: palmVocab,
	}
}

// MTNLG530B is Megatron-Turing NLG 530B per Table D.1: 105 layers, d_model
// 20480, d_ff 81920, 128 heads of dim 160, multihead, serial block, GELU.
func MTNLG530B() Config {
	return Config{
		Name: "MT-NLG 530B", Layers: 105, DModel: 20480, DFF: 81920,
		Heads: 128, HeadDim: 160, KVHeads: 128, Attn: Multihead,
		FFNKind: GELU, ParallelBlock: false, Vocab: 51200,
	}
}

// All returns the named presets the experiments sweep over.
func All() []Config {
	return []Config{PaLM8B(), PaLM62B(), PaLM540BPadded(), MTNLG530B()}
}
