package serve

import (
	"math"
	"testing"

	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// Analyze surfaces the perf model's bandwidth-vs-hop-floor comm split per
// tier: the prefill fields are the batch's phase totals, the decode fields
// are per step (phase comm over Gen), and the floors are subsets that
// survive full overlap.
func TestAnalyzeReportsCommSplit(t *testing.T) {
	c := paperConfig()
	m, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.PrefillComm <= 0 || m.DecodeStepComm <= 0 {
		t.Fatalf("comm fields not populated: prefill %g, decode %g", m.PrefillComm, m.DecodeStepComm)
	}
	if m.PrefillCommFloor <= 0 || m.PrefillCommFloor > m.PrefillComm {
		t.Errorf("prefill floor %g outside (0, comm %g]", m.PrefillCommFloor, m.PrefillComm)
	}
	if m.DecodeStepCommFloor <= 0 || m.DecodeStepCommFloor > m.DecodeStepComm {
		t.Errorf("decode floor %g outside (0, comm %g]", m.DecodeStepCommFloor, m.DecodeStepComm)
	}

	// Cross-check against the perf model directly.
	dec := perf.Decode(perf.Request{
		Model: c.Model, System: c.Decode.System, Weights: c.Weights,
		FFN: c.Decode.FFN, Attn: c.Decode.Attn,
		Batch: c.Decode.Batch, Context: c.Context, Gen: c.Gen,
	}, c.Knobs)
	if want := dec.Breakdown.Comm / float64(c.Gen); math.Abs(m.DecodeStepComm-want)/want > 1e-12 {
		t.Errorf("DecodeStepComm %g, want phase comm / Gen = %g", m.DecodeStepComm, want)
	}

	// Under full overlap the per-step comm pins to the per-step floor, and
	// the floor itself is overlap-invariant.
	ov := c
	ov.Knobs.OverlapFrac = 1.0
	mo, err := Analyze(ov)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mo.DecodeStepComm-mo.DecodeStepCommFloor)/mo.DecodeStepCommFloor > 1e-9 {
		t.Errorf("full overlap: decode comm %g should pin to floor %g",
			mo.DecodeStepComm, mo.DecodeStepCommFloor)
	}
	if math.Abs(mo.DecodeStepCommFloor-m.DecodeStepCommFloor)/m.DecodeStepCommFloor > 1e-9 {
		t.Errorf("floor changed with overlap: %g vs %g", mo.DecodeStepCommFloor, m.DecodeStepCommFloor)
	}
	if mo.DecodeStepComm > m.DecodeStepComm+1e-15 {
		t.Errorf("overlap increased decode comm: %g vs %g", mo.DecodeStepComm, m.DecodeStepComm)
	}
}

// At full overlap the int8 wire buys nothing per decode step on the
// latency-bound small-batch tier — both formats wait on the same hops — so
// the serve-level comm report shows the same pinned value.
func TestAnalyzeOverlapPinsWireFormats(t *testing.T) {
	c := paperConfig()
	c.Decode.Batch = 8
	c.Decode.Attn = partition.AttnShardBatch
	c.Knobs.OverlapFrac = 1.0
	base, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	c.WireDType = model.Int8
	q8, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q8.DecodeStepComm-base.DecodeStepComm)/base.DecodeStepComm > 1e-9 {
		t.Errorf("at full overlap int8 wire should not change decode step comm: %g vs %g",
			q8.DecodeStepComm, base.DecodeStepComm)
	}
}
