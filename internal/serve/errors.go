package serve

import "errors"

// Sentinel errors for the serving stack's validation and admission paths.
// Callers branch with errors.Is; the wrapped message carries the specifics
// (which tier, which parameter). Package batching aliases these same
// values, so one errors.Is target covers both the static-pipeline and
// continuous-batching layers.
var (
	// ErrInvalidConfig marks a configuration or argument that can never
	// run: non-positive counts, NaN rates, malformed tiers.
	ErrInvalidConfig = errors.New("invalid serving configuration")
	// ErrInfeasible marks a deployment the perf model rejects: the chosen
	// batch/context does not fit the hardware (weights + KV exceed HBM).
	ErrInfeasible = errors.New("deployment infeasible")
)
