package serve

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// WireDType threads through both tiers: quantized collective payloads can
// only shrink service times, and at a small-batch decode point — where
// the per-step cost is communication-heavy — the pipeline's min latency
// strictly improves.
func TestAnalyzeInt8WireNeverSlower(t *testing.T) {
	c := Config{
		Model:   model.PaLM540BPadded(),
		Weights: model.Int8,
		Prefill: Tier{
			System: hardware.TPUv4Slice(4, 4, 4), Batch: 1,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		},
		Decode: Tier{
			System: hardware.TPUv4Slice(4, 4, 4), Batch: 8,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		},
		Context: 2048,
		Gen:     64,
		Knobs:   perf.DefaultKnobs(),
	}
	bf, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	c.WireDType = model.Int8
	q8, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if q8.PrefillService > bf.PrefillService || q8.DecodeService > bf.DecodeService {
		t.Errorf("int8 wire slower: prefill %.4fs vs %.4fs, decode %.4fs vs %.4fs",
			q8.PrefillService, bf.PrefillService, q8.DecodeService, bf.DecodeService)
	}
	if q8.MinLatency >= bf.MinLatency {
		t.Errorf("int8 wire min latency %.4fs not below bf16 %.4fs at a comm-heavy point",
			q8.MinLatency, bf.MinLatency)
	}
	if q8.Throughput < bf.Throughput {
		t.Errorf("int8 wire throughput %.2f req/s below bf16 %.2f", q8.Throughput, bf.Throughput)
	}
}
