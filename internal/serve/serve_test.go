package serve

import (
	"math"
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// paperConfig is the Table 2 pairing: batch-1 prefill into batch-64 decode,
// both on 64-chip slices, int8 weights.
func paperConfig() Config {
	sys := hardware.TPUv4Slice(4, 4, 4)
	return Config{
		Model:   model.PaLM540BPadded(),
		Weights: model.Int8,
		Prefill: Tier{System: sys, Batch: 1,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads},
		Decode: Tier{System: sys, Batch: 64,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch},
		Context: 2048,
		Gen:     64,
		Knobs:   perf.DefaultKnobs(),
	}
}

func TestAnalyzePaperPairing(t *testing.T) {
	m, err := Analyze(paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: prefill 0.29s, decode 1.82s.
	if m.PrefillService < 0.2 || m.PrefillService > 0.4 {
		t.Errorf("prefill service %.3fs, want ~0.29s", m.PrefillService)
	}
	if m.DecodeService < 1.4 || m.DecodeService > 2.4 {
		t.Errorf("decode service %.3fs, want ~1.9s", m.DecodeService)
	}
	// The batch-64 decode tier digests 64 requests per ~1.9s while the
	// batch-1 prefill tier serves ~3.4/s: prefill is the bottleneck,
	// which is exactly why the paper pipelines a dedicated prefill fleet.
	if m.Bottleneck != "prefill" {
		t.Errorf("bottleneck = %s, want prefill", m.Bottleneck)
	}
	if m.Throughput != m.PrefillRate {
		t.Errorf("throughput %.3f != bottleneck rate %.3f", m.Throughput, m.PrefillRate)
	}
	if m.MinLatency < 1.6 || m.MinLatency > 2.8 {
		t.Errorf("min latency %.2fs, want ~2.2s (0.29 + 1.9)", m.MinLatency)
	}
	if m.CostPerToken <= 0 {
		t.Error("non-positive cost")
	}
}

// With 2048 input tokens per 64 output tokens, prefill does 32x the token
// work: at equal tier sizes it is always the bottleneck — which is exactly
// why the paper dedicates a prefill fleet. Raising the prefill batch
// improves its rate (better MFU); shrinking the decode batch can flip the
// bottleneck.
func TestRebalancingShiftsBottleneck(t *testing.T) {
	c := paperConfig()
	base, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	c.Prefill.Batch = 16
	big, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if big.Throughput <= base.Throughput {
		t.Errorf("batch-16 prefill throughput %.3f not above batch-1 %.3f",
			big.Throughput, base.Throughput)
	}
	if big.Bottleneck != "prefill" {
		t.Errorf("bottleneck = %s; prefill should still bind at 32:1 token ratio", big.Bottleneck)
	}
	c.Decode.Batch = 4
	small, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if small.Bottleneck != "decode" {
		t.Errorf("bottleneck = %s, want decode once its batch shrinks to 4", small.Bottleneck)
	}
}

func TestAnalyzeInfeasibleTier(t *testing.T) {
	c := paperConfig()
	c.Prefill.System = hardware.TPUv4Slice(1, 1, 1)
	if _, err := Analyze(c); err == nil {
		t.Error("540B prefill on one chip should be infeasible")
	}
	c = paperConfig()
	c.Decode.Attn = partition.AttnShardHeads
	c.Context = 8192
	c.Decode.Batch = 512
	if _, err := Analyze(c); err == nil {
		t.Error("replicated-KV decode at batch 512 ctx 8192 should be infeasible")
	}
}

func TestSimulateLightLoad(t *testing.T) {
	c := paperConfig()
	m, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals slower than a full pipeline traversal: each request
	// completes before the next arrives, so latency ≈ MinLatency with no
	// queueing and no batch-formation delay.
	slow := 2 * (m.PrefillService + m.DecodeService)
	res, err := Simulate(c, 20, slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.MeanLatency > m.MinLatency*1.05 {
		t.Errorf("light-load mean latency %.2fs exceeds min %.2fs", res.MeanLatency, m.MinLatency)
	}
	if res.P99 < res.P50 {
		t.Error("percentiles out of order")
	}
}

func TestSimulateHeavyLoadQueues(t *testing.T) {
	c := paperConfig()
	m, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals 3x faster than sustainable: latency must grow well beyond
	// MinLatency and throughput must cap near the bottleneck rate.
	fast := 1 / (3 * m.Throughput)
	res, err := Simulate(c, 200, fast)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency < 2*m.MinLatency {
		t.Errorf("overloaded mean latency %.2fs should be >> min %.2fs", res.MeanLatency, m.MinLatency)
	}
	if res.Throughput > m.Throughput*1.15 {
		t.Errorf("simulated throughput %.3f exceeds analytical cap %.3f", res.Throughput, m.Throughput)
	}
	if res.P99 < res.MeanLatency {
		t.Errorf("p99 %.2f below mean %.2f under overload", res.P99, res.MeanLatency)
	}
}

// Latencies must be non-negative and causally ordered for every request.
func TestSimulateCausality(t *testing.T) {
	c := paperConfig()
	res, err := Simulate(c, 50, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.PerRequest {
		if r.PrefillStart < r.Arrival || r.PrefillDone < r.PrefillStart ||
			r.DecodeStart < r.PrefillDone || r.Done < r.DecodeStart {
			t.Fatalf("request %d violates causality: %+v", r.ID, r)
		}
	}
}

// Utilizations are sane fractions, and the bottleneck tier is busier under
// load.
func TestSimulateUtilization(t *testing.T) {
	c := paperConfig()
	m, _ := Analyze(c)
	res, err := Simulate(c, 100, 1/(2*m.Throughput))
	if err != nil {
		t.Fatal(err)
	}
	for name, u := range map[string]float64{
		"prefill": res.PrefillBusyFrac, "decode": res.DecodeBusyFrac,
	} {
		if u < 0 || u > 1.02 {
			t.Errorf("%s utilization %.2f out of range", name, u)
		}
	}
	// Under sustained load the bottleneck tier saturates. (The decode
	// tier can also read near-busy while running mostly-empty batches, so
	// only the bottleneck's absolute utilization is asserted.)
	if res.PrefillBusyFrac < 0.7 {
		t.Errorf("prefill (bottleneck) utilization %.2f, want >= 0.7 under load",
			res.PrefillBusyFrac)
	}
}

// Tune must find the hand-picked pairing's neighborhood: under a 2.5s SLO
// it keeps a small prefill batch; relaxing the SLO lets throughput rise by
// batching prefill.
func TestTune(t *testing.T) {
	c := paperConfig()
	tight, ok := Tune(c, 2.5)
	if !ok {
		t.Fatal("no feasible config under 2.5s SLO")
	}
	if tight.Metrics.MinLatency > 2.5 {
		t.Errorf("tuned latency %.2fs violates SLO", tight.Metrics.MinLatency)
	}
	if tight.PrefillBatch > 2 {
		t.Errorf("tight SLO chose prefill batch %d, want 1-2", tight.PrefillBatch)
	}
	loose, ok := Tune(c, 30)
	if !ok {
		t.Fatal("no feasible config under 30s SLO")
	}
	if loose.Metrics.Throughput <= tight.Metrics.Throughput {
		t.Errorf("loose SLO throughput %.2f not above tight %.2f",
			loose.Metrics.Throughput, tight.Metrics.Throughput)
	}
	if loose.PrefillBatch <= tight.PrefillBatch {
		t.Errorf("loose SLO should batch prefill more (%d vs %d)",
			loose.PrefillBatch, tight.PrefillBatch)
	}
	if _, ok := Tune(c, 0.01); ok {
		t.Error("impossible SLO should find nothing")
	}
}

// Analyze must reject every degenerate workload or tier shape with an
// error rather than returning nonsense metrics.
func TestAnalyzeErrorPaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero gen", func(c *Config) { c.Gen = 0 }},
		{"negative gen", func(c *Config) { c.Gen = -5 }},
		{"negative context", func(c *Config) { c.Context = -1 }},
		{"zero prefill batch", func(c *Config) { c.Prefill.Batch = 0 }},
		{"zero decode batch", func(c *Config) { c.Decode.Batch = 0 }},
		{"prefill tier OOM", func(c *Config) { c.Prefill.System = hardware.TPUv4Slice(1, 1, 1) }},
		{"decode tier OOM", func(c *Config) {
			c.Decode.Attn = partition.AttnShardHeads
			c.Context = 8192
			c.Decode.Batch = 512
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := paperConfig()
			tc.mutate(&c)
			if _, err := Analyze(c); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// Bottleneck identification over tier-batch pairings: at the paper's 32:1
// input:output token ratio the prefill tier binds unless the decode batch
// is starved.
func TestBottleneckTable(t *testing.T) {
	cases := []struct {
		name   string
		pb, db int
		want   string
	}{
		{"paper pairing", 1, 64, "prefill"},
		{"batched prefill", 16, 64, "prefill"},
		{"huge decode batch", 1, 256, "prefill"},
		{"starved decode", 16, 4, "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := paperConfig()
			c.Prefill.Batch = tc.pb
			c.Decode.Batch = tc.db
			m, err := Analyze(c)
			if err != nil {
				t.Fatal(err)
			}
			if m.Bottleneck != tc.want {
				t.Errorf("bottleneck = %s, want %s", m.Bottleneck, tc.want)
			}
			wantRate := m.PrefillRate
			if tc.want == "decode" {
				wantRate = m.DecodeRate
			}
			if m.Throughput != wantRate {
				t.Errorf("throughput %.3f != %s rate %.3f", m.Throughput, tc.want, wantRate)
			}
		})
	}
}

// Simulate must reject degenerate run parameters instead of panicking or
// dividing by zero.
func TestSimulateErrorPaths(t *testing.T) {
	cases := []struct {
		name         string
		mutate       func(*Config)
		nRequests    int
		interarrival float64
	}{
		{"zero requests", nil, 0, 1.0},
		{"negative requests", nil, -3, 1.0},
		{"negative interarrival", nil, 10, -0.5},
		{"NaN interarrival", nil, 10, math.NaN()},
		{"zero gen config", func(c *Config) { c.Gen = 0 }, 10, 1.0},
		{"zero decode batch", func(c *Config) { c.Decode.Batch = 0 }, 10, 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := paperConfig()
			if tc.mutate != nil {
				tc.mutate(&c)
			}
			if _, err := Simulate(c, tc.nRequests, tc.interarrival); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// A single request and zero interarrival are valid edge shapes: one batch
// through each tier, latency = MinLatency.
func TestSimulateSingleRequest(t *testing.T) {
	c := paperConfig()
	m, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 {
		t.Fatalf("completed %d", res.Completed)
	}
	if math.Abs(res.MeanLatency-m.MinLatency) > 1e-9 {
		t.Errorf("single-request latency %.3f != min latency %.3f", res.MeanLatency, m.MinLatency)
	}
	if res.P50 != res.P99 {
		t.Error("percentiles of one sample must coincide")
	}
}

// Tune edge cases: impossible SLOs find nothing, infeasible configs find
// nothing, and the search respects its bounds.
func TestTuneDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		slo    float64
		wantOK bool
	}{
		{"paper SLO", nil, 2.5, true},
		{"unbounded SLO", nil, math.Inf(1), true},
		{"impossible SLO", nil, 0.01, false},
		{"zero SLO", nil, 0, false},
		{"zero gen never analyzes", func(c *Config) { c.Gen = 0 }, 30, false},
		{"tiers always OOM", func(c *Config) {
			c.Prefill.System = hardware.TPUv4Slice(1, 1, 1)
			c.Decode.System = hardware.TPUv4Slice(1, 1, 1)
		}, 30, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := paperConfig()
			if tc.mutate != nil {
				tc.mutate(&c)
			}
			res, ok := Tune(c, tc.slo)
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if ok {
				if res.PrefillBatch < 1 || res.PrefillBatch > 64 ||
					res.DecodeBatch < 4 || res.DecodeBatch > 512 {
					t.Errorf("tuned batches %d/%d out of search bounds",
						res.PrefillBatch, res.DecodeBatch)
				}
				if res.Metrics.MinLatency > tc.slo {
					t.Errorf("latency %.2f violates SLO %.2f", res.Metrics.MinLatency, tc.slo)
				}
			}
		})
	}
}

func TestMetricsArithmetic(t *testing.T) {
	m, err := Analyze(paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TokensPerSecond-m.Throughput*64) > 1e-9 {
		t.Error("tokens/s != throughput × gen")
	}
	wantCost := 128 / m.TokensPerSecond
	if math.Abs(m.CostPerToken-wantCost) > 1e-12 {
		t.Errorf("cost %.4f, want %.4f", m.CostPerToken, wantCost)
	}
}

// The prefix-hit-rate knob flows through Analyze: a template-heavy
// workload has a faster prefill tier, which can flip the bottleneck and
// raise sustainable throughput; an invalid knob is an error.
func TestAnalyzePrefixHitRate(t *testing.T) {
	cold := paperConfig()
	warm := paperConfig()
	warm.PrefixHitRate = 0.9
	warm.PrefixLen = 1792

	mc, err := Analyze(cold)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := Analyze(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !(mw.PrefillService < mc.PrefillService) {
		t.Errorf("prefix hits did not shrink prefill service: %g vs %g",
			mw.PrefillService, mc.PrefillService)
	}
	if mw.PrefillRate <= mc.PrefillRate {
		t.Errorf("prefix hits did not raise prefill rate: %g vs %g",
			mw.PrefillRate, mc.PrefillRate)
	}
	if mw.Throughput < mc.Throughput {
		t.Errorf("prefix hits lowered pipeline throughput: %g vs %g",
			mw.Throughput, mc.Throughput)
	}

	bad := paperConfig()
	bad.PrefixHitRate = 2
	bad.PrefixLen = 128
	if _, err := Analyze(bad); err == nil {
		t.Error("hit rate 2 accepted")
	}
	bad = paperConfig()
	bad.PrefixHitRate = 0.5
	bad.PrefixLen = bad.Context
	if _, err := Analyze(bad); err == nil {
		t.Error("prefix length == context accepted")
	}
}

// Tune sees the knob through Analyze: a high hit rate can only improve (or
// keep) the best achievable throughput under the same SLO.
func TestTuneWithPrefixHitRate(t *testing.T) {
	cold := paperConfig()
	warm := paperConfig()
	warm.PrefixHitRate = 0.9
	warm.PrefixLen = 1792

	tc, okc := Tune(cold, math.Inf(1))
	tw, okw := Tune(warm, math.Inf(1))
	if !okc || !okw {
		t.Fatal("tune failed")
	}
	if tw.Metrics.Throughput < tc.Metrics.Throughput {
		t.Errorf("tuned throughput dropped with prefix hits: %g vs %g",
			tw.Metrics.Throughput, tc.Metrics.Throughput)
	}
}
