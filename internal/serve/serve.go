// Package serve models the disaggregated serving topology the paper
// sketches under Table 2: a prefill tier running at a latency-optimal batch
// feeding a decode tier running at a throughput-optimal batch ("pipelining a
// batch-1 prefill server into a batch-64 decoding server"). It provides a
// steady-state pipeline analysis and a deterministic discrete-event
// simulation of a request stream, both costed with the perf model.
package serve

import (
	"fmt"
	"math"
	"sort"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// Tier is one stage of the pipeline: a chip slice running one phase at a
// fixed batch.
type Tier struct {
	System hardware.System
	Batch  int
	FFN    partition.FFNLayout
	Attn   partition.AttnLayout
}

// Config describes the two-tier deployment and workload.
type Config struct {
	Model   model.Config
	Weights model.DType
	// KVDType is the KV-cache storage format on both tiers (BF16 default;
	// Int8 halves cache bytes and KV memory traffic, which roughly doubles
	// the context or batch the decode tier can admit — the engine-level
	// counterpart is engine.Options.Int8KV).
	KVDType model.DType
	// WireDType is the activation collective payload format on both tiers
	// (BF16 default; Int8 halves exposed communication time — the
	// engine-level counterpart is engine.Options.Int8Wire).
	WireDType model.DType
	Prefill   Tier
	Decode    Tier
	// Context and Gen are per-request token counts.
	Context int
	Gen     int
	// PrefixHitRate is the fraction of requests whose leading PrefixLen
	// tokens are served from a shared-prefix KV cache (system prompts,
	// few-shot templates), so they prefill only the remaining
	// Context-PrefixLen tokens. Zero models an all-cold workload.
	PrefixHitRate float64
	PrefixLen     int
	Knobs         perf.Knobs
}

// Metrics is the outcome of an analysis or simulation.
type Metrics struct {
	// PrefillService and DecodeService are the batch service times.
	PrefillService float64
	DecodeService  float64
	// PrefillRate and DecodeRate are requests/second each tier sustains.
	PrefillRate float64
	DecodeRate  float64
	// Throughput is the pipeline's sustainable requests/second.
	Throughput float64
	// TokensPerSecond is generated-token throughput.
	TokensPerSecond float64
	// Bottleneck names the limiting tier.
	Bottleneck string
	// MinLatency is the no-queueing request latency (one prefill batch
	// service + one decode batch service).
	MinLatency float64
	// CostPerToken is chip-seconds per generated token across both tiers.
	CostPerToken float64
	// PrefillComm and PrefillCommFloor are the prefill batch's exposed
	// communication time and the serial hop-latency floor inside it
	// (perf.Breakdown.Comm / .CommFloor): Comm - CommFloor is the
	// bandwidth component, the only part Knobs.OverlapFrac can hide.
	PrefillComm      float64
	PrefillCommFloor float64
	// DecodeStepComm and DecodeStepCommFloor are the same split per decode
	// step (the decode phase's comm divided by Gen).
	DecodeStepComm      float64
	DecodeStepCommFloor float64
}

// Analyze computes steady-state pipeline metrics. The prefill tier is
// costed at the workload's expected admission cost: PrefixHitRate of the
// requests skip their cached PrefixLen-token template.
func Analyze(c Config) (Metrics, error) {
	pre := perf.PrefillExpected(perf.Request{
		Model: c.Model, System: c.Prefill.System, Weights: c.Weights,
		KVDType: c.KVDType, WireDType: c.WireDType,
		FFN: c.Prefill.FFN, Attn: c.Prefill.Attn,
		Batch: c.Prefill.Batch, Context: c.Context,
	}, c.Knobs, c.PrefixHitRate, c.PrefixLen)
	if !pre.Feasible {
		return Metrics{}, fmt.Errorf("serve: prefill tier %w: %s", ErrInfeasible, pre.Reason)
	}
	dec := perf.Decode(perf.Request{
		Model: c.Model, System: c.Decode.System, Weights: c.Weights,
		KVDType: c.KVDType, WireDType: c.WireDType,
		FFN: c.Decode.FFN, Attn: c.Decode.Attn,
		Batch: c.Decode.Batch, Context: c.Context, Gen: c.Gen,
	}, c.Knobs)
	if !dec.Feasible {
		return Metrics{}, fmt.Errorf("serve: decode tier %w: %s", ErrInfeasible, dec.Reason)
	}

	m := Metrics{
		PrefillService:      pre.Time,
		DecodeService:       dec.Time,
		PrefillRate:         float64(c.Prefill.Batch) / pre.Time,
		DecodeRate:          float64(c.Decode.Batch) / dec.Time,
		MinLatency:          pre.Time + dec.Time,
		PrefillComm:         pre.Breakdown.Comm,
		PrefillCommFloor:    pre.Breakdown.CommFloor,
		DecodeStepComm:      dec.Breakdown.Comm / float64(c.Gen),
		DecodeStepCommFloor: dec.Breakdown.CommFloor / float64(c.Gen),
	}
	m.Throughput = math.Min(m.PrefillRate, m.DecodeRate)
	m.TokensPerSecond = m.Throughput * float64(c.Gen)
	if m.PrefillRate <= m.DecodeRate {
		m.Bottleneck = "prefill"
	} else {
		m.Bottleneck = "decode"
	}
	chips := float64(c.Prefill.System.Chips() + c.Decode.System.Chips())
	m.CostPerToken = chips / m.TokensPerSecond
	return m, nil
}

// Request is one simulated request.
type Request struct {
	ID      int
	Arrival float64
	// Filled by Simulate:
	PrefillStart, PrefillDone float64
	DecodeStart, Done         float64
}

// Latency is the request's end-to-end time.
func (r Request) Latency() float64 { return r.Done - r.Arrival }

// SimResult summarizes a simulation run.
type SimResult struct {
	Completed       int
	MeanLatency     float64
	P50, P95, P99   float64
	Throughput      float64 // completed requests / makespan
	PrefillBusyFrac float64
	DecodeBusyFrac  float64
	Makespan        float64
	PerRequest      []Request
}

// Simulate runs a deterministic discrete-event simulation: requests arrive
// at a fixed interarrival time, the prefill tier serves them in batches of
// up to Prefill.Batch (partial batches pay full batch service time — the
// server runs whenever work is queued), and the decode tier likewise forms
// batches of up to Decode.Batch. Batch service times come from Analyze's
// perf results, scaled down for partial batches only in occupancy, not
// time (a half-empty batch wastes the idle slots, as in real serving).
func Simulate(c Config, nRequests int, interarrival float64) (SimResult, error) {
	if nRequests < 1 {
		return SimResult{}, fmt.Errorf("serve: %w: %d requests to simulate", ErrInvalidConfig, nRequests)
	}
	if interarrival < 0 || math.IsNaN(interarrival) {
		return SimResult{}, fmt.Errorf("serve: %w: interarrival %g", ErrInvalidConfig, interarrival)
	}
	m, err := Analyze(c)
	if err != nil {
		return SimResult{}, err
	}
	reqs := make([]Request, nRequests)
	for i := range reqs {
		reqs[i] = Request{ID: i, Arrival: float64(i) * interarrival}
	}

	// Prefill tier: batch up whatever is queued when the server frees.
	serverFree := 0.0
	for i := 0; i < nRequests; {
		first := &reqs[i]
		start := math.Max(first.Arrival, serverFree)
		// Admit up to Batch requests that have arrived by start.
		j := i
		for j < nRequests && j-i < c.Prefill.Batch && reqs[j].Arrival <= start {
			j++
		}
		if j == i {
			j = i + 1 // serve the next arrival alone
			start = math.Max(reqs[i].Arrival, serverFree)
		}
		for k := i; k < j; k++ {
			reqs[k].PrefillStart = start
			reqs[k].PrefillDone = start + m.PrefillService
		}
		serverFree = start + m.PrefillService
		i = j
	}

	// Decode tier: same batching discipline over prefill completions.
	order := make([]int, nRequests)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return reqs[order[a]].PrefillDone < reqs[order[b]].PrefillDone
	})
	decFree := 0.0
	for i := 0; i < nRequests; {
		first := &reqs[order[i]]
		start := math.Max(first.PrefillDone, decFree)
		j := i
		for j < nRequests && j-i < c.Decode.Batch && reqs[order[j]].PrefillDone <= start {
			j++
		}
		if j == i {
			j = i + 1
			start = math.Max(first.PrefillDone, decFree)
		}
		for k := i; k < j; k++ {
			reqs[order[k]].DecodeStart = start
			reqs[order[k]].Done = start + m.DecodeService
		}
		decFree = start + m.DecodeService
		i = j
	}

	lat := make([]float64, nRequests)
	makespan := 0.0
	var sum float64
	for i, r := range reqs {
		lat[i] = r.Latency()
		sum += lat[i]
		if r.Done > makespan {
			makespan = r.Done
		}
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		idx := int(p * float64(nRequests-1))
		return lat[idx]
	}
	res := SimResult{
		Completed:   nRequests,
		MeanLatency: sum / float64(nRequests),
		P50:         pct(0.50),
		P95:         pct(0.95),
		P99:         pct(0.99),
		Throughput:  float64(nRequests) / makespan,
		Makespan:    makespan,
		PerRequest:  reqs,
	}
	res.PrefillBusyFrac = busyFrac(reqs, makespan, func(r Request) (float64, float64) {
		return r.PrefillStart, r.PrefillDone
	}, m.PrefillService, c.Prefill.Batch)
	res.DecodeBusyFrac = busyFrac(reqs, makespan, func(r Request) (float64, float64) {
		return r.DecodeStart, r.Done
	}, m.DecodeService, c.Decode.Batch)
	return res, nil
}

// TuneResult is the outcome of Tune: the chosen tier batches with their
// steady-state metrics.
type TuneResult struct {
	PrefillBatch, DecodeBatch int
	Metrics                   Metrics
}

// Tune searches tier batch sizes (powers of two) for the configuration that
// maximizes pipeline throughput subject to a no-queueing latency SLO
// (MinLatency ≤ slo). It automates the choice the paper makes by hand in
// Tables 2-3: small prefill batches for latency, large decode batches for
// MFU, sized so neither tier starves the other more than it must.
func Tune(c Config, slo float64) (TuneResult, bool) {
	best := TuneResult{}
	found := false
	for pb := 1; pb <= 64; pb *= 2 {
		for db := 4; db <= 512; db *= 2 {
			cand := c
			cand.Prefill.Batch = pb
			cand.Decode.Batch = db
			m, err := Analyze(cand)
			if err != nil || m.MinLatency > slo {
				continue
			}
			if !found || m.Throughput > best.Metrics.Throughput {
				best = TuneResult{PrefillBatch: pb, DecodeBatch: db, Metrics: m}
				found = true
			}
		}
	}
	return best, found
}

// busyFrac estimates tier utilization from distinct service windows.
func busyFrac(reqs []Request, makespan float64, window func(Request) (float64, float64), service float64, batch int) float64 {
	if makespan <= 0 {
		return 0
	}
	seen := map[float64]bool{}
	for _, r := range reqs {
		s, _ := window(r)
		seen[s] = true
	}
	return service * float64(len(seen)) / makespan
}
