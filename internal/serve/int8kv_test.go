package serve

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// KVDType threads through both tiers: a long-context deployment whose
// bf16 decode-tier cache overflows HBM analyzes cleanly with the int8 KV
// cache, and where both fit, the int8 decode batch is served no slower
// (half the KV memory traffic can only help).
func TestAnalyzeInt8KVAdmitsLongerContext(t *testing.T) {
	c := Config{
		Model:   model.PaLM540BPadded(),
		Weights: model.Int8,
		Prefill: Tier{
			System: hardware.TPUv4Slice(4, 4, 4), Batch: 1,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		},
		Decode: Tier{
			System: hardware.TPUv4Slice(4, 4, 4), Batch: 256,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		},
		Context: 50000, // past the bf16 decode tier's OOM boundary (~46k)
		Gen:     64,
		Knobs:   perf.DefaultKnobs(),
	}
	if _, err := Analyze(c); err == nil {
		t.Fatal("bf16 KV at context 50000 should be infeasible")
	}
	c.KVDType = model.Int8
	m, err := Analyze(c)
	if err != nil {
		t.Fatalf("int8 KV should admit context 50000: %v", err)
	}
	if m.Throughput <= 0 {
		t.Errorf("degenerate throughput %g", m.Throughput)
	}

	// At a context both fit, int8 KV is never slower per decode batch.
	c.Context = 8192
	q8, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	c.KVDType = model.BF16
	bf, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if q8.DecodeService > bf.DecodeService {
		t.Errorf("int8 KV decode service %.4fs slower than bf16 %.4fs",
			q8.DecodeService, bf.DecodeService)
	}
}
