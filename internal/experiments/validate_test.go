package experiments

import "testing"

// Every functional-vs-analytic check must pass — this is the bridge between
// the mesh-measured reality and the closed-form model everything else uses.
func TestValidationAllPass(t *testing.T) {
	rows := Validate()
	if len(rows) != 5 {
		t.Fatalf("got %d validation rows, want 5", len(rows))
	}
	for _, r := range rows {
		if !r.Pass {
			t.Errorf("%s: measured %g vs predicted %g", r.Check, r.Measured, r.Predicted)
		}
	}
}

func TestValidateTableRenders(t *testing.T) {
	s := ValidateTable().String()
	if len(s) < 100 {
		t.Errorf("validation table too short:\n%s", s)
	}
}
