package experiments

import (
	"fmt"
	"math"

	"esti/internal/commcost"
	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tableio"
	"esti/internal/tensor"
)

// ValidationRow is one functional-vs-analytic check: a quantity measured on
// the running sharded engine against the closed-form prediction the
// analytical model uses.
type ValidationRow struct {
	Check     string
	Measured  float64
	Predicted float64
	Unit      string
	Pass      bool
}

func validationConfig() model.Config {
	return model.Config{
		Name: "validate", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
}

// Validate runs the functional engine on a small model across an 8-chip
// mesh and checks the quantities the paper's analysis rests on:
//
//  1. the 1D-vs-2D weight-stationary communication difference equals the
//     Appendix A.2 volume formulas;
//  2. batch-sharding attention adds exactly the two all-to-alls of
//     Figure 5(b), and nothing else;
//  3. XYZ-weight-gathered traffic equals the gathered weight volume and is
//     independent of the token count (Figure 3's flat line);
//  4. per-chip KV-cache bytes divide by nchips under batch sharding and
//     replicate fully under head-sharded multiquery (Table 1's mechanism);
//  5. the sharded logits match the unsharded reference.
func Validate() []ValidationRow {
	cfg := validationConfig()
	w := reference.NewWeights(cfg, 99)
	tr := hardware.Torus{X: 2, Y: 2, Z: 2}
	n := tr.Chips()
	const batch, steps = 8, 4
	nTok := float64(batch * steps)
	const fb = 4.0 // float32 bytes on the functional mesh

	prefillBytes := func(opts engine.Options) float64 {
		eng, err := engine.New(w, tr, opts, batch, 8)
		if err != nil {
			panic(err)
		}
		eng.Mesh().ResetCounters()
		eng.Prefill(seqTokensFor(batch, steps, cfg.Vocab), steps)
		return float64(eng.Mesh().BytesSent()) / float64(n)
	}
	decodeBytes := func(opts engine.Options) float64 {
		eng, err := engine.New(w, tr, opts, batch, 8)
		if err != nil {
			panic(err)
		}
		eng.Prefill(seqTokensFor(batch, steps, cfg.Vocab), steps)
		eng.Mesh().ResetCounters()
		eng.Decode(make([]int, batch))
		return float64(eng.Mesh().BytesSent()) / float64(n)
	}

	var rows []ValidationRow
	add := func(check string, measured, predicted float64, unit string, tol float64) {
		pass := predicted == 0 && measured == 0 ||
			predicted != 0 && math.Abs(measured-predicted)/math.Abs(predicted) <= tol
		rows = append(rows, ValidationRow{check, measured, predicted, unit, pass})
	}

	// (1) 1D − 2D weight-stationary FFN traffic difference.
	ws1 := engine.Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads}
	ws2 := engine.Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads}
	got := prefillBytes(ws1) - prefillBytes(ws2)
	e, f := float64(cfg.DModel), float64(cfg.DFF)
	layers := float64(cfg.Layers)
	vol1D := commcost.AllGatherVolume(nTok*e*fb, n) + commcost.ReduceScatterVolume(nTok*e*fb, n)
	p2 := partition.PlanFFN(partition.FFN2DWeightStationary, tr)
	ePer := nTok * (e / float64(p2.ESplit)) * fb
	fPer := nTok * (f / float64(p2.FSplit)) * fb
	vol2D := commcost.AllGatherVolume(ePer, p2.FSplit) + commcost.ReduceScatterVolume(ePer, p2.FSplit) +
		2*commcost.ReduceScatterVolume(fPer, p2.ESplit) + commcost.AllGatherVolume(fPer, p2.ESplit)
	add("Appendix A.2: (1D − 2D) WS traffic", got, layers*(vol1D-vol2D), "B/chip", 1e-9)

	// (2) Batch sharding adds exactly the decode all-to-alls.
	heads := engine.Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads}
	batchOpts := engine.Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}
	extra := decodeBytes(batchOpts) - decodeBytes(heads)
	perChip := float64(batch*cfg.Heads*cfg.HeadDim) * fb / float64(n)
	wantA2A := layers * 2 * commcost.AllToAllVolume(perChip, n)
	add("Figure 5(b): all-to-all cost of batch sharding", extra, wantA2A, "B/chip", 1e-9)

	// (3) XYZ-weight-gathered traffic: weight volume only, batch-invariant.
	wg := engine.Options{FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch}
	small := prefillBytes(wg)
	hq := float64(cfg.Heads * cfg.HeadDim)
	kvq := float64(cfg.KVHeads * cfg.HeadDim)
	perLayerW := (2*e*f + e*f + e*hq + 2*e*kvq + hq*e) * fb
	add("Figure 3: WG-XYZ traffic = gathered weights", small,
		layers*commcost.AllGatherVolume(perLayerW, n), "B/chip", 1e-9)

	// (4) KV-cache sharding factors.
	engBatch, _ := engine.New(w, tr, batchOpts, batch, 8)
	engHeads, _ := engine.New(w, tr, heads, batch, 8)
	add("Table 1: head-sharded MQ cache / batch-sharded cache",
		float64(engHeads.ChipCacheBytes(0))/float64(engBatch.ChipCacheBytes(0)),
		float64(n), "x", 1e-12)

	// (5) Sharded logits ≡ reference logits.
	ref := reference.New(w, batch, 8)
	engV, _ := engine.New(w, tr, batchOpts, batch, 8)
	prompt := seqTokensFor(batch, steps, cfg.Vocab)
	d := tensor.MaxAbsDiff(ref.Prefill(prompt, steps), engV.Prefill(prompt, steps))
	rows = append(rows, ValidationRow{
		Check:    "sharded logits vs unsharded reference (max |Δ|)",
		Measured: d, Predicted: 0, Unit: "", Pass: d < 2e-3,
	})
	return rows
}

func seqTokensFor(batch, steps, vocab int) []int {
	out := make([]int, batch*steps)
	for i := range out {
		out[i] = (i*13 + 5) % vocab
	}
	return out
}

// ValidateTable renders the functional-vs-analytic validation.
func ValidateTable() tableio.Table {
	t := tableio.Table{
		Title:  "Functional validation: sharded engine measurements vs closed-form predictions (8-chip mesh)",
		Header: []string{"check", "measured", "predicted", "unit", "pass"},
	}
	for _, r := range Validate() {
		t.AddRow(r.Check, fmt.Sprintf("%.6g", r.Measured), fmt.Sprintf("%.6g", r.Predicted),
			r.Unit, fmt.Sprintf("%v", r.Pass))
	}
	return t
}
