package experiments

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/tableio"
)

// AblationRow is one A/B comparison from the paper's prose.
type AblationRow struct {
	Name     string
	Variant  string
	Value    float64 // seconds or MFU depending on Metric
	Metric   string
	Delta    string // formatted comparison vs the reference variant
	PaperRef string // what the paper reports
}

// AblationParallel reproduces Section 4.3: PaLM 540B decode at batch 512 on
// 64 chips, serial vs parallel attention/FFN formulation (paper: serial is
// 14% slower per step).
func AblationParallel(k perf.Knobs) []AblationRow {
	sys := hardware.TPUv4Slice(4, 4, 4)
	mk := func(parallel bool) perf.Result {
		cfg := model.PaLM540BPadded()
		cfg.ParallelBlock = parallel
		return perf.Decode(perf.Request{
			Model: cfg, System: sys, Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: 512, Context: 2048, Gen: 64,
		}, k)
	}
	par := mk(true)
	ser := mk(false)
	return []AblationRow{
		{Name: "parallel-block", Variant: "parallel", Value: par.StepTime, Metric: "s/step",
			Delta: "reference", PaperRef: "serial +14%/step"},
		{Name: "parallel-block", Variant: "serial", Value: ser.StepTime, Metric: "s/step",
			Delta:    fmt.Sprintf("%+.1f%%", (ser.StepTime/par.StepTime-1)*100),
			PaperRef: "serial +14%/step"},
	}
}

// AblationInt8 reproduces Section 4.4's quantization comparison: PaLM 540B
// batch-64 decode on 64 chips (paper: 28.5ms/token int8 vs 36.9ms bf16).
func AblationInt8(k perf.Knobs) []AblationRow {
	sys := hardware.TPUv4Slice(4, 4, 4)
	mk := func(dt model.DType) perf.Result {
		return perf.Decode(perf.Request{
			Model: model.PaLM540BPadded(), System: sys, Weights: dt,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: 64, Context: 2048, Gen: 64,
		}, k)
	}
	i8 := mk(model.Int8)
	bf := mk(model.BF16)
	return []AblationRow{
		{Name: "weights-int8", Variant: "int8", Value: i8.StepTime, Metric: "s/step",
			Delta: "reference", PaperRef: "28.5 ms/token"},
		{Name: "weights-int8", Variant: "bf16", Value: bf.StepTime, Metric: "s/step",
			Delta:    fmt.Sprintf("%+.1f%%", (bf.StepTime/i8.StepTime-1)*100),
			PaperRef: "36.9 ms/token"},
	}
}

// AblationHeadPad reproduces the Section 4 methodology note: padding PaLM
// 540B from 48 to 64 attention heads adds 18B parameters at a ~3% MFU cost
// in exchange for even partitioning on 64 chips. The MFU cost is visible by
// costing both head counts on the same 64-chip system: the padded model does
// strictly more FLOPs for the same useful output.
func AblationHeadPad(k perf.Knobs) []AblationRow {
	sys := hardware.TPUv4Slice(4, 4, 4)
	mk := func(cfg model.Config) perf.Result {
		return perf.Decode(perf.Request{
			Model: cfg, System: sys, Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: 512, Context: 2048, Gen: 64,
		}, k)
	}
	base := model.PaLM540B()
	padded := model.PaLM540BPadded()
	rBase := mk(base)
	rPad := mk(padded)
	// The padded model's *useful* MFU discounts the pad FLOPs.
	usefulMFU := rPad.MFU * base.Params() / padded.Params()
	return []AblationRow{
		{Name: "head-padding", Variant: "48 heads", Value: rBase.MFU, Metric: "MFU",
			Delta: "reference", PaperRef: "+18B params, ~3% MFU cost"},
		{Name: "head-padding", Variant: "64 heads (useful MFU)", Value: usefulMFU, Metric: "MFU",
			Delta:    fmt.Sprintf("%+.1f%% params", (padded.Params()/base.Params()-1)*100),
			PaperRef: "+18B params, ~3% MFU cost"},
	}
}

// AblationsTable renders all ablations.
func AblationsTable(k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title:  "Prose ablations: parallel block (4.3), int8 weights (4.4), head padding (4)",
		Header: []string{"ablation", "variant", "value", "metric", "delta", "paper"},
	}
	rows := AblationParallel(k)
	rows = append(rows, AblationInt8(k)...)
	rows = append(rows, AblationHeadPad(k)...)
	for _, r := range rows {
		t.AddRow(r.Name, r.Variant, fmt.Sprintf("%.4f", r.Value), r.Metric, r.Delta, r.PaperRef)
	}
	return t
}
