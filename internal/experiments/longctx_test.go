package experiments

import "testing"

// Section 4.2's scaling claim: all four operating points fit (Table 1's max
// contexts are 10,700 at batch 512 and 43,000 at batch 128), and the
// attention share of runtime at the long-context points lands in the
// paper's 8-31% band.
func TestLongContextClaim(t *testing.T) {
	rows := AblationLongContext(knobs())
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byKey := map[[2]int]LongCtxRow{}
	for _, r := range rows {
		byKey[[2]int{r.Batch, r.Context}] = r
		if !r.Feasible {
			t.Errorf("b=%d ctx=%d should fit with optimized multiquery", r.Batch, r.Context)
		}
	}
	for _, key := range [][2]int{{512, 8192}, {128, 32768}} {
		r := byKey[key]
		if r.AttnFraction < 0.05 || r.AttnFraction > 0.40 {
			t.Errorf("b=%d ctx=%d: attention share %.1f%%, paper band 8-31%%",
				key[0], key[1], r.AttnFraction*100)
		}
	}
	// Attention share grows with context at fixed batch.
	if byKey[[2]int{512, 8192}].AttnFraction <= byKey[[2]int{512, 2048}].AttnFraction {
		t.Error("attention share should grow with context")
	}
}

func TestLongContextTableRenders(t *testing.T) {
	if s := AblationLongContextTable(knobs()).String(); len(s) < 100 {
		t.Errorf("table too short:\n%s", s)
	}
}
