package experiments

import (
	"math"
	"strings"
	"testing"

	"esti/internal/ftdata"
	"esti/internal/partition"
	"esti/internal/perf"
)

func knobs() perf.Knobs { return perf.DefaultKnobs() }

// Figure 1 left: every curve is a valid frontier; int8 beats bf16 at the
// low-latency end; the minimum 540B latency is in the right ballpark
// (paper: 28.5ms int8 at batch 64, ~3x below the batch-512 latency).
func TestFig1DecodeShape(t *testing.T) {
	curves := Fig1Decode(knobs())
	if len(curves) != 6 {
		t.Fatalf("got %d curves, want 6 (3 models × 2 dtypes)", len(curves))
	}
	byName := map[string][]CurvePoint{}
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Errorf("curve %s is empty", c.Name)
			continue
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Latency <= c.Points[i-1].Latency {
				t.Errorf("%s: frontier latencies not increasing", c.Name)
			}
			if c.Points[i].Cost >= c.Points[i-1].Cost {
				t.Errorf("%s: frontier costs not decreasing", c.Name)
			}
		}
		byName[c.Name] = c.Points
	}
	i8 := byName["PaLM 540B (64 heads)-int8"]
	bf := byName["PaLM 540B (64 heads)-bf16"]
	if len(i8) == 0 || len(bf) == 0 {
		t.Fatal("missing 540B curves")
	}
	minI8, minBF := i8[0].Latency, bf[0].Latency
	if minI8 >= minBF {
		t.Errorf("int8 min latency %.4f not below bf16 %.4f", minI8, minBF)
	}
	if minI8 < 0.010 || minI8 > 0.045 {
		t.Errorf("540B int8 min decode latency = %.1fms, want ~29ms (10-45)", minI8*1000)
	}
	// Larger models cost more per token at the high-throughput end.
	last := func(pts []CurvePoint) CurvePoint { return pts[len(pts)-1] }
	c8 := byName["PaLM 8B-bf16"]
	if last(c8).Cost >= last(bf).Cost {
		t.Errorf("8B high-throughput cost %.4g should be below 540B %.4g",
			last(c8).Cost, last(bf).Cost)
	}
}

// Figure 1 right: prefill frontier exists down to batch 1 with "fairly low
// cost" — within ~4x of the large-batch cost (vs ~20x for decode).
func TestFig1PrefillShape(t *testing.T) {
	curves := Fig1Prefill(knobs())
	if len(curves) != 6 {
		t.Fatalf("got %d curves, want 6", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Errorf("curve %s empty", c.Name)
			continue
		}
		first, lastP := c.Points[0], c.Points[len(c.Points)-1]
		if ratio := first.Cost / lastP.Cost; ratio > 8 {
			t.Errorf("%s: batch-1 prefill cost is %.1fx the best cost, want < 8x", c.Name, ratio)
		}
	}
}

// Figure C.1: MFU frontiers; decode MFU tops out well below prefill MFU.
func TestFigC1Shape(t *testing.T) {
	dec := FigC1Decode(knobs())
	pre := FigC1Prefill(knobs())
	maxMFU := func(curves []Curve, name string) float64 {
		best := 0.0
		for _, c := range curves {
			if !strings.Contains(c.Name, name) {
				continue
			}
			for _, p := range c.Points {
				if p.MFU > best {
					best = p.MFU
				}
			}
		}
		return best
	}
	d540 := maxMFU(dec, "540B (64 heads)-bf16")
	p540 := maxMFU(pre, "540B (64 heads)-bf16")
	if p540 < 0.60 || p540 > 0.85 {
		t.Errorf("540B max prefill MFU = %.1f%%, want ~76%%", p540*100)
	}
	if d540 > 0.55 {
		t.Errorf("540B max decode MFU = %.1f%%, want well below prefill", d540*100)
	}
	if d540 < 0.25 {
		t.Errorf("540B max decode MFU = %.1f%%, want >= 25%% (paper ~33-40%%)", d540*100)
	}
}

// Figure 3: the communication-optimal layout progresses WS → X → XY → XYZ as
// batch grows, and XYZ-WG volume is flat.
func TestFig3Shape(t *testing.T) {
	rows := Fig3()
	if len(rows) < 8 {
		t.Fatalf("too few rows: %d", len(rows))
	}
	if rows[0].Best != partition.FFN2DWeightStationary {
		t.Errorf("at %d tokens best = %v, want WS 2D", int(rows[0].Tokens), rows[0].Best)
	}
	lastRow := rows[len(rows)-1]
	if lastRow.Best != partition.FFNWeightGatheredXYZ {
		t.Errorf("at %d tokens best = %v, want WG XYZ", int(lastRow.Tokens), lastRow.Best)
	}
	first := rows[0].Volumes[partition.FFNWeightGatheredXYZ]
	lastV := lastRow.Volumes[partition.FFNWeightGatheredXYZ]
	if first != lastV {
		t.Errorf("XYZ-WG volume not flat: %g vs %g", first, lastV)
	}
	// WS volume grows linearly in tokens.
	r0, r1 := rows[0], rows[1]
	ws0 := r0.Volumes[partition.FFN2DWeightStationary]
	ws1 := r1.Volumes[partition.FFN2DWeightStationary]
	if math.Abs(ws1/ws0-2) > 0.01 {
		t.Errorf("WS volume not linear: %g → %g for 2x tokens", ws0, ws1)
	}
}

// Figure 6: 2D beats 1D at every chip count, 2D keeps improving with chips,
// and the 1D/2D gap widens.
func TestFig6Shape(t *testing.T) {
	rows := Fig6(knobs())
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	prevGap := 0.0
	prev2D := math.Inf(1)
	for _, r := range rows {
		if r.Step2D >= r.Step1D {
			t.Errorf("%d chips: 2D (%.4f) not faster than 1D (%.4f)", r.Chips, r.Step2D, r.Step1D)
		}
		if r.Step2D >= prev2D {
			t.Errorf("%d chips: 2D latency did not improve", r.Chips)
		}
		gap := r.Step1D / r.Step2D
		if gap < prevGap {
			t.Errorf("%d chips: 1D/2D gap %.2f narrowed from %.2f", r.Chips, gap, prevGap)
		}
		prevGap, prev2D = gap, r.Step2D
	}
	// Paper's Figure 6 y-range is ~50-120ms at batch 512.
	if rows[0].Step2D < 0.050 || rows[0].Step2D > 0.130 {
		t.Errorf("64-chip 2D step = %.1fms, want 50-130ms", rows[0].Step2D*1000)
	}
}

// Figure 7: WS wins at small batch, WG wins at large batch, WG reaches
// ~70+% MFU at the 1M-token point.
func TestFig7Shape(t *testing.T) {
	rows := Fig7(knobs())
	first, last := rows[0], rows[len(rows)-1]
	if first.Tokens != 2048 || last.Tokens != 512*2048 {
		t.Fatalf("token range wrong: %d..%d", first.Tokens, last.Tokens)
	}
	if first.MFUWS <= first.MFUWG {
		t.Errorf("at 2048 tokens WS MFU %.2f should beat WG %.2f", first.MFUWS, first.MFUWG)
	}
	if last.MFUWG <= last.MFUWS {
		t.Errorf("at 1M tokens WG MFU %.2f should beat WS %.2f", last.MFUWG, last.MFUWS)
	}
	if last.MFUWG < 0.65 || last.MFUWG > 0.85 {
		t.Errorf("1M-token WG MFU = %.1f%%, want ~76%%", last.MFUWG*100)
	}
	// There is exactly one crossover.
	crossings := 0
	prevWGWins := false
	for i, r := range rows {
		wins := r.MFUWG > r.MFUWS
		if i > 0 && wins != prevWGWins {
			crossings++
		}
		prevWGWins = wins
	}
	if crossings != 1 {
		t.Errorf("WS/WG crossed %d times, want exactly 1", crossings)
	}
}

// Figure 8: optimized multiquery stays nearly flat with context; baseline
// and multihead grow much faster; on the full 118-layer model long contexts
// only fit with the optimized layout.
func TestFig8Shape(t *testing.T) {
	rows := Fig8(knobs())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	optGrowth := last.Optimized / first.Optimized
	baseGrowth := last.Baseline / first.Baseline
	mhaGrowth := last.Multihead / first.Multihead
	if optGrowth > 1.6 {
		t.Errorf("optimized growth 128→8192 = %.2fx, want < 1.6x", optGrowth)
	}
	if baseGrowth < 2.5 {
		t.Errorf("baseline growth = %.2fx, want > 2.5x", baseGrowth)
	}
	if mhaGrowth < 2.0 {
		t.Errorf("multihead growth = %.2fx, want > 2x", mhaGrowth)
	}
	// The dotted-line claim: at context >= 2048 only the optimized layout
	// fits the full model at batch 256; at 128 everything fits.
	if !first.FullFitsOptimized || !first.FullFitsBaseline || !first.FullFitsMultihead {
		t.Error("at ctx 128 all three variants should fit the 118-layer model")
	}
	for _, r := range rows[2:] {
		if !r.FullFitsOptimized {
			t.Errorf("ctx %d: optimized should fit the full model", r.Context)
		}
		if r.FullFitsBaseline || r.FullFitsMultihead {
			t.Errorf("ctx %d: baseline/multihead should OOM on the full model", r.Context)
		}
	}
}

// Table 1: within 5% of every published cell.
func TestTable1MatchesPaper(t *testing.T) {
	for _, r := range Table1() {
		for _, b := range []int{128, 512} {
			got, want := r.MaxCtx[b], r.PaperCtx[b]
			if math.Abs(float64(got-want))/float64(want) > 0.05 {
				t.Errorf("%s b=%d: max context %d, want %d ± 5%%", r.Variant, b, got, want)
			}
		}
	}
}

// Tables 2 and 3: feasible, and within the calibration tolerances.
func TestTables2And3(t *testing.T) {
	for _, tc := range []struct {
		name string
		rows []ConfigResult
	}{{"Table2", Table2(knobs())}, {"Table3", Table3(knobs())}} {
		for _, c := range tc.rows {
			if !c.Result.Feasible {
				t.Errorf("%s %s infeasible: %s", tc.name, c.Name, c.Result.Reason)
				continue
			}
			if rel := math.Abs(c.Result.Time-c.PaperLatency) / c.PaperLatency; rel > 0.30 {
				t.Errorf("%s %s: latency %.3fs vs paper %.3fs (%.0f%% off)",
					tc.name, c.Name, c.Result.Time, c.PaperLatency, rel*100)
			}
			if d := math.Abs(c.Result.MFU - c.PaperMFU); d > 0.08 {
				t.Errorf("%s %s: MFU %.1f%% vs paper %.0f%%",
					tc.name, c.Name, c.Result.MFU*100, c.PaperMFU*100)
			}
		}
	}
}

// Tables D.2-D.4 and Figure 9: our PaLM total must achieve the best absolute
// latency at matched batch, and MFU competitive with or above the best
// FasterTransformer config at comparable latency.
func TestFTComparisonShape(t *testing.T) {
	k := knobs()
	for _, bench := range ftdata.All() {
		rows := FTBenchmark(bench, k)
		for _, r := range rows {
			if r.Batch < 4 || r.Batch > 256 {
				continue
			}
			if !r.PalmPrefill.Feasible || !r.PalmGenerate.Feasible {
				t.Errorf("%s b=%d: our PaLM infeasible", bench.Name, r.Batch)
				continue
			}
			// "Our implementation of PaLM 540B achieves the best absolute
			// latency" — against every non-OOM FT config at the same batch.
			for cfg, p := range r.FT {
				if p.OOM {
					continue
				}
				if r.PalmTotalMS > p.TimeMS*1.15 {
					t.Errorf("%s b=%d: PaLM total %.0fms slower than FT %s %.0fms",
						bench.Name, r.Batch, r.PalmTotalMS, cfg, p.TimeMS)
				}
			}
		}
	}
}

// Figure 9 prose: "our implementation is able to scale up to 64-way tensor
// parallelism while still achieving 44% MFU" — at the largest batches our
// PaLM total MFU must exceed FT TP32's 30% ceiling.
func TestFig9MFUAdvantage(t *testing.T) {
	pts := Fig9(knobs())
	bestOurs, bestTP32 := 0.0, 0.0
	for _, p := range pts {
		switch {
		case strings.HasPrefix(p.Series, "Ours (PaLM"):
			if p.MFU > bestOurs {
				bestOurs = p.MFU
			}
		case p.Series == "FasterTransformer TP32":
			if p.MFU > bestTP32 {
				bestTP32 = p.MFU
			}
		}
	}
	if bestOurs <= bestTP32 {
		t.Errorf("our best MFU %.1f%% not above FT TP32 %.1f%%", bestOurs*100, bestTP32*100)
	}
	if bestOurs < 0.35 || bestOurs > 0.60 {
		t.Errorf("our best 60/20 MFU = %.1f%%, want ~40-45%%", bestOurs*100)
	}
}

// Ablations: serial slower by 3-30%; bf16 slower than int8 by 20-60% at
// batch 64; head padding costs a few MFU points of useful work.
func TestAblations(t *testing.T) {
	k := knobs()
	par := AblationParallel(k)
	if par[1].Value <= par[0].Value {
		t.Error("serial should be slower than parallel")
	}
	i8 := AblationInt8(k)
	ratio := i8[1].Value / i8[0].Value
	if ratio < 1.15 || ratio > 1.7 {
		t.Errorf("bf16/int8 step ratio = %.2f, want ~1.3 (paper 36.9/28.5)", ratio)
	}
	hp := AblationHeadPad(k)
	lost := hp[0].Value - hp[1].Value
	if lost < 0 || lost > 0.06 {
		t.Errorf("head padding useful-MFU cost = %.3f, want 0..0.06 (~3%%)", lost)
	}
}

// Rendering smoke tests: every table renders with its header and at least
// one row.
func TestRendering(t *testing.T) {
	k := knobs()
	tables := []string{
		CurvesTable("fig1", Fig1Decode(k)[:1], true).String(),
		Fig3Table().String(),
		Fig6Table(k).String(),
		Fig7Table(k).String(),
		Fig8Table(k).String(),
		Fig9Table(k).String(),
		Table1Table().String(),
		ConfigsTable("t2", Table2(k)).String(),
		ConfigsTable("t3", Table3(k)).String(),
		FTTable(ftdata.Bench60In20Out(), k).String(),
		AblationsTable(k).String(),
	}
	for i, s := range tables {
		if len(strings.Split(s, "\n")) < 4 {
			t.Errorf("table %d renders too few lines:\n%s", i, s)
		}
	}
}
