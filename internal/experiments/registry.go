package experiments

import (
	"sort"

	"esti/internal/ftdata"
	"esti/internal/perf"
)

// Registry maps every experiment id to a renderer, the single source of
// truth for cmd/estibench and the per-artifact index in DESIGN.md.
func Registry(k perf.Knobs) map[string]func() string {
	return map[string]func() string{
		"fig1-decode": func() string {
			return CurvesTable(
				"Figure 1 (left): decode cost vs latency Pareto frontier (ctx 2048, 64 generated tokens)",
				Fig1Decode(k), true).String()
		},
		"fig1-prefill": func() string {
			return CurvesTable(
				"Figure 1 (right): prefill cost vs latency Pareto frontier (2048 input tokens)",
				Fig1Prefill(k), false).String()
		},
		"fig3": func() string { return Fig3Table().String() },
		"fig6": func() string { return Fig6Table(k).String() },
		"fig7": func() string { return Fig7Table(k).String() },
		"fig8": func() string { return Fig8Table(k).String() },
		"fig9": func() string { return Fig9Table(k).String() },
		"figB1": func() string {
			return CurvesTable(
				"Figure B.1: batch-1 prefill cost vs latency (seq 32..1024)",
				FigB1(k), false).String()
		},
		"figC1-decode": func() string {
			return CurvesTable(
				"Figure C.1 (left): decode MFU vs latency frontier",
				FigC1Decode(k), true).String()
		},
		"figC1-prefill": func() string {
			return CurvesTable(
				"Figure C.1 (right): prefill MFU vs latency frontier",
				FigC1Prefill(k), false).String()
		},
		"table1": func() string { return Table1Table().String() },
		"table2": func() string {
			return ConfigsTable("Table 2: PaLM 540B example configurations", Table2(k)).String()
		},
		"table3": func() string {
			return ConfigsTable("Table 3: PaLM 62B example configurations", Table3(k)).String()
		},
		"tableD2":          func() string { return FTTable(ftdata.Bench20In8Out(), k).String() },
		"tableD3":          func() string { return FTTable(ftdata.Bench60In20Out(), k).String() },
		"tableD4":          func() string { return FTTable(ftdata.Bench128In8Out(), k).String() },
		"ablations":        func() string { return AblationsTable(k).String() },
		"ablation-gpu":     func() string { return AblationGPUTable(k).String() },
		"ablation-longctx": func() string { return AblationLongContextTable(k).String() },
		"validate":         func() string { return ValidateTable().String() },
	}
}

// RegistryIDs returns the experiment ids in sorted order.
func RegistryIDs(k perf.Knobs) []string {
	reg := Registry(k)
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
