package experiments

import (
	"fmt"

	"esti/internal/ftdata"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/tableio"
)

// FTRow is one batch size of a Table D.2-D.4 comparison: the paper's own
// PaLM and MT-NLG implementations on 64 TPU v4 chips with 2D partitioning,
// against the published FasterTransformer MT-NLG numbers.
type FTRow struct {
	Batch int
	// PaLM 540B on 64 chips.
	PalmPrefill  perf.Result
	PalmGenerate perf.Result
	PalmTotalMS  float64
	PalmTotalMFU float64
	// MT-NLG 530B on 64 chips (our implementation of their architecture).
	MTNLGTotalMS  float64
	MTNLGTotalMFU float64
	// Published FasterTransformer results for this batch (may be OOM).
	FT map[ftdata.Config]ftdata.Point
}

// FTBenchmark regenerates one of Tables D.2-D.4 (and, for the 60/20 shape,
// Figure 9): our-side numbers from the analytical model at 64 chips with 2D
// weight-stationary partitioning, FasterTransformer numbers from the
// published tables. The paper does not report our-side batches below 4
// (batch-sharded multiquery attention needs a torus axis of batch examples).
func FTBenchmark(b ftdata.Benchmark, k perf.Knobs) []FTRow {
	sys := hardware.TPUv4Slice(4, 4, 4)
	palm := model.PaLM540BPadded()
	mtnlg := model.MTNLG530B()

	var rows []FTRow
	for _, batch := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		row := FTRow{Batch: batch, FT: map[ftdata.Config]ftdata.Point{}}
		for _, cfg := range ftdata.Configs {
			for _, p := range b.Results[cfg] {
				if p.Batch == batch {
					row.FT[cfg] = p
				}
			}
		}
		if batch >= 4 {
			row.PalmPrefill = perf.Prefill(perf.Request{
				Model: palm, System: sys, Weights: model.BF16,
				FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
				Batch: batch, Context: b.InputLen,
			}, k)
			row.PalmGenerate = perf.Decode(perf.Request{
				Model: palm, System: sys, Weights: model.BF16,
				FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
				Batch: batch, Context: b.InputLen, Gen: b.OutputLen,
			}, k)
			total := row.PalmPrefill.Time + row.PalmGenerate.Time
			row.PalmTotalMS = total * 1000
			row.PalmTotalMFU = totalMFU(palm, sys, batch, b, total)

			mtTotal := ourMTNLGTotal(mtnlg, sys, batch, b, k)
			row.MTNLGTotalMS = mtTotal * 1000
			row.MTNLGTotalMFU = totalMFU(mtnlg, sys, batch, b, mtTotal)
		}
		rows = append(rows, row)
	}
	return rows
}

func ourMTNLGTotal(cfg model.Config, sys hardware.System, batch int, b ftdata.Benchmark, k perf.Knobs) float64 {
	pre := perf.Prefill(perf.Request{
		Model: cfg, System: sys, Weights: model.BF16,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads,
		Batch: batch, Context: b.InputLen,
	}, k)
	dec := perf.Decode(perf.Request{
		Model: cfg, System: sys, Weights: model.BF16,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads,
		Batch: batch, Context: b.InputLen, Gen: b.OutputLen,
	}, k)
	return pre.Time + dec.Time
}

// totalMFU computes the whole-request MFU the D tables report: model FLOPs
// over all processed plus generated tokens, divided by peak over the total
// time.
func totalMFU(cfg model.Config, sys hardware.System, batch int, b ftdata.Benchmark, total float64) float64 {
	if total <= 0 {
		return 0
	}
	tokens := float64(batch) * float64(b.InputLen+b.OutputLen)
	ideal := cfg.MatmulFLOPsPerToken() * tokens / sys.PeakSystemFLOPS()
	return ideal / total
}

// FTTable renders a Table D.2-D.4 comparison.
func FTTable(b ftdata.Benchmark, k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title: fmt.Sprintf("Table D (%s): FasterTransformer MT-NLG vs ours on 64 TPU v4", b.Name),
		Header: []string{"batch",
			"FT TP16 ms", "FT TP16 MFU", "FT TP32 ms", "FT TP32 MFU", "FT PP3/TP8 ms", "FT PP3/TP8 MFU",
			"PaLM prefill ms", "MFU", "PaLM gen ms", "MFU", "PaLM total ms", "MFU",
			"MT-NLG total ms", "MFU"},
	}
	fmtFT := func(p ftdata.Point, ok bool) (string, string) {
		if !ok {
			return "-", "-"
		}
		if p.OOM {
			return "OOM", "-"
		}
		return fmt.Sprintf("%.0f", p.TimeMS), tableio.Pct(p.MFU)
	}
	for _, r := range FTBenchmark(b, k) {
		tp16ms, tp16m := fmtFT(r.FT[ftdata.TP16], hasFT(r, ftdata.TP16))
		tp32ms, tp32m := fmtFT(r.FT[ftdata.TP32], hasFT(r, ftdata.TP32))
		ppms, ppm := fmtFT(r.FT[ftdata.PP3TP8], hasFT(r, ftdata.PP3TP8))
		if r.Batch < 4 {
			t.AddRow(r.Batch, tp16ms, tp16m, tp32ms, tp32m, ppms, ppm,
				"-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(r.Batch, tp16ms, tp16m, tp32ms, tp32m, ppms, ppm,
			fmt.Sprintf("%.0f", r.PalmPrefill.Time*1000), tableio.Pct(r.PalmPrefill.MFU),
			fmt.Sprintf("%.0f", r.PalmGenerate.Time*1000), tableio.Pct(r.PalmGenerate.MFU),
			fmt.Sprintf("%.0f", r.PalmTotalMS), tableio.Pct(r.PalmTotalMFU),
			fmt.Sprintf("%.0f", r.MTNLGTotalMS), tableio.Pct(r.MTNLGTotalMFU))
	}
	return t
}

func hasFT(r FTRow, c ftdata.Config) bool {
	_, ok := r.FT[c]
	return ok
}

// Fig9Point is one point of Figure 9: total-request latency vs MFU.
type Fig9Point struct {
	Series  string
	Batch   int
	TotalMS float64
	MFU     float64
}

// Fig9 regenerates Figure 9 from the 60-input/20-output benchmark: MFU vs
// total latency for our PaLM 540B and MT-NLG 530B implementations against
// the three FasterTransformer configurations.
func Fig9(k perf.Knobs) []Fig9Point {
	var pts []Fig9Point
	bench := ftdata.Bench60In20Out()
	for _, r := range FTBenchmark(bench, k) {
		if r.Batch >= 4 && r.PalmPrefill.Feasible {
			pts = append(pts, Fig9Point{"Ours (PaLM 540B, 64 chips)", r.Batch, r.PalmTotalMS, r.PalmTotalMFU})
			pts = append(pts, Fig9Point{"Ours (Megatron 530B, 64 chips)", r.Batch, r.MTNLGTotalMS, r.MTNLGTotalMFU})
		}
		for _, cfg := range ftdata.Configs {
			if p, ok := r.FT[cfg]; ok && !p.OOM {
				pts = append(pts, Fig9Point{"FasterTransformer " + string(cfg), r.Batch, p.TimeMS, p.MFU})
			}
		}
	}
	return pts
}

// Fig9Table renders Figure 9 as a point listing.
func Fig9Table(k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title:  "Figure 9: MFU vs total latency, 60-input/20-output inference",
		Header: []string{"series", "batch", "total (ms)", "MFU"},
	}
	for _, p := range Fig9(k) {
		t.AddRow(p.Series, p.Batch, fmt.Sprintf("%.0f", p.TotalMS), tableio.Pct1(p.MFU))
	}
	return t
}
