package experiments

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/planner"
	"esti/internal/tableio"
)

// Table1Row is one attention variant of Table 1.
type Table1Row struct {
	Variant  string
	HeadDim  int
	MaxCtx   map[int]int // batch → max context length
	PaperCtx map[int]int // published values for comparison
}

// Table1 regenerates Table 1: maximum context length supported by each
// attention variant of PaLM 540B on 64 chips with 30% of HBM reserved for
// the KV cache.
func Table1() []Table1Row {
	sys := hardware.TPUv4Slice(4, 4, 4)
	const budget = 0.30
	batches := []int{128, 512}
	mk := func(name string, cfg model.Config, layout partition.AttnLayout, paper map[int]int) Table1Row {
		r := Table1Row{Variant: name, HeadDim: cfg.HeadDim,
			MaxCtx: map[int]int{}, PaperCtx: paper}
		for _, b := range batches {
			r.MaxCtx[b] = planner.MaxContext(cfg, sys, layout, b, budget)
		}
		return r
	}
	return []Table1Row{
		mk("Multihead", model.PaLM540BMHA(), partition.AttnShardHeads,
			map[int]int{128: 1320, 512: 330}),
		mk("Baseline multiquery", model.PaLM540BPadded(), partition.AttnShardHeads,
			map[int]int{128: 660, 512: 165}),
		mk("Optimized multiquery", model.PaLM540BPadded(), partition.AttnShardBatch,
			map[int]int{128: 43000, 512: 10700}),
	}
}

// Table1Table renders Table 1 with paper values alongside.
func Table1Table() tableio.Table {
	t := tableio.Table{
		Title: "Table 1: max context length, PaLM 540B on 64 chips, 30% HBM for KV cache",
		Header: []string{"variant", "d_head",
			"b=128 (ours)", "b=128 (paper)", "b=512 (ours)", "b=512 (paper)"},
	}
	for _, r := range Table1() {
		t.AddRow(r.Variant, r.HeadDim,
			r.MaxCtx[128], r.PaperCtx[128], r.MaxCtx[512], r.PaperCtx[512])
	}
	return t
}

// ConfigResult is one column of Table 2 / Table 3.
type ConfigResult struct {
	Name    string
	Chips   int
	Torus   hardware.Torus
	Batch   int
	FFN     partition.FFNLayout
	Attn    partition.AttnLayout
	Weights model.DType
	Result  perf.Result
	// Paper-published values.
	PaperMFU     float64
	PaperLatency float64
}

// Table2 regenerates Table 2: the four example PaLM 540B configurations.
// Prefill latency is for processing 2048 tokens; decode latency is for
// generating 64 tokens.
func Table2(k perf.Knobs) []ConfigResult {
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	out := []ConfigResult{
		{Name: "low-latency prefill", Chips: 64, Batch: 1,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads,
			Weights: model.Int8, PaperMFU: 0.43, PaperLatency: 0.29},
		{Name: "low-latency decode", Chips: 64, Batch: 64,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Weights: model.Int8, PaperMFU: 0.14, PaperLatency: 1.82},
		{Name: "high-throughput prefill", Chips: 64, Batch: 512,
			FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch,
			Weights: model.BF16, PaperMFU: 0.76, PaperLatency: 85.2},
		{Name: "high-throughput decode", Chips: 64, Batch: 512,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Weights: model.BF16, PaperMFU: 0.33, PaperLatency: 6.0},
	}
	for i := range out {
		out[i].Torus = sys.Torus
		out[i].Result = runConfig(cfg, sys, out[i], k)
	}
	return out
}

// Table3 regenerates Table 3: the four example PaLM 62B configurations.
// Torus shapes match the calibration anchors (X sized per the 2D
// weight-stationary optimum for d_ff = 4·d_model).
func Table3(k perf.Knobs) []ConfigResult {
	cfg := model.PaLM62B()
	out := []ConfigResult{
		{Name: "low-latency prefill", Chips: 16, Torus: hardware.Torus{X: 4, Y: 2, Z: 2}, Batch: 1,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads,
			Weights: model.Int8, PaperMFU: 0.36, PaperLatency: 0.16},
		{Name: "low-latency decode", Chips: 16, Torus: hardware.Torus{X: 4, Y: 2, Z: 2}, Batch: 32,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Weights: model.Int8, PaperMFU: 0.08, PaperLatency: 0.73},
		{Name: "high-throughput prefill", Chips: 32, Torus: hardware.Torus{X: 4, Y: 4, Z: 2}, Batch: 512,
			FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch,
			Weights: model.BF16, PaperMFU: 0.73, PaperLatency: 20.2},
		{Name: "high-throughput decode", Chips: 8, Torus: hardware.Torus{X: 2, Y: 2, Z: 2}, Batch: 512,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Weights: model.BF16, PaperMFU: 0.37, PaperLatency: 5.1},
	}
	for i := range out {
		sys := hardware.NewSystem(hardware.TPUv4(), out[i].Torus)
		out[i].Result = runConfig(cfg, sys, out[i], k)
	}
	return out
}

func runConfig(cfg model.Config, sys hardware.System, c ConfigResult, k perf.Knobs) perf.Result {
	req := perf.Request{
		Model: cfg, System: sys, Weights: c.Weights,
		FFN: c.FFN, Attn: c.Attn,
		Batch: c.Batch, Context: 2048, Gen: 64,
	}
	if isPrefill(c.Name) {
		req.Gen = 0
		return perf.Prefill(req, k)
	}
	return perf.Decode(req, k)
}

func isPrefill(name string) bool {
	return len(name) >= 7 && name[len(name)-7:] == "prefill"
}

// ConfigsTable renders Table 2 or Table 3.
func ConfigsTable(title string, configs []ConfigResult) tableio.Table {
	t := tableio.Table{
		Title: title,
		Header: []string{"scenario", "chips", "batch", "FFN", "attention", "weights",
			"MFU (ours)", "MFU (paper)", "latency (ours)", "latency (paper)"},
	}
	for _, c := range configs {
		t.AddRow(c.Name, c.Chips, c.Batch, c.FFN.String(), c.Attn.String(), c.Weights.String(),
			tableio.Pct1(c.Result.MFU), tableio.Pct(c.PaperMFU),
			fmt.Sprintf("%.2fs", c.Result.Time), fmt.Sprintf("%.2fs", c.PaperLatency))
	}
	return t
}
