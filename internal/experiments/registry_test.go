package experiments

import (
	"strings"
	"testing"
)

// Every registry entry must render a non-trivial table, and the id set must
// cover every artifact in DESIGN.md's per-experiment index.
func TestRegistryComplete(t *testing.T) {
	k := knobs()
	reg := Registry(k)
	want := []string{
		"fig1-decode", "fig1-prefill", "fig3", "fig6", "fig7", "fig8", "fig9",
		"figB1", "figC1-decode", "figC1-prefill",
		"table1", "table2", "table3", "tableD2", "tableD3", "tableD4",
		"ablations", "ablation-gpu", "ablation-longctx", "validate",
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		gen, ok := reg[id]
		if !ok {
			t.Errorf("missing experiment %q", id)
			continue
		}
		out := gen()
		if lines := strings.Count(out, "\n"); lines < 4 {
			t.Errorf("%s renders only %d lines", id, lines)
		}
	}
}

func TestRegistryIDsSorted(t *testing.T) {
	ids := RegistryIDs(knobs())
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not sorted at %d: %q <= %q", i, ids[i], ids[i-1])
		}
	}
}
