// Package experiments regenerates every table and figure in the paper's
// evaluation (Pope et al., MLSYS 2023): Figures 1, 3, 6, 7, 8, 9, B.1, C.1
// and Tables 1, 2, 3, D.2, D.3, D.4, plus the ablations the prose reports
// (serial vs parallel blocks, int8 vs bf16, head padding).
//
// Each generator returns typed data and can render itself as a plain-text
// table; cmd/estibench prints them and the root benchmarks time them.
package experiments

import (
	"fmt"
	"math"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/pareto"
	"esti/internal/perf"
	"esti/internal/planner"
	"esti/internal/tableio"
)

// ChipCounts is the chip-count sweep of Figure 1 (the paper uses up to 256
// TPU v4 chips).
var ChipCounts = []int{8, 16, 32, 64, 128, 256}

// Batches is the batch sweep of Figure 1.
var Batches = []int{1, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// CurvePoint is one costed configuration on a latency/cost/MFU plot.
type CurvePoint struct {
	Chips   int
	Batch   int
	Torus   hardware.Torus
	Latency float64 // seconds: per generated token (decode) or per pass (prefill)
	Cost    float64 // chip-seconds per token
	MFU     float64
	Label   string
}

// Curve is a named series of points (one model × dtype).
type Curve struct {
	Name   string
	Points []CurvePoint
}

// PalmFamily returns the model × weight-dtype combinations Figure 1 sweeps.
func PalmFamily() []struct {
	Model model.Config
	DType model.DType
} {
	var out []struct {
		Model model.Config
		DType model.DType
	}
	for _, m := range []model.Config{model.PaLM8B(), model.PaLM62B(), model.PaLM540BPadded()} {
		for _, d := range []model.DType{model.BF16, model.Int8} {
			out = append(out, struct {
				Model model.Config
				DType model.DType
			}{m, d})
		}
	}
	return out
}

// bestDecode costs a decode workload on the best torus shape and layouts for
// a chip count.
func bestDecode(cfg model.Config, chips int, dt model.DType, w planner.Workload, k perf.Knobs) (CurvePoint, bool) {
	best := CurvePoint{Latency: math.Inf(1), Cost: math.Inf(1)}
	found := false
	for _, shape := range hardware.SliceShapes(chips) {
		sys := hardware.NewSystem(hardware.TPUv4(), shape)
		c, ok := planner.ChooseDecode(cfg, sys, dt, w, planner.MinLatency, k)
		if !ok {
			continue
		}
		if c.Result.StepTime < best.Latency {
			best = CurvePoint{
				Chips: chips, Batch: w.Batch, Torus: shape,
				Latency: c.Result.StepTime, Cost: c.Result.Cost, MFU: c.Result.MFU,
				Label: fmt.Sprintf("C:%d, B:%d", chips, w.Batch),
			}
			found = true
		}
	}
	return best, found
}

// bestPrefill costs a prefill workload on the best torus shape and layouts.
func bestPrefill(cfg model.Config, chips int, dt model.DType, w planner.Workload, k perf.Knobs) (CurvePoint, bool) {
	best := CurvePoint{Latency: math.Inf(1), Cost: math.Inf(1)}
	found := false
	for _, shape := range hardware.SliceShapes(chips) {
		sys := hardware.NewSystem(hardware.TPUv4(), shape)
		c, ok := planner.ChoosePrefill(cfg, sys, dt, w, planner.MinLatency, k)
		if !ok {
			continue
		}
		if c.Result.Time < best.Latency {
			best = CurvePoint{
				Chips: chips, Batch: w.Batch, Torus: shape,
				Latency: c.Result.Time, Cost: c.Result.Cost, MFU: c.Result.MFU,
				Label: fmt.Sprintf("C:%d, B:%d", chips, w.Batch),
			}
			found = true
		}
	}
	return best, found
}

func frontierMinMin(points []CurvePoint) []CurvePoint {
	return fromPareto(points, pareto.MinMin(toPareto(points, func(p CurvePoint) float64 { return p.Cost })))
}

func frontierMinMaxMFU(points []CurvePoint) []CurvePoint {
	return fromPareto(points, pareto.MinMax(toPareto(points, func(p CurvePoint) float64 { return p.MFU })))
}

func toPareto(points []CurvePoint, y func(CurvePoint) float64) []pareto.Point {
	out := make([]pareto.Point, len(points))
	for i, p := range points {
		out[i] = pareto.Point{X: p.Latency, Y: y(p), Label: p.Label}
	}
	return out
}

func fromPareto(points []CurvePoint, frontier []pareto.Point) []CurvePoint {
	byLabel := map[string]CurvePoint{}
	for _, p := range points {
		key := fmt.Sprintf("%s|%g", p.Label, p.Latency)
		if _, seen := byLabel[key]; !seen {
			byLabel[key] = p
		}
	}
	var out []CurvePoint
	for _, f := range frontier {
		key := fmt.Sprintf("%s|%g", f.Label, f.X)
		if p, ok := byLabel[key]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Fig1Decode regenerates Figure 1 (left): the cost-vs-latency Pareto
// frontier of the decode phase for the PaLM family at context 2048,
// generating 64 tokens, sweeping batch size and chip count.
func Fig1Decode(k perf.Knobs) []Curve {
	var curves []Curve
	for _, md := range PalmFamily() {
		var pts []CurvePoint
		for _, chips := range ChipCounts {
			for _, b := range Batches {
				w := planner.Workload{Batch: b, Context: 2048, Gen: 64}
				if p, ok := bestDecode(md.Model, chips, md.DType, w, k); ok {
					pts = append(pts, p)
				}
			}
		}
		curves = append(curves, Curve{
			Name:   fmt.Sprintf("%s-%s", md.Model.Name, md.DType),
			Points: frontierMinMin(pts),
		})
	}
	return curves
}

// Fig1Prefill regenerates Figure 1 (right): prefill of 2048 input tokens.
func Fig1Prefill(k perf.Knobs) []Curve {
	var curves []Curve
	for _, md := range PalmFamily() {
		var pts []CurvePoint
		for _, chips := range ChipCounts {
			for _, b := range Batches {
				w := planner.Workload{Batch: b, Context: 2048}
				if p, ok := bestPrefill(md.Model, chips, md.DType, w, k); ok {
					pts = append(pts, p)
				}
			}
		}
		curves = append(curves, Curve{
			Name:   fmt.Sprintf("%s-%s", md.Model.Name, md.DType),
			Points: frontierMinMin(pts),
		})
	}
	return curves
}

// FigC1Decode regenerates Figure C.1 (left): the MFU-vs-latency dual of
// Figure 1's decode panel.
func FigC1Decode(k perf.Knobs) []Curve {
	var curves []Curve
	for _, md := range PalmFamily() {
		var pts []CurvePoint
		for _, chips := range ChipCounts {
			for _, b := range Batches {
				w := planner.Workload{Batch: b, Context: 2048, Gen: 64}
				if p, ok := bestDecode(md.Model, chips, md.DType, w, k); ok {
					pts = append(pts, p)
				}
			}
		}
		curves = append(curves, Curve{
			Name:   fmt.Sprintf("%s-%s", md.Model.Name, md.DType),
			Points: frontierMinMaxMFU(pts),
		})
	}
	return curves
}

// FigC1Prefill regenerates Figure C.1 (right).
func FigC1Prefill(k perf.Knobs) []Curve {
	var curves []Curve
	for _, md := range PalmFamily() {
		var pts []CurvePoint
		for _, chips := range ChipCounts {
			for _, b := range Batches {
				w := planner.Workload{Batch: b, Context: 2048}
				if p, ok := bestPrefill(md.Model, chips, md.DType, w, k); ok {
					pts = append(pts, p)
				}
			}
		}
		curves = append(curves, Curve{
			Name:   fmt.Sprintf("%s-%s", md.Model.Name, md.DType),
			Points: frontierMinMaxMFU(pts),
		})
	}
	return curves
}

// FigB1 regenerates Figure B.1: minimum prefill latency — batch 1, sequence
// length swept 32..1024, cost vs latency frontier.
func FigB1(k perf.Knobs) []Curve {
	seqs := []int{32, 64, 128, 256, 512, 1024}
	var curves []Curve
	for _, md := range PalmFamily() {
		var pts []CurvePoint
		for _, chips := range ChipCounts {
			for _, s := range seqs {
				w := planner.Workload{Batch: 1, Context: s}
				if p, ok := bestPrefill(md.Model, chips, md.DType, w, k); ok {
					p.Label = fmt.Sprintf("C=%d, S=%d", chips, s)
					pts = append(pts, p)
				}
			}
		}
		curves = append(curves, Curve{
			Name:   fmt.Sprintf("%s-%s", md.Model.Name, md.DType),
			Points: frontierMinMin(pts),
		})
	}
	return curves
}

// CurvesTable renders frontier curves as a table.
func CurvesTable(title string, curves []Curve, decode bool) tableio.Table {
	latHeader := "latency/pass (s)"
	if decode {
		latHeader = "latency/token (ms)"
	}
	t := tableio.Table{
		Title:  title,
		Header: []string{"series", "config", "torus", latHeader, "cost (chip-ms/token)", "MFU"},
	}
	for _, c := range curves {
		for _, p := range c.Points {
			lat := fmt.Sprintf("%.3f", p.Latency)
			if decode {
				lat = tableio.Ms(p.Latency)
			}
			t.AddRow(c.Name, p.Label, p.Torus.String(), lat,
				fmt.Sprintf("%.3f", p.Cost*1000), tableio.Pct1(p.MFU))
		}
	}
	return t
}
