package experiments

import (
	"fmt"

	"esti/internal/commcost"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/tableio"
)

// Fig3Row is one x-position of Figure 3: per-chip communication volume of a
// feedforward layer for each layout at a token count.
type Fig3Row struct {
	Tokens  float64
	Volumes map[partition.FFNLayout]float64 // bytes per chip
	Best    partition.FFNLayout
}

// Fig3 regenerates Figure 3: communication volume vs tokens per batch for
// the weight-stationary and weight-gathered layouts, with the paper's
// parameters X=Y=Z=4, d_model=16384, d_ff=65536, two-matrix bf16 MLP.
func Fig3() []Fig3Row {
	tr := hardware.Torus{X: 4, Y: 4, Z: 4}
	const e, f = 16384.0, 65536.0
	const ab = 2.0
	layerW := 2 * e * f * ab
	layouts := []partition.FFNLayout{
		partition.FFN2DWeightStationary,
		partition.FFNWeightGatheredX,
		partition.FFNWeightGatheredXY,
		partition.FFNWeightGatheredXYZ,
	}
	var rows []Fig3Row
	for tokens := 2000.0; tokens <= 2048000; tokens *= 2 {
		row := Fig3Row{Tokens: tokens, Volumes: map[partition.FFNLayout]float64{}}
		bestV := -1.0
		for _, l := range layouts {
			v := commcost.FFNLayerComm(partition.PlanFFN(l, tr), tokens, e, f, ab, layerW).Total()
			row.Volumes[l] = v
			if bestV < 0 || v < bestV {
				bestV, row.Best = v, l
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig3Table renders Figure 3.
func Fig3Table() tableio.Table {
	t := tableio.Table{
		Title: "Figure 3: FFN communication volume (GB/chip) vs tokens per batch " +
			"(X=Y=Z=4, d_model=16384, d_ff=65536)",
		Header: []string{"tokens", "WS 2D", "WG X", "WG XY", "WG XYZ", "min-volume layout"},
	}
	for _, r := range Fig3() {
		t.AddRow(
			fmt.Sprintf("%.0f", r.Tokens),
			tableio.GB(r.Volumes[partition.FFN2DWeightStationary]),
			tableio.GB(r.Volumes[partition.FFNWeightGatheredX]),
			tableio.GB(r.Volumes[partition.FFNWeightGatheredXY]),
			tableio.GB(r.Volumes[partition.FFNWeightGatheredXYZ]),
			r.Best.String(),
		)
	}
	return t
}

// Fig6Row is one chip count of Figure 6.
type Fig6Row struct {
	Chips  int
	Torus  hardware.Torus
	Step1D float64 // seconds per decode step, 1D weight-stationary
	Step2D float64 // seconds per decode step, 2D weight-stationary
}

// Fig6 regenerates Figure 6: PaLM 540B decode latency per step at batch 512,
// 1D vs 2D weight-stationary, as chip count scales 64 → 256.
func Fig6(k perf.Knobs) []Fig6Row {
	cfg := model.PaLM540BPadded()
	var rows []Fig6Row
	for _, chips := range []int{64, 128, 256} {
		row := Fig6Row{Chips: chips}
		best2D := -1.0
		for _, shape := range hardware.SliceShapes(chips) {
			sys := hardware.NewSystem(hardware.TPUv4(), shape)
			mk := func(l partition.FFNLayout) perf.Result {
				return perf.Decode(perf.Request{
					Model: cfg, System: sys, Weights: model.BF16,
					FFN: l, Attn: partition.AttnShardBatch,
					Batch: 512, Context: 2048, Gen: 64,
				}, k)
			}
			r2 := mk(partition.FFN2DWeightStationary)
			if !r2.Feasible {
				continue
			}
			if best2D < 0 || r2.StepTime < best2D {
				best2D = r2.StepTime
				row.Torus = shape
				row.Step2D = r2.StepTime
				row.Step1D = mk(partition.FFN1DWeightStationary).StepTime
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig6Table renders Figure 6.
func Fig6Table(k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title:  "Figure 6: PaLM 540B decode latency/step (ms), batch 512: 2D vs 1D weight-stationary",
		Header: []string{"chips", "torus", "WS 2D (ms)", "WS 1D (ms)", "1D/2D"},
	}
	for _, r := range Fig6(k) {
		t.AddRow(r.Chips, r.Torus.String(), tableio.Ms(r.Step2D), tableio.Ms(r.Step1D),
			fmt.Sprintf("%.2fx", r.Step1D/r.Step2D))
	}
	return t
}

// Fig7Row is one batch size of Figure 7.
type Fig7Row struct {
	Tokens   int     // batch in tokens (sequences × 2048)
	MFUWS    float64 // 2D weight-stationary
	MFUWG    float64 // best weight-gathered variant
	WGLayout partition.FFNLayout
}

// Fig7 regenerates Figure 7: prefill MFU on PaLM 540B, 64 chips, sequence
// length 2048, as batch grows from 1 sequence (2048 tokens) to 512 sequences
// (1M tokens): 2D weight-stationary vs the best weight-gathered layout.
func Fig7(k perf.Knobs) []Fig7Row {
	cfg := model.PaLM540BPadded()
	sys := hardware.TPUv4Slice(4, 4, 4)
	var rows []Fig7Row
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		mk := func(l partition.FFNLayout) perf.Result {
			return perf.Prefill(perf.Request{
				Model: cfg, System: sys, Weights: model.BF16,
				FFN: l, Attn: partition.AttnShardBatch,
				Batch: b, Context: 2048,
			}, k)
		}
		row := Fig7Row{Tokens: b * 2048}
		row.MFUWS = mk(partition.FFN2DWeightStationary).MFU
		for _, l := range []partition.FFNLayout{
			partition.FFNWeightGatheredX,
			partition.FFNWeightGatheredXY,
			partition.FFNWeightGatheredXYZ,
		} {
			if r := mk(l); r.Feasible && r.MFU > row.MFUWG {
				row.MFUWG, row.WGLayout = r.MFU, l
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig7Table renders Figure 7.
func Fig7Table(k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title:  "Figure 7: PaLM 540B prefill MFU on 64 chips, seq 2048: weight-stationary vs weight-gathered",
		Header: []string{"tokens/batch", "WS 2D MFU", "best WG MFU", "WG layout", "winner"},
	}
	for _, r := range Fig7(k) {
		winner := "WS 2D"
		if r.MFUWG > r.MFUWS {
			winner = r.WGLayout.String()
		}
		t.AddRow(r.Tokens, tableio.Pct1(r.MFUWS), tableio.Pct1(r.MFUWG), r.WGLayout.String(), winner)
	}
	return t
}

// Fig8Row is one context length of Figure 8.
type Fig8Row struct {
	Context int
	// Per-step decode latency (seconds) on the 8-layer PaLM 540B variant.
	Optimized float64 // multiquery, batch-sharded
	Baseline  float64 // multiquery, head-sharded (replicated KV)
	Multihead float64 // multihead (d_head 128), head-sharded
	// Feasibility of the same context on the full 118-layer model at
	// batch 256 (the dotted line in the paper's figure).
	FullFitsOptimized bool
	FullFitsBaseline  bool
	FullFitsMultihead bool
}

// Fig8 regenerates Figure 8: latency per generated token vs context length
// for an 8-layer version of PaLM 540B on 64 chips with batch 256, comparing
// the three attention partitioning strategies.
func Fig8(k perf.Knobs) []Fig8Row {
	sys := hardware.TPUv4Slice(4, 4, 4)
	mqa8 := model.PaLM540BPadded().WithLayers(8)
	mha8 := model.PaLM540BMHA().WithLayers(8)
	mqaFull := model.PaLM540BPadded()
	mhaFull := model.PaLM540BMHA()

	step := func(cfg model.Config, attn partition.AttnLayout, ctx int) (float64, bool) {
		r := perf.Decode(perf.Request{
			Model: cfg, System: sys, Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: attn,
			Batch: 256, Context: ctx, Gen: 1,
		}, k)
		return r.StepTime, r.Feasible
	}

	var rows []Fig8Row
	for _, ctx := range []int{128, 512, 2048, 8192} {
		var row Fig8Row
		row.Context = ctx
		row.Optimized, _ = step(mqa8, partition.AttnShardBatch, ctx)
		row.Baseline, _ = step(mqa8, partition.AttnShardHeads, ctx)
		row.Multihead, _ = step(mha8, partition.AttnShardHeads, ctx)
		_, row.FullFitsOptimized = step(mqaFull, partition.AttnShardBatch, ctx)
		_, row.FullFitsBaseline = step(mqaFull, partition.AttnShardHeads, ctx)
		_, row.FullFitsMultihead = step(mhaFull, partition.AttnShardHeads, ctx)
		rows = append(rows, row)
	}
	return rows
}

// Fig8Table renders Figure 8.
func Fig8Table(k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title: "Figure 8: latency/step (ms) vs context — 8-layer PaLM 540B, 64 chips, batch 256 " +
			"(118L column: fits in memory on the full model?)",
		Header: []string{"context", "MQ optimized", "MQ baseline", "multihead",
			"118L opt", "118L base", "118L MHA"},
	}
	fits := func(b bool) string {
		if b {
			return "fits"
		}
		return "OOM"
	}
	for _, r := range Fig8(k) {
		t.AddRow(r.Context, tableio.Ms(r.Optimized), tableio.Ms(r.Baseline), tableio.Ms(r.Multihead),
			fits(r.FullFitsOptimized), fits(r.FullFitsBaseline), fits(r.FullFitsMultihead))
	}
	return t
}
