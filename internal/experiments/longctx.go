package experiments

import (
	"fmt"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/tableio"
)

// LongCtxRow is one operating point of the Section 4.2 long-context claim.
type LongCtxRow struct {
	Batch        int
	Context      int
	Feasible     bool
	StepMS       float64
	AttnFraction float64 // share of step time spent in the attention path
}

// AblationLongContext reproduces Section 4.2's closing claim: "Multiquery
// attention scales up to sequence lengths of 8192–32,768 tokens (batch sizes
// 512 and 128 respectively) with attention taking only 8–31% of total
// runtime" — full 118-layer PaLM 540B, 64 chips, optimized (batch-sharded)
// multiquery attention. The attention share is the KV-memory component of
// the step breakdown (weight and compute terms are context-independent).
func AblationLongContext(k perf.Knobs) []LongCtxRow {
	sys := hardware.TPUv4Slice(4, 4, 4)
	cfg := model.PaLM540BPadded()
	points := []struct{ batch, ctx int }{
		{512, 2048}, {512, 8192}, {128, 8192}, {128, 32768},
	}
	var rows []LongCtxRow
	for _, p := range points {
		r := perf.Decode(perf.Request{
			Model: cfg, System: sys, Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: p.batch, Context: p.ctx, Gen: 1,
		}, k)
		row := LongCtxRow{Batch: p.batch, Context: p.ctx, Feasible: r.Feasible}
		if r.Feasible {
			row.StepMS = r.StepTime * 1000
			row.AttnFraction = r.Breakdown.KVMem / r.Time
		}
		rows = append(rows, row)
	}
	return rows
}

// AblationLongContextTable renders the long-context claim check.
func AblationLongContextTable(k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title: "Section 4.2: long-context decode with optimized multiquery attention " +
			"(PaLM 540B, 64 chips; paper: attention is 8-31% of runtime at 8k-32k context)",
		Header: []string{"batch", "context", "fits", "step (ms)", "attention share"},
	}
	for _, r := range AblationLongContext(k) {
		fits := "yes"
		step, share := fmt.Sprintf("%.1f", r.StepMS), tableio.Pct1(r.AttnFraction)
		if !r.Feasible {
			fits, step, share = "OOM", "-", "-"
		}
		t.AddRow(r.Batch, r.Context, fits, step, share)
	}
	return t
}
