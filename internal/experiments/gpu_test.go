package experiments

import (
	"testing"

	"esti/internal/ftdata"
)

// The cost model is calibrated exclusively on TPU v4 anchors; running it
// with A100 chip constants must still land near FasterTransformer's
// published A100 measurements — the paper's Section 7 generalization claim.
func TestGPUGeneralizationWithin2x(t *testing.T) {
	rows := AblationGPU(knobs())
	if len(rows) < 15 {
		t.Fatalf("only %d GPU rows", len(rows))
	}
	for _, r := range rows {
		ratio := r.OursMS / r.FTMS
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s b=%d: model %.0fms vs FT %.0fms (%.2fx), want within 2x",
				r.Config, r.Batch, r.OursMS, r.FTMS, ratio)
		}
		if d := r.OursMFU - r.FTMFU; d < -0.08 || d > 0.08 {
			t.Errorf("%s b=%d: model MFU %.1f%% vs FT %.0f%%, want within 8 pts",
				r.Config, r.Batch, r.OursMFU*100, r.FTMFU*100)
		}
	}
}

// Trend checks: TP32 is faster than TP16 at matched batch but achieves
// lower MFU at the large-batch end (the communication-bound regime the
// paper attributes FT's 33% TP32 ceiling to).
func TestGPUTrends(t *testing.T) {
	rows := AblationGPU(knobs())
	byKey := map[string]GPURow{}
	for _, r := range rows {
		byKey[string(r.Config)+"-"+itoa(r.Batch)] = r
	}
	for _, b := range []int{8, 32, 128} {
		tp16, ok16 := byKey["TP16-"+itoa(b)]
		tp32, ok32 := byKey["TP32-"+itoa(b)]
		if !ok16 || !ok32 {
			t.Fatalf("missing batch %d rows", b)
		}
		if tp32.OursMS >= tp16.OursMS {
			t.Errorf("b=%d: TP32 (%.0fms) should be faster than TP16 (%.0fms)",
				b, tp32.OursMS, tp16.OursMS)
		}
		if tp32.OursMFU >= tp16.OursMFU {
			t.Errorf("b=%d: TP32 MFU %.1f%% should be below TP16 %.1f%%",
				b, tp32.OursMFU*100, tp16.OursMFU*100)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// The A100 rows must cover every non-OOM published point.
func TestGPUCoversPublishedPoints(t *testing.T) {
	bench := ftdata.Bench60In20Out()
	want := 0
	for _, cfg := range []ftdata.Config{ftdata.TP16, ftdata.TP32} {
		for _, p := range bench.Results[cfg] {
			if !p.OOM {
				want++
			}
		}
	}
	if got := len(AblationGPU(knobs())); got != want {
		t.Errorf("GPU rows = %d, want %d (every non-OOM published point)", got, want)
	}
}
