package experiments

import (
	"strings"
	"testing"
)

// Figure B.1: batch-1 prefill frontier over sequence lengths 32..1024.
func TestFigB1Shape(t *testing.T) {
	curves := FigB1(knobs())
	if len(curves) != 6 {
		t.Fatalf("got %d curves, want 6", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Errorf("%s: empty frontier", c.Name)
			continue
		}
		// Frontier validity.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Latency <= c.Points[i-1].Latency || c.Points[i].Cost >= c.Points[i-1].Cost {
				t.Errorf("%s: frontier not monotone at %d", c.Name, i)
			}
		}
		// Labels carry the sequence length (paper annotates C=chips, S=seq).
		for _, p := range c.Points {
			if !strings.Contains(p.Label, "S=") || !strings.Contains(p.Label, "C=") {
				t.Errorf("%s: label %q missing C=/S= annotation", c.Name, p.Label)
			}
		}
	}
	// The paper's fastest B.1 points are tens of milliseconds for the small
	// models: 8B int8 minimum prefill should land under 50ms.
	for _, c := range curves {
		if c.Name == "PaLM 8B-int8" {
			if min := c.Points[0].Latency; min > 0.05 {
				t.Errorf("8B int8 min prefill = %.3fs, want < 50ms", min)
			}
		}
	}
}

// Shorter sequences at fixed chips must never be slower (the frontier's
// latency axis is driven by sequence length at batch 1).
func TestFigB1LatencyGrowsWithSequence(t *testing.T) {
	curves := FigB1(knobs())
	for _, c := range curves {
		// Within the frontier, cost decreases as latency increases —
		// meaning longer sequences amortize better. Verify the endpoints:
		// the cheapest point must have more tokens than the fastest.
		first := c.Points[0]
		last := c.Points[len(c.Points)-1]
		if !strings.Contains(first.Label, "S=") {
			continue
		}
		if seqOf(t, first.Label) > seqOf(t, last.Label) {
			t.Errorf("%s: fastest point S=%d exceeds cheapest point S=%d",
				c.Name, seqOf(t, first.Label), seqOf(t, last.Label))
		}
	}
}

func seqOf(t *testing.T, label string) int {
	t.Helper()
	idx := strings.Index(label, "S=")
	if idx < 0 {
		t.Fatalf("label %q has no S=", label)
	}
	n := 0
	for _, r := range label[idx+2:] {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	return n
}
