package experiments

import (
	"fmt"

	"esti/internal/ftdata"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
	"esti/internal/tableio"
)

// GPURow compares the model's prediction for MT-NLG 530B on A100 hardware
// against FasterTransformer's published measurement at the same tensor
// parallelism and batch size.
type GPURow struct {
	Config  ftdata.Config
	Batch   int
	OursMS  float64
	FTMS    float64
	OursMFU float64
	FTMFU   float64
}

// AblationGPU exercises the paper's Section 7 claim that the partitioning
// framework generalizes beyond TPUs: it runs the analytical model with A100
// chip constants on flat NVLink "tori" at FasterTransformer's TP16 and TP32
// configurations (1D weight-stationary — FT's tensor parallelism — on the
// 60-input/20-output benchmark) and lines the predictions up against the
// published measurements. The model is calibrated on TPU anchors only, so
// agreement within ~2x and correct trends (TP32 faster but lower MFU than
// TP16) are the bar, not precision.
func AblationGPU(k perf.Knobs) []GPURow {
	cfg := model.MTNLG530B()
	bench := ftdata.Bench60In20Out()
	systems := map[ftdata.Config]hardware.System{
		ftdata.TP16: hardware.NewSystem(hardware.A100SXM(), hardware.Torus{X: 16, Y: 1, Z: 1}),
		ftdata.TP32: hardware.NewSystem(hardware.A100SXM(), hardware.Torus{X: 32, Y: 1, Z: 1}),
	}
	var rows []GPURow
	for _, ftCfg := range []ftdata.Config{ftdata.TP16, ftdata.TP32} {
		sys := systems[ftCfg]
		for _, p := range bench.Results[ftCfg] {
			if p.OOM {
				continue
			}
			pre := perf.Prefill(perf.Request{
				Model: cfg, System: sys, Weights: model.BF16,
				FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads,
				Batch: p.Batch, Context: bench.InputLen,
			}, k)
			dec := perf.Decode(perf.Request{
				Model: cfg, System: sys, Weights: model.BF16,
				FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads,
				Batch: p.Batch, Context: bench.InputLen, Gen: bench.OutputLen,
			}, k)
			if !pre.Feasible || !dec.Feasible {
				continue
			}
			total := pre.Time + dec.Time
			rows = append(rows, GPURow{
				Config: ftCfg, Batch: p.Batch,
				OursMS:  total * 1000,
				FTMS:    p.TimeMS,
				OursMFU: totalMFU(cfg, sys, p.Batch, bench, total),
				FTMFU:   p.MFU,
			})
		}
	}
	return rows
}

// AblationGPUTable renders the GPU generalization comparison.
func AblationGPUTable(k perf.Knobs) tableio.Table {
	t := tableio.Table{
		Title: "GPU generalization (§7): model on A100 constants vs published FasterTransformer, " +
			"MT-NLG 530B, 60-in/20-out",
		Header: []string{"config", "batch", "model (ms)", "FT (ms)", "ratio", "model MFU", "FT MFU"},
	}
	for _, r := range AblationGPU(k) {
		t.AddRow(string(r.Config), r.Batch,
			fmt.Sprintf("%.0f", r.OursMS), fmt.Sprintf("%.0f", r.FTMS),
			fmt.Sprintf("%.2fx", r.OursMS/r.FTMS),
			tableio.Pct1(r.OursMFU), tableio.Pct(r.FTMFU))
	}
	return t
}
