// Package sampling implements the token samplers used during decode:
// greedy, temperature, top-k and top-p (nucleus). Two top-k/top-p
// implementations are provided — a straightforward full-sort baseline and
// the faster selection-based one (the paper lists "faster top-k/top-p
// implementations for decode sampling" among its low-level optimizations,
// Section 3.5) — and the test suite asserts they select identical tokens.
package sampling

import (
	"math"
	"math/rand"
	"sort"
)

// Greedy returns the argmax token.
func Greedy(logits []float32) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// Sample draws from softmax(logits/temperature) restricted by topK (0 = all)
// and topP (1 = all), using the provided RNG. It uses the selection-based
// filter.
func Sample(logits []float32, temperature float64, topK int, topP float64, rng *rand.Rand) int {
	if temperature <= 0 {
		return Greedy(logits)
	}
	probs := softmax(logits, temperature)
	keep := FilterTopKP(probs, topK, topP)
	return drawFrom(probs, keep, rng)
}

// FilterTopKP returns the set of token indices that survive top-k then
// top-p filtering of a probability vector, using partial selection rather
// than a full sort.
func FilterTopKP(probs []float32, topK int, topP float64) map[int]bool {
	n := len(probs)
	if topK <= 0 || topK > n {
		topK = n
	}
	idx := topKIndicesSelect(probs, topK)
	// Nucleus: keep the smallest prefix of the (descending) top-k whose
	// mass reaches topP.
	sort.Slice(idx, func(i, j int) bool {
		if probs[idx[i]] != probs[idx[j]] {
			return probs[idx[i]] > probs[idx[j]]
		}
		return idx[i] < idx[j] // deterministic tie-break
	})
	keep := make(map[int]bool, len(idx))
	var mass float64
	for _, i := range idx {
		keep[i] = true
		mass += float64(probs[i])
		if topP < 1 && mass >= topP {
			break
		}
	}
	return keep
}

// FilterTopKPSort is the baseline implementation: full sort of the whole
// vocabulary. Used as the oracle in tests and benchmarks.
func FilterTopKPSort(probs []float32, topK int, topP float64) map[int]bool {
	n := len(probs)
	if topK <= 0 || topK > n {
		topK = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if probs[idx[i]] != probs[idx[j]] {
			return probs[idx[i]] > probs[idx[j]]
		}
		return idx[i] < idx[j]
	})
	keep := make(map[int]bool, topK)
	var mass float64
	for _, i := range idx[:topK] {
		keep[i] = true
		mass += float64(probs[i])
		if topP < 1 && mass >= topP {
			break
		}
	}
	return keep
}

// topKIndicesSelect returns the indices of the k largest probabilities using
// a bounded min-heap — O(n log k) versus the baseline's O(n log n) full
// sort, which is the win for top-40 over a 250k-token vocabulary. Ties rank
// by ascending index (the same deterministic order the sort baseline uses).
func topKIndicesSelect(probs []float32, k int) []int {
	idx := make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	if k >= len(idx) {
		return idx
	}
	// ranksBefore(a, b): a belongs above b in the descending ranking.
	ranksBefore := func(a, b int) bool {
		if probs[a] != probs[b] {
			return probs[a] > probs[b]
		}
		return a < b
	}
	// heap[0] is the *worst-ranked* of the current top-k candidates.
	heap := make([]int, k)
	copy(heap, idx[:k])
	for i := k / 2; i >= 0; i-- {
		siftDown(heap, i, ranksBefore)
	}
	for _, cand := range idx[k:] {
		if ranksBefore(cand, heap[0]) {
			heap[0] = cand
			siftDown(heap, 0, ranksBefore)
		}
	}
	return heap
}

// siftDown restores the "worst at root" heap property, where worst means
// ranked last under ranksBefore.
func siftDown(heap []int, i int, ranksBefore func(a, b int) bool) {
	for {
		worst := i
		if l := 2*i + 1; l < len(heap) && ranksBefore(heap[worst], heap[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(heap) && ranksBefore(heap[worst], heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		heap[i], heap[worst] = heap[worst], heap[i]
		i = worst
	}
}

func softmax(logits []float32, temperature float64) []float32 {
	out := make([]float32, len(logits))
	maxV := float32(math.Inf(-1))
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v-maxV) / temperature)
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

func drawFrom(probs []float32, keep map[int]bool, rng *rand.Rand) int {
	var mass float64
	for i := range keep {
		mass += float64(probs[i])
	}
	target := rng.Float64() * mass
	// Deterministic iteration order for reproducibility.
	idx := make([]int, 0, len(keep))
	for i := range keep {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var acc float64
	for _, i := range idx {
		acc += float64(probs[i])
		if acc >= target {
			return i
		}
	}
	return idx[len(idx)-1]
}
