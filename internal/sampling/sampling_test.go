package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedy(t *testing.T) {
	if got := Greedy([]float32{0.1, 2.5, -1, 2.4}); got != 1 {
		t.Errorf("Greedy = %d, want 1", got)
	}
	if got := Greedy([]float32{7}); got != 0 {
		t.Errorf("single-token Greedy = %d", got)
	}
}

func TestSampleZeroTemperatureIsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := []float32{0.1, 3, 0.2}
	for i := 0; i < 5; i++ {
		if got := Sample(logits, 0, 0, 1, rng); got != 1 {
			t.Fatalf("temperature-0 sample = %d, want argmax 1", got)
		}
	}
}

// The selection-based filter must pick exactly the same token set as the
// full-sort baseline for all (k, p) settings — this is the correctness
// contract of the paper's "faster top-k/top-p" optimization.
func TestSelectMatchesSortOracle(t *testing.T) {
	f := func(seed int64, kRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + int(seed%50+50)%50
		logits := make([]float32, n)
		for i := range logits {
			logits[i] = rng.Float32() * 10
		}
		probs := softmax(logits, 1)
		k := int(kRaw)%n + 1
		p := 0.05 + float64(pRaw%100)/100
		if p > 1 {
			p = 1
		}
		a := FilterTopKP(probs, k, p)
		b := FilterTopKPSort(probs, k, p)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopKRestrictsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := []float32{5, 4, 3, 2, 1, 0}
	for i := 0; i < 50; i++ {
		got := Sample(logits, 1, 2, 1, rng)
		if got != 0 && got != 1 {
			t.Fatalf("top-2 sample picked %d", got)
		}
	}
}

func TestTopPRestrictsSupport(t *testing.T) {
	// One token with ~all the mass: top-p 0.5 must always take it.
	rng := rand.New(rand.NewSource(3))
	logits := []float32{20, 1, 1, 1}
	for i := 0; i < 50; i++ {
		if got := Sample(logits, 1, 0, 0.5, rng); got != 0 {
			t.Fatalf("nucleus sample escaped the nucleus: %d", got)
		}
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	logits := make([]float32, 100)
	for i := range logits {
		logits[i] = float32(i % 7)
	}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		if Sample(logits, 0.8, 10, 0.9, a) != Sample(logits, 0.8, 10, 0.9, b) {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestFilterEdgeCases(t *testing.T) {
	probs := []float32{0.25, 0.25, 0.25, 0.25}
	if got := FilterTopKP(probs, 0, 1); len(got) != 4 {
		t.Errorf("k=0 (all) kept %d", len(got))
	}
	if got := FilterTopKP(probs, 99, 1); len(got) != 4 {
		t.Errorf("k>n kept %d", len(got))
	}
	if got := FilterTopKP(probs, 4, 0.26); len(got) != 2 {
		// 0.25 < 0.26 so a second token is needed to reach the mass.
		t.Errorf("p=0.26 kept %d, want 2", len(got))
	}
	if got := FilterTopKP([]float32{1}, 1, 1); len(got) != 1 {
		t.Errorf("singleton kept %d", len(got))
	}
}

// Sampled distribution roughly follows the filtered softmax (chi-square-ish
// sanity bound, not a strict statistical test).
func TestSampleFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := []float32{2, 1, 0}
	counts := map[int]int{}
	const n = 6000
	for i := 0; i < n; i++ {
		counts[Sample(logits, 1, 0, 1, rng)]++
	}
	probs := softmax(logits, 1)
	for i, p := range probs {
		want := float64(p) * n
		got := float64(counts[i])
		if got < want*0.8-20 || got > want*1.2+20 {
			t.Errorf("token %d sampled %g times, expected ≈%g", i, got, want)
		}
	}
}

func BenchmarkFilterSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	probs := softmax(randLogits(rng, 32000), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FilterTopKP(probs, 40, 0.95)
	}
}

func BenchmarkFilterSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	probs := softmax(randLogits(rng, 32000), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FilterTopKPSort(probs, 40, 0.95)
	}
}

func randLogits(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32() * 12
	}
	return out
}
