package sampling

import "testing"

// FuzzFilterTopKP cross-checks the selection-based filter against the
// full-sort oracle on arbitrary probability vectors and (k, p) settings.
func FuzzFilterTopKP(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50}, uint8(2), uint8(50))
	f.Add([]byte{0, 0, 0, 255}, uint8(1), uint8(99))
	f.Add([]byte{7}, uint8(9), uint8(100))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, uint8(4), uint8(30))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, pRaw uint8) {
		if len(raw) == 0 {
			return
		}
		// Build a normalized probability vector from the bytes.
		probs := make([]float32, len(raw))
		var sum float64
		for i, b := range raw {
			probs[i] = float32(b) + 0.001 // strictly positive
			sum += float64(probs[i])
		}
		for i := range probs {
			probs[i] = float32(float64(probs[i]) / sum)
		}
		k := int(kRaw)%len(probs) + 1
		p := 0.01 + float64(pRaw%100)/100
		if p > 1 {
			p = 1
		}
		a := FilterTopKP(probs, k, p)
		b := FilterTopKPSort(probs, k, p)
		if len(a) != len(b) {
			t.Fatalf("filter sizes differ: select %d vs sort %d (k=%d p=%g)", len(a), len(b), k, p)
		}
		for i := range a {
			if !b[i] {
				t.Fatalf("select kept %d which sort did not (k=%d p=%g)", i, k, p)
			}
		}
		// The kept set never exceeds k and always has at least one token.
		if len(a) > k || len(a) == 0 {
			t.Fatalf("kept %d tokens with k=%d", len(a), k)
		}
		// Kept mass reaches p (or the set is the full top-k).
		var mass float64
		for i := range a {
			mass += float64(probs[i])
		}
		if len(a) < k && mass < p-1e-5 {
			t.Fatalf("kept mass %g below p=%g with only %d/%d tokens", mass, p, len(a), k)
		}
	})
}
