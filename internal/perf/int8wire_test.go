package perf

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
)

// The int8 wire's analytic effect: at a communication-exposed decode
// point, the exposed comm component halves against the bf16 baseline
// (every activation collective's bytes halve; the fixed hop latency
// stays), and everything else is untouched.
func TestInt8WireDTypeHalvesCommTime(t *testing.T) {
	base := Request{
		Model: model.PaLM540BPadded(), System: hardware.TPUv4Slice(4, 4, 4),
		Weights: model.Int8,
		FFN:     partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 2048, Gen: 64,
	}
	k := DefaultKnobs()
	k.HopLatency = 0 // isolate the bandwidth term the wire dtype scales

	bf := Decode(base, k)
	if !bf.Feasible {
		t.Fatalf("bf16-wire baseline infeasible: %s", bf.Reason)
	}
	q := base
	q.WireDType = model.Int8
	q8 := Decode(q, k)
	if !q8.Feasible {
		t.Fatalf("int8-wire point infeasible: %s", q8.Reason)
	}
	if bf.Breakdown.Comm <= 0 {
		t.Fatal("baseline has no exposed comm; test point mischosen")
	}
	if ratio := q8.Breakdown.Comm / bf.Breakdown.Comm; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("int8 wire comm time is %.3fx bf16 (%.6fs vs %.6fs), want 0.5x",
			ratio, q8.Breakdown.Comm, bf.Breakdown.Comm)
	}
	for _, cmp := range []struct {
		name     string
		bf16, q8 float64
	}{
		{"compute", bf.Breakdown.Compute, q8.Breakdown.Compute},
		{"weight-mem", bf.Breakdown.WeightMem, q8.Breakdown.WeightMem},
		{"kv-mem", bf.Breakdown.KVMem, q8.Breakdown.KVMem},
	} {
		if cmp.bf16 != cmp.q8 {
			t.Errorf("%s changed under int8 wire: %g vs %g", cmp.name, cmp.q8, cmp.bf16)
		}
	}

	// Prefill's activation collectives halve the same way.
	bfP := Prefill(base, k)
	q8P := Prefill(q, k)
	if ratio := q8P.Breakdown.Comm / bfP.Breakdown.Comm; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("int8 wire prefill comm is %.3fx bf16, want 0.5x", ratio)
	}
}

// Weight-gathered staging follows the wire dtype too, matching the
// functional engine (whose Int8Wire quantizes the WG layout's per-layer
// weight all-gathers like any other chunk): with bf16 at-rest weights an
// int8 wire halves the WG layout's comm, while weights already at-rest
// int8 ship as-is — no further shrink, and never an *expansion* from a
// wider wire.
func TestInt8WireCoversWeightGatheredStaging(t *testing.T) {
	base := Request{
		Model: model.PaLM540BPadded(), System: hardware.TPUv4Slice(4, 4, 4),
		Weights: model.BF16,
		FFN:     partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 2048,
	}
	k := DefaultKnobs()
	k.HopLatency = 0

	bf := Prefill(base, k)
	q := base
	q.WireDType = model.Int8
	q8 := Prefill(q, k)
	if !bf.Feasible || !q8.Feasible {
		t.Fatalf("infeasible: %s / %s", bf.Reason, q8.Reason)
	}
	// XYZ-gathered comm is all weight staging; bf16 at-rest → int8 wire
	// halves it exactly.
	if ratio := q8.Breakdown.Comm / bf.Breakdown.Comm; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("int8 wire WG comm is %.3fx bf16-at-rest, want 0.5x", ratio)
	}

	// At-rest int8 weights: the staging already moves 1 B/element, so
	// neither an int8 wire nor the wider fp32 wire changes it.
	i8 := base
	i8.Weights = model.Int8
	ref := Prefill(i8, k)
	for _, wd := range []model.DType{model.Int8, model.FP32} {
		w := i8
		w.WireDType = wd
		got := Prefill(w, k)
		if got.Breakdown.Comm != ref.Breakdown.Comm {
			t.Errorf("%v wire changed int8-at-rest WG comm: %g vs %g",
				wd, got.Breakdown.Comm, ref.Breakdown.Comm)
		}
	}
}

// FP32 wire (the functional engine's exact format) doubles the bf16
// baseline's comm term — the dtype knob is linear in bytes per element.
func TestWireDTypeLinearInBytes(t *testing.T) {
	base := Request{
		Model: model.PaLM62B(), System: hardware.TPUv4Slice(4, 4, 2),
		Weights: model.Int8,
		FFN:     partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads,
		Batch: 32, Context: 1024, Gen: 16,
	}
	k := DefaultKnobs()
	k.HopLatency = 0
	bf := Decode(base, k)
	f32 := base
	f32.WireDType = model.FP32
	fp := Decode(f32, k)
	if !bf.Feasible || !fp.Feasible {
		t.Fatalf("infeasible: %s / %s", bf.Reason, fp.Reason)
	}
	if ratio := fp.Breakdown.Comm / bf.Breakdown.Comm; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("fp32 wire comm is %.3fx bf16, want 2x", ratio)
	}
}
