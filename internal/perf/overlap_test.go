package perf

import (
	"math"
	"testing"

	"esti/internal/model"
	"esti/internal/partition"
)

// The headline regression: at OverlapFrac 1.0 on a 64-chip decode, the comm
// term must still charge the full hop-latency floor. The former subtractive
// model (exposed = comm - overlap·compute over the combined term) let full
// overlap erase the floor and report near-zero comm — the mis-pricing
// behind the fictitious 0.92x int8-wire decode ratio.
func TestHopFloorSurvivesFullOverlap(t *testing.T) {
	k := DefaultKnobs()
	k.OverlapFrac = 1.0
	r := Decode(req540(model.Int8, 8), k)
	if !r.Feasible {
		t.Fatalf("infeasible: %s", r.Reason)
	}
	b := r.Breakdown
	if b.Comm <= 0 {
		t.Fatalf("full overlap reported Comm = %g; the hop floor must survive", b.Comm)
	}
	if b.Comm < b.CommFloor-1e-15 {
		t.Fatalf("Comm %g below its own floor %g", b.Comm, b.CommFloor)
	}
	// White-box: the floor is Gen · Layers · collectiveHops · HopLatency
	// (embedStep adds no communication).
	req := req540(model.Int8, 8)
	plan := partition.PlanFFN(req.FFN, req.System.Torus)
	attn := partition.PlanAttn(req.Attn, req.System.Torus, req.Model.Heads, req.Model.KVHeads)
	hops := collectiveHops(plan, attn, PhaseDecode)
	want := float64(req.Gen) * float64(req.Model.Layers) * float64(hops) * k.HopLatency
	if math.Abs(b.CommFloor-want)/want > 1e-9 {
		t.Errorf("CommFloor %g, want Gen·Layers·hops·HopLatency = %g (hops %d)", b.CommFloor, want, hops)
	}
	// At full overlap the bandwidth component is entirely hidden: Comm
	// collapses to exactly the floor.
	if math.Abs(b.Comm-b.CommFloor)/b.CommFloor > 1e-9 {
		t.Errorf("full overlap should pin Comm (%g) to the floor (%g)", b.Comm, b.CommFloor)
	}
}

// Overlap hides only bandwidth: Comm is nonincreasing in OverlapFrac, never
// drops below CommFloor, and CommFloor itself is overlap-invariant.
func TestCommMonotoneAboveInvariantFloor(t *testing.T) {
	prev := math.Inf(1)
	var floor0 float64
	for i, ov := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		k := DefaultKnobs()
		k.OverlapFrac = ov
		r := Decode(req540(model.BF16, 8), k)
		if !r.Feasible {
			t.Fatalf("overlap %g infeasible: %s", ov, r.Reason)
		}
		b := r.Breakdown
		if b.Comm > prev+1e-15 {
			t.Errorf("Comm increased with overlap: %g at %g after %g", b.Comm, ov, prev)
		}
		if b.Comm < b.CommFloor-1e-15 {
			t.Errorf("overlap %g: Comm %g below floor %g", ov, b.Comm, b.CommFloor)
		}
		if i == 0 {
			floor0 = b.CommFloor
		} else if b.CommFloor != floor0 {
			t.Errorf("CommFloor changed with overlap: %g at %g, %g at 0", b.CommFloor, ov, floor0)
		}
		prev = b.Comm
	}
}

// The corrected 64-chip small-batch story: without overlap the int8 wire
// buys a real (if modest) decode comm reduction; at full overlap both wire
// formats wait on the same ring hops and the ratio pins to exactly 1.
func TestInt8WireDecodeRatioPinsToFloor(t *testing.T) {
	comm := func(dt model.DType, ov float64) float64 {
		k := DefaultKnobs()
		k.OverlapFrac = ov
		req := req540(model.Int8, 8)
		req.WireDType = dt
		r := Decode(req, k)
		if !r.Feasible {
			t.Fatalf("infeasible: %s", r.Reason)
		}
		return r.Breakdown.Comm
	}
	if ratio := comm(model.Int8, 0) / comm(model.BF16, 0); ratio >= 1 {
		t.Errorf("without overlap int8 wire should reduce decode comm, ratio %g", ratio)
	}
	if ratio := comm(model.Int8, 1) / comm(model.BF16, 1); math.Abs(ratio-1) > 1e-9 {
		t.Errorf("at full overlap the int8-vs-bf16 ratio must pin to 1.0, got %g", ratio)
	}
}

// CommFloor is an informational subset of Comm: the breakdown still sums to
// the reported time with the floor included once, not twice.
func TestCommFloorNotDoubleCounted(t *testing.T) {
	k := DefaultKnobs()
	k.OverlapFrac = 0.7
	for _, mk := range []func() Result{
		func() Result { return Decode(req540(model.Int8, 8), k) },
		func() Result { return Prefill(req540(model.Int8, 1), k) },
	} {
		r := mk()
		if !r.Feasible {
			t.Fatalf("infeasible: %s", r.Reason)
		}
		if math.Abs(r.Breakdown.Total()-r.Time)/r.Time > 1e-12 {
			t.Errorf("breakdown sums to %g, time %g", r.Breakdown.Total(), r.Time)
		}
		if r.Breakdown.CommFloor > r.Breakdown.Comm+1e-15 {
			t.Errorf("CommFloor %g exceeds Comm %g", r.Breakdown.CommFloor, r.Breakdown.Comm)
		}
	}
}
