package perf

// Anchor tests: the calibrated model must land near the paper's published
// operating points (Tables 2 and 3). These are the ground truth the whole
// reproduction hangs on, so tolerances are deliberately tight-ish (±25% on
// latency, ±6 MFU points) — the goal is the paper's *shape*, not exact
// silicon timings.

import (
	"math"
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
)

func sys64() hardware.System { return hardware.TPUv4Slice(4, 4, 4) }

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want)/want > relTol {
		t.Errorf("%s = %.4g, want %.4g ± %.0f%%", name, got, want, relTol*100)
	}
}

func mfuNear(t *testing.T, name string, got, want, absTol float64) {
	t.Helper()
	if math.Abs(got-want) > absTol {
		t.Errorf("%s MFU = %.1f%%, want %.0f%% ± %.0f pts", name, got*100, want*100, absTol*100)
	}
}

// Table 2, low-latency decode: PaLM 540B, 64 chips, batch 64, int8, WS 2D,
// batch-sharded attention: 1.82s to generate 64 tokens at 2048 context
// (28.5 ms/step), 14% MFU.
func TestAnchor540BLowLatencyDecode(t *testing.T) {
	r := Request{
		Model: model.PaLM540BPadded(), System: sys64(), Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 2048, Gen: 64,
	}
	res := Decode(r, DefaultKnobs())
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	within(t, "540B int8 B=64 decode step", res.StepTime, 0.0285, 0.25)
	mfuNear(t, "540B int8 B=64 decode", res.MFU, 0.14, 0.05)
}

// Section 4.4: bf16 weights at the same point give 36.9 ms/token.
func TestAnchor540BBf16Decode(t *testing.T) {
	r := Request{
		Model: model.PaLM540BPadded(), System: sys64(), Weights: model.BF16,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 2048, Gen: 64,
	}
	res := Decode(r, DefaultKnobs())
	within(t, "540B bf16 B=64 decode step", res.StepTime, 0.0369, 0.25)
}

// Table 2, high-throughput decode: batch 512, bf16: 6.0s for 64 tokens
// (93.75 ms/step), 33% MFU.
func TestAnchor540BHighThroughputDecode(t *testing.T) {
	r := Request{
		Model: model.PaLM540BPadded(), System: sys64(), Weights: model.BF16,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 512, Context: 2048, Gen: 64,
	}
	res := Decode(r, DefaultKnobs())
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	within(t, "540B bf16 B=512 decode total", res.Time, 6.0, 0.25)
	mfuNear(t, "540B bf16 B=512 decode", res.MFU, 0.33, 0.06)
}

// Table 2, low-latency prefill: batch 1, 2048 tokens, int8, WS 2D,
// head-sharded attention: 0.29s, 43% MFU.
func TestAnchor540BLowLatencyPrefill(t *testing.T) {
	r := Request{
		Model: model.PaLM540BPadded(), System: sys64(), Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads,
		Batch: 1, Context: 2048,
	}
	res := Prefill(r, DefaultKnobs())
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	within(t, "540B int8 B=1 prefill", res.Time, 0.29, 0.25)
	mfuNear(t, "540B int8 B=1 prefill", res.MFU, 0.43, 0.06)
}

// Table 2, high-throughput prefill: batch 512 × 2048 tokens, bf16, WG XYZ,
// batch-sharded attention (head sharding would replicate the multiquery KV
// cache and OOM — Table 1): 85.2s, 76% MFU.
func TestAnchor540BHighThroughputPrefill(t *testing.T) {
	r := Request{
		Model: model.PaLM540BPadded(), System: sys64(), Weights: model.BF16,
		FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch,
		Batch: 512, Context: 2048,
	}
	res := Prefill(r, DefaultKnobs())
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	within(t, "540B bf16 B=512 WG prefill", res.Time, 85.2, 0.25)
	mfuNear(t, "540B bf16 B=512 WG prefill", res.MFU, 0.76, 0.08)
}

// Table 3, PaLM 62B anchors.
func TestAnchor62B(t *testing.T) {
	k := DefaultKnobs()

	// High-throughput decode: 8 chips, batch 512, bf16: 5.1s / 64 tokens,
	// 37% MFU.
	r := Request{
		Model: model.PaLM62B(), System: hardware.TPUv4Slice(2, 2, 2), Weights: model.BF16,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 512, Context: 2048, Gen: 64,
	}
	res := Decode(r, k)
	if !res.Feasible {
		t.Fatalf("62B decode infeasible: %s", res.Reason)
	}
	within(t, "62B bf16 B=512 C=8 decode total", res.Time, 5.1, 0.25)
	mfuNear(t, "62B bf16 B=512 C=8 decode", res.MFU, 0.37, 0.07)

	// Low-latency decode: 16 chips, batch 32, int8: 0.73s / 64 tokens, 8% MFU.
	r = Request{
		Model: model.PaLM62B(), System: hardware.TPUv4Slice(4, 2, 2), Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 32, Context: 2048, Gen: 64,
	}
	res = Decode(r, k)
	within(t, "62B int8 B=32 C=16 decode total", res.Time, 0.73, 0.3)
	mfuNear(t, "62B int8 B=32 C=16 decode", res.MFU, 0.08, 0.04)

	// High-throughput prefill: 32 chips, batch 512 × 2048, bf16, WG XYZ:
	// 20.2s, 73% MFU.
	r = Request{
		Model: model.PaLM62B(), System: hardware.TPUv4Slice(4, 4, 2), Weights: model.BF16,
		FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch,
		Batch: 512, Context: 2048,
	}
	resP := Prefill(r, k)
	within(t, "62B bf16 B=512 C=32 prefill", resP.Time, 20.2, 0.25)
	mfuNear(t, "62B bf16 B=512 C=32 prefill", resP.MFU, 0.73, 0.08)
}
