package perf

import (
	"math"
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
)

// Section 3.2.2: 2D weight-stationary communication scales as 1/sqrt(n).
// With the hop-latency floor disabled, quadrupling the chip count must halve
// the exposed communication time (within the (K-1)/K wrinkles).
func Test2DCommScalesInverseSqrt(t *testing.T) {
	k := DefaultKnobs()
	k.HopLatency = 0
	comm := func(sys hardware.System) float64 {
		r := Decode(Request{
			Model: model.PaLM540BPadded(), System: sys, Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads,
			Batch: 256, Context: 128, Gen: 1,
		}, k)
		return r.Breakdown.Comm
	}
	c64 := comm(hardware.TPUv4Slice(4, 4, 4))
	c256 := comm(hardware.TPUv4Slice(8, 8, 4))
	ratio := c64 / c256
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("64→256 chips comm ratio = %.2f, want ~2 (1/sqrt scaling)", ratio)
	}
}

// Section 3.2.1: 1D weight-stationary communication is independent of chip
// count.
func Test1DCommConstantInChips(t *testing.T) {
	k := DefaultKnobs()
	k.HopLatency = 0
	comm := func(sys hardware.System) float64 {
		r := Decode(Request{
			Model: model.PaLM540BPadded(), System: sys, Weights: model.BF16,
			FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads,
			Batch: 256, Context: 128, Gen: 1,
		}, k)
		return r.Breakdown.Comm
	}
	c64 := comm(hardware.TPUv4Slice(4, 4, 4))
	c256 := comm(hardware.TPUv4Slice(8, 8, 4))
	if rel := math.Abs(c64-c256) / c64; rel > 0.02 {
		t.Errorf("1D comm changed %.1f%% from 64 to 256 chips, want ~constant", rel*100)
	}
}

// The hop-latency floor matters exactly where the paper's scaling stops:
// at high chip counts and tiny batches.
func TestHopLatencyFloorsSmallBatchLatency(t *testing.T) {
	base := DefaultKnobs()
	noHop := base
	noHop.HopLatency = 0
	req := Request{
		Model: model.PaLM540BPadded(), System: hardware.TPUv4Slice(8, 8, 4),
		Weights: model.Int8, FFN: partition.FFN2DWeightStationary,
		Attn: partition.AttnShardBatch, Batch: 256, Context: 64, Gen: 1,
	}
	withFloor := Decode(req, base)
	without := Decode(req, noHop)
	if withFloor.StepTime <= without.StepTime {
		t.Error("hop latency added no time at 256 chips")
	}
	gap := withFloor.StepTime - without.StepTime
	if gap < 0.001 {
		t.Errorf("hop floor adds %.2fms at 256 chips, expected >= 1ms", gap*1000)
	}
}

// Incremental prefill: processing 64 new tokens against a 1984-token cache
// must be far cheaper than prefilling all 2048, and the memory check must
// still see the whole context.
func TestPastSemantics(t *testing.T) {
	k := DefaultKnobs()
	sys := hardware.TPUv4Slice(4, 4, 4)
	full := Prefill(Request{
		Model: model.PaLM540BPadded(), System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 2048,
	}, k)
	inc := Prefill(Request{
		Model: model.PaLM540BPadded(), System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 64, Past: 1984,
	}, k)
	if !full.Feasible || !inc.Feasible {
		t.Fatal("prefill infeasible")
	}
	if inc.Time > full.Time/4 {
		t.Errorf("incremental prefill %.3fs not ≪ full %.3fs", inc.Time, full.Time)
	}
	// Decode from (Past=1984, Context=64) equals decode from Context=2048.
	a := Decode(Request{
		Model: model.PaLM540BPadded(), System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 2048, Gen: 16,
	}, k)
	b := Decode(Request{
		Model: model.PaLM540BPadded(), System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 64, Context: 64, Past: 1984, Gen: 16,
	}, k)
	if math.Abs(a.Time-b.Time)/a.Time > 1e-9 {
		t.Errorf("decode with Past+Context split differs: %.6f vs %.6f", a.Time, b.Time)
	}
	// A huge Past must trip the memory check.
	oom := Prefill(Request{
		Model: model.PaLM540BPadded(), System: sys, Weights: model.Int8,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 512, Context: 64, Past: 40000,
	}, k)
	if oom.Feasible {
		t.Error("40k-token past at batch 512 should OOM")
	}
}

// Section 3.6: int8 "reduces communication volume in weight-gathered
// layouts" — weight-gathered prefill communication must shrink with int8
// while weight-stationary communication (activations only) is unchanged.
func TestInt8ShrinksWeightGatheredComm(t *testing.T) {
	k := DefaultKnobs()
	k.HopLatency = 0
	sys := hardware.TPUv4Slice(4, 4, 4)
	comm := func(ffn partition.FFNLayout, dt model.DType) float64 {
		r := Prefill(Request{
			Model: model.PaLM540BPadded(), System: sys, Weights: dt,
			FFN: ffn, Attn: partition.AttnShardBatch,
			Batch: 64, Context: 2048,
		}, k)
		return r.Breakdown.Comm
	}
	wgBF := comm(partition.FFNWeightGatheredXYZ, model.BF16)
	wgI8 := comm(partition.FFNWeightGatheredXYZ, model.Int8)
	if ratio := wgBF / wgI8; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("int8 WG comm reduction = %.2fx, want ~2x", ratio)
	}
	wsBF := comm(partition.FFN2DWeightStationary, model.BF16)
	wsI8 := comm(partition.FFN2DWeightStationary, model.Int8)
	if wsBF != wsI8 {
		t.Errorf("weight-stationary comm changed with dtype: %g vs %g", wsBF, wsI8)
	}
}

// HBM budget knob: shrinking the budget turns feasible configurations
// infeasible monotonically.
func TestHBMBudgetMonotone(t *testing.T) {
	req := Request{
		Model: model.PaLM540BPadded(), System: hardware.TPUv4Slice(4, 4, 4),
		Weights: model.BF16, FFN: partition.FFN2DWeightStationary,
		Attn: partition.AttnShardBatch, Batch: 512, Context: 2048, Gen: 1,
	}
	feasibleAt := func(budget float64) bool {
		k := DefaultKnobs()
		k.HBMBudget = budget
		return Decode(req, k).Feasible
	}
	if !feasibleAt(0.9) {
		t.Fatal("baseline should fit")
	}
	if feasibleAt(0.3) {
		t.Error("weights alone exceed 30% of HBM; must be infeasible")
	}
	sawInfeasible := false
	for _, b := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		ok := feasibleAt(b)
		if sawInfeasible && ok {
			t.Errorf("feasibility non-monotone at budget %.1f", b)
		}
		if !ok {
			sawInfeasible = true
		}
	}
}

// Attention all-to-all only charges the decode phase, and only under batch
// sharding.
func TestAllToAllChargedCorrectly(t *testing.T) {
	k := DefaultKnobs()
	k.HopLatency = 0
	sys := hardware.TPUv4Slice(4, 4, 4)
	mk := func(attn partition.AttnLayout) (pre, dec float64) {
		p := Prefill(Request{
			Model: model.PaLM540BPadded(), System: sys, Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: attn,
			Batch: 64, Context: 512,
		}, k)
		d := Decode(Request{
			Model: model.PaLM540BPadded(), System: sys, Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: attn,
			Batch: 64, Context: 512, Gen: 1,
		}, k)
		return p.Breakdown.Comm, d.Breakdown.Comm
	}
	preH, decH := mk(partition.AttnShardHeads)
	preB, decB := mk(partition.AttnShardBatch)
	if preH != preB {
		t.Errorf("prefill comm differs by attention layout: %g vs %g", preH, preB)
	}
	if decB <= decH {
		t.Error("batch-sharded decode should add all-to-all communication")
	}
	if (decB-decH)/decH > 0.25 {
		t.Errorf("all-to-all overhead %.1f%% of decode comm, should be small",
			(decB-decH)/decH*100)
	}
}
