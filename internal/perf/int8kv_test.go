package perf

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
)

// The int8 KV cache's two analytic effects: at a memory-bound decode
// point the KV component of the step time halves, and a configuration
// whose bf16 cache overflows the HBM budget becomes feasible — the
// "doubled servable context" the storage mode exists for.
func TestInt8KVDTypeHalvesKVMemAndDoublesContext(t *testing.T) {
	base := Request{
		Model: model.PaLM540BPadded(), System: hardware.TPUv4Slice(4, 4, 4),
		Weights: model.Int8,
		FFN:     partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: 256, Context: 8192, Gen: 64,
	}
	k := DefaultKnobs()

	bf := Decode(base, k)
	if !bf.Feasible {
		t.Fatalf("bf16 baseline infeasible: %s", bf.Reason)
	}
	q := base
	q.KVDType = model.Int8
	q8 := Decode(q, k)
	if !q8.Feasible {
		t.Fatalf("int8-KV point infeasible: %s", q8.Reason)
	}
	// The KV component is max(memory, compute); at this depth it is
	// memory-bound, so the int8 reading must be about half.
	ratio := q8.Breakdown.KVMem / bf.Breakdown.KVMem
	if ratio < 0.45 || ratio > 0.75 {
		t.Errorf("int8 KV memory time is %.2fx bf16 (%.4fs vs %.4fs), want ~0.5x",
			ratio, q8.Breakdown.KVMem, bf.Breakdown.KVMem)
	}

	// Push the context until the bf16 cache overflows HBM (the boundary
	// sits near 46k tokens at this batch); the int8 cache must still fit
	// far beyond it (~2x the servable context — int8 stays feasible out to
	// ~90k here).
	long := base
	long.Context = 60000
	if r := Decode(long, k); r.Feasible {
		t.Fatalf("expected bf16 OOM at context %d; got feasible", long.Context)
	}
	long.KVDType = model.Int8
	if r := Decode(long, k); !r.Feasible {
		t.Errorf("int8 KV should admit context %d: %s", long.Context, r.Reason)
	}
}
