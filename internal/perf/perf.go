// Package perf is the paper's analytical inference-cost model (Section 2,
// Appendix A): given a model architecture, a hardware system, a partitioning
// assignment and a workload (batch, context length, tokens to generate), it
// predicts latency, per-token cost in chip-seconds, and model FLOPS
// utilization (MFU) for the prefill and decode phases, with a per-component
// breakdown (matmul compute, weight memory, KV-cache memory, communication).
//
// The model is a roofline extended with an empirical matmul-efficiency
// curve,
//
//	eff(M,K,N) = e0 · M/(M+Ms) · K/(K+Ks) · N/(N+Ns),
//
// over the *per-chip* matmul shapes each layout induces: sharded decode
// matmuls are small and narrow, which is exactly why decode MFU is low. The
// default constants are calibrated once against the paper's published
// anchors (Tables 2-3 and D.2-D.4); EXPERIMENTS.md records the residuals.
// Communication uses the closed forms in package commcost; weight and
// KV-cache memory time use HBM bandwidth directly.
//
// The comm term splits into a bandwidth component and a latency floor:
// bytes-over-bandwidth per collective (which Looped-CollectiveEinsum
// overlap, Knobs.OverlapFrac, can hide behind compute) plus
// collectiveHops × HopLatency of serial ring-step latency (which no
// overlap can hide — each step's link traversal is on the critical path).
// Breakdown.CommFloor reports the floor inside Breakdown.Comm; at high
// chip counts and small batches the floor dominates, which is why decode
// latency stops improving with more chips and why wire-format savings
// (int8 vs bf16) pin to ~1x there.
package perf

import (
	"fmt"
	"math"

	"esti/internal/commcost"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
)

// Knobs are the tunable constants of the cost model. Zero value is not
// useful; start from DefaultKnobs.
type Knobs struct {
	// MatmulEffMax (e0) is the peak fraction of hardware FLOPS a large,
	// well-shaped matmul achieves.
	MatmulEffMax float64
	// MSat, KSat, NSat are the half-saturation points of the efficiency
	// curve in the per-chip M (rows = tokens), K (contraction) and N
	// (output) dimensions.
	MSat, KSat, NSat float64
	// AttnEff is the FLOPS fraction achieved by the attention einsums
	// (small batched matmuls; decode attention is memory-bound anyway).
	AttnEff float64
	// OverlapFrac is the fraction of per-layer matmul time that can hide
	// communication (Looped CollectiveEinsum, Section 3.5). Overlap
	// applies only to the bandwidth component of the comm term: the
	// hop-latency floor (collectiveHops × HopLatency) is charged
	// unconditionally, because chunk-streamed compute hides bytes in
	// flight but cannot remove the serial link traversals of the ring.
	// The functional counterpart is mesh.MeasuredOverlapFrac on a
	// Streamed engine session. The published MFU anchors already absorb
	// the overlap the authors achieved, so the calibrated default is 0
	// (communication fully exposed on top of the calibrated compute
	// time); raise it to ablate.
	OverlapFrac float64
	// PerLayerFixed is a constant per-layer overhead in seconds
	// (layernorms, residual adds, dispatch).
	PerLayerFixed float64
	// HopLatency is the fixed per-ring-step latency of a collective
	// (link/switch latency), independent of message size. A K-chip ring
	// all-gather or reduce-scatter takes K-1 steps; this is what floors
	// the minimum achievable decode latency at high chip counts.
	HopLatency float64
	// HBMBudget is the fraction of per-chip HBM usable for weights plus
	// KV cache before a configuration is declared infeasible.
	HBMBudget float64
	// Roofline, if true, overlaps weight loading with matmul compute
	// (per-layer time = max(compute, weight mem) + ...). The calibrated
	// default is additive, which matches the published anchors better.
	Roofline bool
}

// DefaultKnobs returns the calibrated constants (see EXPERIMENTS.md,
// "Calibration").
func DefaultKnobs() Knobs {
	return Knobs{
		MatmulEffMax:  0.88,
		MSat:          100,
		KSat:          1400,
		NSat:          1400,
		AttnEff:       0.70,
		OverlapFrac:   0,
		PerLayerFixed: 0,
		HopLatency:    0.5e-6,
		HBMBudget:     0.9,
	}
}

// Phase distinguishes the two inference phases, which the paper analyzes
// separately because prefill parallelizes over the input length while decode
// is sequential.
type Phase int

const (
	// PhasePrefill processes all input tokens in one forward pass.
	PhasePrefill Phase = iota
	// PhaseDecode generates tokens autoregressively, one step at a time.
	PhaseDecode
)

func (p Phase) String() string {
	if p == PhaseDecode {
		return "decode"
	}
	return "prefill"
}

// Request describes one inference configuration to cost.
type Request struct {
	Model   model.Config
	System  hardware.System
	Weights model.DType
	// KVDType is the KV-cache storage format. The default (BF16) is the
	// paper's baseline; Int8 models the quantize-at-append cache: half the
	// attention phase's KV memory traffic and half the cache bytes against
	// the HBM budget, so roughly twice the feasible context or batch.
	KVDType model.DType
	// WireDType is the element format of the collective payloads on the
	// interconnect — the activation all-gathers, reduce-scatters and
	// all-to-alls each layout induces, and the weight-gathered layouts'
	// per-layer staging. The default (BF16) is the paper's baseline;
	// Int8 models per-chunk-quantized collective payloads
	// (engine.Options.Int8Wire functionally), halving exposed
	// communication time in every activation-bound layout. Weight-gather
	// traffic moves at the cheaper of the at-rest and wire formats:
	// at-rest int8 shards ship as-is over a wider wire, and an int8 wire
	// quantizes wider at-rest shards at the fabric boundary — matching
	// the functional engine, whose Int8Wire quantizes the
	// weight-gathered staging like any other chunk. The per-chunk scale
	// overhead (4 bytes per message) is negligible at analytic scales
	// and ignored here; commcost's *WireVolume forms account it exactly.
	WireDType model.DType
	// FFN and Attn are the partitioning layouts for the phase being
	// evaluated.
	FFN  partition.FFNLayout
	Attn partition.AttnLayout
	// Batch is the number of sequences.
	Batch int
	// Context is the number of input/context tokens per sequence
	// processed by this pass.
	Context int
	// Past is the number of tokens per sequence already present in the KV
	// cache before this pass — the paper's "incremental processing of
	// sequences during prefill" (Section 3.5): a chatbot turn prefills
	// only the new user tokens against a cached conversation history.
	Past int
	// Gen is the number of tokens to generate (decode steps).
	Gen int
}

// Validate sanity-checks the request.
func (r Request) Validate() error {
	if err := r.Model.Validate(); err != nil {
		return err
	}
	if r.Batch < 1 {
		return fmt.Errorf("perf: batch %d < 1", r.Batch)
	}
	if r.Context < 0 || r.Gen < 0 || r.Past < 0 {
		return fmt.Errorf("perf: negative context, past or gen")
	}
	return nil
}

// Breakdown is the additive decomposition of a phase's time.
type Breakdown struct {
	Compute   float64 // matmul time (efficiency-adjusted)
	WeightMem float64 // weight HBM traffic time
	KVMem     float64 // KV-cache HBM traffic time
	Comm      float64 // exposed interconnect time (bandwidth + hop floor)
	// CommFloor is the serial hop-latency portion of Comm — the
	// collectiveHops × HopLatency term no compute overlap can hide (one
	// link traversal per ring step on the critical path). Comm - CommFloor
	// is the exposed bandwidth component, the only part OverlapFrac
	// shrinks. Informational: CommFloor is already inside Comm, so Total
	// does not add it again.
	CommFloor float64
	Fixed     float64 // per-layer constant overheads
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Compute + b.WeightMem + b.KVMem + b.Comm + b.Fixed
}

func (b *Breakdown) add(o Breakdown) {
	b.Compute += o.Compute
	b.WeightMem += o.WeightMem
	b.KVMem += o.KVMem
	b.Comm += o.Comm
	b.CommFloor += o.CommFloor
	b.Fixed += o.Fixed
}

func (b Breakdown) scale(f float64) Breakdown {
	return Breakdown{
		Compute:   b.Compute * f,
		WeightMem: b.WeightMem * f,
		KVMem:     b.KVMem * f,
		Comm:      b.Comm * f,
		CommFloor: b.CommFloor * f,
		Fixed:     b.Fixed * f,
	}
}

// Result is the costed outcome of a phase.
type Result struct {
	Phase Phase
	// Time is the wall-clock for the whole phase in seconds.
	Time float64
	// StepTime is Time per decode step (== Time for prefill).
	StepTime float64
	// Tokens is the token count the phase processed (prefill: B·Context)
	// or produced (decode: B·Gen).
	Tokens float64
	// MFU is model FLOPS utilization per Section 2.
	MFU float64
	// Cost is chip-seconds per token: nchips·Time/Tokens (Section 4.4).
	Cost float64
	// Breakdown decomposes Time.
	Breakdown Breakdown
	// Feasible is false when the configuration does not fit in memory (or
	// violates a layout constraint); Reason says why.
	Feasible bool
	Reason   string
}

func infeasible(phase Phase, reason string) Result {
	return Result{Phase: phase, Feasible: false, Reason: reason,
		Time: math.Inf(1), StepTime: math.Inf(1), Cost: math.Inf(1)}
}

// matmulEff is the empirical efficiency curve over per-chip matmul dims.
func (k Knobs) matmulEff(m, kd, n float64) float64 {
	if m <= 0 || kd <= 0 || n <= 0 {
		return 1e-9
	}
	return k.MatmulEffMax * (m / (m + k.MSat)) * (kd / (kd + k.KSat)) * (n / (n + k.NSat))
}

// stage is one fused matmul of a Transformer layer.
type stage struct {
	params float64 // weight elements
	inIsE  bool    // true: contracts the E dim (input projection); false: contracts the F-like dim
}

// stages decomposes a layer into its matmuls. The parallel formulation fuses
// everything into two big matmuls (Section 3.4); the serial formulation runs
// four separate, narrower ones, which both doubles the activation
// aggregation and lowers matmul efficiency — the two effects behind the
// paper's 14% serial penalty.
func stages(c model.Config) []stage {
	e := float64(c.DModel)
	f := float64(c.DFF)
	hq := float64(c.Heads * c.HeadDim)
	kvq := float64(c.KVHeads * c.HeadDim)
	gm := float64(c.FFNMatrices() - 1) // input-side FFN matrices
	if c.ParallelBlock {
		return []stage{
			{params: e * (gm*f + hq + 2*kvq), inIsE: true},
			{params: (f + hq) * e, inIsE: false},
		}
	}
	return []stage{
		{params: e * gm * f, inIsE: true},       // FFN in
		{params: f * e, inIsE: false},           // FFN out
		{params: e * (hq + 2*kvq), inIsE: true}, // QKV
		{params: hq * e, inIsE: false},          // attention out
	}
}

// layerStep costs one forward pass of `tokens` logical tokens through one
// layer at attention context `ctx`, returning the per-layer breakdown.
func layerStep(r Request, k Knobs, plan partition.FFNPlan, attn partition.AttnPlan,
	tokens, ctx float64, phase Phase) Breakdown {

	c := r.Model
	sys := r.System
	n := float64(sys.Chips())
	peak := sys.Chip.PeakFLOPS
	hbm := sys.Chip.HBMBandwidth
	e := float64(c.DModel)

	var b Breakdown

	// Matmul compute with per-stage per-chip shapes.
	m := tokens / float64(plan.TokenSplit)
	for _, s := range stages(c) {
		width := s.params / e // the F-like logical width of this matmul
		var kd, nd float64
		if s.inIsE {
			kd = e / float64(plan.ESplit)
			nd = width / float64(plan.FSplit)
		} else {
			kd = width / float64(plan.FSplit)
			nd = e / float64(plan.ESplit)
		}
		flops := 2 * s.params * tokens
		b.Compute += flops / (n * peak * k.matmulEff(m, kd, nd))
	}

	// Weight memory: every chip streams the layer's weights once per pass.
	// Weight-gathered layouts stream the gathered (larger) working set.
	layerBytes := c.WeightBytesPerLayer(r.Weights)
	gathered := layerBytes * float64(plan.GatherFactor()) / n
	wm := gathered / hbm
	if k.Roofline {
		// Weight loads overlap with compute; only the excess is exposed.
		if wm > b.Compute {
			b.WeightMem = wm - b.Compute
		}
	} else {
		b.WeightMem = wm
	}

	// Attention: KV-cache memory traffic and attention einsum compute.
	kvLogical := float64(r.Batch) * ctx * c.KVBytesPerTokenPerLayerAs(r.KVDType)
	kvPerChip := kvLogical * kvShardFactor(attn, r.Batch)
	tKV := kvPerChip / hbm
	attnFLOPs := 2 * 2 * tokens * ctx * float64(c.Heads*c.HeadDim)
	tAttn := attnFLOPs / (n * peak * k.AttnEff)
	// The attention einsum streams the KV cache while computing; the
	// larger of the two binds.
	if tKV > tAttn {
		b.KVMem = tKV
	} else {
		b.KVMem = tAttn
	}

	// Communication: FFN activation/weight collectives (+ attention's own
	// pair when the block is serial) and the batch-sharding all-to-alls,
	// at the wire dtype's bytes per activation element. Weight-gathered
	// staging travels at the cheaper of the at-rest and wire formats
	// (see Request.WireDType).
	actBytes := r.WireDType.Bytes()
	commWeights := r.Weights
	if r.WireDType.Bytes() < commWeights.Bytes() {
		commWeights = r.WireDType
	}
	layerCommBytes := c.WeightBytesPerLayer(commWeights)
	var comm float64
	if c.ParallelBlock {
		fused := stages(c)[0].params / e
		comm = commcost.Time(commcost.FFNLayerComm(plan, tokens, e, fused, actBytes, layerCommBytes).Total(), sys.Chip.NetworkBandwidth)
	} else {
		ffnW := float64(c.FFNMatrices()-1) * float64(c.DFF)
		attnW := float64(c.Heads*c.HeadDim + 2*c.KVHeads*c.HeadDim)
		comm = commcost.Time(commcost.FFNLayerComm(plan, tokens, e, ffnW, actBytes, layerCommBytes*0.5).Total(), sys.Chip.NetworkBandwidth) +
			commcost.Time(commcost.FFNLayerComm(plan, tokens, e, attnW, actBytes, layerCommBytes*0.5).Total(), sys.Chip.NetworkBandwidth)
	}
	if phase == PhaseDecode {
		comm += commcost.Time(commcost.AttnAllToAllBytes(attn, tokens, c.HeadDim, actBytes), sys.Chip.NetworkBandwidth)
	}
	// Looped CollectiveEinsum (Section 3.5) hides up to OverlapFrac of
	// compute time — but only from the bandwidth component above: chunking
	// the matmul into the ring schedule streams bytes behind compute, yet
	// every ring step's link traversal stays serial on the critical path.
	// The hop-latency floor is therefore charged unconditionally, never
	// reduced by overlap. (An earlier form subtracted the overlap from the
	// combined term, letting OverlapFrac ≈ 1 erase the floor entirely and
	// report zero comm — the mis-pricing behind the former 0.92x 64-chip
	// int8-wire decode ratio; the hop-floor regression test pins the fix.)
	exposed := comm - k.OverlapFrac*b.Compute
	if exposed < 0 {
		exposed = 0
	}
	// Fixed per-step latency of the ring collectives: bandwidth terms
	// shrink with more chips, but step counts grow, flooring the minimum
	// latency at high chip counts.
	floor := float64(collectiveHops(plan, attn, phase)) * k.HopLatency
	b.Comm = exposed + floor
	b.CommFloor = floor

	b.Fixed = k.PerLayerFixed
	return b
}

// collectiveHops counts the ring steps of one layer's collectives under a
// layout: each all-gather or reduce-scatter over a K-chip group is K-1
// steps; the batch-sharding all-to-all is counted as one group traversal.
func collectiveHops(plan partition.FFNPlan, attn partition.AttnPlan, phase Phase) int {
	t := plan.Torus
	n := t.Chips()
	yz := t.Y * t.Z
	hops := 0
	switch plan.Layout {
	case partition.FFN1DWeightStationary:
		hops = 2 * (n - 1) // AG + RS over all chips
	case partition.FFN2DWeightStationary:
		hops = 2*(t.X-1) + 2*(yz-1)
	case partition.FFNWeightGatheredX:
		hops = 2*(yz-1) + (t.X - 1)
	case partition.FFNWeightGatheredXY:
		hops = 2*(t.Z-1) + (t.X*t.Y - 1)
	case partition.FFNWeightGatheredXYZ:
		hops = n - 1
	}
	if phase == PhaseDecode && attn.NeedsAllToAll() {
		// All-to-all is direct pairwise communication; its latency is the
		// torus diameter, not a ring traversal. Two all-to-alls per layer.
		hops += t.X + t.Y + t.Z
	}
	return hops
}

// kvShardFactor returns the fraction of the logical KV cache each chip
// holds, accounting for partial batch sharding when batch < nchips.
func kvShardFactor(attn partition.AttnPlan, batch int) float64 {
	n := attn.Torus.Chips()
	switch attn.Layout {
	case partition.AttnShardBatch:
		ways := n
		if batch < ways {
			ways = batch
		}
		if ways < 1 {
			ways = 1
		}
		return 1 / float64(ways)
	case partition.AttnShardHeads:
		return attn.KVReplication() / float64(n)
	}
	panic("perf: unknown attention layout")
}

// embedStep costs the unembedding matmul (logits) plus its weight traffic
// for one pass of `tokens` tokens. The input lookup is free; the output
// projection is a real [tokens, E] × [E, vocab] matmul sharded over all
// chips.
func embedStep(r Request, k Knobs, plan partition.FFNPlan, tokens float64) Breakdown {
	c := r.Model
	sys := r.System
	n := float64(sys.Chips())
	params := c.EmbeddingParams()
	m := tokens / float64(plan.TokenSplit)
	eff := k.matmulEff(m, float64(c.DModel), params/float64(c.DModel)/n)
	var b Breakdown
	b.Compute = 2 * params * tokens / (n * sys.Chip.PeakFLOPS * eff)
	b.WeightMem = params * r.Weights.Bytes() / n / sys.Chip.HBMBandwidth
	return b
}

// checkMemory verifies weights plus the KV cache at maximum context fit in
// the HBM budget.
func checkMemory(r Request, k Knobs, attn partition.AttnPlan, maxCtx float64) (ok bool, reason string) {
	c := r.Model
	sys := r.System
	n := float64(sys.Chips())
	weights := c.WeightBytes(r.Weights) / n
	kv := float64(r.Batch) * maxCtx * c.KVBytesPerTokenAs(r.KVDType) * kvShardFactor(attn, r.Batch)
	budget := k.HBMBudget * sys.Chip.HBMBytes
	if weights+kv > budget {
		return false, fmt.Sprintf("OOM: weights %.1f GiB + KV %.1f GiB > budget %.1f GiB/chip",
			weights/(1<<30), kv/(1<<30), budget/(1<<30))
	}
	return true, ""
}

// Prefill costs processing Batch·Context input tokens in one forward pass.
func Prefill(r Request, k Knobs) Result {
	if err := r.Validate(); err != nil {
		return infeasible(PhasePrefill, err.Error())
	}
	plan := partition.PlanFFN(r.FFN, r.System.Torus)
	attn := partition.PlanAttn(r.Attn, r.System.Torus, r.Model.Heads, r.Model.KVHeads)
	if ok, reason := checkMemory(r, k, attn, float64(r.Past+r.Context)); !ok {
		return infeasible(PhasePrefill, reason)
	}
	tokens := float64(r.Batch) * float64(r.Context)
	// Causal attention over the new tokens sees the cached history plus an
	// average of half the new tokens.
	b := layerStep(r, k, plan, attn, tokens, float64(r.Past)+float64(r.Context)/2, PhasePrefill)
	b = b.scale(float64(r.Model.Layers))
	b.add(embedStep(r, k, plan, tokens))
	return finish(r, PhasePrefill, b, tokens, 1)
}

// PrefillExpected costs a prefill whose leading prefixLen tokens may be
// served from a shared-prefix KV cache: with probability hitRate the pass
// prefills only Context-prefixLen suffix tokens against prefixLen cached
// positions (the Past mechanism above), and with probability 1-hitRate it
// pays the full cold prefill. The returned Result blends the two outcomes'
// time, breakdown and processed-token count — the expected admission cost
// of a template-heavy workload, which is what lets Analyze/Tune size a
// deployment by its prefix hit rate instead of assuming every prompt is
// cold. hitRate 0 or prefixLen 0 degrade to a plain Prefill.
func PrefillExpected(r Request, k Knobs, hitRate float64, prefixLen int) Result {
	if hitRate == 0 || prefixLen == 0 {
		return Prefill(r, k)
	}
	if math.IsNaN(hitRate) || hitRate < 0 || hitRate > 1 {
		return infeasible(PhasePrefill, fmt.Sprintf("perf: prefix hit rate %g outside [0,1]", hitRate))
	}
	if prefixLen < 0 || prefixLen >= r.Context {
		return infeasible(PhasePrefill, fmt.Sprintf("perf: prefix length %d outside [0, context %d)", prefixLen, r.Context))
	}
	cold := Prefill(r, k)
	if !cold.Feasible {
		return cold
	}
	hot := r
	hot.Past = r.Past + prefixLen
	hot.Context = r.Context - prefixLen
	warm := Prefill(hot, k)
	if !warm.Feasible {
		return warm
	}
	b := warm.Breakdown.scale(hitRate)
	b.add(cold.Breakdown.scale(1 - hitRate))
	tokens := hitRate*warm.Tokens + (1-hitRate)*cold.Tokens
	return finish(r, PhasePrefill, b, tokens, 1)
}

// Decode costs generating Gen tokens autoregressively on top of an existing
// Context. The KV cache grows by one token per step; the per-step cost is
// integrated over steps.
func Decode(r Request, k Knobs) Result {
	if err := r.Validate(); err != nil {
		return infeasible(PhaseDecode, err.Error())
	}
	if r.Gen < 1 {
		return infeasible(PhaseDecode, "perf: decode needs Gen >= 1")
	}
	plan := partition.PlanFFN(r.FFN, r.System.Torus)
	attn := partition.PlanAttn(r.Attn, r.System.Torus, r.Model.Heads, r.Model.KVHeads)
	maxCtx := float64(r.Past + r.Context + r.Gen)
	if ok, reason := checkMemory(r, k, attn, maxCtx); !ok {
		return infeasible(PhaseDecode, reason)
	}
	tokens := float64(r.Batch) // one token per sequence per step
	var total Breakdown
	// Integrate KV growth in a few representative chunks rather than
	// per-step: context changes slowly relative to step cost.
	const chunks = 8
	steps := r.Gen
	for i := 0; i < chunks; i++ {
		lo := steps * i / chunks
		hi := steps * (i + 1) / chunks
		if hi == lo {
			continue
		}
		midCtx := float64(r.Past+r.Context) + float64(lo+hi)/2
		b := layerStep(r, k, plan, attn, tokens, midCtx, PhaseDecode)
		b = b.scale(float64(r.Model.Layers))
		b.add(embedStep(r, k, plan, tokens))
		total.add(b.scale(float64(hi - lo)))
	}
	return finish(r, PhaseDecode, total, float64(r.Batch)*float64(r.Gen), r.Gen)
}

// DecodeProfile returns the per-step cost of each decode step individually
// (exact per-step context, no chunked integration) — the step-time growth a
// serving system sees as the KV cache fills. The sum of the profile is
// within the chunking error of Decode's Time.
func DecodeProfile(r Request, k Knobs) []Result {
	if err := r.Validate(); err != nil || r.Gen < 1 {
		return nil
	}
	plan := partition.PlanFFN(r.FFN, r.System.Torus)
	attn := partition.PlanAttn(r.Attn, r.System.Torus, r.Model.Heads, r.Model.KVHeads)
	if ok, _ := checkMemory(r, k, attn, float64(r.Past+r.Context+r.Gen)); !ok {
		return nil
	}
	out := make([]Result, r.Gen)
	for step := 0; step < r.Gen; step++ {
		ctx := float64(r.Past+r.Context) + float64(step)
		b := layerStep(r, k, plan, attn, float64(r.Batch), ctx, PhaseDecode)
		b = b.scale(float64(r.Model.Layers))
		b.add(embedStep(r, k, plan, float64(r.Batch)))
		out[step] = finish(r, PhaseDecode, b, float64(r.Batch), 1)
	}
	return out
}

func finish(r Request, phase Phase, b Breakdown, tokens float64, steps int) Result {
	t := b.Total()
	n := float64(r.System.Chips())
	ideal := r.Model.MatmulFLOPsPerToken() * tokens / (n * r.System.Chip.PeakFLOPS)
	res := Result{
		Phase:     phase,
		Time:      t,
		StepTime:  t / float64(steps),
		Tokens:    tokens,
		MFU:       ideal / t,
		Cost:      n * t / tokens,
		Breakdown: b,
		Feasible:  true,
	}
	return res
}
