package perf

import (
	"math"
	"testing"
	"testing/quick"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
)

func req540(dt model.DType, batch int) Request {
	return Request{
		Model: model.PaLM540BPadded(), System: sys64(), Weights: dt,
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Batch: batch, Context: 2048, Gen: 64,
	}
}

func TestMFUBounds(t *testing.T) {
	k := DefaultKnobs()
	for _, b := range []int{1, 8, 64, 256, 512} {
		r := Decode(req540(model.BF16, b), k)
		if !r.Feasible {
			continue
		}
		if r.MFU <= 0 || r.MFU > 1 {
			t.Errorf("batch %d: MFU = %g out of (0,1]", b, r.MFU)
		}
	}
}

// cost ≡ nchips·time/tokens by definition (Section 4.4).
func TestCostIdentity(t *testing.T) {
	k := DefaultKnobs()
	f := func(bRaw uint8) bool {
		b := 1 << (bRaw % 9)
		r := Decode(req540(model.BF16, b), k)
		if !r.Feasible {
			return true
		}
		want := 64 * r.Time / r.Tokens
		return math.Abs(r.Cost-want)/want < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The breakdown must sum to the reported time.
func TestBreakdownSumsToTime(t *testing.T) {
	k := DefaultKnobs()
	r := Decode(req540(model.Int8, 64), k)
	if math.Abs(r.Breakdown.Total()-r.Time)/r.Time > 1e-12 {
		t.Errorf("breakdown %v sums to %g, time %g", r.Breakdown, r.Breakdown.Total(), r.Time)
	}
	p := Prefill(req540(model.Int8, 1), k)
	if math.Abs(p.Breakdown.Total()-p.Time)/p.Time > 1e-12 {
		t.Errorf("prefill breakdown sums to %g, time %g", p.Breakdown.Total(), p.Time)
	}
}

// Section 2.1: more chips reduce per-step latency for a fixed 2D WS layout
// (compute and weight memory shrink; communication shrinks as 1/sqrt(n)).
func TestDecodeLatencyDropsWithChips(t *testing.T) {
	k := DefaultKnobs()
	prev := math.Inf(1)
	for _, sys := range []hardware.System{
		hardware.TPUv4Slice(4, 4, 4), // 64
		hardware.TPUv4Slice(4, 4, 8), // 128
		hardware.TPUv4Slice(4, 8, 8), // 256
	} {
		r := req540(model.BF16, 512)
		r.System = sys
		res := Decode(r, k)
		if !res.Feasible {
			t.Fatalf("%d chips infeasible: %s", sys.Chips(), res.Reason)
		}
		if res.StepTime >= prev {
			t.Errorf("%d chips: step %.4f did not improve on %.4f", sys.Chips(), res.StepTime, prev)
		}
		prev = res.StepTime
	}
}

// Smaller batches improve decode latency but worsen cost per token
// (Section 2.1, Figure 1 left).
func TestBatchLatencyCostTradeoff(t *testing.T) {
	k := DefaultKnobs()
	small := Decode(req540(model.BF16, 16), k)
	large := Decode(req540(model.BF16, 512), k)
	if small.StepTime >= large.StepTime {
		t.Errorf("batch 16 step %.4f not faster than batch 512 step %.4f",
			small.StepTime, large.StepTime)
	}
	if small.Cost <= large.Cost {
		t.Errorf("batch 16 cost %.4g not higher than batch 512 cost %.4g",
			small.Cost, large.Cost)
	}
}

// Section 4.4: int8 weights roughly halve low-batch decode latency-dominating
// weight-load time (paper: cost improved "just over a factor of 2" at low
// latency) but are nearly neutral at large batch.
func TestInt8Effect(t *testing.T) {
	k := DefaultKnobs()
	lowI8 := Decode(req540(model.Int8, 8), k)
	lowBF := Decode(req540(model.BF16, 8), k)
	gainLow := lowBF.StepTime / lowI8.StepTime
	if gainLow < 1.2 {
		t.Errorf("int8 low-batch speedup = %.2fx, want > 1.2x", gainLow)
	}
	hiI8 := Decode(req540(model.Int8, 512), k)
	hiBF := Decode(req540(model.BF16, 512), k)
	gainHi := hiBF.StepTime / hiI8.StepTime
	if gainHi > gainLow {
		t.Errorf("int8 speedup at batch 512 (%.2fx) should be below batch-8 (%.2fx)",
			gainHi, gainLow)
	}
	if gainHi > 1.35 {
		t.Errorf("int8 high-batch speedup = %.2fx, want near-neutral (<1.35x)", gainHi)
	}
}

// Section 4.3: the serial block formulation is ~14% slower per decode step
// than the parallel formulation at batch 512 on 64 chips.
func TestSerialBlockPenalty(t *testing.T) {
	k := DefaultKnobs()
	par := Decode(req540(model.BF16, 512), k)
	serialModel := model.PaLM540BPadded()
	serialModel.ParallelBlock = false
	r := req540(model.BF16, 512)
	r.Model = serialModel
	ser := Decode(r, k)
	penalty := ser.StepTime/par.StepTime - 1
	if penalty < 0.03 || penalty > 0.30 {
		t.Errorf("serial penalty = %.1f%%, want 3-30%% (paper: 14%%)", penalty*100)
	}
}

// Figure 8's driver: with batch-sharded multiquery attention, per-step time
// barely grows with context; head-sharded multiquery blows up because the
// replicated KV cache must be streamed by every chip.
func TestContextScalingByAttentionLayout(t *testing.T) {
	k := DefaultKnobs()
	cfg := model.PaLM540BPadded().WithLayers(8)
	mk := func(attn partition.AttnLayout, ctx int) Result {
		return Decode(Request{
			Model: cfg, System: sys64(), Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: attn,
			Batch: 256, Context: ctx, Gen: 1,
		}, k)
	}
	optShort := mk(partition.AttnShardBatch, 128)
	optLong := mk(partition.AttnShardBatch, 8192)
	baseShort := mk(partition.AttnShardHeads, 128)
	baseLong := mk(partition.AttnShardHeads, 8192)
	if !optLong.Feasible || !baseLong.Feasible {
		t.Fatal("8-layer variants should fit")
	}
	optGrowth := optLong.StepTime / optShort.StepTime
	baseGrowth := baseLong.StepTime / baseShort.StepTime
	if optGrowth > 2.0 {
		t.Errorf("optimized layout grew %.2fx from ctx 128→8192, want < 2x", optGrowth)
	}
	if baseGrowth < 2*optGrowth {
		t.Errorf("baseline growth %.2fx should far exceed optimized %.2fx", baseGrowth, optGrowth)
	}
}

// Figure 8's dotted line: on the full 118-layer model, context beyond ~512
// does not fit with multihead or baseline multiquery partitioning, while the
// optimized layout keeps fitting.
func TestLongContextOOM(t *testing.T) {
	k := DefaultKnobs()
	mk := func(cfg model.Config, attn partition.AttnLayout) Result {
		return Decode(Request{
			Model: cfg, System: sys64(), Weights: model.BF16,
			FFN: partition.FFN2DWeightStationary, Attn: attn,
			Batch: 512, Context: 2048, Gen: 1,
		}, k)
	}
	if r := mk(model.PaLM540BMHA(), partition.AttnShardHeads); r.Feasible {
		t.Error("multihead at B=512 ctx=2048 should OOM on 64 chips")
	}
	if r := mk(model.PaLM540BPadded(), partition.AttnShardHeads); r.Feasible {
		t.Error("baseline (head-sharded) multiquery at B=512 ctx=2048 should OOM")
	}
	if r := mk(model.PaLM540BPadded(), partition.AttnShardBatch); !r.Feasible {
		t.Errorf("optimized multiquery should fit: %s", r.Reason)
	}
}

// Decode per-step time must be monotone non-decreasing in context length
// (more KV bytes per step).
func TestStepTimeMonotoneInContext(t *testing.T) {
	k := DefaultKnobs()
	prev := 0.0
	for _, ctx := range []int{128, 512, 2048, 8192} {
		r := req540(model.BF16, 256)
		r.Context = ctx
		res := Decode(r, k)
		if !res.Feasible {
			t.Fatalf("ctx %d infeasible: %s", ctx, res.Reason)
		}
		if res.StepTime < prev {
			t.Errorf("ctx %d: step time %.5f decreased from %.5f", ctx, res.StepTime, prev)
		}
		prev = res.StepTime
	}
}

// Roofline mode (weight load overlapped with compute) must never be slower
// than the additive default.
func TestRooflineModeFaster(t *testing.T) {
	k := DefaultKnobs()
	kr := k
	kr.Roofline = true
	f := func(bRaw uint8) bool {
		b := 1 << (bRaw % 10)
		add := Decode(req540(model.BF16, b), k)
		roof := Decode(req540(model.BF16, b), kr)
		if !add.Feasible {
			return true
		}
		return roof.Time <= add.Time+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Raising the overlap fraction can only hide communication, never add time.
func TestOverlapMonotone(t *testing.T) {
	base := DefaultKnobs()
	over := base
	over.OverlapFrac = 1
	a := Decode(req540(model.BF16, 512), base)
	b := Decode(req540(model.BF16, 512), over)
	if b.Time > a.Time {
		t.Errorf("full overlap (%.4f) slower than none (%.4f)", b.Time, a.Time)
	}
	if b.Breakdown.Comm > a.Breakdown.Comm {
		t.Error("overlap increased exposed communication")
	}
}

// Prefill at batch 512 is about 2x cheaper per token than decode at batch
// 512 thanks to the weight-gathered layout (Section 4.4).
func TestPrefillCheaperThanDecode(t *testing.T) {
	k := DefaultKnobs()
	pre := Prefill(Request{
		Model: model.PaLM540BPadded(), System: sys64(), Weights: model.BF16,
		FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch,
		Batch: 512, Context: 2048,
	}, k)
	dec := Decode(req540(model.BF16, 512), k)
	ratio := dec.Cost / pre.Cost
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("decode/prefill cost ratio = %.2f, want ~2x (1.5-4)", ratio)
	}
}

func TestValidation(t *testing.T) {
	k := DefaultKnobs()
	r := req540(model.BF16, 0)
	if res := Decode(r, k); res.Feasible {
		t.Error("batch 0 should be infeasible")
	}
	r = req540(model.BF16, 8)
	r.Gen = 0
	if res := Decode(r, k); res.Feasible {
		t.Error("decode with Gen=0 should be infeasible")
	}
	r = req540(model.BF16, 8)
	r.Context = -1
	if res := Prefill(r, k); res.Feasible {
		t.Error("negative context should be infeasible")
	}
	bad := req540(model.BF16, 8)
	bad.Model.Layers = 0
	if res := Prefill(bad, k); res.Feasible {
		t.Error("invalid model should be infeasible")
	}
}

func TestInfeasibleResultShape(t *testing.T) {
	r := infeasible(PhaseDecode, "why")
	if r.Feasible || r.Reason != "why" || !math.IsInf(r.Time, 1) || !math.IsInf(r.Cost, 1) {
		t.Errorf("infeasible result malformed: %+v", r)
	}
}

func TestPhaseString(t *testing.T) {
	if PhasePrefill.String() != "prefill" || PhaseDecode.String() != "decode" {
		t.Error("phase strings wrong")
	}
}

// Per-layer fixed overhead scales with layer count and steps.
func TestPerLayerFixed(t *testing.T) {
	k := DefaultKnobs()
	kf := k
	kf.PerLayerFixed = 1e-5
	a := Decode(req540(model.BF16, 64), k)
	b := Decode(req540(model.BF16, 64), kf)
	wantExtra := 1e-5 * 118 * 64 // layers × steps
	got := b.Time - a.Time
	if math.Abs(got-wantExtra)/wantExtra > 0.01 {
		t.Errorf("fixed overhead added %.6f, want %.6f", got, wantExtra)
	}
}

// DecodeProfile: per-step times are monotone in step (KV growth), and their
// sum matches Decode's chunk-integrated total closely.
func TestDecodeProfile(t *testing.T) {
	k := DefaultKnobs()
	r := req540(model.BF16, 256)
	r.Gen = 32
	prof := DecodeProfile(r, k)
	if len(prof) != 32 {
		t.Fatalf("profile has %d steps, want 32", len(prof))
	}
	var sum float64
	for i, p := range prof {
		if i > 0 && p.Time < prof[i-1].Time-1e-12 {
			t.Errorf("step %d time decreased: %g < %g", i, p.Time, prof[i-1].Time)
		}
		sum += p.Time
	}
	total := Decode(r, k)
	if math.Abs(sum-total.Time)/total.Time > 0.01 {
		t.Errorf("profile sum %.4f vs Decode total %.4f (>1%% apart)", sum, total.Time)
	}
	// Invalid requests return nil.
	bad := r
	bad.Gen = 0
	if DecodeProfile(bad, k) != nil {
		t.Error("Gen=0 should return nil profile")
	}
	oom := r
	oom.Batch = 4096
	oom.Context = 8192
	if DecodeProfile(oom, k) != nil {
		t.Error("OOM request should return nil profile")
	}
}

// Sub-linear latency growth with model size at the low-latency frontier
// (Section 4.4: "approximately square-root relationship").
func TestSublinearLatencyInModelSize(t *testing.T) {
	k := DefaultKnobs()
	mk := func(cfg model.Config, sys hardware.System) float64 {
		r := Decode(Request{
			Model: cfg, System: sys, Weights: model.Int8,
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
			Batch: 64, Context: 2048, Gen: 64,
		}, k)
		return r.StepTime
	}
	t62 := mk(model.PaLM62B(), hardware.TPUv4Slice(4, 2, 2))
	t540 := mk(model.PaLM540BPadded(), sys64())
	sizeRatio := model.PaLM540BPadded().Params() / model.PaLM62B().Params() // ~8.9x
	latRatio := t540 / t62
	if latRatio > sizeRatio*0.7 {
		t.Errorf("latency ratio %.2fx vs size ratio %.2fx: not sublinear", latRatio, sizeRatio)
	}
	if latRatio < 1 {
		t.Errorf("bigger model came out faster (%.2fx)", latRatio)
	}
}

// The prefix-hit-rate knob: expected prefill cost shrinks monotonically
// with hit rate, hits cost the suffix-only pass, and invalid knob values
// are infeasible rather than silently wrong.
func TestPrefillExpectedPrefixKnob(t *testing.T) {
	r := req540(model.Int8, 1)
	k := DefaultKnobs()
	const prefix = 1792

	cold := Prefill(r, k)
	zero := PrefillExpected(r, k, 0, prefix)
	half := PrefillExpected(r, k, 0.5, prefix)
	full := PrefillExpected(r, k, 1, prefix)
	for name, res := range map[string]Result{"zero": zero, "half": half, "full": full} {
		if !res.Feasible {
			t.Fatalf("%s: infeasible: %s", name, res.Reason)
		}
	}
	if zero.Time != cold.Time {
		t.Errorf("hitRate 0 time %g != cold %g", zero.Time, cold.Time)
	}
	if !(full.Time < half.Time && half.Time < cold.Time) {
		t.Errorf("times not monotone in hit rate: full %g, half %g, cold %g",
			full.Time, half.Time, cold.Time)
	}
	// An all-hit workload prefills Context-prefix tokens against a cached
	// past; its time must match that request costed directly.
	hot := r
	hot.Context = r.Context - prefix
	hot.Past = prefix
	direct := Prefill(hot, k)
	if math.Abs(full.Time-direct.Time) > 1e-12 {
		t.Errorf("full-hit time %g != direct suffix prefill %g", full.Time, direct.Time)
	}
	if math.Abs(half.Time-(0.5*cold.Time+0.5*direct.Time)) > 1e-9*cold.Time {
		t.Errorf("half-hit time %g not the blend of %g and %g", half.Time, cold.Time, direct.Time)
	}

	for name, bad := range map[string]struct {
		rate float64
		pl   int
	}{
		"rate>1":     {1.5, prefix},
		"rate<0":     {-0.1, prefix},
		"rateNaN":    {math.NaN(), prefix},
		"prefix>ctx": {0.5, r.Context},
		"prefix<0":   {0.5, -5},
	} {
		if res := PrefillExpected(r, k, bad.rate, bad.pl); res.Feasible {
			t.Errorf("%s: accepted", name)
		}
	}
}
