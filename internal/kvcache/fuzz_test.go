package kvcache

import (
	"testing"

	"esti/internal/tensor"
)

// FuzzSlotIsolation drives an arbitrary sequence of slot operations —
// alloc, per-slot append/advance, release — against a shadow model and
// checks the continuous-batching invariants after every step: a slot's
// committed length and stored K/V always match the shadow, so no operation
// on one slot ever corrupts a neighboring slot, and released storage reads
// back as zero.
func FuzzSlotIsolation(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 4, 8, 1, 9, 2})
	f.Add([]byte{255, 254, 253, 0, 1, 127, 64, 32})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const layers, slots, maxLen, width = 2, 3, 4, 2
		c := New(layers, slots, maxLen, width)
		// shadow[s] holds the expected first-column K value of each
		// committed position in slot s; inUse mirrors the advisory
		// allocation map.
		shadow := make([][]float32, slots)
		inUse := make([]bool, slots)
		next := float32(1)

		check := func() {
			t.Helper()
			for s := 0; s < slots; s++ {
				if got, want := c.SeqLen(s), len(shadow[s]); got != want {
					t.Fatalf("slot %d: SeqLen %d, want %d", s, got, want)
				}
				for l := 0; l < layers; l++ {
					keys := c.Keys(l, s)
					vals := c.Values(l, s)
					for p, want := range shadow[s] {
						if keys.At(p, 0) != want {
							t.Fatalf("slot %d layer %d pos %d: K %g, want %g",
								s, l, p, keys.At(p, 0), want)
						}
						if vals.At(p, 0) != -want {
							t.Fatalf("slot %d layer %d pos %d: V %g, want %g",
								s, l, p, vals.At(p, 0), -want)
						}
					}
					// Positions past the committed length of a released or
					// short slot must be zero once ResetSeq ran; we only
					// assert the committed prefix plus release hygiene
					// below, since lockstep Reset leaves stale bytes by
					// design.
				}
			}
		}

		for _, b := range ops {
			op := int(b) % 3
			s := int(b>>2) % slots
			switch op {
			case 0: // append one position to slot s and commit it
				if len(shadow[s])+1 > maxLen {
					continue // would panic by contract; skip
				}
				k := tensor.New(1, width)
				v := tensor.New(1, width)
				for i := 0; i < width; i++ {
					k.Data[i] = next
					v.Data[i] = -next
				}
				for l := 0; l < layers; l++ {
					c.AppendSeq(l, s, k, v, 1)
				}
				c.AdvanceSeq(s, 1)
				shadow[s] = append(shadow[s], next)
				next++
			case 1: // release slot s (evict); double release must error
				_, err := c.Release(s)
				if inUse[s] {
					if err != nil {
						t.Fatalf("release of allocated slot %d: %v", s, err)
					}
					inUse[s] = false
					shadow[s] = nil
					// Release hygiene: the slot's full capacity reads zero.
					for l := 0; l < layers; l++ {
						for p := 0; p < maxLen; p++ {
							row := c.K[l].Row(s*maxLen + p)
							for _, x := range row {
								if x != 0 {
									t.Fatalf("slot %d layer %d pos %d: stale %g after release", s, l, p, x)
								}
							}
						}
					}
				} else {
					if err == nil {
						t.Fatalf("release of unallocated slot %d silently succeeded", s)
					}
					// The failed release must not have disturbed the slot.
					if got, want := c.SeqLen(s), len(shadow[s]); got != want {
						t.Fatalf("failed release changed slot %d length: %d, want %d", s, got, want)
					}
				}
			case 2: // alloc any free slot (returns it empty)
				if got, ok := c.Alloc(); ok {
					if c.SeqLen(got) != 0 {
						t.Fatalf("alloc returned non-empty slot %d", got)
					}
					inUse[got] = true
					shadow[got] = nil
				}
			}
			check()
		}
	})
}
