package kvcache

// KV handoff: exporting one slot's cache content as a self-contained block
// that another cache — typically on a different engine replica — can import
// verbatim. This is the storage half of disaggregated prefill/decode
// serving: a prefill replica fills a slot's K/V, the block travels over the
// interconnect, and a decode replica resumes the sequence against an
// imported copy that is bit-identical to the original. Int8 caches export
// their raw quantized values and per-row scales (no dequantize/requantize
// round trip), so the handoff preserves quantized storage exactly; an
// attached shared prefix is materialized into the block, because the
// receiving replica has no reference to the sender's PrefixStore.

import (
	"fmt"

	"esti/internal/tensor"
)

// KVBlock is one slot's exported K/V rows — every committed position,
// prefix included — in the cache's native storage format. Blocks are deep
// copies: the exporting slot may be released (and its storage zeroed) the
// moment ExportSeq returns, which is exactly the prefill-pool lifecycle.
type KVBlock struct {
	Layers, Width, Len int
	// Int8 reports the storage format the block carries (and the only
	// cache mode it can be imported into — the attention walk reads one
	// format, so a handoff never converts).
	Int8 bool
	// Float mode: per layer [Len, Width].
	K, V []*tensor.Mat
	// Int8 mode: per layer Len*Width raw values plus Len row scales.
	K8, V8         [][]int8
	KScale, VScale [][]float32
}

// Bytes is the wire footprint of the block: the K+V backing bytes that a
// real handoff would move between replicas (float32 values, or int8 values
// plus one float32 scale per row).
func (b *KVBlock) Bytes() int {
	per := b.Width * 4
	if b.Int8 {
		per = b.Width + 4
	}
	return 2 * b.Layers * b.Len * per
}

// ExportSeq deep-copies slot s's committed positions [0, SeqLen) into a
// self-contained KVBlock. An attached shared prefix is included (its rows
// are copied out of the store; in int8 mode the quantized values and scales
// are copied verbatim, so the block is bit-identical to what the attention
// walk reads). Exporting an empty slot returns an error — there is nothing
// to hand off.
func (c *Cache) ExportSeq(s int) (*KVBlock, error) {
	c.checkSlot(s)
	n := c.SeqLen(s)
	if n == 0 {
		return nil, fmt.Errorf("kvcache: export of empty slot %d", s)
	}
	b := &KVBlock{Layers: c.Layers, Width: c.KVWidth, Len: n, Int8: c.int8Mode}
	if c.int8Mode {
		b.K8 = make([][]int8, c.Layers)
		b.V8 = make([][]int8, c.Layers)
		b.KScale = make([][]float32, c.Layers)
		b.VScale = make([][]float32, c.Layers)
		for l := 0; l < c.Layers; l++ {
			b.K8[l], b.KScale[l] = c.exportRows8(l, s, n, true)
			b.V8[l], b.VScale[l] = c.exportRows8(l, s, n, false)
		}
		return b, nil
	}
	b.K = make([]*tensor.Mat, c.Layers)
	b.V = make([]*tensor.Mat, c.Layers)
	for l := 0; l < c.Layers; l++ {
		// RowsK/RowsV may return zero-copy views of live storage; the block
		// must survive the slot's release, so clone.
		b.K[l] = c.RowsK(l, s, n).Clone()
		b.V[l] = c.RowsV(l, s, n).Clone()
	}
	return b, nil
}

// exportRows8 copies n raw quantized rows (prefix segment first, then the
// private suffix) with their scales.
func (c *Cache) exportRows8(l, s, n int, wantK bool) ([]int8, []float32) {
	pre, priv := c.segments8(l, s, n, wantK)
	vals := make([]int8, n*c.KVWidth)
	scales := make([]float32, n)
	copy(vals, pre.Data)
	copy(vals[pre.Rows*c.KVWidth:], priv.Data)
	copy(scales, pre.Scales)
	copy(scales[pre.Rows:], priv.Scales)
	return vals, scales
}

// ImportSeq writes a KVBlock into the empty slot s and commits its length,
// after which the slot is indistinguishable from one that prefilled the
// same positions locally. The block must match the cache's storage mode,
// layer count, width, and fit the slot capacity; the slot must be empty
// (no private rows, no attached prefix). The block is copied in, so the
// caller may reuse or import it elsewhere afterwards.
func (c *Cache) ImportSeq(s int, b *KVBlock) error {
	c.checkSlot(s)
	if b == nil || b.Len == 0 {
		return fmt.Errorf("kvcache: import of empty block")
	}
	if c.lens[s] != 0 || c.pfx[s] != nil {
		return fmt.Errorf("kvcache: import into non-empty slot %d (len %d, prefix %d)",
			s, c.lens[s], c.prefixLen(s))
	}
	if b.Int8 != c.int8Mode {
		return fmt.Errorf("kvcache: block stored as %s, cache is %s (a handoff never converts)",
			storageName(b.Int8), storageName(c.int8Mode))
	}
	if b.Layers != c.Layers {
		return fmt.Errorf("kvcache: block has %d layers, cache %d", b.Layers, c.Layers)
	}
	if b.Width != c.KVWidth {
		return fmt.Errorf("kvcache: block width %d, cache %d", b.Width, c.KVWidth)
	}
	if b.Len > c.MaxLen {
		return fmt.Errorf("kvcache: block of %d tokens exceeds slot capacity %d", b.Len, c.MaxLen)
	}
	base := s * c.MaxLen
	w := c.KVWidth
	for l := 0; l < c.Layers; l++ {
		if c.int8Mode {
			copy(c.k8[l][base*w:(base+b.Len)*w], b.K8[l])
			copy(c.v8[l][base*w:(base+b.Len)*w], b.V8[l])
			copy(c.kScale[l][base:base+b.Len], b.KScale[l])
			copy(c.vScale[l][base:base+b.Len], b.VScale[l])
			continue
		}
		for t := 0; t < b.Len; t++ {
			copy(c.K[l].Row(base+t), b.K[l].Row(t))
			copy(c.V[l].Row(base+t), b.V[l].Row(t))
		}
	}
	c.lens[s] = b.Len
	return nil
}
