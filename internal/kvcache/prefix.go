package kvcache

// Shared-prefix KV reuse. Millions of chatbot requests open with the same
// system prompt or few-shot template; recomputing that prefix's K/V on every
// admission spends exactly the resource the paper shows the prefill phase is
// short on (compute, Section 2), and storing a private copy per slot spends
// the resource the decode phase is short on (HBM, Table 1). A PrefixStore
// holds one immutable K/V block per distinct prefix, keyed by its token IDs
// in a trie so lookup finds the *longest* cached prefix of a new prompt, and
// reference-counted so any number of live slots alias the same block. A
// slot attaches a prefix (Cache.AttachPrefix) and then appends only its
// private suffix: divergence after the shared part needs no copy at all,
// because appends are always past the prefix boundary — the copy-on-
// divergence degenerate case. The one real copy, MaterializePrefix, turns an
// alias into private rows when a slot must outlive its prefix's residency.
//
// Eviction is LRU over unreferenced entries under a byte budget, the same
// admission-shaping role the serving tier plays for slots themselves.

import (
	"fmt"

	"esti/internal/quant"
	"esti/internal/tensor"
)

// Prefix is one immutable cached prefix: per-layer K/V for its tokens.
// It is created by PrefixStore.Insert and shared read-only between any
// number of cache slots; refcounts are managed by Acquire/Release. In an
// int8 store the block is held quantized (per-row scaled int8, the same
// format as an int8 Cache), so a shared system prompt is resident at half
// the bf16 bytes and attaches only to int8 caches.
type Prefix struct {
	tokens        []int
	layers, width int
	// K and V are per layer [len(tokens), width], read-only once inserted
	// (float32 stores only).
	K, V []*tensor.Mat
	// int8 stores only: quantized values and per-row scales, per layer —
	// the storage ViewK8/ViewV8 serve the prefix segment from.
	int8Mode       bool
	k8, v8         [][]int8
	kScale, vScale [][]float32

	refs    int
	lastUse int64
	node    *trieNode
}

// Len returns the prefix length in tokens.
func (p *Prefix) Len() int { return len(p.tokens) }

// Tokens returns a copy of the token IDs the prefix was keyed on.
func (p *Prefix) Tokens() []int { return append([]int(nil), p.tokens...) }

// Refs returns the number of live references (attached slots).
func (p *Prefix) Refs() int { return p.refs }

// Bytes is the true K+V backing footprint of the prefix: float32 values,
// or — in an int8 store — int8 values plus one float32 scale per row, so
// budget accounting and LRU eviction run in quantized units.
func (p *Prefix) Bytes() int {
	if p.layers == 0 {
		return 0
	}
	if p.int8Mode {
		return 2 * p.layers * len(p.tokens) * (p.width + 4)
	}
	return 2 * p.layers * len(p.tokens) * p.width * 4
}

// trieNode is one token edge in the prefix trie. An entry may sit on an
// interior node: a short system prompt can be a prefix of a longer cached
// template, and Acquire returns the deepest entry along the prompt.
type trieNode struct {
	parent   *trieNode
	tok      int
	children map[int]*trieNode
	entry    *Prefix
}

// PrefixStore is a reference-counted, byte-budgeted store of shared
// prefixes. It is not safe for concurrent use; callers serialize (the
// schedulers in this repo are single-threaded per engine).
type PrefixStore struct {
	layers, width int
	budget        int  // bytes; 0 = unlimited
	int8Mode      bool // store blocks quantized (NewPrefixStoreInt8)

	root    trieNode
	clock   int64
	bytes   int
	entries int

	hits, misses       int64
	hitToks, missToks  int64
	insertions, evicts int64
}

// PrefixStats is a point-in-time summary of store effectiveness.
type PrefixStats struct {
	Entries int
	Bytes   int
	// Hits/Misses count Acquire outcomes; HitTokens sums the lengths of the
	// returned prefixes — prefill tokens the engine did not recompute.
	Hits, Misses          int64
	HitTokens, MissTokens int64
	Insertions, Evictions int64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s PrefixStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewPrefixStore creates an empty store for prefixes of the given per-layer
// K/V width. budgetBytes bounds resident K+V bytes (0 = unlimited).
func NewPrefixStore(layers, width, budgetBytes int) *PrefixStore {
	if layers < 1 || width < 1 {
		panic(fmt.Sprintf("kvcache: prefix store with %d layers, width %d", layers, width))
	}
	return &PrefixStore{layers: layers, width: width, budget: budgetBytes}
}

// NewPrefixStoreInt8 creates an empty store that holds its blocks
// quantized (per-row scaled int8): Insert still takes float32 K/V and
// quantizes them on the way in, entries attach only to int8 caches, and
// the byte budget governs quantized bytes — the same prefixes resident at
// half the bf16 footprint, or twice the prefixes under one budget.
func NewPrefixStoreInt8(layers, width, budgetBytes int) *PrefixStore {
	ps := NewPrefixStore(layers, width, budgetBytes)
	ps.int8Mode = true
	return ps
}

// Int8 reports whether the store holds its blocks quantized.
func (ps *PrefixStore) Int8() bool { return ps.int8Mode }

// Stats returns a snapshot of store counters.
func (ps *PrefixStore) Stats() PrefixStats {
	return PrefixStats{
		Entries: ps.entries, Bytes: ps.bytes,
		Hits: ps.hits, Misses: ps.misses,
		HitTokens: ps.hitToks, MissTokens: ps.missToks,
		Insertions: ps.insertions, Evictions: ps.evicts,
	}
}

// Bytes returns the resident K+V bytes of all stored prefixes.
func (ps *PrefixStore) Bytes() int { return ps.bytes }

// Entries returns the number of stored prefixes.
func (ps *PrefixStore) Entries() int { return ps.entries }

// Insert stores per-layer K/V blocks for the exact token sequence `tokens`.
// k and v are per layer [len(tokens), width]; the store keeps deep copies,
// so callers may reuse their buffers. Inserting an already-present sequence
// refreshes its recency and returns the existing entry. When the insertion
// pushes the store over its byte budget, unreferenced entries are evicted
// LRU-first; if the new entry cannot fit even then, it is not stored and an
// error is returned.
func (ps *PrefixStore) Insert(tokens []int, k, v []*tensor.Mat) (*Prefix, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("kvcache: empty prefix")
	}
	if len(k) != ps.layers || len(v) != ps.layers {
		return nil, fmt.Errorf("kvcache: prefix has %d/%d layer blocks, store wants %d", len(k), len(v), ps.layers)
	}
	for l := 0; l < ps.layers; l++ {
		if k[l].Rows != len(tokens) || k[l].Cols != ps.width ||
			v[l].Rows != len(tokens) || v[l].Cols != ps.width {
			return nil, fmt.Errorf("kvcache: prefix layer %d shape %dx%d, want %dx%d",
				l, k[l].Rows, k[l].Cols, len(tokens), ps.width)
		}
	}

	node := &ps.root
	for _, tok := range tokens {
		child, ok := node.children[tok]
		if !ok {
			child = &trieNode{parent: node, tok: tok}
			if node.children == nil {
				node.children = map[int]*trieNode{}
			}
			node.children[tok] = child
		}
		node = child
	}
	if node.entry != nil {
		node.entry.lastUse = ps.tick()
		return node.entry, nil
	}

	p := &Prefix{
		tokens: append([]int(nil), tokens...),
		layers: ps.layers, width: ps.width,
		int8Mode: ps.int8Mode,
		node:     node,
	}
	if ps.int8Mode {
		n := len(tokens)
		p.k8 = make([][]int8, ps.layers)
		p.v8 = make([][]int8, ps.layers)
		p.kScale = make([][]float32, ps.layers)
		p.vScale = make([][]float32, ps.layers)
		for l := 0; l < ps.layers; l++ {
			p.k8[l] = make([]int8, n*ps.width)
			p.v8[l] = make([]int8, n*ps.width)
			p.kScale[l] = make([]float32, n)
			p.vScale[l] = make([]float32, n)
			for t := 0; t < n; t++ {
				p.kScale[l][t] = quant.QuantizeRowInto(p.k8[l][t*ps.width:(t+1)*ps.width], k[l].Row(t))
				p.vScale[l][t] = quant.QuantizeRowInto(p.v8[l][t*ps.width:(t+1)*ps.width], v[l].Row(t))
			}
		}
	} else {
		p.K = make([]*tensor.Mat, ps.layers)
		p.V = make([]*tensor.Mat, ps.layers)
		for l := 0; l < ps.layers; l++ {
			p.K[l] = k[l].Clone()
			p.V[l] = v[l].Clone()
		}
	}
	node.entry = p
	p.lastUse = ps.tick()
	ps.bytes += p.Bytes()
	ps.entries++
	ps.insertions++

	if ps.budget > 0 && ps.bytes > ps.budget {
		ps.evictOver(p)
		if ps.bytes > ps.budget {
			ps.remove(p)
			return nil, fmt.Errorf("kvcache: prefix of %d tokens (%d bytes) does not fit budget %d",
				len(tokens), p.Bytes(), ps.budget)
		}
	}
	return p, nil
}

// Acquire returns the longest stored prefix of `tokens` with its reference
// count incremented, plus its length; (nil, 0) on a miss. The caller owns
// one reference and must Release it (typically when the attached slot is
// freed).
func (ps *PrefixStore) Acquire(tokens []int) (*Prefix, int) {
	node := &ps.root
	var best *Prefix
	for _, tok := range tokens {
		child, ok := node.children[tok]
		if !ok {
			break
		}
		node = child
		if node.entry != nil {
			best = node.entry
		}
	}
	if best == nil {
		ps.misses++
		ps.missToks += int64(len(tokens))
		return nil, 0
	}
	best.refs++
	best.lastUse = ps.tick()
	ps.hits++
	ps.hitToks += int64(best.Len())
	return best, best.Len()
}

// Release drops one reference to p. Releasing below zero is a bookkeeping
// bug and returns an error.
func (ps *PrefixStore) Release(p *Prefix) error {
	if p == nil {
		return fmt.Errorf("kvcache: release of nil prefix")
	}
	if p.refs <= 0 {
		return fmt.Errorf("kvcache: prefix of %d tokens released more times than acquired", p.Len())
	}
	p.refs--
	return nil
}

// Evict removes p from the store regardless of the byte budget; it fails if
// the prefix is still referenced by a slot.
func (ps *PrefixStore) Evict(p *Prefix) error {
	if p == nil || p.node == nil || p.node.entry != p {
		return fmt.Errorf("kvcache: evict of prefix not in store")
	}
	if p.refs > 0 {
		return fmt.Errorf("kvcache: prefix of %d tokens still referenced by %d slots", p.Len(), p.refs)
	}
	ps.remove(p)
	ps.evicts++
	return nil
}

// evictOver evicts unreferenced entries, least recently used first, until
// the store fits its budget. `keep` (the entry just inserted) is never
// evicted here so Insert can decide its fate explicitly.
func (ps *PrefixStore) evictOver(keep *Prefix) {
	for ps.bytes > ps.budget {
		victim := ps.lruUnreferenced(keep)
		if victim == nil {
			return
		}
		ps.remove(victim)
		ps.evicts++
	}
}

// lruUnreferenced finds the least recently used entry with no references,
// excluding `skip`.
func (ps *PrefixStore) lruUnreferenced(skip *Prefix) *Prefix {
	var victim *Prefix
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		if n.entry != nil && n.entry != skip && n.entry.refs == 0 {
			if victim == nil || n.entry.lastUse < victim.lastUse {
				victim = n.entry
			}
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(&ps.root)
	return victim
}

// remove unlinks an entry and prunes now-empty trie nodes.
func (ps *PrefixStore) remove(p *Prefix) {
	ps.bytes -= p.Bytes()
	ps.entries--
	n := p.node
	n.entry = nil
	p.node = nil
	for n != nil && n.parent != nil && n.entry == nil && len(n.children) == 0 {
		delete(n.parent.children, n.tok)
		n = n.parent
	}
}

func (ps *PrefixStore) tick() int64 {
	ps.clock++
	return ps.clock
}
