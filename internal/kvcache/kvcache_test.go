package kvcache

import (
	"testing"

	"esti/internal/tensor"
)

func TestAppendAndRead(t *testing.T) {
	c := New(2, 3, 8, 4)
	k := tensor.New(3*2, 4) // 3 seqs × 2 steps
	v := tensor.New(3*2, 4)
	for i := range k.Data {
		k.Data[i] = float32(i)
		v.Data[i] = float32(-i)
	}
	c.Append(0, k, v, 2)
	c.Append(1, k, v, 2)
	c.Advance(2)
	if c.Len != 2 {
		t.Fatalf("len %d", c.Len)
	}
	keys := c.Keys(0, 1) // sequence 1
	if keys.Rows != 2 || keys.Cols != 4 {
		t.Fatalf("keys shape %dx%d", keys.Rows, keys.Cols)
	}
	// Sequence 1's first appended row was k.Row(1*2+0) = row 2.
	if keys.At(0, 0) != k.At(2, 0) {
		t.Errorf("keys[0][0] = %g, want %g", keys.At(0, 0), k.At(2, 0))
	}
	vals := c.Values(0, 1)
	if vals.At(1, 3) != v.At(3, 3) {
		t.Errorf("vals[1][3] = %g, want %g", vals.At(1, 3), v.At(3, 3))
	}
}

func TestBytesAccounting(t *testing.T) {
	c := New(4, 2, 16, 8)
	want := 2 * 4 * 2 * 16 * 8 * 4
	if c.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", c.Bytes(), want)
	}
	if c.UsedBytes() != 0 {
		t.Error("empty cache should use 0 bytes")
	}
	c.Advance(3)
	if got, want := c.UsedBytes(), 2*4*2*3*8*4; got != want {
		t.Errorf("UsedBytes = %d, want %d", got, want)
	}
}

func TestOverflowPanics(t *testing.T) {
	c := New(1, 1, 2, 4)
	c.Advance(2)
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	c.Advance(1)
}

func TestAppendShapePanics(t *testing.T) {
	c := New(1, 2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	c.Append(0, tensor.New(3, 4), tensor.New(3, 4), 1) // want 2 rows
}

func TestAppendBeyondCapacityPanics(t *testing.T) {
	c := New(1, 1, 2, 4)
	c.Advance(2)
	defer func() {
		if recover() == nil {
			t.Error("expected capacity panic")
		}
	}()
	c.Append(0, tensor.New(1, 4), tensor.New(1, 4), 1)
}

func TestReset(t *testing.T) {
	c := New(1, 1, 4, 4)
	c.Advance(3)
	c.Reset()
	if c.Len != 0 {
		t.Error("reset did not clear length")
	}
}
