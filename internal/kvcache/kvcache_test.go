package kvcache

import (
	"testing"

	"esti/internal/tensor"
)

func TestAppendAndRead(t *testing.T) {
	c := New(2, 3, 8, 4)
	k := tensor.New(3*2, 4) // 3 seqs × 2 steps
	v := tensor.New(3*2, 4)
	for i := range k.Data {
		k.Data[i] = float32(i)
		v.Data[i] = float32(-i)
	}
	c.Append(0, k, v, 2)
	c.Append(1, k, v, 2)
	c.Advance(2)
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	keys := c.Keys(0, 1) // sequence 1
	if keys.Rows != 2 || keys.Cols != 4 {
		t.Fatalf("keys shape %dx%d", keys.Rows, keys.Cols)
	}
	// Sequence 1's first appended row was k.Row(1*2+0) = row 2.
	if keys.At(0, 0) != k.At(2, 0) {
		t.Errorf("keys[0][0] = %g, want %g", keys.At(0, 0), k.At(2, 0))
	}
	vals := c.Values(0, 1)
	if vals.At(1, 3) != v.At(3, 3) {
		t.Errorf("vals[1][3] = %g, want %g", vals.At(1, 3), v.At(3, 3))
	}
}

func TestBytesAccounting(t *testing.T) {
	c := New(4, 2, 16, 8)
	want := 2 * 4 * 2 * 16 * 8 * 4
	if c.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", c.Bytes(), want)
	}
	if c.UsedBytes() != 0 {
		t.Error("empty cache should use 0 bytes")
	}
	c.Advance(3)
	if got, want := c.UsedBytes(), 2*4*2*3*8*4; got != want {
		t.Errorf("UsedBytes = %d, want %d", got, want)
	}
}

func TestOverflowPanics(t *testing.T) {
	c := New(1, 1, 2, 4)
	c.Advance(2)
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	c.Advance(1)
}

func TestAppendShapePanics(t *testing.T) {
	c := New(1, 2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	c.Append(0, tensor.New(3, 4), tensor.New(3, 4), 1) // want 2 rows
}

func TestAppendBeyondCapacityPanics(t *testing.T) {
	c := New(1, 1, 2, 4)
	c.Advance(2)
	defer func() {
		if recover() == nil {
			t.Error("expected capacity panic")
		}
	}()
	c.Append(0, tensor.New(1, 4), tensor.New(1, 4), 1)
}

func TestReset(t *testing.T) {
	c := New(1, 1, 4, 4)
	c.Advance(3)
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset did not clear length")
	}
}

// fill writes `steps` constant-valued rows into slot s of every layer and
// commits them.
func fill(c *Cache, s, steps int, val float32) {
	k := tensor.New(steps, c.KVWidth)
	v := tensor.New(steps, c.KVWidth)
	for i := range k.Data {
		k.Data[i] = val
		v.Data[i] = -val
	}
	for l := 0; l < c.Layers; l++ {
		c.AppendSeq(l, s, k, v, steps)
	}
	c.AdvanceSeq(s, steps)
}

func TestPerSlotLengths(t *testing.T) {
	c := New(2, 4, 8, 4)
	fill(c, 0, 3, 1)
	fill(c, 2, 5, 2)
	for s, want := range []int{3, 0, 5, 0} {
		if got := c.SeqLen(s); got != want {
			t.Errorf("SeqLen(%d) = %d, want %d", s, got, want)
		}
	}
	if c.Len() != 5 {
		t.Errorf("Len() = %d, want max slot length 5", c.Len())
	}
	if got, want := c.UsedBytes(), 2*2*(3+5)*4*4; got != want {
		t.Errorf("UsedBytes = %d, want %d", got, want)
	}
	// Slot 0's data must be its own, not slot 2's.
	if got := c.Keys(0, 0).At(0, 0); got != 1 {
		t.Errorf("slot 0 key = %g, want 1", got)
	}
	if got := c.Keys(1, 2).At(4, 3); got != 2 {
		t.Errorf("slot 2 key = %g, want 2", got)
	}
}

func TestAllocRelease(t *testing.T) {
	c := New(1, 2, 4, 4)
	s0, ok := c.Alloc()
	if !ok || s0 != 0 {
		t.Fatalf("first alloc = %d, %v", s0, ok)
	}
	s1, ok := c.Alloc()
	if !ok || s1 != 1 {
		t.Fatalf("second alloc = %d, %v", s1, ok)
	}
	if _, ok := c.Alloc(); ok {
		t.Error("alloc on a full cache should fail")
	}
	if c.FreeSlots() != 0 {
		t.Errorf("FreeSlots = %d, want 0", c.FreeSlots())
	}
	fill(c, s0, 3, 7)
	if _, err := c.Release(s0); err != nil {
		t.Fatalf("release of allocated slot: %v", err)
	}
	if c.InUse(s0) || c.FreeSlots() != 1 {
		t.Error("release did not free the slot")
	}
	if c.SeqLen(s0) != 0 {
		t.Error("release did not reset the length")
	}
	// Eviction hygiene: the released slot's storage is zeroed.
	for p := 0; p < c.MaxLen; p++ {
		if c.K[0].At(s0*c.MaxLen+p, 0) != 0 {
			t.Fatalf("stale K data at position %d after release", p)
		}
	}
	// Reallocation reuses the freed slot.
	s, ok := c.Alloc()
	if !ok || s != s0 {
		t.Errorf("realloc = %d, %v; want %d", s, ok, s0)
	}
}

func TestReleaseDoesNotTouchNeighbors(t *testing.T) {
	c := New(2, 3, 4, 4)
	fill(c, 0, 2, 5)
	fill(c, 1, 3, 6)
	fill(c, 2, 1, 7)
	c.ResetSeq(1)
	if c.SeqLen(0) != 2 || c.SeqLen(2) != 1 {
		t.Error("reset of slot 1 changed neighbor lengths")
	}
	if got := c.Keys(0, 0).At(1, 2); got != 5 {
		t.Errorf("slot 0 data corrupted: %g", got)
	}
	if got := c.Values(1, 2).At(0, 0); got != -7 {
		t.Errorf("slot 2 data corrupted: %g", got)
	}
}

func TestAppendSeqShapePanics(t *testing.T) {
	c := New(1, 2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	c.AppendSeq(0, 0, tensor.New(2, 4), tensor.New(2, 4), 1) // want 1 row
}

func TestAppendSeqOverflowPanics(t *testing.T) {
	c := New(1, 2, 2, 4)
	fill(c, 1, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	c.AppendSeq(0, 1, tensor.New(1, 4), tensor.New(1, 4), 1)
}

func TestSlotOutOfRangePanics(t *testing.T) {
	c := New(1, 2, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected range panic")
		}
	}()
	c.SeqLen(2)
}

// Regression: releasing a slot twice (or one never allocated) must be an
// error, not a silent success. With reference-counted prefix blocks a
// double release would drop a shared refcount twice and free a prefix other
// slots still alias.
func TestDoubleReleaseIsError(t *testing.T) {
	c := New(1, 2, 4, 4)
	if _, err := c.Release(0); err == nil {
		t.Error("release of never-allocated slot succeeded")
	}
	s, ok := c.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	fill(c, s, 2, 3)
	if _, err := c.Release(s); err != nil {
		t.Fatalf("first release: %v", err)
	}
	if _, err := c.Release(s); err == nil {
		t.Error("double release succeeded silently")
	}
	// The failed second release must not have re-zeroed or re-freed
	// anything a new occupant relies on.
	s2, ok := c.Alloc()
	if !ok || s2 != s {
		t.Fatalf("realloc after double-release attempt: slot %d ok=%v", s2, ok)
	}
	fill(c, s2, 1, 9)
	if got := c.Keys(0, s2).At(0, 0); got != 9 {
		t.Errorf("slot content after realloc = %g, want 9", got)
	}
}
