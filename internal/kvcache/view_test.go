package kvcache

import (
	"math/rand"
	"testing"

	"esti/internal/tensor"
)

// ViewK/ViewV are the zero-copy two-segment views the fused attention
// kernel walks. They must agree row-for-row with the materializing
// RowsK/RowsV across no-prefix, prefix-only, and prefix+suffix ranges, and
// must alias live storage rather than copy it.
func TestViewsMatchRowsAcrossPrefixStates(t *testing.T) {
	const layers, width, maxLen = 2, 4, 8
	store := NewPrefixStore(layers, width, 0)
	c := New(layers, 2, maxLen, width)

	// Build a 3-token shared prefix.
	pk := make([]*tensor.Mat, layers)
	pv := make([]*tensor.Mat, layers)
	for l := 0; l < layers; l++ {
		pk[l] = tensor.New(3, width)
		pv[l] = tensor.New(3, width)
		for i := range pk[l].Data {
			pk[l].Data[i] = float32(100*l + i)
			pv[l].Data[i] = -float32(100*l + i)
		}
	}
	p, err := store.Insert([]int{1, 2, 3}, pk, pv)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachPrefix(1, p); err != nil {
		t.Fatal(err)
	}

	// Private suffix on both slots.
	rnd := rand.New(rand.NewSource(5))
	for l := 0; l < layers; l++ {
		k := tensor.New(2, width).FillRand(rnd, 1)
		v := tensor.New(2, width).FillRand(rnd, 1)
		c.AppendSeq(l, 0, k, v, 2)
		c.AppendSeq(l, 1, k, v, 2)
	}
	c.AdvanceSeq(0, 2)
	c.AdvanceSeq(1, 2)

	check := func(slot, total int) {
		t.Helper()
		for l := 0; l < layers; l++ {
			preK, privK := c.ViewK(l, slot, total)
			preV, privV := c.ViewV(l, slot, total)
			wantK := c.RowsK(l, slot, total)
			wantV := c.RowsV(l, slot, total)
			if preK.Rows+privK.Rows != total {
				t.Fatalf("slot %d total %d: segments cover %d+%d rows",
					slot, total, preK.Rows, privK.Rows)
			}
			for r := 0; r < total; r++ {
				var gotK, gotV []float32
				if r < preK.Rows {
					gotK, gotV = preK.Row(r), preV.Row(r)
				} else {
					gotK, gotV = privK.Row(r-preK.Rows), privV.Row(r-preK.Rows)
				}
				for j := 0; j < width; j++ {
					if gotK[j] != wantK.At(r, j) || gotV[j] != wantV.At(r, j) {
						t.Fatalf("slot %d layer %d row %d col %d: view (%g,%g) vs rows (%g,%g)",
							slot, l, r, j, gotK[j], gotV[j], wantK.At(r, j), wantV.At(r, j))
					}
				}
			}
		}
	}
	check(0, 2) // no prefix
	check(1, 2) // inside the prefix only
	check(1, 5) // prefix + suffix
	check(1, 3) // exactly the prefix boundary
	check(0, 0) // empty range
	check(1, 0) // empty range with prefix attached
	if got := c.SeqLen(1); got != 5 {
		t.Fatalf("slot 1 len %d", got)
	}

	// Zero-copy: mutating through the private view must hit the cache.
	_, priv := c.ViewK(0, 0, 2)
	priv.Set(0, 0, 123)
	if got := c.RowsK(0, 0, 2).At(0, 0); got != 123 {
		t.Errorf("private view did not alias storage (got %g)", got)
	}
	// The prefix segment aliases the store's single copy (read-only by
	// convention, but the aliasing is the point).
	pre, _ := c.ViewK(0, 1, 3)
	if pre.Row(0)[0] != pk[0].At(0, 0) {
		t.Error("prefix view does not alias the store block")
	}

	// Insert returns an unreferenced entry (references come from Acquire),
	// so detaching is all the cleanup this test owes.
	if got := c.ResetSeq(1); got != p {
		t.Fatalf("ResetSeq detached %v, want the attached prefix", got)
	}
}

// Views must not allocate: the engine's decode hot path takes four per
// layer per slot.
func TestViewsDoNotAllocate(t *testing.T) {
	c := New(1, 1, 16, 4)
	k := tensor.New(2, 4)
	c.AppendSeq(0, 0, k, k, 2)
	c.AdvanceSeq(0, 2)
	if avg := testing.AllocsPerRun(100, func() {
		pre, priv := c.ViewK(0, 0, 2)
		_ = pre.Rows
		_ = priv.Rows
	}); avg != 0 {
		t.Errorf("ViewK allocates %v times", avg)
	}
}
