package kvcache

import (
	"math"
	"testing"

	"esti/internal/tensor"
)

// FuzzInt8AppendView hammers the quantize-at-append path with adversarial
// K/V values — including NaN and ±Inf bit patterns — and checks the
// documented clamping contract after every append: the round trip never
// panics, every stored per-row scale is finite and positive, and every
// dequantized read-back is finite (NaN quantizes as 0, ±Inf as the
// largest finite float32), so one poisoned projection row can never turn
// the cache into a NaN factory.
func FuzzInt8AppendView(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	// Exact float32 +Inf, -Inf and a NaN, little-endian.
	f.Add([]byte{0, 0, 0x80, 0x7f, 0, 0, 0x80, 0xff, 1, 0, 0xc0, 0x7f})
	f.Add([]byte{0xff, 0xff, 0x7f, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const layers, slots, maxLen, width = 2, 2, 4, 3
		c := NewInt8(layers, slots, maxLen, width)

		// Decode raw bytes as float32s, bit patterns included.
		vals := make([]float32, 0, len(raw)/4)
		for i := 0; i+4 <= len(raw); i += 4 {
			bits := uint32(raw[i]) | uint32(raw[i+1])<<8 | uint32(raw[i+2])<<16 | uint32(raw[i+3])<<24
			vals = append(vals, math.Float32frombits(bits))
		}
		if len(vals) == 0 {
			return
		}

		k := tensor.New(1, width)
		v := tensor.New(1, width)
		next := 0
		take := func() float32 {
			x := vals[next%len(vals)]
			next++
			return x
		}
		for s := 0; s < slots; s++ {
			for pos := 0; pos < maxLen; pos++ {
				for i := 0; i < width; i++ {
					k.Data[i] = take()
					v.Data[i] = take()
				}
				for l := 0; l < layers; l++ {
					c.AppendSeq(l, s, k, v, 1)
				}
				c.AdvanceSeq(s, 1)
			}
		}

		for s := 0; s < slots; s++ {
			for l := 0; l < layers; l++ {
				_, privK := c.ViewK8(l, s, c.SeqLen(s))
				_, privV := c.ViewV8(l, s, c.SeqLen(s))
				for _, sc := range privK.Scales {
					if !finitePositive(sc) {
						t.Fatalf("slot %d layer %d: K scale %g not finite-positive", s, l, sc)
					}
				}
				for _, sc := range privV.Scales {
					if !finitePositive(sc) {
						t.Fatalf("slot %d layer %d: V scale %g not finite-positive", s, l, sc)
					}
				}
				back := c.Keys(l, s)
				for i, x := range back.Data {
					if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
						t.Fatalf("slot %d layer %d: dequantized value %g at %d not finite", s, l, x, i)
					}
				}
			}
		}
	})
}

func finitePositive(s float32) bool {
	return s > 0 && !math.IsInf(float64(s), 0) && !math.IsNaN(float64(s))
}
