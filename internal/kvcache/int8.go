package kvcache

// Int8 KV storage. At large batch and long context the KV cache — not the
// weights — dominates per-chip memory and the decode step's memory traffic
// (§3.3, Figure 11; DeepSpeed Inference makes the same point for serving):
// halving cache bytes per token roughly doubles the servable context or
// batch per chip and cuts the attention walk's dominant HBM traffic. This
// file implements that storage mode behind the existing Cache API:
//
//   - Append/AppendSeq quantize each K/V row in place as it arrives — one
//     symmetric int8 scale per (slot, position) row, computed from the
//     row's own dynamic range (a token's projection, unlike a weight
//     column, has per-token statistics). Non-finite inputs are clamped by
//     quant.QuantizeRowInto, so stored scales are always finite.
//   - ViewK8/ViewV8 are the int8 twins of ViewK/ViewV: zero-copy
//     two-segment views (shared prefix + private suffix) the fused
//     attention walk dequantizes on the fly, one scale multiply per row.
//   - RowsK/RowsV still work — they materialize a dequantized float32 copy
//     for cold paths (prefix capture, tests); the hot path never calls
//     them.
//
// Because quantization happens at the cache boundary, everything upstream
// (projections, collectives, wire volume) is unchanged, and a
// dequantize→requantize round trip is lossless (the row max re-quantizes
// to ±127 under the same scale), so capturing a quantized slot into a
// quantized PrefixStore preserves the stored values bit for bit.

import (
	"fmt"

	"esti/internal/quant"
	"esti/internal/tensor"
)

// NewInt8 allocates an empty cache whose K/V storage is per-row-scaled
// int8. Same slot discipline and API as New; the attention walk must read
// it through ViewK8/ViewV8.
func NewInt8(layers, seqs, maxLen, kvWidth int) *Cache {
	c := newCommon(layers, seqs, maxLen, kvWidth)
	c.int8Mode = true
	c.k8 = make([][]int8, layers)
	c.v8 = make([][]int8, layers)
	c.kScale = make([][]float32, layers)
	c.vScale = make([][]float32, layers)
	for l := 0; l < layers; l++ {
		c.k8[l] = make([]int8, seqs*maxLen*kvWidth)
		c.v8[l] = make([]int8, seqs*maxLen*kvWidth)
		c.kScale[l] = make([]float32, seqs*maxLen)
		c.vScale[l] = make([]float32, seqs*maxLen)
	}
	return c
}

// Int8 reports whether the cache stores K/V quantized.
func (c *Cache) Int8() bool { return c.int8Mode }

// appendRow8 quantizes one K and one V row into storage row `dst`.
func (c *Cache) appendRow8(l, dst int, k, v []float32) {
	w := c.KVWidth
	c.kScale[l][dst] = quant.QuantizeRowInto(c.k8[l][dst*w:(dst+1)*w], k)
	c.vScale[l][dst] = quant.QuantizeRowInto(c.v8[l][dst*w:(dst+1)*w], v)
}

// resetSeq8 zeroes slot s's quantized rows and scales in every layer.
func (c *Cache) resetSeq8(s int) {
	w := c.KVWidth
	for l := 0; l < c.Layers; l++ {
		lo, hi := s*c.MaxLen, (s+1)*c.MaxLen
		vals := c.k8[l][lo*w : hi*w]
		for i := range vals {
			vals[i] = 0
		}
		vals = c.v8[l][lo*w : hi*w]
		for i := range vals {
			vals[i] = 0
		}
		zero(c.kScale[l][lo:hi])
		zero(c.vScale[l][lo:hi])
	}
}

// materializePrefix8 is MaterializePrefix's int8 path: quantized prefix
// rows and their scales are copied verbatim into private storage (no
// dequantize/requantize round trip), shifting the private suffix up.
func (c *Cache) materializePrefix8(s int, p *Prefix, pl int) {
	w := c.KVWidth
	for l := 0; l < c.Layers; l++ {
		base := s * c.MaxLen
		for t := c.lens[s] - 1; t >= 0; t-- {
			copy(c.k8[l][(base+pl+t)*w:(base+pl+t+1)*w], c.k8[l][(base+t)*w:(base+t+1)*w])
			copy(c.v8[l][(base+pl+t)*w:(base+pl+t+1)*w], c.v8[l][(base+t)*w:(base+t+1)*w])
			c.kScale[l][base+pl+t] = c.kScale[l][base+t]
			c.vScale[l][base+pl+t] = c.vScale[l][base+t]
		}
		for t := 0; t < pl; t++ {
			copy(c.k8[l][(base+t)*w:(base+t+1)*w], p.k8[l][t*w:(t+1)*w])
			copy(c.v8[l][(base+t)*w:(base+t+1)*w], p.v8[l][t*w:(t+1)*w])
			c.kScale[l][base+t] = p.kScale[l][t]
			c.vScale[l][base+t] = p.vScale[l][t]
		}
	}
}

// ViewK8 returns zero-copy quantized views of slot s's K rows covering
// positions [0, total): the shared-prefix segment (zero rows when no
// prefix is attached) followed by the slot's private segment, each with
// one scale per row. Both views alias live storage and are returned by
// value, so the int8 attention walk runs with no copy and no allocation —
// the quantized twin of ViewK. As there, total may extend past the
// committed SeqLen into rows appended mid-pass. Panics on a float32 cache.
func (c *Cache) ViewK8(l, s, total int) (pre, priv quant.Int8Rows) {
	return c.segments8(l, s, total, true)
}

// ViewV8 is ViewK8 for the V tensor.
func (c *Cache) ViewV8(l, s, total int) (pre, priv quant.Int8Rows) {
	return c.segments8(l, s, total, false)
}

func (c *Cache) segments8(l, s, total int, wantK bool) (pre, priv quant.Int8Rows) {
	if !c.int8Mode {
		panic("kvcache: ViewK8/ViewV8 on a float32 cache; use ViewK/ViewV")
	}
	c.checkSlot(s)
	if total < 0 || total > c.MaxLen {
		panic(fmt.Sprintf("kvcache: slot %d row range %d out of capacity %d", s, total, c.MaxLen))
	}
	w := c.KVWidth
	vals, scales := c.k8, c.kScale
	if !wantK {
		vals, scales = c.v8, c.vScale
	}
	pl := 0
	if p := c.pfx[s]; p != nil {
		pv, ps := p.k8, p.kScale
		if !wantK {
			pv, ps = p.v8, p.vScale
		}
		pl = p.Len()
		if pl > total {
			pl = total
		}
		pre = quant.Int8Rows{Rows: pl, Cols: w, Data: pv[l][:pl*w], Scales: ps[l][:pl]}
	} else {
		pre = quant.Int8Rows{Cols: w}
	}
	n := total - pl
	base := s * c.MaxLen
	priv = quant.Int8Rows{Rows: n, Cols: w,
		Data: vals[l][base*w : (base+n)*w], Scales: scales[l][base : base+n]}
	return pre, priv
}

// rows8 materializes positions [0, total) of slot s as a dequantized
// float32 matrix — the int8 mode's RowsK/RowsV. Unlike the float32 mode
// this always copies (the backing storage is not float32), which is fine
// for its callers: prefix capture and tests, never the attention walk.
func (c *Cache) rows8(l, s, total int, wantK bool) *tensor.Mat {
	pre, priv := c.segments8(l, s, total, wantK)
	out := tensor.New(total, c.KVWidth)
	for t := 0; t < pre.Rows; t++ {
		quant.DequantizeRowInto(out.Row(t), pre.Row(t), pre.Scales[t])
	}
	for t := 0; t < priv.Rows; t++ {
		quant.DequantizeRowInto(out.Row(pre.Rows+t), priv.Row(t), priv.Scales[t])
	}
	return out
}

func storageName(int8Mode bool) string {
	if int8Mode {
		return "int8"
	}
	return "float32"
}
