package kvcache

import (
	"testing"

	"esti/internal/tensor"
)

// prefixBlocks builds per-layer [n, width] K/V blocks whose first column at
// position p is val+p (K) and -(val+p) (V).
func prefixBlocks(layers, n, width int, val float32) (k, v []*tensor.Mat) {
	k = make([]*tensor.Mat, layers)
	v = make([]*tensor.Mat, layers)
	for l := 0; l < layers; l++ {
		k[l] = tensor.New(n, width)
		v[l] = tensor.New(n, width)
		for p := 0; p < n; p++ {
			for i := 0; i < width; i++ {
				k[l].Row(p)[i] = val + float32(p)
				v[l].Row(p)[i] = -(val + float32(p))
			}
		}
	}
	return k, v
}

func TestPrefixStoreLongestMatch(t *testing.T) {
	ps := NewPrefixStore(2, 4, 0)
	k, v := prefixBlocks(2, 3, 4, 10)
	if _, err := ps.Insert([]int{1, 2, 3}, k, v); err != nil {
		t.Fatal(err)
	}
	k5, v5 := prefixBlocks(2, 5, 4, 20)
	if _, err := ps.Insert([]int{1, 2, 3, 4, 5}, k5, v5); err != nil {
		t.Fatal(err)
	}

	// Longest match wins; an interior entry is found when the walk falls
	// short of the longer one.
	p, n := ps.Acquire([]int{1, 2, 3, 4, 5, 6, 7})
	if p == nil || n != 5 {
		t.Fatalf("acquire = %v len %d, want the 5-token entry", p, n)
	}
	if p.K[1].At(4, 0) != 24 {
		t.Errorf("acquired wrong block: K[1][4][0] = %g, want 24", p.K[1].At(4, 0))
	}
	p3, n3 := ps.Acquire([]int{1, 2, 3, 9})
	if p3 == nil || n3 != 3 {
		t.Fatalf("acquire = %v len %d, want the interior 3-token entry", p3, n3)
	}
	if _, n0 := ps.Acquire([]int{2, 1}); n0 != 0 {
		t.Errorf("miss returned length %d", n0)
	}

	st := ps.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.HitTokens != 8 {
		t.Errorf("stats = %+v, want 2 hits (8 tokens), 1 miss", st)
	}
	if st.Entries != 2 || st.Bytes != 2*2*(3+5)*4*4 {
		t.Errorf("residency = %d entries, %d bytes", st.Entries, st.Bytes)
	}
}

func TestPrefixStoreRefcounting(t *testing.T) {
	ps := NewPrefixStore(1, 2, 0)
	k, v := prefixBlocks(1, 2, 2, 1)
	p, err := ps.Insert([]int{7, 8}, k, v)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := ps.Acquire([]int{7, 8})
	a2, _ := ps.Acquire([]int{7, 8, 9})
	if a1 != p || a2 != p {
		t.Fatal("acquires returned different entries for the same prefix")
	}
	if p.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", p.Refs())
	}
	if err := ps.Evict(p); err == nil {
		t.Error("evict of a referenced prefix succeeded")
	}
	if err := ps.Release(p); err != nil {
		t.Fatal(err)
	}
	if err := ps.Release(p); err != nil {
		t.Fatal(err)
	}
	// The double-release pathology the refcounted store must reject.
	if err := ps.Release(p); err == nil {
		t.Error("release below zero succeeded")
	}
	if err := ps.Evict(p); err != nil {
		t.Fatalf("evict of unreferenced prefix: %v", err)
	}
	if ps.Entries() != 0 || ps.Bytes() != 0 {
		t.Errorf("store not empty after evict: %d entries, %d bytes", ps.Entries(), ps.Bytes())
	}
	if got, _ := ps.Acquire([]int{7, 8}); got != nil {
		t.Error("evicted prefix still acquirable")
	}
}

func TestPrefixStoreLRUEvictionUnderBudget(t *testing.T) {
	const layers, width = 1, 2
	entryBytes := 2 * layers * 2 * width * 4 // two-token entries
	ps := NewPrefixStore(layers, width, 2*entryBytes)

	k, v := prefixBlocks(layers, 2, width, 1)
	pa, _ := ps.Insert([]int{1, 1}, k, v)
	pb, _ := ps.Insert([]int{2, 2}, k, v)
	// Touch A so B becomes LRU, then pin nothing and insert C: B evicts.
	ps.Acquire([]int{1, 1})
	ps.Release(pa)
	if _, err := ps.Insert([]int{3, 3}, k, v); err != nil {
		t.Fatal(err)
	}
	if got, _ := ps.Acquire([]int{2, 2}); got != nil {
		t.Error("LRU entry survived over-budget insert")
	}
	if got, _ := ps.Acquire([]int{1, 1}); got != pa {
		t.Error("recently used entry was evicted")
	}
	ps.Release(pa)
	_ = pb

	// A referenced entry is pinned: with both residents referenced, a new
	// insert that cannot fit is refused outright.
	p1, _ := ps.Acquire([]int{1, 1})
	p3, _ := ps.Acquire([]int{3, 3})
	if _, err := ps.Insert([]int{4, 4}, k, v); err == nil {
		t.Error("insert succeeded with no evictable entry and no budget")
	}
	if ps.Entries() != 2 {
		t.Errorf("failed insert left %d entries", ps.Entries())
	}
	ps.Release(p1)
	ps.Release(p3)

	// An entry bigger than the whole budget can never be stored.
	kBig, vBig := prefixBlocks(layers, 9, width, 5)
	if _, err := ps.Insert([]int{9, 9, 9, 9, 9, 9, 9, 9, 9}, kBig, vBig); err == nil {
		t.Error("insert beyond total budget succeeded")
	}
}

func TestPrefixStoreShapeValidation(t *testing.T) {
	ps := NewPrefixStore(2, 4, 0)
	k, v := prefixBlocks(1, 3, 4, 1) // wrong layer count
	if _, err := ps.Insert([]int{1, 2, 3}, k, v); err == nil {
		t.Error("layer-count mismatch accepted")
	}
	k2, v2 := prefixBlocks(2, 3, 5, 1) // wrong width
	if _, err := ps.Insert([]int{1, 2, 3}, k2, v2); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := ps.Insert(nil, nil, nil); err == nil {
		t.Error("empty prefix accepted")
	}
	// Duplicate insert returns the existing entry rather than re-storing.
	k3, v3 := prefixBlocks(2, 3, 4, 1)
	p1, _ := ps.Insert([]int{1, 2, 3}, k3, v3)
	p2, err := ps.Insert([]int{1, 2, 3}, k3, v3)
	if err != nil || p1 != p2 {
		t.Errorf("duplicate insert: %v, same=%v", err, p1 == p2)
	}
	if ps.Entries() != 1 {
		t.Errorf("duplicate insert changed residency: %d entries", ps.Entries())
	}
}

// An attached slot must read prefix rows then private rows, report the
// combined SeqLen, and append past the prefix boundary — the aliasing the
// engine's cached admission path relies on.
func TestCacheAttachPrefix(t *testing.T) {
	const layers, slots, maxLen, width = 2, 2, 6, 4
	c := New(layers, slots, maxLen, width)
	ps := NewPrefixStore(layers, width, 0)
	k, v := prefixBlocks(layers, 3, width, 100)
	if _, err := ps.Insert([]int{5, 6, 7}, k, v); err != nil {
		t.Fatal(err)
	}
	p, n := ps.Acquire([]int{5, 6, 7, 8})
	if n != 3 {
		t.Fatalf("acquired %d tokens, want 3", n)
	}
	if err := c.AttachPrefix(0, p); err != nil {
		t.Fatal(err)
	}
	if c.SeqLen(0) != 3 || c.PrefixLen(0) != 3 {
		t.Fatalf("attached slot len %d prefix %d, want 3/3", c.SeqLen(0), c.PrefixLen(0))
	}
	// Attach over a non-empty slot must fail.
	fill(c, 1, 1, 50)
	if err := c.AttachPrefix(1, p); err == nil {
		t.Error("attach over non-empty slot succeeded")
	}
	if err := c.AttachPrefix(0, p); err == nil {
		t.Error("second attach over prefixed slot succeeded")
	}

	// Private suffix appends start at position 3.
	fill(c, 0, 2, 200)
	if c.SeqLen(0) != 5 {
		t.Fatalf("len after suffix = %d, want 5", c.SeqLen(0))
	}
	keys := c.Keys(1, 0)
	wantFirstCol := []float32{100, 101, 102, 200, 200}
	for pos, want := range wantFirstCol {
		if got := keys.At(pos, 0); got != want {
			t.Errorf("keys[%d][0] = %g, want %g", pos, got, want)
		}
	}
	vals := c.Values(0, 0)
	if vals.At(1, 2) != -101 || vals.At(4, 1) != -200 {
		t.Errorf("values view wrong: %g, %g", vals.At(1, 2), vals.At(4, 1))
	}
	// Capacity counts the prefix: 5 filled of 6, so a 2-step append panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected overflow panic past prefix+private capacity")
			}
		}()
		c.AppendSeq(0, 0, tensor.New(2, width), tensor.New(2, width), 2)
	}()

	// UsedBytes counts only the private suffix — the aliased prefix is
	// resident once, in the store.
	if got, want := c.UsedBytes(), 2*layers*(2+1)*width*4; got != want {
		t.Errorf("UsedBytes = %d, want %d (private rows only)", got, want)
	}

	// Reset detaches and hands the prefix back for refcount release.
	got := c.ResetSeq(0)
	if got != p {
		t.Fatal("ResetSeq did not return the attached prefix")
	}
	if err := ps.Release(got); err != nil {
		t.Fatal(err)
	}
	if p.Refs() != 0 {
		t.Errorf("refs = %d after release", p.Refs())
	}
	if c.SeqLen(0) != 0 || c.PrefixLen(0) != 0 {
		t.Error("reset slot still reports prefix content")
	}
}

// MaterializePrefix converts the alias into private rows: same content and
// SeqLen, but the store copy is no longer referenced — copy-on-divergence
// for a slot that must outlive its prefix's residency.
func TestCacheMaterializePrefix(t *testing.T) {
	const layers, maxLen, width = 2, 8, 4
	c := New(layers, 1, maxLen, width)
	ps := NewPrefixStore(layers, width, 0)
	k, v := prefixBlocks(layers, 3, width, 10)
	ps.Insert([]int{1, 2, 3}, k, v)
	p, _ := ps.Acquire([]int{1, 2, 3})
	if err := c.AttachPrefix(0, p); err != nil {
		t.Fatal(err)
	}
	fill(c, 0, 2, 77)

	before := c.Keys(0, 0).Clone()
	got := c.MaterializePrefix(0)
	if got != p {
		t.Fatal("materialize did not return the prefix")
	}
	ps.Release(got)
	if c.PrefixLen(0) != 0 || c.SeqLen(0) != 5 {
		t.Fatalf("materialized slot: prefix %d, len %d", c.PrefixLen(0), c.SeqLen(0))
	}
	after := c.Keys(0, 0)
	for pos := 0; pos < 5; pos++ {
		for i := 0; i < width; i++ {
			if before.At(pos, i) != after.At(pos, i) {
				t.Fatalf("content changed at [%d][%d]: %g -> %g",
					pos, i, before.At(pos, i), after.At(pos, i))
			}
		}
	}
	// Evicting the now-unreferenced prefix must not disturb the slot.
	if err := ps.Evict(p); err != nil {
		t.Fatal(err)
	}
	if c.Keys(0, 0).At(0, 0) != 10 {
		t.Error("slot lost materialized prefix content after store eviction")
	}
	// Materializing a prefix-free slot is a no-op.
	if c.MaterializePrefix(0) != nil {
		t.Error("materialize of plain slot returned a prefix")
	}
}

// Bulk Reset must hand back attached prefixes for refcount release, like
// ResetSeq/Release do — silently dropping them would pin the store copies
// forever.
func TestResetReturnsAttachedPrefixes(t *testing.T) {
	const layers, width = 1, 2
	c := New(layers, 3, 4, width)
	ps := NewPrefixStore(layers, width, 0)
	k, v := prefixBlocks(layers, 2, width, 1)
	ps.Insert([]int{1, 2}, k, v)
	p0, _ := ps.Acquire([]int{1, 2})
	p2, _ := ps.Acquire([]int{1, 2})
	c.AttachPrefix(0, p0)
	c.AttachPrefix(2, p2)

	detached := c.Reset()
	if len(detached) != 2 {
		t.Fatalf("Reset returned %d prefixes, want 2", len(detached))
	}
	for _, p := range detached {
		if err := ps.Release(p); err != nil {
			t.Fatal(err)
		}
	}
	if p0.Refs() != 0 {
		t.Errorf("refs = %d after releasing Reset's returns", p0.Refs())
	}
	if c.PrefixLen(0) != 0 || c.PrefixLen(2) != 0 {
		t.Error("Reset left prefixes attached")
	}
}
