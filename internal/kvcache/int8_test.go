package kvcache

import (
	"math"
	"math/rand"
	"testing"

	"esti/internal/tensor"
)

// Append→view round trip through the quantized storage: every
// reconstructed element is within half a quantization step of the
// original, where the step is the row's max magnitude over 127.
func TestInt8AppendRoundTrip(t *testing.T) {
	const layers, slots, maxLen, width = 2, 3, 8, 16
	rng := rand.New(rand.NewSource(5))
	c := NewInt8(layers, slots, maxLen, width)

	orig := map[[2]int]*tensor.Mat{} // (slot, layer) -> appended rows
	for s := 0; s < slots; s++ {
		steps := 1 + s
		for l := 0; l < layers; l++ {
			k := tensor.New(steps, width).FillRand(rng, float32(1+s))
			v := tensor.New(steps, width).FillRand(rng, 0.5)
			c.AppendSeq(l, s, k, v, steps)
			orig[[2]int{s, l}] = k
			_ = v
		}
		c.AdvanceSeq(s, steps)
	}
	for s := 0; s < slots; s++ {
		for l := 0; l < layers; l++ {
			k := orig[[2]int{s, l}]
			got := c.Keys(l, s)
			if got.Rows != k.Rows {
				t.Fatalf("slot %d layer %d: %d rows back, appended %d", s, l, got.Rows, k.Rows)
			}
			for r := 0; r < k.Rows; r++ {
				var maxAbs float64
				for _, v := range k.Row(r) {
					if a := math.Abs(float64(v)); a > maxAbs {
						maxAbs = a
					}
				}
				halfStep := maxAbs / 127 / 2
				for i, want := range k.Row(r) {
					if err := math.Abs(float64(got.At(r, i) - want)); err > halfStep+1e-7 {
						t.Fatalf("slot %d layer %d row %d col %d: error %g exceeds half step %g",
							s, l, r, i, err, halfStep)
					}
				}
			}
		}
	}
}

// The regression the ISSUE names: Bytes and UsedBytes must report the
// true backing bytes of the storage mode, not a float32 formula. The int8
// cache stores one byte per element plus a 4-byte scale per (position,
// tensor) row — ≤ 0.55× the float32 bytes at any realistic KV width.
func TestInt8BytesAccounting(t *testing.T) {
	const layers, slots, maxLen, width = 4, 2, 8, 16
	fp := New(layers, slots, maxLen, width)
	q8 := NewInt8(layers, slots, maxLen, width)

	wantQ8 := 2 * layers * slots * maxLen * (width + 4)
	if q8.Bytes() != wantQ8 {
		t.Errorf("int8 Bytes = %d, want %d", q8.Bytes(), wantQ8)
	}
	if ratio := float64(q8.Bytes()) / float64(fp.Bytes()); ratio > 0.55 {
		t.Errorf("int8 cache is %.3fx the float32 bytes, want <= 0.55x", ratio)
	}

	k := tensor.New(3, width)
	v := tensor.New(3, width)
	for l := 0; l < layers; l++ {
		q8.AppendSeq(l, 0, k, v, 3)
		fp.AppendSeq(l, 0, k, v, 3)
	}
	q8.AdvanceSeq(0, 3)
	fp.AdvanceSeq(0, 3)
	wantUsed := 2 * layers * 3 * (width + 4)
	if q8.UsedBytes() != wantUsed {
		t.Errorf("int8 UsedBytes = %d, want %d", q8.UsedBytes(), wantUsed)
	}
	if ratio := float64(q8.UsedBytes()) / float64(fp.UsedBytes()); ratio > 0.55 {
		t.Errorf("int8 UsedBytes is %.3fx the float32 bytes, want <= 0.55x", ratio)
	}
}

// An int8 store holds its blocks quantized: budget accounting runs in
// quantized units, the entries attach only to int8 caches, and the
// two-segment quantized views serve the prefix rows.
func TestInt8PrefixStore(t *testing.T) {
	const layers, width, n = 2, 8, 4
	rng := rand.New(rand.NewSource(9))
	k := make([]*tensor.Mat, layers)
	v := make([]*tensor.Mat, layers)
	for l := range k {
		k[l] = tensor.New(n, width).FillRand(rng, 1)
		v[l] = tensor.New(n, width).FillRand(rng, 1)
	}
	tokens := []int{3, 1, 4, 1}

	ps := NewPrefixStoreInt8(layers, width, 0)
	if !ps.Int8() {
		t.Fatal("store does not report int8 mode")
	}
	p, err := ps.Insert(tokens, k, v)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := 2 * layers * n * (width + 4)
	if p.Bytes() != wantBytes {
		t.Errorf("quantized prefix Bytes = %d, want %d", p.Bytes(), wantBytes)
	}
	if ps.Bytes() != wantBytes {
		t.Errorf("store Bytes = %d, want %d (quantized units)", ps.Bytes(), wantBytes)
	}

	// Mode mismatch is rejected in both directions.
	fpCache := New(layers, 1, 16, width)
	if err := fpCache.AttachPrefix(0, p); err == nil {
		t.Error("float32 cache accepted an int8 prefix")
	}
	fpStore := NewPrefixStore(layers, width, 0)
	pf, err := fpStore.Insert(tokens, k, v)
	if err != nil {
		t.Fatal(err)
	}
	q8 := NewInt8(layers, 1, 16, width)
	if err := q8.AttachPrefix(0, pf); err == nil {
		t.Error("int8 cache accepted a float32 prefix")
	}

	// Attach + append a suffix: the quantized views cover prefix then
	// private rows, and a dequantized read matches the source within the
	// per-row half step.
	if err := q8.AttachPrefix(0, p); err != nil {
		t.Fatal(err)
	}
	suffix := tensor.New(2, width).FillRand(rng, 1)
	for l := 0; l < layers; l++ {
		q8.AppendSeq(l, 0, suffix, suffix, 2)
	}
	q8.AdvanceSeq(0, 2)
	if q8.SeqLen(0) != n+2 {
		t.Fatalf("SeqLen = %d, want %d", q8.SeqLen(0), n+2)
	}
	pre, priv := q8.ViewK8(0, 0, n+2)
	if pre.Rows != n || priv.Rows != 2 {
		t.Fatalf("segments %d+%d rows, want %d+%d", pre.Rows, priv.Rows, n, 2)
	}
	back := q8.Keys(0, 0)
	for r := 0; r < n; r++ {
		for i := 0; i < width; i++ {
			if err := math.Abs(float64(back.At(r, i) - k[0].At(r, i))); err > 1.0/127+1e-6 {
				t.Fatalf("prefix row %d col %d: error %g", r, i, err)
			}
		}
	}

	// Materialize keeps content identical (bit-copied quantized rows).
	before := q8.Keys(1, 0).Clone()
	det := q8.MaterializePrefix(0)
	if det != p {
		t.Fatal("MaterializePrefix returned a different prefix")
	}
	if d := tensor.MaxAbsDiff(before, q8.Keys(1, 0)); d != 0 {
		t.Errorf("materialize changed slot contents by %g", d)
	}
	if q8.SeqLen(0) != n+2 || q8.PrefixLen(0) != 0 {
		t.Errorf("after materialize: SeqLen %d, PrefixLen %d", q8.SeqLen(0), q8.PrefixLen(0))
	}
}

// ResetSeq hygiene in int8 mode: values and scales of the released slot
// read back as zero while neighbors keep their content.
func TestInt8ResetSeqZeroes(t *testing.T) {
	const layers, slots, maxLen, width = 1, 2, 4, 8
	rng := rand.New(rand.NewSource(17))
	c := NewInt8(layers, slots, maxLen, width)
	k := tensor.New(2, width).FillRand(rng, 1)
	for s := 0; s < slots; s++ {
		c.AppendSeq(0, s, k, k, 2)
		c.AdvanceSeq(s, 2)
	}
	keep := c.Keys(0, 1).Clone()
	c.ResetSeq(0)
	if c.SeqLen(0) != 0 {
		t.Fatalf("SeqLen = %d after reset", c.SeqLen(0))
	}
	_, priv := c.ViewK8(0, 0, maxLen)
	for i, b := range priv.Data {
		if b != 0 {
			t.Fatalf("released slot value %d nonzero at %d", b, i)
		}
	}
	for i, s := range priv.Scales {
		if s != 0 {
			t.Fatalf("released slot scale %g nonzero at %d", s, i)
		}
	}
	if d := tensor.MaxAbsDiff(keep, c.Keys(0, 1)); d != 0 {
		t.Errorf("neighbor slot changed by %g", d)
	}
}

// Mode guards: the float32 views panic on an int8 cache and vice versa —
// a kernel reading the wrong format is a programming error, not data.
func TestViewModeGuards(t *testing.T) {
	fp := New(1, 1, 4, 8)
	q8 := NewInt8(1, 1, 4, 8)
	assertPanics(t, "ViewK on int8", func() { q8.ViewK(0, 0, 1) })
	assertPanics(t, "ViewK8 on float32", func() { fp.ViewK8(0, 0, 1) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
