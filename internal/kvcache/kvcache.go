// Package kvcache stores per-layer attention key/value tensors for
// autoregressive decoding. The cache is the central memory object of the
// paper's attention analysis: its per-chip footprint under head- versus
// batch-sharding is what decides maximum context length (Table 1) and
// decode memory time (Figure 8).
//
// The cache is organized as fixed-capacity *slots*, one per sequence, each
// with its own filled length. A static batch fills every slot in lockstep
// (Append/Advance); a continuous-batching scheduler instead allocates a
// slot per admitted request (Alloc), grows it independently
// (AppendSeq/AdvanceSeq), and releases it on completion (Release) so the
// next queued request can reuse the storage — the iteration-level reuse
// that keeps the decode batch full under heavy traffic.
package kvcache

import (
	"fmt"

	"esti/internal/tensor"
)

// Cache holds K and V for every layer over a fixed capacity of positions.
// Rows are (slot, position)-major: row = slot*MaxLen + pos. The slot
// dimension here is whatever slice of the logical batch the owner holds —
// the whole batch on the reference model, a shard on a batch-sharded chip.
type Cache struct {
	Layers  int
	Seqs    int // slots held by this cache (logical batch or a shard)
	MaxLen  int // capacity in positions per slot
	KVWidth int // KV heads × head dim

	lens []int  // positions currently filled, per slot
	used []bool // advisory slot-allocation map (Alloc/Release)

	K, V []*tensor.Mat // per layer: [Seqs*MaxLen, KVWidth]
}

// New allocates an empty cache. All slots start free and zero-length.
func New(layers, seqs, maxLen, kvWidth int) *Cache {
	c := &Cache{
		Layers: layers, Seqs: seqs, MaxLen: maxLen, KVWidth: kvWidth,
		lens: make([]int, seqs),
		used: make([]bool, seqs),
	}
	c.K = make([]*tensor.Mat, layers)
	c.V = make([]*tensor.Mat, layers)
	for l := 0; l < layers; l++ {
		c.K[l] = tensor.New(seqs*maxLen, kvWidth)
		c.V[l] = tensor.New(seqs*maxLen, kvWidth)
	}
	return c
}

func (c *Cache) checkSlot(s int) {
	if s < 0 || s >= c.Seqs {
		panic(fmt.Sprintf("kvcache: slot %d out of range [0,%d)", s, c.Seqs))
	}
}

// SeqLen returns the filled length of slot s.
func (c *Cache) SeqLen(s int) int {
	c.checkSlot(s)
	return c.lens[s]
}

// Len returns the maximum filled length over all slots. For the lockstep
// (static-batch) usage every slot has the same length, so this is "the"
// cache length; slot-based callers should use SeqLen.
func (c *Cache) Len() int {
	max := 0
	for _, l := range c.lens {
		if l > max {
			max = l
		}
	}
	return max
}

// Append writes `steps` new positions for every slot into layer l, each at
// that slot's current length. k and v are [Seqs*steps, KVWidth],
// slot-major. The caller commits the lengths once per layer sweep via
// Advance.
func (c *Cache) Append(l int, k, v *tensor.Mat, steps int) {
	if k.Rows != c.Seqs*steps || k.Cols != c.KVWidth {
		panic(fmt.Sprintf("kvcache: append shape %dx%d, want %dx%d",
			k.Rows, k.Cols, c.Seqs*steps, c.KVWidth))
	}
	for s := 0; s < c.Seqs; s++ {
		c.appendAt(l, s, k, v, s*steps, steps)
	}
}

// AppendSeq writes `steps` new positions for slot s only into layer l.
// k and v are [steps, KVWidth]. Commit with AdvanceSeq after all layers.
func (c *Cache) AppendSeq(l, s int, k, v *tensor.Mat, steps int) {
	c.checkSlot(s)
	if k.Rows != steps || k.Cols != c.KVWidth {
		panic(fmt.Sprintf("kvcache: append shape %dx%d, want %dx%d",
			k.Rows, k.Cols, steps, c.KVWidth))
	}
	c.appendAt(l, s, k, v, 0, steps)
}

// appendAt copies `steps` rows of k/v starting at source row `src` into
// slot s of layer l at the slot's current length.
func (c *Cache) appendAt(l, s int, k, v *tensor.Mat, src, steps int) {
	if c.lens[s]+steps > c.MaxLen {
		panic(fmt.Sprintf("kvcache: slot %d overflow: %d+%d > capacity %d",
			s, c.lens[s], steps, c.MaxLen))
	}
	for t := 0; t < steps; t++ {
		dst := s*c.MaxLen + c.lens[s] + t
		copy(c.K[l].Row(dst), k.Row(src+t))
		copy(c.V[l].Row(dst), v.Row(src+t))
	}
}

// Advance commits `steps` appended positions on every slot after all
// layers have written.
func (c *Cache) Advance(steps int) {
	for s := 0; s < c.Seqs; s++ {
		if c.lens[s]+steps > c.MaxLen {
			panic("kvcache: advance past capacity")
		}
	}
	for s := 0; s < c.Seqs; s++ {
		c.lens[s] += steps
	}
}

// AdvanceSeq commits `steps` appended positions on slot s.
func (c *Cache) AdvanceSeq(s, steps int) {
	c.checkSlot(s)
	if c.lens[s]+steps > c.MaxLen {
		panic("kvcache: advance past capacity")
	}
	c.lens[s] += steps
}

// Alloc finds a free slot, marks it in use, and returns it. The second
// return is false when every slot is occupied.
func (c *Cache) Alloc() (int, bool) {
	for s := 0; s < c.Seqs; s++ {
		if !c.used[s] {
			c.used[s] = true
			c.lens[s] = 0
			return s, true
		}
	}
	return -1, false
}

// Release evicts slot s: its length is reset, its storage zeroed (so stale
// K/V from the previous occupant can never leak into a new sequence), and
// the slot returns to the free pool.
func (c *Cache) Release(s int) {
	c.checkSlot(s)
	c.ResetSeq(s)
	c.used[s] = false
}

// InUse reports whether slot s is currently allocated.
func (c *Cache) InUse(s int) bool {
	c.checkSlot(s)
	return c.used[s]
}

// FreeSlots counts unallocated slots.
func (c *Cache) FreeSlots() int {
	n := 0
	for _, u := range c.used {
		if !u {
			n++
		}
	}
	return n
}

// ResetSeq empties slot s and zeroes its rows in every layer without
// touching neighboring slots.
func (c *Cache) ResetSeq(s int) {
	c.checkSlot(s)
	c.lens[s] = 0
	for l := 0; l < c.Layers; l++ {
		for t := 0; t < c.MaxLen; t++ {
			zero(c.K[l].Row(s*c.MaxLen + t))
			zero(c.V[l].Row(s*c.MaxLen + t))
		}
	}
}

func zero(row []float32) {
	for i := range row {
		row[i] = 0
	}
}

// Keys returns the filled K rows of slot s in layer l: [SeqLen(s), KVWidth].
func (c *Cache) Keys(l, s int) *tensor.Mat {
	c.checkSlot(s)
	return tensor.SliceRows(c.K[l], s*c.MaxLen, s*c.MaxLen+c.lens[s])
}

// Values returns the filled V rows of slot s in layer l.
func (c *Cache) Values(l, s int) *tensor.Mat {
	c.checkSlot(s)
	return tensor.SliceRows(c.V[l], s*c.MaxLen, s*c.MaxLen+c.lens[s])
}

// Bytes is the allocated footprint (float32 storage).
func (c *Cache) Bytes() int {
	return 2 * c.Layers * c.Seqs * c.MaxLen * c.KVWidth * 4
}

// UsedBytes is the footprint of filled positions only, summed over slots.
func (c *Cache) UsedBytes() int {
	total := 0
	for _, l := range c.lens {
		total += l
	}
	return 2 * c.Layers * total * c.KVWidth * 4
}

// Reset empties the cache without reallocating: every slot becomes free
// and zero-length. Storage is not zeroed (use ResetSeq/Release for
// eviction hygiene on live slots).
func (c *Cache) Reset() {
	for s := 0; s < c.Seqs; s++ {
		c.lens[s] = 0
		c.used[s] = false
	}
}
