// Package kvcache stores per-layer attention key/value tensors for
// autoregressive decoding. The cache is the central memory object of the
// paper's attention analysis: its per-chip footprint under head- versus
// batch-sharding is what decides maximum context length (Table 1) and
// decode memory time (Figure 8).
//
// The cache is organized as fixed-capacity *slots*, one per sequence, each
// with its own filled length. A static batch fills every slot in lockstep
// (Append/Advance); a continuous-batching scheduler instead allocates a
// slot per admitted request (Alloc), grows it independently
// (AppendSeq/AdvanceSeq), and releases it on completion (Release) so the
// next queued request can reuse the storage — the iteration-level reuse
// that keeps the decode batch full under heavy traffic.
//
// Slots can additionally alias a shared, reference-counted prefix block
// (prefix.go): positions [0, PrefixLen) are served from a PrefixStore's
// single copy while appends fill only the private suffix, so many requests
// carrying the same system prompt neither recompute nor re-store its K/V.
package kvcache

import (
	"fmt"

	"esti/internal/tensor"
)

// Cache holds K and V for every layer over a fixed capacity of positions.
// Rows are (slot, position)-major: row = slot*MaxLen + pos. The slot
// dimension here is whatever slice of the logical batch the owner holds —
// the whole batch on the reference model, a shard on a batch-sharded chip.
//
// Storage is either float32 (New) or per-row-scaled int8 (NewInt8, see
// int8.go): the int8 mode quantizes K/V at append and serves the attention
// walk through quantized views (ViewK8/ViewV8), halving cache bytes per
// position — the memory the paper shows binds maximum context (Table 1).
type Cache struct {
	Layers  int
	Seqs    int // slots held by this cache (logical batch or a shard)
	MaxLen  int // capacity in positions per slot
	KVWidth int // KV heads × head dim

	lens []int     // *private* positions currently filled, per slot
	used []bool    // advisory slot-allocation map (Alloc/Release)
	pfx  []*Prefix // attached shared prefix, per slot (nil = none)

	K, V []*tensor.Mat // per layer: [Seqs*MaxLen, KVWidth] (private rows; nil in int8 mode)

	// int8 mode (see int8.go): quantized values plus one scale per
	// (slot, position) row, per layer. Nil in float32 mode.
	int8Mode       bool
	k8, v8         [][]int8    // per layer: Seqs*MaxLen*KVWidth values
	kScale, vScale [][]float32 // per layer: Seqs*MaxLen row scales
}

// New allocates an empty float32 cache. All slots start free and
// zero-length.
func New(layers, seqs, maxLen, kvWidth int) *Cache {
	c := newCommon(layers, seqs, maxLen, kvWidth)
	c.K = make([]*tensor.Mat, layers)
	c.V = make([]*tensor.Mat, layers)
	for l := 0; l < layers; l++ {
		c.K[l] = tensor.New(seqs*maxLen, kvWidth)
		c.V[l] = tensor.New(seqs*maxLen, kvWidth)
	}
	return c
}

func newCommon(layers, seqs, maxLen, kvWidth int) *Cache {
	return &Cache{
		Layers: layers, Seqs: seqs, MaxLen: maxLen, KVWidth: kvWidth,
		lens: make([]int, seqs),
		used: make([]bool, seqs),
		pfx:  make([]*Prefix, seqs),
	}
}

func (c *Cache) checkSlot(s int) {
	if s < 0 || s >= c.Seqs {
		panic(fmt.Sprintf("kvcache: slot %d out of range [0,%d)", s, c.Seqs))
	}
}

// SeqLen returns the filled length of slot s: the attached shared prefix
// (if any) plus the slot's private positions. Everything downstream —
// attention depth, capacity checks, slot reporting — sees this total, so a
// prefix-attached slot behaves exactly like one whose prefix was prefilled
// privately.
func (c *Cache) SeqLen(s int) int {
	c.checkSlot(s)
	return c.prefixLen(s) + c.lens[s]
}

// PrefixLen returns the length of the shared prefix attached to slot s
// (0 when none).
func (c *Cache) PrefixLen(s int) int {
	c.checkSlot(s)
	return c.prefixLen(s)
}

func (c *Cache) prefixLen(s int) int {
	if p := c.pfx[s]; p != nil {
		return p.Len()
	}
	return 0
}

// AttachPrefix aliases slot s onto a shared prefix: the slot's positions
// [0, p.Len()) are served from the store's single copy, and subsequent
// appends write only the private suffix. The slot must be empty, and the
// prefix must match the cache's K/V width and fit its capacity. The caller
// (not the cache) owns the prefix's reference count.
func (c *Cache) AttachPrefix(s int, p *Prefix) error {
	c.checkSlot(s)
	if p == nil {
		return fmt.Errorf("kvcache: attach of nil prefix")
	}
	if c.lens[s] != 0 || c.pfx[s] != nil {
		return fmt.Errorf("kvcache: slot %d not empty (len %d, prefix %d)", s, c.lens[s], c.prefixLen(s))
	}
	if p.int8Mode != c.int8Mode {
		return fmt.Errorf("kvcache: prefix stored as %s, cache is %s (the attention walk reads one format)",
			storageName(p.int8Mode), storageName(c.int8Mode))
	}
	if p.layers != c.Layers {
		return fmt.Errorf("kvcache: prefix has %d layers, cache %d", p.layers, c.Layers)
	}
	if p.width != c.KVWidth {
		return fmt.Errorf("kvcache: prefix width %d, cache %d", p.width, c.KVWidth)
	}
	if p.Len() > c.MaxLen {
		return fmt.Errorf("kvcache: prefix of %d tokens exceeds slot capacity %d", p.Len(), c.MaxLen)
	}
	c.pfx[s] = p
	return nil
}

// DetachPrefix removes and returns slot s's shared prefix (nil if none).
// The slot's private suffix, if any, keeps its content but loses its first
// PrefixLen positions of context, so detaching a non-empty slot is only
// meaningful right before a reset; use MaterializePrefix to keep a live
// slot intact.
func (c *Cache) DetachPrefix(s int) *Prefix {
	c.checkSlot(s)
	p := c.pfx[s]
	c.pfx[s] = nil
	return p
}

// MaterializePrefix is the copy-on-divergence escape hatch: it copies the
// attached prefix's rows into slot s's private storage, shifting the private
// suffix up, and returns the detached prefix so the caller can release its
// reference. The slot's contents and SeqLen are unchanged; it simply no
// longer aliases the store, so the prefix becomes evictable.
func (c *Cache) MaterializePrefix(s int) *Prefix {
	c.checkSlot(s)
	p := c.pfx[s]
	if p == nil {
		return nil
	}
	pl := p.Len()
	if c.int8Mode {
		c.materializePrefix8(s, p, pl)
	} else {
		for l := 0; l < c.Layers; l++ {
			base := s * c.MaxLen
			// Private rows move up by pl; copy backwards so ranges may overlap.
			for t := c.lens[s] - 1; t >= 0; t-- {
				copy(c.K[l].Row(base+pl+t), c.K[l].Row(base+t))
				copy(c.V[l].Row(base+pl+t), c.V[l].Row(base+t))
			}
			for t := 0; t < pl; t++ {
				copy(c.K[l].Row(base+t), p.K[l].Row(t))
				copy(c.V[l].Row(base+t), p.V[l].Row(t))
			}
		}
	}
	c.lens[s] += pl
	c.pfx[s] = nil
	return p
}

// Len returns the maximum filled length over all slots. For the lockstep
// (static-batch) usage every slot has the same length, so this is "the"
// cache length; slot-based callers should use SeqLen.
func (c *Cache) Len() int {
	max := 0
	for _, l := range c.lens {
		if l > max {
			max = l
		}
	}
	return max
}

// Append writes `steps` new positions for every slot into layer l, each at
// that slot's current length. k and v are [Seqs*steps, KVWidth],
// slot-major. The caller commits the lengths once per layer sweep via
// Advance.
func (c *Cache) Append(l int, k, v *tensor.Mat, steps int) {
	if k.Rows != c.Seqs*steps || k.Cols != c.KVWidth {
		panic(fmt.Sprintf("kvcache: append shape %dx%d, want %dx%d",
			k.Rows, k.Cols, c.Seqs*steps, c.KVWidth))
	}
	for s := 0; s < c.Seqs; s++ {
		c.appendAt(l, s, k, v, s*steps, steps)
	}
}

// AppendSeq writes `steps` new positions for slot s only into layer l.
// k and v are [steps, KVWidth]. Commit with AdvanceSeq after all layers.
func (c *Cache) AppendSeq(l, s int, k, v *tensor.Mat, steps int) {
	c.checkSlot(s)
	if k.Rows != steps || k.Cols != c.KVWidth {
		panic(fmt.Sprintf("kvcache: append shape %dx%d, want %dx%d",
			k.Rows, k.Cols, steps, c.KVWidth))
	}
	c.appendAt(l, s, k, v, 0, steps)
}

// appendAt copies `steps` rows of k/v starting at source row `src` into
// slot s of layer l at the slot's current length. With a prefix attached,
// private storage starts at the prefix boundary, so writes land at the
// private length while capacity is checked on the total sequence length.
func (c *Cache) appendAt(l, s int, k, v *tensor.Mat, src, steps int) {
	if c.SeqLen(s)+steps > c.MaxLen {
		panic(fmt.Sprintf("kvcache: slot %d overflow: %d+%d > capacity %d",
			s, c.SeqLen(s), steps, c.MaxLen))
	}
	for t := 0; t < steps; t++ {
		dst := s*c.MaxLen + c.lens[s] + t
		if c.int8Mode {
			c.appendRow8(l, dst, k.Row(src+t), v.Row(src+t))
			continue
		}
		copy(c.K[l].Row(dst), k.Row(src+t))
		copy(c.V[l].Row(dst), v.Row(src+t))
	}
}

// Advance commits `steps` appended positions on every slot after all
// layers have written.
func (c *Cache) Advance(steps int) {
	for s := 0; s < c.Seqs; s++ {
		if c.SeqLen(s)+steps > c.MaxLen {
			panic("kvcache: advance past capacity")
		}
	}
	for s := 0; s < c.Seqs; s++ {
		c.lens[s] += steps
	}
}

// AdvanceSeq commits `steps` appended positions on slot s.
func (c *Cache) AdvanceSeq(s, steps int) {
	c.checkSlot(s)
	if c.SeqLen(s)+steps > c.MaxLen {
		panic("kvcache: advance past capacity")
	}
	c.lens[s] += steps
}

// Alloc finds a free slot, marks it in use, and returns it. The second
// return is false when every slot is occupied.
func (c *Cache) Alloc() (int, bool) {
	for s := 0; s < c.Seqs; s++ {
		if !c.used[s] {
			c.used[s] = true
			c.lens[s] = 0
			return s, true
		}
	}
	return -1, false
}

// Release evicts slot s: its length is reset, its storage zeroed (so stale
// K/V from the previous occupant can never leak into a new sequence), and
// the slot returns to the free pool. Releasing a slot that is not allocated
// — including releasing the same slot twice — is a scheduler bookkeeping
// bug and returns an error without touching the slot; with reference-
// counted prefix blocks a silent double release would decrement a shared
// refcount twice and free a prefix other slots still alias. The returned
// prefix is the slot's detached shared prefix (nil if none); the caller
// releases its store reference.
func (c *Cache) Release(s int) (*Prefix, error) {
	c.checkSlot(s)
	if !c.used[s] {
		return nil, fmt.Errorf("kvcache: release of slot %d, which is not allocated (double release?)", s)
	}
	p := c.ResetSeq(s)
	c.used[s] = false
	return p, nil
}

// InUse reports whether slot s is currently allocated.
func (c *Cache) InUse(s int) bool {
	c.checkSlot(s)
	return c.used[s]
}

// FreeSlots counts unallocated slots.
func (c *Cache) FreeSlots() int {
	n := 0
	for _, u := range c.used {
		if !u {
			n++
		}
	}
	return n
}

// ResetSeq empties slot s and zeroes its rows in every layer without
// touching neighboring slots. Any attached shared prefix is detached (its
// single stored copy is untouched) and returned so the caller can release
// its store reference.
func (c *Cache) ResetSeq(s int) *Prefix {
	c.checkSlot(s)
	c.lens[s] = 0
	p := c.DetachPrefix(s)
	if c.int8Mode {
		c.resetSeq8(s)
		return p
	}
	for l := 0; l < c.Layers; l++ {
		for t := 0; t < c.MaxLen; t++ {
			zero(c.K[l].Row(s*c.MaxLen + t))
			zero(c.V[l].Row(s*c.MaxLen + t))
		}
	}
	return p
}

func zero(row []float32) {
	for i := range row {
		row[i] = 0
	}
}

// Keys returns the filled K rows of slot s in layer l: [SeqLen(s), KVWidth],
// including any attached shared prefix.
func (c *Cache) Keys(l, s int) *tensor.Mat {
	return c.RowsK(l, s, c.SeqLen(s))
}

// Values returns the filled V rows of slot s in layer l.
func (c *Cache) Values(l, s int) *tensor.Mat {
	return c.RowsV(l, s, c.SeqLen(s))
}

// RowsK returns K rows for positions [0, total) of slot s in layer l. The
// range may extend past the committed SeqLen into rows already written by
// Append*/AppendSeq but not yet committed — the window attention reads
// mid-pass. Without an attached prefix (or when the range stays inside
// one) this is a zero-copy view of live storage; a range spanning both a
// prefix and the private suffix is materialized into a contiguous matrix.
// Kernels that must never copy or allocate use ViewK/ViewV instead.
func (c *Cache) RowsK(l, s, total int) *tensor.Mat {
	if c.int8Mode {
		// Cold-path reads of a quantized cache (prefix capture, tests)
		// materialize a dequantized copy; the hot path reads ViewK8.
		return c.rows8(l, s, total, true)
	}
	return c.rows(c.K, l, s, total, func(p *Prefix) []*tensor.Mat { return p.K })
}

// RowsV is RowsK for the V tensor.
func (c *Cache) RowsV(l, s, total int) *tensor.Mat {
	if c.int8Mode {
		return c.rows8(l, s, total, false)
	}
	return c.rows(c.V, l, s, total, func(p *Prefix) []*tensor.Mat { return p.V })
}

func (c *Cache) rows(store []*tensor.Mat, l, s, total int, side func(*Prefix) []*tensor.Mat) *tensor.Mat {
	c.checkSlot(s)
	if total < 0 || total > c.MaxLen {
		panic(fmt.Sprintf("kvcache: slot %d row range %d out of capacity %d", s, total, c.MaxLen))
	}
	p := c.pfx[s]
	if p == nil {
		v := tensor.RowsView(store[l], s*c.MaxLen, s*c.MaxLen+total)
		return &v
	}
	shared := side(p)
	pl := p.Len()
	if total <= pl {
		v := tensor.RowsView(shared[l], 0, total)
		return &v
	}
	out := tensor.New(total, c.KVWidth)
	for t := 0; t < pl; t++ {
		copy(out.Row(t), shared[l].Row(t))
	}
	for t := pl; t < total; t++ {
		copy(out.Row(t), store[l].Row(s*c.MaxLen+t-pl))
	}
	return out
}

// ViewK returns zero-copy views of slot s's K rows covering positions
// [0, total): the shared-prefix segment (zero rows when no prefix is
// attached) followed by the slot's private segment. Both views alias live
// storage and are returned by value so the attention hot loop can walk a
// slot's keys with no copy and no allocation. As with RowsK, total may
// extend past the committed SeqLen into rows appended mid-pass.
func (c *Cache) ViewK(l, s, total int) (pre, priv tensor.Mat) {
	return c.segments(c.K, l, s, total, func(p *Prefix) []*tensor.Mat { return p.K })
}

// ViewV is ViewK for the V tensor.
func (c *Cache) ViewV(l, s, total int) (pre, priv tensor.Mat) {
	return c.segments(c.V, l, s, total, func(p *Prefix) []*tensor.Mat { return p.V })
}

func (c *Cache) segments(store []*tensor.Mat, l, s, total int, side func(*Prefix) []*tensor.Mat) (pre, priv tensor.Mat) {
	if c.int8Mode {
		panic("kvcache: float32 ViewK/ViewV on an int8 cache; the fused walk reads ViewK8/ViewV8")
	}
	c.checkSlot(s)
	if total < 0 || total > c.MaxLen {
		panic(fmt.Sprintf("kvcache: slot %d row range %d out of capacity %d", s, total, c.MaxLen))
	}
	pl := 0
	if p := c.pfx[s]; p != nil {
		pl = p.Len()
		if pl > total {
			pl = total
		}
		pre = tensor.RowsView(side(p)[l], 0, pl)
	} else {
		pre = tensor.Mat{Cols: c.KVWidth}
	}
	priv = tensor.RowsView(store[l], s*c.MaxLen, s*c.MaxLen+total-pl)
	return pre, priv
}

// Bytes is the allocated footprint of the true backing storage: float32
// values in the default mode, int8 values plus one float32 scale per
// (position, tensor) row in int8 mode — just over a quarter of the
// float32 bytes per position (the analytic model's bf16 baseline makes it
// one half, the paper's Table 1 doubling).
func (c *Cache) Bytes() int {
	return 2 * c.Layers * c.Seqs * c.MaxLen * c.bytesPerRow()
}

// UsedBytes is the footprint of filled *private* positions only, summed
// over slots. Shared prefix rows are deliberately excluded: they live once
// in the PrefixStore no matter how many slots alias them, which is the
// memory saving prefix sharing exists for.
func (c *Cache) UsedBytes() int {
	total := 0
	for _, l := range c.lens {
		total += l
	}
	return 2 * c.Layers * total * c.bytesPerRow()
}

// bytesPerRow is the backing bytes of one stored K (or V) row: KVWidth
// float32s, or KVWidth int8s plus the row's float32 scale.
func (c *Cache) bytesPerRow() int {
	if c.int8Mode {
		return c.KVWidth + 4
	}
	return c.KVWidth * 4
}

// Reset empties the cache without reallocating: every slot becomes free
// and zero-length. Storage is not zeroed (use ResetSeq/Release for
// eviction hygiene on live slots). Attached shared prefixes are detached
// and returned so the caller can release their store references — dropping
// them would pin the prefixes in a budgeted store forever.
func (c *Cache) Reset() []*Prefix {
	var detached []*Prefix
	for s := 0; s < c.Seqs; s++ {
		c.lens[s] = 0
		c.used[s] = false
		if c.pfx[s] != nil {
			detached = append(detached, c.pfx[s])
			c.pfx[s] = nil
		}
	}
	return detached
}
