// Package kvcache stores per-layer attention key/value tensors for
// autoregressive decoding. The cache is the central memory object of the
// paper's attention analysis: its per-chip footprint under head- versus
// batch-sharding is what decides maximum context length (Table 1) and
// decode memory time (Figure 8).
package kvcache

import (
	"fmt"

	"esti/internal/tensor"
)

// Cache holds K and V for every layer over a fixed capacity of positions.
// Rows are (sequence, position)-major: row = seq*MaxLen + pos. The batch
// dimension here is whatever slice of the logical batch the owner holds —
// the whole batch on the reference model, a shard on a batch-sharded chip.
type Cache struct {
	Layers  int
	Seqs    int // sequences held by this cache (logical batch or a shard)
	MaxLen  int // capacity in positions per sequence
	KVWidth int // KV heads × head dim
	Len     int // positions currently filled (uniform across sequences)

	K, V []*tensor.Mat // per layer: [Seqs*MaxLen, KVWidth]
}

// New allocates an empty cache.
func New(layers, seqs, maxLen, kvWidth int) *Cache {
	c := &Cache{Layers: layers, Seqs: seqs, MaxLen: maxLen, KVWidth: kvWidth}
	c.K = make([]*tensor.Mat, layers)
	c.V = make([]*tensor.Mat, layers)
	for l := 0; l < layers; l++ {
		c.K[l] = tensor.New(seqs*maxLen, kvWidth)
		c.V[l] = tensor.New(seqs*maxLen, kvWidth)
	}
	return c
}

// Append writes `steps` new positions for every sequence into layer l.
// k and v are [Seqs*steps, KVWidth], sequence-major. The caller advances the
// shared length once per layer sweep via Advance.
func (c *Cache) Append(l int, k, v *tensor.Mat, steps int) {
	if k.Rows != c.Seqs*steps || k.Cols != c.KVWidth {
		panic(fmt.Sprintf("kvcache: append shape %dx%d, want %dx%d",
			k.Rows, k.Cols, c.Seqs*steps, c.KVWidth))
	}
	if c.Len+steps > c.MaxLen {
		panic(fmt.Sprintf("kvcache: overflow: %d+%d > capacity %d", c.Len, steps, c.MaxLen))
	}
	for s := 0; s < c.Seqs; s++ {
		for t := 0; t < steps; t++ {
			dst := s*c.MaxLen + c.Len + t
			src := s*steps + t
			copy(c.K[l].Row(dst), k.Row(src))
			copy(c.V[l].Row(dst), v.Row(src))
		}
	}
}

// Advance commits `steps` appended positions after all layers have written.
func (c *Cache) Advance(steps int) {
	if c.Len+steps > c.MaxLen {
		panic("kvcache: advance past capacity")
	}
	c.Len += steps
}

// Keys returns the filled K rows of sequence s in layer l: [Len, KVWidth].
func (c *Cache) Keys(l, s int) *tensor.Mat {
	return tensor.SliceRows(c.K[l], s*c.MaxLen, s*c.MaxLen+c.Len)
}

// Values returns the filled V rows of sequence s in layer l.
func (c *Cache) Values(l, s int) *tensor.Mat {
	return tensor.SliceRows(c.V[l], s*c.MaxLen, s*c.MaxLen+c.Len)
}

// Bytes is the allocated footprint (float32 storage).
func (c *Cache) Bytes() int {
	return 2 * c.Layers * c.Seqs * c.MaxLen * c.KVWidth * 4
}

// UsedBytes is the footprint of filled positions only.
func (c *Cache) UsedBytes() int {
	return 2 * c.Layers * c.Seqs * c.Len * c.KVWidth * 4
}

// Reset empties the cache without reallocating.
func (c *Cache) Reset() { c.Len = 0 }
