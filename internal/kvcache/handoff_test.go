package kvcache

import (
	"math/rand"
	"testing"

	"esti/internal/tensor"
)

// fillSlot appends n random rows to slot s across every layer and commits.
func fillSlot(c *Cache, s, n int, rng *rand.Rand) {
	for t := 0; t < n; t++ {
		k := tensor.New(1, c.KVWidth)
		v := tensor.New(1, c.KVWidth)
		for i := range k.Data {
			k.Data[i] = rng.Float32()*4 - 2
			v.Data[i] = rng.Float32()*4 - 2
		}
		for l := 0; l < c.Layers; l++ {
			c.AppendSeq(l, s, k, v, 1)
		}
		c.AdvanceSeq(s, 1)
	}
}

func matsEqual(t *testing.T, name string, a, b *tensor.Mat) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s shape %dx%d vs %dx%d", name, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for r := 0; r < a.Rows; r++ {
		ra, rb := a.Row(r), b.Row(r)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s row %d col %d: %g vs %g", name, r, i, ra[i], rb[i])
			}
		}
	}
}

func TestExportImportFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := New(2, 3, 16, 8)
	fillSlot(src, 1, 5, rng)
	fillSlot(src, 0, 3, rng) // neighbor noise: must not leak into the block

	b, err := src.ExportSeq(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len != 5 || b.Layers != 2 || b.Width != 8 || b.Int8 {
		t.Fatalf("block %+v", b)
	}
	wantBytes := 2 * 2 * 5 * 8 * 4
	if b.Bytes() != wantBytes {
		t.Errorf("Bytes = %d, want %d", b.Bytes(), wantBytes)
	}

	dst := New(2, 2, 16, 8)
	if err := dst.ImportSeq(0, b); err != nil {
		t.Fatal(err)
	}
	if dst.SeqLen(0) != 5 {
		t.Fatalf("imported SeqLen = %d", dst.SeqLen(0))
	}
	for l := 0; l < 2; l++ {
		matsEqual(t, "K", src.RowsK(l, 1, 5), dst.RowsK(l, 0, 5))
		matsEqual(t, "V", src.RowsV(l, 1, 5), dst.RowsV(l, 0, 5))
	}

	// The block is a deep copy: releasing the source slot must not corrupt
	// the imported rows.
	src.ResetSeq(1)
	if dst.RowsK(0, 0, 5).At(4, 0) == 0 && dst.RowsK(0, 0, 5).At(4, 1) == 0 {
		t.Error("imported rows zeroed by source reset — block aliased live storage")
	}
}

func TestExportImportInt8BitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := NewInt8(3, 2, 12, 4)
	fillSlot(src, 0, 7, rng)

	b, err := src.ExportSeq(0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Int8 || b.Len != 7 {
		t.Fatalf("block %+v", b)
	}
	wantBytes := 2 * 3 * 7 * (4 + 4)
	if b.Bytes() != wantBytes {
		t.Errorf("Bytes = %d, want %d", b.Bytes(), wantBytes)
	}

	dst := NewInt8(3, 2, 12, 4)
	if err := dst.ImportSeq(1, b); err != nil {
		t.Fatal(err)
	}
	// Raw storage must match bit for bit: same quantized values, same
	// scales. Token-exact decode after handoff follows from this.
	w := src.KVWidth
	for l := 0; l < 3; l++ {
		for tk := 0; tk < 7; tk++ {
			srow, drow := 0*src.MaxLen+tk, 1*dst.MaxLen+tk
			for i := 0; i < w; i++ {
				if src.k8[l][srow*w+i] != dst.k8[l][drow*w+i] {
					t.Fatalf("layer %d tok %d k8[%d] differs", l, tk, i)
				}
				if src.v8[l][srow*w+i] != dst.v8[l][drow*w+i] {
					t.Fatalf("layer %d tok %d v8[%d] differs", l, tk, i)
				}
			}
			if src.kScale[l][srow] != dst.kScale[l][drow] || src.vScale[l][srow] != dst.vScale[l][drow] {
				t.Fatalf("layer %d tok %d scales differ", l, tk)
			}
		}
	}
}

func TestExportMaterializesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := New(2, 2, 16, 4)

	// Build a 4-token shared prefix and attach it to slot 0.
	fillSlot(src, 1, 4, rng)
	store := NewPrefixStore(2, 4, 0)
	k := make([]*tensor.Mat, 2)
	v := make([]*tensor.Mat, 2)
	for l := 0; l < 2; l++ {
		k[l] = src.RowsK(l, 1, 4).Clone()
		v[l] = src.RowsV(l, 1, 4).Clone()
	}
	p, err := store.Insert([]int{10, 11, 12, 13}, k, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AttachPrefix(0, p); err != nil {
		t.Fatal(err)
	}
	fillSlot(src, 0, 3, rng) // private suffix

	b, err := src.ExportSeq(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len != 7 {
		t.Fatalf("block Len = %d, want prefix+suffix = 7", b.Len)
	}

	// Import into a cache with no prefix store at all: the block carries the
	// prefix rows itself.
	dst := New(2, 1, 16, 4)
	if err := dst.ImportSeq(0, b); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 2; l++ {
		matsEqual(t, "K", src.RowsK(l, 0, 7), dst.RowsK(l, 0, 7))
		matsEqual(t, "V", src.RowsV(l, 0, 7), dst.RowsV(l, 0, 7))
	}
}

func TestImportValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := New(2, 1, 8, 4)
	fillSlot(src, 0, 3, rng)
	b, err := src.ExportSeq(0)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := New(2, 1, 8, 4).ExportSeq(0); err == nil {
		t.Error("export of empty slot should fail")
	}
	if err := New(2, 1, 8, 4).ImportSeq(0, nil); err == nil {
		t.Error("nil block import should fail")
	}
	if err := NewInt8(2, 1, 8, 4).ImportSeq(0, b); err == nil {
		t.Error("float block into int8 cache should fail")
	}
	if err := New(3, 1, 8, 4).ImportSeq(0, b); err == nil {
		t.Error("layer mismatch should fail")
	}
	if err := New(2, 1, 8, 8).ImportSeq(0, b); err == nil {
		t.Error("width mismatch should fail")
	}
	if err := New(2, 1, 2, 4).ImportSeq(0, b); err == nil {
		t.Error("capacity overflow should fail")
	}
	full := New(2, 1, 8, 4)
	fillSlot(full, 0, 1, rng)
	if err := full.ImportSeq(0, b); err == nil {
		t.Error("import into non-empty slot should fail")
	}
	// Happy path still works after all the failed attempts.
	dst := New(2, 1, 8, 4)
	if err := dst.ImportSeq(0, b); err != nil {
		t.Fatal(err)
	}
}
