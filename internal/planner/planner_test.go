package planner

import (
	"math"
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

func sys64() hardware.System { return hardware.TPUv4Slice(4, 4, 4) }

// Section 4.1's selection rule must emerge from the planner: prefill picks
// weight-stationary at small token counts and weight-gathered at large ones;
// decode always lands on 2D weight-stationary.
func TestPrefillLayoutSwitchesWithBatch(t *testing.T) {
	k := perf.DefaultKnobs()
	cfg := model.PaLM540BPadded()

	small, ok := ChoosePrefill(cfg, sys64(), model.BF16,
		Workload{Batch: 1, Context: 2048}, MinLatency, k)
	if !ok {
		t.Fatal("no feasible prefill layout at batch 1")
	}
	if small.FFN.WeightGathered() {
		t.Errorf("batch 1 prefill chose %v, want weight-stationary", small.FFN)
	}

	large, ok := ChoosePrefill(cfg, sys64(), model.BF16,
		Workload{Batch: 512, Context: 2048}, MinLatency, k)
	if !ok {
		t.Fatal("no feasible prefill layout at batch 512")
	}
	if !large.FFN.WeightGathered() {
		t.Errorf("batch 512 prefill chose %v, want weight-gathered", large.FFN)
	}
}

func TestDecodeChooses2DWS(t *testing.T) {
	k := perf.DefaultKnobs()
	dec, ok := ChooseDecode(model.PaLM540BPadded(), sys64(), model.BF16,
		Workload{Batch: 512, Context: 2048, Gen: 64}, MinLatency, k)
	if !ok {
		t.Fatal("no feasible decode layout")
	}
	if dec.FFN != partition.FFN2DWeightStationary {
		t.Errorf("decode chose %v, want WS 2D on 64 chips", dec.FFN)
	}
	if dec.Attn != partition.AttnShardBatch {
		t.Errorf("decode attention chose %v, want shard-batch for multiquery", dec.Attn)
	}
}

// For the multihead MT-NLG model, head sharding is the natural choice (KV
// already shards over its 128 heads, no all-to-all needed).
func TestDecodeMultiheadPrefersHeadSharding(t *testing.T) {
	k := perf.DefaultKnobs()
	dec, ok := ChooseDecode(model.MTNLG530B(), sys64(), model.BF16,
		Workload{Batch: 64, Context: 60, Gen: 20}, MinLatency, k)
	if !ok {
		t.Fatal("no feasible decode layout for MT-NLG")
	}
	if dec.Attn != partition.AttnShardHeads {
		t.Errorf("MT-NLG decode attention = %v, want shard-heads", dec.Attn)
	}
}

func TestMakePlanFeasibleAndConsistent(t *testing.T) {
	k := perf.DefaultKnobs()
	// Section 1's headline scenario: "process 64 tokens of text from a
	// user, consult a cached conversation history of 1920 tokens, and
	// generate a 64-token response in a total of 1.9 seconds" — batch 64,
	// 64 chips, int8, incremental prefill.
	p := Make(model.PaLM540BPadded(), sys64(), model.Int8,
		Workload{Batch: 64, Context: 64, Past: 1920, Gen: 64}, MinLatency, k)
	if !p.Feasible {
		t.Fatalf("plan infeasible: %s", p.Reason)
	}
	if got := p.Prefill.Result.Time + p.Decode.Result.Time; math.Abs(got-p.TotalLatency) > 1e-12 {
		t.Errorf("TotalLatency %g != prefill+decode %g", p.TotalLatency, got)
	}
	if p.TotalLatency < 1.2 || p.TotalLatency > 3.0 {
		t.Errorf("chatbot scenario total = %.2fs, want ~1.9s (1.2-3.0)", p.TotalLatency)
	}
}

func TestMakeInfeasibleWorkload(t *testing.T) {
	k := perf.DefaultKnobs()
	// 540B cannot fit on one chip.
	p := Make(model.PaLM540BPadded(), hardware.TPUv4Slice(1, 1, 1), model.BF16,
		Workload{Batch: 1, Context: 128, Gen: 8}, MinLatency, k)
	if p.Feasible {
		t.Error("540B on 1 chip should be infeasible")
	}
	if p.Reason == "" {
		t.Error("infeasible plan should carry a reason")
	}
}

func TestPrefillOnlyWorkload(t *testing.T) {
	k := perf.DefaultKnobs()
	p := Make(model.PaLM62B(), hardware.TPUv4Slice(2, 2, 2), model.BF16,
		Workload{Batch: 16, Context: 512}, MinLatency, k)
	if !p.Feasible {
		t.Fatalf("prefill-only plan infeasible: %s", p.Reason)
	}
	if p.Decode.Result.Time != 0 {
		t.Error("prefill-only workload should have zero decode time")
	}
}

func TestMinCostPrefersLargerEffectiveBatchEfficiency(t *testing.T) {
	k := perf.DefaultKnobs()
	w := Workload{Batch: 256, Context: 2048, Gen: 64}
	lat := Make(model.PaLM540BPadded(), sys64(), model.BF16, w, MinLatency, k)
	cost := Make(model.PaLM540BPadded(), sys64(), model.BF16, w, MinCost, k)
	if !lat.Feasible || !cost.Feasible {
		t.Fatal("plans infeasible")
	}
	if cost.Decode.Result.Cost > lat.Decode.Result.Cost+1e-12 {
		t.Error("min-cost plan has higher decode cost than min-latency plan")
	}
}

func TestBestSystemPicksReasonableTorus(t *testing.T) {
	k := perf.DefaultKnobs()
	p, ok := BestSystem(model.PaLM540BPadded(), hardware.TPUv4(), 64, model.Int8,
		Workload{Batch: 64, Context: 2048, Gen: 64}, MinLatency, k)
	if !ok {
		t.Fatal("no feasible system at 64 chips")
	}
	if p.System.Chips() != 64 {
		t.Errorf("system has %d chips, want 64", p.System.Chips())
	}
	// The analytic optimum for 2D WS has X ≈ sqrt(n)/2 = 4 at F = 4E;
	// accept X in {2,4,8} (the efficiency curve shifts it slightly).
	x := p.System.Torus.X
	if x != 2 && x != 4 && x != 8 {
		t.Errorf("chosen torus %v, want X near sqrt(64)/2", p.System.Torus)
	}
}

// Table 1: maximum context lengths at 30% HBM reserved for KV cache,
// 64 chips. Paper values: multihead 1320/330, baseline multiquery 660/165,
// optimized multiquery 43000/10700 (batch 128 / batch 512).
func TestTable1MaxContext(t *testing.T) {
	sys := sys64()
	cases := []struct {
		name   string
		cfg    model.Config
		layout partition.AttnLayout
		batch  int
		want   int
	}{
		{"multihead b128", model.PaLM540BMHA(), partition.AttnShardHeads, 128, 1320},
		{"multihead b512", model.PaLM540BMHA(), partition.AttnShardHeads, 512, 330},
		{"baseline MQ b128", model.PaLM540BPadded(), partition.AttnShardHeads, 128, 660},
		{"baseline MQ b512", model.PaLM540BPadded(), partition.AttnShardHeads, 512, 165},
		{"optimized MQ b128", model.PaLM540BPadded(), partition.AttnShardBatch, 128, 43000},
		{"optimized MQ b512", model.PaLM540BPadded(), partition.AttnShardBatch, 512, 10700},
	}
	for _, c := range cases {
		got := MaxContext(c.cfg, sys, c.layout, c.batch, 0.30)
		if math.Abs(float64(got-c.want))/float64(c.want) > 0.05 {
			t.Errorf("%s: max context = %d, want %d ± 5%%", c.name, got, c.want)
		}
	}
}

// The headline: optimized multiquery supports 32x the context of multihead
// and 64x the baseline multiquery layout.
func TestTable1Ratios(t *testing.T) {
	sys := sys64()
	opt := MaxContext(model.PaLM540BPadded(), sys, partition.AttnShardBatch, 512, 0.30)
	mha := MaxContext(model.PaLM540BMHA(), sys, partition.AttnShardHeads, 512, 0.30)
	base := MaxContext(model.PaLM540BPadded(), sys, partition.AttnShardHeads, 512, 0.30)
	if r := float64(opt) / float64(mha); r < 28 || r > 36 {
		t.Errorf("optimized/multihead context ratio = %.1f, want ~32", r)
	}
	if r := float64(opt) / float64(base); r < 56 || r > 72 {
		t.Errorf("optimized/baseline context ratio = %.1f, want ~64", r)
	}
}

func TestMaxContextDegenerate(t *testing.T) {
	if got := MaxContext(model.PaLM8B(), sys64(), partition.AttnShardBatch, 0, 0.3); got != 0 {
		t.Errorf("batch 0 max context = %d, want 0", got)
	}
}

func TestObjectiveString(t *testing.T) {
	if MinLatency.String() != "min-latency" || MinCost.String() != "min-cost" {
		t.Error("objective strings wrong")
	}
}

// The int8 KV cache doubles the servable context at every operating point
// — Table 1 with the cache quantized.
func TestMaxContextKVInt8Doubles(t *testing.T) {
	sys := sys64()
	for _, batch := range []int{128, 512} {
		bf := MaxContextKV(model.PaLM540BPadded(), sys, partition.AttnShardBatch, batch, 0.30, model.BF16)
		q8 := MaxContextKV(model.PaLM540BPadded(), sys, partition.AttnShardBatch, batch, 0.30, model.Int8)
		if bf < 1 {
			t.Fatalf("batch %d: degenerate bf16 max context %d", batch, bf)
		}
		if r := float64(q8) / float64(bf); r < 1.99 || r > 2.01 {
			t.Errorf("batch %d: int8/bf16 max context ratio = %.3f (%d vs %d), want 2",
				batch, r, q8, bf)
		}
	}
	// The dtype-less form is the bf16 reading.
	if MaxContext(model.PaLM540BPadded(), sys, partition.AttnShardBatch, 512, 0.30) !=
		MaxContextKV(model.PaLM540BPadded(), sys, partition.AttnShardBatch, 512, 0.30, model.BF16) {
		t.Error("MaxContext does not match MaxContextKV at BF16")
	}
}
