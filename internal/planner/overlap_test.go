package planner

import (
	"math"
	"testing"

	"esti/internal/model"
	"esti/internal/perf"
)

// Workload.Overlap overrides the caller's OverlapFrac for candidate costing
// — and because only the bandwidth component overlaps, the chosen decode
// layout's comm term pins to its hop floor instead of vanishing, keeping
// the predicted latency honest at small batch.
func TestWorkloadOverlapAppliedAndFloored(t *testing.T) {
	k := perf.DefaultKnobs()
	cfg := model.PaLM540BPadded()
	base := Workload{Batch: 8, Context: 2048, Gen: 64}

	plain, ok := ChooseDecode(cfg, sys64(), model.Int8, base, MinLatency, k)
	if !ok {
		t.Fatal("no feasible decode layout")
	}
	over := base
	over.Overlap = 1.0
	full, ok := ChooseDecode(cfg, sys64(), model.Int8, over, MinLatency, k)
	if !ok {
		t.Fatal("no feasible decode layout with overlap")
	}
	if full.Result.Time >= plain.Result.Time {
		t.Errorf("full overlap did not reduce predicted decode time: %g vs %g",
			full.Result.Time, plain.Result.Time)
	}
	b := full.Result.Breakdown
	if b.Comm <= 0 || b.CommFloor <= 0 {
		t.Fatalf("overlapped candidate lost its comm floor: Comm %g, CommFloor %g", b.Comm, b.CommFloor)
	}
	if math.Abs(b.Comm-b.CommFloor)/b.CommFloor > 1e-9 {
		t.Errorf("full overlap should pin the winning candidate's Comm (%g) to its floor (%g)",
			b.Comm, b.CommFloor)
	}

	// An explicit knob set by the caller is preserved when Overlap is zero.
	k2 := k
	k2.OverlapFrac = 0.5
	half, ok := ChooseDecode(cfg, sys64(), model.Int8, base, MinLatency, k2)
	if !ok {
		t.Fatal("no feasible decode layout at caller overlap 0.5")
	}
	if half.Result.Time > plain.Result.Time {
		t.Errorf("caller-set overlap 0.5 increased predicted time: %g vs %g",
			half.Result.Time, plain.Result.Time)
	}
}

// Make threads the workload's overlap into both phases.
func TestMakeAppliesWorkloadOverlap(t *testing.T) {
	k := perf.DefaultKnobs()
	cfg := model.PaLM540BPadded()
	w := Workload{Batch: 8, Context: 2048, Gen: 64}
	plain := Make(cfg, sys64(), model.Int8, w, MinLatency, k)
	w.Overlap = 1.0
	over := Make(cfg, sys64(), model.Int8, w, MinLatency, k)
	if !plain.Feasible || !over.Feasible {
		t.Fatalf("plans infeasible: %v / %v", plain.Reason, over.Reason)
	}
	if over.TotalLatency >= plain.TotalLatency {
		t.Errorf("overlap 1.0 did not reduce total latency: %g vs %g",
			over.TotalLatency, plain.TotalLatency)
	}
	if over.Decode.Result.Breakdown.CommFloor <= 0 {
		t.Error("decode choice lost its hop floor under overlap")
	}
}
