// Package planner implements the paper's layout-selection procedure
// (Section 4.1): pick the feedforward and attention partitioning per phase
// by analytically costing the candidates — weight-stationary versus
// weight-gathered for prefill depending on tokens per batch, 2D
// weight-stationary for decode, head- versus batch-sharded attention
// depending on the attention variant and memory feasibility — and pick the
// torus slice shape for a chip count the same way.
//
// Unlike a black-box search (Alpa, GSPMD autosharding), the candidate set is
// the paper's small structured family, so the planner is exhaustive over it
// and the result is explainable: every choice comes with its predicted cost.
package planner

import (
	"fmt"
	"math"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// Workload is the application-level request the plan optimizes for.
type Workload struct {
	Batch   int
	Context int // new input tokens per sequence this turn
	Past    int // tokens already in the KV cache (cached conversation history)
	Gen     int // output tokens per sequence
	// Wire is the activation collective payload format the deployment
	// runs (BF16 default; Int8 halves every candidate layout's exposed
	// communication time, which can shift the chosen layout — cheaper
	// collectives favor the aggregation-heavier weight-stationary
	// layouts at small batch).
	Wire model.DType
	// KV is the KV-cache storage format (BF16 default; Int8 halves cache
	// bytes, moving the OOM feasibility boundary the planner prunes on).
	KV model.DType
	// Overlap, when positive, overrides perf.Knobs.OverlapFrac for
	// candidate costing: the fraction of each candidate's *bandwidth*
	// communication component hidden under compute. The serial
	// hop-latency floor is charged regardless (see package perf), so
	// even Overlap=1 cannot make a latency-bound layout look free —
	// which keeps the planner honest at small batch where the floor
	// dominates.
	Overlap float64
}

// knobs applies the workload's overlap override to the caller's knobs.
func (w Workload) knobs(k perf.Knobs) perf.Knobs {
	if w.Overlap > 0 {
		k.OverlapFrac = w.Overlap
	}
	return k
}

// Objective selects what the planner minimizes.
type Objective int

const (
	// MinLatency minimizes phase wall-clock.
	MinLatency Objective = iota
	// MinCost minimizes chip-seconds per token.
	MinCost
)

func (o Objective) String() string {
	if o == MinCost {
		return "min-cost"
	}
	return "min-latency"
}

// Choice is one phase's selected layouts with its predicted performance.
type Choice struct {
	FFN    partition.FFNLayout
	Attn   partition.AttnLayout
	Result perf.Result
}

// Plan is the planner's output for a workload.
type Plan struct {
	Model   model.Config
	System  hardware.System
	Weights model.DType
	Prefill Choice
	Decode  Choice
	// TotalLatency is prefill time plus decode time for the workload.
	TotalLatency float64
	Feasible     bool
	Reason       string
}

// attnCandidates returns the attention layouts worth trying for a model.
// Multiquery models choose between head sharding (no all-to-all, but KV
// replication) and batch sharding; multihead models shard KV over heads
// naturally but may still batch-shard.
func attnCandidates(c model.Config) []partition.AttnLayout {
	return []partition.AttnLayout{partition.AttnShardHeads, partition.AttnShardBatch}
}

// decodeFFNCandidates: the paper always decodes weight-stationary (the batch
// in tokens is small); both 1D and 2D are costed.
var decodeFFNCandidates = []partition.FFNLayout{
	partition.FFN1DWeightStationary,
	partition.FFN2DWeightStationary,
}

func pick(obj Objective, r perf.Result) float64 {
	if obj == MinCost {
		return r.Cost
	}
	return r.Time
}

// ChoosePrefill selects the prefill layouts for a request by exhaustive
// costing over all FFN layouts and attention candidates.
func ChoosePrefill(cfg model.Config, sys hardware.System, dt model.DType,
	w Workload, obj Objective, k perf.Knobs) (Choice, bool) {

	k = w.knobs(k)
	best := Choice{}
	bestVal := math.Inf(1)
	found := false
	for _, ffn := range partition.FFNLayouts {
		for _, attn := range attnCandidates(cfg) {
			r := perf.Prefill(perf.Request{
				Model: cfg, System: sys, Weights: dt,
				KVDType: w.KV, WireDType: w.Wire,
				FFN: ffn, Attn: attn,
				Batch: w.Batch, Context: w.Context, Past: w.Past, Gen: w.Gen,
			}, k)
			if !r.Feasible {
				continue
			}
			if v := pick(obj, r); v < bestVal {
				best = Choice{FFN: ffn, Attn: attn, Result: r}
				bestVal = v
				found = true
			}
		}
	}
	return best, found
}

// ChooseDecode selects the decode layouts for a request.
func ChooseDecode(cfg model.Config, sys hardware.System, dt model.DType,
	w Workload, obj Objective, k perf.Knobs) (Choice, bool) {

	k = w.knobs(k)
	best := Choice{}
	bestVal := math.Inf(1)
	found := false
	for _, ffn := range decodeFFNCandidates {
		for _, attn := range attnCandidates(cfg) {
			r := perf.Decode(perf.Request{
				Model: cfg, System: sys, Weights: dt,
				KVDType: w.KV, WireDType: w.Wire,
				FFN: ffn, Attn: attn,
				Batch: w.Batch, Context: w.Context, Past: w.Past, Gen: w.Gen,
			}, k)
			if !r.Feasible {
				continue
			}
			if v := pick(obj, r); v < bestVal {
				best = Choice{FFN: ffn, Attn: attn, Result: r}
				bestVal = v
				found = true
			}
		}
	}
	return best, found
}

// Make builds a full plan (prefill + decode) for a workload on a system.
func Make(cfg model.Config, sys hardware.System, dt model.DType,
	w Workload, obj Objective, k perf.Knobs) Plan {

	p := Plan{Model: cfg, System: sys, Weights: dt}
	pre, okP := ChoosePrefill(cfg, sys, dt, w, obj, k)
	dec, okD := ChooseDecode(cfg, sys, dt, w, obj, k)
	if w.Gen == 0 {
		okD, dec = true, Choice{}
	}
	if !okP || !okD {
		p.Feasible = false
		p.Reason = fmt.Sprintf("no feasible layout for %s on %d chips (batch %d, ctx %d)",
			cfg.Name, sys.Chips(), w.Batch, w.Context)
		return p
	}
	p.Prefill, p.Decode = pre, dec
	p.TotalLatency = pre.Result.Time + dec.Result.Time
	p.Feasible = true
	return p
}

// BestSystem picks the torus shape for a chip count that minimizes the
// objective over the whole workload, trying every enumerable slice shape.
func BestSystem(cfg model.Config, chip hardware.Chip, chips int, dt model.DType,
	w Workload, obj Objective, k perf.Knobs) (Plan, bool) {

	bestVal := math.Inf(1)
	var best Plan
	found := false
	for _, shape := range hardware.SliceShapes(chips) {
		// Degenerate pencils (1x1xN) duplicate the 2D algebra of flatter
		// shapes and are never preferable on a real torus; still costed,
		// just rarely winners.
		sys := hardware.NewSystem(chip, shape)
		p := Make(cfg, sys, dt, w, obj, k)
		if !p.Feasible {
			continue
		}
		v := p.TotalLatency
		if obj == MinCost {
			v = p.Prefill.Result.Cost + p.Decode.Result.Cost
		}
		if v < bestVal {
			best, bestVal = p, v
			found = true
		}
	}
	return best, found
}

// MaxContext computes the longest context a (model, attention layout, batch)
// supports on a system when `kvBudget` of total HBM is reserved for the KV
// cache — the calculation behind Table 1. Head-sharded multiquery replicates
// KV per chip, so the *per-chip* budget binds; otherwise the aggregate
// budget binds.
func MaxContext(cfg model.Config, sys hardware.System, attnLayout partition.AttnLayout,
	batch int, kvBudget float64) int {
	return MaxContextKV(cfg, sys, attnLayout, batch, kvBudget, model.BF16)
}

// MaxContextKV is MaxContext with an explicit KV-cache storage dtype: the
// int8 KV cache (1 byte per element instead of bf16's 2) doubles the
// servable context under the same per-chip budget — the Table 1 numbers
// with the cache quantized.
func MaxContextKV(cfg model.Config, sys hardware.System, attnLayout partition.AttnLayout,
	batch int, kvBudget float64, kv model.DType) int {

	attn := partition.PlanAttn(attnLayout, sys.Torus, cfg.Heads, cfg.KVHeads)
	perChipBudget := kvBudget * sys.Chip.HBMBytes
	bytesPerCtxTokenPerChip := float64(batch) * cfg.KVBytesPerTokenAs(kv) *
		attn.KVReplication() / float64(sys.Chips())
	if bytesPerCtxTokenPerChip <= 0 {
		return 0
	}
	return int(perChipBudget / bytesPerCtxTokenPerChip)
}
