package autoscale

import (
	"math"
	"testing"
)

// testPolicy is a fast-acting tuning for unit tests: one-tick debounce on
// pressure, two on slack, short cooldown.
func testPolicy() Policy {
	return Policy{
		Interval:       0.25,
		MinReplicas:    1,
		MaxReplicas:    8,
		ScaleOutAbove:  1.0,
		ScaleInBelow:   0.25,
		OverTicks:      2,
		UnderTicks:     3,
		CooldownTicks:  2,
		ProvisionDelay: 0.5,
		WarmupCost:     0.25,
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := New(Policy{}).Policy()
	if p.Interval <= 0 || p.MinReplicas < 1 || p.MaxReplicas < p.MinReplicas {
		t.Fatalf("defaults left invalid policy: %+v", p)
	}
	if p.ScaleInBelow >= p.ScaleOutAbove {
		t.Fatalf("defaults left no hysteresis gap: %+v", p)
	}
	if p.OverTicks < 1 || p.UnderTicks < 1 || p.CooldownTicks < 1 {
		t.Fatalf("defaults left zero debounce: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("defaulted policy fails its own Validate: %v", err)
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{Interval: math.NaN()},
		{ScaleOutAbove: math.Inf(1)},
		{ProvisionDelay: -1},
		{MinReplicas: -2},
		{MinReplicas: 5, MaxReplicas: 2},
		{ScaleOutAbove: 1, ScaleInBelow: 1},   // no hysteresis gap
		{ScaleOutAbove: 1, ScaleInBelow: 1.5}, // inverted bands
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := (Policy{}).Validate(); err != nil {
		t.Errorf("zero policy (all defaults) rejected: %v", err)
	}
	if err := testPolicy().Validate(); err != nil {
		t.Errorf("test policy rejected: %v", err)
	}
}

// Sustained pressure with a backlog that repays the warm-up scales out —
// after exactly OverTicks ticks, not on the first breach.
func TestScaleOutAfterDebounce(t *testing.T) {
	c := New(testPolicy())
	hot := Signals{Live: 2, DrainTime: 3.0, TotalBacklog: 6.0, QueueDepth: 10}
	if d := c.Decide(hot); d.Verdict != Hold {
		t.Fatalf("first breach acted immediately: %+v", d)
	}
	if d := c.Decide(hot); d.Verdict != ScaleOut {
		t.Fatalf("second consecutive breach held: %+v", d)
	}
	// Immediately after the action, cooldown holds even under pressure.
	for i := 0; i < c.Policy().CooldownTicks; i++ {
		if d := c.Decide(hot); d.Verdict != Hold {
			t.Fatalf("tick %d of cooldown acted: %+v", i, d)
		}
	}
}

// A backlog too small to repay the provision+warm-up cost holds even under
// sustained pressure — the perf-model payback check.
func TestScaleOutPaybackCheck(t *testing.T) {
	c := New(testPolicy())
	// Drain beyond the band but total backlog under what the pool carries
	// at the high watermark: excess = 0.6 - 1.0×1 = -0.4 < 0.75 cost.
	thin := Signals{Live: 1, DrainTime: 1.2, TotalBacklog: 0.6}
	for i := 0; i < 6; i++ {
		if d := c.Decide(thin); d.Verdict != Hold {
			t.Fatalf("tick %d scaled out on unrepayable backlog: %+v", i, d)
		}
	}
	// A brownout overrides the payback check: lost capacity is evidence.
	c2 := New(testPolicy())
	brown := thin
	brown.Brownout = true
	c2.Decide(brown)
	if d := c2.Decide(brown); d.Verdict != ScaleOut {
		t.Fatalf("brownout with thin backlog held: %+v", d)
	}
}

// Recovering or provisioning replicas are capacity about to return: the
// controller does not stack a second scale-out on top of one in flight.
func TestArrivingCapacitySuppressesScaleOut(t *testing.T) {
	c := New(testPolicy())
	hot := Signals{Live: 2, Arriving: 1, DrainTime: 3.0, TotalBacklog: 6.0}
	for i := 0; i < 5; i++ {
		if d := c.Decide(hot); d.Verdict != Hold {
			t.Fatalf("tick %d scaled out past arriving capacity: %+v", i, d)
		}
	}
	hot.Arriving = 0
	if d := c.Decide(hot); d.Verdict != ScaleOut {
		t.Fatalf("arrival landed but still held: %+v", d)
	}
}

func TestMaxReplicasBound(t *testing.T) {
	c := New(testPolicy())
	hot := Signals{Live: 8, DrainTime: 5.0, TotalBacklog: 40.0}
	for i := 0; i < 5; i++ {
		if d := c.Decide(hot); d.Verdict != Hold {
			t.Fatalf("scaled out past MaxReplicas: %+v", d)
		}
	}
}

// Sustained slack with an idle replica scales in, but never below
// MinReplicas, never during a brownout, and never while a drain is in
// flight.
func TestScaleInGuards(t *testing.T) {
	p := testPolicy()
	calm := Signals{Live: 3, Idle: 1, DrainTime: 0.1, TotalBacklog: 0.2}

	c := New(p)
	for i := 0; i < p.UnderTicks-1; i++ {
		if d := c.Decide(calm); d.Verdict != Hold {
			t.Fatalf("tick %d scaled in before debounce: %+v", i, d)
		}
	}
	if d := c.Decide(calm); d.Verdict != ScaleIn {
		t.Fatalf("sustained slack held: %+v", d)
	}

	guards := []struct {
		name string
		s    Signals
	}{
		{"at-min", Signals{Live: 1, Idle: 1, DrainTime: 0.1}},
		{"draining", Signals{Live: 3, Idle: 1, Draining: 1, DrainTime: 0.1}},
		{"brownout", Signals{Live: 3, Idle: 1, DrainTime: 0.1, Brownout: true}},
		{"shedding", Signals{Live: 3, Idle: 1, DrainTime: 0.1, ShedDelta: 1}},
		{"missing", Signals{Live: 3, Idle: 1, DrainTime: 0.1, MissDelta: 2}},
		{"queue-hot", Signals{Live: 3, Idle: 1, DrainTime: 2.0, TotalBacklog: 2.0}},
	}
	for _, g := range guards {
		c := New(p)
		for i := 0; i < 3*p.UnderTicks; i++ {
			if d := c.Decide(g.s); d.Verdict == ScaleIn {
				t.Errorf("%s: scaled in at tick %d: %+v", g.name, i, d)
				break
			}
		}
	}
}

// The flapping test ISSUE 9 names: a square-wave load alternating hot and
// cold faster than the debounce window must not produce an action per
// half-period. The hysteretic controller acts a bounded number of times; a
// degenerate single-tick controller flaps on nearly every edge.
func TestSquareWaveFlappingPrevention(t *testing.T) {
	hot := Signals{Live: 4, DrainTime: 3.0, TotalBacklog: 12.0}
	cold := Signals{Live: 4, Idle: 2, DrainTime: 0.05, TotalBacklog: 0.1}
	// 200 ticks of period-4 square wave: 2 hot, 2 cold — each phase shorter
	// than the debounce the test policy requires (OverTicks 2 is met exactly
	// at the last hot tick, UnderTicks 3 never inside a cold phase).
	wave := func(c *Controller, overTicks, underTicks int) (actions int) {
		for i := 0; i < 200; i++ {
			s := cold
			if i%4 < 2 {
				s = hot
			}
			if d := c.Decide(s); d.Verdict != Hold {
				actions++
			}
		}
		return actions
	}

	p := testPolicy()
	p.OverTicks, p.UnderTicks, p.CooldownTicks = 3, 4, 4
	damped := wave(New(p), p.OverTicks, p.UnderTicks)
	if damped != 0 {
		t.Errorf("hysteretic controller acted %d times on a sub-debounce square wave, want 0", damped)
	}

	// The same wave through a trigger-happy tuning (no debounce, no
	// cooldown) flaps — this is the failure mode the bands exist to prevent,
	// pinned so the comparison stays honest.
	trigger := testPolicy()
	trigger.OverTicks, trigger.UnderTicks, trigger.CooldownTicks = 1, 1, -1 // -1 → clamped to 0
	flappy := wave(New(trigger), 1, 1)
	if flappy < 50 {
		t.Errorf("degenerate controller acted only %d times; square wave should make it flap", flappy)
	}
}

// Decide is a pure function of policy and signal sequence: two controllers
// fed the same sequence produce identical decisions — the unit-level half
// of the fleet's byte-identical replay guarantee.
func TestControllerDeterminism(t *testing.T) {
	seq := []Signals{
		{Live: 2, DrainTime: 2.0, TotalBacklog: 4.0},
		{Live: 2, DrainTime: 2.5, TotalBacklog: 5.0},
		{Live: 2, Arriving: 1, DrainTime: 1.8, TotalBacklog: 3.6},
		{Live: 3, DrainTime: 0.1, TotalBacklog: 0.2, Idle: 1},
		{Live: 3, DrainTime: 0.1, TotalBacklog: 0.2, Idle: 1},
		{Live: 3, DrainTime: 0.1, TotalBacklog: 0.2, Idle: 2},
		{Live: 3, DrainTime: 0.1, TotalBacklog: 0.2, Idle: 2},
		{Live: 2, DrainTime: 3.0, TotalBacklog: 6.0, ShedDelta: 1},
	}
	a, b := New(testPolicy()), New(testPolicy())
	for i, s := range seq {
		da, db := a.Decide(s), b.Decide(s)
		if da != db {
			t.Fatalf("tick %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{Hold: "hold", ScaleOut: "scale-out", ScaleIn: "scale-in", Verdict(9): "verdict(9)"} {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}
