// Package autoscale closes the loop the paper leaves open: its cost-vs-
// latency Pareto frontiers price a *fixed* chip budget, but a fleet serving
// bursty Zipf traffic through crashes and stragglers has to re-spend that
// budget continuously. The Controller here is the deterministic control law
// the fleet simulator runs at every control tick: read the pressure signals
// the serving stack already exports (perf-model backlog drain times, shed
// and deadline-miss deltas, replica health), decide scale-out / scale-in /
// hold per pool, and damp the decision with hysteresis so bursty traffic
// does not turn the fleet into a flapping thermostat.
//
// Three properties matter more than cleverness:
//
//   - Deterministic: Decide is a pure function of the Policy and the tick's
//     Signals plus a few integer counters — the same trace, fault plan, and
//     policy replay to byte-identical fleets.
//   - Perf-model-driven: the scale-out test is a payback check in seconds,
//     not a utilization rule of thumb. A new replica costs ProvisionDelay +
//     WarmupCost seconds before it does useful work; the controller adds it
//     only when the pool's excess backlog (drain time beyond the low
//     watermark, summed over live replicas) already exceeds that cost — so
//     the replica is provably repaid within the horizon the backlog
//     represents.
//   - Health-aware: Recovering and still-provisioning replicas count as
//     capacity about to return (no double scale-out while one is warming),
//     and scale-in never fires during a brownout or while a previous drain
//     is still in flight.
package autoscale

import (
	"fmt"
	"math"
)

// Policy is the control law's tuning. The zero value is invalid; New fills
// unset fields with the defaults noted per field, chosen for the simulated
// PaLM-540B fleet's timescales (tens-of-milliseconds iterations, seconds-
// long traces).
type Policy struct {
	// Interval is the control tick period in seconds (default 0.25). Ticks
	// are first-class events in the fleet's heap, at the same granularity as
	// arrivals and faults, so autoscaled runs replay deterministically.
	Interval float64
	// MinReplicas / MaxReplicas bound each pool's size, provisioning
	// replicas included (defaults 1 and 8). In a disaggregated fleet the
	// bounds apply to the prefill and decode pools independently.
	MinReplicas, MaxReplicas int
	// ScaleOutAbove is the high watermark: a pool whose worst per-replica
	// backlog drain time exceeds it is under pressure (default 1.5 s).
	ScaleOutAbove float64
	// ScaleInBelow is the low watermark: a pool whose *mean* per-replica
	// backlog drain is under it has slack (default 0.25 s). The mean, not
	// the max: in a drain-down tail one replica may still hold seconds of
	// pinned work while its idle peers are pure surplus — the pool has
	// slack even though its worst replica does not. The gap between the
	// bands is the first hysteresis defense; keep ScaleInBelow well under
	// ScaleOutAbove.
	ScaleInBelow float64
	// OverTicks / UnderTicks are how many *consecutive* ticks a band must be
	// breached before the controller acts (defaults 2 and 4) — the second
	// hysteresis defense. A one-tick spike from a burst admission never
	// scales; a sustained breach does.
	OverTicks, UnderTicks int
	// CooldownTicks is how many ticks the controller holds after any action
	// (default 4) — the third defense, covering the dead time while a
	// provisioned replica warms or a drained one empties. Negative means no
	// cooldown at all (the degenerate tuning the flapping tests measure
	// against); zero takes the default.
	CooldownTicks int
	// ProvisionDelay is the seconds between a scale-out decision and the new
	// replica accepting work (default 0.5): container start, weight load.
	ProvisionDelay float64
	// WarmupCost is the additional seconds of work a cold replica wastes
	// before it pulls its weight — the prefix cache it must re-warm, the
	// first cold template prefills (default 0.25).
	WarmupCost float64
}

// withDefaults returns the policy with unset fields filled in.
func (p Policy) withDefaults() Policy {
	if p.Interval <= 0 {
		p.Interval = 0.25
	}
	if p.MinReplicas < 1 {
		p.MinReplicas = 1
	}
	if p.MaxReplicas < p.MinReplicas {
		p.MaxReplicas = p.MinReplicas + 7
	}
	if p.ScaleOutAbove <= 0 {
		p.ScaleOutAbove = 1.5
	}
	if p.ScaleInBelow <= 0 {
		p.ScaleInBelow = 0.25
	}
	if p.ScaleInBelow >= p.ScaleOutAbove {
		p.ScaleInBelow = p.ScaleOutAbove / 4
	}
	if p.OverTicks < 1 {
		p.OverTicks = 2
	}
	if p.UnderTicks < 1 {
		p.UnderTicks = 4
	}
	if p.CooldownTicks < 0 {
		p.CooldownTicks = 0
	} else if p.CooldownTicks == 0 {
		p.CooldownTicks = 4
	}
	if p.ProvisionDelay <= 0 {
		p.ProvisionDelay = 0.5
	}
	if p.WarmupCost <= 0 {
		p.WarmupCost = 0.25
	}
	return p
}

// Validate rejects non-finite or nonsensical tunings (set fields only; zero
// fields default). It is the fleet's pre-flight check, mirroring
// faults.Plan.Validate.
func (p Policy) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) || v < 0 }
	switch {
	case bad(p.Interval), bad(p.ScaleOutAbove), bad(p.ScaleInBelow),
		bad(p.ProvisionDelay), bad(p.WarmupCost):
		return fmt.Errorf("autoscale: non-finite or negative policy field: %+v", p)
	case p.MinReplicas < 0 || p.MaxReplicas < 0:
		return fmt.Errorf("autoscale: negative replica bound: min %d max %d", p.MinReplicas, p.MaxReplicas)
	case p.MaxReplicas > 0 && p.MinReplicas > p.MaxReplicas:
		return fmt.Errorf("autoscale: min replicas %d above max %d", p.MinReplicas, p.MaxReplicas)
	case p.ScaleOutAbove > 0 && p.ScaleInBelow > 0 && p.ScaleInBelow >= p.ScaleOutAbove:
		return fmt.Errorf("autoscale: scale-in band %g not below scale-out band %g (hysteresis gap required)",
			p.ScaleInBelow, p.ScaleOutAbove)
	case p.OverTicks < 0 || p.UnderTicks < 0:
		return fmt.Errorf("autoscale: negative debounce: over %d under %d", p.OverTicks, p.UnderTicks)
	}
	return nil
}

// Signals is one pool's state at a control tick, as the fleet measures it.
type Signals struct {
	// T is the tick's simulation time.
	T float64
	// Live counts replicas currently accepting work (Healthy, Degraded, or
	// Recovering — a Recovering replica serves, just cold).
	Live int
	// Arriving counts capacity about to return without the controller's
	// help: replicas still provisioning from an earlier scale-out plus
	// crashed replicas whose recovery is scheduled. While Arriving > 0 the
	// controller does not scale out again.
	Arriving int
	// Draining counts replicas mid-drain (fault-injected or a previous
	// scale-in); while one is draining the controller does not scale in.
	Draining int
	// DrainTime is the pool's pressure signal: the worst per-replica backlog
	// drain estimate in seconds, from the perf model (batching.Snapshot).
	DrainTime float64
	// TotalBacklog is the sum of per-replica drain estimates — the pool's
	// backlog in replica-seconds, the quantity the payback check spends.
	TotalBacklog float64
	// QueueDepth is the pool's total pending (unadmitted) request count.
	QueueDepth int
	// Idle counts live replicas with zero backlog — the preferred scale-in
	// victims (informational: the executor drains the emptiest replica
	// gracefully either way).
	Idle int
	// ShedDelta / MissDelta count SLO sheds and deadline misses since the
	// previous tick: nonzero means the pool is already failing its SLO, and
	// pressure is treated as breached regardless of DrainTime.
	ShedDelta, MissDelta int
	// Brownout reports the fleet is below its live-replica watermark —
	// immediate pressure, and an absolute bar on scaling in.
	Brownout bool
}

// Verdict is a Decision's direction.
type Verdict int

const (
	// Hold keeps the pool's size.
	Hold Verdict = iota
	// ScaleOut provisions one replica.
	ScaleOut
	// ScaleIn drains and releases one replica.
	ScaleIn
)

// String names the verdict for reports and scale-event logs.
func (v Verdict) String() string {
	switch v {
	case Hold:
		return "hold"
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Decision is one tick's output for one pool.
type Decision struct {
	Verdict Verdict
	// Reason is a short human-readable account of why ("backlog 3.2s over
	// 1.5s for 2 ticks, payback 1.9s > 0.75s cost"); empty for Hold without
	// a story.
	Reason string
}

// Controller runs the control law for one pool. It is deliberately tiny
// state: three integer counters over a fixed Policy, so replaying a trace
// replays the decisions.
type Controller struct {
	p Policy
	// over / under count consecutive ticks beyond each band.
	over, under int
	// cooldown counts ticks remaining before the next action may fire.
	cooldown int
}

// New returns a controller with the policy's unset fields defaulted.
func New(p Policy) *Controller { return &Controller{p: p.withDefaults()} }

// Policy returns the effective (defaulted) policy.
func (c *Controller) Policy() Policy { return c.p }

// Decide advances the controller one tick and returns the pool's decision.
// The law, in order:
//
//  1. Pressure is breached when the worst backlog drain exceeds the high
//     watermark, or the pool is already shedding / missing deadlines /
//     browned out. Slack requires the mean per-replica drain under the low
//     watermark AND none of those distress signals (mean, not max: pinned
//     work on one replica does not make its idle peers load-bearing).
//  2. Consecutive-tick counters debounce both: OverTicks breaches arm
//     scale-out, UnderTicks slack ticks arm scale-in. Any non-breach resets
//     the over counter (and vice versa), so oscillating load re-arms from
//     zero — the flapping defense the square-wave test pins.
//  3. Cooldown after any action holds the pool while the action lands.
//  4. Scale-out additionally requires: headroom under MaxReplicas, no
//     capacity already arriving (Recovering or provisioning replicas are
//     capacity about to return, not missing), and the payback check — the
//     backlog beyond what the pool can carry at the high watermark must
//     exceed the new replica's ProvisionDelay+WarmupCost, so the warm-up is
//     repaid from work the current fleet provably cannot absorb. A brownout
//     with zero measured backlog still scales out: lost capacity is its own
//     evidence.
//  5. Scale-in additionally requires: the pool stays at or above
//     MinReplicas, no drain already in flight, and no brownout. The release
//     itself is graceful — the executor drains the victim's queue to its
//     peers and lets resident work finish before the replica leaves — so an
//     idle victim is preferred but not required.
func (c *Controller) Decide(s Signals) Decision {
	p := c.p
	distress := s.ShedDelta > 0 || s.MissDelta > 0 || s.Brownout
	breach := distress || s.DrainTime > p.ScaleOutAbove
	mean := s.TotalBacklog / float64(max(s.Live, 1))
	slack := !distress && mean < p.ScaleInBelow
	if breach {
		c.over++
	} else {
		c.over = 0
	}
	if slack {
		c.under++
	} else {
		c.under = 0
	}
	if c.cooldown > 0 {
		c.cooldown--
		return Decision{Verdict: Hold, Reason: "cooldown"}
	}
	size := s.Live + s.Arriving + s.Draining
	if c.over >= p.OverTicks {
		switch {
		case size >= p.MaxReplicas:
			return Decision{Verdict: Hold, Reason: fmt.Sprintf("pressure, but at max %d replicas", p.MaxReplicas)}
		case s.Arriving > 0:
			return Decision{Verdict: Hold, Reason: fmt.Sprintf("pressure, but %d replica(s) already arriving", s.Arriving)}
		}
		cost := p.ProvisionDelay + p.WarmupCost
		excess := s.TotalBacklog - p.ScaleOutAbove*float64(max(s.Live, 1))
		if excess < cost && !s.Brownout {
			return Decision{Verdict: Hold, Reason: fmt.Sprintf(
				"pressure, but excess backlog %.2fs under warm-up cost %.2fs (not repaid)", excess, cost)}
		}
		c.over, c.under = 0, 0
		c.cooldown = p.CooldownTicks
		return Decision{Verdict: ScaleOut, Reason: fmt.Sprintf(
			"drain %.2fs > %.2fs (shed %d, miss %d, brownout %v); excess backlog %.2fs repays %.2fs warm-up",
			s.DrainTime, p.ScaleOutAbove, s.ShedDelta, s.MissDelta, s.Brownout, excess, cost)}
	}
	if c.under >= p.UnderTicks {
		switch {
		case size <= p.MinReplicas:
			return Decision{Verdict: Hold, Reason: fmt.Sprintf("slack, but at min %d replicas", p.MinReplicas)}
		case s.Draining > 0:
			return Decision{Verdict: Hold, Reason: "slack, but a drain is already in flight"}
		}
		c.over, c.under = 0, 0
		c.cooldown = p.CooldownTicks
		return Decision{Verdict: ScaleIn, Reason: fmt.Sprintf(
			"mean drain %.2fs < %.2fs for %d ticks, %d idle of %d live", mean, p.ScaleInBelow, p.UnderTicks, s.Idle, s.Live)}
	}
	return Decision{Verdict: Hold}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
