package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Exp32Rows must agree with the scalar Exp32 bit for bit — it is the same
// reduction and polynomial, only batched — including at the under/overflow
// rails, the scale-split bands, and every slice-length tail the 4-wide
// blocking produces.
func TestExp32RowsMatchesExp32Exactly(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	edge := []float32{
		0, 1, -1, 0.5, -0.5,
		-87.33654, -87.33655, -87.4, -200, float32(math.Inf(-1)),
		88.72282, 88.72283, 88.8, 200, float32(math.Inf(1)),
		-87.0, -86.9, 88.0, // near the scale-split bands
		float32(math.Ln2 / 2), float32(-math.Ln2 / 2), 2.5 * 0.6931472,
	}
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 33, 128} {
		xs := make([]float32, n)
		want := make([]float32, n)
		for trial := 0; trial < 50; trial++ {
			for i := range xs {
				if i < len(edge) && trial == 0 {
					xs[i] = edge[i]
				} else {
					xs[i] = float32(rng.NormFloat64() * 30)
				}
				want[i] = Exp32(xs[i])
			}
			Exp32Rows(xs)
			for i, got := range xs {
				if math.Float32bits(got) != math.Float32bits(want[i]) {
					t.Fatalf("len %d, elem %d: Exp32Rows %g (%#x) != Exp32 %g (%#x)",
						n, i, got, math.Float32bits(got), want[i], math.Float32bits(want[i]))
				}
			}
		}
	}
}

// Accuracy against float64 math.Exp over the softmax input range: the
// batched form inherits Exp32's ~2-ulp bound.
func TestExp32RowsAccuracy(t *testing.T) {
	const n = 4096
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = -87 + 100*float32(i)/n // [-87, 13): softmax inputs are <= 0
	}
	ref := make([]float64, n)
	for i, x := range xs {
		ref[i] = math.Exp(float64(x))
	}
	Exp32Rows(xs)
	for i, got := range xs {
		rel := math.Abs(float64(got)-ref[i]) / ref[i]
		if rel > 3e-7 {
			t.Fatalf("x[%d]: relative error %g exceeds 3e-7", i, rel)
		}
	}
}

// In-place over the caller's slice: no allocations at any length.
func TestExp32RowsZeroAllocs(t *testing.T) {
	xs := make([]float32, 257)
	for i := range xs {
		xs[i] = float32(i%40) - 39
	}
	if avg := testing.AllocsPerRun(100, func() {
		Exp32Rows(xs)
	}); avg != 0 {
		t.Errorf("Exp32Rows allocates %v per call, want 0", avg)
	}
}
