package tensor

import (
	"testing"
	"unsafe"
)

// Kernel-facing allocations must start on a cache-line boundary so the
// simd layer's 32-byte vector loads never split lines. This is the
// regression test for the vectorAlign contract on New, Reshape growth, and
// the Arena — the buffers the engine's zero-alloc decode loop actually
// hands to the kernels.

func addrOf(data []float32) uintptr {
	if len(data) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(data)))
}

func requireAligned(t *testing.T, label string, data []float32) {
	t.Helper()
	if len(data) == 0 {
		return
	}
	if a := addrOf(data); a%vectorAlign != 0 {
		t.Errorf("%s: base address %#x not %d-byte aligned", label, a, vectorAlign)
	}
}

func TestNewIsCacheLineAligned(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {3, 7}, {8, 8}, {17, 129}, {64, 1024}} {
		m := New(shape[0], shape[1])
		requireAligned(t, "New", m.Data)
	}
}

func TestReshapeGrowthStaysAligned(t *testing.T) {
	m := New(2, 2)
	m.Reshape(8, 64) // forces reallocation
	requireAligned(t, "Reshape grow", m.Data)
	base := addrOf(m.Data)
	m.Reshape(4, 32) // shrink within capacity must keep the same base
	if addrOf(m.Data) != base {
		t.Error("shrinking reshape moved the buffer")
	}
	requireAligned(t, "Reshape shrink", m.Data)
}

func TestArenaMatsAligned(t *testing.T) {
	var ar Arena
	for cycle := 0; cycle < 2; cycle++ {
		ar.Reset()
		for _, shape := range [][2]int{{1, 5}, {4, 96}, {16, 256}} {
			m := ar.Mat(shape[0], shape[1])
			requireAligned(t, "Arena.Mat", m.Data)
		}
	}
	// Growth replaces the buffer; the replacement must be aligned too.
	ar.Reset()
	requireAligned(t, "Arena grown", ar.Mat(64, 256).Data)
	requireAligned(t, "Arena floats", FromSlice(ar.Floats(100), 1, 100).Data)
}
