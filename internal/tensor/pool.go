package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Worker pool for the blocked GEMM kernels. Large matmuls split their row
// range into tiles and run them on a fixed set of long-lived goroutines
// sized by GOMAXPROCS; small matmuls (and any matmul when only one worker
// is configured) run serially in the caller, so the decode hot path never
// pays a dispatch or allocation cost. The pool is started lazily on first
// parallel use and its goroutine count never grows afterwards — the
// property tests assert repeated parallel matmuls leak no goroutines.

// parallelMinFlops is the approximate multiply-add count below which
// splitting a matmul across workers costs more than it saves. Decode-step
// matmuls in the test configs sit well below it, which keeps the
// zero-allocation guarantee of the engine's hot path independent of the
// worker count.
const parallelMinFlops = 1 << 17

var pool struct {
	mu      sync.Mutex
	tasks   chan poolTask
	started int          // goroutines running; fixed after first start
	max     atomic.Int32 // configured parallelism; 0 = GOMAXPROCS at first use
}

type poolTask struct {
	lo, hi int
	fn     func(lo, hi int)
	done   *sync.WaitGroup
}

// SetWorkers bounds how many tiles a parallel kernel splits into (1 =
// always serial) and returns the previous setting. It exists for callers
// that need deterministic execution — allocation tests, embedders running
// their own scheduler — and for tests that force the parallel path on a
// single-core machine. Already-started pool goroutines are not stopped;
// they idle when the bound is lowered.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	prev := pool.max.Swap(int32(n))
	if prev == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return int(prev)
}

// Workers reports the current parallelism bound. It is a single atomic
// load: ShouldParallel consults it on every matmul, concurrently from
// every simulated chip, so it must not contend on a lock.
func Workers() int {
	if max := pool.max.Load(); max != 0 {
		return int(max)
	}
	return runtime.GOMAXPROCS(0)
}

// ensurePool starts the worker goroutines once and returns the task
// channel. Workers are capped at GOMAXPROCS at first-start time; raising
// SetWorkers beyond that later only affects tile counts, not goroutines.
func ensurePool(want int) chan poolTask {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if pool.tasks == nil {
		n := runtime.GOMAXPROCS(0)
		if want > n {
			n = want
		}
		pool.tasks = make(chan poolTask, 4*n)
		for i := 0; i < n; i++ {
			go poolWorker(pool.tasks)
		}
		pool.started = n
	}
	return pool.tasks
}

func poolWorker(tasks chan poolTask) {
	for t := range tasks {
		t.fn(t.lo, t.hi)
		t.done.Done()
	}
}

// ShouldParallel reports whether a row kernel of the given shape clears
// the pool's split thresholds. Kernels check it before building the tile
// closure, so the serial hot path allocates nothing.
func ShouldParallel(rows, flops int) bool {
	return rows >= 2 && flops >= parallelMinFlops && Workers() >= 2
}

// ParallelRows splits fn's row range [0, rows) across the worker pool. The
// caller must have checked ShouldParallel (flops is the kernel's
// multiply-add count, the split heuristic); it is exported for sibling
// kernel packages (quant) so every matmul in the repo shares one pool and
// one serial/parallel policy.
func ParallelRows(rows, flops int, fn func(lo, hi int)) {
	parallelRows(rows, flops, fn)
}

// parallelRows runs fn over [0, rows) split into per-worker tiles when the
// work is large enough, serially otherwise. The caller always executes the
// last tile itself, so at least one tile never waits on the pool.
func parallelRows(rows, flops int, fn func(lo, hi int)) {
	w := Workers()
	if w < 2 || rows < 2 || flops < parallelMinFlops {
		fn(0, rows)
		return
	}
	tiles := w
	if tiles > rows {
		tiles = rows
	}
	tasks := ensurePool(w)
	chunk := (rows + tiles - 1) / tiles
	var wg sync.WaitGroup
	lo := 0
	for lo+chunk < rows {
		wg.Add(1)
		tasks <- poolTask{lo: lo, hi: lo + chunk, fn: fn, done: &wg}
		lo += chunk
	}
	fn(lo, rows)
	wg.Wait()
}
