package tensor

import "unsafe"

// vectorAlign is the byte alignment of every kernel-facing float32
// allocation: one cache line, so AVX2 vector loads in the simd layer never
// split across cache-line boundaries. Alignment is a performance contract
// only — the kernels use unaligned loads and are bit-exact either way.
const vectorAlign = 64

// alignedFloats allocates a length-n float32 slice whose first element
// sits on a vectorAlign boundary. It over-allocates by one cache line and
// reslices to the aligned offset; the padding stays reachable as capacity
// beyond index 0's alignment, so Reshape growth within capacity preserves
// alignment.
func alignedFloats(n int) []float32 {
	buf := make([]float32, n+vectorAlign/4)
	off := 0
	if r := uintptr(unsafe.Pointer(unsafe.SliceData(buf))) % vectorAlign; r != 0 {
		off = int((vectorAlign - r) / 4)
	}
	return buf[off : off+n]
}

// Arena is a bump allocator of reusable matrices for hot loops with a
// repeating allocation pattern, such as one decode iteration of the
// sharded engine: call Reset at the top of each pass, then take every
// temporary with Mat. On the first pass each request allocates; on every
// later pass with the same request sequence (and non-growing sizes) the
// same buffers are handed out again in order, so a steady-state pass
// performs zero heap allocations.
//
// Matrices stay valid until the Reset that recycles them — callers must
// not retain one across passes. Contents on reuse are stale; kernels are
// expected to fully overwrite (or Zero) their output. An Arena is not safe
// for concurrent use; give each goroutine its own.
type Arena struct {
	mats []*Mat
	next int
}

// Reset recycles all matrices taken since the previous Reset.
func (a *Arena) Reset() { a.next = 0 }

// Mat returns a rows×cols matrix with unspecified contents. The backing
// buffer is reused from the previous cycle when its capacity suffices and
// replaced (grown) otherwise. Buffers are cache-line aligned
// (alignedFloats) so the simd layer's vector loads never split lines.
func (a *Arena) Mat(rows, cols int) *Mat {
	n := rows * cols
	if a.next < len(a.mats) {
		m := a.mats[a.next]
		a.next++
		if cap(m.Data) < n {
			m.Data = alignedFloats(n)
		}
		m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
		return m
	}
	m := &Mat{Rows: rows, Cols: cols, Data: alignedFloats(n)}
	a.mats = append(a.mats, m)
	a.next++
	return m
}

// Floats returns a float slice of length n with unspecified contents,
// backed by the same reuse discipline as Mat.
func (a *Arena) Floats(n int) []float32 {
	return a.Mat(1, n).Data
}
