package tensor

import (
	"fmt"

	"esti/internal/simd"
)

// Blocked GEMM kernels over the runtime-dispatched vector layer. The naive
// triple loops the package started with are retained below
// (matMulNaive/matMulTNaive) as the oracles the property tests compare
// against. These kernels unroll the contraction dimension four-wide and
// hand each output-row pass to internal/simd's MulAdd4F32 microkernel —
// AVX2 when the CPU has it, the bit-identical scalar twin otherwise (or
// under ESTI_NOSIMD=1) — and split large row ranges across the worker pool
// (pool.go). All reducing kernels (Dot, MatMulT) inherit simd's fixed
// 16-lane accumulation contract, so results are the same on every machine
// and on both dispatch paths.

// Reshape resizes m to rows×cols, reusing its backing array when capacity
// allows — the destination-passing contract every *Into kernel applies to
// its dst. Contents after a growing reshape are unspecified; kernels fully
// overwrite their output.
func (m *Mat) Reshape(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = alignedFloats(n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	clear(m.Data)
}

// MatMul computes a·b for a [m,k] and b [k,n].
func MatMul(a, b *Mat) *Mat {
	return MatMulInto(New(a.Rows, b.Cols), a, b)
}

// MatMulInto computes a·b into dst (reshaped to [a.Rows, b.Cols]) and
// returns dst. dst must not alias a or b.
func MatMulInto(dst, a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Rows, b.Cols)
	if !ShouldParallel(a.Rows, a.Rows*a.Cols*b.Cols) {
		matMulRows(dst, a, b, 0, a.Rows, false)
		return dst
	}
	// Capture value copies (sharing the same backing arrays) so the
	// closure does not make the caller's *Mat headers escape — the serial
	// path above must stay allocation-free even for stack-allocated views.
	dv, av, bv := *dst, *a, *b
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		matMulRows(&dv, &av, &bv, lo, hi, false)
	})
	return dst
}

// MatMulAccInto accumulates a·b into dst (dst += a·b) and returns dst.
// Unlike MatMulInto, dst must already have shape [a.Rows, b.Cols] — its
// existing contents are the accumulator, so no reshape and no clear. This
// is the contraction-chunked form the streamed collectives drive: a
// gathered activation arrives one K-chunk at a time and each chunk's
// partial product folds into the running output while the next chunk is
// still on the wire. dst must not alias a or b.
func MatMulAccInto(dst, a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul-acc dst %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if !ShouldParallel(a.Rows, a.Rows*a.Cols*b.Cols) {
		matMulRows(dst, a, b, 0, a.Rows, true)
		return dst
	}
	dv, av, bv := *dst, *a, *b
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		matMulRows(&dv, &av, &bv, lo, hi, true)
	})
	return dst
}

// matMulRows is the serial kernel over output rows [lo, hi): i-k-j order
// (all row-major, stride-1 inner loops), blocked 2 output rows × 4
// contraction steps, each row pass vectorized by simd.MulAdd4F32, with a
// skip for all-zero activation groups so zeroed rows — inactive decode
// slots — cost almost nothing and stay exactly zero. With acc, existing
// dst contents are accumulated into instead of cleared (the MatMulAccInto
// form); per output element the contraction order is identical either way.
func matMulRows(dst, a, b *Mat, lo, hi int, acc bool) {
	k, n := a.Cols, b.Cols
	ad, bd, od := a.Data, b.Data, dst.Data
	if n == 0 {
		return
	}
	i := lo
	for ; i+2 <= hi; i += 2 {
		arow0 := ad[i*k : i*k+k]
		arow1 := ad[(i+1)*k : (i+1)*k+k]
		orow0 := od[i*n : i*n+n]
		orow1 := od[(i+1)*n : (i+1)*n+n][:n]
		if !acc {
			clear(orow0)
			clear(orow1)
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a00, a01, a02, a03 := arow0[kk], arow0[kk+1], arow0[kk+2], arow0[kk+3]
			a10, a11, a12, a13 := arow1[kk], arow1[kk+1], arow1[kk+2], arow1[kk+3]
			if a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0 &&
				a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0 {
				continue
			}
			b0 := bd[kk*n : kk*n+n]
			b1 := bd[(kk+1)*n : (kk+1)*n+n]
			b2 := bd[(kk+2)*n : (kk+2)*n+n]
			b3 := bd[(kk+3)*n : (kk+3)*n+n]
			simd.MulAdd4F32(orow0, b0, b1, b2, b3, a00, a01, a02, a03)
			simd.MulAdd4F32(orow1, b0, b1, b2, b3, a10, a11, a12, a13)
		}
		for ; kk < k; kk++ {
			a0, a1 := arow0[kk], arow1[kk]
			if a0 == 0 && a1 == 0 {
				continue
			}
			brow := bd[kk*n : kk*n+n]
			simd.AxpyF32(orow0, a0, brow)
			simd.AxpyF32(orow1, a1, brow)
		}
	}
	for ; i < hi; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*n : i*n+n]
		if !acc {
			clear(orow)
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			simd.MulAdd4F32(orow,
				bd[kk*n:kk*n+n], bd[(kk+1)*n:(kk+1)*n+n],
				bd[(kk+2)*n:(kk+2)*n+n], bd[(kk+3)*n:(kk+3)*n+n],
				a0, a1, a2, a3)
		}
		for ; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			simd.AxpyF32(orow, av, bd[kk*n:kk*n+n])
		}
	}
}

// MatMulT computes a·bᵀ for a [m,k] and b [n,k].
func MatMulT(a, b *Mat) *Mat {
	return MatMulTInto(New(a.Rows, b.Rows), a, b)
}

// MatMulTInto computes a·bᵀ into dst (reshaped to [a.Rows, b.Rows]) and
// returns dst. dst must not alias a or b.
func MatMulTInto(dst, a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Rows, b.Rows)
	if !ShouldParallel(a.Rows, a.Rows*a.Cols*b.Rows) {
		matMulTRows(dst, a, b, 0, a.Rows)
		return dst
	}
	dv, av, bv := *dst, *a, *b
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		matMulTRows(&dv, &av, &bv, lo, hi)
	})
	return dst
}

// matMulTRows computes rows [lo, hi) of a·bᵀ: both operands are walked
// along their stride-1 rows, each dot product running the simd layer's
// fixed 16-lane kernel.
func matMulTRows(dst, a, b *Mat, lo, hi int) {
	k, n := a.Cols, b.Rows
	ad, bd, od := a.Data, b.Data, dst.Data
	for i := lo; i < hi; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*n : i*n+n]
		for j := range orow {
			orow[j] = simd.DotF32(arow, bd[j*k:j*k+k])
		}
	}
}

// Dot exposes the vectorized dot-product kernel: sum of a[i]·b[i] over
// min(len(a), len(b)) — the building block fused kernels outside this
// package (attention) are written with. Accumulation follows simd's fixed
// 16-lane contract, identical on the AVX2 and scalar paths.
func Dot(a, b []float32) float32 {
	return simd.DotF32(a, b)
}

// Axpy accumulates s·x into y over min(len(x), len(y)) elements.
func Axpy(y []float32, s float32, x []float32) {
	simd.AxpyF32(y, s, x)
}

// matMulNaive is the package's original triple-loop a·b, retained verbatim
// as the oracle for property-testing the blocked kernels.
func matMulNaive(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for kk := 0; kk < a.Cols; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Row(kk)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// matMulTNaive is the original a·bᵀ, retained as the property-test oracle.
func matMulTNaive(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for kk := range arow {
				s += arow[kk] * brow[kk]
			}
			out.Set(i, j, s)
		}
	}
	return out
}
