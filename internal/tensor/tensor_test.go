package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	return New(r, c).FillRand(rng, 1)
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("matmul[%d] = %g, want %g", i, got.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 5, 7)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	if MaxAbsDiff(MatMul(a, id), a) != 0 {
		t.Error("A·I != A")
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 4, 6)
	b := randMat(rng, 3, 6)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	if MaxAbsDiff(got, want) > 1e-5 {
		t.Errorf("MatMulT differs from MatMul(a, bᵀ) by %g", MaxAbsDiff(got, want))
	}
}

// Property: matmul distributes over column-blocked weights — the fact every
// weight-stationary sharding relies on.
func TestMatMulColumnBlocking(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 3, 8)
		b := randMat(rng, 8, 6)
		full := MatMul(a, b)
		left := MatMul(a, SliceCols(b, 0, 3))
		right := MatMul(a, SliceCols(b, 3, 6))
		return MaxAbsDiff(full, ConcatCols(left, right)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: matmul with row-blocked weights sums partial products — the fact
// behind reduce-scatter of partial sums.
func TestMatMulRowBlockingPartialSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 3, 8)
		b := randMat(rng, 8, 5)
		full := MatMul(a, b)
		p1 := MatMul(SliceCols(a, 0, 4), SliceRows(b, 0, 4))
		p2 := MatMul(SliceCols(a, 4, 8), SliceRows(b, 4, 8))
		return MaxAbsDiff(full, Add(p1, p2)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"matmul":     func() { MatMul(New(2, 3), New(4, 2)) },
		"matmulT":    func() { MatMulT(New(2, 3), New(2, 4)) },
		"add":        func() { Add(New(2, 2), New(2, 3)) },
		"fromSlice":  func() { FromSlice([]float32{1}, 2, 2) },
		"sliceCols":  func() { SliceCols(New(2, 2), 0, 3) },
		"sliceRows":  func() { SliceRows(New(2, 2), -1, 1) },
		"concatCols": func() { ConcatCols(New(2, 2), New(3, 2)) },
		"concatRows": func() { ConcatRows(New(2, 2), New(2, 3)) },
		"rmsnorm":    func() { RMSNorm(New(2, 4), []float32{1}, 1e-6) },
		"negShape":   func() { New(-1, 2) },
		"emptyCat":   func() { ConcatCols() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 6, 9)
	SoftmaxRows(a)
	for i := 0; i < a.Rows; i++ {
		var s float64
		for _, v := range a.Row(i) {
			if v < 0 {
				t.Fatal("negative softmax output")
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Errorf("row %d sums to %g", i, s)
		}
	}
}

// Section 3.5's fast log-base-2 softmax and swish must be numerically
// equivalent to the standard forms.
func TestBase2VariantsEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 4, 8)
		a2 := a.Clone()
		SoftmaxRows(a)
		SoftmaxRowsBase2(a2)
		if MaxAbsDiff(a, a2) > 1e-6 {
			return false
		}
		b := randMat(rng, 4, 8)
		b2 := b.Clone()
		SiLU(b)
		SiLUBase2(b2)
		return MaxAbsDiff(b, b2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxHandlesLargeValues(t *testing.T) {
	a := FromSlice([]float32{1000, 1001, 999}, 1, 3)
	SoftmaxRows(a)
	var s float32
	for _, v := range a.Row(0) {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed")
		}
		s += v
	}
	if math.Abs(float64(s)-1) > 1e-5 {
		t.Errorf("sum %g", s)
	}
}

func TestRMSNorm(t *testing.T) {
	gain := []float32{1, 1, 1, 1}
	a := FromSlice([]float32{2, 2, 2, 2}, 1, 4)
	out := RMSNorm(a, gain, 0)
	for _, v := range out.Row(0) {
		if math.Abs(float64(v)-1) > 1e-6 {
			t.Errorf("rmsnorm of constant row = %g, want 1", v)
		}
	}
	// Gain scales the output.
	out2 := RMSNorm(a, []float32{2, 2, 2, 2}, 0)
	if MaxAbsDiff(out2, Scale(out, 2)) > 1e-6 {
		t.Error("gain not applied")
	}
}

func TestActivations(t *testing.T) {
	a := FromSlice([]float32{0}, 1, 1)
	GELU(a)
	if a.Data[0] != 0 {
		t.Error("GELU(0) != 0")
	}
	b := FromSlice([]float32{0}, 1, 1)
	SiLU(b)
	if b.Data[0] != 0 {
		t.Error("SiLU(0) != 0")
	}
	// GELU(x) ≈ x for large x, ≈ 0 for very negative x.
	c := FromSlice([]float32{10, -10}, 1, 2)
	GELU(c)
	if math.Abs(float64(c.Data[0])-10) > 1e-3 || math.Abs(float64(c.Data[1])) > 1e-3 {
		t.Errorf("GELU tails wrong: %v", c.Data)
	}
}

func TestSliceConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 5, 12)
	parts := []*Mat{SliceCols(a, 0, 4), SliceCols(a, 4, 8), SliceCols(a, 8, 12)}
	if MaxAbsDiff(ConcatCols(parts...), a) != 0 {
		t.Error("column slice/concat round trip failed")
	}
	rparts := []*Mat{SliceRows(a, 0, 2), SliceRows(a, 2, 5)}
	if MaxAbsDiff(ConcatRows(rparts...), a) != 0 {
		t.Error("row slice/concat round trip failed")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 3, 7)
	if MaxAbsDiff(Transpose(Transpose(a)), a) != 0 {
		t.Error("(aᵀ)ᵀ != a")
	}
}

func TestAddInPlaceAndScale(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{10, 20}, 1, 2)
	AddInPlace(a, b)
	if a.Data[0] != 11 || a.Data[1] != 22 {
		t.Errorf("AddInPlace = %v", a.Data)
	}
	s := Scale(a, 0.5)
	if s.Data[0] != 5.5 || s.Data[1] != 11 {
		t.Errorf("Scale = %v", s.Data)
	}
	m := Mul(a, b)
	if m.Data[0] != 110 || m.Data[1] != 440 {
		t.Errorf("Mul = %v", m.Data)
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	b := FromSlice([]float32{1.0000001, 2.0000002}, 1, 2)
	if !AllClose(a, b, 1e-5, 1e-5) {
		t.Error("nearly equal matrices reported different")
	}
	if AllClose(a, FromSlice([]float32{1, 3}, 1, 2), 1e-5, 1e-5) {
		t.Error("different matrices reported close")
	}
	if AllClose(a, New(2, 1), 1, 1) {
		t.Error("shape mismatch reported close")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 1, 2)
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("clone shares storage")
	}
}
