package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Property tests for the blocked/parallel kernels against the retained
// naive oracles, over shapes chosen to stress every block boundary: empty,
// 1×1, single row/column, tall-skinny, wide, and sizes that are not
// multiples of the 2-row or 4-step blocking.

var propShapes = []struct{ m, k, n int }{
	{0, 0, 0}, {0, 5, 3}, {3, 5, 0}, {1, 1, 1}, {1, 4, 1}, {2, 3, 2},
	{3, 1, 7}, {5, 5, 5}, {7, 9, 11}, {1, 64, 1}, {64, 1, 64},
	{33, 17, 5}, {2, 128, 2}, {129, 3, 1}, {16, 31, 8}, {8, 64, 8},
}

func randMatZ(rng *rand.Rand, rows, cols int) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		// Mix in exact zeros so the zero-skip paths are exercised.
		if rng.Intn(5) == 0 {
			continue
		}
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

func maxRel(t *testing.T, got, want *Mat) float64 {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	worst := 0.0
	for i := range want.Data {
		d := math.Abs(float64(got.Data[i] - want.Data[i]))
		scale := math.Max(1, math.Abs(float64(want.Data[i])))
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range propShapes {
		a := randMatZ(rng, sh.m, sh.k)
		b := randMatZ(rng, sh.k, sh.n)
		got := MatMul(a, b)
		want := matMulNaive(a, b)
		// The blocked kernel reassociates sums in groups of four; allow a
		// few ulps of drift, nothing more.
		if r := maxRel(t, got, want); r > 1e-5 {
			t.Errorf("%dx%d·%dx%d: blocked differs from naive by rel %g", sh.m, sh.k, sh.k, sh.n, r)
		}
	}
}

func TestMatMulTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range propShapes {
		a := randMatZ(rng, sh.m, sh.k)
		b := randMatZ(rng, sh.n, sh.k)
		got := MatMulT(a, b)
		want := matMulTNaive(a, b)
		if r := maxRel(t, got, want); r > 1e-5 {
			t.Errorf("%dx%d·(%dx%d)ᵀ: blocked differs from naive by rel %g", sh.m, sh.k, sh.n, sh.k, r)
		}
	}
}

// The parallel path must agree with the serial path exactly — tiles only
// split output rows, never the reduction — and must not leak goroutines.
// SetWorkers forces tiling even on a single-core machine.
func TestParallelMatMulExactAndLeakFree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randMatZ(rng, 96, 80)
	b := randMatZ(rng, 80, 64) // 96·80·64 comfortably clears the flops gate

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	serial := MatMul(a, b)

	SetWorkers(4)
	warm := MatMul(a, b) // first call may start the pool
	if d := MaxAbsDiff(serial, warm); d != 0 {
		t.Fatalf("parallel result differs from serial by %g", d)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		got := MatMul(a, b)
		if d := MaxAbsDiff(serial, got); d != 0 {
			t.Fatalf("parallel run %d differs from serial by %g", i, d)
		}
		MatMulT(a, New(64, 80).FillRand(rng, 1))
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("worker pool leaked goroutines: %d before, %d after", before, after)
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", got)
	}
	if SetWorkers(0); Workers() != 1 {
		t.Errorf("SetWorkers(0) should clamp to 1, got %d", Workers())
	}
	SetWorkers(prev)
}

// Exp32 must track math.Exp to a couple of float32 ulps across the softmax
// input range, hit exact zero below the underflow cutoff, and be exact at 0.
func TestExp32MatchesMathExp(t *testing.T) {
	if Exp32(0) != 1 {
		t.Fatalf("Exp32(0) = %g", Exp32(0))
	}
	if Exp32(-100) != 0 {
		t.Fatalf("Exp32(-100) = %g, want 0", Exp32(-100))
	}
	if !math.IsInf(float64(Exp32(90)), 1) {
		t.Fatalf("Exp32(90) = %g, want +Inf", Exp32(90))
	}
	rng := rand.New(rand.NewSource(29))
	worst := 0.0
	for i := 0; i < 100000; i++ {
		// Softmax arguments are ≤ 0; cover a little positive range too.
		x := float32(rng.Float64()*95 - 87)
		got := float64(Exp32(x))
		want := math.Exp(float64(x))
		if want == 0 {
			continue
		}
		if r := math.Abs(got-want) / want; r > worst {
			worst = r
		}
	}
	if worst > 3e-7 {
		t.Errorf("Exp32 max relative error %g, want <= 3e-7", worst)
	}
}

// Fully masked softmax rows (all -Inf) must become zero rows, not NaNs —
// the edge a fully-masked attention query produces.
func TestSoftmaxRowsFullyMaskedRowIsZero(t *testing.T) {
	inf := float32(math.Inf(-1))
	for _, base2 := range []bool{false, true} {
		a := FromSlice([]float32{
			inf, inf, inf,
			1, 2, inf,
		}, 2, 3)
		if base2 {
			SoftmaxRowsBase2(a)
		} else {
			SoftmaxRows(a)
		}
		for j, v := range a.Row(0) {
			if v != 0 {
				t.Errorf("base2=%v: masked row[%d] = %g, want 0", base2, j, v)
			}
		}
		var sum float32
		for _, v := range a.Row(1) {
			if math.IsNaN(float64(v)) {
				t.Fatalf("base2=%v: partially masked row went NaN", base2)
			}
			sum += v
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Errorf("base2=%v: partially masked row sums to %g", base2, sum)
		}
	}
}

// Arena: same request sequence reuses the same buffers with zero
// allocations; growing a slot replaces only that buffer.
func TestArenaReusesSteadyState(t *testing.T) {
	var ar Arena
	shapes := [][2]int{{4, 8}, {1, 3}, {16, 16}}
	warm := func() []*Mat {
		ar.Reset()
		out := make([]*Mat, len(shapes))
		for i, s := range shapes {
			out[i] = ar.Mat(s[0], s[1])
		}
		return out
	}
	first := warm()
	second := warm()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("slot %d not reused across cycles", i)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		ar.Reset()
		for _, s := range shapes {
			ar.Mat(s[0], s[1])
		}
	}); avg != 0 {
		t.Errorf("steady-state arena cycle allocates %v times", avg)
	}
	// Growth: a bigger first request replaces slot 0, leaves slot 1 alone.
	ar.Reset()
	grown := ar.Mat(32, 32)
	if len(grown.Data) != 32*32 {
		t.Fatalf("grown mat has %d elements", len(grown.Data))
	}
	if ar.Mat(1, 3) != first[1] {
		t.Error("growth of slot 0 disturbed slot 1")
	}
}

func TestRowsViewSharesStorage(t *testing.T) {
	a := New(4, 3)
	v := RowsView(a, 1, 3)
	if v.Rows != 2 || v.Cols != 3 {
		t.Fatalf("view shape %dx%d", v.Rows, v.Cols)
	}
	v.Set(0, 0, 42)
	if a.At(1, 0) != 42 {
		t.Error("view does not alias parent storage")
	}
	if avg := testing.AllocsPerRun(100, func() {
		w := RowsView(a, 0, 2)
		_ = w.Rows
	}); avg != 0 {
		t.Errorf("RowsView allocates %v times", avg)
	}
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randMatZ(rng, 6, 10)
	b := randMatZ(rng, 6, 10)

	dst := New(1, 1)
	if d := MaxAbsDiff(MulInto(dst, a, b), Mul(a, b)); d != 0 {
		t.Errorf("MulInto differs by %g", d)
	}
	if d := MaxAbsDiff(TransposeInto(New(1, 1), a), Transpose(a)); d != 0 {
		t.Errorf("TransposeInto differs by %g", d)
	}
	if d := MaxAbsDiff(CopyInto(New(1, 1), a), a); d != 0 {
		t.Errorf("CopyInto differs by %g", d)
	}
	s := ScaleInPlace(a.Clone(), 2.5)
	if d := MaxAbsDiff(s, Scale(a, 2.5)); d != 0 {
		t.Errorf("ScaleInPlace differs by %g", d)
	}
	// SiLUFast tracks SiLU within a couple of ulps.
	f1, f2 := a.Clone(), a.Clone()
	SiLU(f1)
	SiLUFast(f2)
	for i := range f1.Data {
		d := math.Abs(float64(f1.Data[i] - f2.Data[i]))
		if d > 1e-6*math.Max(1, math.Abs(float64(f1.Data[i]))) {
			t.Fatalf("SiLUFast diverges at %d: %g vs %g", i, f2.Data[i], f1.Data[i])
		}
	}
}

func TestReshapeReusesCapacity(t *testing.T) {
	m := New(4, 4)
	data := &m.Data[0]
	m.Reshape(2, 8)
	if &m.Data[0] != data {
		t.Error("reshape within capacity reallocated")
	}
	if m.Rows != 2 || m.Cols != 8 {
		t.Errorf("shape %dx%d after reshape", m.Rows, m.Cols)
	}
	m.Reshape(8, 8)
	if len(m.Data) != 64 {
		t.Errorf("grown reshape has %d elements", len(m.Data))
	}
}
