package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// MatMulAccInto must equal preload + a·b against the naive oracle, across
// shapes that hit the 2-row block and the single-row tail (odd row counts —
// the tail must accumulate, not clear).
func TestMatMulAccIntoMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range propShapes {
		a := randMatZ(rng, sh.m, sh.k)
		b := randMatZ(rng, sh.k, sh.n)
		dst := randMatZ(rng, sh.m, sh.n)
		want := matMulNaive(a, b)
		for i := range want.Data {
			want.Data[i] += dst.Data[i]
		}
		MatMulAccInto(dst, a, b)
		if r := maxRel(t, dst, want); r > 1e-5 {
			t.Errorf("%dx%d·%dx%d acc: differs from oracle by rel %g", sh.m, sh.k, sh.k, sh.n, r)
		}
	}
}

// Accumulating over column-blocks of the contraction (the streamed FFN's
// gather-side pattern: one GEMM slice per arriving chunk) must agree with
// the one-shot product: the per-element addition order is identical when
// blocks fold in sequence.
func TestMatMulAccIntoContractionBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const m, k, n, blocks = 7, 32, 9, 4
	a := randMatZ(rng, m, k)
	b := randMatZ(rng, k, n)
	want := MatMul(a, b)

	dst := New(m, n)
	kb := k / blocks
	for blk := 0; blk < blocks; blk++ {
		ab := New(m, kb)
		bb := New(kb, n)
		for i := 0; i < m; i++ {
			copy(ab.Row(i), a.Row(i)[blk*kb:(blk+1)*kb])
		}
		for i := 0; i < kb; i++ {
			copy(bb.Row(i), b.Row(blk*kb+i))
		}
		MatMulAccInto(dst, ab, bb)
	}
	if r := maxRel(t, dst, want); r > 1e-5 {
		t.Errorf("blockwise accumulation differs from one-shot by rel %g", r)
	}
}

// The parallel accumulate path must agree with the serial one exactly:
// tiles split output rows, and each row's accumulation order is unchanged.
func TestParallelMatMulAccIntoExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randMatZ(rng, 96, 80)
	b := randMatZ(rng, 80, 64)
	base := randMatZ(rng, 96, 64)

	prev := SetWorkers(1)
	defer SetWorkers(prev)
	serial := base.Clone()
	MatMulAccInto(serial, a, b)

	SetWorkers(4)
	parallel := base.Clone()
	MatMulAccInto(parallel, a, b)
	for i := range serial.Data {
		if math.Float32bits(serial.Data[i]) != math.Float32bits(parallel.Data[i]) {
			t.Fatalf("parallel acc differs from serial at %d: %g != %g",
				i, parallel.Data[i], serial.Data[i])
		}
	}
}

func TestMatMulAccIntoShapePanics(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	for _, bad := range []*Mat{New(3, 4), New(2, 5)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for dst %dx%d", bad.Rows, bad.Cols)
				}
			}()
			MatMulAccInto(bad, a, b)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for inner-dimension mismatch")
			}
		}()
		MatMulAccInto(New(2, 4), a, New(5, 4))
	}()
}
