package tensor

import "math"

// Exp32 is a fast float32 e^x for compute kernels: x is rescaled to base 2
// and split as 2^n·e^g with n an integer and |g| ≤ ln2/2, the fractional
// factor evaluated by a degree-6 minimax polynomial (Cephes expf) and the
// 2^n scale applied through the float32 exponent field — the log-base-2
// exponent trick of the paper's Section 3.5, taken to its scalar
// conclusion. Maximum relative error is under 3e-7 (about 2 float32 ulps)
// against math.Exp across the softmax input range; the property test
// asserts the bound.
//
// It exists for the fused attention kernel, where the softmax exp is a
// top-line cost at long context: math.Exp rounds perfectly but computes in
// float64 through a table-driven path several times slower than this.
func Exp32(x float32) float32 {
	// Thresholds where float32 e^x under/overflows.
	if x < -87.33655 {
		return 0
	}
	if x > 88.72283 {
		return float32(math.Inf(1))
	}
	// e^x = 2^n · e^g with n = round(x·log2 e). The residual g is formed
	// from x with ln2 split in two parts (Cody–Waite), so the reduction
	// loses no precision even when |x| is large and x·log2(e) has few
	// fractional bits left in float32.
	fn := float32(math.Floor(float64(x*log2e) + 0.5))
	g := x - fn*ln2Hi - fn*ln2Lo // |g| <= ln2/2 ≈ 0.3466
	// Cephes expf polynomial for e^g on that interval.
	p := float32(1.9875691500e-4)
	p = p*g + 1.3981999507e-3
	p = p*g + 8.3334519073e-3
	p = p*g + 4.1665795894e-2
	p = p*g + 1.6666665459e-1
	p = p*g + 5.0000001201e-1
	eg := 1 + g + g*g*p
	// Scale by 2^n via the exponent field. After the range checks n is in
	// [-126, 128]; both extremes fall outside a single biased exponent
	// (gradual underflow below, Inf encoding above), so split the scale.
	n := int32(fn)
	if n < -126 {
		return eg * scalb2(-126) * scalb2(n+126)
	}
	if n > 127 {
		return eg * scalb2(127) * scalb2(n-127)
	}
	return eg * scalb2(n)
}

// ln2 split into a float32-exact high part and the residual (Cody–Waite),
// so fn·ln2 can be subtracted from x without rounding loss.
const (
	ln2Hi = 0.693359375
	ln2Lo = -2.12194440e-4
)

// scalb2 returns 2^n for n in [-126, 127] via the float32 exponent field.
func scalb2(n int32) float32 {
	return math.Float32frombits(uint32(n+127) << 23)
}
