package tensor

import "math"

// Exp32 is a fast float32 e^x for compute kernels: x is rescaled to base 2
// and split as 2^n·e^g with n an integer and |g| ≤ ln2/2, the fractional
// factor evaluated by a degree-6 minimax polynomial (Cephes expf) and the
// 2^n scale applied through the float32 exponent field — the log-base-2
// exponent trick of the paper's Section 3.5, taken to its scalar
// conclusion. Maximum relative error is under 3e-7 (about 2 float32 ulps)
// against math.Exp across the softmax input range; the property test
// asserts the bound.
//
// It exists for the fused attention kernel, where the softmax exp is a
// top-line cost at long context: math.Exp rounds perfectly but computes in
// float64 through a table-driven path several times slower than this.
func Exp32(x float32) float32 {
	// Thresholds where float32 e^x under/overflows.
	if x < exp32Lo {
		return 0
	}
	if x > exp32Hi {
		return float32(math.Inf(1))
	}
	// e^x = 2^n · e^g with n = round(x·log2 e). The residual g is formed
	// from x with ln2 split in two parts (Cody–Waite), so the reduction
	// loses no precision even when |x| is large and x·log2(e) has few
	// fractional bits left in float32.
	fn := float32(math.Floor(float64(x*log2e) + 0.5))
	g := x - fn*ln2Hi - fn*ln2Lo // |g| <= ln2/2 ≈ 0.3466
	eg := expPoly(g)             // Cephes expf polynomial for e^g on that interval
	// Scale by 2^n via the exponent field. After the range checks n is in
	// [-126, 128]; both extremes fall outside a single biased exponent
	// (gradual underflow below, Inf encoding above), so split the scale.
	n := int32(fn)
	if n < -126 {
		return eg * scalb2(-126) * scalb2(n+126)
	}
	if n > 127 {
		return eg * scalb2(127) * scalb2(n-127)
	}
	return eg * scalb2(n)
}

// ln2 split into a float32-exact high part and the residual (Cody–Waite),
// so fn·ln2 can be subtracted from x without rounding loss.
const (
	ln2Hi = 0.693359375
	ln2Lo = -2.12194440e-4
	// Exp32's under/overflow rails, shared with the batched form.
	exp32Lo = -87.33655
	exp32Hi = 88.72283
)

// Exp32Rows applies Exp32 to every element of xs in place — the batched,
// slice-at-a-time form the softmax paths of the fused attention kernel
// (float32 and int8 alike) run over their score slices. The hot loop
// processes four elements per iteration with the Cody–Waite reduction and
// polynomial fully unrolled and no per-element range branches (softmax
// inputs are max-subtracted, so the rails are cold); a block containing a
// railed or scale-split value falls back to the scalar Exp32, which keeps
// the two forms exactly equal everywhere — the property test asserts
// bit-identical outputs.
func Exp32Rows(xs []float32) {
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		if x0 < exp32Lo || x0 > exp32Hi || x1 < exp32Lo || x1 > exp32Hi ||
			x2 < exp32Lo || x2 > exp32Hi || x3 < exp32Lo || x3 > exp32Hi {
			xs[i] = Exp32(x0)
			xs[i+1] = Exp32(x1)
			xs[i+2] = Exp32(x2)
			xs[i+3] = Exp32(x3)
			continue
		}
		fn0 := float32(math.Floor(float64(x0*log2e) + 0.5))
		fn1 := float32(math.Floor(float64(x1*log2e) + 0.5))
		fn2 := float32(math.Floor(float64(x2*log2e) + 0.5))
		fn3 := float32(math.Floor(float64(x3*log2e) + 0.5))
		g0 := x0 - fn0*ln2Hi - fn0*ln2Lo
		g1 := x1 - fn1*ln2Hi - fn1*ln2Lo
		g2 := x2 - fn2*ln2Hi - fn2*ln2Lo
		g3 := x3 - fn3*ln2Hi - fn3*ln2Lo
		p0 := expPoly(g0)
		p1 := expPoly(g1)
		p2 := expPoly(g2)
		p3 := expPoly(g3)
		n0, n1, n2, n3 := int32(fn0), int32(fn1), int32(fn2), int32(fn3)
		if n0 < -126 || n0 > 127 || n1 < -126 || n1 > 127 ||
			n2 < -126 || n2 > 127 || n3 < -126 || n3 > 127 {
			// Gradual underflow / near-Inf scales need Exp32's split
			// scaling; only the extreme ~1-ulp band of the range hits this.
			xs[i] = Exp32(x0)
			xs[i+1] = Exp32(x1)
			xs[i+2] = Exp32(x2)
			xs[i+3] = Exp32(x3)
			continue
		}
		xs[i] = p0 * scalb2(n0)
		xs[i+1] = p1 * scalb2(n1)
		xs[i+2] = p2 * scalb2(n2)
		xs[i+3] = p3 * scalb2(n3)
	}
	for ; i < len(xs); i++ {
		xs[i] = Exp32(xs[i])
	}
}

// expPoly evaluates e^g for |g| ≤ ln2/2 — the Cephes polynomial Exp32
// uses, factored out so the batched form computes the identical value.
func expPoly(g float32) float32 {
	p := float32(1.9875691500e-4)
	p = p*g + 1.3981999507e-3
	p = p*g + 8.3334519073e-3
	p = p*g + 4.1665795894e-2
	p = p*g + 1.6666665459e-1
	p = p*g + 5.0000001201e-1
	return 1 + g + g*g*p
}

// scalb2 returns 2^n for n in [-126, 127] via the float32 exponent field.
func scalb2(n int32) float32 {
	return math.Float32frombits(uint32(n+127) << 23)
}
