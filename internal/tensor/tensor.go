// Package tensor is a minimal dense float32 matrix library sufficient for a
// decoder-only Transformer forward pass: matmul, row softmax (including the
// paper's log-base-2 fast path), RMS normalization, GELU/SiLU activations,
// and row/column slicing used by the sharded execution engine.
//
// Matrices are row-major with cache-line-aligned backing storage. The
// compute kernels route through internal/simd's runtime-dispatched layer
// (AVX2 on capable x86, a bit-identical pure-Go twin elsewhere or under
// ESTI_NOSIMD=1); accumulation order is fixed by that package's
// 16-lane/reduction-tree contract, so every result is identical across
// machines and dispatch paths.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major float32 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// New allocates a zero matrix. Backing storage is cache-line aligned so
// the simd layer's vector loads never split lines; FromSlice-wrapped data
// keeps whatever alignment the caller's slice has (the kernels accept
// both — alignment is performance, not correctness).
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: alignedFloats(rows * cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(data []float32, rows, cols int) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d elements cannot form %dx%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r (shared storage).
func (m *Mat) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// FillRand fills the matrix with scaled uniform noise from a seeded source,
// so tests and examples are reproducible.
func (m *Mat) FillRand(rng *rand.Rand, scale float32) *Mat {
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// Add returns a+b elementwise.
func Add(a, b *Mat) *Mat {
	checkSameShape("add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Mat) *Mat {
	checkSameShape("add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
	return a
}

// Mul returns the elementwise product.
func Mul(a, b *Mat) *Mat {
	checkSameShape("mul", a, b)
	return MulInto(New(a.Rows, a.Cols), a, b)
}

// MulInto computes the elementwise product a⊙b into dst (reshaped to a's
// shape) and returns dst. dst may alias a or b.
func MulInto(dst, a, b *Mat) *Mat {
	checkSameShape("mul", a, b)
	dst.Reshape(a.Rows, a.Cols)
	bd := b.Data[:len(a.Data)]
	od := dst.Data[:len(a.Data)]
	for i, v := range a.Data {
		od[i] = v * bd[i]
	}
	return dst
}

// Scale multiplies every element by s, returning a new matrix.
func Scale(a *Mat, s float32) *Mat {
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// ScaleInPlace multiplies every element by s in place and returns a.
func ScaleInPlace(a *Mat, s float32) *Mat {
	for i := range a.Data {
		a.Data[i] *= s
	}
	return a
}

// CopyInto copies src into dst (reshaped to src's shape) and returns dst.
func CopyInto(dst, src *Mat) *Mat {
	dst.Reshape(src.Rows, src.Cols)
	copy(dst.Data, src.Data)
	return dst
}

func checkSameShape(op string, a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// SliceCols returns a copy of columns [lo, hi).
func SliceCols(a *Mat, lo, hi int) *Mat {
	if lo < 0 || hi > a.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: column slice [%d,%d) of %d", lo, hi, a.Cols))
	}
	out := New(a.Rows, hi-lo)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i), a.Row(i)[lo:hi])
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi).
func SliceRows(a *Mat, lo, hi int) *Mat {
	if lo < 0 || hi > a.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) of %d", lo, hi, a.Rows))
	}
	out := New(hi-lo, a.Cols)
	copy(out.Data, a.Data[lo*a.Cols:hi*a.Cols])
	return out
}

// RowsView returns a zero-copy view of rows [lo, hi): the returned matrix
// shares a's storage. It is returned by value so hot paths can take views
// without a heap allocation.
func RowsView(a *Mat, lo, hi int) Mat {
	if lo < 0 || hi > a.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row view [%d,%d) of %d", lo, hi, a.Rows))
	}
	return Mat{Rows: hi - lo, Cols: a.Cols, Data: a.Data[lo*a.Cols : hi*a.Cols]}
}

// ConcatCols concatenates matrices with equal row counts side by side.
func ConcatCols(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic("tensor: concatCols row mismatch")
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		orow := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// ConcatRows stacks matrices with equal column counts.
func ConcatRows(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("tensor: concat of nothing")
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic("tensor: concatRows col mismatch")
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Mat) *Mat {
	return TransposeInto(New(a.Cols, a.Rows), a)
}

// TransposeInto computes aᵀ into dst (reshaped to [a.Cols, a.Rows]) and
// returns dst. dst must not alias a.
func TransposeInto(dst, a *Mat) *Mat {
	dst.Reshape(a.Cols, a.Rows)
	rows, cols := a.Rows, a.Cols
	ad, od := a.Data, dst.Data
	for i := 0; i < rows; i++ {
		arow := ad[i*cols : i*cols+cols]
		for j, v := range arow {
			od[j*rows+i] = v
		}
	}
	return dst
}

// log2e converts natural exponent to base-2 exponent: e^x = 2^(x·log2(e)).
const log2e = 1.4426950408889634

// SoftmaxRows applies a numerically stable softmax to each row in place.
func SoftmaxRows(a *Mat) {
	softmaxRows(a, false)
}

// SoftmaxRowsBase2 is the paper's "faster log-base-2 implementation of
// Softmax" (Section 3.5): it computes 2^((x-max)·log2 e) instead of
// e^(x-max), which maps to cheaper exponent hardware. Numerically it is the
// same function; the test suite asserts equality with SoftmaxRows.
func SoftmaxRowsBase2(a *Mat) {
	softmaxRows(a, true)
}

func softmaxRows(a *Mat, base2 bool) {
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		maxV := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		if math.IsInf(float64(maxV), -1) {
			// Every entry is -Inf — a fully masked attention row. The
			// limit of softmax as all logits go to -Inf together is an
			// all-zero distribution (no attendable position), not the
			// NaNs that exp(-Inf - -Inf) would produce.
			for j := range row {
				row[j] = 0
			}
			continue
		}
		var sum float32
		for j, v := range row {
			var e float64
			if base2 {
				e = math.Exp2(float64(v-maxV) * log2e)
			} else {
				e = math.Exp(float64(v - maxV))
			}
			row[j] = float32(e)
			sum += row[j]
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// RMSNorm applies root-mean-square layer normalization per row with a learned
// gain, returning a new matrix (PaLM-style, no bias, no mean subtraction).
func RMSNorm(a *Mat, gain []float32, eps float32) *Mat {
	if len(gain) != a.Cols {
		panic(fmt.Sprintf("tensor: rmsnorm gain %d vs cols %d", len(gain), a.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(a.Cols)+float64(eps)))
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v * inv * gain[j]
		}
	}
	return out
}

// GELU applies the tanh-approximated Gaussian error linear unit in place.
func GELU(a *Mat) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range a.Data {
		x := float64(v)
		a.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// SiLU applies x·sigmoid(x) in place (the "swish" activation PaLM gates
// with).
func SiLU(a *Mat) {
	for i, v := range a.Data {
		a.Data[i] = v * sigmoid(v)
	}
}

// SiLUBase2 is the log-base-2 swish variant of Section 3.5: sigmoid via
// 2^(-x·log2 e). Identical function, asserted equal in tests.
func SiLUBase2(a *Mat) {
	for i, v := range a.Data {
		e := float32(math.Exp2(float64(-v) * log2e))
		a.Data[i] = v / (1 + e)
	}
}

// SiLUFast is SiLU with the sigmoid's exponential computed by Exp32
// instead of float64 math.Exp — the engine's hot-path variant, within ~2
// float32 ulps of SiLU (the same error class as the fused attention
// softmax) at a fraction of the cost.
func SiLUFast(a *Mat) {
	for i, v := range a.Data {
		a.Data[i] = v / (1 + Exp32(-v))
	}
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// MaxAbsDiff returns the maximum absolute elementwise difference.
func MaxAbsDiff(a, b *Mat) float64 {
	checkSameShape("diff", a, b)
	var maxD float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// AllClose reports whether all elements agree within atol + rtol·|b|.
func AllClose(a, b *Mat, rtol, atol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		av, bv := float64(a.Data[i]), float64(b.Data[i])
		if math.Abs(av-bv) > atol+rtol*math.Abs(bv) {
			return false
		}
	}
	return true
}
