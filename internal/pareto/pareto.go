// Package pareto extracts Pareto frontiers from 2D point sets, as used to
// draw the paper's cost-vs-latency (Figure 1) and MFU-vs-latency
// (Figure C.1) curves: each plotted line is the set of configurations not
// dominated by any other configuration of the same model/dtype.
package pareto

import "sort"

// Point is a candidate configuration projected onto two objectives. X is
// always minimized; Y is minimized or maximized depending on the frontier
// call. Label carries the configuration identity through the selection.
type Point struct {
	X, Y  float64
	Label string
}

// MinMin returns the subset of points not dominated under (minimize X,
// minimize Y), sorted by ascending X. A point p dominates q if p.X <= q.X
// and p.Y <= q.Y with at least one strict.
func MinMin(points []Point) []Point {
	return frontier(points, false)
}

// MinMax returns the subset not dominated under (minimize X, maximize Y),
// sorted by ascending X — latency on X, MFU on Y.
func MinMax(points []Point) []Point {
	return frontier(points, true)
}

func frontier(points []Point, maximizeY bool) []Point {
	if len(points) == 0 {
		return nil
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	// Sort by X ascending; for equal X keep the better Y first so the
	// sweep retains it.
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		if maximizeY {
			return ps[i].Y > ps[j].Y
		}
		return ps[i].Y < ps[j].Y
	})
	var out []Point
	for _, p := range ps {
		better := func(y float64) bool {
			if maximizeY {
				return p.Y > y
			}
			return p.Y < y
		}
		if len(out) == 0 || better(out[len(out)-1].Y) {
			// Drop duplicates of the same (X, Y).
			if len(out) > 0 && out[len(out)-1].X == p.X && out[len(out)-1].Y == p.Y {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// Dominates reports whether a dominates b under (min X, min Y).
func Dominates(a, b Point) bool {
	return a.X <= b.X && a.Y <= b.Y && (a.X < b.X || a.Y < b.Y)
}
