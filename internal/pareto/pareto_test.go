package pareto

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinMinBasic(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 10, Label: "a"},
		{X: 2, Y: 5, Label: "b"},
		{X: 3, Y: 7, Label: "c"}, // dominated by b
		{X: 4, Y: 2, Label: "d"},
		{X: 5, Y: 2, Label: "e"}, // dominated by d
	}
	f := MinMin(pts)
	want := []string{"a", "b", "d"}
	if len(f) != len(want) {
		t.Fatalf("frontier size %d, want %d (%v)", len(f), len(want), f)
	}
	for i, w := range want {
		if f[i].Label != w {
			t.Errorf("frontier[%d] = %s, want %s", i, f[i].Label, w)
		}
	}
}

func TestMinMaxBasic(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 0.1, Label: "fast-lowmfu"},
		{X: 2, Y: 0.4, Label: "mid"},
		{X: 3, Y: 0.3, Label: "dominated"},
		{X: 4, Y: 0.8, Label: "slow-highmfu"},
	}
	f := MinMax(pts)
	want := []string{"fast-lowmfu", "mid", "slow-highmfu"}
	if len(f) != len(want) {
		t.Fatalf("frontier size %d, want %d", len(f), len(want))
	}
	for i, w := range want {
		if f[i].Label != w {
			t.Errorf("frontier[%d] = %s, want %s", i, f[i].Label, w)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if MinMin(nil) != nil {
		t.Error("empty frontier should be nil")
	}
	f := MinMin([]Point{{X: 1, Y: 1, Label: "only"}})
	if len(f) != 1 || f[0].Label != "only" {
		t.Error("single point should be its own frontier")
	}
}

func TestEqualXKeepsBest(t *testing.T) {
	f := MinMin([]Point{{X: 1, Y: 5, Label: "worse"}, {X: 1, Y: 2, Label: "better"}})
	if len(f) != 1 || f[0].Label != "better" {
		t.Errorf("equal-X frontier = %v, want just 'better'", f)
	}
}

func TestDuplicatePointsCollapse(t *testing.T) {
	f := MinMin([]Point{{X: 1, Y: 1, Label: "a"}, {X: 1, Y: 1, Label: "b"}})
	if len(f) != 1 {
		t.Errorf("duplicate points should collapse, got %d", len(f))
	}
}

func TestDominates(t *testing.T) {
	if !Dominates(Point{X: 1, Y: 1}, Point{X: 2, Y: 2}) {
		t.Error("strict dominance failed")
	}
	if !Dominates(Point{X: 1, Y: 2}, Point{X: 1, Y: 3}) {
		t.Error("equal-X dominance failed")
	}
	if Dominates(Point{X: 1, Y: 1}, Point{X: 1, Y: 1}) {
		t.Error("a point must not dominate itself")
	}
	if Dominates(Point{X: 1, Y: 3}, Point{X: 2, Y: 2}) {
		t.Error("incomparable points must not dominate")
	}
}

// Properties: frontier points are mutually non-dominated; every input point
// is dominated by (or equal to) some frontier point; frontier is sorted by X
// with strictly improving Y.
func TestFrontierProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(rng.Intn(20)), Y: float64(rng.Intn(20))}
		}
		fr := MinMin(pts)
		if len(fr) == 0 {
			return false
		}
		if !sort.SliceIsSorted(fr, func(i, j int) bool { return fr[i].X < fr[j].X }) {
			return false
		}
		for i := 1; i < len(fr); i++ {
			if fr[i].Y >= fr[i-1].Y {
				return false // Y must strictly improve along the frontier
			}
		}
		for i := range fr {
			for j := range fr {
				if i != j && Dominates(fr[i], fr[j]) {
					return false
				}
			}
		}
		for _, p := range pts {
			covered := false
			for _, q := range fr {
				if q == p || Dominates(q, p) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInputNotMutated(t *testing.T) {
	pts := []Point{{X: 3, Y: 1}, {X: 1, Y: 3}, {X: 2, Y: 2}}
	orig := make([]Point, len(pts))
	copy(orig, pts)
	MinMin(pts)
	for i := range pts {
		if pts[i] != orig[i] {
			t.Fatal("MinMin mutated its input")
		}
	}
}
