// Package partition implements the paper's multi-axis tensor-partitioning
// framework (Section 3): the five feedforward-layer layouts (1D
// weight-stationary, 2D weight-stationary, and the X / XY / XYZ
// weight-gathered variants) and the attention-layer sharding choices
// (sharded over heads vs sharded over batch), together with the per-chip
// shard algebra each layout induces — how the E (d_model), F (d_ff), token,
// head, and batch dimensions split across the physical torus axes.
//
// The numeric cost of the communication these layouts require lives in
// package commcost; the wall-clock model lives in package perf. This package
// is pure shape algebra.
package partition

import (
	"fmt"

	"esti/internal/hardware"
)

// FFNLayout enumerates the feedforward partitioning strategies of
// Sections 3.2.1-3.2.3.
type FFNLayout int

const (
	// FFN1DWeightStationary shards each weight matrix along d_ff over all
	// chips (Megatron-style); activations are aggregated over all chips
	// between every pair of matmuls.
	FFN1DWeightStationary FFNLayout = iota
	// FFN2DWeightStationary shards weights along both d_model (over the
	// torus X axis) and d_ff (over Y·Z); activation aggregation alternates
	// between the two axes, so communication scales as 1/sqrt(nchips).
	FFN2DWeightStationary
	// FFNWeightGatheredX keeps activations batch-sharded over X and
	// all-gathers weights over X just before each matmul.
	FFNWeightGatheredX
	// FFNWeightGatheredXY gathers weights over X and Y; activations are
	// batch-sharded over X·Y.
	FFNWeightGatheredXY
	// FFNWeightGatheredXYZ fully gathers weights over all chips;
	// activations stay batch-sharded over all chips and need no
	// aggregation at all.
	FFNWeightGatheredXYZ
)

// FFNLayouts lists all feedforward layouts in presentation order.
var FFNLayouts = []FFNLayout{
	FFN1DWeightStationary,
	FFN2DWeightStationary,
	FFNWeightGatheredX,
	FFNWeightGatheredXY,
	FFNWeightGatheredXYZ,
}

func (l FFNLayout) String() string {
	switch l {
	case FFN1DWeightStationary:
		return "WS 1D"
	case FFN2DWeightStationary:
		return "WS 2D"
	case FFNWeightGatheredX:
		return "WG X"
	case FFNWeightGatheredXY:
		return "WG XY"
	case FFNWeightGatheredXYZ:
		return "WG XYZ"
	}
	return fmt.Sprintf("FFNLayout(%d)", int(l))
}

// WeightGathered reports whether the layout transfers weights rather than
// keeping them stationary.
func (l FFNLayout) WeightGathered() bool {
	switch l {
	case FFNWeightGatheredX, FFNWeightGatheredXY, FFNWeightGatheredXYZ:
		return true
	}
	return false
}

// AttnLayout enumerates the attention sharding strategies of Section 3.3.
type AttnLayout int

const (
	// AttnShardHeads partitions Q/K/V activations and the KV cache over
	// the heads dimension. For multiquery models the single K/V head must
	// then be replicated on every chip, forfeiting the memory saving.
	AttnShardHeads AttnLayout = iota
	// AttnShardBatch partitions the KV cache over the batch dimension
	// (the paper's optimized multiquery layout), at the price of a pair
	// of all-to-all reshards of the small per-step Q/K/V tensors.
	AttnShardBatch
)

func (l AttnLayout) String() string {
	switch l {
	case AttnShardHeads:
		return "shard-heads"
	case AttnShardBatch:
		return "shard-batch"
	}
	return fmt.Sprintf("AttnLayout(%d)", int(l))
}

// FFNPlan is the shard algebra a feedforward layout induces on a given
// torus. All splits are counts of equal parts; dimensions must be divisible
// by their split in a functional execution (the analytical model works with
// real-valued shard sizes).
type FFNPlan struct {
	Layout FFNLayout
	Torus  hardware.Torus

	// ESplit and FSplit are the number of ways the d_model and d_ff
	// dimensions are split at *compute* time (after any weight gathering).
	ESplit, FSplit int
	// TokenSplit is the number of ways the token (batch·sequence)
	// dimension is split at compute time. Weight-stationary layouts keep
	// tokens replicated (split 1); weight-gathered layouts shard tokens
	// over the gather group.
	TokenSplit int
	// GatherGroup is the set of torus axes weights are all-gathered over
	// (nil for weight-stationary layouts).
	GatherGroup hardware.AxisGroup
	// StoredESplit and StoredFSplit describe the at-rest weight sharding,
	// which is ExFyz for every layout except 1D weight-stationary (the
	// paper keeps storage identical so prefill and decode can switch
	// layouts without resharding weights).
	StoredESplit, StoredFSplit int
}

// Chips returns the torus chip count.
func (p FFNPlan) Chips() int { return p.Torus.Chips() }

// PlanFFN computes the shard algebra for a layout on a torus.
func PlanFFN(l FFNLayout, t hardware.Torus) FFNPlan {
	n := t.Chips()
	yz := t.Y * t.Z
	p := FFNPlan{Layout: l, Torus: t}
	switch l {
	case FFN1DWeightStationary:
		p.ESplit, p.FSplit, p.TokenSplit = 1, n, 1
		p.StoredESplit, p.StoredFSplit = 1, n
	case FFN2DWeightStationary:
		p.ESplit, p.FSplit, p.TokenSplit = t.X, yz, 1
		p.StoredESplit, p.StoredFSplit = t.X, yz
	case FFNWeightGatheredX:
		p.ESplit, p.FSplit, p.TokenSplit = 1, yz, t.X
		p.GatherGroup = hardware.GroupX
		p.StoredESplit, p.StoredFSplit = t.X, yz
	case FFNWeightGatheredXY:
		p.ESplit, p.FSplit, p.TokenSplit = 1, t.Z, t.X*t.Y
		p.GatherGroup = hardware.GroupXY
		p.StoredESplit, p.StoredFSplit = t.X, yz
	case FFNWeightGatheredXYZ:
		p.ESplit, p.FSplit, p.TokenSplit = 1, 1, n
		p.GatherGroup = hardware.GroupXYZ
		p.StoredESplit, p.StoredFSplit = t.X, yz
	default:
		panic(fmt.Sprintf("partition: unknown FFN layout %d", int(l)))
	}
	return p
}

// GatherFactor is the number of chips weights are all-gathered over
// (the paper's N; 1 for weight-stationary layouts).
func (p FFNPlan) GatherFactor() int {
	if p.GatherGroup == nil {
		return 1
	}
	return p.GatherGroup.Size(p.Torus)
}

// MatmulShape is the per-chip dense matmul [M,K]×[K,N] a layout produces.
type MatmulShape struct {
	M, K, N float64
}

// Stage identifies the two matmul stages of a Transformer layer under the
// fused parallel formulation: the input projections (FFN-in fused with
// W_Q/W_K/W_V) and the output projections (FFN-out fused with W_O).
type Stage int

const (
	// StageIn is the fused input projection.
	StageIn Stage = iota
	// StageOut is the fused output projection.
	StageOut
)

// MatmulShapes returns the per-chip matmul shapes of both stages for a layer
// with logical dims E (d_model) and F (d_ff representative width), given the
// number of logical tokens in the pass. The shapes drive the efficiency
// model in package perf: narrow per-chip K/N dims and small M are what make
// sharded decode matmuls inefficient.
func (p FFNPlan) MatmulShapes(tokens, e, f float64) [2]MatmulShape {
	m := tokens / float64(p.TokenSplit)
	ke := e / float64(p.ESplit)
	nf := f / float64(p.FSplit)
	return [2]MatmulShape{
		StageIn:  {M: m, K: ke, N: nf},
		StageOut: {M: m, K: nf, N: ke},
	}
}

// WeightBytesPerChip is the at-rest weight storage per chip for a layer of
// layerBytes total (identical for every layout: weight-gathered layouts
// transfer but do not duplicate storage).
func (p FFNPlan) WeightBytesPerChip(layerBytes float64) float64 {
	return layerBytes / float64(p.Chips())
}

// AttnPlan is the shard algebra for the attention KV cache and the per-step
// attention tensors.
type AttnPlan struct {
	Layout AttnLayout
	Torus  hardware.Torus
	// Heads and KVHeads mirror the model config.
	Heads, KVHeads int
}

// PlanAttn builds an attention plan.
func PlanAttn(l AttnLayout, t hardware.Torus, heads, kvHeads int) AttnPlan {
	return AttnPlan{Layout: l, Torus: t, Heads: heads, KVHeads: kvHeads}
}

// KVReplication is the number of chips each KV-cache element is stored on.
// Sharded-over-batch keeps exactly one copy. Sharded-over-heads keeps one
// copy while chips ≤ KV heads, and replicates KV heads across chip groups
// beyond that — which for multiquery (1 KV head) means full replication,
// the pathology Figure 4(b) illustrates.
func (p AttnPlan) KVReplication() float64 {
	n := p.Torus.Chips()
	switch p.Layout {
	case AttnShardBatch:
		return 1
	case AttnShardHeads:
		if n <= p.KVHeads {
			return 1
		}
		return float64(n) / float64(p.KVHeads)
	}
	panic(fmt.Sprintf("partition: unknown attention layout %d", int(p.Layout)))
}

// KVBytesPerChip converts a logical KV-cache size (bytes for the whole
// batch·context·model) into the per-chip footprint under this layout.
func (p AttnPlan) KVBytesPerChip(logicalBytes float64) float64 {
	n := float64(p.Torus.Chips())
	return logicalBytes * p.KVReplication() / n
}

// NeedsAllToAll reports whether the layout reshards per-step activations
// with all-to-all collectives (the batch-sharded layout does, Figure 5(b)).
func (p AttnPlan) NeedsAllToAll() bool { return p.Layout == AttnShardBatch }

// BatchDivisibility is the minimum batch size the layout can shard without
// padding: batch-sharding needs at least one example per chip in the
// all-to-all group. The paper notes no speedup below batch 4 (the minimum
// TPU v4 torus axis); we expose the constraint so sweeps can respect it.
func (p AttnPlan) BatchDivisibility() int {
	if p.Layout == AttnShardBatch {
		return p.Torus.Chips()
	}
	return 1
}
