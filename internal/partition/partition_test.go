package partition

import (
	"testing"
	"testing/quick"

	"esti/internal/hardware"
)

func torus444() hardware.Torus { return hardware.Torus{X: 4, Y: 4, Z: 4} }

func TestPlanFFNSplits(t *testing.T) {
	tr := torus444()
	cases := []struct {
		layout                    FFNLayout
		eSplit, fSplit, tokSplit  int
		gather                    int
		storedESplit, storedFSplt int
	}{
		{FFN1DWeightStationary, 1, 64, 1, 1, 1, 64},
		{FFN2DWeightStationary, 4, 16, 1, 1, 4, 16},
		{FFNWeightGatheredX, 1, 16, 4, 4, 4, 16},
		{FFNWeightGatheredXY, 1, 4, 16, 16, 4, 16},
		{FFNWeightGatheredXYZ, 1, 1, 64, 64, 4, 16},
	}
	for _, c := range cases {
		p := PlanFFN(c.layout, tr)
		if p.ESplit != c.eSplit || p.FSplit != c.fSplit || p.TokenSplit != c.tokSplit {
			t.Errorf("%v: splits E=%d F=%d T=%d, want %d/%d/%d",
				c.layout, p.ESplit, p.FSplit, p.TokenSplit, c.eSplit, c.fSplit, c.tokSplit)
		}
		if got := p.GatherFactor(); got != c.gather {
			t.Errorf("%v: gather factor %d, want %d", c.layout, got, c.gather)
		}
		if p.StoredESplit != c.storedESplit || p.StoredFSplit != c.storedFSplt {
			t.Errorf("%v: stored splits %d/%d, want %d/%d",
				c.layout, p.StoredESplit, p.StoredFSplit, c.storedESplit, c.storedFSplt)
		}
	}
}

// Invariant: work conservation — every layout splits the layer's matmul
// FLOPs evenly, so the product of the compute-time splits equals the chip
// count (each chip computes exactly 1/n of the tokens×E×F work).
func TestPlanFFNShardConservation(t *testing.T) {
	f := func(xe, ye, ze uint8, li uint8) bool {
		tr := hardware.Torus{X: 1 << (xe % 4), Y: 1 << (ye % 4), Z: 1 << (ze % 4)}
		l := FFNLayouts[int(li)%len(FFNLayouts)]
		p := PlanFFN(l, tr)
		return p.ESplit*p.FSplit*p.TokenSplit == tr.Chips()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatmulShapes(t *testing.T) {
	p := PlanFFN(FFN2DWeightStationary, torus444())
	shapes := p.MatmulShapes(512, 18432, 73728)
	in, out := shapes[StageIn], shapes[StageOut]
	if in.M != 512 || in.K != 4608 || in.N != 4608 {
		t.Errorf("stage-in shape = %+v, want M=512 K=4608 N=4608", in)
	}
	if out.M != 512 || out.K != 4608 || out.N != 4608 {
		t.Errorf("stage-out shape = %+v, want M=512 K=4608 N=4608", out)
	}

	p = PlanFFN(FFNWeightGatheredXYZ, torus444())
	shapes = p.MatmulShapes(1048576, 18432, 73728)
	if shapes[StageIn].M != 16384 || shapes[StageIn].K != 18432 || shapes[StageIn].N != 73728 {
		t.Errorf("WG-XYZ stage-in = %+v, want M=16384 K=18432 N=73728", shapes[StageIn])
	}
}

func TestWeightBytesPerChipUniformAcrossLayouts(t *testing.T) {
	const layerBytes = 4.69e9
	for _, l := range FFNLayouts {
		p := PlanFFN(l, torus444())
		if got, want := p.WeightBytesPerChip(layerBytes), layerBytes/64; got != want {
			t.Errorf("%v: weight bytes/chip = %g, want %g", l, got, want)
		}
	}
}

func TestKVReplication(t *testing.T) {
	tr := torus444() // 64 chips
	cases := []struct {
		name     string
		layout   AttnLayout
		heads    int
		kvHeads  int
		wantRepl float64
	}{
		{"MQA batch-sharded", AttnShardBatch, 48, 1, 1},
		{"MQA head-sharded replicates fully", AttnShardHeads, 48, 1, 64},
		{"MHA head-sharded, heads<chips", AttnShardHeads, 48, 48, 64.0 / 48.0},
		{"MHA head-sharded, heads>=chips", AttnShardHeads, 128, 128, 1},
		{"MHA batch-sharded", AttnShardBatch, 128, 128, 1},
	}
	for _, c := range cases {
		p := PlanAttn(c.layout, tr, c.heads, c.kvHeads)
		if got := p.KVReplication(); got != c.wantRepl {
			t.Errorf("%s: replication = %g, want %g", c.name, got, c.wantRepl)
		}
	}
}

// The heart of Section 3.3: batch sharding divides per-chip KV bytes by
// nchips; head sharding of a multiquery model does not shrink them at all.
func TestKVBytesPerChipMultiquery(t *testing.T) {
	tr := torus444()
	const logical = 1 << 30
	batch := PlanAttn(AttnShardBatch, tr, 48, 1)
	heads := PlanAttn(AttnShardHeads, tr, 48, 1)
	if got, want := batch.KVBytesPerChip(logical), float64(logical)/64; got != want {
		t.Errorf("batch-sharded KV/chip = %g, want %g", got, want)
	}
	if got, want := heads.KVBytesPerChip(logical), float64(logical); got != want {
		t.Errorf("head-sharded MQA KV/chip = %g, want %g (fully replicated)", got, want)
	}
	if ratio := heads.KVBytesPerChip(logical) / batch.KVBytesPerChip(logical); ratio != 64 {
		t.Errorf("optimized/baseline ratio = %g, want nchips = 64", ratio)
	}
}

func TestNeedsAllToAll(t *testing.T) {
	tr := torus444()
	if !PlanAttn(AttnShardBatch, tr, 48, 1).NeedsAllToAll() {
		t.Error("batch-sharded must reshard with all-to-all")
	}
	if PlanAttn(AttnShardHeads, tr, 48, 1).NeedsAllToAll() {
		t.Error("head-sharded must not need all-to-all")
	}
}

func TestBatchDivisibility(t *testing.T) {
	tr := torus444()
	if got := PlanAttn(AttnShardBatch, tr, 48, 1).BatchDivisibility(); got != 64 {
		t.Errorf("batch-sharded divisibility = %d, want 64", got)
	}
	if got := PlanAttn(AttnShardHeads, tr, 48, 1).BatchDivisibility(); got != 1 {
		t.Errorf("head-sharded divisibility = %d, want 1", got)
	}
}

func TestStringers(t *testing.T) {
	want := map[FFNLayout]string{
		FFN1DWeightStationary: "WS 1D",
		FFN2DWeightStationary: "WS 2D",
		FFNWeightGatheredX:    "WG X",
		FFNWeightGatheredXY:   "WG XY",
		FFNWeightGatheredXYZ:  "WG XYZ",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(l), l.String(), s)
		}
	}
	if AttnShardHeads.String() != "shard-heads" || AttnShardBatch.String() != "shard-batch" {
		t.Error("AttnLayout strings wrong")
	}
	if FFNLayout(99).String() == "" || AttnLayout(99).String() == "" {
		t.Error("unknown layout String should be non-empty")
	}
}

func TestWeightGathered(t *testing.T) {
	if FFN1DWeightStationary.WeightGathered() || FFN2DWeightStationary.WeightGathered() {
		t.Error("WS layouts must not be weight-gathered")
	}
	for _, l := range []FFNLayout{FFNWeightGatheredX, FFNWeightGatheredXY, FFNWeightGatheredXYZ} {
		if !l.WeightGathered() {
			t.Errorf("%v must be weight-gathered", l)
		}
	}
}

func TestPlanFFNPanicsOnUnknownLayout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PlanFFN(unknown) did not panic")
		}
	}()
	PlanFFN(FFNLayout(42), torus444())
}

func TestKVReplicationPanicsOnUnknownLayout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("KVReplication(unknown) did not panic")
		}
	}()
	p := AttnPlan{Layout: AttnLayout(42), Torus: torus444(), Heads: 8, KVHeads: 1}
	p.KVReplication()
}
