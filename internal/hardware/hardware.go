// Package hardware models the accelerator system the paper's analysis is
// parameterized over: a set of identical chips connected in a 3D torus.
//
// Every quantity in the paper's analytical model (Pope et al., MLSYS 2023,
// Sections 2-3 and Appendix A) is a function of five hardware constants:
// peak matmul FLOP/s, HBM capacity, HBM bandwidth, per-chip interconnect
// bandwidth, and the torus shape. The TPUv4 preset carries the constants the
// paper states for Google TPU v4 chips.
package hardware

import (
	"fmt"
	"sort"
)

// Chip describes a single accelerator chip.
type Chip struct {
	// PeakFLOPS is the peak dense-matmul throughput in FLOP/s
	// (bfloat16 multiply-accumulate counted as 2 FLOPs).
	PeakFLOPS float64
	// HBMBytes is the high-bandwidth-memory capacity in bytes.
	HBMBytes float64
	// HBMBandwidth is the HBM read bandwidth in bytes/s.
	HBMBandwidth float64
	// NetworkBandwidth is the interconnect bandwidth in bytes/s available
	// to a chip for collective communication (aggregate over its torus
	// links, as used by the paper's cost formulas).
	NetworkBandwidth float64
}

// TPUv4 returns the chip constants the paper reports for a TPU v4 chip:
// 275 TFLOPS bf16, 32 GiB HBM at 1200 GB/s, and 270 GB/s interconnect
// bandwidth in a 3D torus topology.
func TPUv4() Chip {
	return Chip{
		PeakFLOPS:        275e12,
		HBMBytes:         32 * (1 << 30),
		HBMBandwidth:     1200e9,
		NetworkBandwidth: 270e9,
	}
}

// A100SXM returns constants for an NVIDIA A100-SXM4-80GB, the chip behind
// the FasterTransformer baseline: 312 TFLOPS bf16, 80 GB HBM2e at ~2 TB/s,
// and 300 GB/s of NVLink bandwidth per GPU (600 GB/s bidirectional). The
// paper notes its partitioning strategies "generalize to single- and
// multi-node NVLink networks in GPU systems"; modeling an NVSwitch island
// as a flat 1D ring torus approximates its all-to-all fabric for the
// collective formulas.
func A100SXM() Chip {
	return Chip{
		PeakFLOPS:        312e12,
		HBMBytes:         80e9,
		HBMBandwidth:     2039e9,
		NetworkBandwidth: 300e9,
	}
}

// Torus is a 3D torus slice shape X×Y×Z. The paper's partitioning notation
// assigns tensor dimensions to subsets of these three physical axes.
type Torus struct {
	X, Y, Z int
}

// Chips returns the number of chips in the slice.
func (t Torus) Chips() int { return t.X * t.Y * t.Z }

// String renders the slice shape as "XxYxZ".
func (t Torus) String() string { return fmt.Sprintf("%dx%dx%d", t.X, t.Y, t.Z) }

// Valid reports whether all axes are positive.
func (t Torus) Valid() bool { return t.X >= 1 && t.Y >= 1 && t.Z >= 1 }

// Axis identifies one of the three physical torus axes.
type Axis int

// The three torus axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Size returns the extent of axis a in the torus.
func (t Torus) Size(a Axis) int {
	switch a {
	case AxisX:
		return t.X
	case AxisY:
		return t.Y
	case AxisZ:
		return t.Z
	}
	panic(fmt.Sprintf("hardware: invalid axis %d", int(a)))
}

// AxisGroup is an ordered set of distinct torus axes, e.g. the "yz" in
// all-gather(yz). The product of the member axis sizes is the group size.
type AxisGroup []Axis

// Size returns the number of chips a collective over this group spans.
func (g AxisGroup) Size(t Torus) int {
	n := 1
	for _, a := range g {
		n *= t.Size(a)
	}
	return n
}

func (g AxisGroup) String() string {
	s := ""
	for _, a := range g {
		s += a.String()
	}
	if s == "" {
		return "none"
	}
	return s
}

// Contains reports whether the group includes axis a.
func (g AxisGroup) Contains(a Axis) bool {
	for _, m := range g {
		if m == a {
			return true
		}
	}
	return false
}

// Convenient named groups used throughout the layouts.
var (
	GroupX   = AxisGroup{AxisX}
	GroupY   = AxisGroup{AxisY}
	GroupZ   = AxisGroup{AxisZ}
	GroupXY  = AxisGroup{AxisX, AxisY}
	GroupYZ  = AxisGroup{AxisY, AxisZ}
	GroupXYZ = AxisGroup{AxisX, AxisY, AxisZ}
)

// System is a slice of identical chips arranged in a torus. It is the
// hardware argument to every cost model in this repository.
type System struct {
	Chip  Chip
	Torus Torus
}

// NewSystem builds a system from a chip spec and slice shape.
func NewSystem(c Chip, t Torus) System {
	if !t.Valid() {
		panic(fmt.Sprintf("hardware: invalid torus %v", t))
	}
	return System{Chip: c, Torus: t}
}

// TPUv4Slice returns a TPU v4 system with the given slice shape.
func TPUv4Slice(x, y, z int) System {
	return NewSystem(TPUv4(), Torus{X: x, Y: y, Z: z})
}

// Chips returns the chip count of the slice.
func (s System) Chips() int { return s.Torus.Chips() }

// PeakSystemFLOPS is the aggregate peak FLOP/s of the slice.
func (s System) PeakSystemFLOPS() float64 {
	return s.Chip.PeakFLOPS * float64(s.Chips())
}

// TotalHBMBytes is the aggregate HBM capacity of the slice.
func (s System) TotalHBMBytes() float64 {
	return s.Chip.HBMBytes * float64(s.Chips())
}

// SliceShapes enumerates plausible X×Y×Z decompositions for a chip count,
// mirroring the shapes available on TPU v4 (axes are powers of two and at
// least 1; the paper notes the minimum torus axis size that matters for
// batch-sharded attention is 4). Shapes are returned sorted by descending
// "squareness" (smaller max/min axis ratio first) so callers that just need
// a reasonable slice can take the first element.
func SliceShapes(chips int) []Torus {
	if chips < 1 {
		return nil
	}
	var out []Torus
	for x := 1; x <= chips; x *= 2 {
		if chips%x != 0 {
			continue
		}
		rem := chips / x
		for y := 1; y <= rem; y *= 2 {
			if rem%y != 0 {
				continue
			}
			z := rem / y
			if !isPow2(z) {
				continue
			}
			out = append(out, Torus{X: x, Y: y, Z: z})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := aspect(out[i]), aspect(out[j])
		if ri != rj {
			return ri < rj
		}
		// Tie-break deterministically by coordinates.
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].Z < out[j].Z
	})
	return out
}

// BestSlice returns the most cube-like torus for a chip count. It panics if
// chips is not a power of two (the only shapes this model enumerates).
func BestSlice(chips int) Torus {
	shapes := SliceShapes(chips)
	if len(shapes) == 0 {
		panic(fmt.Sprintf("hardware: no slice shapes for %d chips", chips))
	}
	return shapes[0]
}

func aspect(t Torus) float64 {
	lo, hi := t.X, t.X
	for _, v := range []int{t.Y, t.Z} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return float64(hi) / float64(lo)
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
