package hardware

import (
	"testing"
	"testing/quick"
)

func TestTPUv4Constants(t *testing.T) {
	c := TPUv4()
	if c.PeakFLOPS != 275e12 {
		t.Errorf("PeakFLOPS = %g, want 275e12", c.PeakFLOPS)
	}
	if c.HBMBytes != 32*(1<<30) {
		t.Errorf("HBMBytes = %g, want 32 GiB", c.HBMBytes)
	}
	if c.HBMBandwidth != 1200e9 {
		t.Errorf("HBMBandwidth = %g, want 1200e9", c.HBMBandwidth)
	}
	if c.NetworkBandwidth != 270e9 {
		t.Errorf("NetworkBandwidth = %g, want 270e9", c.NetworkBandwidth)
	}
}

func TestTorusChips(t *testing.T) {
	cases := []struct {
		torus Torus
		want  int
	}{
		{Torus{1, 1, 1}, 1},
		{Torus{2, 2, 2}, 8},
		{Torus{4, 4, 4}, 64},
		{Torus{8, 4, 2}, 64},
		{Torus{4, 8, 8}, 256},
	}
	for _, c := range cases {
		if got := c.torus.Chips(); got != c.want {
			t.Errorf("%v.Chips() = %d, want %d", c.torus, got, c.want)
		}
	}
}

func TestTorusString(t *testing.T) {
	if got := (Torus{4, 8, 2}).String(); got != "4x8x2" {
		t.Errorf("String() = %q, want 4x8x2", got)
	}
}

func TestAxisSize(t *testing.T) {
	tr := Torus{2, 4, 8}
	if tr.Size(AxisX) != 2 || tr.Size(AxisY) != 4 || tr.Size(AxisZ) != 8 {
		t.Errorf("axis sizes = %d,%d,%d want 2,4,8",
			tr.Size(AxisX), tr.Size(AxisY), tr.Size(AxisZ))
	}
}

func TestAxisSizePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Size(invalid axis) did not panic")
		}
	}()
	(Torus{1, 1, 1}).Size(Axis(9))
}

func TestAxisGroupSize(t *testing.T) {
	tr := Torus{2, 4, 8}
	cases := []struct {
		g    AxisGroup
		want int
	}{
		{GroupX, 2},
		{GroupY, 4},
		{GroupZ, 8},
		{GroupXY, 8},
		{GroupYZ, 32},
		{GroupXYZ, 64},
		{AxisGroup{}, 1},
	}
	for _, c := range cases {
		if got := c.g.Size(tr); got != c.want {
			t.Errorf("group %v size = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestAxisGroupString(t *testing.T) {
	if got := GroupYZ.String(); got != "yz" {
		t.Errorf("GroupYZ.String() = %q, want yz", got)
	}
	if got := (AxisGroup{}).String(); got != "none" {
		t.Errorf("empty group String() = %q, want none", got)
	}
}

func TestAxisGroupContains(t *testing.T) {
	if !GroupXY.Contains(AxisX) || !GroupXY.Contains(AxisY) || GroupXY.Contains(AxisZ) {
		t.Error("GroupXY membership wrong")
	}
}

func TestSystemAggregates(t *testing.T) {
	s := TPUv4Slice(4, 4, 4)
	if s.Chips() != 64 {
		t.Fatalf("Chips() = %d, want 64", s.Chips())
	}
	if got, want := s.PeakSystemFLOPS(), 64*275e12; got != want {
		t.Errorf("PeakSystemFLOPS = %g, want %g", got, want)
	}
	if got, want := s.TotalHBMBytes(), 64*32*float64(1<<30); got != want {
		t.Errorf("TotalHBMBytes = %g, want %g", got, want)
	}
}

func TestNewSystemPanicsOnInvalidTorus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSystem with invalid torus did not panic")
		}
	}()
	NewSystem(TPUv4(), Torus{0, 1, 1})
}

func TestSliceShapesCoverAllFactorizations(t *testing.T) {
	shapes := SliceShapes(64)
	if len(shapes) == 0 {
		t.Fatal("no shapes for 64 chips")
	}
	seen := map[Torus]bool{}
	for _, s := range shapes {
		if s.Chips() != 64 {
			t.Errorf("shape %v has %d chips, want 64", s, s.Chips())
		}
		if seen[s] {
			t.Errorf("duplicate shape %v", s)
		}
		seen[s] = true
	}
	// 64 = 2^6; number of (a,b,c) with a+b+c=6, a,b,c>=0 is C(8,2)=28.
	if len(shapes) != 28 {
		t.Errorf("got %d shapes for 64 chips, want 28", len(shapes))
	}
	if !seen[Torus{4, 4, 4}] {
		t.Error("missing 4x4x4 shape")
	}
}

func TestBestSliceIsMostCubeLike(t *testing.T) {
	cases := []struct {
		chips int
		want  Torus
	}{
		{1, Torus{1, 1, 1}},
		{8, Torus{2, 2, 2}},
		{64, Torus{4, 4, 4}},
	}
	for _, c := range cases {
		if got := BestSlice(c.chips); got != c.want {
			t.Errorf("BestSlice(%d) = %v, want %v", c.chips, got, c.want)
		}
	}
	// Non-cube counts still give a minimal-aspect shape.
	b := BestSlice(16)
	if aspect(b) > 2 {
		t.Errorf("BestSlice(16) = %v with aspect %g, want aspect <= 2", b, aspect(b))
	}
	b = BestSlice(128)
	if aspect(b) > 2 {
		t.Errorf("BestSlice(128) = %v with aspect %g, want aspect <= 2", b, aspect(b))
	}
}

func TestBestSlicePanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BestSlice(12) did not panic")
		}
	}()
	BestSlice(12)
}

// Property: every enumerated shape multiplies back to the chip count and all
// axes are powers of two.
func TestSliceShapesProperty(t *testing.T) {
	f := func(exp uint8) bool {
		chips := 1 << (exp % 9) // 1..256
		for _, s := range SliceShapes(chips) {
			if s.Chips() != chips {
				return false
			}
			if !isPow2(s.X) || !isPow2(s.Y) || !isPow2(s.Z) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceShapesZeroAndNegative(t *testing.T) {
	if SliceShapes(0) != nil {
		t.Error("SliceShapes(0) should be nil")
	}
	if SliceShapes(-4) != nil {
		t.Error("SliceShapes(-4) should be nil")
	}
}
