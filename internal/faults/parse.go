package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Plan from the compact comma-separated syntax estiserve's
// -fault-plan flag accepts:
//
//	crash:R@T        crash replica R at time T (stays down)
//	crash:R@T+D      crash replica R at time T, recover D seconds later
//	drain:R@T        gracefully drain replica R at time T (stays down)
//	drain:R@T+D      drain at T, come back D seconds later
//	slow:R@T1-T2xF   replica R runs F× slower over [T1, T2)
//	slow:R@T1xF      replica R runs F× slower from T1 on
//	link:T1-T2       handoff link down over [T1, T2)
//	link:T1          handoff link down from T1 on
//
// Example: "crash:1@2+4,slow:0@1-3x2.5,link:2.5-3". Parse validates syntax
// only; Plan.Validate (called by the fleet) checks replica indices against
// the actual fleet size.
func Parse(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		verb, rest, ok := strings.Cut(part, ":")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q: want verb:spec", part)
		}
		var err error
		switch verb {
		case "crash", "drain":
			err = parseCrash(&p, verb, rest)
		case "slow":
			err = parseSlow(&p, rest)
		case "link":
			err = parseLink(&p, rest)
		default:
			return Plan{}, fmt.Errorf("faults: %q: unknown verb %q (want crash, drain, slow, or link)", part, verb)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: %q: %w", part, err)
		}
	}
	return p, nil
}

// parseCrash handles "R@T" and "R@T+D" for crash and drain.
func parseCrash(p *Plan, verb, rest string) error {
	repStr, timeStr, ok := strings.Cut(rest, "@")
	if !ok {
		return fmt.Errorf("want R@T or R@T+D")
	}
	rep, err := strconv.Atoi(repStr)
	if err != nil {
		return fmt.Errorf("replica %q: %v", repStr, err)
	}
	at, dur, hasDur, err := cutFloat(timeStr, "+")
	if err != nil {
		return err
	}
	rec := -1.0
	if hasDur {
		rec = at + dur
	}
	if verb == "drain" {
		p.Drain(rep, at, rec)
	} else {
		p.Crash(rep, at, rec)
	}
	return nil
}

// parseSlow handles "R@T1-T2xF" and "R@T1xF".
func parseSlow(p *Plan, rest string) error {
	repStr, spec, ok := strings.Cut(rest, "@")
	if !ok {
		return fmt.Errorf("want R@T1-T2xF")
	}
	rep, err := strconv.Atoi(repStr)
	if err != nil {
		return fmt.Errorf("replica %q: %v", repStr, err)
	}
	window, facStr, ok := strings.Cut(spec, "x")
	if !ok {
		return fmt.Errorf("want a xF slowdown factor in %q", spec)
	}
	factor, err := strconv.ParseFloat(facStr, 64)
	if err != nil {
		return fmt.Errorf("factor %q: %v", facStr, err)
	}
	from, until, hasUntil, err := cutFloat(window, "-")
	if err != nil {
		return err
	}
	if !hasUntil {
		until = -1
	}
	p.Straggle(rep, from, until, factor)
	return nil
}

// parseLink handles "T1-T2" and "T1".
func parseLink(p *Plan, rest string) error {
	from, until, hasUntil, err := cutFloat(rest, "-")
	if err != nil {
		return err
	}
	if !hasUntil {
		until = -1
	}
	p.LinkFail(from, until)
	return nil
}

// cutFloat parses "A" or "A<sep>B" into one or two floats.
func cutFloat(s, sep string) (a, b float64, hasB bool, err error) {
	aStr, bStr, hasB := strings.Cut(s, sep)
	if a, err = strconv.ParseFloat(aStr, 64); err != nil {
		return 0, 0, false, fmt.Errorf("time %q: %v", aStr, err)
	}
	if !hasB {
		return a, 0, false, nil
	}
	if b, err = strconv.ParseFloat(bStr, 64); err != nil {
		return 0, 0, false, fmt.Errorf("time %q: %v", bStr, err)
	}
	return a, b, true, nil
}
