// Package faults defines deterministic fault plans for the fleet simulator:
// scheduled replica crashes and recoveries, graceful drains, straggler
// slowdown windows, and handoff-link outages. A Plan is data, not behavior —
// the fleet's event loop injects each Event into its heap as a first-class
// event and reacts per its recovery policy — so the same plan replayed
// against the same configuration and trace produces byte-identical results,
// which is what makes goodput-under-faults a measurable, assertable number
// rather than an anecdote.
//
// Plans come from three places: the chainable builders (Crash, Drain,
// Straggle, LinkFail) for hand-written scenarios, Parse for the compact
// command-line syntax estiserve accepts, and RandomPlan for seeded property
// tests and fuzzing.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Health is a replica's position in the fault state machine:
//
//	Healthy → Degraded   (a straggler fault slows it; still serving)
//	Healthy → Draining   (graceful drain: finishes in-flight, accepts nothing)
//	any     → Down       (crash: all slot KV and queue state lost)
//	Down    → Recovering (back up, cache cold, serving again)
//	Recovering → Healthy (first completed request after recovery)
type Health int

const (
	Healthy Health = iota
	// Degraded marks a straggler: serving, but every iteration stretched by
	// the fault's slowdown factor. The router steers new work away and
	// hedges the work already stuck there.
	Degraded
	// Draining replicas finish their in-flight sequences but accept no new
	// work; when the last sequence completes they go Down. No KV is lost.
	Draining
	// Down replicas serve nothing; their slot KV, queue, and warm-prefix
	// set died with them.
	Down
	// Recovering replicas are routable again but start cold: empty cache,
	// empty warm set. They become Healthy at their first completion.
	Recovering
)

// String names the health state for reports.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// Routable reports whether a replica in this state accepts new work.
func (h Health) Routable() bool { return h != Down && h != Draining }

// Kind discriminates fault events.
type Kind int

const (
	// Crash takes the replica Down instantly: every occupied slot's KV and
	// every queued request is lost and must be re-routed or failed.
	Crash Kind = iota
	// Recover brings a Down replica back (cold) or cancels a Drain.
	Recover
	// Drain is the graceful shutdown: queued work re-routes immediately,
	// in-flight sequences finish locally, then the replica goes Down.
	Drain
	// SlowStart turns the replica into a straggler: iteration times (and
	// finish estimates) stretch by Factor until SlowEnd.
	SlowStart
	// SlowEnd restores full speed.
	SlowEnd
	// LinkDown severs the prefill→decode handoff interconnect: completed
	// prefills buffer at the sender until LinkUp (or fail at end of run).
	LinkDown
	// LinkUp restores the handoff interconnect and flushes buffered
	// transfers.
	LinkUp
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Drain:
		return "drain"
	case SlowStart:
		return "slow-start"
	case SlowEnd:
		return "slow-end"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// At is the simulation time the fault fires.
	At float64
	// Kind selects the fault.
	Kind Kind
	// Replica indexes the affected replica in the fleet's replica order
	// (unified replicas 0..N-1; in disaggregated mode the prefill pool
	// first, then the decode pool). -1 for link events.
	Replica int
	// Factor is the SlowStart iteration-time multiplier (> 1).
	Factor float64
}

// Plan is an ordered set of fault events. The zero value is the fault-free
// plan.
type Plan struct {
	Events []Event
}

// Empty reports a fault-free plan.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Crash schedules a crash of replica at time at; if recoverAt > at, the
// replica recovers (cold) at recoverAt, otherwise it stays down. Returns the
// plan for chaining.
func (p *Plan) Crash(replica int, at, recoverAt float64) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: Crash, Replica: replica})
	if recoverAt > at {
		p.Events = append(p.Events, Event{At: recoverAt, Kind: Recover, Replica: replica})
	}
	return p
}

// Drain schedules a graceful drain of replica at time at; if recoverAt > at
// the drained replica comes back at recoverAt.
func (p *Plan) Drain(replica int, at, recoverAt float64) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: Drain, Replica: replica})
	if recoverAt > at {
		p.Events = append(p.Events, Event{At: recoverAt, Kind: Recover, Replica: replica})
	}
	return p
}

// Straggle slows replica by factor over [from, until) (until <= from means
// the slowdown never lifts).
func (p *Plan) Straggle(replica int, from, until, factor float64) *Plan {
	p.Events = append(p.Events, Event{At: from, Kind: SlowStart, Replica: replica, Factor: factor})
	if until > from {
		p.Events = append(p.Events, Event{At: until, Kind: SlowEnd, Replica: replica})
	}
	return p
}

// LinkFail severs the handoff link over [from, until) (until <= from means
// it never recovers).
func (p *Plan) LinkFail(from, until float64) *Plan {
	p.Events = append(p.Events, Event{At: from, Kind: LinkDown, Replica: -1})
	if until > from {
		p.Events = append(p.Events, Event{At: until, Kind: LinkUp, Replica: -1})
	}
	return p
}

// Validate checks every event against a fleet of the given replica count:
// times must be finite and non-negative, replica indices in range (or -1 for
// link events), slowdown factors finite and > 1.
func (p Plan) Validate(replicas int) error {
	for i, e := range p.Events {
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
			return fmt.Errorf("faults: event %d (%s) at non-finite or negative time %g", i, e.Kind, e.At)
		}
		switch e.Kind {
		case Crash, Recover, Drain, SlowStart, SlowEnd:
			if e.Replica < 0 || e.Replica >= replicas {
				return fmt.Errorf("faults: event %d (%s) targets replica %d of %d", i, e.Kind, e.Replica, replicas)
			}
		case LinkDown, LinkUp:
			// link events carry no replica
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Kind == SlowStart && (math.IsNaN(e.Factor) || math.IsInf(e.Factor, 0) || e.Factor <= 1) {
			return fmt.Errorf("faults: event %d slow-start factor %g (want finite > 1)", i, e.Factor)
		}
	}
	return nil
}

// Sorted returns the events ordered by time, ties kept in insertion order —
// the deterministic injection order the fleet's event heap preserves via
// sequence numbers.
func (p Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// RandomPlan builds a seeded random (but deterministic) plan over a fleet of
// the given size and a time horizon: per replica an optional crash (usually
// recovered), an optional straggler window, an optional drain, plus an
// optional handoff-link outage. Identical seeds produce identical plans —
// the property-test and fuzzing entry point.
func RandomPlan(seed int64, replicas int, horizon float64) Plan {
	rng := rand.New(rand.NewSource(seed))
	var p Plan
	if replicas < 1 || horizon <= 0 {
		return p
	}
	u := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	for r := 0; r < replicas; r++ {
		switch roll := rng.Float64(); {
		case roll < 0.35:
			at := u(0.05, 0.7) * horizon
			rec := -1.0
			if rng.Float64() < 0.7 {
				rec = at + u(0.05, 0.4)*horizon
			}
			p.Crash(r, at, rec)
		case roll < 0.50:
			at := u(0.05, 0.6) * horizon
			p.Drain(r, at, at+u(0.1, 0.4)*horizon)
		case roll < 0.75:
			from := u(0.05, 0.6) * horizon
			until := -1.0
			if rng.Float64() < 0.8 {
				until = from + u(0.1, 0.4)*horizon
			}
			p.Straggle(r, from, until, u(1.5, 5))
		}
	}
	if rng.Float64() < 0.3 {
		from := u(0.1, 0.6) * horizon
		until := -1.0
		if rng.Float64() < 0.8 {
			until = from + u(0.05, 0.3)*horizon
		}
		p.LinkFail(from, until)
	}
	return p
}
