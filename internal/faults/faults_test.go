package faults

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestBuildersAndSorted(t *testing.T) {
	var p Plan
	p.Crash(1, 2.0, 6.0).Straggle(0, 1.0, 3.0, 2.5).LinkFail(2.5, 3.0).Drain(2, 0.5, -1)
	if p.Empty() {
		t.Fatal("plan should not be empty")
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sorted := p.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].At < sorted[i-1].At {
			t.Fatalf("Sorted out of order at %d: %v", i, sorted)
		}
	}
	if sorted[0].Kind != Drain || sorted[0].At != 0.5 {
		t.Fatalf("first sorted event = %+v, want drain@0.5", sorted[0])
	}
	// Crash with no recoverAt emits a single event.
	var single Plan
	single.Crash(0, 1.0, -1)
	if len(single.Events) != 1 {
		t.Fatalf("unrecovered crash emitted %d events, want 1", len(single.Events))
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		reps int
	}{
		{"replica out of range", *new(Plan).Crash(5, 1, -1), 4},
		{"negative replica", Plan{Events: []Event{{At: 1, Kind: Crash, Replica: -1}}}, 4},
		{"negative time", *new(Plan).Crash(0, -1, -1), 4},
		{"nan time", Plan{Events: []Event{{At: math.NaN(), Kind: Crash}}}, 4},
		{"inf time", Plan{Events: []Event{{At: math.Inf(1), Kind: Crash}}}, 4},
		{"factor 1", *new(Plan).Straggle(0, 1, 2, 1.0), 4},
		{"factor nan", Plan{Events: []Event{{At: 1, Kind: SlowStart, Factor: math.NaN()}}}, 4},
		{"unknown kind", Plan{Events: []Event{{At: 1, Kind: Kind(99)}}}, 4},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(tc.reps); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.plan.Events)
		}
	}
	// Link events need no replica.
	if err := new(Plan).LinkFail(1, 2).Validate(1); err != nil {
		t.Errorf("link plan rejected: %v", err)
	}
}

func TestHealthAndKindStrings(t *testing.T) {
	for h, want := range map[Health]string{
		Healthy: "healthy", Degraded: "degraded", Draining: "draining",
		Down: "down", Recovering: "recovering",
	} {
		if h.String() != want {
			t.Errorf("Health(%d).String() = %q, want %q", int(h), h.String(), want)
		}
	}
	if !Healthy.Routable() || !Degraded.Routable() || !Recovering.Routable() {
		t.Error("serving states must be routable")
	}
	if Down.Routable() || Draining.Routable() {
		t.Error("down/draining must not be routable")
	}
	for k := Crash; k <= LinkUp; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("Kind %d has no name", int(k))
		}
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("crash:1@2+4, slow:0@1-3x2.5, link:2.5-3, drain:2@0.5, slow:3@4x2, link:9")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Plan{Events: []Event{
		{At: 2, Kind: Crash, Replica: 1},
		{At: 6, Kind: Recover, Replica: 1},
		{At: 1, Kind: SlowStart, Replica: 0, Factor: 2.5},
		{At: 3, Kind: SlowEnd, Replica: 0},
		{At: 2.5, Kind: LinkDown, Replica: -1},
		{At: 3, Kind: LinkUp, Replica: -1},
		{At: 0.5, Kind: Drain, Replica: 2},
		{At: 4, Kind: SlowStart, Replica: 3, Factor: 2},
		{At: 9, Kind: LinkDown, Replica: -1},
	}}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("Parse mismatch:\n got %+v\nwant %+v", p.Events, want.Events)
	}
	if pp, err := Parse(""); err != nil || !pp.Empty() {
		t.Fatalf("empty spec: plan %+v, err %v", pp, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"boom:1@2", "crash:1", "crash:x@2", "crash:1@y",
		"slow:0@1-3", "slow:0@1-3xz", "slow:zero@1x2", "link:x-2", "crash",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestRandomPlanDeterministicAndValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := RandomPlan(seed, 4, 10)
		b := RandomPlan(seed, 4, 10)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: RandomPlan not deterministic", seed)
		}
		if err := a.Validate(4); err != nil {
			t.Fatalf("seed %d: RandomPlan invalid: %v", seed, err)
		}
	}
	if !RandomPlan(1, 0, 10).Empty() || !RandomPlan(1, 4, 0).Empty() {
		t.Error("degenerate fleet/horizon should yield empty plan")
	}
	// Across seeds the generator should exercise every fault kind.
	seen := map[Kind]bool{}
	for seed := int64(0); seed < 200; seed++ {
		for _, e := range RandomPlan(seed, 4, 10).Events {
			seen[e.Kind] = true
		}
	}
	for k := Crash; k <= LinkUp; k++ {
		if !seen[k] {
			t.Errorf("no seed in 0..199 produced a %s event", k)
		}
	}
}
