// Package reference implements an unsharded, single-device decoder-only
// Transformer forward pass (prefill with KV-cache fill, then incremental
// decode). It is the golden model the sharded engine is verified against:
// both consume the same Weights, and the engine's distributed output must
// match this package's output to float tolerance.
//
// Architecture knobs follow package model: multihead or multiquery
// attention, GELU or SwiGLU feedforward, serial or parallel block, RMS
// normalization, tied input/output embeddings (PaLM-style, minus position
// embeddings — PaLM's rotary embeddings are orthogonal to partitioning and
// omitted so the verification surface stays the sharding itself).
package reference

import (
	"fmt"
	"math"
	"math/rand"

	"esti/internal/kvcache"
	"esti/internal/model"
	"esti/internal/tensor"
)

// LayerWeights holds one Transformer layer.
type LayerWeights struct {
	NormGain    []float32   // pre-block RMS norm gain [E]
	FFNNormGain []float32   // second norm for the serial formulation [E]
	WQ          *tensor.Mat // [E, H·Dh]
	WK, WV      *tensor.Mat // [E, KVH·Dh]
	WO          *tensor.Mat // [H·Dh, E]
	WGate       *tensor.Mat // [E, F]; nil for GELU models
	WUp         *tensor.Mat // [E, F]
	WDown       *tensor.Mat // [F, E]
}

// Weights is a full model: tied embedding plus layers.
type Weights struct {
	Cfg       model.Config
	Embed     *tensor.Mat // [vocab, E]
	Layers    []LayerWeights
	FinalGain []float32 // final RMS norm gain [E]
}

// NewWeights builds reproducible random weights for a (small) config.
func NewWeights(cfg model.Config, seed int64) *Weights {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	e, f := cfg.DModel, cfg.DFF
	hq := cfg.Heads * cfg.HeadDim
	kvq := cfg.KVHeads * cfg.HeadDim
	scale := func(fanIn int) float32 { return float32(1 / math.Sqrt(float64(fanIn))) }
	w := &Weights{
		Cfg:       cfg,
		Embed:     tensor.New(cfg.Vocab, e).FillRand(rng, 0.5),
		FinalGain: ones(e),
	}
	for l := 0; l < cfg.Layers; l++ {
		lw := LayerWeights{
			NormGain:    ones(e),
			FFNNormGain: ones(e),
			WQ:          tensor.New(e, hq).FillRand(rng, scale(e)),
			WK:          tensor.New(e, kvq).FillRand(rng, scale(e)),
			WV:          tensor.New(e, kvq).FillRand(rng, scale(e)),
			WO:          tensor.New(hq, e).FillRand(rng, scale(hq)),
			WUp:         tensor.New(e, f).FillRand(rng, scale(e)),
			WDown:       tensor.New(f, e).FillRand(rng, scale(f)),
		}
		if cfg.FFNKind == model.SwiGLU {
			lw.WGate = tensor.New(e, f).FillRand(rng, scale(e))
		}
		w.Layers = append(w.Layers, lw)
	}
	return w
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Model is a reference inference session: weights plus a KV cache.
type Model struct {
	W     *Weights
	Cache *kvcache.Cache
	batch int
}

// New creates a session for a batch of sequences with the given maximum
// total length (context plus generated tokens).
func New(w *Weights, batch, maxLen int) *Model {
	return &Model{
		W:     w,
		Cache: kvcache.New(w.Cfg.Layers, batch, maxLen, w.Cfg.KVHeads*w.Cfg.HeadDim),
		batch: batch,
	}
}

// Batch returns the session's batch size.
func (m *Model) Batch() int { return m.batch }

// Prefill runs the model over `steps` new tokens per sequence (tokens is
// sequence-major: tokens[s*steps+t]), fills the KV cache, and returns the
// logits of every position, [batch·steps, vocab]. Call repeatedly for
// incremental (chunked) prefill.
func (m *Model) Prefill(tokens []int, steps int) *tensor.Mat {
	if len(tokens) != m.batch*steps {
		panic(fmt.Sprintf("reference: %d tokens for batch %d × steps %d", len(tokens), m.batch, steps))
	}
	return m.forward(tokens, steps)
}

// Decode runs one autoregressive step from the last token of each sequence
// and returns [batch, vocab] logits.
func (m *Model) Decode(last []int) *tensor.Mat {
	if len(last) != m.batch {
		panic(fmt.Sprintf("reference: %d last-tokens for batch %d", len(last), m.batch))
	}
	return m.forward(last, 1)
}

// forward is the shared prefill/decode pass over `steps` new positions.
func (m *Model) forward(tokens []int, steps int) *tensor.Mat {
	cfg := m.W.Cfg
	n := m.batch * steps
	x := tensor.New(n, cfg.DModel)
	for i, tok := range tokens {
		if tok < 0 || tok >= cfg.Vocab {
			panic(fmt.Sprintf("reference: token %d out of vocab %d", tok, cfg.Vocab))
		}
		copy(x.Row(i), m.W.Embed.Row(tok))
	}

	for l := range m.W.Layers {
		lw := &m.W.Layers[l]
		if cfg.ParallelBlock {
			h := tensor.RMSNorm(x, lw.NormGain, 1e-6)
			attnY := m.attention(l, lw, h, steps)
			ffnY := ffn(cfg, lw, h)
			x = tensor.AddInPlace(tensor.AddInPlace(x, attnY), ffnY)
		} else {
			h := tensor.RMSNorm(x, lw.NormGain, 1e-6)
			x = tensor.AddInPlace(x, m.attention(l, lw, h, steps))
			h2 := tensor.RMSNorm(x, lw.FFNNormGain, 1e-6)
			x = tensor.AddInPlace(x, ffn(cfg, lw, h2))
		}
	}
	m.Cache.Advance(steps)

	final := tensor.RMSNorm(x, m.W.FinalGain, 1e-6)
	return tensor.MatMulT(final, m.W.Embed)
}

// attention computes the attention sub-block for `steps` new positions,
// appending the new K/V to layer l's cache.
func (m *Model) attention(l int, lw *LayerWeights, h *tensor.Mat, steps int) *tensor.Mat {
	cfg := m.W.Cfg
	q := tensor.MatMul(h, lw.WQ)
	k := tensor.MatMul(h, lw.WK)
	v := tensor.MatMul(h, lw.WV)
	m.Cache.Append(l, k, v, steps)

	out := Attend(cfg.HeadDim, q, m.Cache, l, m.batch, steps)
	return tensor.MatMul(out, lw.WO)
}

// Attend computes masked attention of the query tensor against a cache that
// already contains the new positions' K/V. It is exported so the sharded
// engine can reuse the identical arithmetic on its shards: the head → KV
// head mapping is derived from the *local* widths, so it works equally for
// the full tensor (reference), a head shard with matching KV columns (MHA
// head-sharded), and a batch shard against the shared multiquery head. q is
// [seqs·steps, localHeads·dh] sequence-major; query block s attends against
// cache slot s. Each slot's `past` is its own SeqLen (Append writes the new
// K/V without advancing it), so slots at different depths — the
// continuous-batching case — are handled with no extra bookkeeping.
func Attend(dh int, q *tensor.Mat, cache *kvcache.Cache, layer, seqs, steps int) *tensor.Mat {
	out := tensor.New(q.Rows, q.Cols)
	var scr AttnScratch
	for s := 0; s < seqs; s++ {
		qv := tensor.RowsView(q, s*steps, (s+1)*steps)
		ov := tensor.RowsView(out, s*steps, (s+1)*steps)
		AttendSeqInto(&ov, dh, &qv, cache, layer, s, steps, &scr)
	}
	return out
}

// AttendSeq computes masked attention of a single sequence's queries
// ([steps, localHeads·dh]) against cache slot `slot`, whose K/V already
// contain the `steps` new positions beyond the committed SeqLen. It is the
// per-slot primitive behind Attend, exported so the engine's slot-admission
// path can attend a query block against an arbitrary cache slot.
func AttendSeq(dh int, q *tensor.Mat, cache *kvcache.Cache, layer, slot, steps int) *tensor.Mat {
	var scr AttnScratch
	return AttendSeqInto(tensor.New(steps, q.Cols), dh, q, cache, layer, slot, steps, &scr)
}

// ffn computes the feedforward sub-block.
func ffn(cfg model.Config, lw *LayerWeights, h *tensor.Mat) *tensor.Mat {
	if cfg.FFNKind == model.SwiGLU {
		gate := tensor.MatMul(h, lw.WGate)
		up := tensor.MatMul(h, lw.WUp)
		tensor.SiLU(gate)
		return tensor.MatMul(tensor.Mul(gate, up), lw.WDown)
	}
	act := tensor.MatMul(h, lw.WUp)
	tensor.GELU(act)
	return tensor.MatMul(act, lw.WDown)
}

// Generate greedily decodes `gen` tokens after prefilling `prompt` (length
// `promptLen` per sequence), returning the generated token ids per sequence.
func (m *Model) Generate(prompt []int, promptLen, gen int) [][]int {
	logits := m.Prefill(prompt, promptLen)
	out := make([][]int, m.batch)
	last := make([]int, m.batch)
	for s := 0; s < m.batch; s++ {
		last[s] = argmaxRow(logits, s*promptLen+promptLen-1)
		out[s] = append(out[s], last[s])
	}
	for g := 1; g < gen; g++ {
		logits = m.Decode(last)
		for s := 0; s < m.batch; s++ {
			last[s] = argmaxRow(logits, s)
			out[s] = append(out[s], last[s])
		}
	}
	return out
}

func argmaxRow(m *tensor.Mat, r int) int {
	row := m.Row(r)
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
