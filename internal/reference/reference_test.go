package reference

import (
	"math"
	"testing"

	"esti/internal/model"
	"esti/internal/tensor"
)

// tiny returns a small multiquery parallel-block config divisible enough for
// sharding tests downstream.
func tiny() model.Config {
	return model.Config{
		Name: "tiny", Layers: 2, DModel: 32, DFF: 64,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
}

func tinyMHA() model.Config {
	c := tiny()
	c.Name = "tiny-mha"
	c.KVHeads = 8
	c.Attn = model.Multihead
	c.FFNKind = model.GELU
	c.ParallelBlock = false
	return c
}

func seqTokens(batch, steps, stride int) []int {
	t := make([]int, batch*steps)
	for i := range t {
		t[i] = (i*stride + 7) % 64
	}
	return t
}

func TestPrefillShapes(t *testing.T) {
	w := NewWeights(tiny(), 1)
	m := New(w, 3, 16)
	logits := m.Prefill(seqTokens(3, 5, 3), 5)
	if logits.Rows != 15 || logits.Cols != 64 {
		t.Fatalf("logits shape %dx%d, want 15x64", logits.Rows, logits.Cols)
	}
	if m.Cache.Len() != 5 {
		t.Errorf("cache len %d, want 5", m.Cache.Len())
	}
}

func TestLogitsAreFinite(t *testing.T) {
	for _, cfg := range []model.Config{tiny(), tinyMHA()} {
		w := NewWeights(cfg, 2)
		m := New(w, 2, 8)
		logits := m.Prefill(seqTokens(2, 4, 5), 4)
		for _, v := range logits.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite logit", cfg.Name)
			}
		}
	}
}

// Incremental prefill must produce the same final state as one-shot prefill:
// decoding after either path yields identical logits. This validates the
// paper's "incremental processing of sequences during prefill".
func TestIncrementalPrefillEquivalence(t *testing.T) {
	cfg := tiny()
	w := NewWeights(cfg, 3)
	tokens := seqTokens(2, 6, 3)

	oneShot := New(w, 2, 16)
	oneShot.Prefill(tokens, 6)

	chunked := New(w, 2, 16)
	// Split each sequence's 6 tokens into chunks of 2 then 4.
	chunk1 := []int{tokens[0], tokens[1], tokens[6], tokens[7]}
	chunk2 := []int{tokens[2], tokens[3], tokens[4], tokens[5], tokens[8], tokens[9], tokens[10], tokens[11]}
	chunked.Prefill(chunk1, 2)
	chunked.Prefill(chunk2, 4)

	last := []int{1, 2}
	a := oneShot.Decode(last)
	b := chunked.Decode(last)
	if d := tensor.MaxAbsDiff(a, b); d > 1e-4 {
		t.Errorf("chunked prefill diverges from one-shot by %g", d)
	}
}

// A decode step must equal prefilling the same token: prefill(prompt+x) and
// prefill(prompt)+decode(x) agree on the final position's logits.
func TestDecodeMatchesPrefillExtension(t *testing.T) {
	for _, cfg := range []model.Config{tiny(), tinyMHA()} {
		w := NewWeights(cfg, 4)
		const steps = 5
		tokens := seqTokens(2, steps, 2)

		full := New(w, 2, 8)
		fullLogits := full.Prefill(tokens, steps)

		inc := New(w, 2, 8)
		prefix := []int{tokens[0], tokens[1], tokens[2], tokens[3],
			tokens[5], tokens[6], tokens[7], tokens[8]}
		inc.Prefill(prefix, steps-1)
		decLogits := inc.Decode([]int{tokens[4], tokens[9]})

		for s := 0; s < 2; s++ {
			fullRow := tensor.SliceRows(fullLogits, s*steps+steps-1, s*steps+steps)
			decRow := tensor.SliceRows(decLogits, s, s+1)
			if d := tensor.MaxAbsDiff(fullRow, decRow); d > 1e-4 {
				t.Errorf("%s seq %d: decode logits differ from prefill by %g", cfg.Name, s, d)
			}
		}
	}
}

// Causality: changing a later token must not change earlier positions'
// logits.
func TestCausalMask(t *testing.T) {
	cfg := tiny()
	w := NewWeights(cfg, 5)
	a := New(w, 1, 8)
	la := a.Prefill([]int{3, 5, 7, 9}, 4)
	b := New(w, 1, 8)
	lb := b.Prefill([]int{3, 5, 7, 42}, 4)
	for pos := 0; pos < 3; pos++ {
		ra := tensor.SliceRows(la, pos, pos+1)
		rb := tensor.SliceRows(lb, pos, pos+1)
		if d := tensor.MaxAbsDiff(ra, rb); d != 0 {
			t.Errorf("position %d leaked future token (diff %g)", pos, d)
		}
	}
	// And the changed position itself must differ.
	if tensor.MaxAbsDiff(tensor.SliceRows(la, 3, 4), tensor.SliceRows(lb, 3, 4)) == 0 {
		t.Error("changed token produced identical logits")
	}
}

// Batch independence: each sequence's logits must not depend on its
// neighbors in the batch.
func TestBatchIndependence(t *testing.T) {
	cfg := tinyMHA()
	w := NewWeights(cfg, 6)
	solo := New(w, 1, 8)
	soloLogits := solo.Prefill([]int{10, 20, 30}, 3)

	duo := New(w, 2, 8)
	duoLogits := duo.Prefill([]int{10, 20, 30, 40, 50, 60}, 3)
	first := tensor.SliceRows(duoLogits, 0, 3)
	if d := tensor.MaxAbsDiff(soloLogits, first); d > 1e-5 {
		t.Errorf("sequence 0 affected by batchmate: diff %g", d)
	}
}

// Multiquery and multihead differ only in KV sharing: with one KV head the
// grouped mapping must send every query head to that head.
func TestMultiqueryUsesSingleKVHead(t *testing.T) {
	cfg := tiny()
	w := NewWeights(cfg, 7)
	m := New(w, 1, 8)
	m.Prefill([]int{1, 2, 3}, 3)
	if got := m.Cache.KVWidth; got != cfg.HeadDim {
		t.Errorf("multiquery KV width %d, want head dim %d", got, cfg.HeadDim)
	}
	mhaW := NewWeights(tinyMHA(), 7)
	mm := New(mhaW, 1, 8)
	mm.Prefill([]int{1, 2, 3}, 3)
	if got := mm.Cache.KVWidth; got != cfg.Heads*cfg.HeadDim {
		t.Errorf("multihead KV width %d, want %d", got, cfg.Heads*cfg.HeadDim)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := tiny()
	w := NewWeights(cfg, 8)
	a := New(w, 2, 16).Generate(seqTokens(2, 4, 3), 4, 5)
	b := New(w, 2, 16).Generate(seqTokens(2, 4, 3), 4, 5)
	for s := range a {
		if len(a[s]) != 5 {
			t.Fatalf("seq %d generated %d tokens, want 5", s, len(a[s]))
		}
		for i := range a[s] {
			if a[s][i] != b[s][i] {
				t.Fatal("greedy generation not deterministic")
			}
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	w := NewWeights(tiny(), 9)
	m := New(w, 2, 8)
	for name, fn := range map[string]func(){
		"wrong token count":  func() { m.Prefill([]int{1, 2, 3}, 2) },
		"token out of vocab": func() { m.Prefill([]int{1, 99999, 2, 3}, 2) },
		"wrong decode width": func() { m.Decode([]int{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// KV-cache overflow must be caught.
func TestCacheOverflowPanics(t *testing.T) {
	w := NewWeights(tiny(), 10)
	m := New(w, 1, 4)
	m.Prefill([]int{1, 2, 3, 4}, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected cache overflow panic")
		}
	}()
	m.Decode([]int{5})
}
