package reference

import (
	"math"
	"math/rand"
	"testing"

	"esti/internal/kvcache"
	"esti/internal/tensor"
)

// attendSeqNaive is the original composed-primitive attention — per-head
// query copy, K/V column slices, scores matmul, mask, softmax, weighted
// sum — retained here as the oracle the fused kernel is property-tested
// against.
func attendSeqNaive(dh int, q *tensor.Mat, cache *kvcache.Cache, layer, slot, steps int) *tensor.Mat {
	heads := q.Cols / dh
	kvHeads := cache.KVWidth / dh
	headsPerKV := heads / kvHeads
	past := cache.SeqLen(slot)
	total := past + steps
	inv := float32(1 / math.Sqrt(float64(dh)))

	kRows := cache.RowsK(layer, slot, total)
	vRows := cache.RowsV(layer, slot, total)
	out := tensor.New(steps, q.Cols)
	for hIdx := 0; hIdx < heads; hIdx++ {
		kvIdx := hIdx / headsPerKV
		qh := tensor.New(steps, dh)
		for t := 0; t < steps; t++ {
			copy(qh.Row(t), q.Row(t)[hIdx*dh:(hIdx+1)*dh])
		}
		kh := tensor.SliceCols(kRows, kvIdx*dh, (kvIdx+1)*dh)
		vh := tensor.SliceCols(vRows, kvIdx*dh, (kvIdx+1)*dh)
		scores := tensor.Scale(tensor.MatMulT(qh, kh), inv)
		for t := 0; t < steps; t++ {
			row := scores.Row(t)
			for j := past + t + 1; j < total; j++ {
				row[j] = float32(math.Inf(-1))
			}
		}
		tensor.SoftmaxRows(scores)
		oh := tensor.MatMul(scores, vh)
		for t := 0; t < steps; t++ {
			copy(out.Row(t)[hIdx*dh:(hIdx+1)*dh], oh.Row(t))
		}
	}
	return out
}

// The fused kernel must match the composed-primitive oracle across MHA,
// GQA-style head sharing, MQA, multiple steps, odd depths that are not
// multiples of the four-row blocking, and prefix-aliased slots.
func TestAttendSeqIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cases := []struct {
		name               string
		dh, heads, kvHeads int
		past, steps        int
		prefixLen          int
	}{
		{"mha-decode", 8, 4, 4, 13, 1, 0},
		{"mha-prefill", 8, 4, 4, 0, 6, 0},
		{"mqa-deep", 8, 8, 1, 29, 1, 0},
		{"gqa-steps", 4, 6, 2, 7, 3, 0},
		{"odd-dh", 5, 3, 3, 10, 2, 0},
		{"prefix-aliased", 8, 4, 1, 9, 2, 5},
		{"prefix-boundary", 8, 2, 2, 4, 1, 4},
		{"depth-not-multiple-of-4", 8, 4, 1, 6, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			width := tc.kvHeads * tc.dh
			cache := kvcache.New(1, 1, 64, width)
			if tc.prefixLen > 0 {
				store := kvcache.NewPrefixStore(1, width, 0)
				pk := []*tensor.Mat{tensor.New(tc.prefixLen, width).FillRand(rng, 1)}
				pv := []*tensor.Mat{tensor.New(tc.prefixLen, width).FillRand(rng, 1)}
				toks := make([]int, tc.prefixLen)
				for i := range toks {
					toks[i] = i + 1
				}
				p, err := store.Insert(toks, pk, pv)
				if err != nil {
					t.Fatal(err)
				}
				if err := cache.AttachPrefix(0, p); err != nil {
					t.Fatal(err)
				}
			}
			// Commit `past` positions (prefix contributes tc.prefixLen of
			// them), then append the new steps uncommitted, as the engine
			// does mid-pass.
			privPast := tc.past - tc.prefixLen
			if privPast > 0 {
				k := tensor.New(privPast, width).FillRand(rng, 1)
				v := tensor.New(privPast, width).FillRand(rng, 1)
				cache.AppendSeq(0, 0, k, v, privPast)
				cache.AdvanceSeq(0, privPast)
			}
			kNew := tensor.New(tc.steps, width).FillRand(rng, 1)
			vNew := tensor.New(tc.steps, width).FillRand(rng, 1)
			cache.AppendSeq(0, 0, kNew, vNew, tc.steps)

			q := tensor.New(tc.steps, tc.heads*tc.dh).FillRand(rng, 1)
			want := attendSeqNaive(tc.dh, q, cache, 0, 0, tc.steps)
			got := AttendSeq(tc.dh, q, cache, 0, 0, tc.steps)
			if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
				t.Errorf("fused attention differs from naive by %g", d)
			}

			// The Into form with a shared scratch must agree exactly with
			// the wrapper across repeated calls (scratch reuse is benign).
			var scr AttnScratch
			dst := tensor.New(tc.steps, tc.heads*tc.dh)
			for i := 0; i < 3; i++ {
				AttendSeqInto(dst, tc.dh, q, cache, 0, 0, tc.steps, &scr)
				if d := tensor.MaxAbsDiff(dst, got); d != 0 {
					t.Fatalf("run %d: AttendSeqInto differs from AttendSeq by %g", i, d)
				}
			}
		})
	}
}

// Steady-state fused attention must not allocate (the engine asserts the
// whole decode path; this isolates the kernel).
func TestAttendSeqIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	cache := kvcache.New(1, 1, 128, 8)
	k := tensor.New(20, 8).FillRand(rng, 1)
	v := tensor.New(20, 8).FillRand(rng, 1)
	cache.AppendSeq(0, 0, k, v, 20)
	cache.AdvanceSeq(0, 20)
	q := tensor.New(1, 16).FillRand(rng, 1)
	dst := tensor.New(1, 16)
	var scr AttnScratch
	scr.Reserve(128)
	AttendSeqInto(dst, 8, q, cache, 0, 0, 1, &scr)
	if avg := testing.AllocsPerRun(100, func() {
		AttendSeqInto(dst, 8, q, cache, 0, 0, 1, &scr)
	}); avg != 0 {
		t.Errorf("AttendSeqInto allocates %v times per call", avg)
	}
}
