package reference

import (
	"math"

	"esti/internal/kvcache"
	"esti/internal/quant"
	"esti/internal/simd"
	"esti/internal/tensor"
)

// Fused attention kernel. The original AttendSeq materialized per-head
// temporaries — a query copy, K/V column slices of the whole cache depth,
// a scores matrix, an output block — and composed tensor.MatMulT, Scale,
// SoftmaxRows and MatMul over them; at decode depth d that copied O(d)
// rows per head per layer and dominated the profile. AttendSeqInto fuses
// scale, causal mask, softmax and the weighted V sum into one pass per
// query head that reads K and V directly from the kvcache's two-segment
// zero-copy views (shared prefix + private suffix), shares a single
// softmax buffer across heads, steps and layers, and writes straight into
// the caller's output block. Steady state it allocates nothing.

// AttnScratch is the reusable buffer AttendSeqInto runs its softmax in.
// One scratch serves a whole engine chip (or reference model): every call
// reuses the same backing array, growing it only when the attended depth
// first exceeds its capacity. Reserve pre-sizes it so a capacity-bounded
// decode loop never grows it at all. Not safe for concurrent use.
type AttnScratch struct {
	probs []float32
}

// Reserve grows the scratch to cover attention depths up to maxLen.
func (s *AttnScratch) Reserve(maxLen int) {
	if cap(s.probs) < maxLen {
		s.probs = make([]float32, maxLen)
	}
}

func (s *AttnScratch) buf(n int) []float32 {
	if cap(s.probs) < n {
		s.probs = make([]float32, n)
	}
	return s.probs[:n]
}

// AttendSeqInto computes masked attention of a single sequence's queries
// ([steps, localHeads·dh]) against cache slot `slot` into dst, which must
// already be shaped [steps, q.Cols]. Semantics are identical to AttendSeq
// (see its doc comment for the head mapping and depth contract); this is
// the fused, allocation-free form the engine's hot path calls. An int8
// cache runs the quantized walk (attendSeqInt8): same loop structure, K/V
// read as raw int8 with one scale multiply per row.
func AttendSeqInto(dst *tensor.Mat, dh int, q *tensor.Mat, cache *kvcache.Cache, layer, slot, steps int, scr *AttnScratch) *tensor.Mat {
	heads := q.Cols / dh
	kvHeads := cache.KVWidth / dh
	headsPerKV := heads / kvHeads
	past := cache.SeqLen(slot)
	total := past + steps
	inv := float32(1 / math.Sqrt(float64(dh)))

	if cache.Int8() {
		return attendSeqInt8(dst, dh, q, cache, layer, slot, steps, scr, headsPerKV, past, inv)
	}

	preK, privK := cache.ViewK(layer, slot, total)
	preV, privV := cache.ViewV(layer, slot, total)
	pl := preK.Rows
	probs := scr.buf(total)

	for h := 0; h < heads; h++ {
		qo := h * dh
		kvo := (h / headsPerKV) * dh
		for t := 0; t < steps; t++ {
			qrow := q.Row(t)[qo : qo+dh]
			limit := past + t + 1 // causal: query past+t sees keys 0..past+t
			npre := limit
			if npre > pl {
				npre = pl
			}
			maxV := scoreSeg(probs[:npre], preK.Data, preK.Cols, kvo, qrow, inv,
				scoreSeg(probs[npre:limit], privK.Data, privK.Cols, kvo, qrow, inv,
					float32(math.Inf(-1))))
			scale := softmaxInPlace(probs[:limit], maxV)
			orow := dst.Row(t)[qo : qo+dh]
			for i := range orow {
				orow[i] = 0
			}
			weighSeg(orow, probs[:npre], preV.Data, preV.Cols, kvo, scale)
			weighSeg(orow, probs[npre:limit], privV.Data, privV.Cols, kvo, scale)
		}
	}
	return dst
}

// softmaxInPlace exponentiates max-subtracted scores with the batched
// Exp32Rows and returns the reciprocal of their sum — the 1/Σ factor both
// weigh loops fold into their per-row weights. Shared by the float32 and
// int8 walks.
func softmaxInPlace(probs []float32, maxV float32) (invSum float32) {
	for j := range probs {
		probs[j] -= maxV
	}
	tensor.Exp32Rows(probs)
	var sum float32
	for _, p := range probs {
		sum += p
	}
	return 1 / sum
}

// attendSeqInt8 is the quantized walk: the same fused score → softmax →
// weigh structure over the cache's int8 two-segment views. Scores are
// float32 dots over raw int8 K values with the row scale applied once per
// row (quant.DotF32I8's contract), and the weighted V sum folds each row's
// scale into its softmax weight — no float32 K/V is ever materialized and
// nothing allocates, so the decode hot path keeps its zero-alloc contract
// while touching half the cache bytes.
func attendSeqInt8(dst *tensor.Mat, dh int, q *tensor.Mat, cache *kvcache.Cache, layer, slot, steps int, scr *AttnScratch, headsPerKV, past int, inv float32) *tensor.Mat {
	heads := q.Cols / dh
	total := past + steps
	preK, privK := cache.ViewK8(layer, slot, total)
	preV, privV := cache.ViewV8(layer, slot, total)
	pl := preK.Rows
	probs := scr.buf(total)

	for h := 0; h < heads; h++ {
		qo := h * dh
		kvo := (h / headsPerKV) * dh
		for t := 0; t < steps; t++ {
			qrow := q.Row(t)[qo : qo+dh]
			limit := past + t + 1
			npre := limit
			if npre > pl {
				npre = pl
			}
			maxV := scoreSegI8(probs[:npre], preK, kvo, qrow, inv,
				scoreSegI8(probs[npre:limit], privK, kvo, qrow, inv,
					float32(math.Inf(-1))))
			scale := softmaxInPlace(probs[:limit], maxV)
			orow := dst.Row(t)[qo : qo+dh]
			for i := range orow {
				orow[i] = 0
			}
			weighSegI8(orow, probs[:npre], preV, kvo, scale)
			weighSegI8(orow, probs[npre:limit], privV, kvo, scale)
		}
	}
	return dst
}

// scoreSeg fills out[j] with inv·(q · k_j) for one K segment (rows are
// len(out) consecutive rows of kd at stride w, columns [kvo, kvo+len(q))),
// each row's dot running the simd layer's fixed 16-lane kernel (AVX2 or
// its bit-identical scalar twin), and returns the running max starting
// from maxV. Segments compose: score the later (private) segment first
// with the prefix segment's call wrapped around it, or vice versa — max is
// order-independent.
func scoreSeg(out []float32, kd []float32, w, kvo int, q []float32, inv, maxV float32) float32 {
	dh := len(q)
	for j := range out {
		o := j*w + kvo
		s := inv * simd.DotF32(q, kd[o:o+dh])
		out[j] = s
		if s > maxV {
			maxV = s
		}
	}
	return maxV
}

// scoreSegI8 is scoreSeg over a quantized K segment: out[j] gets
// inv·scales[j]·(q · k8_j), the int8×float32 dot with the row's
// dequantization folded into one multiply after the accumulation — the
// accumulation itself is simd.DotF32I8's VPMOVSXBD-class inner loop.
func scoreSegI8(out []float32, seg quant.Int8Rows, kvo int, q []float32, inv, maxV float32) float32 {
	dh := len(q)
	kd, scales, w := seg.Data, seg.Scales, seg.Cols
	for j := range out {
		o := j*w + kvo
		s := inv * scales[j] * simd.DotF32I8(q, kd[o:o+dh])
		out[j] = s
		if s > maxV {
			maxV = s
		}
	}
	return maxV
}

// weighSegI8 is weighSeg over a quantized V segment: each row's
// dequantization scale folds into its softmax weight (p_j·invSum·scale_j),
// so the inner loop is a pure int8→float32 multiply-accumulate —
// simd.MulAdd4F32I8 four rows at a time.
func weighSegI8(orow []float32, p []float32, seg quant.Int8Rows, kvo int, scale float32) {
	dh := len(orow)
	vd, scales, w := seg.Data, seg.Scales, seg.Cols
	j := 0
	for ; j+4 <= len(p); j += 4 {
		o0 := j*w + kvo
		p0 := p[j] * scale * scales[j]
		p1 := p[j+1] * scale * scales[j+1]
		p2 := p[j+2] * scale * scales[j+2]
		p3 := p[j+3] * scale * scales[j+3]
		simd.MulAdd4F32I8(orow,
			vd[o0:o0+dh], vd[o0+w:o0+w+dh], vd[o0+2*w:o0+2*w+dh], vd[o0+3*w:o0+3*w+dh],
			p0, p1, p2, p3)
	}
	for ; j < len(p); j++ {
		o := j*w + kvo
		quant.AxpyF32I8(orow, p[j]*scale*scales[j], vd[o:o+dh])
	}
}

// weighSeg accumulates scale·p_j·v_j into orow over one V segment (len(p)
// consecutive rows of vd at stride w, columns [kvo, kvo+len(orow))),
// simd.MulAdd4F32 four rows at a time.
func weighSeg(orow []float32, p []float32, vd []float32, w, kvo int, scale float32) {
	dh := len(orow)
	j := 0
	for ; j+4 <= len(p); j += 4 {
		o0 := j*w + kvo
		p0, p1, p2, p3 := p[j]*scale, p[j+1]*scale, p[j+2]*scale, p[j+3]*scale
		simd.MulAdd4F32(orow,
			vd[o0:o0+dh], vd[o0+w:o0+w+dh], vd[o0+2*w:o0+2*w+dh], vd[o0+3*w:o0+3*w+dh],
			p0, p1, p2, p3)
	}
	for ; j < len(p); j++ {
		o := j*w + kvo
		tensor.Axpy(orow, p[j]*scale, vd[o:o+dh])
	}
}
