package reference

import (
	"math"
	"math/rand"
	"testing"

	"esti/internal/kvcache"
	"esti/internal/tensor"
)

// Property suite for the quantized attention walk: over shapes spanning
// the head mappings (MHA, multiquery, grouped), block-boundary depths
// (the 4-row-blocked loops' odd tails), multi-step queries, and
// prefix-attached slots, the int8 walk's output stays within a small
// relative error of the float32 walk on the same K/V — the bound that
// makes the end-to-end greedy-token agreement in package engine hold.
// Per-row symmetric quantization bounds each stored element's error at
// 0.5/127 ≈ 0.4% of its row's max magnitude; softmax averaging keeps the
// output error in the same class.
func TestAttendSeqInt8MatchesFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cases := []struct {
		name               string
		heads, kvHeads, dh int
		past, steps        int
		prefix             int // rows attached as a shared prefix
	}{
		{"mq-depth1", 4, 1, 8, 0, 1, 0},
		{"mq-odd-tail", 4, 1, 8, 6, 1, 0},
		{"mq-block-boundary", 4, 1, 8, 15, 1, 0},
		{"mq-deep", 4, 1, 8, 63, 1, 0},
		{"mha", 4, 4, 8, 9, 1, 0},
		{"grouped", 8, 2, 4, 17, 1, 0},
		{"multi-step", 4, 1, 8, 5, 4, 0},
		{"prefix", 4, 1, 8, 10, 1, 6},
		{"prefix-multi-step", 8, 2, 4, 12, 3, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			width := tc.kvHeads * tc.dh
			total := tc.past + tc.steps
			fp := kvcache.New(1, 1, total, width)
			q8 := kvcache.NewInt8(1, 1, total, width)

			// Shared prefix rows (if any) go through the stores; the rest
			// are appended privately to both caches.
			if tc.prefix > 0 {
				pk := tensor.New(tc.prefix, width).FillRand(rng, 1)
				pv := tensor.New(tc.prefix, width).FillRand(rng, 1)
				toks := make([]int, tc.prefix)
				for i := range toks {
					toks[i] = i + 1
				}
				fpStore := kvcache.NewPrefixStore(1, width, 0)
				q8Store := kvcache.NewPrefixStoreInt8(1, width, 0)
				fpP, err := fpStore.Insert(toks, []*tensor.Mat{pk}, []*tensor.Mat{pv})
				if err != nil {
					t.Fatal(err)
				}
				q8P, err := q8Store.Insert(toks, []*tensor.Mat{pk}, []*tensor.Mat{pv})
				if err != nil {
					t.Fatal(err)
				}
				if err := fp.AttachPrefix(0, fpP); err != nil {
					t.Fatal(err)
				}
				if err := q8.AttachPrefix(0, q8P); err != nil {
					t.Fatal(err)
				}
			}
			privPast := tc.past - tc.prefix
			if privPast < 0 {
				t.Fatalf("bad case: prefix %d > past %d", tc.prefix, tc.past)
			}
			if privPast > 0 {
				k := tensor.New(privPast, width).FillRand(rng, 1)
				v := tensor.New(privPast, width).FillRand(rng, 1)
				fp.AppendSeq(0, 0, k, v, privPast)
				q8.AppendSeq(0, 0, k, v, privPast)
			}
			fp.AdvanceSeq(0, privPast)
			q8.AdvanceSeq(0, privPast)

			// New positions' K/V (appended, not yet committed — the
			// mid-pass state AttendSeqInto reads).
			kNew := tensor.New(tc.steps, width).FillRand(rng, 1)
			vNew := tensor.New(tc.steps, width).FillRand(rng, 1)
			fp.AppendSeq(0, 0, kNew, vNew, tc.steps)
			q8.AppendSeq(0, 0, kNew, vNew, tc.steps)

			q := tensor.New(tc.steps, tc.heads*tc.dh).FillRand(rng, 1)
			var scrF, scrQ AttnScratch
			outF := AttendSeqInto(tensor.New(tc.steps, q.Cols), tc.dh, q, fp, 0, 0, tc.steps, &scrF)
			outQ := AttendSeqInto(tensor.New(tc.steps, q.Cols), tc.dh, q, q8, 0, 0, tc.steps, &scrQ)

			// Normalize by the output's dynamic range: quantization noise
			// is relative to row magnitudes, not to near-zero elements.
			var ref float64
			for _, v := range outF.Data {
				if a := math.Abs(float64(v)); a > ref {
					ref = a
				}
			}
			if ref == 0 {
				ref = 1
			}
			if d := tensor.MaxAbsDiff(outF, outQ) / ref; d > 0.03 {
				t.Errorf("int8 attention deviates %.4f (relative), want <= 0.03", d)
			}
		})
	}
}

// The int8 walk shares the zero-allocation contract of the float32 walk:
// once the scratch is warm, a call allocates nothing (by-value views,
// in-place softmax, shared int8-dot kernels).
func TestAttendSeqInt8ZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const heads, dh, width, depth = 4, 8, 8, 33
	c := kvcache.NewInt8(1, 1, depth+1, width)
	k := tensor.New(depth, width).FillRand(rng, 1)
	v := tensor.New(depth, width).FillRand(rng, 1)
	c.AppendSeq(0, 0, k, v, depth)
	c.AdvanceSeq(0, depth)
	kn := tensor.New(1, width).FillRand(rng, 1)
	vn := tensor.New(1, width).FillRand(rng, 1)
	c.AppendSeq(0, 0, kn, vn, 1)

	q := tensor.New(1, heads*dh).FillRand(rng, 1)
	out := tensor.New(1, heads*dh)
	var scr AttnScratch
	scr.Reserve(depth + 1)
	AttendSeqInto(out, dh, q, c, 0, 0, 1, &scr)
	if avg := testing.AllocsPerRun(100, func() {
		AttendSeqInto(out, dh, q, c, 0, 0, 1, &scr)
	}); avg != 0 {
		t.Errorf("int8 AttendSeqInto allocates %v per call, want 0", avg)
	}
}
