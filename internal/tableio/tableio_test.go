package tableio

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-long-name", "x")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, underline, header, separator, 2 rows → 6? title+rule+header+sep+2
		if len(lines) != 6 {
			t.Fatalf("got %d lines:\n%s", len(lines), s)
		}
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta-long-name") {
		t.Error("missing row content")
	}
	// Columns align: "value" column starts at the same offset in header
	// and rows (padded to the widest cell).
	headerIdx := strings.Index(lines[2], "value")
	rowIdx := strings.Index(lines[4], "1.5")
	if headerIdx != rowIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, s)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tab := Table{Header: []string{"a"}}
	tab.AddRow("x")
	s := tab.String()
	if strings.HasPrefix(s, "\n") || strings.HasPrefix(s, "=") {
		t.Errorf("untitled table should start with header: %q", s)
	}
}

func TestAddRowFormats(t *testing.T) {
	tab := Table{Header: []string{"v"}}
	tab.AddRow(0.0)
	tab.AddRow(12345.6)
	tab.AddRow(42.0)
	tab.AddRow(0.5)
	tab.AddRow(0.001234)
	tab.AddRow(7) // int via %v
	want := []string{"0", "12346", "42.0", "0.500", "0.00123", "7"}
	for i, w := range want {
		if tab.Rows[i][0] != w {
			t.Errorf("row %d = %q, want %q", i, tab.Rows[i][0], w)
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := Ms(0.0285); got != "28.5" {
		t.Errorf("Ms = %q, want 28.5", got)
	}
	if got := Pct(0.756); got != "76%" {
		t.Errorf("Pct = %q, want 76%%", got)
	}
	if got := Pct1(0.756); got != "75.6%" {
		t.Errorf("Pct1 = %q, want 75.6%%", got)
	}
	if got := GB(4.29e9); got != "4.29" {
		t.Errorf("GB = %q, want 4.29", got)
	}
}

func TestRaggedRowsDoNotPanic(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.AddRow("only-one")
	tab.AddRow("x", "y", "extra")
	_ = tab.String()
}
