// Package tableio renders experiment results as aligned plain-text tables
// and simple XY series listings, the output format of cmd/estibench and
// EXPERIMENTS.md.
package tableio

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (stringifying each with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", max(0, pad)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Ms formats seconds as milliseconds.
func Ms(seconds float64) string {
	return fmt.Sprintf("%.1f", seconds*1000)
}

// Pct formats a 0..1 ratio as a percentage.
func Pct(frac float64) string {
	return fmt.Sprintf("%.0f%%", frac*100)
}

// Pct1 formats a 0..1 ratio as a percentage with one decimal.
func Pct1(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// GB formats bytes as gigabytes.
func GB(bytes float64) string {
	return fmt.Sprintf("%.2f", bytes/1e9)
}
