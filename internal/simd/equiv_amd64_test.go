package simd

import (
	"math"
	"math/rand"
	"testing"
)

// Direct assembly-vs-twin equivalence, independent of what dispatch
// selected (so it still bites under ESTI_NOSIMD=1, and the scalar-fallback
// CI job cannot silently skip it on AVX2 runners).

func skipNoAVX2(t *testing.T) {
	t.Helper()
	if !hwAVX2 {
		t.Skip("no AVX2 on this machine")
	}
}

// asmLengths are multiples of the kernels' block widths — the only counts
// the raw assembly accepts.
func asmLengths(block int) []int {
	return []int{block, 2 * block, 4 * block, 10 * block, 16 * block}
}

func TestAsmDotBitIdentical(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(7))
	for _, n := range asmLengths(dotBlock) {
		for trial := 0; trial < 16; trial++ {
			a := randFloats(rng, n, true)
			bf := randFloats(rng, n, true)
			bi := randInt8s(rng, n)
			eqBits(t, "dotF32AVX2", dotF32Asm(a, bf), ScalarDotF32(a, bf))
			eqBits(t, "dotF32I8AVX2", dotF32I8Asm(a, bi), ScalarDotF32I8(a, bi))
		}
	}
}

func TestAsmAxpyBitIdentical(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(8))
	for _, n := range asmLengths(axpyBlock) {
		for trial := 0; trial < 16; trial++ {
			base := randFloats(rng, n, true)
			x := randFloats(rng, n, true)
			v := randInt8s(rng, n)
			s := rng.Float32()*4 - 2

			got, want := append([]float32(nil), base...), append([]float32(nil), base...)
			axpyF32Asm(got, s, x)
			ScalarAxpyF32(want, s, x)
			for i := range got {
				eqBits(t, "axpyF32AVX2", got[i], want[i])
			}

			got, want = append([]float32(nil), base...), append([]float32(nil), base...)
			axpyF32I8Asm(got, s, v)
			ScalarAxpyF32I8(want, s, v)
			for i := range got {
				eqBits(t, "axpyF32I8AVX2", got[i], want[i])
			}
		}
	}
}

func TestAsmMulAdd4BitIdentical(t *testing.T) {
	skipNoAVX2(t)
	rng := rand.New(rand.NewSource(9))
	for _, n := range asmLengths(axpyBlock) {
		for trial := 0; trial < 16; trial++ {
			base := randFloats(rng, n, true)
			var b [4][]float32
			var q [4][]int8
			for r := range b {
				b[r] = randFloats(rng, n, true)
				q[r] = randInt8s(rng, n)
			}
			a0, a1 := rng.Float32()*2-1, rng.Float32()*2-1
			a2, a3 := rng.Float32()*2-1, rng.Float32()*2-1

			got, want := append([]float32(nil), base...), append([]float32(nil), base...)
			mulAdd4F32Asm(got, b[0], b[1], b[2], b[3], a0, a1, a2, a3)
			ScalarMulAdd4F32(want, b[0], b[1], b[2], b[3], a0, a1, a2, a3)
			for i := range got {
				eqBits(t, "mulAdd4F32AVX2", got[i], want[i])
			}

			got, want = append([]float32(nil), base...), append([]float32(nil), base...)
			mulAdd4F32I8Asm(got, q[0], q[1], q[2], q[3], a0, a1, a2, a3)
			ScalarMulAdd4F32I8(want, q[0], q[1], q[2], q[3], a0, a1, a2, a3)
			for i := range got {
				eqBits(t, "mulAdd4F32I8AVX2", got[i], want[i])
			}
		}
	}
}

// Sign-extension edge values must convert exactly like Go's float32(int8).
func TestAsmInt8ExtensionExtremes(t *testing.T) {
	skipNoAVX2(t)
	b := make([]int8, dotBlock)
	a := make([]float32, dotBlock)
	for i := range b {
		b[i] = []int8{-128, -127, -1, 0, 1, 127, 64, -64}[i%8]
		a[i] = 1
	}
	eqBits(t, "int8 extremes", dotF32I8Asm(a, b), ScalarDotF32I8(a, b))
	if got := dotF32I8Asm(a, b); got != ScalarDotF32I8(a, b) {
		t.Fatalf("extension mismatch: %g", got)
	}
}

// Infinities and huge magnitudes must overflow identically on both paths.
func TestAsmOverflowIdentical(t *testing.T) {
	skipNoAVX2(t)
	a := make([]float32, dotBlock)
	b := make([]float32, dotBlock)
	for i := range a {
		a[i] = math.MaxFloat32
		b[i] = math.MaxFloat32
	}
	eqBits(t, "overflow dot", dotF32Asm(a, b), ScalarDotF32(a, b))
	if !math.IsInf(float64(dotF32Asm(a, b)), 1) {
		t.Fatal("expected +Inf accumulation")
	}
}
