package simd

// Assembly kernel declarations (kernels_amd64.s). All kernels use only
// VMULPS/VADDPS-class arithmetic — never FMA — so every float32 operation
// rounds exactly like its Go-source twin.

// dotF32AVX2 sums a[i]*b[i] over n elements, n a positive multiple of 16,
// with the package's fixed 16-lane accumulation and reduction tree.
//
//go:noescape
func dotF32AVX2(a, b *float32, n int) float32

// dotF32I8AVX2 sums a[i]*float32(b[i]) over n elements, n a positive
// multiple of 16 (VPMOVSXBD sign-extension + VCVTDQ2PS, both exact).
//
//go:noescape
func dotF32I8AVX2(a *float32, b *int8, n int) float32

// axpyF32AVX2 computes dst[i] += s*x[i] over n elements, n a positive
// multiple of 8.
//
//go:noescape
func axpyF32AVX2(dst *float32, s float32, x *float32, n int)

// axpyF32I8AVX2 computes dst[i] += s*float32(v[i]) over n elements, n a
// positive multiple of 8.
//
//go:noescape
func axpyF32I8AVX2(dst *float32, s float32, v *int8, n int)

// mulAdd4F32AVX2 computes dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] +
// a3*b3[j] (left-associated) over n elements, n a positive multiple of 8.
//
//go:noescape
func mulAdd4F32AVX2(dst, b0, b1, b2, b3 *float32, a0, a1, a2, a3 float32, n int)

// mulAdd4F32I8AVX2 is mulAdd4F32AVX2 over raw int8 rows.
//
//go:noescape
func mulAdd4F32I8AVX2(dst *float32, q0, q1, q2, q3 *int8, a0, a1, a2, a3 float32, n int)

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbv0() (eax, edx uint32)
