package simd

import (
	"math/rand"
	"testing"
)

// Package-local microbenchmarks of the dispatched kernels against their
// scalar twins. The root-package bench suite (bench_test.go) re-exports
// these shapes into BENCH_ci.json; these exist for quick in-package
// iteration: go test ./internal/simd -bench=. -run='^$'

const benchN = 256 // a typical head-dim×2 / row-block length

func benchVectors() (a, b []float32, q []int8) {
	rng := rand.New(rand.NewSource(1))
	a = randFloats(rng, benchN, false)
	b = randFloats(rng, benchN, false)
	q = randInt8s(rng, benchN)
	return
}

func BenchmarkPkgDotF32(b *testing.B) {
	a, x, _ := benchVectors()
	b.Run("dispatch", func(b *testing.B) {
		var s float32
		for i := 0; i < b.N; i++ {
			s += DotF32(a, x)
		}
		sink = s
	})
	b.Run("scalar", func(b *testing.B) {
		var s float32
		for i := 0; i < b.N; i++ {
			s += ScalarDotF32(a, x)
		}
		sink = s
	})
}

func BenchmarkPkgDotF32I8(b *testing.B) {
	a, _, q := benchVectors()
	b.Run("dispatch", func(b *testing.B) {
		var s float32
		for i := 0; i < b.N; i++ {
			s += DotF32I8(a, q)
		}
		sink = s
	})
	b.Run("scalar", func(b *testing.B) {
		var s float32
		for i := 0; i < b.N; i++ {
			s += ScalarDotF32I8(a, q)
		}
		sink = s
	})
}

func BenchmarkPkgAxpyF32I8(b *testing.B) {
	a, _, q := benchVectors()
	b.Run("dispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AxpyF32I8(a, 0.5, q)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScalarAxpyF32I8(a, 0.5, q)
		}
	})
}

func BenchmarkPkgMulAdd4F32(b *testing.B) {
	a, x, _ := benchVectors()
	b.Run("dispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MulAdd4F32(a, x, x, x, x, 0.1, 0.2, 0.3, 0.4)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ScalarMulAdd4F32(a, x, x, x, x, 0.1, 0.2, 0.3, 0.4)
		}
	})
}

// sink defeats dead-code elimination of the benchmarked dots.
var sink float32
