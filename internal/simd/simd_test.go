package simd

import (
	"math"
	"math/rand"
	"testing"
)

// Dispatch-level tests that hold on every architecture: the exported API
// must agree bit for bit with the exported scalar twins on every input —
// trivially when dispatch is scalar, and through the assembly + Go-tail
// composition when it is not. The amd64-only equiv test drives the raw
// assembly against the twins directly, independent of dispatch.

func randFloats(rng *rand.Rand, n int, poison bool) []float32 {
	out := make([]float32, n)
	for i := range out {
		switch {
		case rng.Intn(7) == 0:
			out[i] = 0
		case poison && rng.Intn(29) == 0:
			out[i] = float32(math.Inf(1 - 2*rng.Intn(2)))
		case poison && rng.Intn(31) == 0:
			out[i] = float32(math.NaN())
		default:
			out[i] = (rng.Float32()*2 - 1) * 8
		}
	}
	return out
}

func randInt8s(rng *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127)
	}
	return out
}

// eqBits fails unless got and want are the same float32 bit pattern, with
// NaN payloads compared loosely: any NaN equals any NaN. Payload-exact NaN
// propagation is not part of the contract (the quantize path never lets a
// NaN reach the kernels' int8 side, and score/weigh inputs are finite by
// the softmax contract); value-exactness everywhere else is.
func eqBits(t *testing.T, label string, got, want float32) {
	t.Helper()
	if math.Float32bits(got) == math.Float32bits(want) {
		return
	}
	if math.IsNaN(float64(got)) && math.IsNaN(float64(want)) {
		return
	}
	t.Fatalf("%s: got %g (%#08x), want %g (%#08x)",
		label, got, math.Float32bits(got), want, math.Float32bits(want))
}

// lengths covers every block boundary: empty, sub-tail, exactly one vector
// block, one block plus tail, several blocks, and odd sizes.
var lengths = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 127, 128, 200, 256}

func TestDotMatchesScalarTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range lengths {
		for trial := 0; trial < 8; trial++ {
			a := randFloats(rng, n, true)
			bf := randFloats(rng, n, true)
			bi := randInt8s(rng, n)
			eqBits(t, "DotF32", DotF32(a, bf), ScalarDotF32(a, bf))
			eqBits(t, "DotF32I8", DotF32I8(a, bi), ScalarDotF32I8(a, bi))
		}
	}
}

func TestAxpyMatchesScalarTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range lengths {
		for trial := 0; trial < 8; trial++ {
			base := randFloats(rng, n, false)
			x := randFloats(rng, n, true)
			v := randInt8s(rng, n)
			s := rng.Float32()*4 - 2

			got, want := append([]float32(nil), base...), append([]float32(nil), base...)
			AxpyF32(got, s, x)
			ScalarAxpyF32(want, s, x)
			for i := range got {
				eqBits(t, "AxpyF32", got[i], want[i])
			}

			got, want = append([]float32(nil), base...), append([]float32(nil), base...)
			AxpyF32I8(got, s, v)
			ScalarAxpyF32I8(want, s, v)
			for i := range got {
				eqBits(t, "AxpyF32I8", got[i], want[i])
			}
		}
	}
}

func TestMulAdd4MatchesScalarTwin(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range lengths {
		for trial := 0; trial < 8; trial++ {
			base := randFloats(rng, n, false)
			b := [4][]float32{}
			q := [4][]int8{}
			for r := range b {
				b[r] = randFloats(rng, n, true)
				q[r] = randInt8s(rng, n)
			}
			a0, a1 := rng.Float32()*2-1, rng.Float32()*2-1
			a2, a3 := rng.Float32()*2-1, rng.Float32()*2-1

			got, want := append([]float32(nil), base...), append([]float32(nil), base...)
			MulAdd4F32(got, b[0], b[1], b[2], b[3], a0, a1, a2, a3)
			ScalarMulAdd4F32(want, b[0], b[1], b[2], b[3], a0, a1, a2, a3)
			for i := range got {
				eqBits(t, "MulAdd4F32", got[i], want[i])
			}

			got, want = append([]float32(nil), base...), append([]float32(nil), base...)
			MulAdd4F32I8(got, q[0], q[1], q[2], q[3], a0, a1, a2, a3)
			ScalarMulAdd4F32I8(want, q[0], q[1], q[2], q[3], a0, a1, a2, a3)
			for i := range got {
				eqBits(t, "MulAdd4F32I8", got[i], want[i])
			}
		}
	}
}

// The dot kernels trim to the shorter operand, mirroring tensor.Dot's
// historical contract.
func TestDotTrimsToShorter(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6, 7}
	if got := DotF32(a, b); got != 1*4+2*5+3*6 {
		t.Fatalf("DotF32 long b = %g", got)
	}
	if got := DotF32(b, a); got != 1*4+2*5+3*6 {
		t.Fatalf("DotF32 long a = %g", got)
	}
	if got := DotF32I8([]float32{2, 3}, []int8{5, -7, 100}); got != 2*5+3*-7 {
		t.Fatalf("DotF32I8 = %g", got)
	}
	AxpyF32(nil, 2, nil) // zero-length must be a no-op, not a panic
	AxpyF32I8(nil, 2, nil)
	MulAdd4F32(nil, nil, nil, nil, nil, 1, 2, 3, 4)
	MulAdd4F32I8(nil, nil, nil, nil, nil, 1, 2, 3, 4)
}

func TestKindConsistent(t *testing.T) {
	if Enabled() && Kind() != "avx2" {
		t.Fatalf("Enabled but Kind = %q", Kind())
	}
	if !Enabled() && Kind() != "scalar" {
		t.Fatalf("disabled but Kind = %q", Kind())
	}
}
