// AVX2 kernels for the float32 and int8×float32 inner loops.
//
// Bit-compatibility rules (the package comment's accumulation contract):
//
//   - Arithmetic is VMULPS/VADDPS only — no FMA — so every operation is an
//     individually rounded float32 op, exactly like the Go scalar twin.
//   - Reducing kernels keep 16 partial sums in Y0 (lanes 0-7) and Y1
//     (lanes 8-15) and reduce with one fixed tree: Y0+Y1, high128+low128,
//     (v2,v3)+(v0,v1), lane1+lane0. The scalar twin's dotReduceTree mirrors
//     this instruction for instruction.
//   - Operand order matters for NaN payload propagation: products are
//     computed as a*b (a is VMULPS src2) and sums as acc+term (acc is
//     VADDPS src2), matching the Go expressions `a[i] * b[i]` and
//     `acc + term`.
//
// Counts are guaranteed by the Go wrappers: positive multiples of 16 for
// dot kernels, of 8 for the elementwise ones. int8 rows are sign-extended
// with VPMOVSXBD and converted with VCVTDQ2PS — both exact for int8 range,
// identical to Go's float32(int8) conversion.

#include "textflag.h"

// func dotF32AVX2(a, b *float32, n int) float32
TEXT ·dotF32AVX2(SB), NOSPLIT, $0-28
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   n+16(FP), CX
	VXORPS Y0, Y0, Y0          // lanes 0-7
	VXORPS Y1, Y1, Y1          // lanes 8-15

dotloop:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	VMULPS  Y4, Y2, Y2         // a * b
	VMULPS  Y5, Y3, Y3
	VADDPS  Y2, Y0, Y0         // acc + product
	VADDPS  Y3, Y1, Y1
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $16, CX
	JNZ     dotloop

	VADDPS       Y1, Y0, Y0    // u[j] = lane[j] + lane[j+8]
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0    // v[j] = u[j] + u[j+4]
	VSHUFPS      $0xEE, X0, X0, X1
	VADDPS       X1, X0, X0    // w0 = v0+v2, w1 = v1+v3
	VMOVSHDUP    X0, X1
	VADDSS       X1, X0, X0    // r = w0 + w1
	VZEROUPPER
	MOVSS        X0, ret+24(FP)
	RET

// func dotF32I8AVX2(a *float32, b *int8, n int) float32
TEXT ·dotF32I8AVX2(SB), NOSPLIT, $0-28
	MOVQ   a+0(FP), SI
	MOVQ   b+8(FP), DI
	MOVQ   n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

doti8loop:
	VMOVUPS    (SI), Y2
	VMOVUPS    32(SI), Y3
	VPMOVSXBD  (DI), Y4        // 8 int8 -> 8 int32
	VPMOVSXBD  8(DI), Y5
	VCVTDQ2PS  Y4, Y4          // int32 -> float32, exact for int8 range
	VCVTDQ2PS  Y5, Y5
	VMULPS     Y4, Y2, Y2
	VMULPS     Y5, Y3, Y3
	VADDPS     Y2, Y0, Y0
	VADDPS     Y3, Y1, Y1
	ADDQ       $64, SI
	ADDQ       $16, DI
	SUBQ       $16, CX
	JNZ        doti8loop

	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VSHUFPS      $0xEE, X0, X0, X1
	VADDPS       X1, X0, X0
	VMOVSHDUP    X0, X1
	VADDSS       X1, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+24(FP)
	RET

// func axpyF32AVX2(dst *float32, s float32, x *float32, n int)
TEXT ·axpyF32AVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	VBROADCASTSS s+8(FP), Y6
	MOVQ         x+16(FP), SI
	MOVQ         n+24(FP), CX

axpyloop:
	VMOVUPS (SI), Y2
	VMULPS  Y2, Y6, Y2         // s * x
	VMOVUPS (DI), Y3
	VADDPS  Y2, Y3, Y3         // dst + product
	VMOVUPS Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     axpyloop

	VZEROUPPER
	RET

// func axpyF32I8AVX2(dst *float32, s float32, v *int8, n int)
TEXT ·axpyF32I8AVX2(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	VBROADCASTSS s+8(FP), Y6
	MOVQ         v+16(FP), SI
	MOVQ         n+24(FP), CX

axpyi8loop:
	VPMOVSXBD (SI), Y2
	VCVTDQ2PS Y2, Y2
	VMULPS    Y2, Y6, Y2       // s * float32(v)
	VMOVUPS   (DI), Y3
	VADDPS    Y2, Y3, Y3
	VMOVUPS   Y3, (DI)
	ADDQ      $8, SI
	ADDQ      $32, DI
	SUBQ      $8, CX
	JNZ       axpyi8loop

	VZEROUPPER
	RET

// func mulAdd4F32AVX2(dst, b0, b1, b2, b3 *float32, a0, a1, a2, a3 float32, n int)
TEXT ·mulAdd4F32AVX2(SB), NOSPLIT, $0-64
	MOVQ         dst+0(FP), DI
	MOVQ         b0+8(FP), R8
	MOVQ         b1+16(FP), R9
	MOVQ         b2+24(FP), R10
	MOVQ         b3+32(FP), R11
	VBROADCASTSS a0+40(FP), Y12
	VBROADCASTSS a1+44(FP), Y13
	VBROADCASTSS a2+48(FP), Y14
	VBROADCASTSS a3+52(FP), Y15
	MOVQ         n+56(FP), CX

ma4loop:
	VMOVUPS (R8), Y2
	VMULPS  Y2, Y12, Y2        // a0 * b0[j]
	VMOVUPS (R9), Y3
	VMULPS  Y3, Y13, Y3
	VADDPS  Y3, Y2, Y2         // + a1*b1[j]
	VMOVUPS (R10), Y4
	VMULPS  Y4, Y14, Y4
	VADDPS  Y4, Y2, Y2         // + a2*b2[j]
	VMOVUPS (R11), Y5
	VMULPS  Y5, Y15, Y5
	VADDPS  Y5, Y2, Y2         // + a3*b3[j]
	VMOVUPS (DI), Y3
	VADDPS  Y2, Y3, Y3         // dst + sum
	VMOVUPS Y3, (DI)
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	ADDQ    $32, DI
	SUBQ    $8, CX
	JNZ     ma4loop

	VZEROUPPER
	RET

// func mulAdd4F32I8AVX2(dst *float32, q0, q1, q2, q3 *int8, a0, a1, a2, a3 float32, n int)
TEXT ·mulAdd4F32I8AVX2(SB), NOSPLIT, $0-64
	MOVQ         dst+0(FP), DI
	MOVQ         q0+8(FP), R8
	MOVQ         q1+16(FP), R9
	MOVQ         q2+24(FP), R10
	MOVQ         q3+32(FP), R11
	VBROADCASTSS a0+40(FP), Y12
	VBROADCASTSS a1+44(FP), Y13
	VBROADCASTSS a2+48(FP), Y14
	VBROADCASTSS a3+52(FP), Y15
	MOVQ         n+56(FP), CX

ma4i8loop:
	VPMOVSXBD (R8), Y2
	VCVTDQ2PS Y2, Y2
	VMULPS    Y2, Y12, Y2
	VPMOVSXBD (R9), Y3
	VCVTDQ2PS Y3, Y3
	VMULPS    Y3, Y13, Y3
	VADDPS    Y3, Y2, Y2
	VPMOVSXBD (R10), Y4
	VCVTDQ2PS Y4, Y4
	VMULPS    Y4, Y14, Y4
	VADDPS    Y4, Y2, Y2
	VPMOVSXBD (R11), Y5
	VCVTDQ2PS Y5, Y5
	VMULPS    Y5, Y15, Y5
	VADDPS    Y5, Y2, Y2
	VMOVUPS   (DI), Y3
	VADDPS    Y2, Y3, Y3
	VMOVUPS   Y3, (DI)
	ADDQ      $8, R8
	ADDQ      $8, R9
	ADDQ      $8, R10
	ADDQ      $8, R11
	ADDQ      $32, DI
	SUBQ      $8, CX
	JNZ       ma4i8loop

	VZEROUPPER
	RET
