// Package simd is the vectorized kernel layer under the tensor, quant and
// reference hot loops: runtime-dispatched AVX2 assembly for the float32 and
// int8×float32 inner loops, with a pure-Go scalar twin that is bit-identical
// on every input.
//
// # The fixed-reduction-tree accumulation contract
//
// The whole repo's token-exactness and replay suites assume deterministic
// float accumulation, so these kernels do not get to reassociate sums
// differently per machine. Every reducing kernel (DotF32, DotF32I8) commits
// to one fixed lane structure:
//
//   - 16 partial sums ("lanes"): element i of a 16-element block feeds lane
//     i — lane l accumulates a[16k+l]·b[16k+l] over blocks k, in order.
//     On AVX2 the lanes are two 8-wide YMM accumulators; in the scalar twin
//     they are sixteen float32 variables updated in the same order.
//   - One fixed reduction tree: u[j] = lane[j]+lane[j+8] (j=0..7), then
//     v[j] = u[j]+u[j+4] (j=0..3), then w0 = v0+v2, w1 = v1+v3, then
//     r = w0+w1 — exactly the VADDPS / VEXTRACTF128 / VSHUFPS / VMOVSHDUP
//     horizontal reduce the assembly performs.
//   - The tail (len mod 16) folds into r one element at a time: r += a[i]·b[i].
//
// Elementwise kernels (AxpyF32, AxpyF32I8, MulAdd4F32, MulAdd4F32I8) have no
// cross-element accumulation, so vector width does not affect their results;
// they only require that every per-element operation is an individually
// rounded float32 multiply or add in the written order (no FMA contraction —
// the assembly uses VMULPS+VADDPS, never VFMADD).
//
// Because SIMD and fallback share this exact structure, results never depend
// on which machine (or which dispatch decision) ran the code. The
// equivalence tests and FuzzKernelEquivalence pin bit-equality between the
// two paths; the ESTI_NOSIMD=1 CI job runs the whole repo suite on the
// scalar twin so it can never rot.
//
// # Dispatch
//
// Support is detected once at init (CPUID: AVX2 + OS-enabled YMM state).
// Setting ESTI_NOSIMD=1 in the environment forces the scalar twin even on
// capable hardware — the escape hatch benchmarks and CI use to measure and
// verify the fallback.
package simd

// useASM is true when init selected the assembly kernels: supported
// hardware and ESTI_NOSIMD unset. Written only from the amd64 init.
var useASM bool

// kindName describes the selected dispatch for logs and tests.
var kindName = "scalar"

// Enabled reports whether the vectorized kernels are active.
func Enabled() bool { return useASM }

// Kind returns the active kernel set: "avx2" or "scalar".
func Kind() string { return kindName }

// dotBlock is the lane-block width of the reducing kernels: 16 partial
// sums, reduced by the fixed tree in dotReduceTree.
const dotBlock = 16

// axpyBlock is the vector width of the elementwise kernels' assembly body;
// the Go wrappers run the sub-block tail themselves.
const axpyBlock = 8

// DotF32 returns the sum over min(len(a), len(b)) of a[i]·b[i], accumulated
// with the package's fixed 16-lane structure (see the package comment).
func DotF32(a, b []float32) float32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	b = b[:len(a)]
	if useASM {
		m := len(a) &^ (dotBlock - 1)
		var r float32
		if m > 0 {
			r = dotF32Asm(a[:m], b[:m])
		}
		for i := m; i < len(a); i++ {
			r += a[i] * b[i]
		}
		return r
	}
	return ScalarDotF32(a, b)
}

// DotF32I8 is DotF32 over raw int8 b values: sum of a[i]·float32(b[i]).
// int8→float32 conversion is exact, so the lane contract carries over
// unchanged.
func DotF32I8(a []float32, b []int8) float32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	b = b[:len(a)]
	if useASM {
		m := len(a) &^ (dotBlock - 1)
		var r float32
		if m > 0 {
			r = dotF32I8Asm(a[:m], b[:m])
		}
		for i := m; i < len(a); i++ {
			r += a[i] * float32(b[i])
		}
		return r
	}
	return ScalarDotF32I8(a, b)
}

// AxpyF32 accumulates s·x into dst over min(len(dst), len(x)) elements:
// dst[i] += s·x[i], each product and sum individually rounded.
func AxpyF32(dst []float32, s float32, x []float32) {
	if len(x) < len(dst) {
		dst = dst[:len(x)]
	}
	x = x[:len(dst)]
	if useASM {
		m := len(dst) &^ (axpyBlock - 1)
		if m > 0 {
			axpyF32Asm(dst[:m], s, x[:m])
		}
		for i := m; i < len(dst); i++ {
			dst[i] += s * x[i]
		}
		return
	}
	ScalarAxpyF32(dst, s, x)
}

// AxpyF32I8 accumulates s·float32(v[i]) into dst over min(len(dst), len(v)).
func AxpyF32I8(dst []float32, s float32, v []int8) {
	if len(v) < len(dst) {
		dst = dst[:len(v)]
	}
	v = v[:len(dst)]
	if useASM {
		m := len(dst) &^ (axpyBlock - 1)
		if m > 0 {
			axpyF32I8Asm(dst[:m], s, v[:m])
		}
		for i := m; i < len(dst); i++ {
			dst[i] += s * float32(v[i])
		}
		return
	}
	ScalarAxpyF32I8(dst, s, v)
}

// MulAdd4F32 is the four-row GEMM/attention microkernel:
//
//	dst[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j]
//
// for every j in range dst, with the adds associated left to right exactly
// as written. b0..b3 must each be at least len(dst) long.
func MulAdd4F32(dst []float32, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(dst)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	if useASM {
		m := n &^ (axpyBlock - 1)
		if m > 0 {
			mulAdd4F32Asm(dst[:m], b0, b1, b2, b3, a0, a1, a2, a3)
		}
		for j := m; j < n; j++ {
			dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
		return
	}
	ScalarMulAdd4F32(dst, b0, b1, b2, b3, a0, a1, a2, a3)
}

// MulAdd4F32I8 is MulAdd4F32 over raw int8 rows q0..q3.
func MulAdd4F32I8(dst []float32, q0, q1, q2, q3 []int8, a0, a1, a2, a3 float32) {
	n := len(dst)
	q0, q1, q2, q3 = q0[:n], q1[:n], q2[:n], q3[:n]
	if useASM {
		m := n &^ (axpyBlock - 1)
		if m > 0 {
			mulAdd4F32I8Asm(dst[:m], q0, q1, q2, q3, a0, a1, a2, a3)
		}
		for j := m; j < n; j++ {
			dst[j] += a0*float32(q0[j]) + a1*float32(q1[j]) + a2*float32(q2[j]) + a3*float32(q3[j])
		}
		return
	}
	ScalarMulAdd4F32I8(dst, q0, q1, q2, q3, a0, a1, a2, a3)
}

// ScalarDotF32 is DotF32's pure-Go twin: the same 16 lanes, the same
// reduction tree, the same sequential tail. Exported so benchmarks and
// out-of-package equivalence tests can pin the two paths against each
// other; production code calls DotF32 and lets dispatch choose.
func ScalarDotF32(a, b []float32) float32 {
	b = b[:len(a)]
	var l0, l1, l2, l3, l4, l5, l6, l7 float32
	var l8, l9, l10, l11, l12, l13, l14, l15 float32
	i := 0
	for ; i+dotBlock <= len(a); i += dotBlock {
		l0 += a[i] * b[i]
		l1 += a[i+1] * b[i+1]
		l2 += a[i+2] * b[i+2]
		l3 += a[i+3] * b[i+3]
		l4 += a[i+4] * b[i+4]
		l5 += a[i+5] * b[i+5]
		l6 += a[i+6] * b[i+6]
		l7 += a[i+7] * b[i+7]
		l8 += a[i+8] * b[i+8]
		l9 += a[i+9] * b[i+9]
		l10 += a[i+10] * b[i+10]
		l11 += a[i+11] * b[i+11]
		l12 += a[i+12] * b[i+12]
		l13 += a[i+13] * b[i+13]
		l14 += a[i+14] * b[i+14]
		l15 += a[i+15] * b[i+15]
	}
	r := dotReduceTree(l0, l1, l2, l3, l4, l5, l6, l7, l8, l9, l10, l11, l12, l13, l14, l15)
	for ; i < len(a); i++ {
		r += a[i] * b[i]
	}
	return r
}

// ScalarDotF32I8 is DotF32I8's pure-Go twin.
func ScalarDotF32I8(a []float32, b []int8) float32 {
	b = b[:len(a)]
	var l0, l1, l2, l3, l4, l5, l6, l7 float32
	var l8, l9, l10, l11, l12, l13, l14, l15 float32
	i := 0
	for ; i+dotBlock <= len(a); i += dotBlock {
		l0 += a[i] * float32(b[i])
		l1 += a[i+1] * float32(b[i+1])
		l2 += a[i+2] * float32(b[i+2])
		l3 += a[i+3] * float32(b[i+3])
		l4 += a[i+4] * float32(b[i+4])
		l5 += a[i+5] * float32(b[i+5])
		l6 += a[i+6] * float32(b[i+6])
		l7 += a[i+7] * float32(b[i+7])
		l8 += a[i+8] * float32(b[i+8])
		l9 += a[i+9] * float32(b[i+9])
		l10 += a[i+10] * float32(b[i+10])
		l11 += a[i+11] * float32(b[i+11])
		l12 += a[i+12] * float32(b[i+12])
		l13 += a[i+13] * float32(b[i+13])
		l14 += a[i+14] * float32(b[i+14])
		l15 += a[i+15] * float32(b[i+15])
	}
	r := dotReduceTree(l0, l1, l2, l3, l4, l5, l6, l7, l8, l9, l10, l11, l12, l13, l14, l15)
	for ; i < len(a); i++ {
		r += a[i] * float32(b[i])
	}
	return r
}

// dotReduceTree is the one fixed reduction order both paths share. It
// mirrors the assembly's horizontal reduce instruction by instruction:
// VADDPS of the two YMM accumulators, VEXTRACTF128+VADDPS, shuffled pair
// add, final scalar add.
func dotReduceTree(l0, l1, l2, l3, l4, l5, l6, l7, l8, l9, l10, l11, l12, l13, l14, l15 float32) float32 {
	u0, u1, u2, u3 := l0+l8, l1+l9, l2+l10, l3+l11
	u4, u5, u6, u7 := l4+l12, l5+l13, l6+l14, l7+l15
	v0, v1, v2, v3 := u0+u4, u1+u5, u2+u6, u3+u7
	w0, w1 := v0+v2, v1+v3
	return w0 + w1
}

// ScalarAxpyF32 is AxpyF32's pure-Go twin.
func ScalarAxpyF32(dst []float32, s float32, x []float32) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] += s * x[i]
	}
}

// ScalarAxpyF32I8 is AxpyF32I8's pure-Go twin.
func ScalarAxpyF32I8(dst []float32, s float32, v []int8) {
	v = v[:len(dst)]
	for i := range dst {
		dst[i] += s * float32(v[i])
	}
}

// ScalarMulAdd4F32 is MulAdd4F32's pure-Go twin.
func ScalarMulAdd4F32(dst []float32, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(dst)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for j := range dst {
		dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// ScalarMulAdd4F32I8 is MulAdd4F32I8's pure-Go twin.
func ScalarMulAdd4F32I8(dst []float32, q0, q1, q2, q3 []int8, a0, a1, a2, a3 float32) {
	n := len(dst)
	q0, q1, q2, q3 = q0[:n], q1[:n], q2[:n], q3[:n]
	for j := range dst {
		dst[j] += a0*float32(q0[j]) + a1*float32(q1[j]) + a2*float32(q2[j]) + a3*float32(q3[j])
	}
}
