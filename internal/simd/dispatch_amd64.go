package simd

import "os"

// hwAVX2 records what the hardware supports, independent of whether
// dispatch selected it — the equivalence tests exercise the assembly
// directly even under ESTI_NOSIMD=1.
var hwAVX2 bool

func init() {
	hwAVX2 = detectAVX2()
	if hwAVX2 && os.Getenv("ESTI_NOSIMD") != "1" {
		useASM = true
		kindName = "avx2"
	}
}

// detectAVX2 reports AVX2 with OS-enabled YMM state: CPUID.1:ECX must show
// OSXSAVE+AVX, XCR0 must have the XMM and YMM state bits, and CPUID.7.0:EBX
// bit 5 is AVX2 itself.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0
}

// The Asm wrappers adapt the slice-level contract the dispatch layer uses
// to the pointer+count assembly ABI. Reducing kernels require len a
// multiple of 16, elementwise kernels a multiple of 8; the exported
// functions guarantee both and never pass empty slices.

func dotF32Asm(a, b []float32) float32 { return dotF32AVX2(&a[0], &b[0], len(a)) }

func dotF32I8Asm(a []float32, b []int8) float32 { return dotF32I8AVX2(&a[0], &b[0], len(a)) }

func axpyF32Asm(dst []float32, s float32, x []float32) {
	axpyF32AVX2(&dst[0], s, &x[0], len(dst))
}

func axpyF32I8Asm(dst []float32, s float32, v []int8) {
	axpyF32I8AVX2(&dst[0], s, &v[0], len(dst))
}

func mulAdd4F32Asm(dst []float32, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	mulAdd4F32AVX2(&dst[0], &b0[0], &b1[0], &b2[0], &b3[0], a0, a1, a2, a3, len(dst))
}

func mulAdd4F32I8Asm(dst []float32, q0, q1, q2, q3 []int8, a0, a1, a2, a3 float32) {
	mulAdd4F32I8AVX2(&dst[0], &q0[0], &q1[0], &q2[0], &q3[0], a0, a1, a2, a3, len(dst))
}
