//go:build !amd64

package simd

// Non-amd64 builds have no assembly kernels: useASM stays false, dispatch
// always takes the scalar twin, and these bodies are unreachable. They
// exist so the portable dispatch code type-checks on every architecture.

func dotF32Asm(a, b []float32) float32 { panic("simd: no asm kernels on this arch") }

func dotF32I8Asm(a []float32, b []int8) float32 { panic("simd: no asm kernels on this arch") }

func axpyF32Asm(dst []float32, s float32, x []float32) {
	panic("simd: no asm kernels on this arch")
}

func axpyF32I8Asm(dst []float32, s float32, v []int8) {
	panic("simd: no asm kernels on this arch")
}

func mulAdd4F32Asm(dst []float32, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	panic("simd: no asm kernels on this arch")
}

func mulAdd4F32I8Asm(dst []float32, q0, q1, q2, q3 []int8, a0, a1, a2, a3 float32) {
	panic("simd: no asm kernels on this arch")
}
