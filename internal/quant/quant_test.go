package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"esti/internal/tensor"
)

func TestQuantizeRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.New(32, 16).FillRand(rng, 0.5)
	if e := RelError(w); e > 0.5/127+1e-6 {
		t.Errorf("relative error %g exceeds symmetric int8 bound %g", e, 0.5/127)
	}
}

func TestQuantizedMatMulCloseToFloat(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := tensor.New(4, 24).FillRand(rng, 1)
		w := tensor.New(24, 8).FillRand(rng, 0.1)
		exact := tensor.MatMul(a, w)
		approx := MatMul(a, Quantize(w))
		// Error per output ≤ sum_k |a_k| · scale/2; with |a|≤1 and
		// scale ≈ 0.1/127·2, a loose bound of 2% of max output works.
		return tensor.MaxAbsDiff(exact, approx) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Quantized matmul must agree exactly with dequantize-then-matmul (it is the
// same arithmetic, reordered).
func TestMatMulMatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.New(3, 10).FillRand(rng, 1)
	w := tensor.New(10, 6).FillRand(rng, 1)
	q := Quantize(w)
	got := MatMul(a, q)
	want := tensor.MatMul(a, q.Dequantize())
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Errorf("quantized matmul differs from dequantized by %g", d)
	}
}

func TestBytesHalved(t *testing.T) {
	w := tensor.New(128, 64)
	q := Quantize(w)
	floatBytes := 4 * 128 * 64
	if q.Bytes() >= floatBytes/2 {
		t.Errorf("int8 bytes %d not under half of float32 %d", q.Bytes(), floatBytes)
	}
}

func TestZeroColumn(t *testing.T) {
	w := tensor.New(4, 2)
	w.Set(0, 1, 1) // column 0 stays all-zero
	q := Quantize(w)
	d := q.Dequantize()
	for r := 0; r < 4; r++ {
		if d.At(r, 0) != 0 {
			t.Error("zero column did not survive quantization")
		}
	}
	if d.At(0, 1) == 0 {
		t.Error("nonzero value lost")
	}
}

func TestValuesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := tensor.New(16, 16).FillRand(rng, 100)
	q := Quantize(w)
	for _, v := range q.Data {
		if v < -127 || v > 127 {
			t.Fatalf("int8 value %d out of symmetric range", v)
		}
	}
}

func TestExtremesPreserved(t *testing.T) {
	w := tensor.FromSlice([]float32{-1, 0.5, 1, -0.25}, 2, 2)
	q := Quantize(w)
	d := q.Dequantize()
	if math.Abs(float64(d.At(0, 0))+1) > 1e-6 {
		t.Errorf("column max -1 reconstructed as %g", d.At(0, 0))
	}
	if math.Abs(float64(d.At(1, 0))-1) > 1e-6 {
		t.Errorf("column max 1 reconstructed as %g", d.At(1, 0))
	}
}

// Quantize-then-slice must equal slice-then-dequantize on the same index
// sets (shared scales are the point).
func TestSelectRowsCols(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := tensor.New(8, 6).FillRand(rng, 1)
	q := Quantize(w)
	rows := []int{1, 3, 4}
	cols := []int{0, 2, 5}

	qr := q.SelectRows(rows)
	if qr.Rows != 3 || qr.Cols != 6 {
		t.Fatalf("SelectRows shape %dx%d", qr.Rows, qr.Cols)
	}
	full := q.Dequantize()
	for i, r := range rows {
		for c := 0; c < 6; c++ {
			if qr.Dequantize().At(i, c) != full.At(r, c) {
				t.Fatalf("row slice mismatch at (%d,%d)", i, c)
			}
		}
	}

	qc := q.SelectCols(cols)
	if qc.Rows != 8 || qc.Cols != 3 {
		t.Fatalf("SelectCols shape %dx%d", qc.Rows, qc.Cols)
	}
	for r := 0; r < 8; r++ {
		for j, c := range cols {
			if qc.Dequantize().At(r, j) != full.At(r, c) {
				t.Fatalf("col slice mismatch at (%d,%d)", r, j)
			}
		}
	}

	// Composition: row then column slicing preserves scale identity.
	qrc := qr.SelectCols(cols)
	for j, c := range cols {
		if qrc.Scales[j] != q.Scales[c] {
			t.Fatalf("scale %d not shared through slicing", j)
		}
	}
}

// Row-blocked quantized matmuls must sum exactly to the full quantized
// matmul (shared scales make partial sums well-defined) — the property the
// sharded engine's int8 mode relies on.
func TestQuantizedPartialSums(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := tensor.New(3, 8).FillRand(rng, 1)
	w := tensor.New(8, 5).FillRand(rng, 1)
	q := Quantize(w)
	full := MatMul(a, q)
	top := MatMul(tensor.SliceCols(a, 0, 4), q.SelectRows([]int{0, 1, 2, 3}))
	bot := MatMul(tensor.SliceCols(a, 4, 8), q.SelectRows([]int{4, 5, 6, 7}))
	if d := tensor.MaxAbsDiff(full, tensor.Add(top, bot)); d > 1e-5 {
		t.Errorf("quantized partial sums differ from full by %g", d)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected shape panic")
		}
	}()
	MatMul(tensor.New(2, 3), Quantize(tensor.New(4, 2)))
}
