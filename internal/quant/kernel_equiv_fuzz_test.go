package quant

import (
	"encoding/binary"
	"math"
	"testing"

	"esti/internal/simd"
)

// FuzzKernelEquivalence is the differential fuzz over the simd layer: the
// dispatched kernels (AVX2 on capable hardware) must agree bit for bit
// with the exported scalar twins on every input the engine can produce —
// arbitrary float32 bit patterns on the activation side (NaN and Inf
// included) and int8 rows produced by the real quantize path, which is
// exactly where adversarial NaN/Inf inputs get clamped before they reach
// the kernels. Shapes are fuzzed too, so every vector-block boundary and
// tail length gets hit. On hardware without AVX2 the comparison is
// scalar-vs-scalar and trivially passes; the CI fuzz-smoke job runs on
// x86-64 where it bites.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), float32(0.5))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0x80, 0x7f}, uint8(16), float32(-2)) // NaN, +Inf bits
	f.Add(make([]byte, 4*40), uint8(33), float32(1e30))
	f.Fuzz(func(t *testing.T, raw []byte, nbyte uint8, s float32) {
		n := int(nbyte)%130 + 1
		// Activation-side floats from raw bit patterns: every special value
		// (NaN payloads, ±Inf, subnormals) flows into the kernels as-is.
		a := make([]float32, n)
		for i := range a {
			if 4*i+4 <= len(raw) {
				a[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
			} else {
				a[i] = float32(i%7) - 3
			}
		}
		// Int8 side through the real quantize path: QuantizeRowInto clamps
		// NaN→0 and ±Inf to the finite bound, so whatever raw throws at it,
		// the kernels see a legal int8 row with a finite positive scale.
		q := make([]int8, n)
		scale := QuantizeRowInto(q, a)
		if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) || scale <= 0 {
			t.Fatalf("quantize scale %g not finite-positive", scale)
		}

		eq := func(label string, got, want float32) {
			t.Helper()
			if math.Float32bits(got) == math.Float32bits(want) {
				return
			}
			if math.IsNaN(float64(got)) && math.IsNaN(float64(want)) {
				return // payload-exact NaN propagation is not part of the contract
			}
			t.Fatalf("%s: dispatch %#08x vs scalar twin %#08x (n=%d)",
				label, math.Float32bits(got), math.Float32bits(want), n)
		}

		eq("DotF32I8", simd.DotF32I8(a, q), simd.ScalarDotF32I8(a, q))
		eq("DotF32", simd.DotF32(a, a), simd.ScalarDotF32(a, a))

		dgot := make([]float32, n)
		dwant := make([]float32, n)
		copy(dgot, a)
		copy(dwant, a)
		simd.AxpyF32I8(dgot, s, q)
		simd.ScalarAxpyF32I8(dwant, s, q)
		for i := range dgot {
			eq("AxpyF32I8", dgot[i], dwant[i])
		}

		copy(dgot, a)
		copy(dwant, a)
		simd.AxpyF32(dgot, s, a)
		simd.ScalarAxpyF32(dwant, s, a)
		for i := range dgot {
			eq("AxpyF32", dgot[i], dwant[i])
		}

		// Four-row microkernels: reuse shifted views of q and a as the rows,
		// trimmed so every row covers the full kernel length m.
		rot := func(k int) int { return (k * 7) % n }
		o1, o2, o3 := rot(1), rot(2), rot(3)
		maxOff := max(o1, max(o2, o3))
		q1, q2, q3 := q[o1:], q[o2:], q[o3:]
		m := n - maxOff
		if m > 0 {
			copy(dgot, a)
			copy(dwant, a)
			simd.MulAdd4F32I8(dgot[:m], q, q1, q2, q3, s, -s, s*0.5, 2)
			simd.ScalarMulAdd4F32I8(dwant[:m], q, q1, q2, q3, s, -s, s*0.5, 2)
			for i := 0; i < m; i++ {
				eq("MulAdd4F32I8", dgot[i], dwant[i])
			}

			a1, a2, a3 := a[o1:], a[o2:], a[o3:]
			copy(dgot, a)
			copy(dwant, a)
			simd.MulAdd4F32(dgot[:m], a, a1, a2, a3, s, -s, s*0.5, 2)
			simd.ScalarMulAdd4F32(dwant[:m], a, a1, a2, a3, s, -s, s*0.5, 2)
			for i := 0; i < m; i++ {
				eq("MulAdd4F32", dgot[i], dwant[i])
			}
		}

		// Round trip: dequantize must be bit-identical however it is
		// expressed — scale·int8 is one rounded multiply on both paths.
		deq := make([]float32, n)
		DequantizeRowInto(deq, q, scale)
		for i, v := range deq {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("dequantized value %g at %d not finite", v, i)
			}
		}
	})
}
