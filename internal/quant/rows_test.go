package quant

import (
	"math"
	"math/rand"
	"testing"
)

// Round-trip bound of the per-row quantizer: every reconstructed element
// within half a step of the (clamped) original, scale finite-positive.
func TestQuantizeRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(32)
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64()) * float32(math.Pow(10, float64(rng.Intn(9)-4)))
		}
		dst := make([]int8, n)
		scale := QuantizeRowInto(dst, src)
		if !(scale > 0) || math.IsInf(float64(scale), 0) {
			t.Fatalf("scale %g not finite-positive", scale)
		}
		var maxAbs float64
		for _, v := range src {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		half := maxAbs / 127 / 2
		back := make([]float32, n)
		DequantizeRowInto(back, dst, scale)
		for i := range src {
			if err := math.Abs(float64(back[i] - src[i])); err > half+1e-12 {
				t.Fatalf("elem %d: error %g exceeds half step %g", i, err, half)
			}
		}
	}
}

// The documented adversarial contract: NaN quantizes as 0, ±Inf and
// over-range magnitudes clamp, and the round trip stays finite.
func TestQuantizeRowClampsNonFinite(t *testing.T) {
	src := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		math.MaxFloat32, -math.MaxFloat32, 1, 0,
	}
	dst := make([]int8, len(src))
	scale := QuantizeRowInto(dst, src)
	if !(scale > 0) || math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) {
		t.Fatalf("scale %g not finite-positive", scale)
	}
	if dst[0] != 0 {
		t.Errorf("NaN quantized to %d, want 0", dst[0])
	}
	if dst[1] != 127 || dst[2] != -127 {
		t.Errorf("±Inf quantized to %d/%d, want ±127", dst[1], dst[2])
	}
	back := make([]float32, len(src))
	DequantizeRowInto(back, dst, scale)
	for i, v := range back {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Errorf("round trip of %g is %g, want finite", src[i], v)
		}
	}
}

// The shared dot/axpy kernels against their scalar definitions, across
// the unroll boundary lengths.
func TestDotAxpyF32I8(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
		a := make([]float32, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = int8(rng.Intn(255) - 127)
		}
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(DotF32I8(a, b))
		if math.Abs(got-want) > 1e-3*math.Max(1, math.Abs(want)) {
			t.Errorf("n=%d: DotF32I8 = %g, want %g", n, got, want)
		}

		dst := make([]float32, n)
		ref := make([]float64, n)
		const s = 0.37
		for i := range dst {
			dst[i] = a[i]
			ref[i] = float64(a[i]) + s*float64(b[i])
		}
		AxpyF32I8(dst, s, b)
		for i := range dst {
			if math.Abs(float64(dst[i])-ref[i]) > 1e-4*math.Max(1, math.Abs(ref[i])) {
				t.Errorf("n=%d elem %d: axpy %g, want %g", n, i, dst[i], ref[i])
			}
		}
	}
}
