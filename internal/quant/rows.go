package quant

import (
	"math"

	"esti/internal/simd"
)

// Row-wise int8 quantization for activation-like tensors — the KV cache's
// storage format (the paper's §3.3 int8 path applied to the cache rather
// than the weights). Where Int8Mat carries one scale per *column* (right
// for weights, whose statistics are per output channel), a K/V row is one
// token's projection: its dynamic range is per token, so the cache stores
// one scale per row and the attention walk applies it once per scored
// position. These kernels are shared by kvcache (quantize at append,
// dequantize for cold-path reads) and reference's fused int8 attention
// walk (the dot/axpy tails of its 4-row-blocked loops).

// Int8Rows is a zero-copy view of consecutive quantized rows: Data holds
// Rows×Cols int8 values row-major and Scales one float32 per row, with
// value ≈ int8 · scale. It is passed by value so hot paths can take views
// without a heap allocation, mirroring tensor.RowsView.
type Int8Rows struct {
	Rows, Cols int
	Data       []int8
	Scales     []float32
}

// Row returns row r's quantized values.
func (v Int8Rows) Row(r int) []int8 { return v.Data[r*v.Cols : (r+1)*v.Cols] }

// rowClampBound bounds the magnitude a row element may carry into
// quantization. Half the largest float32 rather than the largest: with a
// full-range bound the round trip itself overflows — scale = MaxFloat32/127
// rounds such that 127·scale is +Inf — so the bound is chosen to keep
// every dequantized value finite with a 2× rounding margin.
const rowClampBound = math.MaxFloat32 / 2

// QuantizeRowInto quantizes src into dst (len(dst) == len(src)) with a
// single symmetric per-row scale, returned. Adversarial inputs are
// clamped rather than propagated — NaN to 0, and anything beyond
// ±MaxFloat32/2 (±Inf included) to that bound — so the stored scale is
// always finite-positive and every dequantized read-back is finite; a
// poisoned projection row can never turn the cache into a NaN factory.
// This is the documented behavior the fuzz suite pins down. An all-zero
// row quantizes to zeros under scale 1, like Quantize's all-zero column.
func QuantizeRowInto(dst []int8, src []float32) (scale float32) {
	if len(src) == 0 {
		return 1
	}
	_ = dst[len(src)-1]
	var maxAbs float32
	for _, v := range src {
		a := clampFinite(v)
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale = maxAbs / 127
	if scale == 0 {
		for i := range src {
			dst[i] = 0
		}
		return 1
	}
	inv := 1 / scale
	for i, v := range src {
		dst[i] = int8(clamp(math.RoundToEven(float64(clampFinite(v)*inv)), -127, 127))
	}
	return scale
}

// clampFinite maps NaN to 0 and magnitudes beyond the row clamp bound
// (±Inf included) to ±rowClampBound.
func clampFinite(v float32) float32 {
	if v != v { // NaN
		return 0
	}
	if v > rowClampBound {
		return rowClampBound
	}
	if v < -rowClampBound {
		return -rowClampBound
	}
	return v
}

// DequantizeRowInto reconstructs a quantized row into dst.
func DequantizeRowInto(dst []float32, src []int8, scale float32) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] = float32(v) * scale
	}
}

// DotF32I8 is the shared int8-dot kernel of the fused attention walk: the
// float32 accumulation of a · b over b's raw int8 values, running
// internal/simd's vectorized kernel (AVX2 VPMOVSXBD inner loop, or its
// bit-identical scalar twin) with the fixed 16-lane accumulation contract.
// The caller applies the row scale once to the result — one multiply per
// row instead of one per element, which is what keeps the int8 score loop
// cheaper than the fp32 walk.
func DotF32I8(a []float32, b []int8) float32 {
	return simd.DotF32I8(a, b)
}

// AxpyF32I8 accumulates s·v into dst over v's raw int8 values; the caller
// folds the row scale into s.
func AxpyF32I8(dst []float32, s float32, v []int8) {
	simd.AxpyF32I8(dst, s, v)
}
