package quant

import (
	"math"
	"testing"

	"esti/internal/tensor"
)

// FuzzQuantizeRoundTrip checks the symmetric-quantization error bound on
// arbitrary matrices: every reconstructed value is within half a step of
// the original, and quantize∘dequantize∘quantize is idempotent.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add([]byte{0, 0, 0, 0}, uint8(2))
	f.Add([]byte{255, 0, 128, 7, 9, 200, 40, 41, 42}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, colsRaw uint8) {
		cols := int(colsRaw)%4 + 1
		rows := len(raw) / cols
		if rows == 0 {
			return
		}
		w := tensor.New(rows, cols)
		for i := 0; i < rows*cols; i++ {
			w.Data[i] = (float32(raw[i]) - 127.5) / 32 // roughly [-4, 4]
		}
		q := Quantize(w)
		d := q.Dequantize()
		for c := 0; c < cols; c++ {
			var maxAbs float64
			for r := 0; r < rows; r++ {
				if a := math.Abs(float64(w.At(r, c))); a > maxAbs {
					maxAbs = a
				}
			}
			halfStep := maxAbs / 127 / 2
			for r := 0; r < rows; r++ {
				err := math.Abs(float64(w.At(r, c) - d.At(r, c)))
				if err > halfStep+1e-7 {
					t.Fatalf("(%d,%d): error %g exceeds half-step %g", r, c, err, halfStep)
				}
			}
		}
		// Idempotence: re-quantizing the dequantized matrix is stable.
		q2 := Quantize(d)
		d2 := q2.Dequantize()
		if diff := tensor.MaxAbsDiff(d, d2); diff > 1e-6 {
			t.Fatalf("quantization not idempotent: %g", diff)
		}
	})
}
