package quant

import (
	"math"
	"math/rand"
	"testing"

	"esti/internal/tensor"
)

// Property test: the blocked/parallel quantized matmul against the
// retained naive oracle across block-boundary shapes, including the
// forced-parallel path on a single-core machine.
func TestQuantMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := []struct{ m, k, n int }{
		{0, 3, 2}, {1, 1, 1}, {2, 5, 3}, {7, 9, 11}, {33, 17, 5},
		{3, 128, 2}, {16, 31, 8}, {8, 64, 8},
	}
	for _, sh := range shapes {
		a := tensor.New(sh.m, sh.k)
		for i := range a.Data {
			if rng.Intn(5) != 0 { // exact zeros exercise the skip path
				a.Data[i] = rng.Float32()*2 - 1
			}
		}
		q := Quantize(tensor.New(sh.k, sh.n).FillRand(rng, 1))
		got := MatMul(a, q)
		want := matMulNaive(a, q)
		for i := range want.Data {
			d := math.Abs(float64(got.Data[i] - want.Data[i]))
			if d > 1e-5*math.Max(1, math.Abs(float64(want.Data[i]))) {
				t.Fatalf("%dx%d·%dx%d: blocked differs at %d: %g vs %g",
					sh.m, sh.k, sh.k, sh.n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// The parallel path must agree with the serial kernel exactly (tiles only
// split output rows).
func TestQuantMatMulParallelExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := tensor.New(96, 80).FillRand(rng, 1)
	q := Quantize(tensor.New(80, 64).FillRand(rng, 1))

	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	serial := MatMul(a, q)

	tensor.SetWorkers(4)
	for i := 0; i < 10; i++ {
		if d := tensor.MaxAbsDiff(serial, MatMul(a, q)); d != 0 {
			t.Fatalf("parallel differs from serial by %g", d)
		}
	}
}

// MatMulInto reuses its destination buffer.
func TestQuantMatMulIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := tensor.New(4, 6).FillRand(rng, 1)
	q := Quantize(tensor.New(6, 3).FillRand(rng, 1))
	dst := tensor.New(4, 3)
	ptr := &dst.Data[0]
	MatMulInto(dst, a, q)
	if &dst.Data[0] != ptr {
		t.Error("MatMulInto reallocated a sufficient destination")
	}
	if d := tensor.MaxAbsDiff(dst, MatMul(a, q)); d != 0 {
		t.Errorf("MatMulInto differs from MatMul by %g", d)
	}
}
