// Package quant implements symmetric per-output-channel int8 weight
// quantization, the reproduction's stand-in for the AQT library the paper
// uses (Section 3.6). Only weights are quantized; matmul arithmetic stays in
// float (matching the paper: int8 saves weight memory and weight
// communication volume, not compute).
package quant

import (
	"fmt"
	"math"

	"esti/internal/simd"
	"esti/internal/tensor"
)

// Int8Mat is a weight matrix stored as int8 values with one float scale per
// output column (symmetric quantization: value ≈ int8 · scale).
type Int8Mat struct {
	Rows, Cols int
	Data       []int8
	Scales     []float32 // per column
}

// Quantize converts a float matrix to int8 with per-column scales.
func Quantize(w *tensor.Mat) *Int8Mat {
	q := &Int8Mat{
		Rows: w.Rows, Cols: w.Cols,
		Data:   make([]int8, w.Rows*w.Cols),
		Scales: make([]float32, w.Cols),
	}
	for c := 0; c < w.Cols; c++ {
		var maxAbs float32
		for r := 0; r < w.Rows; r++ {
			if a := abs32(w.At(r, c)); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1 // all-zero column quantizes to zeros under any scale
		}
		q.Scales[c] = scale
		for r := 0; r < w.Rows; r++ {
			v := w.At(r, c) / scale
			q.Data[r*w.Cols+c] = int8(clamp(math.RoundToEven(float64(v)), -127, 127))
		}
	}
	return q
}

// Dequantize reconstructs the float matrix.
func (q *Int8Mat) Dequantize() *tensor.Mat {
	out := tensor.New(q.Rows, q.Cols)
	for r := 0; r < q.Rows; r++ {
		for c := 0; c < q.Cols; c++ {
			out.Set(r, c, float32(q.Data[r*q.Cols+c])*q.Scales[c])
		}
	}
	return out
}

// Bytes is the storage footprint: one byte per element plus four per scale.
func (q *Int8Mat) Bytes() int { return len(q.Data) + 4*len(q.Scales) }

// SelectRows copies the given rows, preserving the column scales. Sharding
// a quantized checkpoint this way (quantize once, then slice) keeps every
// chip's arithmetic bit-consistent with the unsharded quantized model —
// per-shard re-quantization would compute different scales per shard.
func (q *Int8Mat) SelectRows(rows []int) *Int8Mat {
	out := &Int8Mat{
		Rows: len(rows), Cols: q.Cols,
		Data:   make([]int8, len(rows)*q.Cols),
		Scales: make([]float32, q.Cols),
	}
	copy(out.Scales, q.Scales)
	for i, r := range rows {
		copy(out.Data[i*q.Cols:(i+1)*q.Cols], q.Data[r*q.Cols:(r+1)*q.Cols])
	}
	return out
}

// SelectCols copies the given columns with their scales.
func (q *Int8Mat) SelectCols(cols []int) *Int8Mat {
	out := &Int8Mat{
		Rows: q.Rows, Cols: len(cols),
		Data:   make([]int8, q.Rows*len(cols)),
		Scales: make([]float32, len(cols)),
	}
	for j, c := range cols {
		out.Scales[j] = q.Scales[c]
	}
	for i := 0; i < q.Rows; i++ {
		src := q.Data[i*q.Cols : (i+1)*q.Cols]
		dst := out.Data[i*len(cols) : (i+1)*len(cols)]
		for j, c := range cols {
			dst[j] = src[c]
		}
	}
	return out
}

// MatMul multiplies float activations by the quantized weights, accumulating
// in float32 over the int8 values and applying the column scale once per
// output (the standard weight-only quantized matmul).
func MatMul(a *tensor.Mat, q *Int8Mat) *tensor.Mat {
	return MatMulInto(tensor.New(a.Rows, q.Cols), a, q)
}

// MatMulInto is the destination-passing form of MatMul: a·q into dst
// (reshaped to [a.Rows, q.Cols]), returning dst. Like the float kernels in
// package tensor it unrolls the contraction four-wide, reslices rows for
// bounds-check elimination, skips all-zero activation groups, and splits
// large row ranges across the shared worker pool. dst must not alias a.
func MatMulInto(dst, a *tensor.Mat, q *Int8Mat) *tensor.Mat {
	if a.Cols != q.Rows {
		panic(fmt.Sprintf("quant: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, q.Rows, q.Cols))
	}
	dst.Reshape(a.Rows, q.Cols)
	if !tensor.ShouldParallel(a.Rows, a.Rows*a.Cols*q.Cols) {
		matMulRows(dst, a, q, 0, a.Rows)
		return dst
	}
	dv, av := *dst, *a
	tensor.ParallelRows(a.Rows, a.Rows*a.Cols*q.Cols, func(lo, hi int) {
		matMulRows(&dv, &av, q, lo, hi)
	})
	return dst
}

// MatMulAccRawInto accumulates the unscaled product into dst: dst +=
// a·int8(q), with no column scales applied. It exists for the streamed
// collectives' contraction-chunked matmuls: row blocks of q (views sharing
// one Scales array) arrive one chunk at a time, each folds its raw partial
// product into dst, and the caller applies ScaleColumns once after the
// last chunk — the same single scale application as the unsharded kernel.
// dst must already have shape [a.Rows, q.Cols]; it must not alias a.
func MatMulAccRawInto(dst, a *tensor.Mat, q *Int8Mat) *tensor.Mat {
	if a.Cols != q.Rows {
		panic(fmt.Sprintf("quant: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, q.Rows, q.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != q.Cols {
		panic(fmt.Sprintf("quant: matmul-acc dst %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, q.Cols))
	}
	if !tensor.ShouldParallel(a.Rows, a.Rows*a.Cols*q.Cols) {
		matMulRowsAccRaw(dst, a, q, 0, a.Rows)
		return dst
	}
	dv, av := *dst, *a
	tensor.ParallelRows(a.Rows, a.Rows*a.Cols*q.Cols, func(lo, hi int) {
		matMulRowsAccRaw(&dv, &av, q, lo, hi)
	})
	return dst
}

// ScaleColumns applies per-column scales in place: m[i][j] *= scales[j].
// It finishes a MatMulAccRawInto accumulation.
func ScaleColumns(m *tensor.Mat, scales []float32) {
	if len(scales) < m.Cols {
		panic(fmt.Sprintf("quant: %d scales for %d columns", len(scales), m.Cols))
	}
	s := scales[:m.Cols]
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] *= s[j]
		}
	}
}

// matMulRows is the serial int8-weight kernel over output rows [lo, hi):
// i-k-j order with the contraction unrolled four-wide, each row pass
// handed to simd.MulAdd4F32I8 (AVX2 VPMOVSXBD/VCVTDQ2PS inner loops, or
// the bit-identical scalar twin), zero activation groups skipped, and the
// per-column scales applied once after the raw accumulation.
func matMulRows(dst, a *tensor.Mat, q *Int8Mat, lo, hi int) {
	n := q.Cols
	od := dst.Data
	scales := q.Scales[:n]
	matMulRowsRaw(dst, a, q, lo, hi, true)
	for i := lo; i < hi; i++ {
		orow := od[i*n : i*n+n]
		for j := range orow {
			orow[j] *= scales[j]
		}
	}
}

// matMulRowsAccRaw is matMulRows without the clear and without the final
// scale multiply: raw int8 products accumulate into the existing dst rows.
func matMulRowsAccRaw(dst, a *tensor.Mat, q *Int8Mat, lo, hi int) {
	matMulRowsRaw(dst, a, q, lo, hi, false)
}

// matMulRowsRaw accumulates a·int8(q) into dst rows [lo, hi), clearing
// each row first when clearDst is set. Both entry points above share it so
// the accumulation order is identical bit for bit — the property
// MatMulAccRawInto+ScaleColumns == MatMulInto rests on exactly this.
func matMulRowsRaw(dst, a *tensor.Mat, q *Int8Mat, lo, hi int, clearDst bool) {
	k, n := a.Cols, q.Cols
	ad, qd, od := a.Data, q.Data, dst.Data
	for i := lo; i < hi; i++ {
		arow := ad[i*k : i*k+k]
		orow := od[i*n : i*n+n]
		if clearDst {
			clear(orow)
		}
		if n == 0 {
			continue
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			simd.MulAdd4F32I8(orow,
				qd[kk*n:kk*n+n], qd[(kk+1)*n:(kk+1)*n+n],
				qd[(kk+2)*n:(kk+2)*n+n], qd[(kk+3)*n:(kk+3)*n+n],
				a0, a1, a2, a3)
		}
		for ; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			simd.AxpyF32I8(orow, av, qd[kk*n:kk*n+n])
		}
	}
}

// matMulNaive is the original triple-loop quantized matmul, retained as
// the oracle the blocked kernel is property-tested against.
func matMulNaive(a *tensor.Mat, q *Int8Mat) *tensor.Mat {
	if a.Cols != q.Rows {
		panic(fmt.Sprintf("quant: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, q.Rows, q.Cols))
	}
	out := tensor.New(a.Rows, q.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < q.Rows; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			qrow := q.Data[k*q.Cols : (k+1)*q.Cols]
			for j := range orow {
				orow[j] += av * float32(qrow[j])
			}
		}
		for j := range orow {
			orow[j] *= q.Scales[j]
		}
	}
	return out
}

// RelError returns the max relative reconstruction error of quantizing w,
// normalized by the per-column max magnitude (the symmetric quantization
// error bound is 0.5/127 ≈ 0.4%).
func RelError(w *tensor.Mat) float64 {
	q := Quantize(w)
	d := q.Dequantize()
	var worst float64
	for c := 0; c < w.Cols; c++ {
		var maxAbs float64
		for r := 0; r < w.Rows; r++ {
			if a := math.Abs(float64(w.At(r, c))); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		for r := 0; r < w.Rows; r++ {
			e := math.Abs(float64(w.At(r, c)-d.At(r, c))) / maxAbs
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
