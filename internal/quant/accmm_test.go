package quant

import (
	"math"
	"math/rand"
	"testing"

	"esti/internal/tensor"
)

func randMat(rng *rand.Rand, rows, cols int) *tensor.Mat {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		if rng.Intn(5) == 0 {
			continue // exact zeros exercise the zero-skip paths
		}
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

// Raw accumulation from a zero destination followed by one ScaleColumns is
// the unsharded quantized matmul, bit for bit: matMulRowsAccRaw mirrors
// matMulRows' loop structure exactly, minus the clear and the fused scale.
func TestMatMulAccRawFromZeroMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {7, 9, 11}, {2, 128, 2}, {16, 31, 8},
	} {
		a := randMat(rng, sh.m, sh.k)
		q := Quantize(randMat(rng, sh.k, sh.n))
		want := MatMul(a, q)
		dst := tensor.New(sh.m, sh.n)
		MatMulAccRawInto(dst, a, q)
		ScaleColumns(dst, q.Scales)
		for i := range want.Data {
			if math.Float32bits(dst.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("%dx%d·%dx%d: acc-raw+scale differs from MatMul at %d: %g != %g",
					sh.m, sh.k, sh.k, sh.n, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// Row-block views of a quantized matrix (the streamed FFN's per-chunk
// weight slices, sharing one Scales array) accumulated in sequence and
// scaled once must match the one-shot product — the engine's gather-side
// contract.
func TestMatMulAccRawRowBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const m, k, n, blocks = 6, 32, 10, 4
	a := randMat(rng, m, k)
	q := Quantize(randMat(rng, k, n))
	want := MatMul(a, q)

	dst := tensor.New(m, n)
	kb := k / blocks
	for blk := 0; blk < blocks; blk++ {
		qBlk := &Int8Mat{
			Rows: kb, Cols: n,
			Data:   q.Data[blk*kb*n : (blk+1)*kb*n],
			Scales: q.Scales, // shared, unscoped — AccRaw never reads them
		}
		aBlk := tensor.New(m, kb)
		for i := 0; i < m; i++ {
			copy(aBlk.Row(i), a.Row(i)[blk*kb:(blk+1)*kb])
		}
		MatMulAccRawInto(dst, aBlk, qBlk)
	}
	ScaleColumns(dst, q.Scales)
	for i := range want.Data {
		got, w := float64(dst.Data[i]), float64(want.Data[i])
		if d := math.Abs(got - w); d > 1e-5*math.Max(1, math.Abs(w)) {
			t.Fatalf("blockwise raw accumulation differs at %d: %g != %g", i, got, w)
		}
	}
}

// The parallel accumulate path must agree with the serial one exactly.
func TestParallelMatMulAccRawExact(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randMat(rng, 96, 80)
	q := Quantize(randMat(rng, 80, 64))
	base := randMat(rng, 96, 64)

	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	serial := base.Clone()
	MatMulAccRawInto(serial, a, q)

	tensor.SetWorkers(4)
	parallel := base.Clone()
	MatMulAccRawInto(parallel, a, q)
	for i := range serial.Data {
		if math.Float32bits(serial.Data[i]) != math.Float32bits(parallel.Data[i]) {
			t.Fatalf("parallel acc-raw differs from serial at %d", i)
		}
	}
}

func TestAccRawShapeAndScalePanics(t *testing.T) {
	a := tensor.New(2, 3)
	q := Quantize(tensor.New(3, 4))
	for _, bad := range []*tensor.Mat{tensor.New(3, 4), tensor.New(2, 5)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for dst %dx%d", bad.Rows, bad.Cols)
				}
			}()
			MatMulAccRawInto(bad, a, q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for short scales")
			}
		}()
		ScaleColumns(tensor.New(2, 4), []float32{1, 2})
	}()
}
