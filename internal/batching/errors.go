package batching

import (
	"errors"

	"esti/internal/serve"
)

// Sentinel errors for admission and validation, checkable with errors.Is.
// ErrInvalidConfig and ErrInfeasible are the same values package serve
// exports (one target matches either layer); the rest are the per-request
// admission outcomes the fleet router's shed decisions reuse.
var (
	// ErrInvalidConfig marks a Config that can never run (bad slot count,
	// capacity, chunk size). Identical to serve.ErrInvalidConfig.
	ErrInvalidConfig = serve.ErrInvalidConfig
	// ErrInfeasible marks a deployment the perf model rejects at full
	// occupancy. Identical to serve.ErrInfeasible.
	ErrInfeasible = serve.ErrInfeasible
	// ErrInvalidTrace marks a malformed request a trace builder produced
	// (non-finite arrival, prefix outside the prompt) — a bug, not load.
	ErrInvalidTrace = errors.New("invalid trace request")
	// ErrPromptTooLong rejects a request whose Context+Gen exceed the
	// per-slot KV capacity: no slot could ever hold it.
	ErrPromptTooLong = errors.New("prompt exceeds slot capacity")
	// ErrNoSlots rejects an admission when every slot is occupied and the
	// queue is at its bound.
	ErrNoSlots = errors.New("no free slots")
	// ErrDeadline sheds a request whose estimated completion already
	// misses its deadline — serving it would waste chips on a token stream
	// the caller will discard.
	ErrDeadline = errors.New("deadline unmeetable")
	// ErrOverloaded sheds a low-priority request under overload so that
	// higher tiers keep their SLO.
	ErrOverloaded = errors.New("overloaded")
	// ErrReplicaDown marks work lost to a replica failure: the fleet's
	// terminal outcome for a request whose retries are exhausted (or never
	// attempted, under a naive no-retry policy), and the wasted-work cause
	// for KV discarded in a crash.
	ErrReplicaDown = errors.New("replica down")
	// ErrHedged tags the losing copy of a hedged request: the router
	// duplicated work stuck on a straggler, the other copy finished first,
	// and this copy's tokens are wasted work, not an error the caller sees.
	ErrHedged = errors.New("lost hedge race")
)
