package batching

import (
	"math"
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// palm540bConfig is the paper's chatbot serving target: PaLM 540B, int8
// weights, a 64-chip slice, 2D weight-stationary FFN with batch-sharded
// multiquery attention — the decode configuration of Table 2 — run as one
// continuous-batching pool.
func palm540bConfig() Config {
	return Config{
		Model:   model.PaLM540BPadded(),
		Weights: model.Int8,
		System:  hardware.TPUv4Slice(4, 4, 4),
		FFN:     partition.FFN2DWeightStationary,
		Attn:    partition.AttnShardBatch,
		Slots:   64,
		MaxLen:  2048 + 256,
		Knobs:   perf.DefaultKnobs(),
	}
}

func TestChatbotTraceDeterministic(t *testing.T) {
	a := ChatbotTrace(50, 0.1, 7)
	b := ChatbotTrace(50, 0.1, 7)
	if len(a.Requests) != 50 {
		t.Fatalf("trace length %d", len(a.Requests))
	}
	distinctCtx := map[int]bool{}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.Context != rb.Context || ra.Gen != rb.Gen || ra.Arrival != rb.Arrival {
			t.Fatalf("request %d differs between identical seeds", i)
		}
		if ra.Context < 128 || ra.Context > 2048 || ra.Gen < 16 || ra.Gen > 256 {
			t.Errorf("request %d out of range: ctx %d gen %d", i, ra.Context, ra.Gen)
		}
		distinctCtx[ra.Context] = true
	}
	if len(distinctCtx) < 3 {
		t.Errorf("trace not mixed-length: %d distinct contexts", len(distinctCtx))
	}
	if ChatbotTrace(50, 0.1, 8).Requests[3].Context == 0 {
		t.Error("different seed produced empty request")
	}
}

func TestSimulateAccounting(t *testing.T) {
	c := palm540bConfig()
	trace := ChatbotTrace(80, 0.2, 3)
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 80 || res.Rejected != 0 {
		t.Fatalf("completed %d rejected %d, want 80/0", res.Completed, res.Rejected)
	}
	if res.GenTokens != trace.TotalGen() {
		t.Errorf("GenTokens %d != trace total %d", res.GenTokens, trace.TotalGen())
	}
	if res.GenTokensPerSec <= 0 || res.Makespan <= 0 || res.Iterations <= 0 {
		t.Errorf("degenerate aggregates: %+v", res)
	}
	if res.MeanOccupancy <= 0 || res.MeanOccupancy > 1 {
		t.Errorf("occupancy %.3f out of (0,1]", res.MeanOccupancy)
	}
	if res.P99 < res.P50 {
		t.Error("percentiles out of order")
	}
	for _, r := range res.PerRequest {
		if r.Slot < 0 || r.Slot >= c.Slots {
			t.Fatalf("request %d in slot %d", r.ID, r.Slot)
		}
		if r.Admitted < r.Arrival || r.Done <= r.Admitted {
			t.Fatalf("request %d violates causality: %+v", r.ID, r)
		}
	}
}

func TestSimulateRejectsOversized(t *testing.T) {
	c := palm540bConfig()
	trace := Trace{Requests: []Request{
		{ID: 0, Arrival: 0, Context: 512, Gen: 32},
		{ID: 1, Arrival: 0.1, Context: c.MaxLen, Gen: 64}, // ctx+gen > MaxLen
		{ID: 2, Arrival: 0.2, Context: 256, Gen: 0},       // degenerate gen
	}}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Rejected != 2 {
		t.Fatalf("completed %d rejected %d, want 1/2", res.Completed, res.Rejected)
	}
	if res.GenTokens != 32 {
		t.Errorf("GenTokens %d, want 32", res.GenTokens)
	}
}

func TestSimulateInfeasibleConfig(t *testing.T) {
	c := palm540bConfig()
	c.System = hardware.TPUv4Slice(1, 1, 1) // 540B on one chip: OOM
	if _, err := Simulate(c, ChatbotTrace(5, 1, 1)); err == nil {
		t.Error("540B continuous pool on one chip should be infeasible")
	}
	c = palm540bConfig()
	c.Slots = 0
	if _, err := Simulate(c, ChatbotTrace(5, 1, 1)); err == nil {
		t.Error("zero slots should be rejected")
	}
}

// Non-finite arrivals (e.g. from an infinite interarrival upstream) must be
// an error, not an infinite event loop.
func TestSimulateRejectsInvalidArrivals(t *testing.T) {
	c := palm540bConfig()
	for name, arrival := range map[string]float64{
		"NaN":      math.NaN(),
		"Inf":      math.Inf(1),
		"negative": -1,
	} {
		trace := Trace{Requests: []Request{{ID: 0, Arrival: arrival, Context: 256, Gen: 32}}}
		if _, err := Simulate(c, trace); err == nil {
			t.Errorf("%s arrival accepted", name)
		}
	}
	if _, err := Simulate(c, ChatbotTrace(5, math.Inf(1), 1)); err == nil {
		t.Error("infinite interarrival trace accepted")
	}
}

// A trace with rejections would skew the static comparison (the static side
// is costed over the whole trace), so CompareStatic must refuse it.
func TestCompareStaticRejectsIneligibleTrace(t *testing.T) {
	c := palm540bConfig()
	c.MaxLen = 512 // 1024- and 2048-context requests no longer fit
	if _, err := CompareStatic(c, ChatbotTrace(40, 0.1, 1)); err == nil {
		t.Error("comparison over a partially rejected trace accepted")
	}
}

// Under sparse arrivals every request should be served essentially alone:
// latency ≈ its own prefill + its own decode steps, no queueing.
func TestSimulateLightLoad(t *testing.T) {
	c := palm540bConfig()
	trace := ChatbotTrace(10, 60, 2) // one request a minute
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOccupancy > 0.2 {
		t.Errorf("light-load occupancy %.2f suspiciously high", res.MeanOccupancy)
	}
	// No request should wait: admission happens at (or just after) arrival.
	for _, r := range res.PerRequest {
		if r.Admitted-r.Arrival > 1 {
			t.Errorf("request %d queued %.2fs under light load", r.ID, r.Admitted-r.Arrival)
		}
	}
}

// MaxAdmit bounds per-iteration prefill work; with a cap of 1 the scheduler
// needs at least one iteration per admitted request.
func TestMaxAdmitCap(t *testing.T) {
	c := palm540bConfig()
	c.MaxAdmit = 1
	trace := ChatbotTrace(30, 0.01, 4) // all arrive essentially at once
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 30 {
		t.Errorf("%d iterations for 30 capped admissions", res.Iterations)
	}
	if res.Completed != 30 {
		t.Errorf("completed %d", res.Completed)
	}
}

// The acceptance criterion of this subsystem: on a mixed-length chatbot
// trace against PaLM 540B, iteration-level batching sustains strictly
// higher useful generated-token throughput than the tuned static two-tier
// pipeline at equal total chip count.
func TestContinuousBeatsStaticOnMixedTrace(t *testing.T) {
	c := palm540bConfig()
	// Heavy traffic: arrivals well above either system's capacity, so the
	// comparison measures sustained service rate, not the arrival process.
	trace := ChatbotTrace(120, 0.05, 1)
	cmp, err := CompareStatic(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Continuous.Completed != 120 {
		t.Fatalf("continuous completed %d/120", cmp.Continuous.Completed)
	}
	if cmp.StaticTokensPerSec <= 0 {
		t.Fatalf("static baseline produced no tokens: %+v", cmp.Static)
	}
	if cmp.ContinuousTokensPerSec <= cmp.StaticTokensPerSec {
		t.Errorf("continuous %.1f tok/s not above static %.1f tok/s",
			cmp.ContinuousTokensPerSec, cmp.StaticTokensPerSec)
	}
	t.Logf("continuous %.1f tok/s vs static %.1f tok/s (speedup %.2fx, occupancy %.0f%%)",
		cmp.ContinuousTokensPerSec, cmp.StaticTokensPerSec, cmp.Speedup,
		cmp.Continuous.MeanOccupancy*100)
}

// Scheduler edge: more simultaneous arrivals than slots. Later requests
// must queue (zero slots available at their arrival) and be admitted only
// as earlier ones complete — nothing is dropped and causality holds.
func TestZeroAvailableSlotsQueues(t *testing.T) {
	c := palm540bConfig()
	c.Slots = 2
	trace := Trace{}
	for i := 0; i < 6; i++ {
		trace.Requests = append(trace.Requests, Request{
			ID: i, Arrival: 0, Context: 256, Gen: 8, Slot: -1,
		})
	}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 || res.Rejected != 0 {
		t.Fatalf("completed %d rejected %d, want 6/0", res.Completed, res.Rejected)
	}
	queued := 0
	for _, r := range res.PerRequest {
		if r.Slot < 0 || r.Slot >= 2 {
			t.Fatalf("request %d in slot %d with 2 slots", r.ID, r.Slot)
		}
		if r.Admitted > r.Arrival {
			queued++
		}
		if r.Done <= r.Admitted {
			t.Fatalf("request %d: done %.3f <= admitted %.3f", r.ID, r.Done, r.Admitted)
		}
	}
	// With 2 slots and 6 simultaneous arrivals, at least 4 waited for a
	// completion to free a slot.
	if queued < 4 {
		t.Errorf("only %d requests queued; expected at least 4 to wait for slots", queued)
	}
}

// Scheduler edge: a prompt longer than the context window (per-slot KV
// capacity) is rejected at admission, with and without chunked prefill —
// chunking bounds per-iteration work, it does not create capacity.
func TestPromptLongerThanWindowRejected(t *testing.T) {
	for _, chunk := range []int{0, 128} {
		c := palm540bConfig()
		c.PrefillChunk = chunk
		trace := Trace{Requests: []Request{
			{ID: 0, Arrival: 0, Context: c.MaxLen + 1, Gen: 4, Slot: -1},
			{ID: 1, Arrival: 0, Context: 256, Gen: 8, Slot: -1},
		}}
		res, err := Simulate(c, trace)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if res.Completed != 1 || res.Rejected != 1 {
			t.Fatalf("chunk %d: completed %d rejected %d, want 1/1", chunk, res.Completed, res.Rejected)
		}
		if res.PerRequest[0].Slot != -1 {
			t.Errorf("chunk %d: oversized request got slot %d", chunk, res.PerRequest[0].Slot)
		}
	}
}

// Scheduler edge: every sequence finishes in the same iteration. The batch
// drains completely in one step, all slots free at once, and a later wave
// is admitted into the emptied batch without stalling or double-freeing.
func TestAllSequencesFinishSameIteration(t *testing.T) {
	c := palm540bConfig()
	c.Slots = 4
	c.MaxAdmit = 0 // admit the whole wave in one iteration
	trace := Trace{}
	// Wave 1: four identical requests admitted together decode in lockstep
	// and complete in the same iteration.
	for i := 0; i < 4; i++ {
		trace.Requests = append(trace.Requests, Request{
			ID: i, Arrival: 0, Context: 128, Gen: 8, Slot: -1,
		})
	}
	// Wave 2 arrives long after wave 1 completed.
	for i := 4; i < 8; i++ {
		trace.Requests = append(trace.Requests, Request{
			ID: i, Arrival: 1e6, Context: 128, Gen: 8, Slot: -1,
		})
	}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed %d/8", res.Completed)
	}
	wave1 := res.PerRequest[:4]
	done := wave1[0].Done
	slots := map[int]bool{}
	for _, r := range wave1 {
		if r.Done != done {
			t.Errorf("wave-1 request %d finished at %.4f, others at %.4f", r.ID, r.Done, done)
		}
		slots[r.Slot] = true
	}
	if len(slots) != 4 {
		t.Errorf("wave 1 used %d distinct slots, want 4", len(slots))
	}
	for _, r := range res.PerRequest[4:] {
		if r.Admitted < 1e6 {
			t.Errorf("wave-2 request %d admitted at %.2f, before its arrival", r.ID, r.Admitted)
		}
		if r.Slot < 0 {
			t.Errorf("wave-2 request %d rejected", r.ID)
		}
	}
}
