package batching

// The fault surface: the handful of scheduler operations the fleet's fault
// layer needs — losing a replica's state on a crash, evicting queued work on
// a drain, enumerating in-flight requests for hedging, stretching iteration
// time for stragglers, and converting a prefill pool to unified serving when
// the decode pool dies.

import "math"

// LostWork describes one request's state on a replica at the moment the
// replica lost it: how many KV positions and generated tokens are discarded
// with the slot — the work a recovery has to redo.
type LostWork struct {
	Req *Request
	// Prefilled counts the prompt positions resident in the slot's KV when
	// it was lost (cached-prefix positions included: the retry must rebuild
	// or re-attach them wherever it lands).
	Prefilled int
	// Decoded counts generated tokens discarded with the slot.
	Decoded int
	// Queued reports the request was still waiting for a slot — nothing was
	// computed for it yet, so nothing is wasted.
	Queued bool
}

// Crash rips the replica's state out from under it: every occupied slot and
// every queued request is returned as LostWork, the slots and queue empty,
// and the warm-template set clears (the prefix cache died with the replica).
// The clock stays put; a recovering replica re-enters service via AdvanceTo
// at its recovery time.
func (s *Scheduler) Crash() []LostWork {
	var lost []LostWork
	for i, ss := range s.slots {
		if ss == nil {
			continue
		}
		lost = append(lost, LostWork{Req: ss.req, Prefilled: ss.ctxDone, Decoded: ss.produced})
		ss.req.Slot = -1
		s.slots[i] = nil
		s.free++
	}
	for _, q := range s.queue {
		lost = append(lost, LostWork{Req: q.r, Queued: true})
	}
	s.queue = nil
	s.warm = map[int]bool{}
	return lost
}

// EvictQueued hands back every queued (not yet admitted) request — the
// drain path: in-flight slots finish locally, waiting work re-routes.
func (s *Scheduler) EvictQueued() []*Request {
	var out []*Request
	for _, q := range s.queue {
		out = append(out, q.r)
	}
	s.queue = nil
	return out
}

// Requests lists every request the replica currently holds, slots first in
// slot order, then the queue in queue order — the router's hedging scan.
func (s *Scheduler) Requests() []*Request {
	var out []*Request
	for _, ss := range s.slots {
		if ss != nil {
			out = append(out, ss.req)
		}
	}
	for _, q := range s.queue {
		out = append(out, q.r)
	}
	return out
}

// SetSlowdown stretches every subsequent iteration and finish estimate by
// factor — the straggler model. Factors below 1 (or non-finite) clamp to 1:
// a replica never runs faster than the perf model says.
func (s *Scheduler) SetSlowdown(factor float64) {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 1 {
		factor = 1
	}
	s.slowdown = factor
}

// Slowdown returns the current straggler factor (1 when healthy).
func (s *Scheduler) Slowdown() float64 { return s.slowdown }

// SetUnified converts a prefill-only scheduler into a unified one — the
// fleet's graceful-degradation fallback when the decode pool dies. Slots
// mid-prefill continue into decode locally instead of completing at their
// first token; there is no way back (recovered decode replicas serve new
// traffic, they don't re-split a live replica).
func (s *Scheduler) SetUnified() { s.prefillOnly = false }
