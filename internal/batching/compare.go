package batching

import (
	"fmt"
	"math"

	"esti/internal/hardware"
	"esti/internal/serve"
)

// Comparison holds the head-to-head of continuous batching against the
// static two-tier pipeline on the same trace and total chip count.
type Comparison struct {
	Continuous Result
	Static     serve.SimResult
	// StaticTuned records the tier batches serve.Tune picked for the
	// baseline (it gets its best configuration, not a strawman).
	StaticTuned serve.TuneResult
	// Useful generated-token throughput: each request contributes its
	// actual Gen, so the static pipeline's padded decode steps earn
	// nothing for the padding.
	ContinuousTokensPerSec float64
	StaticTokensPerSec     float64
	// Speedup = continuous / static useful-token throughput.
	Speedup float64
}

// CompareStatic replays the same request trace through both serving
// disciplines at equal total chip count:
//
//   - Continuous: every chip in c.System forms one pool; slot-level
//     admission, per-iteration costs at actual lengths (Simulate).
//   - Static: the chips split into a prefill tier and a decode tier
//     (package serve's disaggregated pipeline, half each), with tier
//     batches chosen by serve.Tune for maximum throughput. A static batch
//     has a single shape, so every request is padded to the trace's
//     maximum context and generation length — the padding and
//     batch-drain waste this comparison quantifies.
//
// Useful-token throughput counts only each request's actual Gen tokens.
// For a clean comparison the trace should fit c.MaxLen (no rejections).
func CompareStatic(c Config, trace Trace) (Comparison, error) {
	n := c.System.Chips()
	if n < 2 {
		return Comparison{}, fmt.Errorf("batching: need >= 2 chips to form two static tiers, have %d", n)
	}
	if len(trace.Requests) < 2 {
		return Comparison{}, fmt.Errorf("batching: trace too short to compare")
	}

	cont, err := Simulate(c, trace)
	if err != nil {
		return Comparison{}, err
	}
	if cont.Rejected > 0 {
		// The static side is costed over the whole trace, so rejections
		// would skew the comparison in continuous batching's favor.
		return Comparison{}, fmt.Errorf("batching: %d requests exceed the %d-token slot capacity; comparison requires a fully eligible trace", cont.Rejected, c.MaxLen)
	}

	half := hardware.NewSystem(c.System.Chip, hardware.BestSlice(n/2))
	staticCfg := serve.Config{
		Model:     c.Model,
		Weights:   c.Weights,
		KVDType:   c.KVDType,
		WireDType: c.WireDType,
		Prefill:   serve.Tier{System: half, Batch: 1, FFN: c.FFN, Attn: c.Attn},
		Decode:    serve.Tier{System: half, Batch: 64, FFN: c.FFN, Attn: c.Attn},
		Context:   trace.MaxContext(),
		Gen:       trace.MaxGen(),
		Knobs:     c.Knobs,
	}
	tuned, ok := serve.Tune(staticCfg, math.Inf(1))
	if ok {
		staticCfg.Prefill.Batch = tuned.PrefillBatch
		staticCfg.Decode.Batch = tuned.DecodeBatch
	}

	// Same arrival process: serve.Simulate generates fixed-interarrival
	// requests, so feed it the trace's mean gap and count.
	reqs := trace.Requests
	inter := (reqs[len(reqs)-1].Arrival - reqs[0].Arrival) / float64(len(reqs)-1)
	stat, err := serve.Simulate(staticCfg, len(reqs), inter)
	if err != nil {
		return Comparison{}, fmt.Errorf("batching: static baseline: %w", err)
	}

	cmp := Comparison{
		Continuous:             cont,
		Static:                 stat,
		StaticTuned:            tuned,
		ContinuousTokensPerSec: cont.GenTokensPerSec,
	}
	if stat.Makespan > 0 {
		cmp.StaticTokensPerSec = float64(trace.TotalGen()) / stat.Makespan
	}
	if cmp.StaticTokensPerSec > 0 {
		cmp.Speedup = cmp.ContinuousTokensPerSec / cmp.StaticTokensPerSec
	}
	return cmp, nil
}

// CacheComparison is the head-to-head of the same continuous pool with and
// without shared-prefix reuse on the same trace.
type CacheComparison struct {
	Cached, Uncached Result
	// Speedup is the cached/uncached ratio of useful generated-token
	// throughput. Both runs serve identical requests, so the ratio isolates
	// the prefill work the cache removed.
	Speedup float64
}

// CompareNoCache replays the trace through the same deployment twice —
// prefix cache on and off — holding slots, chunking and every cost knob
// equal. On template-heavy traffic (SharedPrefixTrace) the cached run
// skips almost every template prefill, which is the useful-tok/s win the
// paper's cost model predicts for prefill-dominated admission.
func CompareNoCache(c Config, trace Trace) (CacheComparison, error) {
	on := c
	on.PrefixCache = true
	off := c
	off.PrefixCache = false

	cached, err := Simulate(on, trace)
	if err != nil {
		return CacheComparison{}, err
	}
	uncached, err := Simulate(off, trace)
	if err != nil {
		return CacheComparison{}, err
	}
	cmp := CacheComparison{Cached: cached, Uncached: uncached}
	if uncached.GenTokensPerSec > 0 {
		cmp.Speedup = cached.GenTokensPerSec / uncached.GenTokensPerSec
	}
	return cmp, nil
}
