package batching

import (
	"errors"
	"testing"

	"esti/internal/hardware"
)

func drain(t *testing.T, s *Scheduler) []*Request {
	t.Helper()
	var done []*Request
	for i := 0; s.Busy(); i++ {
		if i > 10000 {
			t.Fatal("scheduler did not drain in 10000 iterations")
		}
		_, d := s.Step()
		done = append(done, d...)
	}
	return done
}

// A prefill-only scheduler completes each request the moment its prompt has
// prefilled: one admission iteration per request (no decode steps), the slot
// freed immediately for the next.
func TestPrefillOnlyCompletesAtFirstToken(t *testing.T) {
	c := palm540bConfig()
	c.Slots = 2
	s, err := NewPrefillScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*Request, 4)
	for i := range reqs {
		reqs[i] = &Request{ID: i, Context: 256, Gen: 64, Slot: -1}
		s.Enqueue(reqs[i])
	}
	done := drain(t, s)
	if len(done) != 4 {
		t.Fatalf("prefill pool completed %d/4", len(done))
	}
	for _, r := range reqs {
		if r.Done <= r.Admitted {
			t.Errorf("request %d: done %.4f <= admitted %.4f", r.ID, r.Done, r.Admitted)
		}
	}
	// Completion must not wait for Gen decode steps: the whole pool drains in
	// far less time than one request's decode phase would take.
	full, err := NewScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	full.Enqueue(&Request{ID: 9, Context: 256, Gen: 64, Slot: -1})
	fullDone := drain(t, full)
	if s.Now() >= fullDone[0].Done {
		t.Errorf("prefill pool (4 reqs, %.4fs) not faster than one full request (%.4fs)",
			s.Now(), fullDone[0].Done)
	}
	if s.genTokens != 4*64 {
		t.Errorf("prefill pool genTokens %d; localTokens counts full Gen", s.genTokens)
	}
}

// A decode-only admission skips prefill: it joins the decode batch on its
// admission iteration and produces Gen-1 further tokens (the first came from
// the prefill pool).
func TestDecodeOnlyAdmission(t *testing.T) {
	c := palm540bConfig()
	s, err := NewScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	r := &Request{ID: 0, Context: 512, Gen: 8, Slot: -1}
	s.EnqueueDecodeOnly(r)
	iters := 0
	for s.Busy() {
		s.Step()
		iters++
	}
	// Gen-1 decode steps: admission iteration decodes token 2, then 6 more.
	if iters != 7 {
		t.Errorf("decode-only Gen=8 took %d iterations, want 7", iters)
	}
	if s.genTokens != 7 {
		t.Errorf("decode-only genTokens %d, want Gen-1=7", s.genTokens)
	}

	// Gen=1: the prefill pool's token was the whole request; the decode
	// replica admits and completes it without any decode step.
	one := &Request{ID: 1, Context: 128, Gen: 1, Slot: -1}
	s.EnqueueDecodeOnly(one)
	_, done := s.Step()
	if len(done) != 1 || done[0].ID != 1 {
		t.Fatalf("Gen=1 decode-only did not complete on admission: %v", done)
	}
}

// Priority orders admission under contention; equal priorities stay FIFO.
func TestPriorityAdmissionOrder(t *testing.T) {
	c := palm540bConfig()
	c.Slots = 1 // full contention: admission order is completion order
	s, err := NewScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	low1 := &Request{ID: 0, Context: 128, Gen: 2, Slot: -1}
	low2 := &Request{ID: 1, Context: 128, Gen: 2, Slot: -1}
	high := &Request{ID: 2, Context: 128, Gen: 2, Priority: 1, Slot: -1}
	s.Enqueue(low1)
	s.Enqueue(low2)
	s.Enqueue(high)
	var order []int
	for s.Busy() {
		_, done := s.Step()
		for _, r := range done {
			order = append(order, r.ID)
		}
	}
	want := []int{2, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}

// HasTemplate turns on only after a template's first prefill completes — the
// router's affinity signal follows the cache's actual contents.
func TestHasTemplateWarmsAfterPrefill(t *testing.T) {
	c := palm540bConfig()
	c.PrefixCache = true
	s, err := NewScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasTemplate(3) {
		t.Fatal("template warm before any request")
	}
	s.Enqueue(&Request{ID: 0, Context: 256, Gen: 2, Template: 3, PrefixLen: 128, Slot: -1})
	s.Step()
	if !s.HasTemplate(3) {
		t.Error("template not warm after its prefill iteration")
	}
	if s.HasTemplate(4) {
		t.Error("unrelated template reported warm")
	}
}

// EstimateFinish grows with queued work and respects prefill-only pools.
func TestEstimateFinishMonotonic(t *testing.T) {
	c := palm540bConfig()
	s, err := NewScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	probe := &Request{Context: 512, Gen: 64}
	empty := s.EstimateFinish(probe, false)
	if empty <= 0 {
		t.Fatalf("empty-replica estimate %.4f", empty)
	}
	for i := 0; i < 20; i++ {
		s.Enqueue(&Request{ID: i, Context: 512, Gen: 64, Slot: -1})
	}
	loaded := s.EstimateFinish(probe, false)
	if loaded <= empty {
		t.Errorf("estimate did not grow with load: empty %.4f loaded %.4f", empty, loaded)
	}
	// Decode-only admission skips the candidate's own prefill cost.
	if d := s.EstimateFinish(probe, true); d >= loaded {
		t.Errorf("decode-only estimate %.4f not below full estimate %.4f", d, loaded)
	}
	pre, err := NewPrefillScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	pref := pre.EstimateFinish(probe, false)
	if pref <= 0 || pref >= empty {
		t.Errorf("prefill-pool estimate %.4f should be positive and below full-service %.4f", pref, empty)
	}
}

// The sentinel errors must be reachable with errors.Is through every wrapped
// path, and the batching aliases must match the serve values.
func TestSentinelErrors(t *testing.T) {
	c := palm540bConfig()

	bad := c
	bad.Slots = 0
	if _, err := NewScheduler(bad); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("zero slots: got %v, want ErrInvalidConfig", err)
	}
	huge := c
	huge.System = hardware.TPUv4Slice(1, 1, 1)
	if _, err := NewScheduler(huge); !errors.Is(err, ErrInfeasible) {
		t.Errorf("540B on one chip: got %v, want ErrInfeasible", err)
	}

	if err := c.CheckRequest(Request{Context: c.MaxLen, Gen: 64}); !errors.Is(err, ErrPromptTooLong) {
		t.Errorf("oversized request: got %v, want ErrPromptTooLong", err)
	}
	if err := c.CheckRequest(Request{Context: 256, Gen: 0}); !errors.Is(err, ErrPromptTooLong) {
		t.Errorf("zero-gen request: got %v, want ErrPromptTooLong", err)
	}
	if err := c.CheckRequest(Request{Arrival: -1, Context: 256, Gen: 8}); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("negative arrival: got %v, want ErrInvalidTrace", err)
	}
	if err := c.CheckRequest(Request{Context: 256, Gen: 8, Template: 1, PrefixLen: 300}); !errors.Is(err, ErrInvalidTrace) {
		t.Errorf("prefix beyond prompt: got %v, want ErrInvalidTrace", err)
	}
	if err := c.CheckRequest(Request{Context: 256, Gen: 8}); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestZipfPrefixTrace(t *testing.T) {
	a := ZipfPrefixTrace(400, 0.05, 256, 12, 1.5, 7)
	b := ZipfPrefixTrace(400, 0.05, 256, 12, 1.5, 7)
	counts := map[int]int{}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra != rb {
			t.Fatalf("request %d differs between identical seeds", i)
		}
		if ra.Template < 1 || ra.Template > 12 {
			t.Fatalf("request %d template %d out of [1,12]", i, ra.Template)
		}
		if ra.PrefixLen != 256 || ra.Context <= 256 {
			t.Fatalf("request %d: prefix %d context %d", i, ra.PrefixLen, ra.Context)
		}
		counts[ra.Template]++
	}
	// Zipf skew: the most popular template dominates a uniform share.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 2*400/12 {
		t.Errorf("head template has %d/400 requests; expected Zipf skew above uniform %d", max, 400/12)
	}
	if len(counts) < 4 {
		t.Errorf("only %d distinct templates; tail missing", len(counts))
	}
}

func TestWithSLO(t *testing.T) {
	base := ZipfPrefixTrace(200, 0.05, 128, 8, 1.5, 1)
	stamped := WithSLO(base, 10, 0.25, 2)
	if base.Requests[0].Deadline != 0 {
		t.Fatal("WithSLO mutated its input trace")
	}
	high := 0
	for i, r := range stamped.Requests {
		if r.Priority == 1 {
			high++
			if r.Deadline != r.Arrival+5 {
				t.Fatalf("high-tier request %d deadline %.2f, want arrival+5", i, r.Deadline)
			}
		} else if r.Deadline != r.Arrival+10 {
			t.Fatalf("request %d deadline %.2f, want arrival+10", i, r.Deadline)
		}
	}
	if high < 20 || high > 80 {
		t.Errorf("high tier %d/200 at frac 0.25", high)
	}
}
