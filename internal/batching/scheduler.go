package batching

// Scheduler is the iteration-level scheduling core of Simulate, exposed as
// a steppable object so a fleet layer can drive many replicas' schedulers
// against one global clock. One Scheduler owns one replica's slots and
// queue; the caller feeds arrivals with Enqueue (ordered by Priority, FIFO
// within a tier), advances the replica one iteration at a time with Step,
// and moves its clock across idle gaps with AdvanceTo. Simulate is now a
// thin loop over exactly this API, so the single-replica and fleet paths
// cannot drift apart.
//
// Two pool modes extend the basic discipline for disaggregated serving:
//
//   - A prefill-only scheduler (NewPrefillScheduler) completes a request
//     the moment its prompt finishes prefilling — the first token exists,
//     and the slot's KV is ready to hand off to a decode replica. The slot
//     frees immediately; no decode iterations run for it.
//   - A decode-only admission (EnqueueDecodeOnly) admits a request whose
//     KV already arrived via handoff: it skips prefill entirely, joining
//     the decode batch on its admission iteration and generating its
//     remaining Gen-1 tokens (the first came from the prefill pool).

import (
	"sort"

	"esti/internal/perf"
)

type queued struct {
	r          *Request
	decodeOnly bool
}

type preKey struct{ past, ctx int }
type stepKey struct{ batch, ctx int }

// Scheduler holds one replica's iteration-level scheduling state.
type Scheduler struct {
	c           Config
	prefillOnly bool

	slots []*slotState
	free  int
	queue []queued
	now   float64
	warm  map[int]bool
	// slowdown stretches every iteration (and finish estimate) — the fleet's
	// straggler-fault model. Always >= 1; NewScheduler starts it at 1.
	slowdown float64

	prefillMemo map[preKey]float64
	stepMemo    map[stepKey]float64

	// Accumulated over the run (Simulate and fleet read these to assemble
	// their Results).
	iterations               int
	busyWeighted             float64
	maxIterTime              float64
	prefixHits, prefixMisses int
	cachedTokens             int
	completed                int
	genTokens                int
	makespan                 float64
}

// NewScheduler validates the configuration and returns an empty scheduler.
func NewScheduler(c Config) (*Scheduler, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &Scheduler{
		c:           c,
		slots:       make([]*slotState, c.Slots),
		free:        c.Slots,
		warm:        map[int]bool{},
		slowdown:    1,
		prefillMemo: map[preKey]float64{},
		stepMemo:    map[stepKey]float64{},
	}, nil
}

// NewPrefillScheduler returns a scheduler for a disaggregated prefill pool:
// requests complete when their prompt's prefill (and first token) lands,
// freeing the slot for the next admission; the decode phase happens on
// another replica after KV handoff.
func NewPrefillScheduler(c Config) (*Scheduler, error) {
	s, err := NewScheduler(c)
	if err != nil {
		return nil, err
	}
	s.prefillOnly = true
	return s, nil
}

// Now returns the replica's clock.
func (s *Scheduler) Now() float64 { return s.now }

// AdvanceTo moves the replica's clock forward to t (never backward) — the
// idle jump between an empty replica and its next arrival.
func (s *Scheduler) AdvanceTo(t float64) {
	if t > s.now {
		s.now = t
	}
}

// Busy reports whether the replica has any work: occupied slots or queued
// requests.
func (s *Scheduler) Busy() bool { return s.free < s.c.Slots || len(s.queue) > 0 }

// Pending is the queued (not yet admitted) request count.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Active is the occupied slot count.
func (s *Scheduler) Active() int { return s.c.Slots - s.free }

// Load is the replica's total backlog: queued plus admitted-and-running.
func (s *Scheduler) Load() int { return s.Pending() + s.Active() }

// HasTemplate reports whether the template's prefix is warm in this
// replica's cache — the router's prefix-affinity signal.
func (s *Scheduler) HasTemplate(template int) bool { return s.warm[template] }

// Enqueue adds a request to the admission queue, ordered by Priority
// (higher first) and FIFO within a tier — with all-zero priorities this is
// plain FIFO, the original Simulate discipline.
func (s *Scheduler) Enqueue(r *Request) { s.enqueue(queued{r: r}) }

// EnqueueDecodeOnly adds a request whose prompt KV is already in place
// (imported via handoff from a prefill replica): admission skips prefill
// and the slot joins the decode batch the same iteration. The request's
// first token is credited to the prefill pool; this replica generates the
// remaining Gen-1.
func (s *Scheduler) EnqueueDecodeOnly(r *Request) { s.enqueue(queued{r: r, decodeOnly: true}) }

func (s *Scheduler) enqueue(q queued) {
	at := len(s.queue)
	for i, o := range s.queue {
		if q.r.Priority > o.r.Priority {
			at = i
			break
		}
	}
	s.queue = append(s.queue, queued{})
	copy(s.queue[at+1:], s.queue[at:])
	s.queue[at] = q
}

// prefillT is the memoized batch-1 prefill cost of ctx tokens on top of
// `past` cached positions.
func (s *Scheduler) prefillT(past, ctx int) float64 {
	c := s.c
	key := preKey{past, ctx}
	if t, ok := s.prefillMemo[key]; ok {
		return t
	}
	res := perf.Prefill(perf.Request{
		Model: c.Model, System: c.System, Weights: c.Weights,
		KVDType: c.KVDType, WireDType: c.WireDType,
		FFN: c.FFN, Attn: c.Attn, Batch: 1, Context: ctx, Past: past,
	}, c.Knobs)
	s.prefillMemo[key] = res.Time
	return res.Time
}

// decodeT is the memoized one-step decode cost at the given occupancy and
// mean context (bucketed to 32 so the memo stays small; the step cost
// varies slowly with context).
func (s *Scheduler) decodeT(batch, ctx int) float64 {
	c := s.c
	key := stepKey{batch, (ctx + 31) / 32 * 32}
	if t, ok := s.stepMemo[key]; ok {
		return t
	}
	res := perf.Decode(perf.Request{
		Model: c.Model, System: c.System, Weights: c.Weights,
		KVDType: c.KVDType, WireDType: c.WireDType,
		FFN: c.FFN, Attn: c.Attn, Batch: batch, Context: key.ctx, Gen: 1,
	}, c.Knobs)
	s.stepMemo[key] = res.Time
	return res.Time
}

// EstimateFinish predicts when a candidate request would produce its last
// token if enqueued now, from the perf model's costs: the prefill work
// queued ahead of it plus its own, and the remaining decode tokens of
// everything in flight served at steady-state occupancy. It deliberately
// ignores priorities and future arrivals — a cheap, deterministic signal
// for SLO admission (shed when even this optimistic bound misses the
// deadline), not a simulation.
func (s *Scheduler) EstimateFinish(r *Request, decodeOnly bool) float64 {
	prefillWork := 0.0
	remaining := 0
	for _, ss := range s.slots {
		if ss == nil {
			continue
		}
		if ss.toGo > 0 {
			prefillWork += s.prefillT(ss.ctxDone, ss.toGo)
		}
		remaining += ss.req.Gen - ss.produced
	}
	for _, q := range s.queue {
		if !q.decodeOnly {
			prefillWork += s.prefillT(0, q.r.Context)
		}
		remaining += q.r.Gen
	}
	if !decodeOnly {
		prefillWork += s.prefillT(0, r.Context)
	}
	remaining += r.Gen
	if s.prefillOnly {
		// A prefill pool's service is the prefill work alone.
		return s.now + prefillWork*s.slowdown
	}
	b := s.Load() + 1
	if b > s.c.Slots {
		b = s.c.Slots
	}
	step := s.decodeT(b, r.Context+r.Gen/2)
	return s.now + (prefillWork+float64(remaining)*step/float64(b))*s.slowdown
}

// Backlog is a load snapshot of one scheduler: what is queued, what is in
// flight, and — priced by the perf model — how long the replica would take
// to drain it all with no further arrivals. The fleet's autoscaler reads
// one per replica per control tick; DrainTime is the pressure signal its
// hysteresis bands compare.
type Backlog struct {
	// Pending and Active mirror the accessors of the same names.
	Pending, Active int
	// PrefillWork is the batch-1 prefill time (seconds) still owed: queued
	// prompts plus the unprefilled remainder of mid-prefill slots.
	PrefillWork float64
	// RemainingTokens counts decode tokens still owed across slots and queue.
	RemainingTokens int
	// DrainTime estimates the seconds until the replica is empty, serving
	// its backlog at steady-state occupancy — EstimateFinish without a
	// candidate request, straggler slowdown included. Zero when idle.
	DrainTime float64
}

// Snapshot prices the replica's current backlog with the perf model. Like
// EstimateFinish it is a deterministic estimate, not a simulation: prefill
// work at batch-1 cost, remaining decode tokens at the steady-state batch
// step cost, all stretched by the straggler slowdown.
func (s *Scheduler) Snapshot() Backlog {
	b := Backlog{Pending: s.Pending(), Active: s.Active()}
	ctxSum, n := 0, 0
	for _, ss := range s.slots {
		if ss == nil {
			continue
		}
		if ss.toGo > 0 {
			b.PrefillWork += s.prefillT(ss.ctxDone, ss.toGo)
		}
		b.RemainingTokens += ss.req.Gen - ss.produced
		ctxSum += ss.req.Context + ss.req.Gen/2
		n++
	}
	for _, q := range s.queue {
		if !q.decodeOnly {
			b.PrefillWork += s.prefillT(0, q.r.Context)
		}
		b.RemainingTokens += q.r.Gen
		ctxSum += q.r.Context + q.r.Gen/2
		n++
	}
	if n == 0 {
		return b
	}
	if s.prefillOnly {
		b.DrainTime = b.PrefillWork * s.slowdown
		return b
	}
	batch := s.Load()
	if batch > s.c.Slots {
		batch = s.c.Slots
	}
	step := s.decodeT(batch, ctxSum/n)
	b.DrainTime = (b.PrefillWork + float64(b.RemainingTokens)*step/float64(batch)) * s.slowdown
	return b
}

// DrainToEmpty steps the scheduler until no work remains — queue included —
// and returns every completion in finish order: the local flush a scale-in
// performs after the router stops feeding the replica. Resident KV is never
// dropped; each in-flight sequence runs to its last token.
func (s *Scheduler) DrainToEmpty() []*Request {
	var done []*Request
	for s.Busy() {
		_, d := s.Step()
		done = append(done, d...)
	}
	return done
}

// Step runs one scheduler iteration — admissions, chunked prefill, one
// decode step, completions — advancing the replica's clock by the
// iteration's modeled time. Completed requests are returned with Done set;
// in prefill-only mode completion means "first token produced, KV ready to
// hand off". A scheduler with no work returns (0, nil) untouched.
func (s *Scheduler) Step() (iterTime float64, done []*Request) {
	if !s.Busy() {
		return 0, nil
	}
	c := s.c

	// firstToken marks slots whose token this iteration came from their
	// (completed) prefill rather than from the decode step.
	firstToken := map[int]bool{}
	admitted := 0
	for s.free > 0 && len(s.queue) > 0 {
		if c.MaxAdmit > 0 && admitted >= c.MaxAdmit {
			break
		}
		q := s.queue[0]
		s.queue = s.queue[1:]
		r := q.r
		slot := -1
		for i, ss := range s.slots {
			if ss == nil {
				slot = i
				break
			}
		}
		cached := 0
		seeds := 0
		if c.PrefixCache && r.Template != 0 && !q.decodeOnly {
			if s.warm[r.Template] {
				cached = r.PrefixLen
				s.prefixHits++
				s.cachedTokens += cached
			} else {
				// A miss warms the template only when its prefill
				// completes; a concurrent same-template admission before
				// then must miss too (the prefix is not in the cache yet).
				s.prefixMisses++
				seeds = r.Template
			}
		}
		ss := &slotState{req: r, ctxDone: cached, toGo: r.Context - cached,
			seedsTemplate: seeds, decodeOnly: q.decodeOnly}
		s.slots[slot] = ss
		s.free--
		admitted++
		r.Admitted = s.now
		r.Slot = slot
		if q.decodeOnly {
			// KV arrived via handoff: nothing to prefill, the first token
			// already exists. The slot joins this iteration's decode step —
			// unless that one token was the whole request.
			ss.ctxDone = r.Context
			ss.toGo = 0
			ss.produced = 1
			if ss.produced >= r.Gen {
				firstToken[slot] = true
			}
			continue
		}
		if c.PrefillChunk == 0 {
			// Inline admission: the whole (remaining) prompt prefills now
			// and yields the request's first token.
			iterTime += s.prefillT(ss.ctxDone, ss.toGo)
			ss.ctxDone = r.Context
			ss.toGo = 0
			ss.produced = 1
			firstToken[slot] = true
			if ss.seedsTemplate != 0 {
				s.warm[ss.seedsTemplate] = true
			}
		}
	}

	// Chunked prefill: spend this iteration's prefill-token budget on
	// mid-prefill slots; a slot whose last chunk lands yields its first
	// token. The budget, not the prompt length, now bounds the prefill time
	// added to the iteration.
	if c.PrefillChunk > 0 {
		budget := c.PrefillChunk
		for slot, ss := range s.slots {
			if budget == 0 {
				break
			}
			if ss == nil || ss.toGo == 0 {
				continue
			}
			adv := budget
			if adv > ss.toGo {
				adv = ss.toGo
			}
			iterTime += s.prefillT(ss.ctxDone, adv)
			ss.ctxDone += adv
			ss.toGo -= adv
			budget -= adv
			if ss.toGo == 0 {
				ss.produced = 1
				firstToken[slot] = true
				if ss.seedsTemplate != 0 {
					s.warm[ss.seedsTemplate] = true
				}
			}
		}
	}

	// Decode step over the slots that were already running; slots still
	// prefilling and those that just got their first token sit out. A
	// prefill-only pool never decodes.
	if !s.prefillOnly {
		decodeBatch := 0
		ctxSum := 0
		for slot, ss := range s.slots {
			if ss == nil || ss.toGo > 0 || firstToken[slot] {
				continue
			}
			decodeBatch++
			ctxSum += ss.req.Context + ss.produced
		}
		if decodeBatch > 0 {
			iterTime += s.decodeT(decodeBatch, ctxSum/decodeBatch)
		}
	}

	iterTime *= s.slowdown
	nActive := c.Slots - s.free
	s.now += iterTime
	s.iterations++
	s.busyWeighted += float64(nActive) * iterTime
	if iterTime > s.maxIterTime {
		s.maxIterTime = iterTime
	}

	for slot, ss := range s.slots {
		if ss == nil || ss.toGo > 0 {
			continue
		}
		if !firstToken[slot] && !s.prefillOnly {
			ss.produced++
		}
		finished := ss.produced >= ss.req.Gen
		if s.prefillOnly {
			finished = ss.produced >= 1
		}
		if finished {
			ss.req.Done = s.now
			s.completed++
			s.genTokens += ss.localTokens()
			done = append(done, ss.req)
			s.slots[slot] = nil
			s.free++
			if s.now > s.makespan {
				s.makespan = s.now
			}
		}
	}
	return iterTime, done
}

// localTokens is how many tokens this replica itself produced for the
// request: all Gen normally, just the first in a prefill pool, the
// remaining Gen-1 for a decode-only (handoff) admission.
func (ss *slotState) localTokens() int {
	if ss.decodeOnly {
		return ss.req.Gen - 1
	}
	return ss.req.Gen
}

// result assembles the aggregate metrics Simulate reports, over the given
// request population (rejected counts come from the caller's screening).
func (s *Scheduler) result(reqs []Request, eligible []*Request, rejected int) Result {
	res := Result{
		Completed:    s.completed,
		Rejected:     rejected,
		Makespan:     s.makespan,
		GenTokens:    s.genTokens,
		Iterations:   s.iterations,
		MaxIterTime:  s.maxIterTime,
		PrefixHits:   s.prefixHits,
		PrefixMisses: s.prefixMisses,
		CachedTokens: s.cachedTokens,
		PerRequest:   reqs,
	}
	if s.makespan > 0 {
		res.GenTokensPerSec = float64(s.genTokens) / s.makespan
		res.MeanOccupancy = s.busyWeighted / (float64(s.c.Slots) * s.makespan)
	}
	res.MeanLatency, res.P50, res.P95, res.P99 = latencyStats(eligible)
	return res
}

// latencyStats computes the mean and percentiles of completed-request
// latencies (NaN mean when the population is empty).
func latencyStats(reqs []*Request) (mean, p50, p95, p99 float64) {
	if len(reqs) == 0 {
		return nan(), 0, 0, 0
	}
	lat := make([]float64, len(reqs))
	sum := 0.0
	for i, r := range reqs {
		lat[i] = r.Latency()
		sum += lat[i]
	}
	sort.Float64s(lat)
	return sum / float64(len(reqs)),
		percentileSorted(lat, 0.50), percentileSorted(lat, 0.95), percentileSorted(lat, 0.99)
}
