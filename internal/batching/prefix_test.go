package batching

import (
	"testing"
)

func TestSharedPrefixTraceShape(t *testing.T) {
	a := SharedPrefixTrace(60, 0.05, 1792, 3, 9)
	b := SharedPrefixTrace(60, 0.05, 1792, 3, 9)
	templates := map[int]bool{}
	for i, r := range a.Requests {
		if r != b.Requests[i] {
			t.Fatalf("request %d differs between identical seeds", i)
		}
		if r.Template < 1 || r.Template > 3 {
			t.Fatalf("request %d template %d", i, r.Template)
		}
		if r.PrefixLen != 1792 || r.Context <= r.PrefixLen {
			t.Fatalf("request %d: prefix %d of context %d", i, r.PrefixLen, r.Context)
		}
		templates[r.Template] = true
	}
	if len(templates) != 3 {
		t.Errorf("trace uses %d of 3 templates", len(templates))
	}
}

// Prefix accounting: the first admission per template misses (and caches),
// every later one hits and skips exactly its prefix tokens. The cache can
// only remove work: same completions and tokens, no worse throughput.
func TestSimulatePrefixAccounting(t *testing.T) {
	c := palm540bConfig()
	c.PrefixCache = true
	const templates = 3
	trace := SharedPrefixTrace(60, 0.02, 1792, templates, 5)
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 || res.Rejected != 0 {
		t.Fatalf("completed %d rejected %d", res.Completed, res.Rejected)
	}
	if res.PrefixMisses != templates || res.PrefixHits != 60-templates {
		t.Errorf("hits/misses = %d/%d, want %d/%d",
			res.PrefixHits, res.PrefixMisses, 60-templates, templates)
	}
	if want := (60 - templates) * 1792; res.CachedTokens != want {
		t.Errorf("cached tokens %d, want %d", res.CachedTokens, want)
	}

	c.PrefixCache = false
	off, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if off.PrefixHits != 0 || off.CachedTokens != 0 {
		t.Errorf("disabled cache recorded hits: %+v", off)
	}
	if off.GenTokens != res.GenTokens || off.Completed != res.Completed {
		t.Errorf("cache changed useful work: %d/%d tokens, %d/%d completed",
			res.GenTokens, off.GenTokens, res.Completed, off.Completed)
	}
	if res.GenTokensPerSec < off.GenTokensPerSec {
		t.Errorf("prefix cache lowered throughput: %.1f vs %.1f tok/s",
			res.GenTokensPerSec, off.GenTokensPerSec)
	}
	if res.Makespan >= off.Makespan {
		t.Errorf("prefix cache did not shorten makespan: %.2f vs %.2f",
			res.Makespan, off.Makespan)
	}
}

// The tentpole acceptance criterion: on a shared-system-prompt trace the
// cached replay sustains at least 2x the useful tok/s of CompareNoCache's
// uncached twin.
func TestCompareNoCacheSharedPromptSpeedup(t *testing.T) {
	c := palm540bConfig()
	c.MaxAdmit = 4
	// Heavy traffic so the comparison measures service rate, not arrivals.
	trace := SharedPrefixTrace(120, 0.01, 1792, 3, 1)
	cmp, err := CompareNoCache(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Cached.Completed != 120 || cmp.Uncached.Completed != 120 {
		t.Fatalf("completions: cached %d, uncached %d", cmp.Cached.Completed, cmp.Uncached.Completed)
	}
	if cmp.Cached.GenTokens != cmp.Uncached.GenTokens {
		t.Fatalf("useful tokens differ: %d vs %d", cmp.Cached.GenTokens, cmp.Uncached.GenTokens)
	}
	if cmp.Speedup < 2 {
		t.Errorf("shared-prompt speedup %.2fx, want >= 2x (cached %.1f vs uncached %.1f tok/s)",
			cmp.Speedup, cmp.Cached.GenTokensPerSec, cmp.Uncached.GenTokensPerSec)
	}
	t.Logf("prefix cache: %.1f tok/s vs %.1f tok/s (%.2fx, %d tokens served from cache)",
		cmp.Cached.GenTokensPerSec, cmp.Uncached.GenTokensPerSec,
		cmp.Speedup, cmp.Cached.CachedTokens)
}

// Chunked prefill must cap the worst-case iteration (the stall running
// sequences eat when a long prompt arrives) while completing the same
// work.
func TestPrefillChunkCapsIterationStall(t *testing.T) {
	c := palm540bConfig()
	c.MaxAdmit = 4
	trace := ChatbotTrace(80, 0.02, 7)

	whole, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	c.PrefillChunk = 256
	chunked, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Completed != whole.Completed || chunked.GenTokens != whole.GenTokens {
		t.Fatalf("chunking changed useful work: %d/%d tokens", chunked.GenTokens, whole.GenTokens)
	}
	if chunked.MaxIterTime >= whole.MaxIterTime {
		t.Errorf("chunking did not cap the stall: max iteration %.4fs vs %.4fs",
			chunked.MaxIterTime, whole.MaxIterTime)
	}
	// The cap costs iterations, not correctness.
	if chunked.Iterations <= whole.Iterations {
		t.Errorf("chunked run used %d iterations vs %d — chunking should add admission iterations",
			chunked.Iterations, whole.Iterations)
	}

	c.PrefillChunk = -1
	if _, err := Simulate(c, trace); err == nil {
		t.Error("negative prefill chunk accepted")
	}
}

// Chunking composes with the prefix cache: cached admissions have less to
// chunk, so first tokens come earlier and throughput is no worse. Under
// chunking a template warms only when its seeding prefill *completes*, so
// same-template admissions during that window are honest misses — more
// than one miss per template is expected under heavy arrivals.
func TestPrefillChunkWithPrefixCache(t *testing.T) {
	c := palm540bConfig()
	c.MaxAdmit = 4
	c.PrefillChunk = 256
	const templates = 2
	trace := SharedPrefixTrace(60, 0.02, 1792, templates, 3)
	cmp, err := CompareNoCache(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	res := cmp.Cached
	if res.PrefixHits+res.PrefixMisses != 60 {
		t.Fatalf("hits %d + misses %d != 60", res.PrefixHits, res.PrefixMisses)
	}
	if res.PrefixMisses < templates || res.PrefixHits < 1 {
		t.Errorf("hits/misses = %d/%d; want >= 1 hit and >= %d misses",
			res.PrefixHits, res.PrefixMisses, templates)
	}
	if want := res.PrefixHits * 1792; res.CachedTokens != want {
		t.Errorf("cached tokens %d, want hits×prefix = %d", res.CachedTokens, want)
	}
	if cmp.Speedup < 1 {
		t.Errorf("cache + chunking slower than chunking alone: %.2fx", cmp.Speedup)
	}
	if res.MeanLatency >= cmp.Uncached.MeanLatency {
		t.Errorf("cached chunked latency %.2fs not below uncached %.2fs",
			res.MeanLatency, cmp.Uncached.MeanLatency)
	}
}

// Regression: a template must warm only when its seeding prefill has
// actually completed. Two same-template requests admitted together under
// chunking both miss (the prefix is not cached yet); a third arriving
// after they finish hits.
func TestPrefixWarmsOnPrefillCompletion(t *testing.T) {
	c := palm540bConfig()
	c.PrefixCache = true
	c.PrefillChunk = 64
	trace := Trace{Requests: []Request{
		{ID: 0, Arrival: 0, Context: 1024, Gen: 4, Template: 1, PrefixLen: 960, Slot: -1},
		{ID: 1, Arrival: 0, Context: 1024, Gen: 4, Template: 1, PrefixLen: 960, Slot: -1},
		{ID: 2, Arrival: 1e6, Context: 1024, Gen: 4, Template: 1, PrefixLen: 960, Slot: -1},
	}}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefixMisses != 2 || res.PrefixHits != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/2: concurrent admissions must not hit an uncached prefix",
			res.PrefixHits, res.PrefixMisses)
	}
	if res.CachedTokens != 960 {
		t.Errorf("cached tokens %d, want 960", res.CachedTokens)
	}
}

// A malformed template (prefix covering the whole prompt) is a trace bug
// and must fail loudly, not skew accounting.
func TestSimulateRejectsBadPrefix(t *testing.T) {
	c := palm540bConfig()
	c.PrefixCache = true
	for name, req := range map[string]Request{
		"prefix==context": {ID: 0, Context: 512, Gen: 8, Template: 1, PrefixLen: 512},
		"prefix>context":  {ID: 0, Context: 512, Gen: 8, Template: 1, PrefixLen: 600},
		"negative prefix": {ID: 0, Context: 512, Gen: 8, Template: 1, PrefixLen: -1},
	} {
		if _, err := Simulate(c, Trace{Requests: []Request{req}}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Template 0 ignores PrefixLen entirely.
	ok := Trace{Requests: []Request{{ID: 0, Context: 512, Gen: 8, PrefixLen: 512}}}
	if _, err := Simulate(c, ok); err != nil {
		t.Errorf("template-free request rejected: %v", err)
	}
}
