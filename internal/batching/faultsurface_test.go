package batching

import (
	"math"
	"testing"
)

// stepUntilAdmitted steps the scheduler until at least want slots are
// occupied (admission happens inside Step).
func stepUntilAdmitted(t *testing.T, s *Scheduler, want int) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatalf("never admitted %d requests", want)
		}
		if occupied := 0; true {
			for _, r := range s.Requests() {
				if r.Slot >= 0 {
					occupied++
				}
			}
			if occupied >= want {
				return
			}
		}
		s.Step()
	}
}

func TestCrashReturnsLostWork(t *testing.T) {
	c := palm540bConfig()
	c.Slots = 2
	s, err := NewScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*Request, 4)
	for i := range reqs {
		reqs[i] = &Request{ID: i, Context: 64, Gen: 32, Slot: -1}
		s.Enqueue(reqs[i])
	}
	stepUntilAdmitted(t, s, 2)
	s.Step() // produce at least one decode token in the admitted slots
	lost := s.Crash()
	if len(lost) != 4 {
		t.Fatalf("crash returned %d pieces of lost work, want 4", len(lost))
	}
	inFlight, queued := 0, 0
	for _, lw := range lost {
		if lw.Queued {
			queued++
			if lw.Prefilled != 0 || lw.Decoded != 0 {
				t.Errorf("queued request %d lost %d/%d tokens — nothing was computed for it",
					lw.Req.ID, lw.Prefilled, lw.Decoded)
			}
			continue
		}
		inFlight++
		if lw.Prefilled == 0 {
			t.Errorf("in-flight request %d lost no prefilled positions", lw.Req.ID)
		}
		if lw.Req.Slot != -1 {
			t.Errorf("request %d still claims slot %d after the crash", lw.Req.ID, lw.Req.Slot)
		}
	}
	if inFlight != 2 || queued != 2 {
		t.Fatalf("lost %d in-flight + %d queued, want 2+2", inFlight, queued)
	}
	if s.Busy() {
		t.Error("crashed scheduler still busy")
	}
	if got := s.Requests(); len(got) != 0 {
		t.Errorf("crashed scheduler still holds %d requests", len(got))
	}
	// The prefix cache died with the replica.
	if s.HasTemplate(1) {
		t.Error("warm-template set survived the crash")
	}
	// A crashed scheduler is reusable after recovery: re-enqueued work runs.
	r := &Request{ID: 9, Context: 64, Gen: 4, Slot: -1}
	s.Enqueue(r)
	done := drain(t, s)
	if len(done) != 1 || done[0] != r {
		t.Fatalf("post-crash scheduler did not serve a fresh request")
	}
}

func TestEvictQueuedKeepsInFlight(t *testing.T) {
	c := palm540bConfig()
	c.Slots = 2
	s, err := NewScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Enqueue(&Request{ID: i, Context: 64, Gen: 8, Slot: -1})
	}
	stepUntilAdmitted(t, s, 2)
	evicted := s.EvictQueued()
	if len(evicted) != 2 {
		t.Fatalf("evicted %d, want the 2 queued requests", len(evicted))
	}
	for _, r := range evicted {
		if r.Slot >= 0 {
			t.Errorf("evicted request %d was in slot %d", r.ID, r.Slot)
		}
	}
	// The two in-flight requests still finish locally.
	done := drain(t, s)
	if len(done) != 2 {
		t.Fatalf("drained %d in-flight requests after eviction, want 2", len(done))
	}
}

func TestSetSlowdownStretchesTime(t *testing.T) {
	c := palm540bConfig()
	mk := func(factor float64) float64 {
		s, err := NewScheduler(c)
		if err != nil {
			t.Fatal(err)
		}
		s.SetSlowdown(factor)
		s.Enqueue(&Request{ID: 0, Context: 128, Gen: 32, Slot: -1})
		drain(t, s)
		return s.Now()
	}
	base := mk(1)
	slow := mk(3)
	if math.Abs(slow-3*base) > 1e-9 {
		t.Errorf("3x straggler finished in %.6fs, want exactly 3x the healthy %.6fs", slow, base)
	}
	// Estimates stretch with the same factor.
	s, _ := NewScheduler(c)
	est1 := s.EstimateFinish(&Request{Context: 128, Gen: 32}, false)
	s.SetSlowdown(3)
	if est3 := s.EstimateFinish(&Request{Context: 128, Gen: 32}, false); math.Abs(est3-3*est1) > 1e-9 {
		t.Errorf("estimate %.6f under 3x slowdown, want 3x %.6f", est3, est1)
	}
	// Degenerate factors clamp to 1: the perf model is the speed of light.
	for _, bad := range []float64{0, 0.5, -2, math.NaN(), math.Inf(1), math.Inf(-1)} {
		s.SetSlowdown(bad)
		if s.Slowdown() != 1 {
			t.Errorf("SetSlowdown(%v) left factor %v, want clamp to 1", bad, s.Slowdown())
		}
	}
}

func TestSetUnifiedContinuesIntoDecode(t *testing.T) {
	c := palm540bConfig()
	c.Slots = 2
	s, err := NewPrefillScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	r := &Request{ID: 0, Context: 64, Gen: 16, Slot: -1}
	s.Enqueue(r)
	s.SetUnified()
	done := drain(t, s)
	if len(done) != 1 {
		t.Fatalf("unified-converted scheduler completed %d/1", len(done))
	}
	// A prefill-only run of the same request completes much earlier — the
	// converted scheduler must have paid the decode phase.
	p, err := NewPrefillScheduler(c)
	if err != nil {
		t.Fatal(err)
	}
	p.Enqueue(&Request{ID: 1, Context: 64, Gen: 16, Slot: -1})
	drain(t, p)
	if s.Now() <= p.Now() {
		t.Errorf("converted scheduler finished at %.4fs, prefill-only at %.4fs — no decode happened",
			s.Now(), p.Now())
	}
}
