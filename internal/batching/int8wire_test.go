package batching

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// WireDType threads through every per-iteration cost the scheduler pays:
// replaying the same trace with int8 collective payloads can only speed
// iterations up (admission prefills and decode steps both carry exposed
// communication), so the makespan shrinks and useful tok/s rises.
func TestSimulateInt8WireNoSlower(t *testing.T) {
	base := Config{
		Model:    model.PaLM540BPadded(),
		Weights:  model.Int8,
		System:   hardware.TPUv4Slice(4, 4, 4),
		FFN:      partition.FFN2DWeightStationary,
		Attn:     partition.AttnShardBatch,
		Slots:    64,
		MaxLen:   2048 + 256,
		MaxAdmit: 4,
		Knobs:    perf.DefaultKnobs(),
	}
	trace := ChatbotTrace(50, 0.05, 3)

	bf, err := Simulate(base, trace)
	if err != nil {
		t.Fatal(err)
	}
	q8cfg := base
	q8cfg.WireDType = model.Int8
	q8, err := Simulate(q8cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if q8.Completed != bf.Completed {
		t.Fatalf("completion mismatch: %d vs %d", q8.Completed, bf.Completed)
	}
	if q8.Makespan > bf.Makespan {
		t.Errorf("int8 wire makespan %.3fs exceeds bf16 %.3fs", q8.Makespan, bf.Makespan)
	}
	if q8.GenTokensPerSec < bf.GenTokensPerSec {
		t.Errorf("int8 wire tok/s %.1f below bf16 %.1f", q8.GenTokensPerSec, bf.GenTokensPerSec)
	}
}
