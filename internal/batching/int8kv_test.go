package batching

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// The scheduler's admission budget runs on true cache bytes: a
// Slots×MaxLen product whose bf16 KV cache overflows the chips' HBM at
// full occupancy validates — and simulates — with the int8 cache, so the
// same hardware genuinely admits ~2x the context per slot.
func TestSimulateInt8KVAdmitsDoubledContext(t *testing.T) {
	base := Config{
		Model:   model.PaLM540BPadded(),
		Weights: model.Int8,
		System:  hardware.TPUv4Slice(4, 4, 4),
		FFN:     partition.FFN2DWeightStationary,
		Attn:    partition.AttnShardBatch,
		Slots:   256,
		MaxLen:  50000, // past the bf16 full-occupancy OOM boundary (~46k)
		Knobs:   perf.DefaultKnobs(),
	}
	trace := ChatbotTrace(20, 0.1, 3)

	if _, err := Simulate(base, trace); err == nil {
		t.Fatal("bf16 KV at 256 slots x 50000 tokens should fail admission validation")
	}
	q8 := base
	q8.KVDType = model.Int8
	res, err := Simulate(q8, trace)
	if err != nil {
		t.Fatalf("int8 KV should validate at the doubled context: %v", err)
	}
	if res.Completed != len(trace.Requests) {
		t.Errorf("completed %d of %d requests", res.Completed, len(trace.Requests))
	}
}
