package batching

// Shared order statistics for the serving layers. Every percentile the
// stack reports — request-latency p50/p95/p99 here, the fleet's recovery
// p99 and the autoscaler's per-tick backlog percentiles — runs through one
// guarded helper instead of N hand-rolled sort-and-index snippets, each
// with its own empty-slice crash waiting to happen.

import (
	"math"
	"sort"
)

// Percentile returns the p-quantile of xs by the nearest-rank scheme the
// latency reports use: the element at index floor(p × (n-1)) of the sorted
// values. The input is not mutated (a copy is sorted). Edge handling is
// explicit rather than accidental:
//
//   - empty input returns 0 (a report's "no samples" value, matching the
//     zero-valued RecoveryP99 of a run in which nothing recovered);
//   - a single sample is every percentile of itself;
//   - p is clamped to [0, 1], and NaN p returns NaN (a NaN probability is
//     a caller bug worth surfacing, not a sample to guess at).
func Percentile(xs []float64, p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is the indexing core for callers that already hold a
// sorted sample and read several percentiles from it (latencyStats, the
// fleet's Result assembly): one sort, many lookups.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return sorted[int(p*float64(len(sorted)-1))]
}
