package batching

import (
	"math"
	"testing"
)

// The percentile helper is shared by request-latency stats, the fleet's
// RecoveryP99, and the autoscaler's per-tick backlog percentiles — so its
// edge handling is pinned by table, not by whichever caller trips first.
func TestPercentileTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 0.99, 0},
		{"empty-zero-p", []float64{}, 0, 0},
		{"single", []float64{7}, 0.99, 7},
		{"single-p0", []float64{7}, 0, 7},
		{"two-p50", []float64{1, 3}, 0.50, 1},
		// floor(0.99 × 1) = 0: the scheme floors, it does not round up.
		{"two-p99", []float64{1, 3}, 0.99, 1},
		{"unsorted", []float64{9, 1, 5}, 0.50, 5},
		{"p0-is-min", []float64{4, 2, 8}, 0, 2},
		{"p1-is-max", []float64{4, 2, 8}, 1, 8},
		{"clamp-low", []float64{4, 2, 8}, -0.5, 2},
		{"clamp-high", []float64{4, 2, 8}, 1.5, 8},
		{"nearest-rank-floor", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 9},
		{"median-odd", []float64{5, 1, 9, 3, 7}, 0.50, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Percentile(c.xs, c.p); got != c.want {
				t.Errorf("Percentile(%v, %g) = %g, want %g", c.xs, c.p, got, c.want)
			}
		})
	}
	if got := Percentile([]float64{1, 2}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN p returned %g, want NaN", got)
	}
	// The input is not mutated: an unsorted caller slice stays unsorted.
	xs := []float64{9, 1, 5}
	Percentile(xs, 0.5)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

// Snapshot prices the backlog the way EstimateFinish does, and DrainToEmpty
// realizes it: the snapshot's drain estimate must be positive exactly when
// the scheduler is busy, fall as work completes, and hit zero when
// DrainToEmpty has flushed everything.
func TestSnapshotAndDrainToEmpty(t *testing.T) {
	s, err := NewScheduler(palm540bConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b := s.Snapshot(); b.DrainTime != 0 || b.Pending != 0 || b.Active != 0 {
		t.Fatalf("idle snapshot %+v, want all zero", b)
	}
	reqs := []Request{
		{ID: 0, Arrival: 0, Context: 256, Gen: 32, Slot: -1},
		{ID: 1, Arrival: 0, Context: 512, Gen: 64, Slot: -1},
		{ID: 2, Arrival: 0, Context: 128, Gen: 16, Slot: -1},
	}
	for i := range reqs {
		s.Enqueue(&reqs[i])
	}
	b := s.Snapshot()
	if b.Pending != 3 || b.Active != 0 {
		t.Fatalf("queued snapshot %+v, want 3 pending", b)
	}
	if b.DrainTime <= 0 || b.PrefillWork <= 0 {
		t.Fatalf("queued snapshot prices nothing: %+v", b)
	}
	if b.RemainingTokens != 32+64+16 {
		t.Fatalf("remaining tokens %d, want %d", b.RemainingTokens, 32+64+16)
	}
	s.Step()
	mid := s.Snapshot()
	if mid.DrainTime <= 0 || mid.DrainTime >= b.DrainTime {
		t.Errorf("after one step drain %.4f, want in (0, %.4f)", mid.DrainTime, b.DrainTime)
	}
	// The straggler slowdown stretches the estimate like it stretches steps.
	s.SetSlowdown(3)
	slow := s.Snapshot()
	if slow.DrainTime <= 2*mid.DrainTime {
		t.Errorf("3x slowdown drain %.4f, want > 2x of %.4f", slow.DrainTime, mid.DrainTime)
	}
	s.SetSlowdown(1)
	pre := completedBefore(reqs)
	done := s.DrainToEmpty()
	if len(done)+pre != 3 {
		t.Fatalf("drain-to-empty finished %d + %d already done, want 3 total", len(done), pre)
	}
	if s.Busy() {
		t.Error("scheduler busy after DrainToEmpty")
	}
	if b := s.Snapshot(); b.DrainTime != 0 || b.RemainingTokens != 0 {
		t.Errorf("drained snapshot %+v, want empty", b)
	}
	for i := range reqs {
		if reqs[i].Done <= 0 {
			t.Errorf("request %d never completed (drain dropped resident KV?)", i)
		}
	}
}

// completedBefore counts requests that already finished before DrainToEmpty
// ran (the first Step may complete short requests).
func completedBefore(reqs []Request) int {
	n := 0
	for i := range reqs {
		if reqs[i].Done > 0 {
			n++
		}
	}
	return n
}
