// Package batching implements iteration-level ("continuous") batching for
// the decode phase, the scheduling discipline serving systems such as
// DeepSpeed Inference and Orca use to keep the decode batch full under
// heavy, mixed-length traffic. Where package serve models *static* batches
// — every sequence enters and leaves together, padded to a common shape —
// this package schedules at the granularity the paper's cost model already
// exposes: one decode step. Each request owns one KV-cache slot from
// admission to completion; the moment a sequence finishes, its slot is
// released and the next queued prompt is prefilled into it while the rest
// of the batch keeps decoding (the engine-level counterpart is
// engine.PrefillSlot + engine.DecodeSlots).
//
// All times come from the calibrated perf model: admission pays the batch-1
// prefill cost of the actual prompt length, and every iteration pays one
// decode-step cost at the *actual* batch occupancy and mean context — no
// padding to the longest sequence, which is exactly the waste the
// comparison against package serve quantifies (CompareStatic).
//
// Two admission optimizations ride on top. Prefix caching
// (Config.PrefixCache) lets requests that share a prompt template skip its
// prefill after the template's first admission — the serving-layer view of
// engine.PrefillSlotFrom — and CompareNoCache quantifies the useful-token
// win on template-heavy traffic. Chunked prefill (Config.PrefillChunk)
// admits long cold prompts in bounded per-iteration chunks interleaved
// with decode steps, capping the decode-latency stall an arrival can
// inflict on running sequences (Result.MaxIterTime).
//
// # Sentinel errors
//
// This package is the single home of the sentinel family every serving
// layer (serve, batching, fleet, the esti facade) shares; all of them are
// checkable with errors.Is against wrapped returns:
//
//   - ErrInvalidConfig — a configuration that can never run (bad slot
//     count, capacity, chunk size; an invalid fault plan). Identical to
//     serve.ErrInvalidConfig.
//   - ErrInfeasible — a deployment the perf model rejects at full
//     occupancy. Identical to serve.ErrInfeasible.
//   - ErrInvalidTrace — a malformed trace request (non-finite arrival,
//     prefix outside the prompt): a bug, not load.
//   - ErrPromptTooLong — Context+Gen exceed per-slot KV capacity; no slot
//     could ever hold the request.
//   - ErrNoSlots — admission refused with every slot occupied and the
//     queue at its bound.
//   - ErrDeadline — shed because the estimated completion already misses
//     the request's deadline, at admission or on a post-crash retry (the
//     fleet counts the two separately: Result.Shed vs Result.ShedRetry).
//   - ErrOverloaded — a low-priority request shed under overload (queue
//     cap or brownout) so higher tiers keep their SLO.
//   - ErrReplicaDown — work lost to a replica failure: the terminal
//     outcome after retries are exhausted, and the wasted-work cause for
//     KV that died in a crash.
//   - ErrHedged — the losing copy of a hedged request; its tokens count
//     as wasted work, the caller still gets the winner's.
package batching

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// Request is one serving request in a trace: a prompt of Context tokens
// arriving at Arrival, wanting Gen generated tokens.
type Request struct {
	ID      int
	Arrival float64
	Context int
	Gen     int
	// Template identifies the shared prompt this request opens with (0 =
	// none): its first PrefixLen tokens are identical across every request
	// carrying the same Template — a system prompt or few-shot preamble.
	// With Config.PrefixCache enabled, the first admission of a template
	// prefills and caches those tokens and every later admission skips
	// them, prefilling only its Context-PrefixLen suffix.
	Template  int
	PrefixLen int
	// Deadline is the absolute time by which the request's last token must
	// be generated (0 = no deadline). The single-replica Simulate records
	// but does not enforce it; the fleet router's SLO admission sheds
	// requests whose estimated completion misses it (ErrDeadline) and
	// counts completions past it against goodput.
	Deadline float64
	// Priority orders admission under contention: higher values are
	// admitted first (equal priorities stay FIFO; the zero value reproduces
	// plain FIFO). Under overload the fleet sheds the lowest tier first.
	Priority int
	// Filled by Simulate:
	Admitted float64 // when the request entered a slot
	Done     float64 // when its last token was generated
	Slot     int     // the slot it occupied (-1 if rejected)
}

// Latency is the request's end-to-end time including queueing.
func (r Request) Latency() float64 { return r.Done - r.Arrival }

// Trace is an ordered request stream.
type Trace struct {
	Requests []Request
}

// MaxContext returns the longest prompt in the trace.
func (t Trace) MaxContext() int {
	max := 0
	for _, r := range t.Requests {
		if r.Context > max {
			max = r.Context
		}
	}
	return max
}

// MaxGen returns the longest generation length in the trace.
func (t Trace) MaxGen() int {
	max := 0
	for _, r := range t.Requests {
		if r.Gen > max {
			max = r.Gen
		}
	}
	return max
}

// TotalGen sums the useful (requested) generation lengths.
func (t Trace) TotalGen() int {
	total := 0
	for _, r := range t.Requests {
		total += r.Gen
	}
	return total
}

// ChatbotTrace builds a deterministic mixed-length chatbot workload in the
// neighborhood of the paper's chatbot setting (2048 input / 64 output):
// prompts range from short follow-up turns to full-context documents and
// generation lengths from terse answers to long completions, arriving at a
// fixed interarrival. The mix is what static batching cannot exploit — a
// static batch pads every sequence to the longest — and what slot-level
// admission feeds on.
func ChatbotTrace(n int, interarrival float64, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	contexts := []int{128, 256, 512, 1024, 2048}
	ctxWeights := []float64{0.15, 0.25, 0.3, 0.2, 0.1}
	gens := []int{16, 32, 64, 128, 256}
	genWeights := []float64{0.2, 0.3, 0.3, 0.15, 0.05}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:      i,
			Arrival: float64(i) * interarrival,
			Context: contexts[pick(rng, ctxWeights)],
			Gen:     gens[pick(rng, genWeights)],
			Slot:    -1,
		}
	}
	return Trace{Requests: reqs}
}

// SharedPrefixTrace builds a template-heavy chatbot workload: every request
// opens with one of `templates` shared prefixLen-token system prompts and
// appends a short user turn, the traffic shape of a production assistant
// serving millions of users from a handful of prompt templates. Without
// prefix caching each admission re-prefills the template; with it only the
// first request per template pays, which CompareNoCache quantifies.
func SharedPrefixTrace(n int, interarrival float64, prefixLen, templates int, seed int64) Trace {
	if templates < 1 {
		templates = 1
	}
	rng := rand.New(rand.NewSource(seed))
	suffixes := []int{32, 64, 128, 256}
	sufWeights := []float64{0.3, 0.3, 0.25, 0.15}
	gens := []int{16, 32, 64, 128}
	genWeights := []float64{0.25, 0.35, 0.25, 0.15}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:        i,
			Arrival:   float64(i) * interarrival,
			Context:   prefixLen + suffixes[pick(rng, sufWeights)],
			Gen:       gens[pick(rng, genWeights)],
			Template:  1 + rng.Intn(templates),
			PrefixLen: prefixLen,
			Slot:      -1,
		}
	}
	return Trace{Requests: reqs}
}

// ZipfPrefixTrace is SharedPrefixTrace with Zipf-distributed template
// popularity: template ranks are drawn from a Zipf(s) law, so a handful of
// head templates dominate the stream while a long tail appears rarely —
// the popularity shape of real multi-tenant template traffic, and the one
// that makes prefix-affinity routing matter (a router that concentrates
// each hot template's requests on one replica turns almost all of them
// into prefix hits; spreading them uniformly warms every replica's cache
// with every template before hits accrue). s must be > 1 (larger = more
// skewed; ~1.1 is mild, ~2 is heavily head-dominated).
func ZipfPrefixTrace(n int, interarrival float64, prefixLen, templates int, s float64, seed int64) Trace {
	if templates < 1 {
		templates = 1
	}
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(templates-1))
	suffixes := []int{32, 64, 128, 256}
	sufWeights := []float64{0.3, 0.3, 0.25, 0.15}
	gens := []int{16, 32, 64, 128}
	genWeights := []float64{0.25, 0.35, 0.25, 0.15}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:        i,
			Arrival:   float64(i) * interarrival,
			Context:   prefixLen + suffixes[pick(rng, sufWeights)],
			Gen:       gens[pick(rng, genWeights)],
			Template:  1 + int(zipf.Uint64()),
			PrefixLen: prefixLen,
			Slot:      -1,
		}
	}
	return Trace{Requests: reqs}
}

// WithSLO stamps deadlines and priority tiers onto a trace: every request
// gets Deadline = Arrival + slack, and a highFrac fraction are promoted to
// Priority 1 with the tighter slack/2 deadline — the latency-critical tier
// the fleet's SLO admission protects under overload. The input trace is
// unchanged; a stamped copy is returned.
func WithSLO(t Trace, slack, highFrac float64, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, len(t.Requests))
	copy(reqs, t.Requests)
	for i := range reqs {
		if rng.Float64() < highFrac {
			reqs[i].Priority = 1
			reqs[i].Deadline = reqs[i].Arrival + slack/2
		} else {
			reqs[i].Deadline = reqs[i].Arrival + slack
		}
	}
	return Trace{Requests: reqs}
}

func pick(rng *rand.Rand, weights []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Config describes the continuous-batching deployment: one chip slice
// serving both phases, with Slots concurrent sequences.
type Config struct {
	Model   model.Config
	Weights model.DType
	// KVDType is the KV-cache storage format (BF16 default). Int8 halves
	// per-slot cache bytes, so the same HBM admits roughly twice the
	// Slots×MaxLen product — the admission budget validate() enforces —
	// and every decode iteration pays half the KV memory traffic.
	KVDType model.DType
	// WireDType is the activation collective payload format (BF16
	// default; Int8 halves every iteration's exposed communication time —
	// the engine-level counterpart is engine.Options.Int8Wire).
	WireDType model.DType
	System    hardware.System
	FFN       partition.FFNLayout
	Attn      partition.AttnLayout
	// Slots is the number of concurrent sequences (the decode batch when
	// full).
	Slots int
	// MaxLen is the per-slot KV capacity; requests with Context+Gen >
	// MaxLen are rejected at admission.
	MaxLen int
	// MaxAdmit caps admissions per iteration (0 = no cap). Inline prefill
	// stalls the whole batch for its duration, so real schedulers bound
	// how much prefill work a single iteration may absorb.
	MaxAdmit int
	// PrefixCache enables shared-prefix reuse: the first admission of each
	// Template prefills and caches its PrefixLen-token prompt prefix; every
	// later admission of that template skips it, prefilling only the
	// suffix (the engine-level counterpart is engine.PrefillSlotFrom).
	PrefixCache bool
	// PrefillChunk bounds the *total* prompt tokens prefilled per
	// iteration across all slots (0 = whole prompts inline at admission).
	// Chunking admits long cold prompts incrementally, interleaved with
	// decode iterations: a 2048-token arrival stalls each decode step by
	// at most one chunk's prefill instead of stalling the batch for the
	// entire prompt — Result.MaxIterTime is the decode-latency cap this
	// buys, at the price of later first tokens for the chunked prompts.
	PrefillChunk int
	Knobs        perf.Knobs
}

func (c Config) validate() error {
	if c.Slots < 1 {
		return fmt.Errorf("batching: %w: %d slots", ErrInvalidConfig, c.Slots)
	}
	if c.MaxLen < 2 {
		return fmt.Errorf("batching: %w: per-slot capacity %d < 2", ErrInvalidConfig, c.MaxLen)
	}
	if c.PrefillChunk < 0 {
		return fmt.Errorf("batching: %w: negative prefill chunk %d", ErrInvalidConfig, c.PrefillChunk)
	}
	// Feasibility at full occupancy and depth: if the KV cache of Slots
	// sequences at MaxLen doesn't fit beside the weights, the deployment
	// can never run full.
	probe := perf.Decode(perf.Request{
		Model: c.Model, System: c.System, Weights: c.Weights,
		KVDType: c.KVDType, WireDType: c.WireDType,
		FFN: c.FFN, Attn: c.Attn,
		Batch: c.Slots, Context: c.MaxLen - 1, Gen: 1,
	}, c.Knobs)
	if !probe.Feasible {
		return fmt.Errorf("batching: %w at full occupancy: %s", ErrInfeasible, probe.Reason)
	}
	return nil
}

// CheckRequest classifies one request against this configuration: nil for
// an admissible request, ErrInvalidTrace for a malformed one (builder bug),
// ErrPromptTooLong for one no slot could ever hold. Simulate applies the
// same classification (malformed aborts the run, too-long counts as
// Rejected); the fleet router applies it per arrival before routing.
func (c Config) CheckRequest(r Request) error {
	if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) || r.Arrival < 0 {
		return fmt.Errorf("batching: %w: request %d arrival %g", ErrInvalidTrace, r.ID, r.Arrival)
	}
	if r.Template != 0 && (r.PrefixLen < 0 || r.PrefixLen >= r.Context) {
		return fmt.Errorf("batching: %w: request %d prefix %d outside [0, context %d)",
			ErrInvalidTrace, r.ID, r.PrefixLen, r.Context)
	}
	if r.Context < 1 || r.Gen < 1 || r.Context+r.Gen > c.MaxLen {
		return fmt.Errorf("batching: %w: request %d wants %d+%d of %d",
			ErrPromptTooLong, r.ID, r.Context, r.Gen, c.MaxLen)
	}
	return nil
}

// Result summarizes a continuous-batching simulation.
type Result struct {
	Completed int
	Rejected  int // requests exceeding per-slot capacity
	Makespan  float64
	// GenTokens counts useful generated tokens (each request's actual Gen).
	GenTokens       int
	GenTokensPerSec float64
	MeanLatency     float64
	P50, P95, P99   float64
	// MeanOccupancy is the time-weighted fraction of slots holding a live
	// sequence — the quantity continuous batching exists to maximize.
	MeanOccupancy float64
	// Iterations counts scheduler iterations (decode steps and/or
	// admission rounds).
	Iterations int
	// MaxIterTime is the longest single iteration — the worst decode-step
	// stall a running sequence observed. Chunked prefill exists to cap it.
	MaxIterTime float64
	// Prefix-cache accounting: admissions that found their template's
	// prefix cached (Hits) or prefilled and cached it (Misses), and the
	// total prompt tokens served from cache instead of recomputed.
	PrefixHits, PrefixMisses int
	CachedTokens             int
	PerRequest               []Request
}

// slotState tracks one occupied slot.
type slotState struct {
	req      *Request
	produced int // tokens generated so far (finishing prefill yields the first)
	ctxDone  int // prompt tokens in the KV cache (cached prefix + prefilled)
	toGo     int // prompt tokens still to prefill (> 0: not yet decoding)
	// seedsTemplate is the template this slot's prefill will make cached
	// (0 = none): the template warms only once the prefix actually sits in
	// the cache, i.e. when this prefill completes.
	seedsTemplate int
	// decodeOnly marks a handoff admission: the KV arrived from a prefill
	// replica, so this slot never prefills and its first token is credited
	// elsewhere.
	decodeOnly bool
}

// Simulate runs the iteration-level scheduler over the trace and returns
// per-request and aggregate metrics. Discipline per iteration:
//
//  1. Admit queued requests into free slots, oldest first (bounded by
//     MaxAdmit). With PrefixCache, an admission whose template is already
//     cached skips its PrefixLen-token prefix and prefills only the
//     suffix. With PrefillChunk == 0 the (remaining) prompt prefills
//     inline at admission and yields the request's first token.
//  2. With PrefillChunk > 0, every mid-prefill slot advances one bounded
//     chunk instead; a slot whose final chunk completes yields its first
//     token this iteration.
//  3. Run one decode step over the slots that were already running, at
//     their actual count and mean context.
//  4. Completions free their slots immediately, so the next iteration can
//     admit into them — the batch never drains to refill.
//
// The simulation is deterministic: same config and trace, same result.
func Simulate(c Config, trace Trace) (Result, error) {
	sched, err := NewScheduler(c)
	if err != nil {
		return Result{}, err
	}

	reqs := make([]Request, len(trace.Requests))
	copy(reqs, trace.Requests)
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Arrival < reqs[b].Arrival })

	eligible := make([]*Request, 0, len(reqs))
	rejected := 0
	for i := range reqs {
		r := &reqs[i]
		switch err := c.CheckRequest(*r); {
		case errors.Is(err, ErrInvalidTrace):
			// A malformed request is a trace-builder bug, not load to shed
			// (and a non-finite arrival would stall the event loop forever).
			return Result{}, err
		case errors.Is(err, ErrPromptTooLong):
			r.Slot = -1
			rejected++
		default:
			eligible = append(eligible, r)
		}
	}

	next := 0
	for sched.completed < len(eligible) {
		for next < len(eligible) && eligible[next].Arrival <= sched.Now() {
			sched.Enqueue(eligible[next])
			next++
		}
		if !sched.Busy() {
			// Idle: jump to the next arrival.
			sched.AdvanceTo(eligible[next].Arrival)
			continue
		}
		sched.Step()
	}
	return sched.result(reqs, eligible, rejected), nil
}

func nan() float64 { return math.NaN() }
