// Package batching implements iteration-level ("continuous") batching for
// the decode phase, the scheduling discipline serving systems such as
// DeepSpeed Inference and Orca use to keep the decode batch full under
// heavy, mixed-length traffic. Where package serve models *static* batches
// — every sequence enters and leaves together, padded to a common shape —
// this package schedules at the granularity the paper's cost model already
// exposes: one decode step. Each request owns one KV-cache slot from
// admission to completion; the moment a sequence finishes, its slot is
// released and the next queued prompt is prefilled into it while the rest
// of the batch keeps decoding (the engine-level counterpart is
// engine.PrefillSlot + engine.DecodeSlots).
//
// All times come from the calibrated perf model: admission pays the batch-1
// prefill cost of the actual prompt length, and every iteration pays one
// decode-step cost at the *actual* batch occupancy and mean context — no
// padding to the longest sequence, which is exactly the waste the
// comparison against package serve quantifies (CompareStatic).
//
// Two admission optimizations ride on top. Prefix caching
// (Config.PrefixCache) lets requests that share a prompt template skip its
// prefill after the template's first admission — the serving-layer view of
// engine.PrefillSlotFrom — and CompareNoCache quantifies the useful-token
// win on template-heavy traffic. Chunked prefill (Config.PrefillChunk)
// admits long cold prompts in bounded per-iteration chunks interleaved
// with decode steps, capping the decode-latency stall an arrival can
// inflict on running sequences (Result.MaxIterTime).
package batching

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// Request is one serving request in a trace: a prompt of Context tokens
// arriving at Arrival, wanting Gen generated tokens.
type Request struct {
	ID      int
	Arrival float64
	Context int
	Gen     int
	// Template identifies the shared prompt this request opens with (0 =
	// none): its first PrefixLen tokens are identical across every request
	// carrying the same Template — a system prompt or few-shot preamble.
	// With Config.PrefixCache enabled, the first admission of a template
	// prefills and caches those tokens and every later admission skips
	// them, prefilling only its Context-PrefixLen suffix.
	Template  int
	PrefixLen int
	// Filled by Simulate:
	Admitted float64 // when the request entered a slot
	Done     float64 // when its last token was generated
	Slot     int     // the slot it occupied (-1 if rejected)
}

// Latency is the request's end-to-end time including queueing.
func (r Request) Latency() float64 { return r.Done - r.Arrival }

// Trace is an ordered request stream.
type Trace struct {
	Requests []Request
}

// MaxContext returns the longest prompt in the trace.
func (t Trace) MaxContext() int {
	max := 0
	for _, r := range t.Requests {
		if r.Context > max {
			max = r.Context
		}
	}
	return max
}

// MaxGen returns the longest generation length in the trace.
func (t Trace) MaxGen() int {
	max := 0
	for _, r := range t.Requests {
		if r.Gen > max {
			max = r.Gen
		}
	}
	return max
}

// TotalGen sums the useful (requested) generation lengths.
func (t Trace) TotalGen() int {
	total := 0
	for _, r := range t.Requests {
		total += r.Gen
	}
	return total
}

// ChatbotTrace builds a deterministic mixed-length chatbot workload in the
// neighborhood of the paper's chatbot setting (2048 input / 64 output):
// prompts range from short follow-up turns to full-context documents and
// generation lengths from terse answers to long completions, arriving at a
// fixed interarrival. The mix is what static batching cannot exploit — a
// static batch pads every sequence to the longest — and what slot-level
// admission feeds on.
func ChatbotTrace(n int, interarrival float64, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	contexts := []int{128, 256, 512, 1024, 2048}
	ctxWeights := []float64{0.15, 0.25, 0.3, 0.2, 0.1}
	gens := []int{16, 32, 64, 128, 256}
	genWeights := []float64{0.2, 0.3, 0.3, 0.15, 0.05}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:      i,
			Arrival: float64(i) * interarrival,
			Context: contexts[pick(rng, ctxWeights)],
			Gen:     gens[pick(rng, genWeights)],
			Slot:    -1,
		}
	}
	return Trace{Requests: reqs}
}

// SharedPrefixTrace builds a template-heavy chatbot workload: every request
// opens with one of `templates` shared prefixLen-token system prompts and
// appends a short user turn, the traffic shape of a production assistant
// serving millions of users from a handful of prompt templates. Without
// prefix caching each admission re-prefills the template; with it only the
// first request per template pays, which CompareNoCache quantifies.
func SharedPrefixTrace(n int, interarrival float64, prefixLen, templates int, seed int64) Trace {
	if templates < 1 {
		templates = 1
	}
	rng := rand.New(rand.NewSource(seed))
	suffixes := []int{32, 64, 128, 256}
	sufWeights := []float64{0.3, 0.3, 0.25, 0.15}
	gens := []int{16, 32, 64, 128}
	genWeights := []float64{0.25, 0.35, 0.25, 0.15}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			ID:        i,
			Arrival:   float64(i) * interarrival,
			Context:   prefixLen + suffixes[pick(rng, sufWeights)],
			Gen:       gens[pick(rng, genWeights)],
			Template:  1 + rng.Intn(templates),
			PrefixLen: prefixLen,
			Slot:      -1,
		}
	}
	return Trace{Requests: reqs}
}

func pick(rng *rand.Rand, weights []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Config describes the continuous-batching deployment: one chip slice
// serving both phases, with Slots concurrent sequences.
type Config struct {
	Model   model.Config
	Weights model.DType
	// KVDType is the KV-cache storage format (BF16 default). Int8 halves
	// per-slot cache bytes, so the same HBM admits roughly twice the
	// Slots×MaxLen product — the admission budget validate() enforces —
	// and every decode iteration pays half the KV memory traffic.
	KVDType model.DType
	// WireDType is the activation collective payload format (BF16
	// default; Int8 halves every iteration's exposed communication time —
	// the engine-level counterpart is engine.Options.Int8Wire).
	WireDType model.DType
	System    hardware.System
	FFN       partition.FFNLayout
	Attn      partition.AttnLayout
	// Slots is the number of concurrent sequences (the decode batch when
	// full).
	Slots int
	// MaxLen is the per-slot KV capacity; requests with Context+Gen >
	// MaxLen are rejected at admission.
	MaxLen int
	// MaxAdmit caps admissions per iteration (0 = no cap). Inline prefill
	// stalls the whole batch for its duration, so real schedulers bound
	// how much prefill work a single iteration may absorb.
	MaxAdmit int
	// PrefixCache enables shared-prefix reuse: the first admission of each
	// Template prefills and caches its PrefixLen-token prompt prefix; every
	// later admission of that template skips it, prefilling only the
	// suffix (the engine-level counterpart is engine.PrefillSlotFrom).
	PrefixCache bool
	// PrefillChunk bounds the *total* prompt tokens prefilled per
	// iteration across all slots (0 = whole prompts inline at admission).
	// Chunking admits long cold prompts incrementally, interleaved with
	// decode iterations: a 2048-token arrival stalls each decode step by
	// at most one chunk's prefill instead of stalling the batch for the
	// entire prompt — Result.MaxIterTime is the decode-latency cap this
	// buys, at the price of later first tokens for the chunked prompts.
	PrefillChunk int
	Knobs        perf.Knobs
}

func (c Config) validate() error {
	if c.Slots < 1 {
		return fmt.Errorf("batching: %d slots", c.Slots)
	}
	if c.MaxLen < 2 {
		return fmt.Errorf("batching: per-slot capacity %d < 2", c.MaxLen)
	}
	if c.PrefillChunk < 0 {
		return fmt.Errorf("batching: negative prefill chunk %d", c.PrefillChunk)
	}
	// Feasibility at full occupancy and depth: if the KV cache of Slots
	// sequences at MaxLen doesn't fit beside the weights, the deployment
	// can never run full.
	probe := perf.Decode(perf.Request{
		Model: c.Model, System: c.System, Weights: c.Weights,
		KVDType: c.KVDType, WireDType: c.WireDType,
		FFN: c.FFN, Attn: c.Attn,
		Batch: c.Slots, Context: c.MaxLen - 1, Gen: 1,
	}, c.Knobs)
	if !probe.Feasible {
		return fmt.Errorf("batching: infeasible at full occupancy: %s", probe.Reason)
	}
	return nil
}

// Result summarizes a continuous-batching simulation.
type Result struct {
	Completed int
	Rejected  int // requests exceeding per-slot capacity
	Makespan  float64
	// GenTokens counts useful generated tokens (each request's actual Gen).
	GenTokens       int
	GenTokensPerSec float64
	MeanLatency     float64
	P50, P95, P99   float64
	// MeanOccupancy is the time-weighted fraction of slots holding a live
	// sequence — the quantity continuous batching exists to maximize.
	MeanOccupancy float64
	// Iterations counts scheduler iterations (decode steps and/or
	// admission rounds).
	Iterations int
	// MaxIterTime is the longest single iteration — the worst decode-step
	// stall a running sequence observed. Chunked prefill exists to cap it.
	MaxIterTime float64
	// Prefix-cache accounting: admissions that found their template's
	// prefix cached (Hits) or prefilled and cached it (Misses), and the
	// total prompt tokens served from cache instead of recomputed.
	PrefixHits, PrefixMisses int
	CachedTokens             int
	PerRequest               []Request
}

// slotState tracks one occupied slot.
type slotState struct {
	req      *Request
	produced int // tokens generated so far (finishing prefill yields the first)
	ctxDone  int // prompt tokens in the KV cache (cached prefix + prefilled)
	toGo     int // prompt tokens still to prefill (> 0: not yet decoding)
	// seedsTemplate is the template this slot's prefill will make cached
	// (0 = none): the template warms only once the prefix actually sits in
	// the cache, i.e. when this prefill completes.
	seedsTemplate int
}

// Simulate runs the iteration-level scheduler over the trace and returns
// per-request and aggregate metrics. Discipline per iteration:
//
//  1. Admit queued requests into free slots, oldest first (bounded by
//     MaxAdmit). With PrefixCache, an admission whose template is already
//     cached skips its PrefixLen-token prefix and prefills only the
//     suffix. With PrefillChunk == 0 the (remaining) prompt prefills
//     inline at admission and yields the request's first token.
//  2. With PrefillChunk > 0, every mid-prefill slot advances one bounded
//     chunk instead; a slot whose final chunk completes yields its first
//     token this iteration.
//  3. Run one decode step over the slots that were already running, at
//     their actual count and mean context.
//  4. Completions free their slots immediately, so the next iteration can
//     admit into them — the batch never drains to refill.
//
// The simulation is deterministic: same config and trace, same result.
func Simulate(c Config, trace Trace) (Result, error) {
	if err := c.validate(); err != nil {
		return Result{}, err
	}

	reqs := make([]Request, len(trace.Requests))
	copy(reqs, trace.Requests)
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Arrival < reqs[b].Arrival })

	eligible := make([]*Request, 0, len(reqs))
	rejected := 0
	for i := range reqs {
		r := &reqs[i]
		if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) || r.Arrival < 0 {
			// A non-finite arrival would stall the event loop forever
			// (NaN compares false with everything).
			return Result{}, fmt.Errorf("batching: request %d has invalid arrival %g", r.ID, r.Arrival)
		}
		if r.Template != 0 && (r.PrefixLen < 0 || r.PrefixLen >= r.Context) {
			// A template whose prefix covers the whole prompt (or none of
			// it) is a trace-builder bug, not load to shed.
			return Result{}, fmt.Errorf("batching: request %d has prefix %d outside [0, context %d)",
				r.ID, r.PrefixLen, r.Context)
		}
		if r.Context < 1 || r.Gen < 1 || r.Context+r.Gen > c.MaxLen {
			r.Slot = -1
			rejected++
			continue
		}
		eligible = append(eligible, r)
	}

	type preKey struct{ past, ctx int }
	prefillMemo := map[preKey]float64{}
	prefillT := func(past, ctx int) float64 {
		key := preKey{past, ctx}
		if t, ok := prefillMemo[key]; ok {
			return t
		}
		res := perf.Prefill(perf.Request{
			Model: c.Model, System: c.System, Weights: c.Weights,
			KVDType: c.KVDType, WireDType: c.WireDType,
			FFN: c.FFN, Attn: c.Attn, Batch: 1, Context: ctx, Past: past,
		}, c.Knobs)
		prefillMemo[key] = res.Time
		return res.Time
	}
	type stepKey struct{ batch, ctx int }
	stepMemo := map[stepKey]float64{}
	decodeT := func(batch, ctx int) float64 {
		// Bucket the context so the memo stays small; the step cost varies
		// slowly with context.
		key := stepKey{batch, (ctx + 31) / 32 * 32}
		if t, ok := stepMemo[key]; ok {
			return t
		}
		res := perf.Decode(perf.Request{
			Model: c.Model, System: c.System, Weights: c.Weights,
			KVDType: c.KVDType, WireDType: c.WireDType,
			FFN: c.FFN, Attn: c.Attn, Batch: batch, Context: key.ctx, Gen: 1,
		}, c.Knobs)
		stepMemo[key] = res.Time
		return res.Time
	}

	slots := make([]*slotState, c.Slots)
	free := c.Slots
	var queue []*Request
	next := 0
	t := 0.0
	busyWeighted := 0.0
	iterations := 0
	completed := 0
	genTokens := 0
	makespan := 0.0
	maxIterTime := 0.0
	warm := map[int]bool{} // templates whose prefix is cached
	prefixHits, prefixMisses, cachedTokens := 0, 0, 0

	for completed < len(eligible) {
		for next < len(eligible) && eligible[next].Arrival <= t {
			queue = append(queue, eligible[next])
			next++
		}
		if free == c.Slots && len(queue) == 0 {
			// Idle: jump to the next arrival.
			t = eligible[next].Arrival
			continue
		}

		iterTime := 0.0
		// firstToken marks slots that get this iteration's token from
		// their (completed) prefill rather than from the decode step.
		firstToken := map[int]bool{}
		admitted := 0
		for free > 0 && len(queue) > 0 {
			if c.MaxAdmit > 0 && admitted >= c.MaxAdmit {
				break
			}
			r := queue[0]
			queue = queue[1:]
			s := -1
			for i, ss := range slots {
				if ss == nil {
					s = i
					break
				}
			}
			cached := 0
			seeds := 0
			if c.PrefixCache && r.Template != 0 {
				if warm[r.Template] {
					cached = r.PrefixLen
					prefixHits++
					cachedTokens += cached
				} else {
					// A miss warms the template only when its prefill
					// completes; a concurrent same-template admission
					// before then must miss too (the prefix is not in the
					// cache yet).
					prefixMisses++
					seeds = r.Template
				}
			}
			ss := &slotState{req: r, ctxDone: cached, toGo: r.Context - cached, seedsTemplate: seeds}
			slots[s] = ss
			free--
			admitted++
			r.Admitted = t
			r.Slot = s
			if c.PrefillChunk == 0 {
				// Inline admission: the whole (remaining) prompt prefills
				// now and yields the request's first token.
				iterTime += prefillT(ss.ctxDone, ss.toGo)
				ss.ctxDone = r.Context
				ss.toGo = 0
				ss.produced = 1
				firstToken[s] = true
				if ss.seedsTemplate != 0 {
					warm[ss.seedsTemplate] = true
				}
			}
		}

		// Chunked prefill: spend this iteration's prefill-token budget on
		// mid-prefill slots; a slot whose last chunk lands yields its
		// first token. The budget, not the prompt length, now bounds the
		// prefill time added to the iteration.
		if c.PrefillChunk > 0 {
			budget := c.PrefillChunk
			for s, ss := range slots {
				if budget == 0 {
					break
				}
				if ss == nil || ss.toGo == 0 {
					continue
				}
				adv := budget
				if adv > ss.toGo {
					adv = ss.toGo
				}
				iterTime += prefillT(ss.ctxDone, adv)
				ss.ctxDone += adv
				ss.toGo -= adv
				budget -= adv
				if ss.toGo == 0 {
					ss.produced = 1
					firstToken[s] = true
					if ss.seedsTemplate != 0 {
						warm[ss.seedsTemplate] = true
					}
				}
			}
		}

		// Decode step over the slots that were already running; slots still
		// prefilling and those that just got their first token sit out.
		decodeBatch := 0
		ctxSum := 0
		for s, ss := range slots {
			if ss == nil || ss.toGo > 0 || firstToken[s] {
				continue
			}
			decodeBatch++
			ctxSum += ss.req.Context + ss.produced
		}
		if decodeBatch > 0 {
			iterTime += decodeT(decodeBatch, ctxSum/decodeBatch)
		}

		nActive := c.Slots - free
		t += iterTime
		iterations++
		busyWeighted += float64(nActive) * iterTime
		if iterTime > maxIterTime {
			maxIterTime = iterTime
		}

		for s, ss := range slots {
			if ss == nil || ss.toGo > 0 {
				continue
			}
			if !firstToken[s] {
				ss.produced++
			}
			if ss.produced >= ss.req.Gen {
				ss.req.Done = t
				completed++
				genTokens += ss.req.Gen
				slots[s] = nil
				free++
				if t > makespan {
					makespan = t
				}
			}
		}
	}

	res := Result{
		Completed:    completed,
		Rejected:     rejected,
		Makespan:     makespan,
		GenTokens:    genTokens,
		Iterations:   iterations,
		MaxIterTime:  maxIterTime,
		PrefixHits:   prefixHits,
		PrefixMisses: prefixMisses,
		CachedTokens: cachedTokens,
		PerRequest:   reqs,
	}
	if makespan > 0 {
		res.GenTokensPerSec = float64(genTokens) / makespan
		res.MeanOccupancy = busyWeighted / (float64(c.Slots) * makespan)
	}
	if len(eligible) > 0 {
		lat := make([]float64, len(eligible))
		sum := 0.0
		for i, r := range eligible {
			lat[i] = r.Latency()
			sum += lat[i]
		}
		sort.Float64s(lat)
		pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
		res.MeanLatency = sum / float64(len(eligible))
		res.P50, res.P95, res.P99 = pct(0.50), pct(0.95), pct(0.99)
	} else {
		res.MeanLatency = math.NaN()
	}
	return res, nil
}
