package fleet

import (
	"errors"
	"testing"

	"esti/internal/batching"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/perf"
)

// replicaConfig is one fleet replica: PaLM 540B int8 weights on a 64-chip
// slice, the paper's decode configuration, with the prefix cache on — the
// same blueprint the batching tests use, stamped N times by the fleet.
func replicaConfig() batching.Config {
	return batching.Config{
		Model:       model.PaLM540BPadded(),
		Weights:     model.Int8,
		System:      hardware.TPUv4Slice(4, 4, 4),
		FFN:         partition.FFN2DWeightStationary,
		Attn:        partition.AttnShardBatch,
		Slots:       64,
		MaxLen:      2048 + 256,
		PrefixCache: true,
		Knobs:       perf.DefaultKnobs(),
	}
}

// zipfTrace: long shared templates (1024 of up to ~1400 prompt tokens) with
// Zipf-popular template ranks — the workload where routing decides how many
// cold template prefills the fleet pays.
func zipfTrace(n int, interarrival float64, seed int64) batching.Trace {
	return batching.ZipfPrefixTrace(n, interarrival, 1024, 48, 1.3, seed)
}

func TestFleetAccounting(t *testing.T) {
	c := Config{Replica: replicaConfig(), Replicas: 4, Policy: Affinity}
	trace := zipfTrace(200, 0.02, 7)
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 || res.Rejected != 0 || res.Shed != 0 {
		t.Fatalf("completed %d rejected %d shed %d, want 200/0/0", res.Completed, res.Rejected, res.Shed)
	}
	if res.GenTokens != trace.TotalGen() {
		t.Errorf("GenTokens %d != trace total %d", res.GenTokens, trace.TotalGen())
	}
	if res.GoodTokens != res.GenTokens {
		t.Errorf("no deadlines set, but GoodTokens %d != GenTokens %d", res.GoodTokens, res.GenTokens)
	}
	if res.Makespan <= 0 || res.GenTokensPerSec <= 0 || res.GoodputPerChip <= 0 {
		t.Errorf("degenerate aggregates: %+v", res)
	}
	if res.P99 < res.P50 || res.P50 <= 0 {
		t.Errorf("percentiles out of order: p50 %.3f p99 %.3f", res.P50, res.P99)
	}
	routed, completed, local := 0, 0, 0
	for _, r := range res.PerReplica {
		if r.Role != "unified" {
			t.Fatalf("unexpected role %q", r.Role)
		}
		routed += r.Routed
		completed += r.Completed
		local += r.LocalTokens
	}
	if routed != 200 || completed != 200 {
		t.Errorf("per-replica routed %d completed %d, want 200/200", routed, completed)
	}
	if local != res.GenTokens {
		t.Errorf("per-replica tokens %d != fleet GenTokens %d", local, res.GenTokens)
	}
	if res.AffinityHits+res.AffinityMisses != 200 {
		t.Errorf("affinity accounting %d+%d != 200 templated requests", res.AffinityHits, res.AffinityMisses)
	}
	// Affinity routing pins each template to one replica: at most one cold
	// miss per template (48) plus bounded-load spills.
	if res.AffinityHits < 120 {
		t.Errorf("affinity routing hit only %d/200", res.AffinityHits)
	}
	if len(res.Outcomes) != 200 {
		t.Fatalf("%d outcomes for 200 requests", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.Err != nil || o.Replica < 0 || o.Replica >= 4 {
			t.Fatalf("outcome %+v on a no-shed run", o)
		}
	}
	// Determinism: same config and trace, same result.
	again, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if again.Makespan != res.Makespan || again.AffinityHits != res.AffinityHits {
		t.Error("fleet simulation not deterministic")
	}
}

// The tentpole's routing claim: on a Zipf-popular template stream,
// prefix-affinity routing beats random routing on generated-token
// throughput, because it converts each hot template's stream into prefix
// hits on one replica instead of cold misses on many.
func TestAffinityBeatsRandom(t *testing.T) {
	c := Config{Replica: replicaConfig(), Replicas: 4}
	cmp, err := CompareRouting(c, zipfTrace(400, 0.02, 11))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Affinity.Completed != 400 || cmp.Random.Completed != 400 {
		t.Fatalf("completions: affinity %d random %d", cmp.Affinity.Completed, cmp.Random.Completed)
	}
	if cmp.Affinity.AffinityHits <= cmp.Random.AffinityHits {
		t.Errorf("affinity hit %d, random hit %d — routing signal not working",
			cmp.Affinity.AffinityHits, cmp.Random.AffinityHits)
	}
	if cmp.Speedup <= 1 {
		t.Errorf("affinity %.1f tok/s not above random %.1f tok/s (speedup %.3f)",
			cmp.Affinity.GenTokensPerSec, cmp.Random.GenTokensPerSec, cmp.Speedup)
	}
	t.Logf("affinity %.0f tok/s (%d/%d hits) vs random %.0f tok/s (%d hits): %.2fx",
		cmp.Affinity.GenTokensPerSec, cmp.Affinity.AffinityHits,
		cmp.Affinity.AffinityHits+cmp.Affinity.AffinityMisses,
		cmp.Random.GenTokensPerSec, cmp.Random.AffinityHits, cmp.Speedup)
}

func TestDisaggregatedPools(t *testing.T) {
	c := Config{
		Replica:         replicaConfig(),
		Disaggregated:   true,
		PrefillReplicas: 2,
		DecodeReplicas:  2,
		Policy:          Affinity,
	}
	trace := zipfTrace(120, 0.05, 3)
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 120 {
		t.Fatalf("completed %d/120", res.Completed)
	}
	if res.Handoffs != 120 || res.HandoffBytes <= 0 {
		t.Errorf("handoffs %d bytes %.0f, want 120 with positive bytes", res.Handoffs, res.HandoffBytes)
	}
	if res.GenTokens != trace.TotalGen() {
		t.Errorf("GenTokens %d != trace total %d", res.GenTokens, trace.TotalGen())
	}
	prefillTok, decodeTok := 0, 0
	for _, r := range res.PerReplica {
		switch r.Role {
		case "prefill":
			prefillTok += r.LocalTokens
			if r.Completed != 0 {
				t.Errorf("prefill replica credited %d completions", r.Completed)
			}
		case "decode":
			decodeTok += r.LocalTokens
		default:
			t.Fatalf("unexpected role %q", r.Role)
		}
	}
	// Each request's first token came from the prefill pool, the rest from
	// decode: the pools' local tokens must sum to the fleet total exactly
	// once (no double counting).
	if prefillTok != 120 {
		t.Errorf("prefill pool tokens %d, want one per request", prefillTok)
	}
	if prefillTok+decodeTok != res.GenTokens {
		t.Errorf("pool tokens %d+%d != fleet GenTokens %d", prefillTok, decodeTok, res.GenTokens)
	}
}

func TestSLOShedding(t *testing.T) {
	c := Config{Replica: replicaConfig(), Replicas: 2, Policy: LeastLoaded}
	// A burst of simultaneous arrivals with deadlines only the first few can
	// meet: the router must shed the rest with ErrDeadline, and goodput must
	// count only in-deadline tokens.
	trace := batching.Trace{}
	for i := 0; i < 80; i++ {
		trace.Requests = append(trace.Requests, batching.Request{
			ID: i, Arrival: 0, Context: 512, Gen: 64, Deadline: 2.0, Slot: -1,
		})
	}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("no requests shed under an unmeetable burst")
	}
	if res.Completed+res.Shed != 80 {
		t.Errorf("completed %d + shed %d != 80", res.Completed, res.Shed)
	}
	sawDeadline := false
	for _, o := range res.Outcomes {
		if o.Err == nil {
			continue
		}
		if errors.Is(o.Err, batching.ErrDeadline) {
			sawDeadline = true
		} else if !errors.Is(o.Err, batching.ErrOverloaded) {
			t.Errorf("unexpected shed error: %v", o.Err)
		}
	}
	if !sawDeadline {
		t.Error("no outcome carries ErrDeadline")
	}
	if res.GoodTokens > res.GenTokens {
		t.Errorf("goodput %d above total %d", res.GoodTokens, res.GenTokens)
	}
}

func TestQueueCapShedsLowTierOnly(t *testing.T) {
	c := Config{Replica: replicaConfig(), Replicas: 1, Policy: LeastLoaded, MaxQueue: 4}
	trace := batching.Trace{}
	for i := 0; i < 120; i++ {
		r := batching.Request{ID: i, Arrival: 0, Context: 512, Gen: 32, Slot: -1}
		if i%4 == 0 {
			r.Priority = 1
		}
		trace.Requests = append(trace.Requests, r)
	}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("queue cap shed nothing under a 120-request burst")
	}
	for _, o := range res.Outcomes {
		if errors.Is(o.Err, batching.ErrOverloaded) && o.Req.Priority > 0 {
			t.Errorf("high-priority request %d shed for overload", o.Req.ID)
		}
	}
	// Every high-tier request survives: admitted past the cap by design.
	high, highDone := 0, 0
	for _, o := range res.Outcomes {
		if o.Req.Priority > 0 {
			high++
			if o.Err == nil {
				highDone++
			}
		}
	}
	if highDone != high {
		t.Errorf("only %d/%d high-tier requests served under overload", highDone, high)
	}
}

func TestFleetRejectsOversizedAndInvalid(t *testing.T) {
	c := Config{Replica: replicaConfig(), Replicas: 2}
	trace := batching.Trace{Requests: []batching.Request{
		{ID: 0, Arrival: 0, Context: 512, Gen: 32, Slot: -1},
		{ID: 1, Arrival: 0.1, Context: c.Replica.MaxLen, Gen: 64, Slot: -1},
	}}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Rejected != 1 {
		t.Fatalf("completed %d rejected %d, want 1/1", res.Completed, res.Rejected)
	}
	for _, o := range res.Outcomes {
		if o.Req.ID == 1 && !errors.Is(o.Err, batching.ErrPromptTooLong) {
			t.Errorf("oversized request outcome %v, want ErrPromptTooLong", o.Err)
		}
	}

	bad := batching.Trace{Requests: []batching.Request{{ID: 0, Arrival: -1, Context: 64, Gen: 8}}}
	if _, err := Simulate(c, bad); !errors.Is(err, batching.ErrInvalidTrace) {
		t.Errorf("malformed trace: got %v, want ErrInvalidTrace", err)
	}

	if _, err := Simulate(Config{Replica: replicaConfig()}, trace); !errors.Is(err, batching.ErrInvalidConfig) {
		t.Error("zero replicas accepted")
	}
	if _, err := Simulate(Config{Replica: replicaConfig(), Disaggregated: true, PrefillReplicas: 1}, trace); !errors.Is(err, batching.ErrInvalidConfig) {
		t.Error("disaggregated fleet without decode replicas accepted")
	}
}
