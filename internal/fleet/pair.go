package fleet

import (
	"fmt"

	"esti/internal/engine"
	"esti/internal/tensor"
)

// EnginePair is the executable counterpart of the disaggregated simulation:
// a prefill engine and a decode engine coupled through the KV handoff path.
// Generate prefills the prompt on one engine, exports the slot's cache
// blocks (engine.ExportSlotKV), imports them into the other engine, and
// decodes there — the token stream is identical to one engine doing both
// phases itself, which TestEnginePairTokenExact asserts.
type EnginePair struct {
	Prefill *engine.Engine
	Decode  *engine.Engine
	// HandoffBytes accumulates the wire bytes of every KV snapshot moved
	// between the engines.
	HandoffBytes int
}

// Generate runs one request through the pair: prefill `prompt` on
// prefillSlot, hand the KV to decodeSlot on the decode engine, and greedily
// decode until `gen` tokens exist (the first comes from the prefill
// engine's logits). Both slots are released before returning.
func (p *EnginePair) Generate(prefillSlot, decodeSlot int, prompt []int, gen int) ([]int, error) {
	if gen < 1 {
		return nil, fmt.Errorf("fleet: gen %d < 1", gen)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("fleet: empty prompt")
	}
	logits := p.Prefill.PrefillSlot(prefillSlot, prompt)
	tok := argmax(logits.Row(logits.Rows - 1))
	kv, err := p.Prefill.ExportSlotKV(prefillSlot)
	if err != nil {
		return nil, err
	}
	p.Prefill.ReleaseSlot(prefillSlot)
	p.HandoffBytes += kv.Bytes()
	if err := p.Decode.ImportSlotKV(decodeSlot, kv); err != nil {
		return nil, err
	}
	out := make([]int, 0, gen)
	out = append(out, tok)
	last := make([]int, p.Decode.Batch())
	active := make([]bool, p.Decode.Batch())
	active[decodeSlot] = true
	var lg *tensor.Mat
	for len(out) < gen {
		last[decodeSlot] = tok
		lg = p.Decode.DecodeSlotsInto(lg, last, active)
		tok = argmax(lg.Row(decodeSlot))
		out = append(out, tok)
	}
	p.Decode.ReleaseSlot(decodeSlot)
	return out, nil
}

func argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
