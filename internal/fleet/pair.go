package fleet

import (
	"fmt"

	"esti/internal/engine"
	"esti/internal/tensor"
)

// EnginePair is the executable counterpart of the disaggregated simulation:
// a prefill engine and a decode engine coupled through the KV handoff path.
// Generate prefills the prompt on one engine, exports the slot's cache
// blocks (engine.ExportSlotKV), imports them into the other engine, and
// decodes there — the token stream is identical to one engine doing both
// phases itself, which TestEnginePairTokenExact asserts.
type EnginePair struct {
	Prefill *engine.Engine
	Decode  *engine.Engine
	// HandoffBytes accumulates the wire bytes of every KV snapshot moved
	// between the engines (a post-crash re-send counts again).
	HandoffBytes int
	// Failures counts injected decode-side failures survived
	// (GenerateWithFailure), RecoveredTokens the already-emitted tokens
	// replayed through decode steps to rebuild the lost KV.
	Failures        int
	RecoveredTokens int
}

// Generate runs one request through the pair: prefill `prompt` on
// prefillSlot, hand the KV to decodeSlot on the decode engine, and greedily
// decode until `gen` tokens exist (the first comes from the prefill
// engine's logits). Both slots are released before returning.
func (p *EnginePair) Generate(prefillSlot, decodeSlot int, prompt []int, gen int) ([]int, error) {
	if gen < 1 {
		return nil, fmt.Errorf("fleet: gen %d < 1", gen)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("fleet: empty prompt")
	}
	logits := p.Prefill.PrefillSlot(prefillSlot, prompt)
	tok := argmax(logits.Row(logits.Rows - 1))
	kv, err := p.Prefill.ExportSlotKV(prefillSlot)
	if err != nil {
		return nil, err
	}
	p.Prefill.ReleaseSlot(prefillSlot)
	p.HandoffBytes += kv.Bytes()
	if err := p.Decode.ImportSlotKV(decodeSlot, kv); err != nil {
		return nil, err
	}
	out := make([]int, 0, gen)
	out = append(out, tok)
	last := make([]int, p.Decode.Batch())
	active := make([]bool, p.Decode.Batch())
	active[decodeSlot] = true
	var lg *tensor.Mat
	for len(out) < gen {
		last[decodeSlot] = tok
		lg = p.Decode.DecodeSlotsInto(lg, last, active)
		tok = argmax(lg.Row(decodeSlot))
		out = append(out, tok)
	}
	p.Decode.ReleaseSlot(decodeSlot)
	return out, nil
}

// GenerateWithFailure runs one request through the pair with a decode-side
// failure injected: the decode replica dies after emitting failAfter decode
// tokens beyond the first (failAfter 0 = mid-handoff, before any decode
// step), losing its copy of the slot's KV. Recovery re-sends the retained
// prefill checkpoint (SlotKV snapshots are deep copies, so the export
// outlives the consumer), restores it into recoverSlot, replays the
// already-emitted tokens through decode steps to rebuild the generated
// positions' KV — greedy decoding makes the replay deterministic, and any
// divergence from the recorded stream is reported as an error — and then
// continues to gen tokens. The full stream is identical to a failure-free
// run, which TestEnginePairRecoveryTokenExact asserts in float and int8 KV
// modes.
func (p *EnginePair) GenerateWithFailure(prefillSlot, decodeSlot, recoverSlot int, prompt []int, gen, failAfter int) ([]int, error) {
	if gen < 1 {
		return nil, fmt.Errorf("fleet: gen %d < 1", gen)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("fleet: empty prompt")
	}
	if failAfter < 0 || failAfter >= gen-1 {
		return nil, fmt.Errorf("fleet: failAfter %d outside [0, gen-1)", failAfter)
	}
	logits := p.Prefill.PrefillSlot(prefillSlot, prompt)
	out := make([]int, 0, gen)
	out = append(out, argmax(logits.Row(logits.Rows-1)))
	ckpt, err := p.Prefill.ExportSlotKV(prefillSlot)
	if err != nil {
		return nil, err
	}
	p.Prefill.ReleaseSlot(prefillSlot)
	p.HandoffBytes += ckpt.Bytes()

	// First attempt: the decode replica imports the KV, produces failAfter
	// tokens, then crashes — its cache copy is gone.
	if err := p.Decode.ImportSlotKV(decodeSlot, ckpt); err != nil {
		return nil, err
	}
	last := make([]int, p.Decode.Batch())
	active := make([]bool, p.Decode.Batch())
	active[decodeSlot] = true
	var lg *tensor.Mat
	for i := 0; i < failAfter; i++ {
		last[decodeSlot] = out[len(out)-1]
		lg = p.Decode.DecodeSlotsInto(lg, last, active)
		out = append(out, argmax(lg.Row(decodeSlot)))
	}
	p.Decode.ReleaseSlot(decodeSlot)
	p.Failures++

	// Recovery: re-send the checkpoint, restore it into a fresh slot, and
	// replay the tokens emitted so far to rebuild their KV positions.
	p.HandoffBytes += ckpt.Bytes()
	if err := p.Decode.RestoreSlotKV(recoverSlot, ckpt); err != nil {
		return nil, err
	}
	for i := range last {
		last[i] = 0
		active[i] = false
	}
	active[recoverSlot] = true
	for i := 0; i+1 < len(out); i++ {
		last[recoverSlot] = out[i]
		lg = p.Decode.DecodeSlotsInto(lg, last, active)
		p.RecoveredTokens++
		if got := argmax(lg.Row(recoverSlot)); got != out[i+1] {
			return nil, fmt.Errorf("fleet: recovery replay diverged at token %d: got %d, recorded %d", i+1, got, out[i+1])
		}
	}
	for len(out) < gen {
		last[recoverSlot] = out[len(out)-1]
		lg = p.Decode.DecodeSlotsInto(lg, last, active)
		out = append(out, argmax(lg.Row(recoverSlot)))
	}
	p.Decode.ReleaseSlot(recoverSlot)
	return out, nil
}

func argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
