package fleet

// Fault handling: how the router reacts to the injected faults.Plan —
// crash/drain/straggle/link events, retries with capped exponential
// backoff, straggler hedging, brownout shedding, and the unified-serving
// fallback when the decode pool dies.

import (
	"fmt"
	"math"

	"esti/internal/batching"
	"esti/internal/faults"
)

// Recovery defaults: three re-route attempts, 50 ms base backoff doubling
// to a 1 s cap.
const (
	defaultMaxRetries = 3
	defaultBackoff    = 0.05
	defaultBackoffCap = 1.0
)

// RecoveryPolicy tunes the router's fault handling. The zero value selects
// the defaults; MaxRetries -1 selects the naive baseline that measures what
// the machinery is worth.
type RecoveryPolicy struct {
	// MaxRetries caps per-request re-route attempts after the request's
	// last copy is lost to a replica failure (0 = default 3). -1 is the
	// naive health-blind baseline: crashed replicas keep receiving traffic
	// and silently eat their queues, lost requests are never retried, and
	// no hedging or fallback happens — the failure mode the fault layer
	// exists to prevent, kept runnable so the difference is measurable.
	MaxRetries int
	// Backoff is the delay before a lost request's first re-route,
	// doubling per attempt up to BackoffCap (defaults 50 ms / 1 s). A
	// retry whose completion estimate already misses the request's
	// deadline is shed as ErrDeadline and counted in Result.ShedRetry.
	Backoff    float64
	BackoffCap float64
	// NoHedge disables straggler hedging. By default, when a replica
	// degrades, every request it holds is duplicated once to the best
	// other live replica; the first completed copy wins and the loser's
	// tokens are booked as wasted work under ErrHedged.
	NoHedge bool
	// BrownoutBelow sheds Priority<=0 arrivals with ErrOverloaded while
	// the live ingress-replica fraction is below this watermark (0 =
	// disabled). High-tier traffic is never brownout-shed: capacity
	// contracts around it.
	BrownoutBelow float64
	// FallbackDecodeMin is the live decode-pool size below which a
	// disaggregated fleet falls back to unified serving on the surviving
	// prefill replicas (default 1: fall back only when the pool is empty).
	// The fallback is one-way for the run.
	FallbackDecodeMin int
}

// applyFault transitions replica health (and link state) for one scheduled
// fault event, re-routing or hedging work as the state machine demands.
func (s *sim) applyFault(e event) {
	f := e.fault
	switch f.Kind {
	case faults.LinkDown:
		s.linkDown = true
		return
	case faults.LinkUp:
		s.linkDown = false
		held := s.held
		s.held = nil
		// Buffered transfers go out back-to-back now that the link is up.
		for _, h := range held {
			h.t = e.t + s.handoffDelay(h.req)
			h.seq = s.nextSeq()
			s.events.push(h)
		}
		return
	}
	rep := s.all[f.Replica]
	if rep.retired {
		// The autoscaler released this replica before the plan reached it;
		// there is nothing left to crash, drain, or recover.
		return
	}
	switch f.Kind {
	case faults.Crash:
		if rep.health == faults.Down {
			return
		}
		rep.stats.Crashes++
		s.crash(rep, e.t)
	case faults.Drain:
		if rep.health == faults.Down || rep.health == faults.Draining {
			return
		}
		rep.health = faults.Draining
		// Queued work re-routes immediately; in-flight slots finish
		// locally, then run() takes the replica Down.
		for _, r := range rep.s.EvictQueued() {
			st := s.states[r]
			st.live--
			if st.done || st.live > 0 {
				continue
			}
			s.events.push(event{t: e.t, seq: s.nextSeq(), kind: evRetry, req: r})
		}
		if !rep.s.Busy() {
			s.setDown(rep, e.t)
		}
	case faults.Recover:
		switch rep.health {
		case faults.Down:
			rep.health = faults.Recovering
			rep.stats.Downtime += e.t - rep.downSince
			rep.s.AdvanceTo(e.t)
		case faults.Draining:
			// Recover during a drain cancels it.
			rep.health = faults.Healthy
		}
	case faults.SlowStart:
		if rep.health == faults.Down {
			return
		}
		rep.s.SetSlowdown(f.Factor)
		if rep.health == faults.Healthy || rep.health == faults.Recovering {
			rep.health = faults.Degraded
		}
		s.hedgeStraggler(rep, e.t)
	case faults.SlowEnd:
		rep.s.SetSlowdown(1)
		if rep.health == faults.Degraded {
			rep.health = faults.Healthy
		}
	}
}

// crash loses the replica's entire state: every resident request's KV and
// tokens go to the wasted ledger, and each request whose last copy died is
// retried (or failed). In-flight handoffs the replica already sent survive
// — the exported KV is self-contained, exactly like EnginePair's SlotKV.
func (s *sim) crash(rep *replica, t float64) {
	rep.health = faults.Down
	rep.downSince = t
	for _, lw := range rep.s.Crash() {
		st := s.states[lw.Req]
		st.live--
		if lw.Prefilled+lw.Decoded > 0 {
			s.waste(lw.Req.ID, rep, batching.ErrReplicaDown, lw.Prefilled, lw.Decoded)
		}
		delete(s.origin, lw.Req)
		if st.done || st.live > 0 {
			continue
		}
		s.retryOrFail(st, t)
	}
	s.checkFallback()
}

// setDown finishes a drain: the replica served its last in-flight sequence
// and leaves the fleet (losing nothing). For an autoscale release this is
// the moment the capacity is actually handed back, so the lifetime window
// closes here, not at the scale-in decision.
func (s *sim) setDown(rep *replica, t float64) {
	rep.health = faults.Down
	rep.downSince = t
	if rep.retired {
		rep.retiredAt = t
	}
	s.checkFallback()
}

// retryOrFail re-routes a request whose last live copy was just lost:
// capped exponential backoff, then evRetry re-enters the router (which
// sheds it as ErrDeadline if the SLO is already unmeetable). With retries
// exhausted — or under the naive policy, immediately — the request fails
// for good as ErrReplicaDown.
func (s *sim) retryOrFail(st *reqState, t float64) {
	if st.firstLoss < 0 {
		st.firstLoss = t
	}
	if st.attempts >= s.maxRetries {
		s.res.Failed++
		s.setOutcome(st, -1, fmt.Errorf("fleet: %w: request %d lost after %d retries",
			batching.ErrReplicaDown, st.orig.ID, st.attempts))
		return
	}
	st.attempts++
	s.res.Retries++
	d := s.backoff * math.Pow(2, float64(st.attempts-1))
	if d > s.backoffCap {
		d = s.backoffCap
	}
	s.events.push(event{t: t + d, seq: s.nextSeq(), kind: evRetry, req: st.orig})
}

// hedgeStraggler duplicates every request stuck on a newly degraded replica
// to the best other live ingress replica (once per request): first
// completed copy wins, the loser's tokens become wasted work. Warm-template
// duplicates recover cheaply through the target's prefix cache.
func (s *sim) hedgeStraggler(rep *replica, t float64) {
	if s.naive || s.c.Recovery.NoHedge {
		return
	}
	for _, r := range rep.s.Requests() {
		st := s.states[r]
		if st.done || st.hedged || st.live > 1 {
			continue
		}
		tgt := s.bestOther(rep)
		if tgt == nil {
			continue
		}
		clone := *st.orig
		clone.Slot = -1
		clone.Admitted, clone.Done = 0, 0
		cp := &clone
		s.states[cp] = st
		st.hedged = true
		st.live++
		s.res.Hedges++
		tgt.s.AdvanceTo(t)
		tgt.s.Enqueue(cp)
		tgt.stats.Routed++
	}
}

// bestOther returns the lowest-effective-load ingress replica other than
// rep that is routable and not degraded, or nil if none exists — hedging
// onto another straggler would duplicate the problem, not race it.
func (s *sim) bestOther(rep *replica) *replica {
	var best *replica
	for _, cand := range s.ingress {
		if cand == rep || !cand.health.Routable() || cand.health == faults.Degraded {
			continue
		}
		if best == nil || s.effLoad(cand) < s.effLoad(best) {
			best = cand
		}
	}
	return best
}

// waste books one discarded piece of computed work, exactly once.
func (s *sim) waste(reqID int, on *replica, cause error, prefilled, decoded int) {
	s.res.Wasted = append(s.res.Wasted, WastedWork{
		ReqID: reqID, Replica: on.idx, Cause: cause,
		PrefillTokens: prefilled, DecodedTokens: decoded,
	})
	s.res.WastedPrefillTokens += prefilled
	s.res.WastedDecodeTokens += decoded
	on.stats.WastedTokens += prefilled + decoded
}

// brownout reports whether low-tier arrivals should be shed: the live
// ingress fraction is below the configured watermark.
func (s *sim) brownout() bool {
	w := s.c.Recovery.BrownoutBelow
	if s.naive || w <= 0 {
		return false
	}
	live, total := s.liveFraction()
	return float64(live) < w*float64(total)
}

// liveFraction counts routable ingress replicas out of the total. Retired
// replicas are gone (a scaled-in fleet is smaller, not browner), and
// still-provisioning ones are not yet capacity — neither may depress the
// brownout fraction.
func (s *sim) liveFraction() (live, total int) {
	for _, rep := range s.ingress {
		if rep.retired || rep.provisioning {
			continue
		}
		total++
		if rep.health.Routable() {
			live++
		}
	}
	return live, total
}

// checkFallback converts the prefill pool to unified serving when the live
// decode pool shrinks below the watermark — graceful degradation instead of
// a fleet that prefills forever and decodes nothing. One-way for the run.
func (s *sim) checkFallback() {
	if !s.c.Disaggregated || s.fallback || s.naive {
		return
	}
	live := 0
	for _, rep := range s.decode {
		if rep.health.Routable() {
			live++
		}
	}
	if live >= s.minDecode {
		return
	}
	s.fallback = true
	for _, rep := range s.ingress {
		rep.prefill = false
		rep.s.SetUnified()
		rep.stats.Role = "prefill→unified"
	}
}

// failHeld drops handoffs stranded on a link that never recovered: the
// transferred KV is wasted and each stranded request re-routes from
// scratch (prefill and all) or fails.
func (s *sim) failHeld() {
	held := s.held
	s.held = nil
	for _, h := range held {
		st := s.states[h.req]
		st.live--
		s.waste(h.req.ID, h.from, batching.ErrReplicaDown, h.req.Context, 1)
		if st.done || st.live > 0 {
			continue
		}
		s.retryOrFail(st, s.lastT)
	}
}
