package fleet

// Autoscaling: the control loop that re-spends the chip budget mid-trace.
// Config.Autoscale arms a deterministic autoscale.Controller per pool
// (prefill and decode independently when disaggregated); control ticks are
// first-class events in the same heap as arrivals and faults, so an
// autoscaled run replays byte-identically under the same seed. Each tick
// reads the signals the serving stack already exports — per-replica backlog
// drain estimates from the perf model, queue depths, shed/miss deltas,
// health states, the brownout watermark — and the controller's verdict is
// executed here: scale-out provisions a cold replica that joins Recovering
// after ProvisionDelay, scale-in picks an idle replica and retires it
// through the drain path (resident KV always finishes; we only ever release
// a replica with nothing resident).

import (
	"esti/internal/autoscale"
	"esti/internal/batching"
	"esti/internal/faults"
)

// ScaleEvent records one autoscale action for the run's audit trail.
type ScaleEvent struct {
	// T is the control tick's simulation time.
	T float64
	// Pool is "unified", "prefill", or "decode".
	Pool string
	// Verdict is "scale-out" or "scale-in".
	Verdict string
	// Replica is the stable index of the replica added or released.
	Replica int
	// Reason is the controller's account of the decision.
	Reason string
}

// TickStat is one control tick's fleet snapshot — the per-tick stats the
// autoscaler decided on, kept so a run's scaling story can be replayed
// against its load.
type TickStat struct {
	T float64
	// Live / Provisioning / Draining count replicas by lifecycle stage
	// (retired replicas are gone and not counted).
	Live, Provisioning, Draining int
	// QueueDepth is the fleet's total pending request count.
	QueueDepth int
	// DrainP50 / DrainMax summarize the live replicas' backlog drain
	// estimates in seconds (perf-model time to empty, straggler-adjusted).
	DrainP50, DrainMax float64
}

// initAutoscale validates and arms the controllers. Called from newSim.
func (s *sim) initAutoscale() error {
	if s.c.Autoscale == nil {
		return nil
	}
	if err := s.c.Autoscale.Validate(); err != nil {
		return err
	}
	s.ctlIngress = autoscale.New(*s.c.Autoscale)
	p := s.ctlIngress.Policy()
	s.auto = &p
	if s.c.Disaggregated {
		s.ctlDecode = autoscale.New(*s.c.Autoscale)
	}
	// Recover events scheduled in the fault plan are capacity about to
	// return: the controller must not scale out over a crash the plan is
	// about to heal.
	s.recovers = map[int][]float64{}
	for _, f := range s.c.Faults.Sorted() {
		if f.Kind == faults.Recover {
			s.recovers[f.Replica] = append(s.recovers[f.Replica], f.At)
		}
	}
	return nil
}

// tick runs one control interval: snapshot, decide per pool, execute, and
// schedule the next tick while the run still has work in flight.
func (s *sim) tick(t float64) {
	s.res.Ticks++
	s.recordTick(t)
	d := s.ctlIngress.Decide(s.poolSignals(t, s.ingress, true))
	s.executeVerdict(t, d, true)
	if s.ctlDecode != nil && !s.fallback {
		d := s.ctlDecode.Decide(s.poolSignals(t, s.decode, false))
		s.executeVerdict(t, d, false)
	}
	s.prevShed = s.res.Shed + s.res.ShedRetry
	s.prevMiss = s.res.DeadlineMisses + s.res.Failed
	// The loop stays alive only while something can still happen: queued
	// events (arrivals, retries, provisions), busy replicas, or handoffs
	// buffered on a dead link. An idle fleet schedules no next tick, so the
	// simulation terminates exactly like a static run.
	if len(s.events) > 0 || len(s.held) > 0 || s.anyBusy() {
		s.events.push(event{t: t + s.auto.Interval, seq: s.nextSeq(), kind: evTick})
	}
}

func (s *sim) anyBusy() bool {
	for _, rep := range s.all {
		if rep.health != faults.Down && rep.s.Busy() {
			return true
		}
	}
	return false
}

// poolSignals measures one pool for the controller.
func (s *sim) poolSignals(t float64, pool []*replica, ingress bool) autoscale.Signals {
	sig := autoscale.Signals{T: t}
	for _, rep := range pool {
		if rep.retired {
			// A release still draining its resident work counts as the
			// in-flight drain (one at a time); a finished one is gone.
			if rep.health == faults.Draining {
				sig.Draining++
			}
			continue
		}
		switch {
		case rep.provisioning:
			sig.Arriving++
			continue
		case rep.health == faults.Down:
			if s.willRecover(rep, t) {
				sig.Arriving++
			}
			continue
		case rep.health == faults.Draining:
			sig.Draining++
			continue
		}
		sig.Live++
		b := rep.s.Snapshot()
		if b.DrainTime > sig.DrainTime {
			sig.DrainTime = b.DrainTime
		}
		sig.TotalBacklog += b.DrainTime
		sig.QueueDepth += b.Pending
		// Recovering replicas are live capacity but not release candidates:
		// the fleet just paid their warm-up.
		if !rep.s.Busy() && b.Pending == 0 && rep.health != faults.Recovering {
			sig.Idle++
		}
	}
	if ingress {
		sig.ShedDelta = s.res.Shed + s.res.ShedRetry - s.prevShed
		sig.MissDelta = s.res.DeadlineMisses + s.res.Failed - s.prevMiss
		sig.Brownout = s.brownout()
	}
	return sig
}

// willRecover reports whether the fault plan schedules a Recover for this
// replica after time t.
func (s *sim) willRecover(rep *replica, t float64) bool {
	for _, rt := range s.recovers[rep.idx] {
		if rt > t {
			return true
		}
	}
	return false
}

func (s *sim) executeVerdict(t float64, d autoscale.Decision, ingress bool) {
	switch d.Verdict {
	case autoscale.ScaleOut:
		s.scaleOut(t, ingress, d.Reason)
	case autoscale.ScaleIn:
		s.scaleIn(t, ingress, d.Reason)
	}
}

func (s *sim) poolName(ingress bool) string {
	if !s.c.Disaggregated {
		return "unified"
	}
	if ingress {
		return "prefill"
	}
	return "decode"
}

// scaleOut provisions one replica into the pool. The replica is appended —
// indices are stable for the run — and joins Down+provisioning; after
// ProvisionDelay an evScaleReady event flips it to Recovering, where it
// serves with a stone-cold prefix cache until its first completion (the
// warm-up cost the controller's payback check already priced in).
func (s *sim) scaleOut(t float64, ingress bool, reason string) {
	prefill := s.c.Disaggregated && ingress && !s.fallback
	var sch *batching.Scheduler
	var err error
	if prefill {
		sch, err = batching.NewPrefillScheduler(s.c.Replica)
	} else {
		sch, err = batching.NewScheduler(s.c.Replica)
	}
	if err != nil {
		// The blueprint built N replicas at newSim; it cannot fail now.
		return
	}
	role := "unified"
	if s.c.Disaggregated {
		switch {
		case !ingress:
			role = "decode"
		case s.fallback:
			role = "prefill→unified"
		default:
			role = "prefill"
		}
	}
	rep := &replica{
		idx: len(s.all), s: sch, prefill: prefill,
		health: faults.Down, provisioning: true,
		addedAt: t, downSince: t,
		stats: ReplicaStats{Role: role},
	}
	s.all = append(s.all, rep)
	if ingress {
		s.ingress = append(s.ingress, rep)
	} else {
		s.decode = append(s.decode, rep)
	}
	s.res.ScaleOuts++
	s.res.ScaleEvents = append(s.res.ScaleEvents, ScaleEvent{
		T: t, Pool: s.poolName(ingress), Verdict: autoscale.ScaleOut.String(),
		Replica: rep.idx, Reason: reason,
	})
	s.events.push(event{t: t + s.auto.ProvisionDelay, seq: s.nextSeq(), kind: evScaleReady, from: rep})
}

// scaleReady delivers a provisioned replica: it joins the pool Recovering
// (routable, cold) and warms up through real traffic.
func (s *sim) scaleReady(e event) {
	rep := e.from
	if rep.retired {
		return
	}
	rep.provisioning = false
	rep.health = faults.Recovering
	rep.s.AdvanceTo(e.t)
}

// scaleIn retires one replica through the graceful-drain path: its queued
// requests re-route to peers, its resident slots finish locally (no KV is
// ever dropped), and only then does the replica leave the fleet — the same
// machinery a fault-injected Drain uses, so run()'s drained-dry check
// completes the release. The victim is the emptiest eligible replica
// (ties to the newest, so autoscaled capacity releases before the initial
// fleet and fault-plan indices stay meaningful). Retired replicas keep
// their index — stats stay addressable — but never serve or count again.
func (s *sim) scaleIn(t float64, ingress bool, reason string) {
	pool := s.ingress
	if !ingress {
		pool = s.decode
		// Never drain the decode pool into its own fallback watermark.
		live := 0
		for _, rep := range pool {
			if !rep.retired && rep.health.Routable() {
				live++
			}
		}
		if live-1 < s.minDecode {
			return
		}
	}
	var victim *replica
	for _, rep := range pool {
		if rep.retired || rep.provisioning || !rep.health.Routable() || rep.health == faults.Recovering {
			continue
		}
		if victim == nil || s.effLoad(rep) < s.effLoad(victim) ||
			(s.effLoad(rep) == s.effLoad(victim) && rep.idx > victim.idx) {
			victim = rep
		}
	}
	if victim == nil {
		return
	}
	victim.retired = true
	victim.health = faults.Draining
	for _, r := range victim.s.EvictQueued() {
		st := s.states[r]
		st.live--
		if st.done || st.live > 0 {
			continue
		}
		s.events.push(event{t: t, seq: s.nextSeq(), kind: evRetry, req: r})
	}
	if !victim.s.Busy() {
		s.setDown(victim, t)
	}
	s.res.ScaleIns++
	s.res.ScaleEvents = append(s.res.ScaleEvents, ScaleEvent{
		T: t, Pool: s.poolName(ingress), Verdict: autoscale.ScaleIn.String(),
		Replica: victim.idx, Reason: reason,
	})
}

// recordTick appends the tick's fleet snapshot to Result.TickStats.
func (s *sim) recordTick(t float64) {
	ts := TickStat{T: t}
	var drains []float64
	for _, rep := range s.all {
		if rep.retired {
			if rep.health == faults.Draining {
				ts.Draining++
			}
			continue
		}
		switch {
		case rep.provisioning:
			ts.Provisioning++
		case rep.health == faults.Down:
		case rep.health == faults.Draining:
			ts.Draining++
		default:
			ts.Live++
			b := rep.s.Snapshot()
			ts.QueueDepth += b.Pending
			drains = append(drains, b.DrainTime)
		}
	}
	ts.DrainP50 = batching.Percentile(drains, 0.50)
	ts.DrainMax = batching.Percentile(drains, 1)
	s.res.TickStats = append(s.res.TickStats, ts)
}
