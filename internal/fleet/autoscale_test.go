package fleet

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"esti/internal/autoscale"
	"esti/internal/batching"
	"esti/internal/faults"
)

// chaosPlan is the PR 8-style chaos the acceptance criteria name: a crash
// that recovers, a crash that never does (the autoscaler must replace it),
// and a straggler window — run with the brownout watermark armed.
func chaosPlan() faults.Plan {
	var p faults.Plan
	p.Crash(1, 1.0, 5.0)
	p.Crash(2, 1.5, -1)
	p.Straggle(0, 2.0, 4.5, 3.0)
	return p
}

// autoPolicy is the tuning the fleet tests run: quarter-second ticks, a
// slack band wide enough to hand back capacity under the light tail's
// steady sub-second mean backlog, and a warm-up cost high enough that only
// clearly-profitable scale-outs fire.
func autoPolicy() *autoscale.Policy {
	return &autoscale.Policy{
		Interval:     0.25,
		MinReplicas:  2,
		MaxReplicas:  8,
		ScaleInBelow: 1.0,
		WarmupCost:   1.5,
	}
}

// chaosTrace is the headline workload: a 6-second burst at 100 req/s (the
// window the chaos plan tears through) followed by a long light tail at
// 10 req/s — the diurnal shape autoscaling exists for. SLO slack 8 s with a
// 30% high-priority tier.
func chaosTrace(n int) batching.Trace {
	tr := zipfTrace(n, 0.01, 11)
	reqs := make([]batching.Request, len(tr.Requests))
	copy(reqs, tr.Requests)
	for i := range reqs {
		if i >= 600 {
			reqs[i].Arrival = 6.0 + float64(i-600)*0.1
		}
	}
	return batching.WithSLO(batching.Trace{Requests: reqs}, 8.0, 0.3, 5)
}

const chaosTraceN = 1200 // 600 burst + 600 tail

// The acceptance bar: on the chaos trace, the autoscaled fleet holds at
// least 1.1x the static fleet's goodput at no more replica-seconds — it
// buys capacity only while the backlog repays it and hands the chips back
// in the tail.
func TestAutoscaleBeatsStatic(t *testing.T) {
	trace := chaosTrace(chaosTraceN)
	static := Config{
		Replica: replicaConfig(), Replicas: 4, Policy: Affinity,
		Faults:   chaosPlan(),
		Recovery: RecoveryPolicy{BrownoutBelow: 0.6},
	}
	auto := static
	auto.Autoscale = autoPolicy()

	sres, err := Simulate(static, trace)
	if err != nil {
		t.Fatal(err)
	}
	ares, err := Simulate(auto, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, sres, chaosTraceN)
	checkFaultInvariants(t, ares, chaosTraceN)

	goodX := float64(ares.GoodTokens) / float64(sres.GoodTokens)
	rsX := ares.ReplicaSeconds / sres.ReplicaSeconds
	t.Logf("static: good %d gen %d shed %d+%d failed %d miss %d makespan %.2f replica-s %.1f good/replica-s %.1f",
		sres.GoodTokens, sres.GenTokens, sres.Shed, sres.ShedRetry, sres.Failed,
		sres.DeadlineMisses, sres.Makespan, sres.ReplicaSeconds, sres.GoodputPerReplicaSec)
	t.Logf("auto:   good %d gen %d shed %d+%d failed %d miss %d makespan %.2f replica-s %.1f good/replica-s %.1f",
		ares.GoodTokens, ares.GenTokens, ares.Shed, ares.ShedRetry, ares.Failed,
		ares.DeadlineMisses, ares.Makespan, ares.ReplicaSeconds, ares.GoodputPerReplicaSec)
	t.Logf("auto scaling: %d ticks, %d out, %d in over %d replicas", ares.Ticks, ares.ScaleOuts, ares.ScaleIns, len(ares.PerReplica))
	for _, ev := range ares.ScaleEvents {
		t.Logf("  t=%.2f %s %s replica %d: %s", ev.T, ev.Pool, ev.Verdict, ev.Replica, ev.Reason)
	}
	t.Logf("goodput ratio %.3fx, replica-seconds ratio %.3fx", goodX, rsX)

	if goodX < 1.1 {
		t.Errorf("autoscaled goodput %.3fx of static, want >= 1.1x", goodX)
	}
	if rsX > 1.0 {
		t.Errorf("autoscaled replica-seconds %.3fx of static, want <= 1.0x", rsX)
	}
	if ares.ScaleOuts == 0 || ares.ScaleIns == 0 {
		t.Errorf("the controller never exercised both directions: %d out, %d in", ares.ScaleOuts, ares.ScaleIns)
	}
	if sres.ScaleOuts != 0 || sres.ScaleIns != 0 || sres.Ticks != 0 {
		t.Errorf("static run has autoscale activity: %d/%d/%d", sres.ScaleOuts, sres.ScaleIns, sres.Ticks)
	}
	if sres.ReplicaSeconds <= 0 || ares.GoodputPerReplicaSec <= sres.GoodputPerReplicaSec {
		t.Errorf("goodput per replica-second did not improve: auto %.2f vs static %.2f",
			ares.GoodputPerReplicaSec, sres.GoodputPerReplicaSec)
	}
}

// Acceptance: an autoscaled + faulted run replays byte-identically under
// the same seed — ticks are heap events like arrivals and faults, and the
// controller is pure state, so nothing about scaling perturbs replay.
func TestAutoscaleReplay(t *testing.T) {
	trace := batching.WithSLO(zipfTrace(400, 0.01, 11), 8.0, 0.3, 5)
	c := Config{
		Replica: replicaConfig(), Replicas: 4, Policy: Affinity, Seed: 42,
		Faults:    chaosPlan(),
		Recovery:  RecoveryPolicy{BrownoutBelow: 0.6},
		Autoscale: autoPolicy(),
	}
	a, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if a.ScaleOuts+a.ScaleIns == 0 {
		t.Fatal("replay test exercised no scaling — rebuild the scenario")
	}
	fa, fb := resultFingerprint(t, a), resultFingerprint(t, b)
	if fa != fb {
		t.Errorf("autoscaled run is not replay-identical:\n%.400s\nvs\n%.400s", fa, fb)
	}
}

// Property: over random fault plans, the per-replica lifetime windows sum
// exactly to Result.ReplicaSeconds — no window double-counts a scale event,
// none leaks. IDs stay stable (PerReplica[i].ID == i) no matter how many
// replicas were added or retired mid-trace. CI's autoscale-sim job sweeps
// CHAOS_SEED_BASE across the same matrix the chaos-sim job uses.
func TestAutoscaleReplicaSecondsSum(t *testing.T) {
	base := int64(0)
	if v := os.Getenv("CHAOS_SEED_BASE"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED_BASE %q: %v", v, err)
		}
		base = b
	}
	trace := batching.WithSLO(zipfTrace(300, 0.01, 11), 8.0, 0.3, 5)
	for seed := base; seed < base+6; seed++ {
		c := Config{
			Replica: replicaConfig(), Replicas: 4, Policy: Affinity, Seed: seed,
			Faults:    faults.RandomPlan(seed, 4, 8.0),
			Recovery:  RecoveryPolicy{BrownoutBelow: 0.5},
			Autoscale: autoPolicy(),
		}
		res, err := Simulate(c, trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkFaultInvariants(t, res, 300)
		end := 0.0
		for _, r := range res.PerReplica {
			if r.RetiredAt > end {
				end = r.RetiredAt
			}
		}
		sum := 0.0
		for i, r := range res.PerReplica {
			if r.ID != i {
				t.Errorf("seed %d: PerReplica[%d].ID = %d, want %d", seed, i, r.ID, i)
			}
			if r.AddedAt < 0 || r.RetiredAt < r.AddedAt || r.RetiredAt > end {
				t.Errorf("seed %d: replica %d window [%.3f, %.3f] out of range [0, %.3f]",
					seed, i, r.AddedAt, r.RetiredAt, end)
			}
			if i < 4 && r.AddedAt != 0 {
				t.Errorf("seed %d: initial replica %d AddedAt %.3f, want 0", seed, i, r.AddedAt)
			}
			if i >= 4 && r.AddedAt <= 0 {
				t.Errorf("seed %d: autoscaled replica %d AddedAt %.3f, want > 0", seed, i, r.AddedAt)
			}
			if r.Retired && r.FinalHealth != "retired" {
				t.Errorf("seed %d: replica %d retired but FinalHealth %q", seed, i, r.FinalHealth)
			}
			sum += r.RetiredAt - r.AddedAt
		}
		if sum != res.ReplicaSeconds {
			t.Errorf("seed %d: windows sum %.9f != ReplicaSeconds %.9f", seed, sum, res.ReplicaSeconds)
		}
		t.Logf("seed %d: %d replicas (%d out, %d in), %.1f replica-s", seed,
			len(res.PerReplica), res.ScaleOuts, res.ScaleIns, res.ReplicaSeconds)
	}
}

// squareWaveTrace rewrites a Zipf trace's arrivals into bursts: `burst`
// requests packed tightly at the start of each period, then silence — the
// load shape that makes a trigger-happy controller flap.
func squareWaveTrace(n, burst int, period float64, seed int64) batching.Trace {
	tr := zipfTrace(n, 0.01, seed)
	reqs := make([]batching.Request, len(tr.Requests))
	copy(reqs, tr.Requests)
	for i := range reqs {
		reqs[i].Arrival = float64(i/burst)*period + float64(i%burst)*0.002
	}
	return batching.Trace{Requests: reqs}
}

// Satellite: under a square-wave load whose bursts drain before the
// debounce window fills, the hysteretic controller holds the fleet steady,
// while a no-hysteresis tuning of the same law flaps. The fleet-level
// counterpart of the unit-level square-wave test.
func TestAutoscaleFlappingPrevention(t *testing.T) {
	trace := squareWaveTrace(300, 25, 3.5, 11)
	// LeastLoaded spreads each burst evenly so the whole fleet drains
	// together and the gaps read as genuine slack on every replica.
	base := Config{Replica: replicaConfig(), Replicas: 3, Policy: LeastLoaded}

	damped := base
	damped.Autoscale = &autoscale.Policy{
		Interval: 0.25, MinReplicas: 3, MaxReplicas: 6,
		ScaleOutAbove: 0.8,
		// Both debounce windows outlast the wave's phases: a burst's breach
		// lasts ~2 s (8 ticks) and a gap's slack ~2.5 s (10 ticks).
		OverTicks: 8, UnderTicks: 12, CooldownTicks: 6,
	}
	dres, err := Simulate(damped, trace)
	if err != nil {
		t.Fatal(err)
	}

	flappy := base
	flappy.Autoscale = &autoscale.Policy{
		Interval: 0.25, MinReplicas: 3, MaxReplicas: 6,
		ScaleOutAbove: 0.8,
		OverTicks:     1, UnderTicks: 1, CooldownTicks: -1, // negative = no cooldown
	}
	fres, err := Simulate(flappy, trace)
	if err != nil {
		t.Fatal(err)
	}

	// Flapping is churn, not action count: a controller that buys capacity
	// for sustained pressure and keeps it is fine; one that alternates
	// scale-out and scale-in with the wave is not. Count direction
	// reversals in the event sequence.
	reversals := func(evs []ScaleEvent) int {
		n := 0
		for i := 1; i < len(evs); i++ {
			if evs[i].Verdict != evs[i-1].Verdict {
				n++
			}
		}
		return n
	}
	dRev, fRev := reversals(dres.ScaleEvents), reversals(fres.ScaleEvents)
	t.Logf("damped: %d out %d in, %d reversals over %d ticks; trigger-happy: %d out %d in, %d reversals",
		dres.ScaleOuts, dres.ScaleIns, dRev, dres.Ticks, fres.ScaleOuts, fres.ScaleIns, fRev)
	if dRev > 0 {
		t.Errorf("hysteretic controller reversed direction %d times on a square wave, want 0", dRev)
	}
	if fRev < 2 {
		t.Errorf("trigger-happy controller reversed only %d times — the square wave did not bite", fRev)
	}
	if fres.ScaleOuts+fres.ScaleIns <= dres.ScaleOuts+dres.ScaleIns {
		t.Errorf("trigger-happy took %d actions, damped %d — hysteresis saved nothing",
			fres.ScaleOuts+fres.ScaleIns, dres.ScaleOuts+dres.ScaleIns)
	}
	if dres.Completed != 300 || fres.Completed != 300 {
		t.Errorf("square wave dropped work: damped %d, flappy %d of 300", dres.Completed, fres.Completed)
	}
}

// Satellite regression: PerReplica must describe mid-trace additions and
// removals faithfully — the added replica's window opens at its scale-out
// tick, it really served, and a retired replica's window closes at its
// release.
func TestPerReplicaMidTraceWindows(t *testing.T) {
	trace := chaosTrace(chaosTraceN)
	c := Config{
		Replica: replicaConfig(), Replicas: 4, Policy: Affinity,
		Faults:    chaosPlan(),
		Recovery:  RecoveryPolicy{BrownoutBelow: 0.6},
		Autoscale: autoPolicy(),
	}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleOuts == 0 || res.ScaleIns == 0 {
		t.Fatal("scenario exercised no scaling — rebuild it")
	}
	if len(res.PerReplica) != 4+res.ScaleOuts {
		t.Fatalf("%d PerReplica entries for 4 initial + %d scale-outs", len(res.PerReplica), res.ScaleOuts)
	}
	outsSeen, insSeen := map[int]float64{}, map[int]float64{}
	for _, ev := range res.ScaleEvents {
		switch ev.Verdict {
		case "scale-out":
			outsSeen[ev.Replica] = ev.T
		case "scale-in":
			insSeen[ev.Replica] = ev.T
		}
	}
	servedByAdded := 0
	for i, r := range res.PerReplica {
		if at, ok := outsSeen[i]; ok {
			if r.AddedAt != at {
				t.Errorf("replica %d AddedAt %.3f != scale-out event at %.3f", i, r.AddedAt, at)
			}
			servedByAdded += r.Routed + r.Completed
		}
		if at, ok := insSeen[i]; ok {
			// The window closes when the drain finishes, at or after the
			// scale-in decision — never before it.
			if !r.Retired || r.RetiredAt < at {
				t.Errorf("replica %d: retired=%v RetiredAt %.3f before scale-in event at %.3f", i, r.Retired, r.RetiredAt, at)
			}
			if r.FinalHealth != "retired" {
				t.Errorf("replica %d FinalHealth %q, want retired", i, r.FinalHealth)
			}
		}
	}
	if servedByAdded == 0 {
		t.Error("no autoscaled replica ever routed or completed a request")
	}
}

// Disaggregated pools scale independently: killing a decode replica for
// good makes the decode controller (and only it, in this scenario's tail)
// add decode capacity, while prefill holds.
func TestAutoscaleDisaggregated(t *testing.T) {
	var plan faults.Plan
	plan.Crash(3, 1.0, -1) // decode replica, never recovers
	trace := batching.WithSLO(zipfTrace(400, 0.01, 11), 10.0, 0.3, 5)
	c := Config{
		Replica: replicaConfig(), Policy: Affinity,
		Disaggregated: true, PrefillReplicas: 2, DecodeReplicas: 2,
		Faults:    plan,
		Autoscale: &autoscale.Policy{Interval: 0.25, MinReplicas: 1, MaxReplicas: 4},
	}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, res, 400)
	decodeOuts := 0
	for _, ev := range res.ScaleEvents {
		t.Logf("t=%.2f %s %s replica %d: %s", ev.T, ev.Pool, ev.Verdict, ev.Replica, ev.Reason)
		if ev.Pool != "prefill" && ev.Pool != "decode" {
			t.Errorf("disaggregated scale event on pool %q", ev.Pool)
		}
		if ev.Pool == "decode" && ev.Verdict == "scale-out" {
			decodeOuts++
		}
	}
	if decodeOuts == 0 {
		t.Error("decode pool lost half its capacity for good but never scaled out")
	}
	for i, r := range res.PerReplica {
		if i >= 4 && r.Role != "decode" && r.Role != "prefill" {
			t.Errorf("autoscaled replica %d has role %q", i, r.Role)
		}
	}
}

// Config validation: autoscale rejects the naive baseline and malformed
// policies with ErrInvalidConfig.
func TestAutoscaleConfigErrors(t *testing.T) {
	trace := zipfTrace(10, 0.01, 1)
	naive := Config{
		Replica: replicaConfig(), Replicas: 2, Policy: Affinity,
		Recovery:  RecoveryPolicy{MaxRetries: -1},
		Autoscale: autoPolicy(),
	}
	if _, err := Simulate(naive, trace); !errors.Is(err, batching.ErrInvalidConfig) {
		t.Errorf("naive + autoscale: %v, want ErrInvalidConfig", err)
	}
	bad := Config{
		Replica: replicaConfig(), Replicas: 2, Policy: Affinity,
		Autoscale: &autoscale.Policy{ScaleOutAbove: 1, ScaleInBelow: 2},
	}
	if _, err := Simulate(bad, trace); !errors.Is(err, batching.ErrInvalidConfig) {
		t.Errorf("inverted bands: %v, want ErrInvalidConfig", err)
	}
}
