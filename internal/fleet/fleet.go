// Package fleet scales the serving stack past one replica: N engine
// replicas behind a router, driven as one discrete-event simulation against
// a shared arrival stream. It composes the pieces the lower layers already
// provide — batching.Scheduler for each replica's iteration-level
// discipline, the perf model for iteration costs, the prefix cache's warm
// set as the router's affinity signal — into the cluster-level questions
// the paper stops short of: where should a request go, when should it be
// refused, and what does disaggregating prefill from decode buy at fleet
// scale.
//
// Three mechanisms, all behind one Simulate call:
//
//   - Prefix-affinity routing: a request opening with a known template is
//     sent to the replica whose cache already holds that prefix, turning
//     the fleet's prefix hit rate from per-replica luck into a routing
//     invariant. Compare against Random with CompareRouting.
//   - Disaggregated pools: prefill-only replicas complete a request at its
//     first token and hand the slot's KV to a decode replica over the
//     interconnect (the executable counterpart is EnginePair, which moves
//     real cache blocks between engines token-exactly).
//   - SLO admission: per-request deadlines and priority tiers; the router
//     sheds work the perf model says cannot finish in time (ErrDeadline)
//     and low-priority work when queues saturate (ErrOverloaded), keeping
//     chips on tokens that still count toward goodput.
package fleet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"esti/internal/batching"
)

// Policy selects how the router picks a replica for each arrival.
type Policy int

const (
	// Affinity routes to the least-loaded replica whose prefix cache is
	// already warm for the request's template, spilling to the
	// least-loaded replica overall when no replica is warm or the warm
	// ones carry more than 1.25x the fleet-average backlog (bounded load:
	// hot templates replicate onto as many replicas as their traffic
	// share needs).
	Affinity Policy = iota
	// LeastLoaded ignores templates and balances queue+slot backlog.
	LeastLoaded
	// Random routes uniformly at random (seeded) — the baseline that shows
	// what affinity buys.
	Random
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case Affinity:
		return "affinity"
	case LeastLoaded:
		return "least-loaded"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config describes a fleet: one replica blueprint stamped N times, a
// routing policy, and optionally a disaggregated split.
type Config struct {
	// Replica is the per-replica serving configuration (model, slice,
	// layout, slots). Every replica in the fleet is identical.
	Replica batching.Config
	// Replicas is the fleet size in unified mode (each replica runs both
	// phases). Ignored when Disaggregated.
	Replicas int
	// Policy is the routing policy for arrivals.
	Policy Policy
	// Disaggregated splits the fleet into PrefillReplicas prefill-only
	// replicas and DecodeReplicas decode replicas. A request prefills on
	// one pool, then its slot KV crosses the interconnect and decoding
	// resumes on the other — the fleet-scale version of the paper's
	// two-tier pipeline, with per-request handoff instead of tier batches.
	Disaggregated   bool
	PrefillReplicas int
	DecodeReplicas  int
	// MaxQueue bounds each replica's admission queue (0 = unbounded).
	// When the routed replica's queue is full, Priority-0 requests are
	// shed with ErrOverloaded; higher tiers are admitted past the bound —
	// the bound exists to protect them.
	MaxQueue int
	// HandoffBandwidth is the bytes/s available for KV handoff between
	// pools (0 = the replica chip's NetworkBandwidth). Each handoff delays
	// the decode admission by Context × KV-bytes-per-token / bandwidth.
	HandoffBandwidth float64
	// Seed drives the Random policy.
	Seed int64
}

// Outcome records what the fleet did with one request: the ingress replica
// it was routed to (-1 if refused before routing) and the sentinel error it
// was shed with (nil if it completed).
type Outcome struct {
	Req     *batching.Request
	Replica int
	Err     error
}

// ReplicaStats is one replica's share of the run.
type ReplicaStats struct {
	// Role is "unified", "prefill", or "decode".
	Role string
	// Routed counts requests this replica admitted at ingress (arrivals
	// for unified/prefill replicas, handoffs for decode replicas).
	Routed int
	// Completed counts requests whose final token this replica produced.
	Completed int
	// LocalTokens counts tokens this replica itself generated: Gen per
	// unified completion, 1 per prefill handoff, Gen-1 per decode
	// completion — so the pools' tokens sum to the fleet's GenTokens.
	LocalTokens int
}

// Result aggregates a fleet simulation.
type Result struct {
	Completed int
	// Rejected counts requests no slot could ever hold (ErrPromptTooLong).
	Rejected int
	// Shed counts admissible requests the router refused for SLO reasons
	// (ErrDeadline, ErrOverloaded).
	Shed int
	// DeadlineMisses counts completed requests that finished past their
	// deadline: served, but not goodput.
	DeadlineMisses int
	// GenTokens counts all generated tokens of completed requests;
	// GoodTokens only those that met their deadline (or had none).
	GenTokens  int
	GoodTokens int
	// Makespan is the last completion time; GenTokensPerSec the fleet's
	// generated-token rate over it.
	Makespan        float64
	GenTokensPerSec float64
	// GoodputPerChip is goodput tokens/s divided by the fleet's total chip
	// count — the paper's cost axis, extended to SLO-aware serving.
	GoodputPerChip float64
	MeanLatency    float64
	P50, P99       float64
	// AffinityHits/Misses count templated admissions that landed on a
	// replica already warm (or not) for their template — the routing-level
	// hit rate, tracked under every policy so baselines are comparable.
	AffinityHits   int
	AffinityMisses int
	// Handoffs and HandoffBytes measure the disaggregated KV traffic.
	Handoffs     int
	HandoffBytes float64
	PerReplica   []ReplicaStats
	Outcomes     []Outcome
}

// replica couples a scheduler with its fleet role.
type replica struct {
	s       *batching.Scheduler
	prefill bool
	stats   ReplicaStats
}

type event struct {
	t       float64
	seq     int
	handoff bool
	req     *batching.Request
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }

type sim struct {
	c       Config
	ingress []*replica // unified replicas, or the prefill pool
	decode  []*replica // nil in unified mode
	all     []*replica
	events  eventHeap
	seq     int
	rng     *rand.Rand
	res     Result
	kvBytes float64 // handoff bytes per prompt token
	bw      float64
	lat     []float64
}

// Simulate routes the trace through the fleet and returns the aggregate
// result. The input trace is not mutated; Outcomes reference internal
// copies. ErrInvalidTrace aborts the run (a malformed trace is a builder
// bug, not load).
func Simulate(c Config, trace batching.Trace) (Result, error) {
	s, err := newSim(c)
	if err != nil {
		return Result{}, err
	}
	reqs := make([]batching.Request, len(trace.Requests))
	copy(reqs, trace.Requests)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	for i := range reqs {
		if err := c.Replica.CheckRequest(reqs[i]); errors.Is(err, batching.ErrInvalidTrace) {
			return Result{}, err
		}
		reqs[i].Slot = -1
		s.events.push(event{t: reqs[i].Arrival, seq: s.nextSeq(), req: &reqs[i]})
	}
	s.run()
	return s.finish(), nil
}

func newSim(c Config) (*sim, error) {
	s := &sim{c: c, rng: rand.New(rand.NewSource(c.Seed))}
	mk := func(prefill bool, role string) error {
		var sch *batching.Scheduler
		var err error
		if prefill {
			sch, err = batching.NewPrefillScheduler(c.Replica)
		} else {
			sch, err = batching.NewScheduler(c.Replica)
		}
		if err != nil {
			return err
		}
		r := &replica{s: sch, prefill: prefill, stats: ReplicaStats{Role: role}}
		s.all = append(s.all, r)
		if prefill || !c.Disaggregated {
			s.ingress = append(s.ingress, r)
		} else {
			s.decode = append(s.decode, r)
		}
		return nil
	}
	if c.Disaggregated {
		if c.PrefillReplicas < 1 || c.DecodeReplicas < 1 {
			return nil, fmt.Errorf("fleet: %w: disaggregated needs prefill and decode replicas, got %d/%d",
				batching.ErrInvalidConfig, c.PrefillReplicas, c.DecodeReplicas)
		}
		for i := 0; i < c.PrefillReplicas; i++ {
			if err := mk(true, "prefill"); err != nil {
				return nil, err
			}
		}
		for i := 0; i < c.DecodeReplicas; i++ {
			if err := mk(false, "decode"); err != nil {
				return nil, err
			}
		}
		s.kvBytes = c.Replica.Model.KVBytesPerTokenAs(c.Replica.KVDType)
		s.bw = c.HandoffBandwidth
		if s.bw <= 0 {
			s.bw = c.Replica.System.Chip.NetworkBandwidth
		}
		if s.bw <= 0 || math.IsNaN(s.bw) {
			return nil, fmt.Errorf("fleet: %w: handoff bandwidth %g", batching.ErrInvalidConfig, s.bw)
		}
	} else {
		if c.Replicas < 1 {
			return nil, fmt.Errorf("fleet: %w: %d replicas", batching.ErrInvalidConfig, c.Replicas)
		}
		for i := 0; i < c.Replicas; i++ {
			if err := mk(false, "unified"); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func (s *sim) nextSeq() int { s.seq++; return s.seq }

// run is the fleet's event loop: repeatedly step the busy replica with the
// earliest clock, unless the next router event (arrival or KV handoff)
// precedes every busy replica — then deliver that event. Replica iterations
// are atomic (a request arriving mid-iteration queues until the next), the
// same granularity the single-replica Simulate has.
func (s *sim) run() {
	for {
		next := math.Inf(1)
		if len(s.events) > 0 {
			next = s.events[0].t
		}
		var b *replica
		for _, r := range s.all {
			if r.s.Busy() && r.s.Now() < next && (b == nil || r.s.Now() < b.s.Now()) {
				b = r
			}
		}
		if b != nil {
			_, done := b.s.Step()
			for _, req := range done {
				if b.prefill {
					s.handoff(b, req)
				} else {
					s.complete(b, req)
				}
			}
			continue
		}
		if len(s.events) == 0 {
			return
		}
		e := s.events.pop()
		if e.handoff {
			s.admitDecode(e)
		} else {
			s.route(e)
		}
	}
}

// route delivers one arrival: screen it, pick an ingress replica, apply SLO
// admission, enqueue.
func (s *sim) route(e event) {
	r := e.req
	if err := s.c.Replica.CheckRequest(*r); err != nil {
		s.res.Rejected++
		s.res.Outcomes = append(s.res.Outcomes, Outcome{Req: r, Replica: -1, Err: err})
		return
	}
	idx := s.pick(r)
	target := s.ingress[idx]
	target.s.AdvanceTo(e.t)
	if r.Template != 0 && s.c.Replica.PrefixCache {
		if target.s.HasTemplate(r.Template) {
			s.res.AffinityHits++
		} else {
			s.res.AffinityMisses++
		}
	}
	if r.Deadline > 0 && s.estimate(target, r) > r.Deadline {
		s.res.Shed++
		s.res.Outcomes = append(s.res.Outcomes, Outcome{Req: r, Replica: idx,
			Err: fmt.Errorf("fleet: %w: request %d estimated past %.3f", batching.ErrDeadline, r.ID, r.Deadline)})
		return
	}
	if s.c.MaxQueue > 0 && target.s.Pending() >= s.c.MaxQueue && r.Priority <= 0 {
		s.res.Shed++
		s.res.Outcomes = append(s.res.Outcomes, Outcome{Req: r, Replica: idx,
			Err: fmt.Errorf("fleet: %w: request %d, queue %d full", batching.ErrOverloaded, r.ID, target.s.Pending())})
		return
	}
	target.s.Enqueue(r)
	target.stats.Routed++
	s.res.Outcomes = append(s.res.Outcomes, Outcome{Req: r, Replica: idx})
}

// pick chooses the ingress replica for a request under the configured
// policy.
func (s *sim) pick(r *batching.Request) int {
	leastLoaded := func() int {
		best := 0
		for i, rep := range s.ingress {
			if rep.s.Load() < s.ingress[best].s.Load() {
				best = i
			}
		}
		return best
	}
	switch s.c.Policy {
	case Random:
		return s.rng.Intn(len(s.ingress))
	case Affinity:
		if r.Template != 0 && s.c.Replica.PrefixCache {
			best, total := -1, 0
			for i, rep := range s.ingress {
				total += rep.s.Load()
				if rep.s.HasTemplate(r.Template) && (best < 0 || rep.s.Load() < s.ingress[best].s.Load()) {
					best = i
				}
			}
			// Bounded load: the warm replica wins unless its backlog is
			// more than 1.25x the fleet average — then the request spills
			// to the least-loaded replica, whose cold prefill warms the
			// template there too. Hot templates thus replicate onto just
			// enough replicas to carry their share of the traffic.
			bound := 1.25*float64(total)/float64(len(s.ingress)) + 1
			if best >= 0 && float64(s.ingress[best].s.Load()) <= bound {
				return best
			}
		}
		return leastLoaded()
	default:
		return leastLoaded()
	}
}

// estimate predicts the request's completion time on the chosen ingress
// replica — plus, in disaggregated mode, the handoff delay and the decode
// pool's service — for the shed-on-deadline decision.
func (s *sim) estimate(target *replica, r *batching.Request) float64 {
	est := target.s.EstimateFinish(r, false)
	if !s.c.Disaggregated {
		return est
	}
	dec := s.decode[s.pickDecode()]
	return est + s.handoffDelay(r) + (dec.s.EstimateFinish(r, true) - dec.s.Now())
}

func (s *sim) handoffDelay(r *batching.Request) float64 {
	return float64(r.Context) * s.kvBytes / s.bw
}

// handoff queues a prefill completion's KV transfer to the decode pool.
func (s *sim) handoff(from *replica, r *batching.Request) {
	bytes := float64(r.Context) * s.kvBytes
	s.res.Handoffs++
	s.res.HandoffBytes += bytes
	from.stats.LocalTokens++ // the prefill pool produced the first token
	s.events.push(event{t: from.s.Now() + bytes/s.bw, seq: s.nextSeq(), handoff: true, req: r})
}

// admitDecode delivers a handoff: the request's KV is now resident on a
// decode replica, which generates the remaining Gen-1 tokens.
func (s *sim) admitDecode(e event) {
	idx := s.pickDecode()
	target := s.decode[idx]
	target.s.AdvanceTo(e.t)
	target.s.EnqueueDecodeOnly(e.req)
	target.stats.Routed++
}

func (s *sim) pickDecode() int {
	best := 0
	for i, rep := range s.decode {
		if rep.s.Load() < s.decode[best].s.Load() {
			best = i
		}
	}
	return best
}

// complete books a final-token completion on a unified or decode replica.
func (s *sim) complete(on *replica, r *batching.Request) {
	s.res.Completed++
	s.res.GenTokens += r.Gen
	on.stats.Completed++
	if on.prefill {
		// unreachable: prefill replicas hand off instead
		return
	}
	if s.c.Disaggregated {
		on.stats.LocalTokens += r.Gen - 1
	} else {
		on.stats.LocalTokens += r.Gen
	}
	if r.Deadline > 0 && r.Done > r.Deadline {
		s.res.DeadlineMisses++
	} else {
		s.res.GoodTokens += r.Gen
	}
	if r.Done > s.res.Makespan {
		s.res.Makespan = r.Done
	}
	s.lat = append(s.lat, r.Done-r.Arrival)
}

func (s *sim) finish() Result {
	res := s.res
	for _, r := range s.all {
		res.PerReplica = append(res.PerReplica, r.stats)
	}
	chips := float64(len(s.all) * s.c.Replica.System.Chips())
	if res.Makespan > 0 {
		res.GenTokensPerSec = float64(res.GenTokens) / res.Makespan
		res.GoodputPerChip = float64(res.GoodTokens) / (res.Makespan * chips)
	}
	if len(s.lat) > 0 {
		sort.Float64s(s.lat)
		sum := 0.0
		for _, l := range s.lat {
			sum += l
		}
		res.MeanLatency = sum / float64(len(s.lat))
		pct := func(p float64) float64 { return s.lat[int(p*float64(len(s.lat)-1))] }
		res.P50, res.P99 = pct(0.50), pct(0.99)
	} else {
		res.MeanLatency = math.NaN()
	}
	return res
}

// RoutingComparison holds the same fleet run under prefix-affinity and
// random routing.
type RoutingComparison struct {
	Affinity Result
	Random   Result
	// Speedup is affinity's generated-token rate over random's.
	Speedup float64
}

// CompareRouting runs the trace twice through an identical fleet — once
// with prefix-affinity routing, once with random — the experiment behind
// the claim that affinity turns template popularity into throughput.
func CompareRouting(c Config, trace batching.Trace) (RoutingComparison, error) {
	ca := c
	ca.Policy = Affinity
	aff, err := Simulate(ca, trace)
	if err != nil {
		return RoutingComparison{}, err
	}
	cr := c
	cr.Policy = Random
	rnd, err := Simulate(cr, trace)
	if err != nil {
		return RoutingComparison{}, err
	}
	cmp := RoutingComparison{Affinity: aff, Random: rnd}
	if rnd.GenTokensPerSec > 0 {
		cmp.Speedup = aff.GenTokensPerSec / rnd.GenTokensPerSec
	}
	return cmp, nil
}
