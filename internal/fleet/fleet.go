// Package fleet scales the serving stack past one replica: N engine
// replicas behind a router, driven as one discrete-event simulation against
// a shared arrival stream. It composes the pieces the lower layers already
// provide — batching.Scheduler for each replica's iteration-level
// discipline, the perf model for iteration costs, the prefix cache's warm
// set as the router's affinity signal — into the cluster-level questions
// the paper stops short of: where should a request go, when should it be
// refused, and what does disaggregating prefill from decode buy at fleet
// scale.
//
// Four mechanisms, all behind one Simulate call:
//
//   - Prefix-affinity routing: a request opening with a known template is
//     sent to the replica whose cache already holds that prefix, turning
//     the fleet's prefix hit rate from per-replica luck into a routing
//     invariant. Compare against Random with CompareRouting.
//   - Disaggregated pools: prefill-only replicas complete a request at its
//     first token and hand the slot's KV to a decode replica over the
//     interconnect (the executable counterpart is EnginePair, which moves
//     real cache blocks between engines token-exactly).
//   - SLO admission: per-request deadlines and priority tiers; the router
//     sheds work the perf model says cannot finish in time (ErrDeadline)
//     and low-priority work when queues saturate (ErrOverloaded), keeping
//     chips on tokens that still count toward goodput.
//   - Fault tolerance: a deterministic faults.Plan injects replica crashes,
//     graceful drains, straggler slowdowns, and handoff-link outages into
//     the same event heap. Replicas move through a health state machine,
//     crashed requests re-route with capped exponential backoff (or are
//     shed as ErrDeadline when the retry cannot make its SLO, or fail as
//     ErrReplicaDown when retries run out), stragglers get their stuck
//     work hedged to a second replica (first completion wins, the loser's
//     tokens are wasted work under ErrHedged), and the fleet degrades
//     gracefully — disaggregated serving falls back to unified when the
//     decode pool dies, and a brownout watermark sheds low-tier arrivals
//     while capacity is short. RecoveryPolicy tunes all of it; Result's
//     fault accounting (Retries, Hedges, Wasted*, per-replica Downtime,
//     RecoveryP99) turns goodput-under-faults into a measured number.
package fleet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"esti/internal/autoscale"
	"esti/internal/batching"
	"esti/internal/faults"
)

// Policy selects how the router picks a replica for each arrival.
type Policy int

const (
	// Affinity routes to the least-loaded replica whose prefix cache is
	// already warm for the request's template, spilling to the
	// least-loaded replica overall when no replica is warm or the warm
	// ones carry more than 1.25x the fleet-average backlog (bounded load:
	// hot templates replicate onto as many replicas as their traffic
	// share needs).
	Affinity Policy = iota
	// LeastLoaded ignores templates and balances queue+slot backlog.
	LeastLoaded
	// Random routes uniformly at random (seeded) — the baseline that shows
	// what affinity buys.
	Random
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case Affinity:
		return "affinity"
	case LeastLoaded:
		return "least-loaded"
	case Random:
		return "random"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config describes a fleet: one replica blueprint stamped N times, a
// routing policy, and optionally a disaggregated split.
type Config struct {
	// Replica is the per-replica serving configuration (model, slice,
	// layout, slots). Every replica in the fleet is identical.
	Replica batching.Config
	// Replicas is the fleet size in unified mode (each replica runs both
	// phases). Ignored when Disaggregated.
	Replicas int
	// Policy is the routing policy for arrivals.
	Policy Policy
	// Disaggregated splits the fleet into PrefillReplicas prefill-only
	// replicas and DecodeReplicas decode replicas. A request prefills on
	// one pool, then its slot KV crosses the interconnect and decoding
	// resumes on the other — the fleet-scale version of the paper's
	// two-tier pipeline, with per-request handoff instead of tier batches.
	Disaggregated   bool
	PrefillReplicas int
	DecodeReplicas  int
	// MaxQueue bounds each replica's admission queue (0 = unbounded).
	// When the routed replica's queue is full, Priority-0 requests are
	// shed with ErrOverloaded; higher tiers are admitted past the bound —
	// the bound exists to protect them.
	MaxQueue int
	// HandoffBandwidth is the bytes/s available for KV handoff between
	// pools (0 = the replica chip's NetworkBandwidth). Each handoff delays
	// the decode admission by Context × KV-bytes-per-token / bandwidth.
	HandoffBandwidth float64
	// Seed drives the Random policy.
	Seed int64
	// Faults schedules deterministic fault injection: crashes, drains,
	// straggler windows, link outages. The zero value is fault-free. The
	// plan is validated against the fleet size (wrapped ErrInvalidConfig
	// on mismatch); replica indices follow the fleet's replica order
	// (prefill pool first in disaggregated mode).
	Faults faults.Plan
	// Recovery tunes how the router survives the fault plan. The zero
	// value is the sensible default (3 retries, 50 ms base backoff,
	// hedging on); MaxRetries -1 selects the naive health-blind baseline.
	Recovery RecoveryPolicy
	// Autoscale arms the perf-model-driven control loop: control ticks run
	// as first-class events in the simulation heap, and each pool (prefill
	// and decode independently when Disaggregated) scales out or in under
	// the policy's hysteresis bands. Nil disables autoscaling (the fleet
	// stays at its configured size); zero fields in a non-nil policy take
	// the autoscale package defaults. Incompatible with the naive baseline
	// (Recovery.MaxRetries -1): a health-blind router would route work to
	// still-provisioning replicas.
	Autoscale *autoscale.Policy
}

// Outcome records what the fleet did with one request: the ingress replica
// it was last routed to (-1 if refused before routing or failed with the
// fleet down) and the sentinel error it ended with (nil if it completed).
// There is exactly one Outcome per trace request, updated in place across
// retries, so Outcomes always partitions the trace.
type Outcome struct {
	Req     *batching.Request
	Replica int
	Err     error
}

// ReplicaStats is one replica's share of the run.
type ReplicaStats struct {
	// ID is the replica's stable index for the whole run: replicas are only
	// ever appended (scale-out) or retired in place (scale-in), never
	// reindexed, so ID always equals the replica's position in PerReplica
	// and fault-plan indices stay meaningful across scale events.
	ID int
	// Role is "unified", "prefill", "decode", or "prefill→unified" after a
	// graceful-degradation fallback.
	Role string
	// AddedAt and RetiredAt bound the replica's provisioned lifetime
	// window: [0, end-of-run] for the initial fleet, [scale-out tick,
	// scale-in tick] for autoscaled capacity. RetiredAt is the end-of-run
	// clock for replicas never released; Retired distinguishes a replica
	// the autoscaler released from one that merely ran to the end (or died
	// there). The windows sum exactly to Result.ReplicaSeconds.
	AddedAt, RetiredAt float64
	Retired            bool
	// Routed counts requests this replica admitted at ingress (arrivals
	// for unified/prefill replicas, handoffs for decode replicas).
	Routed int
	// Completed counts requests whose final token this replica produced.
	Completed int
	// LocalTokens counts tokens this replica itself generated and that the
	// fleet kept: Gen per unified completion, 1 per handed-off prefill
	// whose request completed, Gen-1 per decode completion — so the pools'
	// tokens sum to the fleet's GenTokens; discarded work is in the wasted
	// ledger instead.
	LocalTokens int
	// Crashes counts Crash fault events this replica absorbed.
	Crashes int
	// Downtime is total time spent Down (crash to recovery, or to the end
	// of the run).
	Downtime float64
	// WastedTokens counts KV positions and generated tokens discarded on
	// this replica (crash losses and lost hedge races).
	WastedTokens int
	// FinalHealth is the replica's health state when the run ended.
	FinalHealth string
}

// Result aggregates a fleet simulation.
type Result struct {
	Completed int
	// Rejected counts requests no slot could ever hold (ErrPromptTooLong).
	Rejected int
	// Shed counts admissible requests the router refused at admission for
	// SLO reasons (ErrDeadline, ErrOverloaded — including brownout sheds).
	Shed int
	// ShedRetry counts post-crash retries shed because the re-route
	// estimate already missed the deadline (ErrDeadline) — kept separate
	// from admission-time Shed so recovery pressure is visible.
	ShedRetry int
	// Failed counts requests lost to replica failures for good: retries
	// exhausted, or never retried under the naive policy (ErrReplicaDown).
	Failed int
	// DeadlineMisses counts completed requests that finished past their
	// deadline: served, but not goodput.
	DeadlineMisses int
	// GenTokens counts all generated tokens of completed requests;
	// GoodTokens only those that met their deadline (or had none).
	GenTokens  int
	GoodTokens int
	// Makespan is the last completion time; GenTokensPerSec the fleet's
	// generated-token rate over it.
	Makespan        float64
	GenTokensPerSec float64
	// GoodputPerChip is goodput tokens/s divided by the fleet's total chip
	// count — the paper's cost axis, extended to SLO-aware serving.
	GoodputPerChip float64
	MeanLatency    float64
	P50, P99       float64
	// AffinityHits/Misses count templated arrivals that landed on a
	// replica already warm (or not) for their template — the routing-level
	// hit rate, tracked under every policy so baselines are comparable.
	AffinityHits   int
	AffinityMisses int
	// Handoffs and HandoffBytes measure the disaggregated KV traffic
	// (retransmissions after a failed handoff count again).
	Handoffs     int
	HandoffBytes float64
	// Retries counts post-loss re-route attempts; Hedges counts duplicate
	// copies launched against stragglers, HedgeWins those races the
	// duplicate won.
	Retries   int
	Hedges    int
	HedgeWins int
	// WastedPrefillTokens / WastedDecodeTokens total the KV positions and
	// generated tokens the fleet computed and then discarded (crash
	// losses, lost hedge races, stranded handoffs); Wasted itemizes them.
	// Every discarded token is counted exactly once.
	WastedPrefillTokens int
	WastedDecodeTokens  int
	Wasted              []WastedWork
	// RecoveryP99 is the p99 of completion-minus-first-loss over requests
	// that survived losing a replica (0 when none did): how long recovery
	// takes at the tail.
	RecoveryP99 float64
	PerReplica  []ReplicaStats
	Outcomes    []Outcome
	// Autoscale accounting. ReplicaSeconds is the provisioned capacity the
	// run actually spent — each replica's lifetime window summed, whether
	// or not Autoscale was armed — and GoodputPerReplicaSec is goodput
	// divided by it: the cost axis on which a static and an autoscaled
	// fleet compare fairly. Ticks counts control intervals, ScaleOuts and
	// ScaleIns the executed actions, ScaleEvents the audit trail, and
	// TickStats the per-tick fleet snapshots the controller decided on.
	ReplicaSeconds       float64
	GoodputPerReplicaSec float64
	Ticks                int
	ScaleOuts, ScaleIns  int
	ScaleEvents          []ScaleEvent
	TickStats            []TickStat
}

// WastedWork is one discarded piece of computed work: KV positions and
// generated tokens that cost chip-time but never reached a caller.
type WastedWork struct {
	ReqID int
	// Replica is where the discarded copy was computed (for in-flight
	// handoffs, the prefill replica that produced the KV).
	Replica int
	// Cause is ErrReplicaDown for crash and stranded-handoff losses,
	// ErrHedged for lost hedge races.
	Cause error
	// PrefillTokens counts discarded prompt KV positions, DecodedTokens
	// discarded generated tokens.
	PrefillTokens int
	DecodedTokens int
}

// replica couples a scheduler with its fleet role and health.
type replica struct {
	idx     int
	s       *batching.Scheduler
	prefill bool
	health  faults.Health
	// downSince is when the replica last went Down (for Downtime).
	downSince float64
	// Autoscale lifecycle: addedAt is when the replica was provisioned (0
	// for the initial fleet), provisioning marks the window before its
	// evScaleReady fires, and retired/retiredAt mark an autoscale release —
	// a retired replica keeps its index but never serves or counts again.
	addedAt      float64
	provisioning bool
	retired      bool
	retiredAt    float64
	stats        ReplicaStats
}

type eventKind int

const (
	evArrival eventKind = iota
	evHandoff
	evRetry
	evFault
	// evTick is an autoscale control tick; evScaleReady delivers a
	// provisioned replica (event.from) into service.
	evTick
	evScaleReady
)

type event struct {
	t    float64
	seq  int
	kind eventKind
	req  *batching.Request
	// from is the prefill replica that produced an evHandoff's KV.
	from  *replica
	fault faults.Event
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *eventHeap) push(e event) { heap.Push(h, e) }
func (h *eventHeap) pop() event   { return heap.Pop(h).(event) }

// reqState is the router's view of one trace request across retries and
// hedge copies: every copy's *Request maps to the same state.
type reqState struct {
	orig *batching.Request
	// live counts copies currently in the system (queued, in a slot, or
	// in handoff flight).
	live int
	// done marks the request served; later copies are wasted work.
	done bool
	// hedged marks that a duplicate was launched (at most one per request).
	hedged bool
	// attempts counts post-loss re-routes consumed.
	attempts int
	// firstLoss is when the request first lost a replica (-1 = never).
	firstLoss float64
	// outIdx is the request's slot in Result.Outcomes (-1 until first
	// disposition); retries update the entry in place.
	outIdx int
}

type sim struct {
	c       Config
	ingress []*replica // unified replicas, or the prefill pool
	decode  []*replica // nil in unified mode
	all     []*replica
	events  eventHeap
	seq     int
	rng     *rand.Rand
	res     Result
	kvBytes float64 // handoff bytes per prompt token
	bw      float64
	lat     []float64

	// Fault state.
	states     map[*batching.Request]*reqState
	origin     map[*batching.Request]*replica // in-handoff request → prefill replica owed first-token credit
	linkDown   bool
	held       []event // handoffs buffered while the link is down
	fallback   bool    // prefill pool converted to unified serving
	naive      bool    // Recovery.MaxRetries < 0: health-blind, no retries, no hedges
	maxRetries int
	backoff    float64
	backoffCap float64
	minDecode  int
	recov      []float64 // completion − firstLoss per recovered request
	lastT      float64   // latest simulation time observed

	// Autoscale state (nil/zero when Config.Autoscale is nil).
	auto       *autoscale.Policy     // effective (defaulted) policy
	ctlIngress *autoscale.Controller // unified fleet or prefill pool
	ctlDecode  *autoscale.Controller // decode pool when disaggregated
	recovers   map[int][]float64     // plan-scheduled Recover times per replica
	prevShed   int                   // shed counter at the previous tick
	prevMiss   int                   // miss+fail counter at the previous tick
}

// Simulate routes the trace through the fleet and returns the aggregate
// result. The input trace is not mutated; Outcomes reference internal
// copies. ErrInvalidTrace aborts the run (a malformed trace is a builder
// bug, not load).
func Simulate(c Config, trace batching.Trace) (Result, error) {
	s, err := newSim(c)
	if err != nil {
		return Result{}, err
	}
	reqs := make([]batching.Request, len(trace.Requests))
	copy(reqs, trace.Requests)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival })
	// Fault events enter the heap first: an equal-time fault fires before
	// the arrivals of that instant (seq breaks the tie deterministically).
	for _, f := range c.Faults.Sorted() {
		s.events.push(event{t: f.At, seq: s.nextSeq(), kind: evFault, fault: f})
	}
	if s.auto != nil {
		// The first control tick lands one interval in; ticks re-arm
		// themselves while the run has work, so no tick survives the trace.
		s.events.push(event{t: s.auto.Interval, seq: s.nextSeq(), kind: evTick})
	}
	for i := range reqs {
		if err := c.Replica.CheckRequest(reqs[i]); errors.Is(err, batching.ErrInvalidTrace) {
			return Result{}, err
		}
		reqs[i].Slot = -1
		s.states[&reqs[i]] = &reqState{orig: &reqs[i], firstLoss: -1, outIdx: -1}
		s.events.push(event{t: reqs[i].Arrival, seq: s.nextSeq(), kind: evArrival, req: &reqs[i]})
	}
	s.run()
	return s.finish(), nil
}

func newSim(c Config) (*sim, error) {
	s := &sim{
		c:      c,
		rng:    rand.New(rand.NewSource(c.Seed)),
		states: map[*batching.Request]*reqState{},
		origin: map[*batching.Request]*replica{},
	}
	mk := func(prefill bool, role string) error {
		var sch *batching.Scheduler
		var err error
		if prefill {
			sch, err = batching.NewPrefillScheduler(c.Replica)
		} else {
			sch, err = batching.NewScheduler(c.Replica)
		}
		if err != nil {
			return err
		}
		r := &replica{idx: len(s.all), s: sch, prefill: prefill, stats: ReplicaStats{Role: role}}
		s.all = append(s.all, r)
		if prefill || !c.Disaggregated {
			s.ingress = append(s.ingress, r)
		} else {
			s.decode = append(s.decode, r)
		}
		return nil
	}
	if c.Disaggregated {
		if c.PrefillReplicas < 1 || c.DecodeReplicas < 1 {
			return nil, fmt.Errorf("fleet: %w: disaggregated needs prefill and decode replicas, got %d/%d",
				batching.ErrInvalidConfig, c.PrefillReplicas, c.DecodeReplicas)
		}
		for i := 0; i < c.PrefillReplicas; i++ {
			if err := mk(true, "prefill"); err != nil {
				return nil, err
			}
		}
		for i := 0; i < c.DecodeReplicas; i++ {
			if err := mk(false, "decode"); err != nil {
				return nil, err
			}
		}
		s.kvBytes = c.Replica.Model.KVBytesPerTokenAs(c.Replica.KVDType)
		s.bw = c.HandoffBandwidth
		if s.bw <= 0 {
			s.bw = c.Replica.System.Chip.NetworkBandwidth
		}
		if s.bw <= 0 || math.IsNaN(s.bw) {
			return nil, fmt.Errorf("fleet: %w: handoff bandwidth %g", batching.ErrInvalidConfig, s.bw)
		}
	} else {
		if c.Replicas < 1 {
			return nil, fmt.Errorf("fleet: %w: %d replicas", batching.ErrInvalidConfig, c.Replicas)
		}
		for i := 0; i < c.Replicas; i++ {
			if err := mk(false, "unified"); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Faults.Validate(len(s.all)); err != nil {
		return nil, fmt.Errorf("fleet: %w: %v", batching.ErrInvalidConfig, err)
	}
	p := c.Recovery
	s.naive = p.MaxRetries < 0
	s.maxRetries = p.MaxRetries
	if s.maxRetries <= 0 {
		s.maxRetries = defaultMaxRetries
	}
	if s.naive {
		s.maxRetries = 0
	}
	s.backoff = p.Backoff
	if s.backoff <= 0 {
		s.backoff = defaultBackoff
	}
	s.backoffCap = p.BackoffCap
	if s.backoffCap <= 0 {
		s.backoffCap = defaultBackoffCap
	}
	s.minDecode = p.FallbackDecodeMin
	if s.minDecode < 1 {
		s.minDecode = 1
	}
	if c.Autoscale != nil && s.naive {
		return nil, fmt.Errorf("fleet: %w: autoscale requires health-aware recovery (Recovery.MaxRetries >= 0)",
			batching.ErrInvalidConfig)
	}
	if err := s.initAutoscale(); err != nil {
		return nil, fmt.Errorf("fleet: %w: %v", batching.ErrInvalidConfig, err)
	}
	return s, nil
}

func (s *sim) nextSeq() int { s.seq++; return s.seq }

// run is the fleet's event loop: repeatedly step the busy live replica with
// the earliest clock, unless the next router event (arrival, handoff,
// retry, or fault) precedes every busy replica — then deliver that event.
// Replica iterations are atomic (a request arriving mid-iteration queues
// until the next), the same granularity the single-replica Simulate has.
// Down replicas never step: under the naive policy their queues sit there,
// silently eaten, until finish() books them as failures.
func (s *sim) run() {
	for {
		next := math.Inf(1)
		if len(s.events) > 0 {
			next = s.events[0].t
		}
		var b *replica
		for _, r := range s.all {
			if r.health == faults.Down {
				continue
			}
			if r.s.Busy() && r.s.Now() < next && (b == nil || r.s.Now() < b.s.Now()) {
				b = r
			}
		}
		if b != nil {
			_, done := b.s.Step()
			if b.s.Now() > s.lastT {
				s.lastT = b.s.Now()
			}
			for _, req := range done {
				if b.prefill {
					s.handoff(b, req)
				} else {
					s.complete(b, req)
				}
			}
			if b.health == faults.Draining && !b.s.Busy() {
				// Drained dry: the last in-flight sequence finished.
				s.setDown(b, b.s.Now())
			}
			continue
		}
		if len(s.events) == 0 {
			if len(s.held) > 0 {
				// The link never came back: the buffered handoffs' KV is
				// stranded at the senders. Fail them (→ retry from scratch).
				s.failHeld()
				continue
			}
			return
		}
		e := s.events.pop()
		if e.t > s.lastT {
			s.lastT = e.t
		}
		switch e.kind {
		case evFault:
			s.applyFault(e)
		case evHandoff:
			s.admitDecode(e)
		case evRetry:
			s.deliver(e.req, e.t, true)
		case evTick:
			s.tick(e.t)
		case evScaleReady:
			s.scaleReady(e)
		default:
			s.deliver(e.req, e.t, false)
		}
	}
}

// deliver routes one arrival or retry: screen it, pick a live ingress
// replica, apply brownout and SLO admission, enqueue.
func (s *sim) deliver(r *batching.Request, t float64, isRetry bool) {
	st := s.states[r]
	if st.done {
		return
	}
	if !isRetry {
		if err := s.c.Replica.CheckRequest(*r); err != nil {
			s.res.Rejected++
			s.setOutcome(st, -1, err)
			return
		}
	}
	cand := s.routable()
	if len(cand) == 0 {
		// Nowhere to go: every ingress replica is down or draining. The
		// router holds the request and retries after backoff (which fails
		// it once attempts run out).
		s.retryOrFail(st, t)
		return
	}
	if !isRetry && r.Priority <= 0 && s.brownout() {
		live, total := s.liveFraction()
		s.res.Shed++
		s.setOutcome(st, -1, fmt.Errorf("fleet: %w: request %d shed in brownout (%d/%d replicas live)",
			batching.ErrOverloaded, r.ID, live, total))
		return
	}
	idx := s.pick(r, cand)
	target := s.ingress[idx]
	target.s.AdvanceTo(t)
	if !isRetry && r.Template != 0 && s.c.Replica.PrefixCache {
		if target.s.HasTemplate(r.Template) {
			s.res.AffinityHits++
		} else {
			s.res.AffinityMisses++
		}
	}
	if r.Deadline > 0 && s.estimate(target, r) > r.Deadline {
		if isRetry {
			s.res.ShedRetry++
			s.setOutcome(st, idx, fmt.Errorf("fleet: %w: request %d retry %d estimated past %.3f",
				batching.ErrDeadline, r.ID, st.attempts, r.Deadline))
		} else {
			s.res.Shed++
			s.setOutcome(st, idx, fmt.Errorf("fleet: %w: request %d estimated past %.3f",
				batching.ErrDeadline, r.ID, r.Deadline))
		}
		return
	}
	if !isRetry && s.c.MaxQueue > 0 && target.s.Pending() >= s.c.MaxQueue && r.Priority <= 0 {
		s.res.Shed++
		s.setOutcome(st, idx, fmt.Errorf("fleet: %w: request %d, queue %d full",
			batching.ErrOverloaded, r.ID, target.s.Pending()))
		return
	}
	target.s.Enqueue(r)
	target.stats.Routed++
	st.live++
	s.setOutcome(st, idx, nil)
}

// setOutcome records (or updates in place) the request's single Outcome
// entry, keeping Outcomes a partition of the trace across retries.
func (s *sim) setOutcome(st *reqState, replica int, err error) {
	if st.outIdx < 0 {
		st.outIdx = len(s.res.Outcomes)
		s.res.Outcomes = append(s.res.Outcomes, Outcome{Req: st.orig, Replica: replica, Err: err})
		return
	}
	o := &s.res.Outcomes[st.outIdx]
	o.Replica = replica
	o.Err = err
}

// routable lists the ingress replica indices the router may target: all of
// them under the naive health-blind policy, only serving-state replicas
// otherwise.
func (s *sim) routable() []int {
	cand := make([]int, 0, len(s.ingress))
	for i, rep := range s.ingress {
		if s.naive || rep.health.Routable() {
			cand = append(cand, i)
		}
	}
	return cand
}

// effLoad is a replica's backlog weighted by its straggler factor — a
// degraded replica looks proportionally heavier so new work steers away.
func (s *sim) effLoad(rep *replica) float64 {
	return float64(rep.s.Load()) * rep.s.Slowdown()
}

// pick chooses among the candidate ingress replicas under the configured
// policy.
func (s *sim) pick(r *batching.Request, cand []int) int {
	leastLoaded := func() int {
		best := cand[0]
		for _, i := range cand[1:] {
			if s.effLoad(s.ingress[i]) < s.effLoad(s.ingress[best]) {
				best = i
			}
		}
		return best
	}
	switch s.c.Policy {
	case Random:
		return cand[s.rng.Intn(len(cand))]
	case Affinity:
		if r.Template != 0 && s.c.Replica.PrefixCache {
			best, total := -1, 0.0
			for _, i := range cand {
				rep := s.ingress[i]
				total += s.effLoad(rep)
				if rep.s.HasTemplate(r.Template) && (best < 0 || s.effLoad(rep) < s.effLoad(s.ingress[best])) {
					best = i
				}
			}
			// Bounded load: the warm replica wins unless its backlog is
			// more than 1.25x the fleet average — then the request spills
			// to the least-loaded replica, whose cold prefill warms the
			// template there too. Hot templates thus replicate onto just
			// enough replicas to carry their share of the traffic.
			bound := 1.25*total/float64(len(cand)) + 1
			if best >= 0 && s.effLoad(s.ingress[best]) <= bound {
				return best
			}
		}
		return leastLoaded()
	default:
		return leastLoaded()
	}
}

// estimate predicts the request's completion time on the chosen ingress
// replica — plus, for a still-disaggregated prefill replica, the handoff
// delay and the decode pool's service — for the shed-on-deadline decision.
func (s *sim) estimate(target *replica, r *batching.Request) float64 {
	est := target.s.EstimateFinish(r, false)
	if !s.c.Disaggregated || !target.prefill {
		return est
	}
	di := s.pickDecode()
	if di < 0 {
		return est + s.handoffDelay(r)
	}
	dec := s.decode[di]
	return est + s.handoffDelay(r) + (dec.s.EstimateFinish(r, true) - dec.s.Now())
}

func (s *sim) handoffDelay(r *batching.Request) float64 {
	return float64(r.Context) * s.kvBytes / s.bw
}

// handoff queues a prefill completion's KV transfer to the decode pool,
// buffering it when the link is down. First-token credit for the prefill
// replica is booked at completion (so a request lost later lands in the
// wasted ledger instead).
func (s *sim) handoff(from *replica, r *batching.Request) {
	st := s.states[r]
	if st.done {
		// A hedge twin already served the request; this copy's prefill is
		// wasted before it ever crossed the wire.
		st.live--
		s.waste(r.ID, from, batching.ErrHedged, r.Context, 1)
		return
	}
	bytes := float64(r.Context) * s.kvBytes
	s.res.Handoffs++
	s.res.HandoffBytes += bytes
	e := event{t: from.s.Now() + bytes/s.bw, seq: s.nextSeq(), kind: evHandoff, req: r, from: from}
	if s.linkDown {
		s.held = append(s.held, e)
		return
	}
	s.events.push(e)
}

// admitDecode delivers a handoff: the request's KV is now resident on a
// decode replica, which generates the remaining Gen-1 tokens. With the
// decode pool gone, a fallen-back fleet decodes on the (now unified)
// prefill replica that produced the KV.
func (s *sim) admitDecode(e event) {
	st := s.states[e.req]
	if st.done {
		st.live--
		s.waste(e.req.ID, e.from, batching.ErrHedged, e.req.Context, 1)
		return
	}
	idx := s.pickDecode()
	var target *replica
	switch {
	case idx >= 0:
		target = s.decode[idx]
	case s.fallback && e.from != nil && e.from.health != faults.Down:
		target = e.from
	default:
		// KV arrived with no live decode replica and no fallback path:
		// the transfer is lost, retry from scratch.
		st.live--
		s.waste(e.req.ID, e.from, batching.ErrReplicaDown, e.req.Context, 1)
		if !st.done && st.live <= 0 {
			s.retryOrFail(st, e.t)
		}
		return
	}
	target.s.AdvanceTo(e.t)
	s.origin[e.req] = e.from
	target.s.EnqueueDecodeOnly(e.req)
	target.stats.Routed++
}

// pickDecode returns the least-loaded live decode replica's index, or -1
// when none is routable (naive mode stays health-blind here too).
func (s *sim) pickDecode() int {
	best := -1
	for i, rep := range s.decode {
		if !s.naive && !rep.health.Routable() {
			continue
		}
		if best < 0 || s.effLoad(rep) < s.effLoad(s.decode[best]) {
			best = i
		}
	}
	return best
}

// complete books a final-token completion on a unified or decode replica.
// The first completed copy wins the request; any later copy is a lost hedge
// race and its tokens are wasted.
func (s *sim) complete(on *replica, r *batching.Request) {
	st := s.states[r]
	st.live--
	org, fromHandoff := s.origin[r]
	if fromHandoff {
		delete(s.origin, r)
	}
	if on.health == faults.Recovering {
		on.health = faults.Healthy
	}
	if st.done {
		pre := 0
		if !fromHandoff {
			pre = r.Context
		}
		s.waste(r.ID, on, batching.ErrHedged, pre, r.Gen)
		return
	}
	st.done = true
	if st.hedged && r != st.orig {
		s.res.HedgeWins++
	}
	s.res.Completed++
	s.res.GenTokens += r.Gen
	on.stats.Completed++
	if fromHandoff {
		org.stats.LocalTokens++ // the prefill pool produced the first token
		on.stats.LocalTokens += r.Gen - 1
	} else {
		on.stats.LocalTokens += r.Gen
	}
	// The winning copy's timeline becomes the request's record.
	st.orig.Admitted = r.Admitted
	st.orig.Done = r.Done
	st.orig.Slot = r.Slot
	s.setOutcome(st, on.idx, nil)
	if r.Deadline > 0 && r.Done > r.Deadline {
		s.res.DeadlineMisses++
	} else {
		s.res.GoodTokens += r.Gen
	}
	if r.Done > s.res.Makespan {
		s.res.Makespan = r.Done
	}
	s.lat = append(s.lat, r.Done-st.orig.Arrival)
	if st.firstLoss >= 0 {
		s.recov = append(s.recov, r.Done-st.firstLoss)
	}
}

func (s *sim) finish() Result {
	// Down replicas may still hold work the naive health-blind router kept
	// feeding them: those requests were silently eaten.
	for _, rep := range s.all {
		if rep.health == faults.Down && rep.s.Busy() {
			for _, lw := range rep.s.Crash() {
				st := s.states[lw.Req]
				st.live--
				if lw.Prefilled+lw.Decoded > 0 {
					s.waste(lw.Req.ID, rep, batching.ErrReplicaDown, lw.Prefilled, lw.Decoded)
				}
				if st.done || st.live > 0 {
					continue
				}
				s.res.Failed++
				s.setOutcome(st, rep.idx, fmt.Errorf("fleet: %w: request %d eaten by dead replica %d",
					batching.ErrReplicaDown, lw.Req.ID, rep.idx))
			}
		}
		// A replica the autoscaler released is not down, it is gone; a
		// still-provisioning replica never served. Neither accrues downtime.
		if rep.health == faults.Down && !rep.retired && !rep.provisioning {
			rep.stats.Downtime += math.Max(0, s.lastT-rep.downSince)
		}
		rep.stats.FinalHealth = rep.health.String()
		if rep.retired {
			rep.stats.FinalHealth = "retired"
		}
		rep.stats.ID = rep.idx
		rep.stats.AddedAt = rep.addedAt
		rep.stats.Retired = rep.retired
		if rep.retired {
			rep.stats.RetiredAt = rep.retiredAt
		} else {
			rep.stats.RetiredAt = s.lastT
		}
	}
	res := s.res
	for _, r := range s.all {
		res.PerReplica = append(res.PerReplica, r.stats)
		res.ReplicaSeconds += r.stats.RetiredAt - r.stats.AddedAt
	}
	if res.ReplicaSeconds > 0 {
		res.GoodputPerReplicaSec = float64(res.GoodTokens) / res.ReplicaSeconds
	}
	chips := float64(len(s.all) * s.c.Replica.System.Chips())
	if res.Makespan > 0 {
		res.GenTokensPerSec = float64(res.GenTokens) / res.Makespan
		res.GoodputPerChip = float64(res.GoodTokens) / (res.Makespan * chips)
	}
	if len(s.lat) > 0 {
		sum := 0.0
		for _, l := range s.lat {
			sum += l
		}
		res.MeanLatency = sum / float64(len(s.lat))
		res.P50 = batching.Percentile(s.lat, 0.50)
		res.P99 = batching.Percentile(s.lat, 0.99)
	} else {
		res.MeanLatency = math.NaN()
	}
	res.RecoveryP99 = batching.Percentile(s.recov, 0.99)
	return res
}

// RoutingComparison holds the same fleet run under prefix-affinity and
// random routing.
type RoutingComparison struct {
	Affinity Result
	Random   Result
	// Speedup is affinity's generated-token rate over random's.
	Speedup float64
}

// CompareRouting runs the trace twice through an identical fleet — once
// with prefix-affinity routing, once with random — the experiment behind
// the claim that affinity turns template popularity into throughput.
func CompareRouting(c Config, trace batching.Trace) (RoutingComparison, error) {
	ca := c
	ca.Policy = Affinity
	aff, err := Simulate(ca, trace)
	if err != nil {
		return RoutingComparison{}, err
	}
	cr := c
	cr.Policy = Random
	rnd, err := Simulate(cr, trace)
	if err != nil {
		return RoutingComparison{}, err
	}
	cmp := RoutingComparison{Affinity: aff, Random: rnd}
	if rnd.GenTokensPerSec > 0 {
		cmp.Speedup = aff.GenTokensPerSec / rnd.GenTokensPerSec
	}
	return cmp, nil
}
