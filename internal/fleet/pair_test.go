package fleet

import (
	"testing"

	"esti/internal/engine"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

func tinyConfig() model.Config {
	return model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
}

// singleEngineGreedy is the unified baseline: one engine prefills and
// decodes the whole request on one slot.
func singleEngineGreedy(t *testing.T, e *engine.Engine, slot int, prompt []int, gen int) []int {
	t.Helper()
	logits := e.PrefillSlot(slot, prompt)
	tok := argmax(logits.Row(logits.Rows - 1))
	out := []int{tok}
	last := make([]int, e.Batch())
	active := make([]bool, e.Batch())
	active[slot] = true
	var lg *tensor.Mat
	for len(out) < gen {
		last[slot] = tok
		lg = e.DecodeSlotsInto(lg, last, active)
		tok = argmax(lg.Row(slot))
		out = append(out, tok)
	}
	return out
}

// The fleet's executable contract: an EnginePair — prefill on one engine,
// KV handoff, decode on another — generates exactly the tokens a single
// engine would, in float and int8 KV modes.
func TestEnginePairTokenExact(t *testing.T) {
	cfg := tinyConfig()
	const batch, gen, maxLen = 8, 16, 48
	prompt := []int{5, 18, 31, 44, 57, 6}
	w := reference.NewWeights(cfg, 42)
	torus := hardware.Torus{X: 2, Y: 2, Z: 2}
	for _, int8kv := range []bool{false, true} {
		name := "float"
		if int8kv {
			name = "int8kv"
		}
		t.Run(name, func(t *testing.T) {
			opts := engine.Options{
				FFN:     partition.FFN2DWeightStationary,
				Attn:    partition.AttnShardBatch,
				KVDType: model.BF16,
			}
			if int8kv {
				opts.KVDType = model.Int8
			}
			mk := func() *engine.Engine {
				e, err := engine.New(w, torus, opts, batch, maxLen)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			base := mk()
			want := singleEngineGreedy(t, base, 1, prompt, gen)

			pair := &EnginePair{Prefill: mk(), Decode: mk()}
			got, err := pair.Generate(1, 3, prompt, gen)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != gen {
				t.Fatalf("pair generated %d/%d tokens", len(got), gen)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("token %d: pair %d vs unified %d\nwant %v\ngot  %v",
						i, got[i], want[i], want, got)
				}
			}
			if pair.HandoffBytes <= 0 {
				t.Error("pair moved no KV bytes")
			}
			// The released slots are reusable: a second request through the
			// same pair must also match.
			want2 := singleEngineGreedy(t, mk(), 0, prompt[:4], 8)
			got2, err := pair.Generate(0, 0, prompt[:4], 8)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want2 {
				if got2[i] != want2[i] {
					t.Fatalf("second request token %d: pair %d vs unified %d", i, got2[i], want2[i])
				}
			}
		})
	}
}

// The recovery contract: a decode-side failure — mid-handoff or after some
// decode steps — followed by a checkpoint re-import and token replay yields
// exactly the tokens of a failure-free run, in float and int8 KV modes.
func TestEnginePairRecoveryTokenExact(t *testing.T) {
	cfg := tinyConfig()
	const batch, gen, maxLen = 8, 16, 48
	prompt := []int{5, 18, 31, 44, 57, 6}
	w := reference.NewWeights(cfg, 42)
	torus := hardware.Torus{X: 2, Y: 2, Z: 2}
	for _, int8kv := range []bool{false, true} {
		name := "float"
		if int8kv {
			name = "int8kv"
		}
		t.Run(name, func(t *testing.T) {
			opts := engine.Options{
				FFN:     partition.FFN2DWeightStationary,
				Attn:    partition.AttnShardBatch,
				KVDType: model.BF16,
			}
			if int8kv {
				opts.KVDType = model.Int8
			}
			mk := func() *engine.Engine {
				e, err := engine.New(w, torus, opts, batch, maxLen)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			want := singleEngineGreedy(t, mk(), 1, prompt, gen)

			// failAfter 0 is the mid-handoff crash (KV imported, no decode
			// step ran); 5 loses five generated positions that the replay
			// must rebuild.
			for _, failAfter := range []int{0, 5} {
				pair := &EnginePair{Prefill: mk(), Decode: mk()}
				got, err := pair.GenerateWithFailure(1, 3, 6, prompt, gen, failAfter)
				if err != nil {
					t.Fatalf("failAfter %d: %v", failAfter, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("failAfter %d token %d: recovered %d vs unified %d\nwant %v\ngot  %v",
							failAfter, i, got[i], want[i], want, got)
					}
				}
				if pair.Failures != 1 {
					t.Errorf("failAfter %d: Failures = %d, want 1", failAfter, pair.Failures)
				}
				if pair.RecoveredTokens != failAfter {
					t.Errorf("failAfter %d: RecoveredTokens = %d", failAfter, pair.RecoveredTokens)
				}
				// The checkpoint crossed the wire twice.
				single := &EnginePair{Prefill: mk(), Decode: mk()}
				if _, err := single.Generate(1, 3, prompt, gen); err != nil {
					t.Fatal(err)
				}
				if pair.HandoffBytes != 2*single.HandoffBytes {
					t.Errorf("failAfter %d: HandoffBytes = %d, want 2×%d",
						failAfter, pair.HandoffBytes, single.HandoffBytes)
				}
				// Recovery may land on the same slot the failed attempt used.
				pair2 := &EnginePair{Prefill: mk(), Decode: mk()}
				got2, err := pair2.GenerateWithFailure(1, 3, 3, prompt, gen, failAfter)
				if err != nil {
					t.Fatalf("failAfter %d same-slot: %v", failAfter, err)
				}
				for i := range want {
					if got2[i] != want[i] {
						t.Fatalf("failAfter %d same-slot token %d: %d vs %d", failAfter, i, got2[i], want[i])
					}
				}
			}
		})
	}
}

func TestEnginePairRecoveryErrors(t *testing.T) {
	cfg := tinyConfig()
	w := reference.NewWeights(cfg, 9)
	opts := engine.Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}
	mk := func() *engine.Engine {
		e, err := engine.New(w, hardware.Torus{X: 2, Y: 1, Z: 1}, opts, 4, 32)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	pair := &EnginePair{Prefill: mk(), Decode: mk()}
	if _, err := pair.GenerateWithFailure(0, 1, 2, nil, 8, 0); err == nil {
		t.Error("empty prompt should fail")
	}
	if _, err := pair.GenerateWithFailure(0, 1, 2, []int{1, 2}, 0, 0); err == nil {
		t.Error("gen 0 should fail")
	}
	if _, err := pair.GenerateWithFailure(0, 1, 2, []int{1, 2}, 8, 7); err == nil {
		t.Error("failAfter past gen-1 should fail (the request would finish before the crash)")
	}
	if _, err := pair.GenerateWithFailure(0, 1, 2, []int{1, 2}, 8, -1); err == nil {
		t.Error("negative failAfter should fail")
	}
}

func TestEnginePairErrors(t *testing.T) {
	cfg := tinyConfig()
	w := reference.NewWeights(cfg, 9)
	mk := func(tr hardware.Torus, o engine.Options) *engine.Engine {
		e, err := engine.New(w, tr, o, 8, 32)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Head-sharded KV is replicated per chip, so a snapshot from an 8-chip
	// mesh cannot land on a 2-chip one (batch-sharded snapshots, by
	// contrast, are a single owner block and do cross meshes).
	opts := engine.Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads}
	pair := &EnginePair{
		Prefill: mk(hardware.Torus{X: 2, Y: 2, Z: 2}, opts),
		Decode:  mk(hardware.Torus{X: 2, Y: 1, Z: 1}, opts),
	}
	if _, err := pair.Generate(0, 0, []int{1, 2, 3}, 4); err == nil {
		t.Error("cross-mesh handoff should fail")
	}
	if _, err := pair.Generate(0, 0, []int{1, 2, 3}, 0); err == nil {
		t.Error("gen 0 should fail")
	}
	if _, err := pair.Generate(0, 0, nil, 4); err == nil {
		t.Error("empty prompt should fail")
	}
}
