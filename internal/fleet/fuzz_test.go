package fleet

import (
	"errors"
	"testing"

	"esti/internal/batching"
	"esti/internal/faults"
)

// FuzzFaultPlan decodes an arbitrary byte string into a fault plan —
// including malformed ones — and drives the fleet simulation with it. A
// plan that fails validation must surface as ErrInvalidConfig from
// Simulate; a valid plan must run to completion, never panic, and keep the
// fault-accounting invariants (outcome partition, per-replica token sums,
// single-booked wasted work).
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 8, 0, 0})                   // crash replica 0 @ 0.5
	f.Add([]byte{0, 1, 8, 0, 0, 2, 1, 32, 0, 0})   // crash + recover
	f.Add([]byte{4, 0, 16, 24, 0, 5, 0, 64, 0, 0}) // straggle window
	f.Add([]byte{5, 0, 16, 0, 0, 6, 0, 48, 0, 0})  // link outage
	f.Add([]byte{7, 9, 255, 255, 255})             // invalid kind / replica
	f.Fuzz(func(t *testing.T, raw []byte) {
		const replicas = 3
		var plan faults.Plan
		for i := 0; i+5 <= len(raw) && len(plan.Events) < 12; i += 5 {
			// 5 bytes → one event; the ranges deliberately spill outside
			// the valid domain (kind 7+, replica -1..4, factor < 1) so the
			// validator's rejections are exercised too.
			plan.Events = append(plan.Events, faults.Event{
				Kind:    faults.Kind(raw[i] % 9),
				Replica: int(raw[i+1]%6) - 1,
				At:      float64(raw[i+2]) / 24.0,
				Factor:  float64(raw[i+3]) / 16.0,
			})
		}
		trace := zipfTrace(40, 0.02, 5)
		c := Config{Replica: replicaConfig(), Replicas: replicas, Policy: Affinity,
			Faults: plan, Recovery: RecoveryPolicy{BrownoutBelow: 0.5}}
		res, err := Simulate(c, trace)
		if err != nil {
			if plan.Validate(replicas) == nil {
				t.Fatalf("valid plan rejected: %v", err)
			}
			if !errors.Is(err, batching.ErrInvalidConfig) {
				t.Fatalf("invalid plan surfaced as %v, want ErrInvalidConfig", err)
			}
			return
		}
		if verr := plan.Validate(replicas); verr != nil {
			t.Fatalf("invalid plan (%v) was simulated anyway", verr)
		}
		checkFaultInvariants(t, res, 40)
	})
}
