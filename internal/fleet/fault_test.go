package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"esti/internal/batching"
	"esti/internal/faults"
)

// checkFaultInvariants asserts the recovery invariants every faulted run
// must keep: Outcomes partitions the trace exactly (served + shed + failed
// = len(trace), one outcome per request), per-replica tokens sum to the
// fleet's GenTokens with wasted tokens ledgered separately and exactly
// once, and every outcome error is a sentinel from the documented family.
func checkFaultInvariants(t *testing.T, res Result, n int) {
	t.Helper()
	if got := res.Completed + res.Rejected + res.Shed + res.ShedRetry + res.Failed; got != n {
		t.Errorf("partition: completed %d + rejected %d + shed %d + shedRetry %d + failed %d = %d != %d requests",
			res.Completed, res.Rejected, res.Shed, res.ShedRetry, res.Failed, got, n)
	}
	if len(res.Outcomes) != n {
		t.Errorf("%d outcomes for %d requests", len(res.Outcomes), n)
	}
	seen := map[int]bool{}
	for _, o := range res.Outcomes {
		if seen[o.Req.ID] {
			t.Errorf("request %d has two outcomes", o.Req.ID)
		}
		seen[o.Req.ID] = true
		if o.Err == nil {
			continue
		}
		if !errors.Is(o.Err, batching.ErrPromptTooLong) && !errors.Is(o.Err, batching.ErrInvalidTrace) &&
			!errors.Is(o.Err, batching.ErrDeadline) && !errors.Is(o.Err, batching.ErrOverloaded) &&
			!errors.Is(o.Err, batching.ErrReplicaDown) {
			t.Errorf("outcome error outside the sentinel family: %v", o.Err)
		}
	}
	local, wastedLedger := 0, 0
	for _, r := range res.PerReplica {
		local += r.LocalTokens
		wastedLedger += r.WastedTokens
	}
	if local != res.GenTokens {
		t.Errorf("per-replica tokens %d != fleet GenTokens %d", local, res.GenTokens)
	}
	pre, dec := 0, 0
	for _, w := range res.Wasted {
		pre += w.PrefillTokens
		dec += w.DecodedTokens
		if !errors.Is(w.Cause, batching.ErrReplicaDown) && !errors.Is(w.Cause, batching.ErrHedged) {
			t.Errorf("wasted-work cause outside the family: %v", w.Cause)
		}
	}
	if pre != res.WastedPrefillTokens || dec != res.WastedDecodeTokens {
		t.Errorf("wasted ledger sums %d/%d != totals %d/%d", pre, dec,
			res.WastedPrefillTokens, res.WastedDecodeTokens)
	}
	if wastedLedger != pre+dec {
		t.Errorf("per-replica wasted %d != ledger total %d", wastedLedger, pre+dec)
	}
	if res.GoodTokens > res.GenTokens {
		t.Errorf("GoodTokens %d > GenTokens %d", res.GoodTokens, res.GenTokens)
	}
	if res.HedgeWins > res.Hedges {
		t.Errorf("HedgeWins %d > Hedges %d", res.HedgeWins, res.Hedges)
	}
}

// The acceptance bar: on the 4-replica Zipf trace, goodput under a single
// replica crash (with recovery) stays at or above 0.7× the no-fault
// baseline — lost work re-routes with backoff, the recovered replica
// rejoins — while the naive health-blind baseline (dead replica keeps
// receiving traffic and silently eats its queue until it comes back)
// drops below the bar.
func TestCrashGoodputFloor(t *testing.T) {
	trace := zipfTrace(600, 0.01, 11)
	base := Config{Replica: replicaConfig(), Replicas: 4, Policy: Affinity}
	noFault, err := Simulate(base, trace)
	if err != nil {
		t.Fatal(err)
	}
	var plan faults.Plan
	plan.Crash(1, 0.5, 8.0)

	smartCfg := base
	smartCfg.Faults = plan
	smart, err := Simulate(smartCfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	naiveCfg := smartCfg
	naiveCfg.Recovery = RecoveryPolicy{MaxRetries: -1}
	naive, err := Simulate(naiveCfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, smart, 600)
	checkFaultInvariants(t, naive, 600)

	smartX := smart.GoodputPerChip / noFault.GoodputPerChip
	naiveX := naive.GoodputPerChip / noFault.GoodputPerChip
	t.Logf("goodput/chip: no-fault %.2f, crash+recovery %.2f (%.3fx, %d retries, recovery p99 %.2fs), naive %.2f (%.3fx, %d failed)",
		noFault.GoodputPerChip, smart.GoodputPerChip, smartX, smart.Retries, smart.RecoveryP99,
		naive.GoodputPerChip, naiveX, naive.Failed)
	if smartX < 0.7 {
		t.Errorf("recovered goodput %.3fx of baseline, want >= 0.7x", smartX)
	}
	if naiveX >= 0.7 {
		t.Errorf("naive no-retry goodput %.3fx of baseline, want < 0.7x (the fault layer must be worth something)", naiveX)
	}
	if smart.Retries == 0 || smart.Failed != 0 || smart.Completed != 600 {
		t.Errorf("recovery path unused: retries %d failed %d completed %d", smart.Retries, smart.Failed, smart.Completed)
	}
	if smart.WastedPrefillTokens == 0 && smart.WastedDecodeTokens == 0 {
		t.Error("a crash with in-flight work must waste tokens")
	}
	if smart.RecoveryP99 <= 0 {
		t.Error("requests survived a loss but RecoveryP99 is zero")
	}
	if naive.Failed == 0 {
		t.Error("naive baseline failed nothing — the crash did not bite")
	}
	if smart.PerReplica[1].Crashes != 1 || smart.PerReplica[1].Downtime <= 0 {
		t.Errorf("replica 1 stats: crashes %d downtime %.2f", smart.PerReplica[1].Crashes, smart.PerReplica[1].Downtime)
	}
	for _, o := range naive.Outcomes {
		if o.Err != nil && !errors.Is(o.Err, batching.ErrReplicaDown) {
			t.Errorf("naive run shed with %v, expected only replica-down failures", o.Err)
		}
	}
}

// resultFingerprint serializes everything in a Result, including the error
// strings json.Marshal cannot see, so two runs can be compared bytewise.
func resultFingerprint(t *testing.T, res Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.Write(b)
	for _, o := range res.Outcomes {
		fmt.Fprintf(&sb, "|%d:%v", o.Req.ID, o.Err)
	}
	for _, w := range res.Wasted {
		fmt.Fprintf(&sb, "|w%d:%v", w.ReqID, w.Cause)
	}
	return sb.String()
}

// Satellite: same Config + trace ⇒ byte-identical Result, fault schedule
// and all. Equal-time events replay in sequence order, so retries, hedges,
// and the wasted ledger land identically across runs.
func TestFleetDeterminism(t *testing.T) {
	var plan faults.Plan
	plan.Crash(1, 0.5, 3.0).Straggle(0, 1.0, 4.0, 3.0).Drain(2, 5.0, 7.0)
	c := Config{Replica: replicaConfig(), Replicas: 4, Policy: Affinity, Faults: plan,
		Recovery: RecoveryPolicy{BrownoutBelow: 0.5}}
	trace := batching.WithSLO(zipfTrace(300, 0.01, 11), 60, 0.3, 5)
	a, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := resultFingerprint(t, a), resultFingerprint(t, b)
	if fa != fb {
		t.Fatalf("faulted fleet simulation not byte-identical across runs:\n%.400s\nvs\n%.400s", fa, fb)
	}
	if a.Retries == 0 && a.Hedges == 0 {
		t.Error("determinism run exercised no fault machinery")
	}
}

// Hedging: a straggler's stuck requests are duplicated to a healthy
// replica; the first finisher wins, losers are wasted work, and the tail
// latency beats the no-hedge run of the same plan.
func TestStragglerHedging(t *testing.T) {
	var plan faults.Plan
	plan.Straggle(0, 1.0, -1, 8.0) // never recovers: without hedges its residents pay 8x to the end
	c := Config{Replica: replicaConfig(), Replicas: 4, Policy: Affinity, Faults: plan}
	trace := zipfTrace(300, 0.01, 11)
	hedged, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	cn := c
	cn.Recovery.NoHedge = true
	plain, err := Simulate(cn, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, hedged, 300)
	checkFaultInvariants(t, plain, 300)
	if hedged.Completed != 300 || plain.Completed != 300 {
		t.Fatalf("completions %d/%d, want 300/300", hedged.Completed, plain.Completed)
	}
	if hedged.Hedges == 0 {
		t.Fatal("straggler induced no hedges")
	}
	if plain.Hedges != 0 {
		t.Fatalf("NoHedge run hedged %d times", plain.Hedges)
	}
	if hedged.HedgeWins == 0 {
		t.Error("no hedge race was won by the duplicate — a 5x straggler should lose some")
	}
	sawHedgeWaste := false
	for _, w := range hedged.Wasted {
		if errors.Is(w.Cause, batching.ErrHedged) {
			sawHedgeWaste = true
			if w.DecodedTokens <= 0 && w.PrefillTokens <= 0 {
				t.Errorf("empty hedge-waste entry %+v", w)
			}
		}
	}
	if !sawHedgeWaste {
		t.Error("hedge races produced no wasted-work entries")
	}
	t.Logf("p99: hedged %.2fs vs no-hedge %.2fs (%d hedges, %d wins, %d wasted decode tokens)",
		hedged.P99, plain.P99, hedged.Hedges, hedged.HedgeWins, hedged.WastedDecodeTokens)
	if hedged.P99 >= plain.P99 {
		t.Errorf("hedging did not improve tail latency: p99 %.3f vs %.3f", hedged.P99, plain.P99)
	}
}

// Brownout: with most of the fleet down and the watermark armed, low-tier
// arrivals are shed with ErrOverloaded while high-tier traffic is never
// brownout-shed — capacity contracts around the top tier.
func TestBrownoutShedsLowTierFirst(t *testing.T) {
	var plan faults.Plan
	plan.Crash(1, 0.2, -1).Crash(2, 0.2, -1).Crash(3, 0.2, -1)
	c := Config{Replica: replicaConfig(), Replicas: 4, Policy: LeastLoaded, Faults: plan,
		Recovery: RecoveryPolicy{BrownoutBelow: 0.5}}
	trace := zipfTrace(200, 0.01, 11)
	for i := range trace.Requests {
		if i%4 == 0 {
			trace.Requests[i].Priority = 1
		}
	}
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, res, 200)
	brownouts := 0
	for _, o := range res.Outcomes {
		if o.Err == nil {
			continue
		}
		if errors.Is(o.Err, batching.ErrOverloaded) {
			if o.Req.Priority > 0 {
				t.Errorf("high-tier request %d brownout-shed: %v", o.Req.ID, o.Err)
			}
			brownouts++
		}
	}
	if brownouts == 0 {
		t.Fatal("3 of 4 replicas down below a 0.5 watermark, but nothing was brownout-shed")
	}
	highServed, highTotal := 0, 0
	for _, o := range res.Outcomes {
		if o.Req.Priority > 0 {
			highTotal++
			if o.Err == nil {
				highServed++
			}
		}
	}
	if highServed != highTotal {
		t.Errorf("high tier served %d/%d under brownout", highServed, highTotal)
	}
	t.Logf("brownout shed %d low-tier requests; high tier %d/%d served", brownouts, highServed, highTotal)
}

// Graceful degradation: when the whole decode pool crashes, the prefill
// replicas convert to unified serving and the fleet keeps completing
// requests instead of prefilling into the void.
func TestUnifiedFallback(t *testing.T) {
	var plan faults.Plan
	plan.Crash(2, 1.0, -1).Crash(3, 1.0, -1)
	c := Config{
		Replica: replicaConfig(), Disaggregated: true,
		PrefillReplicas: 2, DecodeReplicas: 2, Policy: Affinity, Faults: plan,
	}
	trace := zipfTrace(120, 0.05, 3)
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, res, 120)
	if res.Completed != 120 || res.Failed != 0 {
		t.Fatalf("completed %d failed %d, want all 120 served through the fallback", res.Completed, res.Failed)
	}
	for i := 0; i < 2; i++ {
		if res.PerReplica[i].Role != "prefill→unified" {
			t.Errorf("prefill replica %d role %q after decode-pool loss", i, res.PerReplica[i].Role)
		}
	}
	for i := 2; i < 4; i++ {
		if res.PerReplica[i].FinalHealth != "down" {
			t.Errorf("decode replica %d health %q, want down", i, res.PerReplica[i].FinalHealth)
		}
	}
	// Without the fallback (naive mode is health-blind and never falls
	// back), the dead decode pool eats every handoff sent after the crash.
	cn := c
	cn.Recovery = RecoveryPolicy{MaxRetries: -1}
	naive, err := Simulate(cn, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, naive, 120)
	if naive.Failed == 0 || naive.Completed >= res.Completed {
		t.Errorf("naive disaggregated run completed %d (failed %d), fallback completed %d — degradation not graceful",
			naive.Completed, naive.Failed, res.Completed)
	}
	t.Logf("decode pool dead: fallback served %d/120, naive served %d (ate %d)",
		res.Completed, naive.Completed, naive.Failed)
}

// Handoff-link outage: transfers buffer at the sender during the outage
// and flush at link-up (nothing lost, latency pays); a link that never
// recovers strands them — wasted prefill, then retries, then failures once
// attempts run out.
func TestLinkFailure(t *testing.T) {
	c := Config{
		Replica: replicaConfig(), Disaggregated: true,
		PrefillReplicas: 2, DecodeReplicas: 2, Policy: Affinity,
	}
	trace := zipfTrace(120, 0.05, 3)
	base, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	cw := c
	cw.Faults = *new(faults.Plan).LinkFail(1.0, 4.0)
	windowed, err := Simulate(cw, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, windowed, 120)
	if windowed.Completed != 120 {
		t.Fatalf("outage window lost requests: completed %d/120", windowed.Completed)
	}
	if windowed.P99 <= base.P99 {
		t.Errorf("a 3s link outage should cost tail latency: p99 %.3f vs %.3f", windowed.P99, base.P99)
	}
	cd := c
	cd.Faults = *new(faults.Plan).LinkFail(1.0, -1)
	dead, err := Simulate(cd, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, dead, 120)
	if dead.Failed == 0 {
		t.Error("link never recovered but nothing failed")
	}
	if dead.WastedPrefillTokens == 0 {
		t.Error("stranded handoffs wasted no prefill work")
	}
	if dead.Retries == 0 {
		t.Error("stranded requests were never retried")
	}
	t.Logf("link outage: windowed p99 %.2fs (vs %.2fs), dead link failed %d with %d wasted prefill tokens over %d retries",
		windowed.P99, base.P99, dead.Failed, dead.WastedPrefillTokens, dead.Retries)
}

// Graceful drain: queued work re-routes, in-flight work finishes locally,
// nothing is wasted, and the replica ends the run down.
func TestDrainGraceful(t *testing.T) {
	var plan faults.Plan
	plan.Drain(2, 1.0, -1)
	c := Config{Replica: replicaConfig(), Replicas: 4, Policy: Affinity, Faults: plan}
	trace := zipfTrace(300, 0.01, 11)
	res, err := Simulate(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	checkFaultInvariants(t, res, 300)
	if res.Completed != 300 || res.Failed != 0 {
		t.Fatalf("drain lost work: completed %d failed %d", res.Completed, res.Failed)
	}
	if len(res.Wasted) != 0 {
		t.Errorf("a graceful drain wasted %d pieces of work", len(res.Wasted))
	}
	if res.PerReplica[2].FinalHealth != "down" {
		t.Errorf("drained replica health %q, want down", res.PerReplica[2].FinalHealth)
	}
	if res.PerReplica[2].Downtime <= 0 {
		t.Error("drained replica has no downtime")
	}
}

// Satellite property test: under any seeded fault plan — and under the
// naive policy, and disaggregated — the partition and token-accounting
// invariants hold. CI sweeps CHAOS_SEED_BASE across a matrix.
func TestFaultPlanInvariants(t *testing.T) {
	base := int64(1)
	if v := os.Getenv("CHAOS_SEED_BASE"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED_BASE %q: %v", v, err)
		}
		base = b
	}
	for seed := base; seed < base+8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := faults.RandomPlan(seed, 4, 8.0)
			trace := batching.WithSLO(zipfTrace(120, 0.01, seed), 30, 0.25, seed)
			unified := Config{Replica: replicaConfig(), Replicas: 4, Policy: Affinity,
				Seed: seed, Faults: plan, Recovery: RecoveryPolicy{BrownoutBelow: 0.5}}
			disagg := Config{Replica: replicaConfig(), Disaggregated: true,
				PrefillReplicas: 2, DecodeReplicas: 2, Policy: Affinity, Seed: seed, Faults: plan}
			naive := unified
			naive.Recovery = RecoveryPolicy{MaxRetries: -1}
			for name, c := range map[string]Config{"unified": unified, "disagg": disagg, "naive": naive} {
				res, err := Simulate(c, trace)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				checkFaultInvariants(t, res, 120)
			}
		})
	}
}

// An invalid plan is a configuration error, not a panic.
func TestFaultPlanRejected(t *testing.T) {
	c := Config{Replica: replicaConfig(), Replicas: 2}
	c.Faults.Crash(5, 1.0, -1) // replica 5 of 2
	if _, err := Simulate(c, batching.Trace{}); !errors.Is(err, batching.ErrInvalidConfig) {
		t.Fatalf("out-of-range fault plan: err %v, want ErrInvalidConfig", err)
	}
	c2 := Config{Replica: replicaConfig(), Replicas: 2}
	c2.Faults.Straggle(0, 1.0, 2.0, 0.5) // factor < 1
	if _, err := Simulate(c2, batching.Trace{}); !errors.Is(err, batching.ErrInvalidConfig) {
		t.Fatalf("sub-1 slowdown factor: err %v, want ErrInvalidConfig", err)
	}
}
