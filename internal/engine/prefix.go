package engine

import (
	"fmt"

	"esti/internal/kvcache"
	"esti/internal/tensor"
)

// This file implements engine-level shared-prefix KV reuse and chunked
// prefill — the admission-side optimizations a template-heavy serving tier
// needs. A system prompt or few-shot template prefilled once is captured
// into per-chip PrefixStores (CachePrefix); later admissions acquire the
// longest cached prefix of their prompt (AcquirePrefix), attach it to a
// freed slot, and prefill only the suffix (PrefillSlotFrom) — skipping both
// the prefix's prefill FLOPs and a private copy of its K/V. Because
// PrefillSlot is already incremental (it appends at the slot's current
// depth and attends against everything before it), the cached path and
// chunked prefill (PrefillSlotChunked) fall out of the same SPMD program
// that the cold path runs, and inherit its token-exactness contract.
//
// Prefix placement mirrors KV-cache placement. Head-sharded attention keeps
// each chip's own K/V column shard of the prefix in that chip's store.
// Batch-sharded attention (and the weight-gathered layout, which requires
// it) computes full-width K/V identically on every chip, so the capture is
// replicated into every chip's store: a future request can then land in a
// slot owned by any chip and still hit.

// PrefixRef is an acquired shared prefix: one store entry per chip, all
// keyed on the same tokens. It is returned by AcquirePrefix holding one
// reference per chip, consumed by PrefillSlotFrom (the engine releases the
// references when the slot is released) or returned via ReleasePrefix.
type PrefixRef struct {
	tokens  []int
	perChip []*kvcache.Prefix
}

// Len returns the prefix length in tokens.
func (r *PrefixRef) Len() int { return len(r.tokens) }

// EnablePrefixCache creates an empty per-chip prefix store with the given
// byte budget per chip (0 = unlimited). It must be called before any other
// prefix operation; calling it again resets the stores (any live PrefixRef
// or attached slot becomes invalid, so reset only an idle engine).
func (e *Engine) EnablePrefixCache(budgetPerChip int) {
	for _, st := range e.chips {
		if e.opts.Int8KV {
			// An int8 session stores its shared prefixes quantized too:
			// attached blocks must match the cache's storage mode, and the
			// per-chip budget then buys twice the resident templates.
			st.prefix = kvcache.NewPrefixStoreInt8(e.cfg.Layers, st.cache.KVWidth, budgetPerChip)
		} else {
			st.prefix = kvcache.NewPrefixStore(e.cfg.Layers, st.cache.KVWidth, budgetPerChip)
		}
	}
}

// PrefixCacheEnabled reports whether EnablePrefixCache has been called.
func (e *Engine) PrefixCacheEnabled() bool { return e.chips[0].prefix != nil }

// PrefixStats returns chip 0's store statistics. Every chip's store sees
// the same operation sequence, so the stores agree on hits, misses and
// entry counts; byte totals differ only by per-chip shard width.
func (e *Engine) PrefixStats() kvcache.PrefixStats {
	if !e.PrefixCacheEnabled() {
		return kvcache.PrefixStats{}
	}
	return e.chips[0].prefix.Stats()
}

// CachePrefix captures the first len(tokens) committed positions of `slot`
// as a shared prefix keyed by `tokens` — which must be the prompt that
// produced them (the store trusts the caller; the key is what future
// lookups match on). The slot itself is unchanged and keeps decoding. An
// error is the store refusing the entry (budget) or a caller shape bug.
func (e *Engine) CachePrefix(slot int, tokens []int) error {
	if !e.PrefixCacheEnabled() {
		return fmt.Errorf("engine: prefix cache not enabled")
	}
	e.checkSlot(slot)
	n := len(tokens)
	if n == 0 {
		return fmt.Errorf("engine: empty prefix")
	}
	if got := e.SlotLen(slot); n > got {
		return fmt.Errorf("engine: prefix of %d tokens from slot %d holding %d", n, slot, got)
	}
	owner, local := e.slotOwner(slot)
	if owner >= 0 {
		// Batch-sharded cache: K/V are full-width and identical on every
		// chip, so the owner's rows are replicated into every store (a real
		// system would broadcast them once over the interconnect).
		k, v := captureRows(e.chips[owner].cache, local, n)
		for _, st := range e.chips {
			if _, err := st.prefix.Insert(tokens, k, v); err != nil {
				return err
			}
		}
		return nil
	}
	// Head-sharded cache: each chip stores its own K/V column shard.
	for _, st := range e.chips {
		k, v := captureRows(st.cache, local, n)
		if _, err := st.prefix.Insert(tokens, k, v); err != nil {
			return err
		}
	}
	return nil
}

// captureRows reads positions [0, n) of a slot as per-layer matrices. The
// views may alias cache storage (or materialize an attached prefix, so
// nested sharing captures correctly); PrefixStore.Insert deep-copies.
func captureRows(c *kvcache.Cache, local, n int) (k, v []*tensor.Mat) {
	k = make([]*tensor.Mat, c.Layers)
	v = make([]*tensor.Mat, c.Layers)
	for l := 0; l < c.Layers; l++ {
		k[l] = c.RowsK(l, local, n)
		v[l] = c.RowsV(l, local, n)
	}
	return k, v
}

// AcquirePrefix returns the longest cached prefix of `prompt`, capped at
// len(prompt)-1 so a full-prompt hit still leaves one token to prefill
// (decode needs the last token's logits). It returns nil on a miss or when
// the cache is disabled. The returned ref holds one reference per chip;
// pass it to PrefillSlotFrom (which hands ownership to the slot) or give it
// back with ReleasePrefix.
func (e *Engine) AcquirePrefix(prompt []int) *PrefixRef {
	if !e.PrefixCacheEnabled() || len(prompt) < 2 {
		return nil
	}
	key := prompt[:len(prompt)-1]
	perChip := make([]*kvcache.Prefix, len(e.chips))
	n := 0
	for r, st := range e.chips {
		p, ln := st.prefix.Acquire(key)
		if p == nil {
			// The tries run in lockstep: chip 0 missing means all miss, so
			// nothing acquired so far — but guard against skew anyway.
			for rr := 0; rr < r; rr++ {
				e.chips[rr].prefix.Release(perChip[rr])
			}
			return nil
		}
		perChip[r] = p
		n = ln
	}
	return &PrefixRef{tokens: append([]int(nil), prompt[:n]...), perChip: perChip}
}

// ReleasePrefix returns an acquired-but-unused ref's references to the
// stores.
func (e *Engine) ReleasePrefix(ref *PrefixRef) {
	if ref == nil {
		return
	}
	for r, st := range e.chips {
		if err := st.prefix.Release(ref.perChip[r]); err != nil {
			panic(fmt.Sprintf("engine: %v", err))
		}
	}
}

// PrefillSlotFrom admits a prompt whose leading ref.Len() tokens are served
// from the shared prefix cache: the prefix is attached to the (empty) slot
// on every chip that holds it, and only `suffix` is prefilled. It returns
// the suffix's logits [len(suffix), vocab] — identical to the trailing rows
// of a cold PrefillSlot over the whole prompt. The ref's references move to
// the slot and are released by ReleaseSlot. A nil ref degrades to a cold
// PrefillSlot of the suffix alone.
func (e *Engine) PrefillSlotFrom(slot int, ref *PrefixRef, suffix []int) *tensor.Mat {
	if ref == nil {
		return e.PrefillSlot(slot, suffix)
	}
	e.checkSlot(slot)
	if len(suffix) == 0 {
		panic("engine: empty suffix (AcquirePrefix caps hits at len(prompt)-1)")
	}
	if got := e.SlotLen(slot); got != 0 {
		panic(fmt.Sprintf("engine: prefix attach to non-empty slot %d (len %d)", slot, got))
	}
	if total := ref.Len() + len(suffix); total > e.maxLen {
		panic(fmt.Sprintf("engine: prefix %d + suffix %d exceed slot capacity %d",
			ref.Len(), len(suffix), e.maxLen))
	}
	owner, local := e.slotOwner(slot)
	for r, st := range e.chips {
		if owner >= 0 && r != owner {
			continue
		}
		if err := st.cache.AttachPrefix(local, ref.perChip[r]); err != nil {
			panic(fmt.Sprintf("engine: %v", err))
		}
	}
	e.slotPfx[slot] = ref
	return e.PrefillSlot(slot, suffix)
}

// PrefillSlotCached is the serving-path admission: it acquires the longest
// cached prefix of `prompt`, prefills only the remainder, and (when
// remember > 0) captures the prompt's first `remember` tokens back into the
// store for future admissions — the template boundary only the caller
// knows. It returns the prefilled positions' logits (the last row is the
// next-token distribution either way) and the number of prompt tokens
// served from cache. Budget refusals on the remember step are not errors;
// the admission already succeeded.
func (e *Engine) PrefillSlotCached(slot int, prompt []int, remember int) (*tensor.Mat, int) {
	if remember > len(prompt) {
		panic(fmt.Sprintf("engine: remember %d beyond prompt of %d tokens", remember, len(prompt)))
	}
	ref := e.AcquirePrefix(prompt)
	var logits *tensor.Mat
	cached := 0
	if ref != nil {
		cached = ref.Len()
		logits = e.PrefillSlotFrom(slot, ref, prompt[cached:])
	} else {
		logits = e.PrefillSlot(slot, prompt)
	}
	if e.PrefixCacheEnabled() && remember > cached {
		_ = e.CachePrefix(slot, prompt[:remember])
	}
	return logits, cached
}

// PrefillSlotChunked admits a prompt in bounded chunks of at most `chunk`
// tokens, one engine pass per chunk. Because PrefillSlot appends at the
// slot's current depth and attends causally against everything before it,
// the concatenated chunk logits are identical to a single-shot prefill —
// what lets a scheduler interleave decode iterations between the chunks of
// a long cold prompt instead of stalling the whole batch for its duration.
// chunk <= 0 means unchunked. Returns [len(prompt), vocab] logits.
func (e *Engine) PrefillSlotChunked(slot int, prompt []int, chunk int) *tensor.Mat {
	if chunk <= 0 || chunk >= len(prompt) {
		return e.PrefillSlot(slot, prompt)
	}
	var parts []*tensor.Mat
	for lo := 0; lo < len(prompt); lo += chunk {
		hi := lo + chunk
		if hi > len(prompt) {
			hi = len(prompt)
		}
		parts = append(parts, e.PrefillSlot(slot, prompt[lo:hi]))
	}
	return tensor.ConcatRows(parts...)
}
