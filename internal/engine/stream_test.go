package engine

import (
	"fmt"
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// generateWith builds an engine and runs greedy generation, returning the
// per-sequence token outputs and the measured overlap fraction.
func generateWith(t *testing.T, cfg model.Config, tr hardware.Torus, opts Options,
	batch, promptLen, gen int) ([][]int, float64) {
	t.Helper()
	w := reference.NewWeights(cfg, 42)
	prompt := make([]int, batch*promptLen)
	for i := range prompt {
		prompt[i] = (i*13 + 5) % cfg.Vocab
	}
	eng, err := New(w, tr, opts, batch, promptLen+gen+1)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return eng.Generate(prompt, promptLen, gen), eng.MeasuredOverlap()
}

// TestStreamedTokenExactVsBarrier is the tentpole acceptance matrix: the
// chunk-streamed FFN and weight-staging paths produce exactly the same
// greedy tokens as the barrier engine on 1-, 2-, and 8-chip meshes, across
// the weight-stationary layouts and the weight-gathered path, for fp32 and
// int8 wire, with float and int8 weights, SwiGLU-parallel and GELU-serial
// blocks. Token-exact (not logit-bitwise: gather-side chunked accumulation
// reorders float sums; the down-projection chunks are bitwise by
// construction).
func TestStreamedTokenExactVsBarrier(t *testing.T) {
	type tcase struct {
		name string
		cfg  model.Config
		opts Options
	}
	cases := []tcase{
		{"1d-heads", tinyMQA(), Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads}},
		{"2d-batch", tinyMQA(), Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}},
		{"wg-xyz", tinyMQA(), wgOpts()},
		{"2d-heads-gelu-serial", tinyMHA(), Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads}},
		{"1d-batch-int8wire", tinyMQA(), Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardBatch, Int8Wire: true}},
		{"2d-batch-int8wire", tinyMQA(), Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch, Int8Wire: true}},
		{"wg-xyz-int8wire", tinyMQA(), func() Options { o := wgOpts(); o.Int8Wire = true; return o }()},
		{"2d-batch-int8weights", tinyMQA(), Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch, Int8Weights: true}},
	}
	tori := []hardware.Torus{{X: 1, Y: 1, Z: 1}, {X: 2, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}}
	const batch, promptLen, gen = 8, 4, 6
	for _, tc := range cases {
		for _, tr := range tori {
			t.Run(fmt.Sprintf("%s/%s", tc.name, tr), func(t *testing.T) {
				barrier, _ := generateWith(t, tc.cfg, tr, tc.opts, batch, promptLen, gen)
				streamOpts := tc.opts
				streamOpts.Streamed = true
				streamed, frac := generateWith(t, tc.cfg, tr, streamOpts, batch, promptLen, gen)
				for s := range barrier {
					for i := range barrier[s] {
						if barrier[s][i] != streamed[s][i] {
							t.Fatalf("seq %d token %d: streamed %d vs barrier %d",
								s, i, streamed[s][i], barrier[s][i])
						}
					}
				}
				if frac < 0 || frac > 1 {
					t.Fatalf("measured overlap fraction %g outside [0, 1]", frac)
				}
				if tr.Chips() > 1 && frac == 0 {
					t.Errorf("multi-chip streamed run measured zero overlap work")
				}
			})
		}
	}
}

// A streamed single-chip engine takes the barrier path (nothing to
// overlap), so the steady-state zero-allocation decode contract holds
// unchanged with Options.Streamed set.
func TestStreamedSingleChipDecodeZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	cfg := model.Config{
		Name: "alloc-stream", Layers: 2, DModel: 32, DFF: 64,
		Heads: 4, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 32,
	}
	const batch, maxLen = 4, 256
	w := reference.NewWeights(cfg, 7)
	eng, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Streamed: true,
	}, batch, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Streamed() {
		t.Fatal("Streamed() accessor should report the option")
	}
	toks := make([]int, batch*4)
	for i := range toks {
		toks[i] = i % cfg.Vocab
	}
	eng.Prefill(toks, 4)
	last := make([]int, batch)
	logits := tensor.New(batch, cfg.Vocab)
	for i := 0; i < 8; i++ {
		eng.DecodeInto(logits, last)
	}
	if avg := testing.AllocsPerRun(100, func() {
		eng.DecodeInto(logits, last)
	}); avg != 0 {
		t.Errorf("streamed single-chip DecodeInto allocates %v times per iteration, want 0", avg)
	}
}

// The streamed engine matches the unsharded reference model too (not just
// the barrier engine): same transitive correctness contract every other
// layout test pins.
func TestStreamedMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		ffn  partition.FFNLayout
		attn partition.AttnLayout
	}{
		{"1d-heads", partition.FFN1DWeightStationary, partition.AttnShardHeads},
		{"2d-batch", partition.FFN2DWeightStationary, partition.AttnShardBatch},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstReference(t, tinyMQA(), torus222(),
				Options{FFN: tc.ffn, Attn: tc.attn, Streamed: true}, 8)
		})
	}
}

// Wire traffic is unchanged by streaming: same message sizes and counts as
// the barrier engine, on both payload formats — the streamed forms ride the
// identical ring schedule.
func TestStreamedWireBytesIdentical(t *testing.T) {
	cfg := tinyMQA()
	const batch, promptLen, gen = 8, 4, 4
	w := reference.NewWeights(cfg, 42)
	prompt := make([]int, batch*promptLen)
	for i := range prompt {
		prompt[i] = (i*13 + 5) % cfg.Vocab
	}
	for _, int8wire := range []bool{false, true} {
		run := func(streamed bool) (int64, int64, int64) {
			eng, err := New(w, torus222(), Options{
				FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
				Int8Wire: int8wire, Streamed: streamed,
			}, batch, promptLen+gen+1)
			if err != nil {
				t.Fatal(err)
			}
			eng.Generate(prompt, promptLen, gen)
			m := eng.Mesh()
			return m.BytesSent(), m.Int8BytesSent(), m.MessagesSent()
		}
		bB, b8, bM := run(false)
		sB, s8, sM := run(true)
		if bB != sB || b8 != s8 || bM != sM {
			t.Errorf("int8wire=%v: streamed traffic (%d B, %d int8 B, %d msgs) differs from barrier (%d, %d, %d)",
				int8wire, sB, s8, sM, bB, b8, bM)
		}
	}
}
