package engine

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// Incremental (chunked) prefill across the mesh must be equivalent to
// one-shot prefill — the engine-side version of the paper's "incremental
// processing of sequences during prefill".
func TestEngineIncrementalPrefill(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 21)
	const batch = 8
	opts := Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}

	oneShot, err := New(w, torus222(), opts, batch, 16)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := New(w, torus222(), opts, batch, 16)
	if err != nil {
		t.Fatal(err)
	}

	full := tokens(batch, 6)
	oneShot.Prefill(full, 6)

	// Chunk each sequence's 6 tokens into 2 + 4.
	chunk1 := make([]int, 0, batch*2)
	chunk2 := make([]int, 0, batch*4)
	for s := 0; s < batch; s++ {
		chunk1 = append(chunk1, full[s*6:s*6+2]...)
		chunk2 = append(chunk2, full[s*6+2:(s+1)*6]...)
	}
	chunked.Prefill(chunk1, 2)
	chunked.Prefill(chunk2, 4)

	last := make([]int, batch)
	for s := range last {
		last[s] = (s * 3) % cfg.Vocab
	}
	a := oneShot.Decode(last)
	b := chunked.Decode(last)
	if d := tensor.MaxAbsDiff(a, b); d > 1e-4 {
		t.Errorf("chunked mesh prefill diverges from one-shot by %g", d)
	}
}

// A 16-chip mesh with a 16-head model: every head lives on its own chip, the
// strongest sharding the engine supports.
func TestSixteenChips(t *testing.T) {
	cfg := model.Config{
		Name: "tiny16", Layers: 2, DModel: 64, DFF: 128,
		Heads: 16, HeadDim: 4, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
	for _, tr := range []hardware.Torus{{X: 4, Y: 2, Z: 2}, {X: 2, Y: 4, Z: 2}, {X: 16, Y: 1, Z: 1}} {
		t.Run(tr.String(), func(t *testing.T) {
			checkAgainstReference(t, cfg, tr,
				Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, 16)
		})
	}
}

// Serial block + batch-sharded multiquery + int8 all at once — the most
// option-laden path. Int8 drift is bounded, and the sharded int8 engine
// must agree with a single-chip int8 engine exactly (same quantized
// weights, same arithmetic, different partitioning).
func TestInt8ShardedMatchesInt8SingleChip(t *testing.T) {
	cfg := tinyMQA()
	cfg.ParallelBlock = false
	w := reference.NewWeights(cfg, 23)
	const batch, steps = 8, 4
	opts := Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch, Int8Weights: true}

	sharded, err := New(w, torus222(), opts, batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, opts, batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := tokens(batch, steps)
	a := sharded.Prefill(p, steps)
	b := solo.Prefill(p, steps)
	// Not bit-identical (summation order differs across shards) but far
	// tighter than the int8-vs-float tolerance.
	if d := tensor.MaxAbsDiff(a, b); d > 1e-3 {
		t.Errorf("sharded int8 differs from single-chip int8 by %g", d)
	}
}

// Byte traffic must be identical across repeated identical steps
// (determinism of the communication schedule).
func TestTrafficDeterministic(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 29)
	eng, err := New(w, torus222(),
		Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng.Prefill(tokens(8, 2), 2)
	last := make([]int, 8)

	eng.Mesh().ResetCounters()
	eng.Decode(last)
	first := eng.Mesh().BytesSent()
	eng.Mesh().ResetCounters()
	eng.Decode(last)
	second := eng.Mesh().BytesSent()
	if first != second {
		t.Errorf("decode traffic varied: %d then %d bytes", first, second)
	}
	if first == 0 {
		t.Error("decode moved no bytes on an 8-chip mesh")
	}
}

// Every chip computes identical full logits (the final all-gather
// replicates them); spot-check chips agree.
func TestAllChipsAgreeOnLogits(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 31)
	eng, err := New(w, torus222(),
		Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads}, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// forward() returns chip 0's logits; run reference for ground truth
	// and require chip 0 to match — combined with determinism this pins
	// the collective schedule. (Per-chip outputs are asserted equal inside
	// the engine by construction of the final all-gather.)
	ref := reference.New(w, 8, 8)
	p := tokens(8, 3)
	if d := tensor.MaxAbsDiff(ref.Prefill(p, 3), eng.Prefill(p, 3)); d > 2e-3 {
		t.Errorf("logits differ by %g", d)
	}
}

// KV overflow panics propagate out of the mesh run rather than deadlocking.
func TestEngineCacheOverflowPanics(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 37)
	eng, err := New(w, torus222(),
		Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng.Prefill(tokens(8, 3), 3)
	defer func() {
		if recover() == nil {
			t.Error("expected overflow panic")
		}
	}()
	eng.Decode(make([]int, 8))
}

func TestEngineTokenValidation(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 41)
	eng, err := New(w, torus222(),
		Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"wrong count": func() { eng.Prefill([]int{1, 2}, 1) },
		"bad token":   func() { eng.Decode([]int{0, 0, 0, 0, 0, 0, 0, 9999}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
