package engine

import (
	"fmt"
	"testing"

	"esti/internal/commcost"
	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

func tinyMQA() model.Config {
	return model.Config{
		Name: "tiny", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
}

func tinyMHA() model.Config {
	c := tinyMQA()
	c.Name = "tiny-mha"
	c.KVHeads = 8
	c.Attn = model.Multihead
	c.FFNKind = model.GELU
	c.ParallelBlock = false
	return c
}

func torus222() hardware.Torus { return hardware.Torus{X: 2, Y: 2, Z: 2} }

func tokens(batch, steps int) []int {
	out := make([]int, batch*steps)
	for i := range out {
		out[i] = (i*13 + 5) % 64
	}
	return out
}

// checkAgainstReference runs the same prefill+decode on the sharded engine
// and the reference model and requires near-identical logits at every step.
func checkAgainstReference(t *testing.T, cfg model.Config, tr hardware.Torus, opts Options, batch int) {
	t.Helper()
	w := reference.NewWeights(cfg, 42)
	const promptLen, gen = 4, 3
	prompt := tokens(batch, promptLen)

	ref := reference.New(w, batch, promptLen+gen+1)
	eng, err := New(w, tr, opts, batch, promptLen+gen+1)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}

	refLogits := ref.Prefill(prompt, promptLen)
	engLogits := eng.Prefill(prompt, promptLen)
	assertClose(t, "prefill", refLogits, engLogits)

	last := make([]int, batch)
	for s := 0; s < batch; s++ {
		last[s] = argmaxRow(refLogits, s*promptLen+promptLen-1)
	}
	for g := 0; g < gen; g++ {
		refL := ref.Decode(last)
		engL := eng.Decode(last)
		assertClose(t, fmt.Sprintf("decode step %d", g), refL, engL)
		for s := 0; s < batch; s++ {
			last[s] = argmaxRow(refL, s)
		}
	}
}

func assertClose(t *testing.T, what string, ref, got *tensor.Mat) {
	t.Helper()
	if ref.Rows != got.Rows || ref.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", what, got.Rows, got.Cols, ref.Rows, ref.Cols)
	}
	if d := tensor.MaxAbsDiff(ref, got); d > 2e-3 {
		t.Fatalf("%s: sharded logits differ from reference by %g", what, d)
	}
}

// The core contract, over the full layout matrix.
func TestShardedMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		cfg  model.Config
		ffn  partition.FFNLayout
		attn partition.AttnLayout
	}{
		{"mqa-2dws-batch", tinyMQA(), partition.FFN2DWeightStationary, partition.AttnShardBatch},
		{"mqa-2dws-heads", tinyMQA(), partition.FFN2DWeightStationary, partition.AttnShardHeads},
		{"mqa-1dws-batch", tinyMQA(), partition.FFN1DWeightStationary, partition.AttnShardBatch},
		{"mqa-1dws-heads", tinyMQA(), partition.FFN1DWeightStationary, partition.AttnShardHeads},
		{"mha-2dws-heads", tinyMHA(), partition.FFN2DWeightStationary, partition.AttnShardHeads},
		{"mha-1dws-heads", tinyMHA(), partition.FFN1DWeightStationary, partition.AttnShardHeads},
		{"mha-2dws-batch", tinyMHA(), partition.FFN2DWeightStationary, partition.AttnShardBatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstReference(t, tc.cfg, torus222(), Options{FFN: tc.ffn, Attn: tc.attn}, 8)
		})
	}
}

// Different torus shapes for the same chip count must all be correct.
func TestTorusShapes(t *testing.T) {
	for _, tr := range []hardware.Torus{
		{X: 8, Y: 1, Z: 1},
		{X: 1, Y: 8, Z: 1},
		{X: 4, Y: 2, Z: 1},
		{X: 2, Y: 2, Z: 2},
		{X: 1, Y: 1, Z: 1},
	} {
		t.Run(tr.String(), func(t *testing.T) {
			checkAgainstReference(t, tinyMQA(), tr,
				Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, 8)
		})
	}
}

// Int8 weights: engine vs a reference whose weights were quantized the same
// way would match exactly; against the float reference the drift must stay
// within quantization error, and greedy decoding should rarely diverge on a
// well-separated argmax. We assert bounded logit drift.
func TestInt8CloseToFloat(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 7)
	const batch, promptLen = 8, 4
	prompt := tokens(batch, promptLen)

	ref := reference.New(w, batch, 8)
	eng, err := New(w, torus222(), Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Int8Weights: true,
	}, batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	refL := ref.Prefill(prompt, promptLen)
	engL := eng.Prefill(prompt, promptLen)
	d := tensor.MaxAbsDiff(refL, engL)
	if d == 0 {
		t.Error("int8 engine suspiciously identical to float reference")
	}
	if d > 0.5 {
		t.Errorf("int8 drift %g too large", d)
	}
}

// Generate must agree token-for-token with the reference under greedy
// decoding (float weights).
func TestGenerateMatchesReference(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 9)
	const batch, promptLen, gen = 8, 4, 5
	prompt := tokens(batch, promptLen)
	refOut := reference.New(w, batch, promptLen+gen+1).Generate(prompt, promptLen, gen)
	eng, err := New(w, torus222(), Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
	}, batch, promptLen+gen+1)
	if err != nil {
		t.Fatal(err)
	}
	engOut := eng.Generate(prompt, promptLen, gen)
	for s := range refOut {
		for i := range refOut[s] {
			if refOut[s][i] != engOut[s][i] {
				t.Fatalf("seq %d token %d: engine %d vs reference %d",
					s, i, engOut[s][i], refOut[s][i])
			}
		}
	}
}

// Per-chip KV cache bytes must follow the paper's Table 1 law: batch
// sharding divides the logical cache by nchips; head-sharded multiquery
// replicates it fully.
func TestKVCacheShardingBytes(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 3)
	const batch = 8
	mkBytes := func(attn partition.AttnLayout) int {
		eng, err := New(w, torus222(), Options{FFN: partition.FFN2DWeightStationary, Attn: attn}, batch, 8)
		if err != nil {
			t.Fatal(err)
		}
		return eng.chips[0].cache.Bytes()
	}
	batchBytes := mkBytes(partition.AttnShardBatch)
	headBytes := mkBytes(partition.AttnShardHeads)
	if headBytes != 8*batchBytes {
		t.Errorf("head-sharded multiquery cache %dB vs batch-sharded %dB: want 8x replication",
			headBytes, batchBytes)
	}

	// Multihead head-sharded shards KV over heads: same per-chip bytes as
	// batch sharding (both divide by nchips), but 8x the multiquery width.
	mha := tinyMHA()
	wm := reference.NewWeights(mha, 3)
	engM, err := New(wm, torus222(), Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardHeads}, batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := engM.chips[0].cache.Bytes(); got != batchBytes*8 {
		t.Errorf("multihead head-sharded cache = %dB, want %dB", got, batchBytes*8)
	}
}

// Measured per-layer FFN communication must match the analytic volume
// formulas (Appendix A.2). The attention path and norms add their own
// traffic, so we isolate FFN bytes by differencing two engines that share
// everything except the FFN layout.
func TestFFNCommMatchesAnalyticDifference(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 11)
	const batch, steps = 8, 4
	tr := torus222()
	run := func(ffn partition.FFNLayout) float64 {
		eng, err := New(w, tr, Options{FFN: ffn, Attn: partition.AttnShardHeads}, batch, 8)
		if err != nil {
			t.Fatal(err)
		}
		eng.Mesh().ResetCounters()
		eng.Prefill(tokens(batch, steps), steps)
		return float64(eng.Mesh().BytesSent()) / float64(tr.Chips())
	}
	got1D := run(partition.FFN1DWeightStationary)
	got2D := run(partition.FFN2DWeightStationary)

	nTok := float64(batch * steps)
	const actBytes = 4 // engine activations are float32
	e, f := float64(cfg.DModel), float64(cfg.DFF)
	layers := float64(cfg.Layers)
	// SwiGLU has two X-axis pairs (gate and up) where the paper's abstract
	// MLP has one, so compute the expected volumes from first principles.
	want1D := layers * (commcost.AllGatherVolume(nTok*e*actBytes, 8) +
		commcost.ReduceScatterVolume(nTok*e*actBytes, 8))
	p2 := partition.PlanFFN(partition.FFN2DWeightStationary, tr)
	ePer := nTok * (e / float64(p2.ESplit)) * actBytes
	fPer := nTok * (f / float64(p2.FSplit)) * actBytes
	want2D := layers * (commcost.AllGatherVolume(ePer, 4) + commcost.ReduceScatterVolume(ePer, 4) +
		2*commcost.ReduceScatterVolume(fPer, 2) + commcost.AllGatherVolume(fPer, 2))

	gotDiff := got1D - got2D
	wantDiff := want1D - want2D
	if relErr(gotDiff, wantDiff) > 1e-9 {
		t.Errorf("FFN comm difference %g bytes/chip, want %g (1D: %g, 2D: %g)",
			gotDiff, wantDiff, got1D, got2D)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / abs(want)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// The all-to-all cost of batch sharding is the only traffic difference
// between the two attention layouts — and it is small (Section 3.3).
func TestBatchShardingAddsOnlySmallAllToAll(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 13)
	const batch = 8
	run := func(attn partition.AttnLayout) float64 {
		eng, err := New(w, torus222(), Options{FFN: partition.FFN2DWeightStationary, Attn: attn}, batch, 8)
		if err != nil {
			t.Fatal(err)
		}
		eng.Prefill(tokens(batch, 2), 2)
		eng.Mesh().ResetCounters()
		eng.Decode(tokens(batch, 1))
		return float64(eng.Mesh().BytesSent()) / 8
	}
	headBytes := run(partition.AttnShardHeads)
	batchBytes := run(partition.AttnShardBatch)
	extra := batchBytes - headBytes
	if extra <= 0 {
		t.Fatalf("batch sharding should add all-to-all traffic (head %g, batch %g)", headBytes, batchBytes)
	}
	// Two all-to-alls of [batch, H·dh] per layer, (n-1)/n each.
	perLayer := float64(batch*cfg.Heads*cfg.HeadDim*4) / 8 // per-chip shard bytes
	want := float64(cfg.Layers) * 2 * commcost.AllToAllVolume(perLayer, 8)
	if relErr(extra, want) > 1e-9 {
		t.Errorf("all-to-all bytes/chip = %g, want %g", extra, want)
	}
	if extra > 0.2*headBytes {
		t.Errorf("all-to-all overhead %g is not small vs base traffic %g", extra, headBytes)
	}
}

func TestNewRejectsBadShapes(t *testing.T) {
	w := reference.NewWeights(tinyMQA(), 1)
	cases := []struct {
		name  string
		torus hardware.Torus
		opts  Options
		batch int
	}{
		{"indivisible dmodel", hardware.Torus{X: 3, Y: 1, Z: 1},
			Options{FFN: partition.FFN2DWeightStationary}, 8},
		{"batch not divisible", torus222(),
			Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, 6},
		{"unsupported layout", torus222(),
			Options{FFN: partition.FFNWeightGatheredXYZ}, 8},
		{"too many chips for heads", hardware.Torus{X: 16, Y: 1, Z: 1},
			Options{FFN: partition.FFN1DWeightStationary}, 16},
	}
	for _, tc := range cases {
		if _, err := New(w, tc.torus, tc.opts, tc.batch, 8); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// A single-chip "mesh" must reproduce the reference trivially and move zero
// bytes.
func TestSingleChipNoComm(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 17)
	eng, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1},
		Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref := reference.New(w, 2, 8)
	prompt := tokens(2, 3)
	assertClose(t, "single chip", ref.Prefill(prompt, 3), eng.Prefill(prompt, 3))
	if eng.Mesh().BytesSent() != 0 {
		t.Errorf("single chip sent %d bytes", eng.Mesh().BytesSent())
	}
}
