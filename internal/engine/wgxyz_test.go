package engine

import (
	"testing"

	"esti/internal/commcost"
	"esti/internal/hardware"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

func wgOpts() Options {
	return Options{FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch}
}

// The weight-gathered path must match the reference exactly like the
// weight-stationary paths do.
func TestWGMatchesReference(t *testing.T) {
	checkAgainstReference(t, tinyMQA(), torus222(), wgOpts(), 8)
	checkAgainstReference(t, tinyMHA(), torus222(), wgOpts(), 8)
}

func TestWGTorusShapes(t *testing.T) {
	for _, tr := range []hardware.Torus{
		{X: 8, Y: 1, Z: 1}, {X: 2, Y: 2, Z: 2}, {X: 1, Y: 4, Z: 2}, {X: 1, Y: 1, Z: 1},
	} {
		t.Run(tr.String(), func(t *testing.T) {
			checkAgainstReference(t, tinyMQA(), tr, wgOpts(), 8)
		})
	}
}

// The defining property of XYZ weight gathering: per-chip communication is
// the gathered weight volume, layerBytes·(n-1)/n per layer — independent of
// batch — and there is no activation traffic at all beyond the tiny
// norm all-reduces (which this path doesn't even need: norms are token-local).
func TestWGCommIsWeightVolumeOnly(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 51)
	tr := torus222()
	run := func(batch, steps int) float64 {
		eng, err := New(w, tr, wgOpts(), batch, 8)
		if err != nil {
			t.Fatal(err)
		}
		eng.Mesh().ResetCounters()
		eng.Prefill(tokens(batch, steps), steps)
		return float64(eng.Mesh().BytesSent()) / float64(tr.Chips())
	}
	small := run(8, 1)
	large := run(8, 6)
	if small != large {
		t.Errorf("WG traffic varies with batch tokens: %g vs %g bytes/chip", small, large)
	}
	// Expected: per layer, every weight matrix all-gathered over 8 chips.
	e, f := float64(cfg.DModel), float64(cfg.DFF)
	hq := float64(cfg.Heads * cfg.HeadDim)
	kvq := float64(cfg.KVHeads * cfg.HeadDim)
	perLayerFloats := 2*e*f + e*f + e*hq + 2*e*kvq + hq*e // gate+up, down, q, k+v, o
	wantPerChip := float64(cfg.Layers) * commcost.AllGatherVolume(perLayerFloats*4, 8)
	if relErr(small, wantPerChip) > 1e-9 {
		t.Errorf("WG bytes/chip = %g, want %g (weight volume only)", small, wantPerChip)
	}
}

// Figure 3's economics, measured on the mesh: at large token counts the
// weight-gathered layout moves fewer bytes than 2D weight-stationary; at
// tiny token counts it moves more.
func TestWGvsWSMeasuredCrossover(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 53)
	tr := torus222()
	traffic := func(opts Options, batch, steps, maxLen int) float64 {
		eng, err := New(w, tr, opts, batch, maxLen)
		if err != nil {
			t.Fatal(err)
		}
		eng.Mesh().ResetCounters()
		eng.Prefill(tokens(batch, steps), steps)
		return float64(eng.Mesh().BytesSent())
	}
	ws := Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}
	// Tiny pass: 8 tokens total — weights dwarf activations, WS wins.
	if wg, wsB := traffic(wgOpts(), 8, 1, 4), traffic(ws, 8, 1, 4); wg <= wsB {
		t.Errorf("at 8 tokens WG (%g B) should move more than WS (%g B)", wg, wsB)
	}
	// Large pass: 512 tokens — activations dwarf weights, WG wins.
	if wg, wsB := traffic(wgOpts(), 8, 64, 70), traffic(ws, 8, 64, 70); wg >= wsB {
		t.Errorf("at 512 tokens WG (%g B) should move less than WS (%g B)", wg, wsB)
	}
}

// Greedy generation through the WG path matches the reference.
func TestWGGenerate(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 55)
	const batch, promptLen, gen = 8, 4, 4
	prompt := tokens(batch, promptLen)
	refOut := reference.New(w, batch, promptLen+gen+1).Generate(prompt, promptLen, gen)
	eng, err := New(w, torus222(), wgOpts(), batch, promptLen+gen+1)
	if err != nil {
		t.Fatal(err)
	}
	engOut := eng.Generate(prompt, promptLen, gen)
	for s := range refOut {
		for i := range refOut[s] {
			if refOut[s][i] != engOut[s][i] {
				t.Fatalf("seq %d token %d: %d vs %d", s, i, engOut[s][i], refOut[s][i])
			}
		}
	}
}

// Mixed-phase session: prefill with the weight-gathered engine, then decode
// the same cache state with a weight-stationary engine — the paper's actual
// serving pattern ("the same weight layout for weight-gathered (during
// prefill) and weight-stationary (during decoding)"). Functionally we
// emulate the handoff by replaying the prompt, since cache layouts match
// (both batch-sharded).
func TestWGPrefillThenWSDecodeEquivalent(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 57)
	const batch, promptLen = 8, 5
	prompt := tokens(batch, promptLen)

	wgEng, err := New(w, torus222(), wgOpts(), batch, 16)
	if err != nil {
		t.Fatal(err)
	}
	wsEng, err := New(w, torus222(),
		Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}, batch, 16)
	if err != nil {
		t.Fatal(err)
	}
	a := wgEng.Prefill(prompt, promptLen)
	b := wsEng.Prefill(prompt, promptLen)
	if d := tensor.MaxAbsDiff(a, b); d > 1e-4 {
		t.Fatalf("WG and WS prefill logits differ by %g", d)
	}
	last := make([]int, batch)
	for s := range last {
		last[s] = argmaxRow(a, s*promptLen+promptLen-1)
	}
	da := wgEng.Decode(last)
	db := wsEng.Decode(last)
	if d := tensor.MaxAbsDiff(da, db); d > 1e-4 {
		t.Errorf("decode after WG vs WS prefill differs by %g", d)
	}
}

func TestWGValidation(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 59)
	if _, err := New(w, torus222(),
		Options{FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardHeads}, 8, 8); err == nil {
		t.Error("WG with head-sharded attention should be rejected")
	}
	if _, err := New(w, torus222(),
		Options{FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch, Int8Weights: true}, 8, 8); err == nil {
		t.Error("WG with int8 should be rejected")
	}
	if _, err := New(w, torus222(), wgOpts(), 6, 8); err == nil {
		t.Error("WG with indivisible batch should be rejected")
	}
}
