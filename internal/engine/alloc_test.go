package engine

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// The decode hot path's headline contract: once warm, a decode iteration
// through DecodeSlotsInto/DecodeInto performs zero heap allocations. Every
// temporary comes from per-chip arenas, attention reads the KV cache
// through zero-copy views with a pre-sized softmax scratch, the SPMD body
// is a closure bound at construction, and the caller reuses the logits
// buffer. The single-chip mesh is the configuration where the whole
// program is chip-local (a multi-chip mesh adds goroutine scheduling and
// wire copies that are part of the simulation, not the compute path).
func TestDecodeSteadyStateZeroAllocs(t *testing.T) {
	// Force serial kernels so the worker pool's task dispatch (which does
	// allocate) can't trigger on machines where the matmuls clear the
	// parallel threshold.
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	cfg := model.Config{
		Name: "alloc", Layers: 2, DModel: 32, DFF: 64,
		Heads: 4, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 32,
	}
	const batch, maxLen = 4, 512
	w := reference.NewWeights(cfg, 7)
	eng, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
	}, batch, maxLen)
	if err != nil {
		t.Fatal(err)
	}

	tokens := make([]int, batch*4)
	for i := range tokens {
		tokens[i] = i % cfg.Vocab
	}
	eng.Prefill(tokens, 4)

	last := make([]int, batch)
	active := []bool{true, false, true, true} // exercise the masked path too
	logits := tensor.New(batch, cfg.Vocab)

	// Warm the arenas and scratch through both hot entry points.
	for i := 0; i < 8; i++ {
		eng.DecodeInto(logits, last)
		eng.DecodeSlotsInto(logits, last, active)
	}

	if avg := testing.AllocsPerRun(100, func() {
		eng.DecodeInto(logits, last)
	}); avg != 0 {
		t.Errorf("DecodeInto allocates %v times per steady-state iteration, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		eng.DecodeSlotsInto(logits, last, active)
	}); avg != 0 {
		t.Errorf("DecodeSlotsInto allocates %v times per steady-state iteration, want 0", avg)
	}
}

// The same assertion for the serial-block (non-parallel) formulation and
// head-sharded attention — the other chip-local decode shape.
func TestDecodeZeroAllocsHeadShardedSerialBlock(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	cfg := model.Config{
		Name: "alloc2", Layers: 2, DModel: 32, DFF: 64,
		Heads: 4, HeadDim: 8, KVHeads: 4, Attn: model.Multihead,
		FFNKind: model.GELU, ParallelBlock: false, Vocab: 32,
	}
	const batch, maxLen = 2, 256
	w := reference.NewWeights(cfg, 9)
	eng, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, Options{
		FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads,
	}, batch, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	eng.Prefill([]int{1, 2, 3, 4}, 2)

	last := make([]int, batch)
	logits := tensor.New(batch, cfg.Vocab)
	for i := 0; i < 8; i++ {
		eng.DecodeInto(logits, last)
	}
	if avg := testing.AllocsPerRun(100, func() {
		eng.DecodeInto(logits, last)
	}); avg != 0 {
		t.Errorf("head-sharded DecodeInto allocates %v times per iteration, want 0", avg)
	}
}
