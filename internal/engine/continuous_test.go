package engine

import (
	"fmt"
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// admission schedules one request: at iteration `iter`, a prompt of
// `promptLen` tokens enters slot `slot` and then decodes for `decodes`
// further steps before completing and freeing the slot.
type admission struct {
	iter      int
	slot      int
	promptLen int
	decodes   int
}

// continuousScript is a mixed-length, interleaved workload: requests of
// different prompt lengths arrive at different iterations, finish at
// different times, and slot 1 is reused by a later request mid-stream while
// its neighbors are still decoding.
func continuousScript() []admission {
	return []admission{
		{iter: 0, slot: 0, promptLen: 3, decodes: 6},
		{iter: 0, slot: 1, promptLen: 5, decodes: 1},
		{iter: 2, slot: 2, promptLen: 2, decodes: 4},
		{iter: 3, slot: 1, promptLen: 4, decodes: 3}, // reuses freed slot 1
		{iter: 4, slot: 7, promptLen: 6, decodes: 2},
	}
}

// checkContinuousAgainstReference drives the engine through interleaved
// PrefillSlot admissions and variable-length DecodeSlots steps, comparing
// every logit row against an independent batch-1 reference model per
// request. This is the engine-level contract of continuous batching: a
// batch whose sequences sit at different KV depths, with slots freed and
// re-admitted mid-stream, must be numerically indistinguishable from
// serving each request alone.
func checkContinuousAgainstReference(t *testing.T, cfg model.Config, opts Options) {
	t.Helper()
	const batch, maxLen = 8, 16
	w := reference.NewWeights(cfg, 42)
	eng, err := New(w, torus222(), opts, batch, maxLen)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}

	refs := make([]*reference.Model, batch)
	active := make([]bool, batch)
	last := make([]int, batch)
	remaining := make([]int, batch)

	script := continuousScript()
	prompt := func(n, seed int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = (i*13 + seed*7 + 5) % cfg.Vocab
		}
		return p
	}

	maxIter := 0
	for _, a := range script {
		if end := a.iter + a.decodes; end > maxIter {
			maxIter = end
		}
	}

	for iter := 0; iter <= maxIter; iter++ {
		// Admissions scheduled for this iteration.
		for ai, a := range script {
			if a.iter != iter {
				continue
			}
			if active[a.slot] {
				t.Fatalf("script error: slot %d still active at iter %d", a.slot, iter)
			}
			p := prompt(a.promptLen, ai)
			refs[a.slot] = reference.New(w, 1, maxLen)
			refL := refs[a.slot].Prefill(p, a.promptLen)
			engL := eng.PrefillSlot(a.slot, p)
			assertClose(t, fmt.Sprintf("iter %d: slot %d admission", iter, a.slot), refL, engL)
			if got := eng.SlotLen(a.slot); got != a.promptLen {
				t.Fatalf("iter %d: slot %d len %d after prefill, want %d", iter, a.slot, got, a.promptLen)
			}
			active[a.slot] = true
			last[a.slot] = argmaxRow(refL, a.promptLen-1)
			remaining[a.slot] = a.decodes
		}

		anyActive := false
		for _, a := range active {
			anyActive = anyActive || a
		}
		if !anyActive {
			continue
		}

		// One variable-length decode step over whatever is active; slots
		// sit at different depths by construction.
		engL := eng.DecodeSlots(last, active)
		for s := 0; s < batch; s++ {
			if !active[s] {
				// Inactive slots must stay untouched: zero logits, no
				// cache growth.
				for _, v := range engL.Row(s) {
					if v != 0 {
						t.Fatalf("iter %d: inactive slot %d has nonzero logits", iter, s)
					}
				}
				continue
			}
			refL := refs[s].Decode([]int{last[s]})
			engRow := tensor.FromSlice(engL.Row(s), 1, engL.Cols)
			assertClose(t, fmt.Sprintf("iter %d: slot %d decode", iter, s), refL, engRow)
			last[s] = argmaxRow(refL, 0)
			remaining[s]--
			if remaining[s] == 0 {
				eng.ReleaseSlot(s)
				active[s] = false
				refs[s] = nil
				if got := eng.SlotLen(s); got != 0 {
					t.Fatalf("iter %d: released slot %d has len %d", iter, s, got)
				}
			}
		}
	}

	for s, a := range active {
		if a {
			t.Errorf("slot %d still active after script end", s)
		}
	}
}

// The continuous-batching contract over the layout matrix, including the
// weight-gathered path (token-sharded, batch-sharded cache).
func TestContinuousBatchingMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		cfg  model.Config
		ffn  partition.FFNLayout
		attn partition.AttnLayout
	}{
		{"mqa-2dws-batch", tinyMQA(), partition.FFN2DWeightStationary, partition.AttnShardBatch},
		{"mqa-2dws-heads", tinyMQA(), partition.FFN2DWeightStationary, partition.AttnShardHeads},
		{"mqa-1dws-batch", tinyMQA(), partition.FFN1DWeightStationary, partition.AttnShardBatch},
		{"mha-2dws-heads", tinyMHA(), partition.FFN2DWeightStationary, partition.AttnShardHeads},
		{"mha-2dws-batch", tinyMHA(), partition.FFN2DWeightStationary, partition.AttnShardBatch},
		{"mqa-wgxyz-batch", tinyMQA(), partition.FFNWeightGatheredXYZ, partition.AttnShardBatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkContinuousAgainstReference(t, tc.cfg, Options{FFN: tc.ffn, Attn: tc.attn})
		})
	}
}

// A static lockstep batch run through DecodeSlots with a nil mask must be
// identical to Decode — the uniform path is a special case of the
// variable-length one.
func TestDecodeSlotsNilMaskEqualsDecode(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 42)
	mk := func() *Engine {
		eng, err := New(w, torus222(), Options{
			FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		}, 8, 12)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := mk(), mk()
	prompt := tokens(8, 3)
	a.Prefill(prompt, 3)
	b.Prefill(prompt, 3)
	lastTok := tokens(8, 1)
	assertClose(t, "nil-mask decode", a.Decode(lastTok), b.DecodeSlots(lastTok, nil))
}

// Single-chip sanity: slot admission and variable-length decode with no
// communication at all.
func TestContinuousSingleChip(t *testing.T) {
	cfg := tinyMQA()
	w := reference.NewWeights(cfg, 17)
	eng, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
	}, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	ref := reference.New(w, 1, 12)
	p := []int{1, 2, 3}
	assertClose(t, "single-chip admission", ref.Prefill(p, 3), eng.PrefillSlot(1, p))
	engL := eng.DecodeSlots([]int{0, 5}, []bool{false, true})
	refL := ref.Decode([]int{5})
	assertClose(t, "single-chip decode", refL, tensor.FromSlice(engL.Row(1), 1, engL.Cols))
}
