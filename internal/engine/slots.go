package engine

import (
	"fmt"
	"sync"

	"esti/internal/collective"
	"esti/internal/hardware"
	"esti/internal/mesh"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// This file implements mid-stream slot admission: prefilling a single new
// prompt into one freed KV-cache slot while the other slots keep their
// decode state — the operation a continuous-batching scheduler issues
// between variable-length decode steps (DecodeSlots). Together they let one
// engine session serve a rolling population of requests instead of a fixed
// batch.

// slotOwner maps a logical slot to the chip holding its KV rows and the
// slot's index within that chip's cache shard. Head-sharded attention
// replicates the slot on every chip (owner -1); batch-sharded attention
// (including the weight-gathered layout, which requires it) places it on
// one chip.
func (e *Engine) slotOwner(slot int) (owner, local int) {
	if !e.batchShardedCache() {
		return -1, slot
	}
	seqsPC := e.batch / e.m.Chips()
	return slot / seqsPC, slot % seqsPC
}

// SlotLen returns the committed KV length of a slot.
func (e *Engine) SlotLen(slot int) int {
	e.checkSlot(slot)
	owner, local := e.slotOwner(slot)
	if owner < 0 {
		owner = 0
	}
	return e.chips[owner].cache.SeqLen(local)
}

// ReleaseSlot evicts a completed sequence: the slot's KV storage is zeroed
// and its length reset on every chip that holds it, making the slot ready
// for the next PrefillSlot. A shared prefix attached by PrefillSlotFrom is
// detached and its per-chip store references are given back, so the prefix
// becomes LRU-evictable once its last slot departs.
func (e *Engine) ReleaseSlot(slot int) {
	e.checkSlot(slot)
	owner, local := e.slotOwner(slot)
	if owner >= 0 {
		e.chips[owner].cache.ResetSeq(local)
	} else {
		for _, st := range e.chips {
			st.cache.ResetSeq(local)
		}
	}
	if ref := e.slotPfx[slot]; ref != nil {
		e.slotPfx[slot] = nil
		e.ReleasePrefix(ref)
	}
}

func (e *Engine) checkSlot(slot int) {
	if slot < 0 || slot >= e.batch {
		panic(fmt.Sprintf("engine: slot %d out of batch %d", slot, e.batch))
	}
}

// PrefillSlot admits a new prompt into one (freed or fresh) slot: it runs a
// full prefill pass for just that sequence, fills the slot's KV cache, and
// returns the prompt's logits [len(prompt), vocab]. The other slots are
// untouched, so admission can interleave with DecodeSlots mid-stream. The
// SPMD program stays symmetric: every chip participates in the same
// collectives; on layouts where the slot's KV lives on a single chip, that
// owner attends the gathered queries and an all-to-all returns each chip
// its head block of the output.
func (e *Engine) PrefillSlot(slot int, prompt []int) *tensor.Mat {
	e.checkSlot(slot)
	nTok := len(prompt)
	if nTok == 0 {
		panic("engine: empty prompt")
	}
	if e.opts.FFN == partition.FFNWeightGatheredXYZ {
		return e.prefillSlotWG(slot, prompt)
	}
	results := make([]*tensor.Mat, e.m.Chips())
	var mu sync.Mutex
	e.m.Run(func(c *mesh.Chip) {
		st := e.chips[c.Rank]
		ar := &st.arena
		ar.Reset()

		x := ar.Mat(nTok, st.embedCols.Cols)
		for i, tok := range prompt {
			if tok < 0 || tok >= e.cfg.Vocab {
				panic(fmt.Sprintf("engine: token %d out of vocab %d", tok, e.cfg.Vocab))
			}
			copy(x.Row(i), st.embedCols.Row(tok))
		}

		for l := range st.layers {
			cl := &st.layers[l]
			if e.cfg.ParallelBlock {
				h := shardNorm(c, st, x, cl.normGain, e.cfg.DModel)
				attnY := e.attnSlot(c, st, cl, l, h, slot, nTok)
				ffnY := e.ffnBlock(c, st, cl, h)
				x = tensor.AddInPlace(tensor.AddInPlace(x, attnY), ffnY)
			} else {
				h := shardNorm(c, st, x, cl.normGain, e.cfg.DModel)
				x = tensor.AddInPlace(x, e.attnSlot(c, st, cl, l, h, slot, nTok))
				h2 := shardNorm(c, st, x, cl.ffnNormGain, e.cfg.DModel)
				x = tensor.AddInPlace(x, e.ffnBlock(c, st, cl, h2))
			}
		}
		owner, local := e.slotOwner(slot)
		if owner < 0 || owner == c.Rank {
			st.cache.AdvanceSeq(local, nTok)
		}

		final := shardNorm(c, st, x, st.finalGain, e.cfg.DModel)
		fullFinal := agCols(ar, st.op(c), hardware.GroupXYZ, final, e.m.Chips())
		logitsLocal := tensor.MatMulTInto(ar.Mat(fullFinal.Rows, st.embedRows.Rows), fullFinal, st.embedRows)
		logits := agCols(ar, st.op(c), hardware.GroupXYZ, logitsLocal, e.m.Chips())

		mu.Lock()
		results[c.Rank] = logits
		mu.Unlock()
	})
	// Arena-backed on each chip; hand the caller its own copy.
	return results[0].Clone()
}

// attnSlot runs the attention sub-block of a single-sequence prefill
// targeting one cache slot. Head-sharded attention is chip-local as in the
// batch path. Batch-sharded attention gathers the full queries on every
// chip (batch-1 has no sequence dimension to all-to-all over), lets the
// slot's owner attend against its cache shard, and distributes the output
// head blocks back with an all-to-all in which only the owner's shards
// carry data.
func (e *Engine) attnSlot(c *mesh.Chip, st *chipState, cl *chipLayer, layer int, h *tensor.Mat, slot, steps int) *tensor.Mat {
	ar := &st.arena
	n := e.m.Chips()
	hFull := agCols(ar, st.op(c), hardware.GroupXYZ, h, n)
	qLocal := cl.wq.mulA(ar, hFull) // [steps, headsPC·dh]
	kNew := cl.wk.mulA(ar, hFull)
	vNew := cl.wv.mulA(ar, hFull)

	var outLocal *tensor.Mat
	owner, local := e.slotOwner(slot)
	if owner < 0 || n == 1 {
		// Chip-local attention: head-sharded replicates the slot on
		// every chip (K/V columns already match this chip's cache
		// width), and a single-chip batch-sharded mesh owns it outright
		// with both all-to-alls degenerate.
		st.cache.AppendSeq(layer, local, kNew, vNew, steps)
		outLocal = reference.AttendSeqInto(ar.Mat(steps, qLocal.Cols),
			e.cfg.HeadDim, qLocal, st.cache, layer, local, steps, &st.scr)
	} else {
		headW := qLocal.Cols
		qFull := agCols(ar, st.op(c), hardware.GroupXYZ, qLocal, n) // [steps, H·dh]
		shards := make([][]float32, n)
		if c.Rank == owner {
			st.cache.AppendSeq(layer, local, kNew, vNew, steps)
			outFull := reference.AttendSeqInto(ar.Mat(steps, qFull.Cols),
				e.cfg.HeadDim, qFull, st.cache, layer, local, steps, &st.scr)
			for d := 0; d < n; d++ {
				shards[d] = tensor.SliceCols(outFull, d*headW, (d+1)*headW).Data
			}
		} else {
			for d := 0; d < n; d++ {
				shards[d] = make([]float32, steps*headW)
			}
		}
		recv := collective.AllToAll(st.op(c), hardware.GroupXYZ, shards)
		outLocal = tensor.FromSlice(recv[owner], steps, headW)
	}

	partial := cl.wo.mulA(ar, outLocal)
	return rsCols(ar, st.op(c), hardware.GroupXYZ, partial, n)
}

// prefillSlotWG admits a prompt under the weight-gathered layout:
// activations are token-sharded, so the slot's owner computes the whole
// sequence locally while every chip keeps minting the per-layer weight
// all-gathers (the layout's only collective) to stay SPMD-symmetric.
func (e *Engine) prefillSlotWG(slot int, prompt []int) *tensor.Mat {
	owner, local := e.slotOwner(slot)
	nTok := len(prompt)
	results := make([]*tensor.Mat, e.m.Chips())
	e.m.Run(func(c *mesh.Chip) {
		st := e.chips[c.Rank]
		st.arena.Reset()
		ws := st.wg
		mine := c.Rank == owner

		var x *tensor.Mat
		if mine {
			x = tensor.New(nTok, e.cfg.DModel)
			for i, tok := range prompt {
				if tok < 0 || tok >= e.cfg.Vocab {
					panic("engine: token out of vocab")
				}
				copy(x.Row(i), ws.fullEmbed.Row(tok))
			}
		}

		for l := range ws.layers {
			ls := &ws.layers[l]
			g := e.gatherLayer(c, st, ls)
			if !mine {
				continue
			}
			if e.cfg.ParallelBlock {
				h := tensor.RMSNorm(x, ls.normGain, 1e-6)
				attnY := wgAttendSlot(e, st, g, h, l, local, nTok)
				ffnY := wgFFN(st, e.cfg, g, h)
				x = tensor.AddInPlace(tensor.AddInPlace(x, attnY), ffnY)
			} else {
				h := tensor.RMSNorm(x, ls.normGain, 1e-6)
				x = tensor.AddInPlace(x, wgAttendSlot(e, st, g, h, l, local, nTok))
				h2 := tensor.RMSNorm(x, ls.ffnNormGain, 1e-6)
				x = tensor.AddInPlace(x, wgFFN(st, e.cfg, g, h2))
			}
		}
		if mine {
			st.cache.AdvanceSeq(local, nTok)
			final := tensor.RMSNorm(x, st.finalGain, 1e-6)
			results[c.Rank] = tensor.MatMulT(final, ws.fullEmbed)
		}
	})
	return results[owner]
}

func wgAttendSlot(e *Engine, st *chipState, g gathered, h *tensor.Mat, layer, local, steps int) *tensor.Mat {
	q := tensor.MatMul(h, g.q)
	k := tensor.MatMul(h, g.k)
	v := tensor.MatMul(h, g.v)
	st.cache.AppendSeq(layer, local, k, v, steps)
	out := reference.AttendSeq(e.cfg.HeadDim, q, st.cache, layer, local, steps)
	return tensor.MatMul(out, g.o)
}
