package engine

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// ciConfig is the model the committed CI benchmarks run
// (BenchmarkEngineDecodeStep and its int8-KV twin): the configuration the
// acceptance bar's 64-step greedy-agreement check is defined on.
func ciConfig() model.Config {
	return model.Config{
		Name: "bench", Layers: 2, DModel: 64, DFF: 128,
		Heads: 8, HeadDim: 8, KVHeads: 1, Attn: model.Multiquery,
		FFNKind: model.SwiGLU, ParallelBlock: true, Vocab: 64,
	}
}

// The int8 KV cache's end-to-end accuracy contract: greedy decoding with a
// quantized cache produces the same tokens as the float32 cache over a
// 64-step horizon — the perplexity-proxy check. Per-row symmetric
// quantization bounds each stored K/V element's error at 0.5/127 of its
// row's max magnitude; that noise must stay far below the logit gaps that
// decide argmax. Verified on the CI config across the functional layouts
// (including the multi-chip meshes, whose wire traffic int8 KV leaves
// untouched).
func TestInt8KVGreedyMatchesFP32(t *testing.T) {
	cfg := ciConfig()
	const batch, promptLen, gen, maxLen = 8, 4, 64, 128
	prompt := make([]int, batch*promptLen)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % cfg.Vocab
	}

	layouts := []struct {
		name  string
		torus hardware.Torus
		opts  Options
	}{
		{"2dws-batch-1chip", hardware.Torus{X: 1, Y: 1, Z: 1},
			Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}},
		{"2dws-batch-8chip", hardware.Torus{X: 2, Y: 2, Z: 2},
			Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}},
		{"1dws-heads-2chip", hardware.Torus{X: 2, Y: 1, Z: 1},
			Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads}},
		{"wgxyz-batch-2chip", hardware.Torus{X: 2, Y: 1, Z: 1},
			Options{FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch}},
	}
	w := reference.NewWeights(cfg, 11)
	for _, lay := range layouts {
		t.Run(lay.name, func(t *testing.T) {
			fp, err := New(w, lay.torus, lay.opts, batch, maxLen)
			if err != nil {
				t.Fatal(err)
			}
			o8 := lay.opts
			o8.Int8KV = true
			q8, err := New(w, lay.torus, o8, batch, maxLen)
			if err != nil {
				t.Fatal(err)
			}
			want := fp.Generate(prompt, promptLen, gen)
			got := q8.Generate(prompt, promptLen, gen)
			for s := 0; s < batch; s++ {
				for g := 0; g < gen; g++ {
					if got[s][g] != want[s][g] {
						t.Fatalf("seq %d diverges at step %d: int8 token %d, fp32 token %d",
							s, g, got[s][g], want[s][g])
					}
				}
			}
		})
	}
}

// The int8 session's cache must report true quantized backing bytes —
// at most 0.55× the float32 session's for the same shape (1 byte per
// element plus a 4-byte row scale, vs 4 bytes per element).
func TestInt8KVCacheBytesHalved(t *testing.T) {
	cfg := ciConfig()
	w := reference.NewWeights(cfg, 11)
	opts := Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}
	fp, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, opts, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	opts.Int8KV = true
	q8, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, opts, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	fpB, q8B := fp.ChipCacheBytes(0), q8.ChipCacheBytes(0)
	if q8B <= 0 || fpB <= 0 {
		t.Fatalf("degenerate cache bytes: fp32 %d, int8 %d", fpB, q8B)
	}
	if ratio := float64(q8B) / float64(fpB); ratio > 0.55 {
		t.Errorf("int8 cache is %.2fx the fp32 bytes (%d vs %d), want <= 0.55x", ratio, q8B, fpB)
	}
}

// The quantized cache keeps the hot path's headline contract: a warm
// decode iteration allocates nothing. The int8 walk reads ViewK8/ViewV8
// (by-value views), quantizes appends into preallocated storage, and runs
// its softmax in the same pre-sized scratch as the float32 walk.
func TestInt8KVDecodeSteadyStateZeroAllocs(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)

	cfg := ciConfig()
	const batch, maxLen = 4, 512
	w := reference.NewWeights(cfg, 7)
	eng, err := New(w, hardware.Torus{X: 1, Y: 1, Z: 1}, Options{
		FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch,
		Int8KV: true,
	}, batch, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([]int, batch*4)
	for i := range tokens {
		tokens[i] = i % cfg.Vocab
	}
	eng.Prefill(tokens, 4)

	last := make([]int, batch)
	active := []bool{true, false, true, true}
	logits := tensor.New(batch, cfg.Vocab)
	for i := 0; i < 8; i++ {
		eng.DecodeInto(logits, last)
		eng.DecodeSlotsInto(logits, last, active)
	}
	if avg := testing.AllocsPerRun(100, func() {
		eng.DecodeInto(logits, last)
	}); avg != 0 {
		t.Errorf("int8-KV DecodeInto allocates %v times per steady-state iteration, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		eng.DecodeSlotsInto(logits, last, active)
	}); avg != 0 {
		t.Errorf("int8-KV DecodeSlotsInto allocates %v times per steady-state iteration, want 0", avg)
	}
}

// Shared-prefix admission under int8 KV: capturing a quantized slot into
// the (quantized) per-chip stores and re-attaching it is bit-lossless —
// dequantize→requantize reproduces the same int8 values — so the cached
// admission's logits are exactly the cold path's trailing rows, the same
// token-exactness contract the float32 prefix cache has.
func TestInt8KVPrefixCachedAdmissionExact(t *testing.T) {
	cfg := ciConfig()
	const batch, maxLen = 4, 128
	w := reference.NewWeights(cfg, 13)
	for _, attn := range []partition.AttnLayout{partition.AttnShardBatch, partition.AttnShardHeads} {
		eng, err := New(w, hardware.Torus{X: 2, Y: 1, Z: 1}, Options{
			FFN: partition.FFN1DWeightStationary, Attn: attn, Int8KV: true,
		}, batch, maxLen)
		if err != nil {
			t.Fatal(err)
		}
		eng.EnablePrefixCache(0)

		template := []int{5, 9, 2, 7, 1, 4, 8, 3}
		suffixA := []int{10, 11, 12}
		suffixB := []int{20, 21}
		promptA := append(append([]int(nil), template...), suffixA...)
		promptB := append(append([]int(nil), template...), suffixB...)

		// Cold admission of prompt A seeds the template.
		coldA, cached := eng.PrefillSlotCached(0, promptA, len(template))
		if cached != 0 {
			t.Fatalf("attn %v: first admission served %d cached tokens, want 0", attn, cached)
		}
		// Cold reference for prompt B in another slot, before the cached
		// admission (same engine, so identical quantized arithmetic).
		coldB := eng.PrefillSlot(1, promptB)

		logitsB, cachedB := eng.PrefillSlotCached(2, promptB, 0)
		if cachedB != len(template) {
			t.Fatalf("attn %v: cached admission served %d tokens, want %d", attn, cachedB, len(template))
		}
		suffixRows := tensor.SliceRows(coldB, len(template), len(promptB))
		if d := tensor.MaxAbsDiff(logitsB, suffixRows); d != 0 {
			t.Errorf("attn %v: cached admission logits differ from cold path by %g, want exact", attn, d)
		}
		_ = coldA
	}
}
