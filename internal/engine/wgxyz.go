package engine

import (
	"esti/internal/collective"
	"esti/internal/hardware"
	"esti/internal/mesh"
	"esti/internal/model"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// This file implements the XYZ-weight-gathered layout functionally
// (Section 3.2.3 / Figure A.2(c)): activations stay sharded over the token
// (sequence) dimension for the entire pass — which for attention is exactly
// the batch-sharded layout, so attention is chip-local — while every layer's
// weights are all-gathered over all chips just before use from the same
// ExFyz at-rest shards the 2D weight-stationary layout stores ("weights
// start in the same ExFyz layout ... so that we can use the same weight
// layout for weight-gathered (during prefill) and weight-stationary (during
// decoding)").
//
// Per-layer communication is therefore layerWeightBytes·(n-1)/n of weight
// traffic and zero activation traffic — the XYZ line of Figure 3 — which the
// tests assert against the measured mesh bytes.

// wgState is the per-chip state the weight-gathered path adds: the full
// embedding table (token-sharded activations need full-width lookup and
// logits locally).
type wgState struct {
	fullEmbed *tensor.Mat
	// At-rest ExFyz shards, flattened for gathering. Indexed per layer.
	layers []wgLayerShards
}

// wgLayerShards holds one layer's at-rest weight shards in gather-ready
// (flattened) form plus the full gains.
type wgLayerShards struct {
	gate, up, down []float32 // 2D-WS-style shards (nil gate for GELU)
	q, k, v, o     []float32 // attention shards (column/row blocks)
	normGain       []float32 // full-width gains (replicated; tiny)
	ffnNormGain    []float32
}

// buildWG slices the weights for the weight-gathered path.
func (e *Engine) buildWG(w *reference.Weights, rank int) *wgState {
	cfg := e.cfg
	t := e.torus
	n := t.Chips()
	yz := t.Y * t.Z
	yzIdx := rank / t.X
	stripe := e.eStripe(rank)
	fPerYZ := cfg.DFF / yz
	fCols := contiguous(yzIdx*fPerYZ, fPerYZ)
	headsPC := cfg.Heads / n
	dh := cfg.HeadDim
	hCols := contiguous(rank*headsPC*dh, headsPC*dh)
	eBlock := cfg.DModel / n
	eRows := contiguous(rank*eBlock, eBlock)

	st := &wgState{fullEmbed: w.Embed.Clone()}
	for l := range w.Layers {
		lw := &w.Layers[l]
		ls := wgLayerShards{
			normGain:    append([]float32(nil), lw.NormGain...),
			ffnNormGain: append([]float32(nil), lw.FFNNormGain...),
			up:          selectCols(selectRows(lw.WUp, stripe), fCols).Data,
			down:        selectCols(selectRows(lw.WDown, fCols), stripe).Data,
			q:           selectCols(lw.WQ, hCols).Data,
			k:           selectRows(lw.WK, eRows).Data,
			v:           selectRows(lw.WV, eRows).Data,
			o:           selectRows(lw.WO, hCols).Data,
		}
		if lw.WGate != nil {
			ls.gate = selectCols(selectRows(lw.WGate, stripe), fCols).Data
		}
		st.layers = append(st.layers, ls)
	}
	return st
}

// gathered is one layer's fully assembled weights after the all-gather.
type gathered struct {
	gate, up, down *tensor.Mat
	q, k, v, o     *tensor.Mat
}

// gatherLayer all-gathers one layer's shards over all chips and reassembles
// the full matrices, accounting every weight byte as mesh traffic.
func (e *Engine) gatherLayer(c *mesh.Chip, st *chipState, ws *wgLayerShards) gathered {
	cfg := e.cfg
	t := e.torus
	n := t.Chips()
	yz := t.Y * t.Z
	fPerYZ := cfg.DFF / yz
	dh := cfg.HeadDim
	headsPC := cfg.Heads / n

	var g gathered
	// gatherScatter runs the layer-staging all-gather, handing each rank's
	// chunk to place. Under Options.Streamed the placement copies ride the
	// chunk stream (AllGatherStream) — each rank's scatter-copy runs while
	// the next chunk relays — which is bit-identical to the barrier gather
	// since placement is pure data movement.
	gatherScatter := func(flat []float32, place func(r int, chunk []float32)) {
		if e.opts.Streamed {
			all := collective.AllGatherStream(st.op(c), hardware.GroupXYZ, flat, place)
			c.Recycle(all)
			return
		}
		all := collective.AllGather(st.op(c), hardware.GroupXYZ, flat)
		per := len(flat)
		for r := 0; r < n; r++ {
			place(r, all[r*per:(r+1)*per])
		}
		c.Recycle(all)
	}
	// 2D-stored FFN shards: rank r holds rows eStripe(r) × cols of its yz
	// block; reassemble by scattering each rank's chunk.
	assemble2D := func(flat []float32, transposed bool) *tensor.Mat {
		rows, cols := cfg.DModel, cfg.DFF
		if transposed {
			rows, cols = cfg.DFF, cfg.DModel
		}
		full := tensor.New(rows, cols)
		gatherScatter(flat, func(r int, chunk []float32) {
			stripe := e.eStripe(r)
			fLo := (r / t.X) * fPerYZ
			if !transposed {
				// chunk is [len(stripe), fPerYZ] row-major.
				for i, eIdx := range stripe {
					copy(full.Row(eIdx)[fLo:fLo+fPerYZ], chunk[i*fPerYZ:(i+1)*fPerYZ])
				}
			} else {
				// chunk is [fPerYZ, len(stripe)] row-major (W_down).
				for i := 0; i < fPerYZ; i++ {
					row := full.Row(fLo + i)
					for j, eIdx := range stripe {
						row[eIdx] = chunk[i*len(stripe)+j]
					}
				}
			}
		})
		return full
	}
	if ws.gate != nil {
		g.gate = assemble2D(ws.gate, false)
	}
	g.up = assemble2D(ws.up, false)
	g.down = assemble2D(ws.down, true)

	// Column-block shards (W_Q): rank r holds contiguous head columns.
	gatherCols := func(flat []float32, rows, colsPC int) *tensor.Mat {
		full := tensor.New(rows, colsPC*n)
		gatherScatter(flat, func(r int, chunk []float32) {
			for i := 0; i < rows; i++ {
				copy(full.Row(i)[r*colsPC:(r+1)*colsPC], chunk[i*colsPC:(i+1)*colsPC])
			}
		})
		return full
	}
	// Row-block shards (W_K, W_V, W_O): contiguous rows per rank, so the
	// flat all-gather concatenation is already the full matrix.
	gatherRows := func(flat []float32, cols int) *tensor.Mat {
		all := collective.AllGather(st.op(c), hardware.GroupXYZ, flat)
		return tensor.FromSlice(all, len(all)/cols, cols)
	}
	g.q = gatherCols(ws.q, cfg.DModel, headsPC*dh)
	g.k = gatherRows(ws.k, cfg.KVHeads*dh)
	g.v = gatherRows(ws.v, cfg.KVHeads*dh)
	g.o = gatherRows(ws.o, cfg.DModel)
	return g
}

// forwardWG runs the token-sharded weight-gathered pass: each chip owns
// batch/n sequences end to end; the only cross-chip traffic is the per-layer
// weight gather (plus nothing for activations). A non-nil active mask
// (steps == 1) zeroes inactive slots: no embedding, no K/V append, zero
// attention output.
func (e *Engine) forwardWG(tokens []int, steps int, active []bool) *tensor.Mat {
	n := e.m.Chips()
	seqsPC := e.batch / n
	rowsPC := seqsPC * steps
	vocab := e.cfg.Vocab
	blocks := make([]*tensor.Mat, n)
	e.m.Run(func(c *mesh.Chip) {
		st := e.chips[c.Rank]
		st.arena.Reset()
		ws := st.wg
		var localActive []bool
		if active != nil {
			localActive = active[c.Rank*seqsPC : (c.Rank+1)*seqsPC]
		}

		// Embed this chip's sequences only.
		x := tensor.New(rowsPC, e.cfg.DModel)
		for i := 0; i < rowsPC; i++ {
			if localActive != nil && !localActive[i/steps] {
				continue // inactive slot: zero row
			}
			tok := tokens[c.Rank*rowsPC+i]
			if tok < 0 || tok >= vocab {
				panic("engine: token out of vocab")
			}
			copy(x.Row(i), ws.fullEmbed.Row(tok))
		}

		for l := range ws.layers {
			ls := &ws.layers[l]
			g := e.gatherLayer(c, st, ls)
			if e.cfg.ParallelBlock {
				h := tensor.RMSNorm(x, ls.normGain, 1e-6)
				attnY := wgAttention(e, st, g, h, l, seqsPC, steps, localActive)
				ffnY := wgFFN(st, e.cfg, g, h)
				x = tensor.AddInPlace(tensor.AddInPlace(x, attnY), ffnY)
			} else {
				h := tensor.RMSNorm(x, ls.normGain, 1e-6)
				x = tensor.AddInPlace(x, wgAttention(e, st, g, h, l, seqsPC, steps, localActive))
				h2 := tensor.RMSNorm(x, ls.ffnNormGain, 1e-6)
				x = tensor.AddInPlace(x, wgFFN(st, e.cfg, g, h2))
			}
		}
		if localActive == nil {
			st.cache.Advance(steps)
		} else {
			for s, a := range localActive {
				if a {
					st.cache.AdvanceSeq(s, steps)
				}
			}
		}

		final := tensor.RMSNorm(x, st.finalGain, 1e-6)
		blocks[c.Rank] = tensor.MatMulT(final, ws.fullEmbed)
	})
	// Host-side assembly of the token-sharded logits (no mesh traffic:
	// results leave through the host, as with any inference service).
	return tensor.ConcatRows(blocks...)
}

func wgAttention(e *Engine, st *chipState, g gathered, h *tensor.Mat, layer, seqsPC, steps int, active []bool) *tensor.Mat {
	ar := &st.arena
	q := tensor.MatMulInto(ar.Mat(h.Rows, g.q.Cols), h, g.q)
	k := tensor.MatMulInto(ar.Mat(h.Rows, g.k.Cols), h, g.k)
	v := tensor.MatMulInto(ar.Mat(h.Rows, g.v.Cols), h, g.v)
	out := appendAndAttendInto(ar.Mat(q.Rows, q.Cols),
		e.cfg.HeadDim, q, st.cache, layer, seqsPC, steps, active, k, v, &st.scr)
	return tensor.MatMulInto(ar.Mat(out.Rows, g.o.Cols), out, g.o)
}

func wgFFN(st *chipState, cfg model.Config, g gathered, h *tensor.Mat) *tensor.Mat {
	ar := &st.arena
	if cfg.FFNKind == model.SwiGLU {
		gate := tensor.MatMulInto(ar.Mat(h.Rows, g.gate.Cols), h, g.gate)
		up := tensor.MatMulInto(ar.Mat(h.Rows, g.up.Cols), h, g.up)
		tensor.SiLUFast(gate)
		act := tensor.MulInto(gate, gate, up)
		return tensor.MatMulInto(ar.Mat(act.Rows, g.down.Cols), act, g.down)
	}
	act := tensor.MatMulInto(ar.Mat(h.Rows, g.up.Cols), h, g.up)
	tensor.GELU(act)
	return tensor.MatMulInto(ar.Mat(act.Rows, g.down.Cols), act, g.down)
}
