package engine

// Slot KV handoff between engine replicas — the executable core of
// disaggregated prefill/decode serving (the deployment §4/Table 2 sizes
// analytically and internal/fleet simulates): a prefill replica fills a
// slot's KV cache, ExportSlotKV snapshots that slot's state across the
// mesh, the blocks travel over the interconnect, and ImportSlotKV installs
// them into a free slot on a decode replica, which then continues the
// sequence with DecodeSlots exactly as if it had prefilled the prompt
// itself. Blocks are exported in the cache's native storage format (raw
// int8 values + scales under Int8KV), so the handoff is bit-exact and the
// decode replica's tokens are identical to a single-replica run.

import (
	"fmt"

	"esti/internal/kvcache"
)

// SlotKV is one slot's KV state snapshotted across the mesh: the owner
// chip's single block when attention is batch-sharded (the slot lives on
// one chip), or one block per chip when head-sharded (each chip holds its
// head-column shard of every position). It is self-contained — the source
// slot may be released immediately after export.
type SlotKV struct {
	batchSharded bool
	blocks       []*kvcache.KVBlock
}

// Len is the number of cached positions the snapshot carries.
func (kv *SlotKV) Len() int { return kv.blocks[0].Len }

// Bytes is the total wire footprint of the handoff: the sum of every
// chip-block's K+V backing bytes. Under batch sharding this is one shard's
// bytes; under head sharding the per-chip head columns sum to the full KV
// width per position (multiquery replication makes it n× — the Figure 4(b)
// pathology, now visible as handoff traffic).
func (kv *SlotKV) Bytes() int {
	total := 0
	for _, b := range kv.blocks {
		total += b.Bytes()
	}
	return total
}

// ExportSlotKV deep-copies slot's cached positions — any attached shared
// prefix included — into a SlotKV that another replica with the same model,
// mesh geometry, attention sharding, and KV storage mode can import.
// Exporting an empty slot is an error.
func (e *Engine) ExportSlotKV(slot int) (*SlotKV, error) {
	e.checkSlot(slot)
	owner, local := e.slotOwner(slot)
	if owner >= 0 {
		b, err := e.chips[owner].cache.ExportSeq(local)
		if err != nil {
			return nil, err
		}
		return &SlotKV{batchSharded: true, blocks: []*kvcache.KVBlock{b}}, nil
	}
	blocks := make([]*kvcache.KVBlock, len(e.chips))
	for r, st := range e.chips {
		b, err := st.cache.ExportSeq(local)
		if err != nil {
			return nil, err
		}
		blocks[r] = b
	}
	return &SlotKV{blocks: blocks}, nil
}

// ImportSlotKV installs an exported snapshot into the empty slot, after
// which DecodeSlots continues the sequence token-exactly. The receiving
// session must shard attention the same way (batch- vs head-sharded KV),
// span the same number of chips when head-sharded, and match the blocks'
// storage mode, layer count, and per-chip KV width — re-sharding KV between
// different layouts is a transform this engine does not perform. On error
// the slot is left empty on every chip.
func (e *Engine) ImportSlotKV(slot int, kv *SlotKV) error {
	e.checkSlot(slot)
	if kv == nil || len(kv.blocks) == 0 {
		return fmt.Errorf("engine: import of empty slot snapshot")
	}
	if kv.batchSharded != e.batchShardedCache() {
		return fmt.Errorf("engine: snapshot from a %s cache into a %s session (cross-layout KV handoff is not supported)",
			shardingName(kv.batchSharded), shardingName(e.batchShardedCache()))
	}
	owner, local := e.slotOwner(slot)
	if owner >= 0 {
		return e.chips[owner].cache.ImportSeq(local, kv.blocks[0])
	}
	if len(kv.blocks) != len(e.chips) {
		return fmt.Errorf("engine: snapshot spans %d chips, session has %d", len(kv.blocks), len(e.chips))
	}
	for r, st := range e.chips {
		if err := st.cache.ImportSeq(local, kv.blocks[r]); err != nil {
			for rr := 0; rr < r; rr++ {
				e.chips[rr].cache.ResetSeq(local)
			}
			return err
		}
	}
	return nil
}

// RestoreSlotKV reinstalls a snapshot into a slot regardless of what the
// slot currently holds: the crash-recovery form of ImportSlotKV. The slot
// is released first (stale KV zeroed, any attached shared prefix detached),
// then the snapshot imports as usual. Because exported blocks are deep
// copies, the same SlotKV can be imported once for the normal handoff and
// again after the consumer dies — the checkpoint outlives the replica.
func (e *Engine) RestoreSlotKV(slot int, kv *SlotKV) error {
	e.checkSlot(slot)
	e.ReleaseSlot(slot)
	return e.ImportSlotKV(slot, kv)
}

func shardingName(batchSharded bool) string {
	if batchSharded {
		return "batch-sharded"
	}
	return "head-sharded"
}
