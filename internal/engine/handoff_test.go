package engine

import (
	"testing"

	"esti/internal/hardware"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// greedySlot prefills `prompt` into `slot` and greedily decodes `gen`
// tokens on that slot alone (the other slots stay inactive), returning the
// generated tokens. This is the single-replica baseline a disaggregated
// handoff must match token for token.
func greedySlot(t *testing.T, e *Engine, slot int, prompt []int, gen int) []int {
	t.Helper()
	logits := e.PrefillSlot(slot, prompt)
	tok := argmaxRow(logits, len(prompt)-1)
	return append([]int{tok}, decodeSlotFrom(e, slot, tok, gen-1)...)
}

// decodeSlotFrom greedily decodes `gen` further tokens on `slot` starting
// from last token `tok` — the decode replica's half of the handoff.
func decodeSlotFrom(e *Engine, slot, tok, gen int) []int {
	out := make([]int, 0, gen)
	last := make([]int, e.Batch())
	active := make([]bool, e.Batch())
	active[slot] = true
	var logits *tensor.Mat
	for g := 0; g < gen; g++ {
		last[slot] = tok
		logits = e.DecodeSlotsInto(logits, last, active)
		tok = argmaxRow(logits, slot)
		out = append(out, tok)
	}
	return out
}

// The disaggregated contract: prefill on replica A, hand the slot's KV to
// replica B, decode on B — and the tokens equal a single replica doing both
// phases itself. Verified across the functional layouts (head-sharded
// replication, batch-sharded single-owner, weight-gathered) in both KV
// storage modes; the export and import slots deliberately differ so the
// owner-chip remapping is exercised.
func TestHandoffTokenExact(t *testing.T) {
	cfg := ciConfig()
	const batch, promptLen, gen, maxLen = 8, 5, 24, 64
	prompt := tokens(1, promptLen)

	layouts := []struct {
		name  string
		torus hardware.Torus
		opts  Options
	}{
		{"1dws-heads", torus222(),
			Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads}},
		{"2dws-batch", torus222(),
			Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}},
		{"wgxyz-batch", hardware.Torus{X: 2, Y: 1, Z: 1},
			Options{FFN: partition.FFNWeightGatheredXYZ, Attn: partition.AttnShardBatch}},
	}
	w := reference.NewWeights(cfg, 42)
	for _, lay := range layouts {
		for _, int8kv := range []bool{false, true} {
			name := lay.name
			if int8kv {
				name += "-int8kv"
			}
			t.Run(name, func(t *testing.T) {
				opts := lay.opts
				opts.Int8KV = int8kv
				mk := func() *Engine {
					e, err := New(w, lay.torus, opts, batch, maxLen)
					if err != nil {
						t.Fatal(err)
					}
					return e
				}
				base := mk()
				want := greedySlot(t, base, 2, prompt, gen)

				pre, dec := mk(), mk()
				logits := pre.PrefillSlot(2, prompt)
				tok := argmaxRow(logits, promptLen-1)
				if tok != want[0] {
					t.Fatalf("prefill replica's first token %d, baseline %d", tok, want[0])
				}
				kv, err := pre.ExportSlotKV(2)
				if err != nil {
					t.Fatal(err)
				}
				if kv.Len() != promptLen {
					t.Fatalf("snapshot Len = %d, want %d", kv.Len(), promptLen)
				}
				if kv.Bytes() <= 0 {
					t.Fatal("snapshot reports no wire bytes")
				}
				pre.ReleaseSlot(2) // the block must not alias the freed slot

				if err := dec.ImportSlotKV(5, kv); err != nil {
					t.Fatal(err)
				}
				if dec.SlotLen(5) != promptLen {
					t.Fatalf("imported SlotLen = %d, want %d", dec.SlotLen(5), promptLen)
				}
				got := append([]int{tok}, decodeSlotFrom(dec, 5, tok, gen-1)...)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("token %d: handoff %d vs single-replica %d\nwant %v\ngot  %v",
							i, got[i], want[i], want, got)
					}
				}
			})
		}
	}
}

// A slot whose prefix came from the shared-prefix store must export those
// positions too: the receiving replica has no reference into the sender's
// PrefixStore, so the snapshot carries the full sequence.
func TestHandoffCarriesSharedPrefix(t *testing.T) {
	cfg := ciConfig()
	const batch, gen, maxLen = 8, 12, 64
	w := reference.NewWeights(cfg, 7)
	opts := Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}
	mk := func() *Engine {
		e, err := New(w, torus222(), opts, batch, maxLen)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	template := tokens(1, 6)
	suffix := []int{9, 21, 33}
	full := append(append([]int{}, template...), suffix...)

	base := mk()
	want := greedySlot(t, base, 0, full, gen)

	pre := mk()
	pre.EnablePrefixCache(0)
	// Seed the template into the store from a scratch admission, then admit
	// the real request — its leading tokens come from the shared prefix.
	if _, cached := pre.PrefillSlotCached(0, full, len(template)); cached != 0 {
		t.Fatalf("first admission hit %d cached tokens", cached)
	}
	pre.ReleaseSlot(0)
	logits, cached := pre.PrefillSlotCached(1, full, 0)
	if cached != len(template) {
		t.Fatalf("prefix hit %d tokens, want %d", cached, len(template))
	}
	tok := argmaxRow(logits, logits.Rows-1)
	if tok != want[0] {
		t.Fatalf("prefill replica's first token %d, baseline %d", tok, want[0])
	}
	kv, err := pre.ExportSlotKV(1)
	if err != nil {
		t.Fatal(err)
	}
	if kv.Len() != len(full) {
		t.Fatalf("snapshot Len = %d, want the full %d (prefix materialized)", kv.Len(), len(full))
	}
	pre.ReleaseSlot(1)

	dec := mk() // the decode replica has no prefix store at all
	if err := dec.ImportSlotKV(3, kv); err != nil {
		t.Fatal(err)
	}
	got := append([]int{tok}, decodeSlotFrom(dec, 3, tok, gen-1)...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: handoff %d vs single-replica %d", i, got[i], want[i])
		}
	}
}

func TestHandoffErrors(t *testing.T) {
	cfg := ciConfig()
	const batch, maxLen = 8, 32
	w := reference.NewWeights(cfg, 3)
	mk := func(tr hardware.Torus, opts Options) *Engine {
		e, err := New(w, tr, opts, batch, maxLen)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	headOpts := Options{FFN: partition.FFN1DWeightStationary, Attn: partition.AttnShardHeads}
	batchOpts := Options{FFN: partition.FFN2DWeightStationary, Attn: partition.AttnShardBatch}

	head := mk(torus222(), headOpts)
	if _, err := head.ExportSlotKV(0); err == nil {
		t.Error("export of empty slot should fail")
	}
	head.PrefillSlot(0, tokens(1, 4))
	kvHead, err := head.ExportSlotKV(0)
	if err != nil {
		t.Fatal(err)
	}

	if err := mk(torus222(), batchOpts).ImportSlotKV(0, kvHead); err == nil {
		t.Error("head-sharded snapshot into batch-sharded session should fail")
	}
	if err := mk(hardware.Torus{X: 2, Y: 1, Z: 1}, headOpts).ImportSlotKV(0, kvHead); err == nil {
		t.Error("8-chip snapshot into 2-chip session should fail")
	}
	if err := mk(torus222(), headOpts).ImportSlotKV(0, nil); err == nil {
		t.Error("nil snapshot import should fail")
	}

	occupied := mk(torus222(), headOpts)
	occupied.PrefillSlot(0, tokens(1, 3))
	if err := occupied.ImportSlotKV(0, kvHead); err != nil {
		// import into a non-empty slot must fail and leave the slot intact
		if occupied.SlotLen(0) != 3 {
			t.Errorf("failed import disturbed the slot: len %d", occupied.SlotLen(0))
		}
	} else {
		t.Error("import into non-empty slot should fail")
	}

	bsh := mk(torus222(), batchOpts)
	bsh.PrefillSlot(1, tokens(1, 4))
	kvB, err := bsh.ExportSlotKV(1)
	if err != nil {
		t.Fatal(err)
	}
	int8Opts := batchOpts
	int8Opts.Int8KV = true
	if err := mk(torus222(), int8Opts).ImportSlotKV(1, kvB); err == nil {
		t.Error("float snapshot into int8 session should fail")
	}
}
