package engine

import (
	"fmt"

	"esti/internal/collective"
	"esti/internal/hardware"
	"esti/internal/kvcache"
	"esti/internal/mesh"
	"esti/internal/model"
	"esti/internal/partition"
	"esti/internal/reference"
	"esti/internal/tensor"
)

// Prefill processes `steps` new tokens per sequence (sequence-major) across
// the mesh and returns the full logits [batch·steps, vocab]. Chip 0's copy
// is returned and is authoritative: under fp32 wire every chip gathers
// identical logits, but under Int8Wire each chip holds its own vocab shard
// exact and the others' dequantized, so per-chip copies may differ within
// the quantization bound — consumers must not argmax chip-local logits
// independently. The returned matrix is owned by the caller.
func (e *Engine) Prefill(tokens []int, steps int) *tensor.Mat {
	if len(tokens) != e.batch*steps {
		panic(fmt.Sprintf("engine: %d tokens for batch %d × steps %d", len(tokens), e.batch, steps))
	}
	out := e.forward(tokens, steps, nil)
	if e.ownsResult() {
		return out
	}
	return out.Clone()
}

// Decode runs one autoregressive step from each sequence's last token and
// returns [batch, vocab] logits (caller-owned). The allocation-free form
// is DecodeInto.
func (e *Engine) Decode(last []int) *tensor.Mat {
	return e.DecodeInto(nil, last)
}

// DecodeInto runs one decode step writing the [batch, vocab] logits into
// dst (reshaped, reusing its buffer) and returns dst; a nil dst allocates
// a fresh matrix. With a caller-reused dst, a steady-state decode step
// performs zero heap allocations end to end — the engine's temporaries
// come from per-chip arenas, attention reads the KV cache through
// zero-copy views, and the softmax runs in a pre-sized per-chip scratch.
func (e *Engine) DecodeInto(dst *tensor.Mat, last []int) *tensor.Mat {
	if len(last) != e.batch {
		panic(fmt.Sprintf("engine: %d last-tokens for batch %d", len(last), e.batch))
	}
	return e.finish(dst, e.forward(last, 1, nil))
}

// DecodeSlots runs one variable-length decode step: every active slot
// advances one token against its own KV-cache depth, which may differ per
// slot — the iteration a continuous-batching scheduler issues. Slots with
// active[s] == false are skipped entirely: their last[s] is ignored, their
// logits row is zero, and their cache does not grow, so a freed slot idles
// at no cost until PrefillSlot admits the next request into it. A nil mask
// decodes every slot. Returns [batch, vocab] logits (caller-owned).
func (e *Engine) DecodeSlots(last []int, active []bool) *tensor.Mat {
	return e.DecodeSlotsInto(nil, last, active)
}

// DecodeSlotsInto is DecodeSlots writing into dst (nil allocates): the
// allocation-free hot path a scheduler drives, with the same zero-alloc
// contract as DecodeInto.
func (e *Engine) DecodeSlotsInto(dst *tensor.Mat, last []int, active []bool) *tensor.Mat {
	if len(last) != e.batch {
		panic(fmt.Sprintf("engine: %d last-tokens for batch %d", len(last), e.batch))
	}
	if active != nil && len(active) != e.batch {
		panic(fmt.Sprintf("engine: %d mask entries for batch %d", len(active), e.batch))
	}
	return e.finish(dst, e.forward(last, 1, active))
}

// finish hands the pass's logits to the caller: arena-backed results are
// copied into dst (or cloned when dst is nil); a result the forward pass
// freshly allocated — the weight-gathered path's host-side assembly — is
// returned as-is when no dst is supplied, since it is already
// caller-owned.
func (e *Engine) finish(dst, logits *tensor.Mat) *tensor.Mat {
	if dst == nil {
		if e.ownsResult() {
			return logits
		}
		return logits.Clone()
	}
	return tensor.CopyInto(dst, logits)
}

// ownsResult reports whether forward's return value is freshly allocated
// (weight-gathered host assembly) rather than arena-backed.
func (e *Engine) ownsResult() bool {
	return e.opts.FFN == partition.FFNWeightGatheredXYZ
}

// Generate greedily decodes `gen` tokens after prefilling, mirroring
// reference.Model.Generate.
func (e *Engine) Generate(prompt []int, promptLen, gen int) [][]int {
	logits := e.Prefill(prompt, promptLen)
	out := make([][]int, e.batch)
	last := make([]int, e.batch)
	for s := 0; s < e.batch; s++ {
		last[s] = argmaxRow(logits, s*promptLen+promptLen-1)
		out[s] = append(out[s], last[s])
	}
	for g := 1; g < gen; g++ {
		logits = e.DecodeInto(logits, last)
		for s := 0; s < e.batch; s++ {
			last[s] = argmaxRow(logits, s)
			out[s] = append(out[s], last[s])
		}
	}
	return out
}

func argmaxRow(m *tensor.Mat, r int) int {
	row := m.Row(r)
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// forward runs the SPMD program on every chip and returns chip 0's logits.
// The result is arena-backed: valid until the engine's next pass. A
// non-nil active mask (steps must be 1) zeroes inactive slots end to end:
// their embedding rows are zero, their K/V are neither appended nor
// advanced, and their attention output is zero.
func (e *Engine) forward(tokens []int, steps int, active []bool) *tensor.Mat {
	if e.opts.FFN == partition.FFNWeightGatheredXYZ {
		return e.forwardWG(tokens, steps, active)
	}
	e.fw.tokens, e.fw.steps, e.fw.active = tokens, steps, active
	e.m.Run(e.runFwd)
	return e.chips[0].logits
}

// chipForward is one chip's body of the forward pass, bound to e.runFwd at
// construction so issuing a pass allocates no closure. Every temporary
// comes from the chip's arena.
func (e *Engine) chipForward(c *mesh.Chip) {
	tokens, steps, active := e.fw.tokens, e.fw.steps, e.fw.active
	st := e.chips[c.Rank]
	ar := &st.arena
	ar.Reset()
	nTok := e.batch * steps

	// Embedding lookup onto this chip's residual-stream slice. With no
	// mask every row is written below, so the arena matrix only needs
	// zeroing (for inactive slots' rows) when a mask is present.
	x := ar.Mat(nTok, st.embedCols.Cols)
	if active != nil {
		x.Zero()
	}
	for i, tok := range tokens {
		if active != nil && !active[i/steps] {
			continue // inactive slot: zero row
		}
		if tok < 0 || tok >= e.cfg.Vocab {
			panic(fmt.Sprintf("engine: token %d out of vocab %d", tok, e.cfg.Vocab))
		}
		copy(x.Row(i), st.embedCols.Row(tok))
	}

	for l := range st.layers {
		cl := &st.layers[l]
		if e.cfg.ParallelBlock {
			h := shardNorm(c, st, x, cl.normGain, e.cfg.DModel)
			attnY := e.attnBlock(c, st, cl, l, h, steps, active)
			ffnY := e.ffnBlock(c, st, cl, h)
			x = tensor.AddInPlace(tensor.AddInPlace(x, attnY), ffnY)
		} else {
			h := shardNorm(c, st, x, cl.normGain, e.cfg.DModel)
			x = tensor.AddInPlace(x, e.attnBlock(c, st, cl, l, h, steps, active))
			h2 := shardNorm(c, st, x, cl.ffnNormGain, e.cfg.DModel)
			x = tensor.AddInPlace(x, e.ffnBlock(c, st, cl, h2))
		}
	}
	e.advanceChip(c, st, steps, active)

	final := shardNorm(c, st, x, st.finalGain, e.cfg.DModel)
	// Logits: gather the full final activation, multiply by this
	// chip's vocab-row block, then gather the vocab dimension.
	n := e.m.Chips()
	fullFinal := agCols(ar, st.op(c), hardware.GroupXYZ, final, n)
	logitsLocal := tensor.MatMulTInto(ar.Mat(fullFinal.Rows, st.embedRows.Rows), fullFinal, st.embedRows)
	st.logits = agCols(ar, st.op(c), hardware.GroupXYZ, logitsLocal, n)
}

// advanceChip commits the pass's appended positions on this chip's cache
// shard: all slots in lockstep when no mask, only the active slots' local
// indices otherwise.
func (e *Engine) advanceChip(c *mesh.Chip, st *chipState, steps int, active []bool) {
	if active == nil {
		st.cache.Advance(steps)
		return
	}
	if e.batchShardedCache() {
		seqsPC := e.batch / e.m.Chips()
		for i := 0; i < seqsPC; i++ {
			if active[c.Rank*seqsPC+i] {
				st.cache.AdvanceSeq(i, steps)
			}
		}
		return
	}
	for s, a := range active {
		if a {
			st.cache.AdvanceSeq(s, steps)
		}
	}
}

// batchShardedCache reports whether each chip's cache holds a sequence
// shard (batch-sharded attention, which the weight-gathered layout also
// requires) rather than the whole batch.
func (e *Engine) batchShardedCache() bool {
	return e.opts.Attn == partition.AttnShardBatch
}

// ffnBlock runs the feedforward sub-block on the E-sharded normed input,
// returning the E-sharded output.
func (e *Engine) ffnBlock(c *mesh.Chip, st *chipState, cl *chipLayer, h *tensor.Mat) *tensor.Mat {
	switch e.opts.FFN {
	case partition.FFN1DWeightStationary:
		if e.streamFFN() {
			return e.ffn1DStreamed(c, st, cl, h)
		}
		return e.ffn1D(c, st, cl, h)
	case partition.FFN2DWeightStationary:
		if e.streamFFN() {
			return e.ffn2DStreamed(c, st, cl, h)
		}
		return e.ffn2D(c, st, cl, h)
	}
	panic("engine: unsupported FFN layout")
}

// ffn1D: all-gather activations to full E, compute this chip's F block
// completely, reduce-scatter the output back to the E shard.
// Communication per layer: one AG and one RS of the full [tokens, E]
// activations — the 2·B·L·E volume of Section 3.2.1.
func (e *Engine) ffn1D(c *mesh.Chip, st *chipState, cl *chipLayer, h *tensor.Mat) *tensor.Mat {
	ar := &st.arena
	n := e.m.Chips()
	hFull := agCols(ar, st.op(c), hardware.GroupXYZ, h, n)
	act := e.activate(st, cl, hFull)
	partial := cl.wDown.mulA(ar, act) // [tokens, E] partialsum over chips
	return rsCols(ar, st.op(c), hardware.GroupXYZ, partial, n)
}

// ffn2D: the Figure 2(b) program. All-gather over Y·Z assembles this x
// stripe's E columns; the first matmul leaves partial sums over X which a
// reduce-scatter over X resolves while scattering the F dimension; the
// activation is applied on the F/(X·YZ) shard; an all-gather over X
// reassembles the F/YZ block for the second matmul, whose partial sums over
// Y·Z reduce-scatter back into the E shard. Activations are never fully
// replicated.
func (e *Engine) ffn2D(c *mesh.Chip, st *chipState, cl *chipLayer, h *tensor.Mat) *tensor.Mat {
	ar := &st.arena
	t := e.torus
	yzGroup := hardware.GroupYZ
	xGroup := hardware.GroupX
	yzSize := t.Y * t.Z

	hx := agCols(ar, st.op(c), yzGroup, h, yzSize) // [tokens, E/X] in stripe order
	upPartial := cl.wUp.mulA(ar, hx)
	upShard := rsCols(ar, st.op(c), xGroup, upPartial, t.X) // [tokens, F/(X·YZ)]

	var actShard *tensor.Mat
	if e.cfg.FFNKind == model.SwiGLU {
		gatePartial := cl.wGate.mulA(ar, hx) // [tokens, F/YZ] partialsum-x
		gateShard := rsCols(ar, st.op(c), xGroup, gatePartial, t.X)
		tensor.SiLUFast(gateShard)
		actShard = tensor.MulInto(gateShard, gateShard, upShard)
	} else {
		tensor.GELU(upShard)
		actShard = upShard
	}

	actFull := agCols(ar, st.op(c), xGroup, actShard, t.X) // [tokens, F/YZ]
	downPartial := cl.wDown.mulA(ar, actFull)              // [tokens, E/X] partialsum-yz
	return rsCols(ar, st.op(c), yzGroup, downPartial, yzSize)
}

// activate applies the FFN nonlinearity on full-width (1D layout) blocks.
func (e *Engine) activate(st *chipState, cl *chipLayer, hFull *tensor.Mat) *tensor.Mat {
	ar := &st.arena
	if e.cfg.FFNKind == model.SwiGLU {
		gate := cl.wGate.mulA(ar, hFull)
		up := cl.wUp.mulA(ar, hFull)
		tensor.SiLUFast(gate)
		return tensor.MulInto(gate, gate, up)
	}
	act := cl.wUp.mulA(ar, hFull)
	tensor.GELU(act)
	return act
}

// attnBlock runs the attention sub-block on the E-sharded normed input,
// returning the E-sharded output.
func (e *Engine) attnBlock(c *mesh.Chip, st *chipState, cl *chipLayer, layer int, h *tensor.Mat, steps int, active []bool) *tensor.Mat {
	ar := &st.arena
	n := e.m.Chips()
	// Projections need the full-width input (head-block sharding of W_Q
	// contracts all of E). In the production system this all-gather is
	// fused with the FFN input collective; here it stands alone.
	hFull := agCols(ar, st.op(c), hardware.GroupXYZ, h, n)
	qLocal := cl.wq.mulA(ar, hFull) // [tokens, headsPC·dh]

	var outLocal *tensor.Mat
	if e.opts.Attn == partition.AttnShardBatch {
		// Batch-sharded: this chip caches only its own sequences' K/V, so
		// project only those rows — the full-batch projection would throw
		// away (n-1)/n of its output. The weights are still the full K/V
		// projections (every chip can serve any sequence); only the token
		// rows are restricted.
		rowsPC := e.batch / n * steps
		hMine := tensor.RowsView(hFull, c.Rank*rowsPC, (c.Rank+1)*rowsPC)
		kMine := cl.wk.mulA(ar, &hMine)
		vMine := cl.wv.mulA(ar, &hMine)
		outLocal = e.attnBatchSharded(c, st, layer, qLocal, kMine, vMine, steps, active)
	} else {
		kNew := cl.wk.mulA(ar, hFull) // full KV heads or this chip's block
		vNew := cl.wv.mulA(ar, hFull)
		// Head-sharded: the local cache holds this chip's KV heads (or
		// the replicated multiquery head); everything is chip-local.
		outLocal = appendAndAttendInto(ar.Mat(qLocal.Rows, qLocal.Cols),
			e.cfg.HeadDim, qLocal, st.cache, layer, e.batch, steps, active, kNew, vNew, &st.scr)
	}

	partial := cl.wo.mulA(ar, outLocal) // [tokens, E] partialsum over chips
	return rsCols(ar, st.op(c), hardware.GroupXYZ, partial, n)
}

// appendAndAttendInto appends the new K/V and computes attention for
// `seqs` query blocks against the matching cache slots, writing into out
// (which must be [q.Rows, q.Cols]). With a mask, inactive slots are
// skipped (zero output, no append); with nil, all slots run in lockstep at
// a uniform depth. Everything is views and fused kernels — no temporaries.
func appendAndAttendInto(out *tensor.Mat, dh int, q *tensor.Mat, cache *kvcache.Cache, layer, seqs, steps int, active []bool, kNew, vNew *tensor.Mat, scr *reference.AttnScratch) *tensor.Mat {
	if active == nil {
		cache.Append(layer, kNew, vNew, steps)
		for s := 0; s < seqs; s++ {
			qv := tensor.RowsView(q, s*steps, (s+1)*steps)
			ov := tensor.RowsView(out, s*steps, (s+1)*steps)
			reference.AttendSeqInto(&ov, dh, &qv, cache, layer, s, steps, scr)
		}
		return out
	}
	out.Zero()
	for s := 0; s < seqs; s++ {
		if !active[s] {
			continue
		}
		kv := tensor.RowsView(kNew, s*steps, (s+1)*steps)
		vv := tensor.RowsView(vNew, s*steps, (s+1)*steps)
		cache.AppendSeq(layer, s, &kv, &vv, steps)
		qv := tensor.RowsView(q, s*steps, (s+1)*steps)
		ov := tensor.RowsView(out, s*steps, (s+1)*steps)
		reference.AttendSeqInto(&ov, dh, &qv, cache, layer, s, steps, scr)
	}
	return out
}

// attnBatchSharded reshards Q from head-sharded to batch-sharded with an
// all-to-all, attends against this chip's sequence shard of the KV cache,
// and reshards the attention output back (Figure 5(b)). kMine/vMine are
// the projections of this chip's own sequences only (the weights are the
// full K/V projections — multiquery K/V identical on every chip,
// batch-sharded multihead full-width — but the token rows are already
// restricted to this shard). On a single chip both all-to-alls are
// identities and the whole exchange collapses to the chip-local fused
// path.
func (e *Engine) attnBatchSharded(c *mesh.Chip, st *chipState, layer int, qLocal, kMine, vMine *tensor.Mat, steps int, active []bool) *tensor.Mat {
	ar := &st.arena
	n := e.m.Chips()
	seqsPC := e.batch / n
	rowsPC := seqsPC * steps

	// This chip's sequences: cache the active ones.
	var localActive []bool
	if active != nil {
		localActive = active[c.Rank*seqsPC : (c.Rank+1)*seqsPC]
	}

	if n == 1 {
		return appendAndAttendInto(ar.Mat(qLocal.Rows, qLocal.Cols),
			e.cfg.HeadDim, qLocal, st.cache, layer, seqsPC, steps, localActive, kMine, vMine, &st.scr)
	}

	// All-to-all #1: send each destination its sequence block of my
	// head-block queries. Row blocks are contiguous, so the shards are
	// zero-copy views (Send copies on the wire). The shard tables are
	// per-chip scratch, reused every layer.
	headW := qLocal.Cols
	shards := st.shardTab(n)
	for d := 0; d < n; d++ {
		shards[d] = qLocal.Data[d*rowsPC*headW : (d+1)*rowsPC*headW]
	}
	recv := collective.AllToAll(st.op(c), hardware.GroupXYZ, shards)
	// Assemble my sequences' full-width queries [rowsPC, H·dh]: source
	// srcIdx's chunk is its head block, i.e. my column block srcIdx.
	qMine := ar.Mat(rowsPC, headW*n)
	for srcIdx, data := range recv {
		for i := 0; i < rowsPC; i++ {
			copy(qMine.Row(i)[srcIdx*headW:(srcIdx+1)*headW], data[i*headW:(i+1)*headW])
		}
		c.Recycle(data)
	}

	outMine := appendAndAttendInto(ar.Mat(rowsPC, headW*n),
		e.cfg.HeadDim, qMine, st.cache, layer, seqsPC, steps, localActive, kMine, vMine, &st.scr)

	// All-to-all #2: return each head block to its owner.
	back := st.shardTab(n)
	backBuf := ar.Mat(rowsPC*n, headW)
	for d := 0; d < n; d++ {
		blk := backBuf.Data[d*rowsPC*headW : (d+1)*rowsPC*headW]
		for i := 0; i < rowsPC; i++ {
			copy(blk[i*headW:(i+1)*headW], outMine.Row(i)[d*headW:(d+1)*headW])
		}
		back[d] = blk
	}
	recv2 := collective.AllToAll(st.op(c), hardware.GroupXYZ, back)
	outLocal := ar.Mat(e.batch*steps, headW) // [tokens, headsPC·dh]
	for srcIdx, data := range recv2 {
		copy(outLocal.Data[srcIdx*rowsPC*headW:(srcIdx+1)*rowsPC*headW], data)
		c.Recycle(data)
	}
	return outLocal
}
